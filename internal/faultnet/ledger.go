package faultnet

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is one fault-ledger cell: how many times one fault kind fired
// against one target key.
type Entry struct {
	Kind   Kind
	Target string
	Count  int
}

// Snapshot returns the ledger sorted by kind then target. Because every
// decision is a pure function of (seed, scope, key, ordinal) and targets
// are logical names, two runs with the same seed and workload produce
// byte-identical snapshots — the chaos test's central assertion.
func (in *Injector) Snapshot() []Entry {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []Entry
	for kind, targets := range in.ledger {
		for target, count := range targets {
			out = append(out, Entry{Kind: kind, Target: target, Count: count})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// Total returns the number of faults injected so far.
func (in *Injector) Total() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Dials returns how many dial decisions ran per target key, faulted or
// not, sorted by target — the denominator for the ledger's rates.
func (in *Injector) Dials() []Entry {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Entry, 0, len(in.dials))
	for target, count := range in.dials {
		out = append(out, Entry{Target: target, Count: count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}

// String renders the full ledger — per-target dials, then per-kind fault
// counts — in a stable textual form, for golden comparisons and logs.
func (in *Injector) String() string {
	var b strings.Builder
	b.WriteString("faultnet ledger\n")
	for _, e := range in.Dials() {
		b.WriteString(fmt.Sprintf("dials %-28s %d\n", e.Target, e.Count))
	}
	for _, e := range in.Snapshot() {
		b.WriteString(fmt.Sprintf("%-8s %-26s %d\n", e.Kind, e.Target, e.Count))
	}
	return b.String()
}
