package faultnet

import (
	"io"
	"net"
	"os"
	"sync"
	"syscall"
)

// faultConn wraps a live connection and executes exactly one fault kind.
// Latency delays the first read and first write; Reset and Truncate spend a
// byte budget on the read side then kill the stream; Corrupt flips one byte
// of the first read; Stall blocks the next read, then surfaces a timeout.
// Deadlines, writes and Close pass through to the underlying connection.
type faultConn struct {
	net.Conn
	in   *Injector
	kind Kind

	mu        sync.Mutex
	remaining int  // Reset/Truncate byte budget
	readSlept bool // Latency already applied to reads
	writSlept bool // Latency already applied to writes
	corrupted bool // Corrupt already applied
	dead      bool // Reset/Stall already fired
}

// injectedTimeout builds the stall error: a net.OpError whose Timeout()
// reports true, exactly what a deadline expiry on a real conn produces.
func injectedTimeout() error {
	return &net.OpError{Op: "read", Net: "tcp", Err: os.ErrDeadlineExceeded}
}

// injectedReset builds the mid-stream reset error.
func injectedReset() error {
	return &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
}

func (c *faultConn) Read(p []byte) (int, error) {
	switch c.kind {
	case Latency:
		c.mu.Lock()
		first := !c.readSlept
		c.readSlept = true
		c.mu.Unlock()
		if first {
			c.in.sleep(c.in.plan.LatencyAmount)
		}
		return c.Conn.Read(p)

	case Stall:
		c.mu.Lock()
		dead := c.dead
		c.dead = true
		c.mu.Unlock()
		if !dead {
			c.in.sleep(c.in.plan.StallFor)
		}
		return 0, injectedTimeout()

	case Corrupt:
		n, err := c.Conn.Read(p)
		c.mu.Lock()
		flip := !c.corrupted && n > 0
		if flip {
			c.corrupted = true
		}
		c.mu.Unlock()
		if flip {
			p[0] ^= 0xFF
		}
		return n, err

	case Reset, Truncate:
		c.mu.Lock()
		budget := c.remaining
		c.mu.Unlock()
		if budget <= 0 {
			// Budget spent: kill the transport so the peer unblocks too.
			_ = c.Conn.Close()
			if c.kind == Reset {
				return 0, injectedReset()
			}
			return 0, io.EOF
		}
		if len(p) > budget {
			p = p[:budget]
		}
		n, err := c.Conn.Read(p)
		c.mu.Lock()
		c.remaining -= n
		c.mu.Unlock()
		return n, err

	default:
		return c.Conn.Read(p)
	}
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.kind == Latency {
		c.mu.Lock()
		first := !c.writSlept
		c.writSlept = true
		c.mu.Unlock()
		if first {
			c.in.sleep(c.in.plan.LatencyAmount)
		}
	}
	return c.Conn.Write(p)
}
