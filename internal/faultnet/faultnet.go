// Package faultnet is a deterministic, seed-driven network fault injector:
// a Dialer/net.Conn wrapper that executes a seeded Plan of connect
// refusals, added latency, mid-stream resets, response truncation, byte
// corruption and stalls. It models the lossy mobile networks behind the
// paper's 15,970 Netalyzr sessions, where half-finished handshakes and
// truncated submissions are the normal case, and lets the chaos harness
// prove every client survives them.
//
// Determinism is the load-bearing property. The fault decision for the
// n-th dial of a flow is a pure function of (plan seed, scope, target
// key, n): no shared PRNG stream is consumed across flows, so goroutine
// interleaving cannot perturb outcomes. Give each session its own scope
// and a campaign run under concurrency produces the same per-target fault
// ledger and the same aggregates on every run with the same seed. All
// randomness flows through the seeded stats.Source (the detrand rule holds
// this package to it) and no wall-clock is read — injected delays go
// through a substitutable sleep function.
package faultnet

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"tangledmass/internal/stats"
	"tangledmass/internal/tlsnet"
)

// Kind names one injectable fault.
type Kind string

const (
	// None means the connection proceeds untouched.
	None Kind = ""
	// Refuse fails the dial immediately with ECONNREFUSED.
	Refuse Kind = "refuse"
	// Latency delays the connection's first read and first write.
	Latency Kind = "latency"
	// Reset tears the connection down with ECONNRESET after
	// ResetAfterBytes bytes have been read.
	Reset Kind = "reset"
	// Truncate ends the read stream with a clean EOF after
	// TruncateAfterBytes bytes — a half-finished response.
	Truncate Kind = "truncate"
	// Corrupt flips the first byte of the connection's first read.
	Corrupt Kind = "corrupt"
	// Stall blocks the next read for StallFor, then surfaces a timeout —
	// the handshake that never completes.
	Stall Kind = "stall"
)

// kinds lists every injectable kind in plan order, for iteration.
var kinds = []Kind{Refuse, Latency, Reset, Truncate, Corrupt, Stall}

// Plan is a seeded fault schedule. Probabilities are per dial and at most
// one fault fires per connection; their sum must not exceed 1.
type Plan struct {
	// Seed drives every fault decision.
	Seed int64

	// Per-dial probabilities, each in [0,1].
	RefuseProb   float64
	LatencyProb  float64
	ResetProb    float64
	TruncateProb float64
	CorruptProb  float64
	StallProb    float64

	// LatencyAmount is the injected delay. Zero means 2ms.
	LatencyAmount time.Duration
	// ResetAfterBytes is how many bytes a Reset connection may deliver
	// first. Zero means 1.
	ResetAfterBytes int
	// TruncateAfterBytes is how many bytes a Truncate connection delivers
	// before the stream ends. Zero means 1.
	TruncateAfterBytes int
	// StallFor is how long a stalled read blocks before surfacing a
	// timeout. Zero means 50ms.
	StallFor time.Duration
}

func (p Plan) withDefaults() Plan {
	if p.LatencyAmount <= 0 {
		p.LatencyAmount = 2 * time.Millisecond
	}
	if p.ResetAfterBytes <= 0 {
		p.ResetAfterBytes = 1
	}
	if p.TruncateAfterBytes <= 0 {
		p.TruncateAfterBytes = 1
	}
	if p.StallFor <= 0 {
		p.StallFor = 50 * time.Millisecond
	}
	return p
}

// prob returns the plan probability for kind k.
func (p Plan) prob(k Kind) float64 {
	switch k {
	case Refuse:
		return p.RefuseProb
	case Latency:
		return p.LatencyProb
	case Reset:
		return p.ResetProb
	case Truncate:
		return p.TruncateProb
	case Corrupt:
		return p.CorruptProb
	case Stall:
		return p.StallProb
	}
	return 0
}

// Injector executes a Plan over wrapped dialers and keeps the fault
// ledger. Safe for concurrent use.
type Injector struct {
	plan  Plan
	sleep func(time.Duration)

	mu     sync.Mutex
	seq    map[string]uint64 // per-flow dial counter
	ledger map[Kind]map[string]int
	dials  map[string]int // per-target dial counter, faulted or not
	total  int
}

// New builds an injector for the plan. It panics if the plan's
// probabilities sum above 1 — a misconfigured chaos run should fail loudly,
// not skew silently.
func New(plan Plan) *Injector {
	plan = plan.withDefaults()
	var sum float64
	for _, k := range kinds {
		pr := plan.prob(k)
		if pr < 0 || pr > 1 {
			panic(fmt.Sprintf("faultnet: probability for %q out of [0,1]: %v", k, pr))
		}
		sum += pr
	}
	if sum > 1 {
		panic(fmt.Sprintf("faultnet: fault probabilities sum to %v > 1", sum))
	}
	return &Injector{
		plan:   plan,
		sleep:  time.Sleep,
		seq:    make(map[string]uint64),
		ledger: make(map[Kind]map[string]int),
		dials:  make(map[string]int),
	}
}

// WithSleep substitutes the sleep function used for latency and stall
// faults (tests) and returns the injector for chaining.
func (in *Injector) WithSleep(sleep func(time.Duration)) *Injector {
	in.sleep = sleep
	return in
}

// decide draws the fault for the next dial of flow (scope, key) and records
// it in the ledger. The decision is a pure function of (seed, scope, key,
// per-flow dial ordinal), so it is independent of goroutine interleaving:
// flows never share a PRNG stream.
func (in *Injector) decide(scope, key string) Kind {
	flow := scope + "|" + key
	in.mu.Lock()
	n := in.seq[flow]
	in.seq[flow] = n + 1
	in.dials[key]++
	in.mu.Unlock()

	h := fnv.New64a()
	// Hash writes never fail.
	_, _ = io.WriteString(h, fmt.Sprintf("%d|%s|%d", in.plan.Seed, flow, n))
	x := stats.NewSource(int64(h.Sum64())).Float64()

	kind := None
	var acc float64
	for _, k := range kinds {
		acc += in.plan.prob(k)
		if x < acc {
			kind = k
			break
		}
	}
	if kind != None {
		in.mu.Lock()
		m := in.ledger[kind]
		if m == nil {
			m = make(map[string]int)
			in.ledger[kind] = m
		}
		m[key]++
		in.total++
		in.mu.Unlock()
	}
	return kind
}

// dial runs one decision and wraps the resulting connection.
func (in *Injector) dial(scope, key string, next func() (net.Conn, error)) (net.Conn, error) {
	kind := in.decide(scope, key)
	if kind == Refuse {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: fmt.Errorf(
			"faultnet: injected refusal for %s: %w", key, syscall.ECONNREFUSED)}
	}
	conn, err := next()
	if err != nil {
		return nil, err
	}
	if kind == None {
		return conn, nil
	}
	return &faultConn{Conn: conn, in: in, kind: kind, remaining: in.budgetFor(kind)}, nil
}

// budgetFor returns the byte budget a Reset or Truncate connection may
// deliver before the fault fires.
func (in *Injector) budgetFor(kind Kind) int {
	switch kind {
	case Reset:
		return in.plan.ResetAfterBytes
	case Truncate:
		return in.plan.TruncateAfterBytes
	}
	return 0
}

// SiteDialer wraps next so every DialSite flows through the plan. The
// scope isolates the decision stream: give each session its own scope so
// concurrency and retries in one flow cannot perturb another's outcomes.
func (in *Injector) SiteDialer(next tlsnet.Dialer, scope string) tlsnet.Dialer {
	return &siteDialer{in: in, next: next, scope: scope}
}

type siteDialer struct {
	in    *Injector
	next  tlsnet.Dialer
	scope string
}

// DialSite implements tlsnet.Dialer. The decision key is the logical
// host:port, never the resolved loopback address, so ledgers compare
// across runs with different ephemeral ports.
func (d *siteDialer) DialSite(ctx context.Context, host string, port int) (net.Conn, error) {
	key := fmt.Sprintf("%s:%d", host, port)
	return d.in.dial(d.scope, key, func() (net.Conn, error) { return d.next.DialSite(ctx, host, port) })
}

// DialFunc wraps an address-based dialer under a fixed logical key —
// "collector", "notary" — so ephemeral server ports never enter the
// decision stream or the ledger.
func (in *Injector) DialFunc(scope, key string, next func(ctx context.Context, addr string) (net.Conn, error)) func(ctx context.Context, addr string) (net.Conn, error) {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		return in.dial(scope, key, func() (net.Conn, error) { return next(ctx, addr) })
	}
}
