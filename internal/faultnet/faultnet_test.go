package faultnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"
)

// echoListener accepts loopback connections and writes a fixed banner.
func echoListener(t *testing.T, banner string) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.WriteString(conn, banner)
				// Hold the write side open until the peer hangs up so
				// short reads are the injector's doing, not a race.
				_, _ = io.Copy(io.Discard, conn)
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln
}

// only builds a plan injecting exactly one fault kind with certainty.
func only(kind Kind) Plan {
	p := Plan{Seed: 1, StallFor: time.Millisecond, LatencyAmount: time.Millisecond}
	switch kind {
	case Refuse:
		p.RefuseProb = 1
	case Latency:
		p.LatencyProb = 1
	case Reset:
		p.ResetProb = 1
	case Truncate:
		p.TruncateProb = 1
	case Corrupt:
		p.CorruptProb = 1
	case Stall:
		p.StallProb = 1
	}
	return p
}

func dialThrough(t *testing.T, in *Injector, ln net.Listener) (net.Conn, error) {
	t.Helper()
	dial := in.DialFunc("test", "svc", func(ctx context.Context, addr string) (net.Conn, error) {
		d := &net.Dialer{Timeout: 5 * time.Second}
		return d.DialContext(ctx, "tcp", addr)
	})
	conn, err := dial(context.Background(), ln.Addr().String())
	if conn != nil {
		t.Cleanup(func() { _ = conn.Close() })
	}
	return conn, err
}

func TestRefuse(t *testing.T) {
	ln := echoListener(t, "hello")
	_, err := dialThrough(t, New(only(Refuse)), ln)
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("err = %v, want ECONNREFUSED", err)
	}
}

func TestReset(t *testing.T) {
	plan := only(Reset)
	plan.ResetAfterBytes = 3
	ln := echoListener(t, "hello world")
	conn, err := dialThrough(t, New(plan), ln)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(conn)
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("read err = %v, want ECONNRESET", err)
	}
	if string(got) != "hel" {
		t.Errorf("delivered %q before the reset, want %q", got, "hel")
	}
}

func TestTruncate(t *testing.T) {
	plan := only(Truncate)
	plan.TruncateAfterBytes = 5
	ln := echoListener(t, "hello world")
	conn, err := dialThrough(t, New(plan), ln)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("truncation must end with a clean EOF, got %v", err)
	}
	if string(got) != "hello" {
		t.Errorf("delivered %q, want %q", got, "hello")
	}
}

func TestCorrupt(t *testing.T) {
	ln := echoListener(t, "hello")
	conn, err := dialThrough(t, New(only(Corrupt)), ln)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'h'^0xFF {
		t.Errorf("first byte = %#x, want flipped 'h' %#x", buf[0], 'h'^0xFF)
	}
	if string(buf[1:]) != "ello" {
		t.Errorf("tail = %q, want %q (only one byte corrupted)", buf[1:], "ello")
	}
}

func TestStallSurfacesTimeout(t *testing.T) {
	var slept time.Duration
	in := New(only(Stall)).WithSleep(func(d time.Duration) { slept += d })
	ln := echoListener(t, "hello")
	conn, err := dialThrough(t, in, ln)
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stalled read err = %v, want a net.Error timeout", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("stalled read should wrap os.ErrDeadlineExceeded: %v", err)
	}
	if slept != time.Millisecond {
		t.Errorf("stall slept %v, want %v", slept, time.Millisecond)
	}
}

func TestLatencySleepsOnceEachWay(t *testing.T) {
	var mu sync.Mutex
	var sleeps []time.Duration
	in := New(only(Latency)).WithSleep(func(d time.Duration) {
		mu.Lock()
		sleeps = append(sleeps, d)
		mu.Unlock()
	})
	ln := echoListener(t, "hello")
	conn, err := dialThrough(t, in, ln)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) != 2 {
		t.Errorf("latency slept %d times, want 2 (first read + first write)", len(sleeps))
	}
}

func TestDecisionsAreInterleavingIndependent(t *testing.T) {
	// The same flows drawn in two different orders must see identical
	// per-flow outcomes and produce identical ledgers.
	plan := Plan{Seed: 99, RefuseProb: 0.3, ResetProb: 0.2, StallProb: 0.1}
	type draw struct{ scope, key string }
	var flows []draw
	for s := 0; s < 5; s++ {
		for k := 0; k < 3; k++ {
			flows = append(flows, draw{fmt.Sprintf("session-%d", s), fmt.Sprintf("host%d:443", k)})
		}
	}
	run := func(order []int, repeats int) (map[string][]Kind, string) {
		in := New(plan)
		out := make(map[string][]Kind)
		for r := 0; r < repeats; r++ {
			for _, i := range order {
				f := flows[i]
				flow := f.scope + "|" + f.key
				out[flow] = append(out[flow], in.decide(f.scope, f.key))
			}
		}
		return out, in.String()
	}
	fwd := make([]int, len(flows))
	rev := make([]int, len(flows))
	for i := range flows {
		fwd[i] = i
		rev[i] = len(flows) - 1 - i
	}
	a, ledgerA := run(fwd, 4)
	b, ledgerB := run(rev, 4)
	for flow, seq := range a {
		for i, k := range seq {
			if b[flow][i] != k {
				t.Errorf("flow %s draw %d: %q forward vs %q reversed", flow, i, k, b[flow][i])
			}
		}
	}
	if ledgerA != ledgerB {
		t.Errorf("ledgers diverged across orderings:\n%s\nvs\n%s", ledgerA, ledgerB)
	}
}

func TestDecisionRatesTrackPlan(t *testing.T) {
	plan := Plan{Seed: 7, RefuseProb: 0.25, TruncateProb: 0.25}
	in := New(plan)
	const n = 4000
	counts := map[Kind]int{}
	for i := 0; i < n; i++ {
		counts[in.decide(fmt.Sprintf("s%d", i), "host:443")]++
	}
	for _, k := range []Kind{Refuse, Truncate} {
		frac := float64(counts[k]) / n
		if frac < 0.20 || frac > 0.30 {
			t.Errorf("%s rate = %.3f, want ≈0.25", k, frac)
		}
	}
	if got := counts[None]; float64(got)/n < 0.45 {
		t.Errorf("clean rate = %.3f, want ≈0.5", float64(got)/n)
	}
	if in.Total() != n-counts[None] {
		t.Errorf("ledger total = %d, want %d", in.Total(), n-counts[None])
	}
}

func TestConcurrentLedgerIsDeterministic(t *testing.T) {
	plan := Plan{Seed: 3, RefuseProb: 0.2, ResetProb: 0.2, CorruptProb: 0.2}
	run := func() string {
		in := New(plan)
		var wg sync.WaitGroup
		for s := 0; s < 16; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for k := 0; k < 8; k++ {
					for d := 0; d < 3; d++ {
						in.decide(fmt.Sprintf("session-%d", s), fmt.Sprintf("host%d:443", k))
					}
				}
			}(s)
		}
		wg.Wait()
		return in.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("concurrent runs produced different ledgers:\n%s\nvs\n%s", a, b)
	}
}

func TestPlanValidation(t *testing.T) {
	for _, plan := range []Plan{
		{RefuseProb: 0.7, ResetProb: 0.7},
		{StallProb: -0.1},
		{CorruptProb: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) should panic", plan)
				}
			}()
			New(plan)
		}()
	}
}
