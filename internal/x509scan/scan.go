// Package x509scan implements an active certificate collector in the style
// of the EFF SSL Observatory, which §4.2 contrasts with the ICSI Notary's
// passive collection: instead of watching live traffic, a scanner connects
// out to a target list, records each presented chain, and feeds the same
// database. Active scans see services passive taps miss (and vice versa),
// so real deployments run both.
package x509scan

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"time"

	"tangledmass/internal/corpus"
	"tangledmass/internal/notary"
	"tangledmass/internal/parallel"
	"tangledmass/internal/tlsnet"
)

// Result is one scanned target.
type Result struct {
	Target tlsnet.HostPort
	// Chain is the presented chain, leaf first; nil when Err is set.
	Chain []*x509.Certificate
	// Elapsed is the connect+handshake duration.
	Elapsed time.Duration
	Err     error
}

// Scanner scans target lists concurrently. The zero value is not usable;
// set Dialer at minimum.
type Scanner struct {
	// Dialer provides connectivity to targets.
	Dialer tlsnet.Dialer
	// Concurrency bounds parallel handshakes. Values < 1 mean 8.
	Concurrency int
	// Timeout bounds one target's connect+handshake. Zero means 10s.
	Timeout time.Duration
}

// Scan probes every target and returns results in target order. The
// context bounds the whole run: once it is cancelled no further targets
// are dialed and the context's error is returned.
func (s *Scanner) Scan(ctx context.Context, targets []tlsnet.HostPort) ([]Result, error) {
	if s.Dialer == nil {
		return nil, fmt.Errorf("x509scan: scanner needs a dialer")
	}
	conc := s.Concurrency
	if conc < 1 {
		conc = 8
	}
	timeout := s.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	// Failed handshakes are per-target Results, not fan-out errors, so Map
	// itself only fails when ctx is cancelled before a target is dialed —
	// and scanOne already converts that into the target's Err.
	return parallel.Map(ctx, len(targets), func(ctx context.Context, i int) (Result, error) {
		return s.scanOne(ctx, targets[i], timeout), nil
	}, parallel.WithWorkers(conc))
}

func (s *Scanner) scanOne(ctx context.Context, hp tlsnet.HostPort, timeout time.Duration) (res Result) {
	res = Result{Target: hp}
	start := time.Now()
	// Named result: the deferred assignment must reach the caller on every
	// return path.
	defer func() { res.Elapsed = time.Since(start) }()

	conn, err := s.Dialer.DialSite(ctx, hp.Host, hp.Port)
	if err != nil {
		res.Err = fmt.Errorf("x509scan: dialing %s: %w", hp, err)
		return res
	}
	defer conn.Close()
	if err := conn.SetDeadline(start.Add(timeout)); err != nil {
		res.Err = fmt.Errorf("x509scan: setting deadline for %s: %w", hp, err)
		return res
	}
	// Like the Netalyzr probe, the scanner records whatever is presented.
	tconn := tls.Client(conn, &tls.Config{ServerName: hp.Host, InsecureSkipVerify: true})
	if err := tconn.Handshake(); err != nil {
		res.Err = fmt.Errorf("x509scan: handshake with %s: %w", hp, err)
		return res
	}
	defer tconn.Close()
	// Every TLS handshake yields freshly-parsed certificates; intern them so
	// the returned chain carries the canonical corpus instances and repeat
	// scans of one host dedup to the same entries downstream.
	peers := tconn.ConnectionState().PeerCertificates
	res.Chain = make([]*x509.Certificate, len(peers))
	for i, c := range peers {
		res.Chain[i] = corpus.CertOf(corpus.InternCert(c))
	}
	return res
}

// FeedNotary observes every successful scan result into the database,
// returning how many chains were fed.
func FeedNotary(n *notary.Notary, results []Result) int {
	fed := 0
	for _, r := range results {
		if r.Err != nil || len(r.Chain) == 0 {
			continue
		}
		n.Observe(notary.Observation{Chain: r.Chain, Port: r.Target.Port})
		fed++
	}
	return fed
}

// Summary aggregates a scan run.
type Summary struct {
	Targets   int
	Succeeded int
	Failed    int
	// DistinctRoots counts distinct top-of-chain subjects observed.
	DistinctRoots int
}

// Summarize computes the scan summary.
func Summarize(results []Result) Summary {
	sum := Summary{Targets: len(results)}
	roots := map[string]bool{}
	for _, r := range results {
		if r.Err != nil || len(r.Chain) == 0 {
			sum.Failed++
			continue
		}
		sum.Succeeded++
		top := r.Chain[len(r.Chain)-1]
		roots[string(top.RawSubject)] = true
	}
	sum.DistinctRoots = len(roots)
	return sum
}
