package x509scan

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/tlsnet"
)

var (
	envOnce  sync.Once
	envSrv   *tlsnet.Server
	envSites *tlsnet.Sites
	envErr   error
)

func env(t *testing.T) (*tlsnet.Server, *tlsnet.Sites) {
	t.Helper()
	envOnce.Do(func() {
		var w *tlsnet.World
		w, envErr = tlsnet.NewWorld(tlsnet.Config{Seed: 17, NumLeaves: 10})
		if envErr != nil {
			return
		}
		envSites, envErr = tlsnet.NewSites(w)
		if envErr != nil {
			return
		}
		envSrv, envErr = tlsnet.ServeSites(envSites)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envSrv, envSites
}

func TestScanAllTargets(t *testing.T) {
	srv, _ := env(t)
	s := &Scanner{Dialer: tlsnet.DirectDialer{Server: srv}, Concurrency: 4}
	targets := tlsnet.ProbeTargets()
	results, err := s.Scan(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(targets) {
		t.Fatalf("results = %d, want %d", len(results), len(targets))
	}
	for i, r := range results {
		if r.Target != targets[i] {
			t.Fatal("results not in target order")
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Target, r.Err)
		}
		if len(r.Chain) < 2 {
			t.Errorf("%s: chain too short", r.Target)
		}
		if r.Elapsed <= 0 {
			t.Errorf("%s: elapsed not recorded", r.Target)
		}
	}
	sum := Summarize(results)
	if sum.Succeeded != len(targets) || sum.Failed != 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.DistinctRoots < 5 {
		t.Errorf("distinct roots = %d, want several (sites rotate issuers)", sum.DistinctRoots)
	}
}

func TestScanFeedsNotary(t *testing.T) {
	srv, _ := env(t)
	s := &Scanner{Dialer: tlsnet.DirectDialer{Server: srv}}
	results, err := s.Scan(context.Background(), tlsnet.ProbeTargets()[:5])
	if err != nil {
		t.Fatal(err)
	}
	n := notary.New(certgen.Epoch)
	if fed := FeedNotary(n, results); fed != 5 {
		t.Errorf("fed = %d, want 5", fed)
	}
	if n.Sessions() != 5 {
		t.Errorf("sessions = %d", n.Sessions())
	}
	if !n.HasRecord(results[0].Chain[0]) {
		t.Error("scanned leaf should be on record")
	}
}

func TestScanFailuresSurface(t *testing.T) {
	s := &Scanner{Dialer: failingDialer{}, Timeout: time.Second}
	results, err := s.Scan(context.Background(), []tlsnet.HostPort{{Host: "down.example", Port: 443}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("dial failure should surface")
	}
	sum := Summarize(results)
	if sum.Failed != 1 || sum.Succeeded != 0 {
		t.Errorf("summary = %+v", sum)
	}
	n := notary.New(certgen.Epoch)
	if fed := FeedNotary(n, results); fed != 0 {
		t.Errorf("failed scans must not feed the notary, fed %d", fed)
	}
}

func TestScannerNeedsDialer(t *testing.T) {
	if _, err := (&Scanner{}).Scan(context.Background(), nil); err == nil {
		t.Error("scanner without dialer should error")
	}
}

func TestScanEmptyTargets(t *testing.T) {
	srv, _ := env(t)
	s := &Scanner{Dialer: tlsnet.DirectDialer{Server: srv}}
	results, err := s.Scan(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Error("empty scan should be empty")
	}
}

type failingDialer struct{}

func (failingDialer) DialSite(ctx context.Context, host string, port int) (net.Conn, error) {
	return nil, net.ErrClosed
}
