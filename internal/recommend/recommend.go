// Package recommend implements the paper's §8 recommendation pipeline,
// following Perl et al. ("You Won't Be Needing These Any More"), whose
// result the paper's analysis confirms: a large share of root-store
// certificates validate no observed TLS traffic and could be disabled "with
// little negative effect on the user experience" (§5.3).
//
// Given a Notary and a root store, Minimize ranks every root by how many
// observed certificates it validates, proposes a pruned store, and
// quantifies the breakage the pruning would cause against the same
// observation corpus — making the cost of each removal explicit rather than
// assumed.
package recommend

import (
	"fmt"
	"sort"

	"tangledmass/internal/certid"
	"tangledmass/internal/notary"
	"tangledmass/internal/rootstore"
)

// RootUsage is one root's observed utility.
type RootUsage struct {
	Identity certid.Identity
	// Validations is the number of non-expired Notary leaves the root
	// validates.
	Validations int
}

// Minimization is the outcome of a pruning proposal.
type Minimization struct {
	// Store is the store analyzed.
	Store *rootstore.Store
	// Threshold is the minimum validation count a root needed to be kept.
	Threshold int
	// Keep and Remove partition the store's roots, each sorted by
	// descending validations then subject.
	Keep   []RootUsage
	Remove []RootUsage
	// Pruned is the store with Remove applied.
	Pruned *rootstore.Store
}

// RemovableFraction is the share of roots proposed for removal.
func (m *Minimization) RemovableFraction() float64 {
	total := len(m.Keep) + len(m.Remove)
	if total == 0 {
		return 0
	}
	return float64(len(m.Remove)) / float64(total)
}

// String summarizes the proposal.
func (m *Minimization) String() string {
	return fmt.Sprintf("%s: remove %d of %d roots (%.0f%%) at threshold %d",
		m.Store.Name(), len(m.Remove), len(m.Keep)+len(m.Remove),
		m.RemovableFraction()*100, m.Threshold)
}

// Minimize proposes removing every root that validates fewer than threshold
// observed certificates. Threshold 1 is the paper's criterion: remove roots
// that validate nothing.
func Minimize(n *notary.Notary, store *rootstore.Store, threshold int) *Minimization {
	if threshold < 1 {
		threshold = 1
	}
	rep := n.ValidateOne(store)
	m := &Minimization{Store: store, Threshold: threshold}
	for id, count := range rep.PerRoot {
		u := RootUsage{Identity: id, Validations: count}
		if count >= threshold {
			m.Keep = append(m.Keep, u)
		} else {
			m.Remove = append(m.Remove, u)
		}
	}
	sortUsage(m.Keep)
	sortUsage(m.Remove)
	m.Pruned = store.Clone(store.Name() + " (pruned)")
	for _, u := range m.Remove {
		m.Pruned.Remove(u.Identity)
	}
	return m
}

func sortUsage(us []RootUsage) {
	sort.Slice(us, func(i, j int) bool {
		if us[i].Validations != us[j].Validations {
			return us[i].Validations > us[j].Validations
		}
		return us[i].Identity.Subject < us[j].Identity.Subject
	})
}

// Breakage quantifies what a pruning proposal costs: how many Notary leaves
// validated by the original store no longer validate under the pruned one.
type Breakage struct {
	Before int // leaves validated by the original store
	After  int // leaves validated by the pruned store
	Broken int // Before - After
}

// BrokenFraction is Broken/Before (0 when Before is 0).
func (b Breakage) BrokenFraction() float64 {
	if b.Before == 0 {
		return 0
	}
	return float64(b.Broken) / float64(b.Before)
}

// EvaluateBreakage measures a proposal against the Notary corpus. At
// threshold 1 breakage is zero by construction — removed roots validated
// nothing — which is the empirical core of the §8 recommendation.
func EvaluateBreakage(n *notary.Notary, m *Minimization) Breakage {
	reports := n.Validate(m.Store, m.Pruned)
	b := Breakage{Before: reports[0].Validated, After: reports[1].Validated}
	b.Broken = b.Before - b.After
	return b
}

// Sweep runs Minimize across thresholds, returning one (proposal, breakage)
// pair per threshold — the ablation behind "how aggressively can a store be
// pruned before users notice".
type SweepPoint struct {
	Threshold    int
	Removed      int
	RemovedFrac  float64
	Broken       int
	BrokenFrac   float64
	KeptValidate int
}

// Sweep evaluates the given thresholds in order.
func Sweep(n *notary.Notary, store *rootstore.Store, thresholds []int) []SweepPoint {
	out := make([]SweepPoint, 0, len(thresholds))
	for _, th := range thresholds {
		m := Minimize(n, store, th)
		br := EvaluateBreakage(n, m)
		out = append(out, SweepPoint{
			Threshold:    th,
			Removed:      len(m.Remove),
			RemovedFrac:  m.RemovableFraction(),
			Broken:       br.Broken,
			BrokenFrac:   br.BrokenFraction(),
			KeptValidate: br.After,
		})
	}
	return out
}
