package recommend_test

import (
	"crypto/x509"
	"fmt"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/recommend"
	"tangledmass/internal/rootstore"
)

// The §8 pruning workflow on a toy store: two roots carry all observed
// traffic, a third validates nothing and is proposed for removal — at zero
// measured breakage.
func ExampleMinimize() {
	g := certgen.NewGenerator(42)
	busyA, _ := g.SelfSignedCA("Example Busy Root A")
	busyB, _ := g.SelfSignedCA("Example Busy Root B")
	idle, _ := g.SelfSignedCA("Example Idle Root")

	store := rootstore.New("toy store")
	store.Add(busyA.Cert)
	store.Add(busyB.Cert)
	store.Add(idle.Cert)

	db := notary.New(certgen.Epoch)
	for i, issuer := range []*certgen.Issued{busyA, busyB, busyA} {
		leaf, _ := g.Leaf(issuer, fmt.Sprintf("ex%d.example.org", i))
		db.Observe(notary.Observation{
			Chain: []*x509.Certificate{leaf.Cert, issuer.Cert},
			Port:  443,
		})
	}

	m := recommend.Minimize(db, store, 1)
	br := recommend.EvaluateBreakage(db, m)
	fmt.Printf("remove %d of %d roots, breaking %d validations\n",
		len(m.Remove), store.Len(), br.Broken)
	for _, u := range m.Remove {
		fmt.Println("removable:", u.Identity.Subject)
	}
	// Output:
	// remove 1 of 3 roots, breaking 0 validations
	// removable: CN=Example Idle Root
}
