package recommend

import (
	"strings"
	"sync"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/tlsnet"
)

var (
	envOnce sync.Once
	envNot  *notary.Notary
	envUni  *cauniverse.Universe
	envErr  error
)

func env(t *testing.T) (*notary.Notary, *cauniverse.Universe) {
	t.Helper()
	envOnce.Do(func() {
		envUni = cauniverse.Default()
		var w *tlsnet.World
		w, envErr = tlsnet.NewWorld(tlsnet.Config{Seed: 1, NumLeaves: 3000, Universe: envUni})
		if envErr != nil {
			return
		}
		envNot = notary.New(certgen.Epoch)
		tlsnet.Feed(w, envNot)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envNot, envUni
}

func TestMinimizeAOSP44(t *testing.T) {
	n, u := env(t)
	m := Minimize(n, u.AOSP("4.4"), 1)
	if len(m.Keep)+len(m.Remove) != 150 {
		t.Fatalf("partition covers %d roots, want 150", len(m.Keep)+len(m.Remove))
	}
	// §5.3: 23% of AOSP 4.4 roots validate nothing.
	if f := m.RemovableFraction(); f < 0.19 || f > 0.28 {
		t.Errorf("removable fraction = %.3f, want ≈0.23", f)
	}
	if m.Pruned.Len() != len(m.Keep) {
		t.Errorf("pruned store = %d, keep list = %d", m.Pruned.Len(), len(m.Keep))
	}
	// The original store is untouched.
	if u.AOSP("4.4").Len() != 150 {
		t.Fatal("Minimize mutated the input store")
	}
	// Keep is sorted by descending validations.
	for i := 1; i < len(m.Keep); i++ {
		if m.Keep[i-1].Validations < m.Keep[i].Validations {
			t.Fatal("Keep not sorted by validations")
		}
	}
	// Every removed root validates below threshold.
	for _, u := range m.Remove {
		if u.Validations >= m.Threshold {
			t.Fatalf("removed root validates %d ≥ threshold", u.Validations)
		}
	}
	if !strings.Contains(m.String(), "AOSP 4.4") {
		t.Errorf("String = %q", m.String())
	}
}

func TestZeroThresholdBreakageIsZero(t *testing.T) {
	n, u := env(t)
	m := Minimize(n, u.AOSP("4.4"), 1)
	br := EvaluateBreakage(n, m)
	if br.Broken != 0 {
		t.Errorf("threshold-1 pruning broke %d validations, want 0 (§8's premise)", br.Broken)
	}
	if br.Before != br.After {
		t.Errorf("before=%d after=%d", br.Before, br.After)
	}
	if br.BrokenFraction() != 0 {
		t.Error("broken fraction should be 0")
	}
}

func TestHigherThresholdCausesBreakage(t *testing.T) {
	n, u := env(t)
	m := Minimize(n, u.AOSP("4.4"), 10)
	br := EvaluateBreakage(n, m)
	if br.Broken <= 0 {
		t.Errorf("threshold-10 pruning broke %d validations, want > 0", br.Broken)
	}
	if br.After+br.Broken != br.Before {
		t.Error("breakage arithmetic inconsistent")
	}
}

func TestSweepMonotonic(t *testing.T) {
	n, u := env(t)
	pts := Sweep(n, u.AOSP("4.4"), []int{1, 2, 5, 10, 50})
	if len(pts) != 5 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Removed < pts[i-1].Removed {
			t.Error("removed count must be monotone in threshold")
		}
		if pts[i].Broken < pts[i-1].Broken {
			t.Error("breakage must be monotone in threshold")
		}
	}
	if pts[0].Broken != 0 {
		t.Error("threshold 1 must break nothing")
	}
	if last := pts[len(pts)-1]; last.BrokenFrac <= 0 {
		t.Error("aggressive pruning should break something")
	}
}

func TestMinimizeMozillaMatchesTable4(t *testing.T) {
	n, u := env(t)
	m := Minimize(n, u.Mozilla(), 1)
	if f := m.RemovableFraction(); f < 0.18 || f > 0.27 {
		t.Errorf("Mozilla removable = %.3f, want ≈0.22 (Table 4)", f)
	}
}

func TestThresholdFloor(t *testing.T) {
	n, u := env(t)
	m := Minimize(n, u.AOSP("4.1"), -3)
	if m.Threshold != 1 {
		t.Errorf("threshold floor = %d, want 1", m.Threshold)
	}
}
