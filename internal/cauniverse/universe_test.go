package cauniverse

import (
	"crypto/x509"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/certid"
	"tangledmass/internal/chain"
	"tangledmass/internal/rootstore"
)

func TestTable1StoreSizes(t *testing.T) {
	u := Default()
	want := map[string]int{"4.1": 139, "4.2": 140, "4.3": 146, "4.4": 150}
	for v, n := range want {
		if got := u.AOSP(v).Len(); got != n {
			t.Errorf("AOSP %s size = %d, want %d", v, got, n)
		}
	}
	if got := u.Mozilla().Len(); got != 153 {
		t.Errorf("Mozilla size = %d, want 153", got)
	}
	if got := u.IOS7().Len(); got != 227 {
		t.Errorf("iOS7 size = %d, want 227", got)
	}
}

func TestAOSPVersionsAreSupersets(t *testing.T) {
	u := Default()
	vs := AOSPVersions()
	for i := 1; i < len(vs); i++ {
		prev, cur := u.AOSP(vs[i-1]), u.AOSP(vs[i])
		d := rootstore.Diff(prev, cur)
		if len(d.OnlyA) != 0 {
			t.Errorf("AOSP %s lost %d roots present in %s", vs[i], len(d.OnlyA), vs[i-1])
		}
	}
}

func TestMozillaOverlap(t *testing.T) {
	u := Default()
	inter := rootstore.Intersect("i", u.AOSP("4.4"), u.Mozilla())
	if inter.Len() != 130 {
		t.Errorf("equivalence AOSP4.4∩Mozilla = %d, want 130 (Table 4)", inter.Len())
	}
	if got := rootstore.ByteIntersectCount(u.AOSP("4.4"), u.Mozilla()); got != 117 {
		t.Errorf("byte-identical AOSP4.4∩Mozilla = %d, want 117 (§2)", got)
	}
}

func TestAggregatedAndroid(t *testing.T) {
	u := Default()
	agg := u.AggregatedAndroid()
	wantLen := 150 + len(u.Extras())
	if agg.Len() != wantLen {
		t.Errorf("aggregated = %d, want %d", agg.Len(), wantLen)
	}
	// Every extra is non-AOSP by definition.
	for _, r := range u.Extras() {
		if u.AOSP("4.4").Contains(r.Issued.Cert) {
			t.Errorf("extra %q is in AOSP 4.4", r.Name)
		}
	}
}

func TestExpiredRoot(t *testing.T) {
	u := Default()
	exp := u.ExpiredRoot()
	if exp == nil {
		t.Fatal("no expired root")
	}
	if !exp.Issued.Cert.NotAfter.Before(certgen.Epoch) {
		t.Error("expired root is not expired at Epoch")
	}
	// It ships in every AOSP version (§2).
	for _, v := range AOSPVersions() {
		if !u.AOSP(v).Contains(exp.Issued.Cert) {
			t.Errorf("expired root missing from AOSP %s", v)
		}
	}
	if exp.Issues {
		t.Error("expired root must not issue leaves")
	}
}

func TestReissuedRootsEquivalentNotByteEqual(t *testing.T) {
	u := Default()
	for _, r := range u.Roots() {
		if r.Class != SharedReissued {
			continue
		}
		if r.MozillaInstance == nil {
			t.Fatalf("%s: missing Mozilla instance", r.Name)
		}
		if !certid.Equivalent(r.Issued.Cert, r.MozillaInstance.Cert) {
			t.Errorf("%s: instances should be equivalent", r.Name)
		}
		if string(r.Issued.Cert.Raw) == string(r.MozillaInstance.Cert.Raw) {
			t.Errorf("%s: instances should be byte-distinct", r.Name)
		}
	}
}

func TestClassCounts(t *testing.T) {
	u := Default()
	counts := map[Class]int{}
	for _, r := range u.Roots() {
		counts[r.Class]++
	}
	want := map[Class]int{
		SharedByte:           117,
		SharedReissued:       13,
		AOSPOnly:             20,
		MozillaUnobserved:    7,
		ExtraBoth:            7,
		ExtraMozillaOnly:     9,
		ExtraIOSOnly:         16,
		ExtraAndroidRecorded: 30,
		ExtraUnrecorded:      50,
		IOSExclusive:         84,
		RootedOnly:           5,
		Interception:         1,
	}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("class %v count = %d, want %d", c, counts[c], n)
		}
	}
	// "Non AOSP root certs found on Mozilla's" (Table 4) = 16.
	if got := counts[ExtraBoth] + counts[ExtraMozillaOnly]; got != 16 {
		t.Errorf("extras in Mozilla = %d, want 16", got)
	}
}

func TestZeroValidationCalibration(t *testing.T) {
	u := Default()
	zero := func(classes ...Class) (z, total int) {
		set := map[Class]bool{}
		for _, c := range classes {
			set[c] = true
		}
		for _, r := range u.Roots() {
			if !set[r.Class] {
				continue
			}
			total++
			if !r.Issues {
				z++
			}
		}
		return
	}
	check := func(name string, z, total int, wantFrac float64) {
		t.Helper()
		got := float64(z) / float64(total)
		if got < wantFrac-0.03 || got > wantFrac+0.03 {
			t.Errorf("%s: zero fraction %d/%d = %.3f, want ≈%.2f", name, z, total, got, wantFrac)
		}
	}
	z, n := zero(SharedByte, SharedReissued)
	check("AOSP∩Mozilla", z, n, 0.15)
	z, n = zero(SharedByte, SharedReissued, AOSPOnly)
	check("AOSP 4.4", z, n, 0.23)
	z, n = zero(ExtraIOSOnly, ExtraAndroidRecorded, ExtraUnrecorded)
	check("non-AOSP non-Mozilla extras", z, n, 0.72)
	z, n = zero(ExtraBoth, ExtraMozillaOnly)
	check("non-AOSP extras in Mozilla", z, n, 0.38)
}

func TestIssuingRanksContiguous(t *testing.T) {
	u := Default()
	issuing := u.IssuingRoots()
	for i, r := range issuing {
		if r.Rank != i {
			t.Fatalf("issuing[%d].Rank = %d; ranks must be contiguous in order", i, r.Rank)
		}
		if !r.Issues {
			t.Fatalf("non-issuing root %q in IssuingRoots", r.Name)
		}
	}
	for _, r := range u.Roots() {
		if !r.Issues && r.Rank != -1 {
			t.Errorf("non-issuing root %q has rank %d", r.Name, r.Rank)
		}
	}
	// Most popular ranks belong to the AOSP∩Mozilla shared roots — the
	// structural driver of Figure 3's "shared roots validate most certs".
	for i := 0; i < 50; i++ {
		if c := issuing[i].Class; c != SharedByte {
			t.Errorf("rank %d class = %v, want shared-byte", i, c)
		}
	}
}

func TestIssuingRootsValidateTheirLeaves(t *testing.T) {
	u := Default()
	issuing := u.IssuingRoots()
	// Sign a leaf under the most and least popular issuing roots; both must
	// chain to their issuer within the AOSP 4.4 + extras trust set.
	for _, r := range []*Root{issuing[0], issuing[len(issuing)-1]} {
		leaf, err := u.Generator().Leaf(r.Issued, "leaf.example.com")
		if err != nil {
			t.Fatal(err)
		}
		v := chain.NewVerifier([]*x509.Certificate{r.Issued.Cert}, nil, certgen.Epoch)
		if !v.Validates(leaf.Cert) {
			t.Errorf("leaf under %q does not validate", r.Name)
		}
	}
}

func TestRootedOnlyAndInterception(t *testing.T) {
	u := Default()
	rooted := u.RootedOnlyRoots()
	if len(rooted) != 5 {
		t.Fatalf("rooted-only roots = %d, want 5 (Table 5)", len(rooted))
	}
	stores := []*rootstore.Store{u.AOSP("4.4"), u.Mozilla(), u.IOS7(), u.AggregatedAndroid()}
	for _, r := range rooted {
		for _, s := range stores[:3] {
			if s.Contains(r.Issued.Cert) {
				t.Errorf("rooted-only root %q found in %s", r.Name, s.Name())
			}
		}
	}
	ic := u.InterceptionRoot()
	if ic == nil {
		t.Fatal("no interception root")
	}
	for _, s := range stores {
		if s.Contains(ic.Issued.Cert) {
			t.Errorf("interception root found in %s", s.Name())
		}
	}
}

func TestRootLookupAndDeterminism(t *testing.T) {
	u1, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	if u1.Seed() != 7 {
		t.Error("Seed() mismatch")
	}
	a := u1.Root("Motorola FOTA Root CA")
	b := u2.Root("Motorola FOTA Root CA")
	if a == nil || b == nil {
		t.Fatal("catalog root missing")
	}
	if certid.KeyIdentity(a.Issued.Cert) != certid.KeyIdentity(b.Issued.Cert) {
		t.Error("same seed should yield the same key identity")
	}
	if u1.Root("no such root") != nil {
		t.Error("unknown root should be nil")
	}
}

func TestAOSPUnknownVersionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AOSP(unknown) should panic")
		}
	}()
	Default().AOSP("9.9")
}

func TestCatalogCompleteness(t *testing.T) {
	u := Default()
	// Every catalog entry resolves to a live root with a unique name.
	names := map[string]bool{}
	for _, def := range extraCatalog {
		if names[def.name] {
			t.Fatalf("duplicate catalog name %q", def.name)
		}
		names[def.name] = true
		r := u.Root(def.name)
		if r == nil {
			t.Fatalf("catalog root %q missing from universe", def.name)
		}
		if r.Class != def.class {
			t.Fatalf("%q class = %v, want %v", def.name, r.Class, def.class)
		}
	}
	// The Figure 2 label catalog (excluding §5.2 oddballs) has 104 entries;
	// with the 8 oddballs, 112 extras total.
	if len(extraCatalog) != 112 {
		t.Errorf("extras catalog = %d entries, want 112", len(extraCatalog))
	}
	// Class helpers agree with store membership.
	for _, r := range u.Extras() {
		inMoz := u.Mozilla().Contains(r.Issued.Cert)
		if r.Class.InMozilla() != inMoz {
			t.Errorf("%s: InMozilla()=%v but store membership=%v", r.Name, r.Class.InMozilla(), inMoz)
		}
		if r.Class.InIOS7() != u.IOS7().Contains(r.Issued.Cert) {
			t.Errorf("%s: InIOS7() disagrees with store membership", r.Name)
		}
		if !r.Class.IsExtra() {
			t.Errorf("%s: Extras() returned non-extra class %v", r.Name, r.Class)
		}
	}
}
