package cauniverse

// Class places a root certificate in the membership taxonomy the paper's
// analyses partition over (Table 4 categories, Figure 2 shape classes).
type Class int

const (
	// SharedByte roots ship byte-identical in AOSP and Mozilla (the 117 of
	// §2: "117 of AOSP 4.4's 150 certificates also exist in Mozilla's root
	// store").
	SharedByte Class = iota
	// SharedReissued roots are in both AOSP and Mozilla under the paper's
	// equivalence (same subject + key) but byte-distinct: Mozilla carries a
	// re-issued instance with a different validity period (§4.2: "in most
	// cases, only the expiration date change"). Together with SharedByte
	// these form the 130-root AOSP∩Mozilla category of Table 4.
	SharedReissued
	// AOSPOnly roots ship in AOSP but in neither Mozilla nor (mostly) iOS7.
	AOSPOnly
	// MozillaUnobserved roots are Mozilla-only and never appeared on any
	// Android device in the dataset.
	MozillaUnobserved
	// ExtraBoth: non-AOSP additions observed on devices that are present in
	// both Mozilla's and iOS7's stores (Figure 2 class "Mozilla, and iOS7",
	// 6.7% of displayed certs).
	ExtraBoth
	// ExtraMozillaOnly: non-AOSP additions present in Mozilla's store only.
	// With ExtraBoth these form Table 4's "Non AOSP root certs found on
	// Mozilla's" (16 roots).
	ExtraMozillaOnly
	// ExtraIOSOnly: non-AOSP additions present in iOS7's store only
	// (Figure 2 class "iOS7", 16.2%) — e.g. the DoD CLASS 3 Root CA.
	ExtraIOSOnly
	// ExtraAndroidRecorded: non-AOSP additions in no other store but whose
	// certificate the Notary has on record (Figure 2 class "Only Android",
	// 37.1%).
	ExtraAndroidRecorded
	// ExtraUnrecorded: non-AOSP additions the Notary has never seen in any
	// traffic (Figure 2 class "Not recorded by ICSI Notary", 40.0%) — e.g.
	// FOTA/SUPL and code-signing roots used for offline operations, and the
	// §5.2 oddballs (operator APIs, government CAs).
	ExtraUnrecorded
	// IOSExclusive roots ship only in iOS7's store.
	IOSExclusive
	// RootedOnly roots appear exclusively on rooted handsets (Table 5):
	// installed by store-tampering apps or users, never shipped in firmware.
	RootedOnly
	// Interception is the marketing-proxy signing root (§7, the Reality
	// Mine analogue). It ships in no store; it appears only in intercepted
	// TLS chains.
	Interception
)

var classNames = map[Class]string{
	SharedByte:           "shared-byte",
	SharedReissued:       "shared-reissued",
	AOSPOnly:             "aosp-only",
	MozillaUnobserved:    "mozilla-unobserved",
	ExtraBoth:            "extra-mozilla-ios7",
	ExtraMozillaOnly:     "extra-mozilla-only",
	ExtraIOSOnly:         "extra-ios7-only",
	ExtraAndroidRecorded: "extra-android-recorded",
	ExtraUnrecorded:      "extra-unrecorded",
	IOSExclusive:         "ios7-exclusive",
	RootedOnly:           "rooted-only",
	Interception:         "interception",
}

// String returns a stable kebab-case label.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return "unknown"
}

// IsExtra reports whether the class is a non-AOSP addition observed on
// Android devices in the wild.
func (c Class) IsExtra() bool {
	switch c {
	case ExtraBoth, ExtraMozillaOnly, ExtraIOSOnly, ExtraAndroidRecorded, ExtraUnrecorded:
		return true
	}
	return false
}

// InMozilla reports whether roots of this class are members of Mozilla's
// store.
func (c Class) InMozilla() bool {
	switch c {
	case SharedByte, SharedReissued, MozillaUnobserved, ExtraBoth, ExtraMozillaOnly:
		return true
	}
	return false
}

// InIOS7 reports whether roots of this class are members of iOS7's store.
// SharedByte and AOSPOnly membership in iOS7 is partial and decided per
// root; this reports false for those (see Universe construction).
func (c Class) InIOS7() bool {
	switch c {
	case ExtraBoth, ExtraIOSOnly, IOSExclusive:
		return true
	}
	return false
}
