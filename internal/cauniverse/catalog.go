package cauniverse

// The extras catalog reproduces the certificate population of the paper's
// Figure 2 (the non-AOSP roots observed on devices in the wild), using the
// figure's own certificate names, plus the §5.2 "additional observations"
// (operator-API and government roots seen on too few sessions to appear in
// the figure). Class assignments follow the figure's shape legend and the
// footnotes (e.g. DoD CLASS 3 Root CA is in iOS7 but not Mozilla).
//
// Within each class the first zeroValidation[class] entries are roots that
// validate no Notary certificate; the counts are calibrated so Table 4's
// per-category percentages hold (see DESIGN.md).

type extraDef struct {
	name  string
	class Class
}

var zeroValidation = map[Class]int{
	SharedByte:           20, // of 117 (indices 97..116; with SharedReissued → 15% of the 130 AOSP∩Mozilla roots)
	SharedReissued:       0,  // of 13
	AOSPOnly:             14, // of 20 → AOSP 4.4 zero share 34/150 ≈ 23%
	MozillaUnobserved:    7,  // of 7 → Mozilla zero share 33/153 ≈ 22%
	ExtraBoth:            3,  // of 7
	ExtraMozillaOnly:     3,  // of 9 → extras-in-Mozilla zero share 6/16 ≈ 38%
	ExtraIOSOnly:         10, // of 16
	ExtraAndroidRecorded: 9,  // of 30 → non-AOSP/non-Mozilla zero share 69/96 ≈ 72%
	ExtraUnrecorded:      50, // of 50 (never observed ⇒ validate nothing)
	IOSExclusive:         50, // of 84 → iOS7 zero share 93/227 ≈ 41%
	RootedOnly:           5,  // of 5
	Interception:         1,  // of 1
}

var extraCatalog = []extraDef{
	// Present in Mozilla and iOS7 (Figure 2 shape "Mozilla, and iOS7").
	{"Thawte Server CA", ExtraBoth},
	{"Thawte Premium Server CA", ExtraBoth},
	{"Starfield Services Root CA", ExtraBoth},
	{"AddTrust Class 1 CA Root", ExtraBoth},
	{"GlobalSign Root CA", ExtraBoth},
	{"Sonera Class1 CA", ExtraBoth},
	{"Deutsche Telekom Root CA 1", ExtraBoth},

	// Present in Mozilla only.
	{"Certplus Class 1 Primary CA", ExtraMozillaOnly},
	{"Certplus Class 3 Primary CA", ExtraMozillaOnly},
	{"Certplus Class 3P Primary CA", ExtraMozillaOnly},
	{"Certplus Class 3TS Primary CA", ExtraMozillaOnly},
	{"SecureSign Root CA2 Japan", ExtraMozillaOnly},
	{"SecureSign Root CA3 Japan", ExtraMozillaOnly},
	{"TC TrustCenter Class 1 CA", ExtraMozillaOnly},
	{"UserTrust UTN-USERFirst", ExtraMozillaOnly},
	{"COMODO RSA CA", ExtraMozillaOnly},

	// Present in iOS7 only (Figure 2 shape "iOS7").
	{"DoD CLASS 3 Root CA", ExtraIOSOnly},
	{"AOL Time Warner Root CA 1", ExtraIOSOnly},
	{"AOL Time Warner Root CA 2", ExtraIOSOnly},
	{"Thawte Personal Basic CA", ExtraIOSOnly},
	{"Thawte Personal Freemail CA", ExtraIOSOnly},
	{"Thawte Personal Premium CA", ExtraIOSOnly},
	{"Thawte Timestamping CA", ExtraIOSOnly},
	{"Baltimore EZ by DST", ExtraIOSOnly},
	{"Xcert EZ by DST", ExtraIOSOnly},
	{"Visa Information Delivery Root CA", ExtraIOSOnly},
	{"VeriSign Class 1 Public Primary CA (dd84d4b9)", ExtraIOSOnly},
	{"VeriSign Class 2 Public Primary CA (af0a0dc2)", ExtraIOSOnly},
	{"VeriSign Class 3 Public Primary CA", ExtraIOSOnly},
	{"COMODO Secure Certificate Services", ExtraIOSOnly},
	{"COMODO Trusted Certificate Services", ExtraIOSOnly},
	{"GoDaddy Inc", ExtraIOSOnly},

	// In no other store, but the Notary has the certificate on record
	// (Figure 2 shape "Only Android").
	{"Certisign AC2", ExtraAndroidRecorded},
	{"Certisign AC3S", ExtraAndroidRecorded},
	{"Certisign AC4", ExtraAndroidRecorded},
	{"CFCA Root CA", ExtraAndroidRecorded},
	{"DST Root CA X1", ExtraAndroidRecorded},
	{"DST RootCA X2", ExtraAndroidRecorded},
	{"DST-Entrust GTI CA", ExtraAndroidRecorded},
	{"Entrust CA - L1B", ExtraAndroidRecorded},
	{"Entrust.net CA", ExtraAndroidRecorded},
	{"Entrust.net Client CA (9374b4b6)", ExtraAndroidRecorded},
	{"Entrust.net Client CA (c83a995e)", ExtraAndroidRecorded},
	{"Entrust.net Secure Server CA", ExtraAndroidRecorded},
	{"TrustCenter Class 2 CA", ExtraAndroidRecorded},
	{"TrustCenter Class 3 CA", ExtraAndroidRecorded},
	{"UserTrust Client Auth. and Email", ExtraAndroidRecorded},
	{"UserTrust RSA Extended Val. Sec. Server CA", ExtraAndroidRecorded},
	{"VeriSign (d32e20f0)", ExtraAndroidRecorded},
	{"VeriSign Class 1 Public Primary CA (e519bf6d)", ExtraAndroidRecorded},
	{"VeriSign Class 2 Public Primary CA (b65a8ba3)", ExtraAndroidRecorded},
	{"VeriSign Class 3 Extended Validation SSL SGC CA", ExtraAndroidRecorded},
	{"VeriSign Class 3 International Server CA - G3", ExtraAndroidRecorded},
	{"VeriSign Class 3 Secure Server CA - G3", ExtraAndroidRecorded},
	{"VeriSign Class 3 Secure Server CA", ExtraAndroidRecorded},
	{"VeriSign Commercial Software Publishers CA", ExtraAndroidRecorded},
	{"VeriSign Individual Software Publishers CA", ExtraAndroidRecorded},
	{"VeriSign Trust Network (a7880121)", ExtraAndroidRecorded},
	{"VeriSign Trust Network (aad0babe)", ExtraAndroidRecorded},
	{"VeriSign Trust Network (cc5ed111)", ExtraAndroidRecorded},
	{"Certisign AC1S", ExtraAndroidRecorded},
	{"ABA.ECOM Root CA", ExtraAndroidRecorded},

	// Never seen by the Notary in any traffic (Figure 2 shape "Not
	// recorded"): firmware-update, location-assistance, code-signing and
	// operator-service roots that operate offline or on private channels.
	{"Motorola FOTA Root CA", ExtraUnrecorded},
	{"Motorola SUPL Server Root CA", ExtraUnrecorded},
	{"GeoTrust CA for UTI", ExtraUnrecorded},
	{"GeoTrust CA for Adobe", ExtraUnrecorded},
	{"GeoTrust Mobile Device Root - Privileged", ExtraUnrecorded},
	{"GeoTrust Mobile Device Root", ExtraUnrecorded},
	{"GeoTrust True Credentials CA 2", ExtraUnrecorded},
	{"Cingular Preferred Root CA", ExtraUnrecorded},
	{"Cingular Trusted Root CA", ExtraUnrecorded},
	{"Sprint Nextel Root Authority", ExtraUnrecorded},
	{"Sprint XCA01", ExtraUnrecorded},
	{"Vodafone (Operator Domain)", ExtraUnrecorded},
	{"Vodafone (Widget Operator Domain)", ExtraUnrecorded},
	{"Sony Computer DNAS Root 05", ExtraUnrecorded},
	{"Sony Ericsson Secure E2E", ExtraUnrecorded},
	{"SEVEN Open Channel Primary CA", ExtraUnrecorded},
	{"Microsoft Secure Server Authority", ExtraUnrecorded},
	{"Wells Fargo CA 01", ExtraUnrecorded},
	{"First Data Digital CA", ExtraUnrecorded},
	{"Free SSL CA", ExtraUnrecorded},
	{"eSign Imperito Primary Root CA", ExtraUnrecorded},
	{"eSign Gatekeeper Root CA", ExtraUnrecorded},
	{"eSign Primary Utility Root CA", ExtraUnrecorded},
	{"EUnet International Root CA", ExtraUnrecorded},
	{"FESTE Public Notary Certs", ExtraUnrecorded},
	{"FESTE Verified Certs", ExtraUnrecorded},
	{"IPS CA CLASE1", ExtraUnrecorded},
	{"IPS CA CLASE3 CA", ExtraUnrecorded},
	{"IPS CA CLASEA1 CA", ExtraUnrecorded},
	{"IPS CA CLASEA3", ExtraUnrecorded},
	{"IPS CA Timestamping CA", ExtraUnrecorded},
	{"IPS Chained CAs", ExtraUnrecorded},
	{"DST (ANX Network) CA", ExtraUnrecorded},
	{"DST (NRF) RootCA", ExtraUnrecorded},
	{"DST (UPS) RootCA", ExtraUnrecorded},
	{"RSA Data Security CA", ExtraUnrecorded},
	{"VeriSign CPS", ExtraUnrecorded},
	{"SIA Secure Client CA", ExtraUnrecorded},
	{"SIA Secure Server CA", ExtraUnrecorded},
	{"PTT Post Root CA KeyMail", ExtraUnrecorded},
	{"AddTrust Public CA Root", ExtraUnrecorded},
	{"AddTrust Qualified CA Root", ExtraUnrecorded},

	// §5.2 oddballs: operator service APIs and government CAs, observed on
	// a handful of devices and absent from Notary traffic.
	{"Verizon Wireless Network API CA", ExtraUnrecorded},
	{"Meditel Root CA", ExtraUnrecorded},
	{"Telefonica Root CA 1", ExtraUnrecorded},
	{"Telefonica Root CA 2", ExtraUnrecorded},
	{"Venezuelan National CA", ExtraUnrecorded},
	{"CFCA Root CA 2", ExtraUnrecorded},
	{"CFCA Root CA 3", ExtraUnrecorded},
	{"CFCA Root CA 4", ExtraUnrecorded},
}

// rootedCatalog lists the Table 5 certificate authorities found more
// frequently on rooted devices: user self-signed roots and the Freedom-app
// root ("CRAZY HOUSE", installed on 70 handsets).
var rootedCatalog = []string{
	"CRAZY HOUSE",
	"MIND OVERFLOW",
	"USER_X",
	"CDA/EMAILADDRESS",
	"CIRRUS, PRIVATE",
}

// interceptionName is the §7 marketing-research proxy signing root (the
// Reality Mine analogue).
const interceptionName = "Marketing Research Proxy Root CA"
