// Package cauniverse constructs the synthetic certificate-authority universe
// the reproduction runs on: every root certificate population the paper
// analyzes (AOSP 4.1–4.4, Mozilla, iOS7, the non-AOSP additions observed on
// devices, the rooted-device-only roots of Table 5, and the §7 interception
// root), with real keys and real self-signatures.
//
// The universe reproduces the paper's published structure exactly where the
// paper pins it down:
//
//   - store sizes: AOSP 4.1=139, 4.2=140, 4.3=146, 4.4=150; Mozilla=153;
//     iOS7=227 (Table 1);
//   - 117 of AOSP 4.4's roots are byte-identical in Mozilla's store (§2),
//     and 130 are shared under subject+key equivalence (Table 4) — the 13
//     extra roots are re-issued instances differing only in validity;
//   - one AOSP root is already expired at the measurement epoch (§2, the
//     Firmaprofesional case);
//   - per-category fractions of roots that validate no Notary certificate
//     (Table 4) are fixed by per-root issuance flags.
package cauniverse

import (
	"fmt"
	"sync"

	"tangledmass/internal/certgen"
	"tangledmass/internal/rootstore"
)

// Store-size constants from Table 1 and the overlap structure of §2/Table 4.
const (
	NumSharedByte     = 117 // byte-identical in AOSP and Mozilla
	NumSharedReissued = 13  // equivalence-shared (subject+key), byte-distinct
	NumAOSPOnly       = 20
	NumMozillaOnly    = 7 // Mozilla-only roots never observed on Android
	NumIOSExclusive   = 84

	AOSP41Size = 139
	AOSP42Size = 140
	AOSP43Size = 146
	AOSP44Size = 150

	// iOS7 membership among shared/AOSP-only roots (chosen so that
	// |iOS7| = 227 and the Table 4 zero-validation share of iOS7 ≈ 41%).
	iosSharedByteIssuing = 90 // shared-byte indices 0..89
	iosAOSPOnly          = 10 // AOSP-only class indices 0..9
)

// ExpiredRootName is the AOSP root that expired during the measurement
// window yet still ships in every AOSP store (§2).
const ExpiredRootName = "Autoridad de Certificacion Firmaprofesional (analogue)"

// Root is one certificate authority in the universe with the metadata the
// analyses need.
type Root struct {
	// Name is the CA's display name (for extras, the Figure 2 label).
	Name string
	// Class is the membership taxonomy bucket.
	Class Class
	// Issues reports whether this root issues TLS server certificates in
	// the simulated internet. Roots with Issues == false validate no Notary
	// certificate — they are the per-category zero-validation populations
	// of Table 4.
	Issues bool
	// Rank is the popularity rank among issuing roots (0 = most popular,
	// drives the Zipf leaf-issuance distribution), or -1 if !Issues.
	Rank int
	// Issued is the certificate and private key.
	Issued *certgen.Issued
	// MozillaInstance is the byte-distinct re-issued instance carried by
	// Mozilla's store; non-nil only for SharedReissued roots.
	MozillaInstance *certgen.Issued
}

// Universe is the full CA population. Construct with New; all methods are
// safe for concurrent use after construction.
type Universe struct {
	seed   int64
	gen    *certgen.Generator
	roots  []*Root
	byName map[string]*Root

	aosp       map[string]*rootstore.Store
	mozilla    *rootstore.Store
	ios7       *rootstore.Store
	aggregated *rootstore.Store
	issuing    []*Root
}

// AOSPVersions lists the Android versions with an official AOSP store, in
// release order.
func AOSPVersions() []string { return []string{"4.1", "4.2", "4.3", "4.4"} }

// New constructs the universe deterministically from seed.
func New(seed int64) (*Universe, error) {
	u := &Universe{
		seed:   seed,
		gen:    certgen.NewGenerator(seed),
		byName: make(map[string]*Root),
		aosp:   make(map[string]*rootstore.Store),
	}
	if err := u.build(); err != nil {
		return nil, err
	}
	return u, nil
}

var (
	defaultOnce sync.Once
	defaultU    *Universe
	defaultErr  error
)

// Default returns the shared seed-1 universe that all paper tables and
// figures are generated from. It panics if construction fails, which only a
// programming error can cause.
func Default() *Universe {
	defaultOnce.Do(func() {
		defaultU, defaultErr = New(1)
	})
	if defaultErr != nil {
		panic("cauniverse: building default universe: " + defaultErr.Error())
	}
	return defaultU
}

func (u *Universe) addRoot(r *Root) error {
	if _, dup := u.byName[r.Name]; dup {
		return fmt.Errorf("cauniverse: duplicate root name %q", r.Name)
	}
	u.byName[r.Name] = r
	u.roots = append(u.roots, r)
	return nil
}

// newCA issues one self-signed CA. A few shared roots use RSA keys so the
// RSA-modulus identity path of the paper's methodology is exercised in the
// full universe, not only in unit tests.
func (u *Universe) newCA(name, org, country string, opts ...certgen.Option) (*certgen.Issued, error) {
	all := append([]certgen.Option{
		certgen.WithOrganization(org),
		certgen.WithCountry(country),
	}, opts...)
	return u.gen.SelfSignedCA(name, all...)
}

func (u *Universe) build() error {
	nextRank := 0
	rank := func(issues bool) int {
		if !issues {
			return -1
		}
		r := nextRank
		nextRank++
		return r
	}

	// Shared byte-identical roots. The last zeroValidation[SharedByte] do
	// not issue; the rest carry the most popular ranks.
	sharedZeroStart := NumSharedByte - zeroValidation[SharedByte]
	for i := 0; i < NumSharedByte; i++ {
		name := fmt.Sprintf("AOSP-Mozilla Shared Root CA %03d", i+1)
		var opts []certgen.Option
		if i < 3 {
			opts = append(opts, certgen.WithRSA(1024))
		}
		iss, err := u.newCA(name, "Shared Trust Services", "US", opts...)
		if err != nil {
			return err
		}
		issues := i < sharedZeroStart
		if err := u.addRoot(&Root{Name: name, Class: SharedByte, Issues: issues, Rank: rank(issues), Issued: iss}); err != nil {
			return err
		}
	}

	// Equivalence-shared roots: AOSP carries one instance, Mozilla a
	// re-issued one (same subject and key, new validity).
	for i := 0; i < NumSharedReissued; i++ {
		name := fmt.Sprintf("AOSP-Mozilla Reissued Root CA %02d", i+1)
		iss, err := u.newCA(name, "Reissued Trust Services", "US")
		if err != nil {
			return err
		}
		moz, err := u.gen.Reissue(iss, certgen.WithValidity(
			certgen.Epoch.AddDate(-4, 0, 0), certgen.Epoch.AddDate(15, 0, 0)))
		if err != nil {
			return err
		}
		if err := u.addRoot(&Root{Name: name, Class: SharedReissued, Issues: true, Rank: rank(true), Issued: iss, MozillaInstance: moz}); err != nil {
			return err
		}
	}

	// AOSP-only roots. Class index 0 is the expired Firmaprofesional
	// analogue; the first zeroValidation[AOSPOnly] issue nothing.
	for i := 0; i < NumAOSPOnly; i++ {
		name := fmt.Sprintf("AOSP Exclusive Root CA %02d", i+1)
		var opts []certgen.Option
		if i == 0 {
			name = ExpiredRootName
			opts = append(opts, certgen.Expired())
		}
		iss, err := u.newCA(name, "Android Open Source Project", "US", opts...)
		if err != nil {
			return err
		}
		issues := i >= zeroValidation[AOSPOnly]
		if err := u.addRoot(&Root{Name: name, Class: AOSPOnly, Issues: issues, Rank: rank(issues), Issued: iss}); err != nil {
			return err
		}
	}

	// Mozilla-only, never observed on Android.
	for i := 0; i < NumMozillaOnly; i++ {
		name := fmt.Sprintf("Mozilla Program Root CA %02d", i+1)
		iss, err := u.newCA(name, "Mozilla Trusted Program", "US")
		if err != nil {
			return err
		}
		if err := u.addRoot(&Root{Name: name, Class: MozillaUnobserved, Issues: false, Rank: -1, Issued: iss}); err != nil {
			return err
		}
	}

	// Extras: the Figure 2 catalog plus §5.2 oddballs. Within each class
	// the first zeroValidation[class] entries issue nothing.
	classSeen := make(map[Class]int)
	for _, def := range extraCatalog {
		iss, err := u.newCA(def.name, "Device Vendor Trust", "US")
		if err != nil {
			return err
		}
		idx := classSeen[def.class]
		classSeen[def.class]++
		issues := idx >= zeroValidation[def.class]
		if err := u.addRoot(&Root{Name: def.name, Class: def.class, Issues: issues, Rank: rank(issues), Issued: iss}); err != nil {
			return err
		}
	}

	// iOS7-exclusive roots.
	for i := 0; i < NumIOSExclusive; i++ {
		name := fmt.Sprintf("iOS Trust Services Root CA %02d", i+1)
		iss, err := u.newCA(name, "iOS Trust Services", "US")
		if err != nil {
			return err
		}
		issues := i >= zeroValidation[IOSExclusive]
		if err := u.addRoot(&Root{Name: name, Class: IOSExclusive, Issues: issues, Rank: rank(issues), Issued: iss}); err != nil {
			return err
		}
	}

	// Rooted-device-only roots (Table 5): self-signed, never in traffic.
	for _, name := range rootedCatalog {
		iss, err := u.newCA(name, "Self-Signed", "ZZ")
		if err != nil {
			return err
		}
		if err := u.addRoot(&Root{Name: name, Class: RootedOnly, Issues: false, Rank: -1, Issued: iss}); err != nil {
			return err
		}
	}

	// The interception proxy's signing root (§7).
	iss, err := u.newCA(interceptionName, "Marketing Research Ltd", "GB")
	if err != nil {
		return err
	}
	if err := u.addRoot(&Root{Name: interceptionName, Class: Interception, Issues: false, Rank: -1, Issued: iss}); err != nil {
		return err
	}

	u.buildStores()
	for _, r := range u.roots {
		if r.Issues {
			u.issuing = append(u.issuing, r)
		}
	}
	// issuing is already in rank order because ranks were assigned in
	// construction order.
	return nil
}

// aospOrder returns the 150 AOSP roots in store order: shared-byte,
// shared-reissued, AOSP-only. Version stores are prefixes of this order.
func (u *Universe) aospOrder() []*Root {
	out := make([]*Root, 0, AOSP44Size)
	for _, class := range []Class{SharedByte, SharedReissued, AOSPOnly} {
		for _, r := range u.roots {
			if r.Class == class {
				out = append(out, r)
			}
		}
	}
	return out
}

func (u *Universe) buildStores() {
	order := u.aospOrder()
	sizes := map[string]int{"4.1": AOSP41Size, "4.2": AOSP42Size, "4.3": AOSP43Size, "4.4": AOSP44Size}
	for v, n := range sizes {
		s := rootstore.New("AOSP " + v)
		for _, r := range order[:n] {
			s.Add(r.Issued.Cert)
		}
		u.aosp[v] = s
	}

	moz := rootstore.New("Mozilla")
	ios := rootstore.New("iOS7")
	agg := u.aosp["4.4"].Clone("Aggregated Android")
	var sharedByteIdx, aospOnlyIdx int
	for _, r := range u.roots {
		switch r.Class {
		case SharedByte:
			moz.Add(r.Issued.Cert)
			if sharedByteIdx < iosSharedByteIssuing || !r.Issues {
				// iOS7 carries the popular shared roots and all the
				// zero-validation shared roots.
				ios.Add(r.Issued.Cert)
			}
			sharedByteIdx++
		case SharedReissued:
			moz.Add(r.MozillaInstance.Cert)
		case AOSPOnly:
			if aospOnlyIdx < iosAOSPOnly {
				ios.Add(r.Issued.Cert)
			}
			aospOnlyIdx++
		case MozillaUnobserved:
			moz.Add(r.Issued.Cert)
		case ExtraBoth:
			moz.Add(r.Issued.Cert)
			ios.Add(r.Issued.Cert)
			agg.Add(r.Issued.Cert)
		case ExtraMozillaOnly:
			moz.Add(r.Issued.Cert)
			agg.Add(r.Issued.Cert)
		case ExtraIOSOnly:
			ios.Add(r.Issued.Cert)
			agg.Add(r.Issued.Cert)
		case ExtraAndroidRecorded, ExtraUnrecorded:
			agg.Add(r.Issued.Cert)
		case IOSExclusive:
			ios.Add(r.Issued.Cert)
		}
	}
	u.mozilla = moz
	u.ios7 = ios
	u.aggregated = agg
}

// Seed returns the seed the universe was built from.
func (u *Universe) Seed() int64 { return u.seed }

// Generator exposes the certificate generator so downstream substrates (the
// simulated TLS internet, the MITM proxy) can issue leaves under these roots.
func (u *Universe) Generator() *certgen.Generator { return u.gen }

// AOSP returns the official AOSP store for version ("4.1".."4.4"). It panics
// on an unknown version, which is a programming error.
func (u *Universe) AOSP(version string) *rootstore.Store {
	s, ok := u.aosp[version]
	if !ok {
		panic("cauniverse: unknown AOSP version " + version)
	}
	return s
}

// Mozilla returns Mozilla's root store (153 roots).
func (u *Universe) Mozilla() *rootstore.Store { return u.mozilla }

// IOS7 returns the iOS7 root store (227 roots).
func (u *Universe) IOS7() *rootstore.Store { return u.ios7 }

// AggregatedAndroid returns the union of AOSP 4.4 and every non-AOSP root
// observed on Android devices — the "Aggregated Android root certs" category
// of Table 4 and Figure 3.
func (u *Universe) AggregatedAndroid() *rootstore.Store { return u.aggregated }

// Roots returns every root in construction order.
func (u *Universe) Roots() []*Root {
	out := make([]*Root, len(u.roots))
	copy(out, u.roots)
	return out
}

// Root returns the root with the given name, or nil.
func (u *Universe) Root(name string) *Root { return u.byName[name] }

// Extras returns the non-AOSP additions observed on devices, in catalog
// order.
func (u *Universe) Extras() []*Root {
	var out []*Root
	for _, r := range u.roots {
		if r.Class.IsExtra() {
			out = append(out, r)
		}
	}
	return out
}

// RootedOnlyRoots returns the Table 5 roots.
func (u *Universe) RootedOnlyRoots() []*Root {
	var out []*Root
	for _, r := range u.roots {
		if r.Class == RootedOnly {
			out = append(out, r)
		}
	}
	return out
}

// InterceptionRoot returns the §7 proxy signing root.
func (u *Universe) InterceptionRoot() *Root {
	return u.byName[interceptionName]
}

// IssuingRoots returns the roots that issue TLS leaves, ordered by
// popularity rank (rank 0 first).
func (u *Universe) IssuingRoots() []*Root {
	out := make([]*Root, len(u.issuing))
	copy(out, u.issuing)
	return out
}

// ExpiredRoot returns the expired AOSP root analogue.
func (u *Universe) ExpiredRoot() *Root { return u.byName[ExpiredRootName] }
