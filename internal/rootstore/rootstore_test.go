package rootstore

import (
	"crypto/x509"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"tangledmass/internal/certgen"
	"tangledmass/internal/certid"
)

// testCerts issues n distinct root certificates.
func testCerts(t *testing.T, seed int64, n int) []*x509.Certificate {
	t.Helper()
	g := certgen.NewGenerator(seed)
	out := make([]*x509.Certificate, n)
	for i := range out {
		ca, err := g.SelfSignedCA("Root " + string(rune('A'+i%26)) + "-" + string(rune('0'+i/26)))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ca.Cert
	}
	return out
}

func TestAddRemoveContains(t *testing.T) {
	certs := testCerts(t, 1, 3)
	s := New("test")
	if s.Len() != 0 {
		t.Fatal("new store should be empty")
	}
	for _, c := range certs {
		if !s.Add(c) {
			t.Error("first Add should return true")
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Add(certs[0]) {
		t.Error("duplicate Add should return false")
	}
	if s.Len() != 3 {
		t.Error("duplicate Add changed Len")
	}
	if !s.Contains(certs[1]) {
		t.Error("Contains should find added cert")
	}
	id := certid.IdentityOf(certs[1])
	if !s.Remove(id) {
		t.Error("Remove should report presence")
	}
	if s.Remove(id) {
		t.Error("second Remove should report absence")
	}
	if s.Contains(certs[1]) {
		t.Error("removed cert still present")
	}
	if s.Len() != 2 {
		t.Fatalf("Len after remove = %d, want 2", s.Len())
	}
}

func TestAddEquivalentRejected(t *testing.T) {
	g := certgen.NewGenerator(2)
	orig, err := g.SelfSignedCA("Dup Root")
	if err != nil {
		t.Fatal(err)
	}
	re, err := g.Reissue(orig, certgen.WithValidity(certgen.Epoch, certgen.Epoch.AddDate(30, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	s := New("dup")
	s.Add(orig.Cert)
	if s.Add(re.Cert) {
		t.Error("equivalent (reissued) cert should be rejected as duplicate")
	}
	if got := s.Get(certid.IdentityOf(re.Cert)); got != orig.Cert {
		t.Error("first-seen instance should win")
	}
}

func TestInsertionOrderPreserved(t *testing.T) {
	certs := testCerts(t, 3, 5)
	s := New("order")
	for _, c := range certs {
		s.Add(c)
	}
	got := s.Certificates()
	for i := range certs {
		if got[i] != certs[i] {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestSetOps(t *testing.T) {
	certs := testCerts(t, 4, 6)
	a := New("a")
	a.AddAll(certs[:4]) // 0 1 2 3
	b := New("b")
	b.AddAll(certs[2:]) // 2 3 4 5

	u := Union("u", a, b)
	if u.Len() != 6 {
		t.Errorf("union Len = %d, want 6", u.Len())
	}
	i := Intersect("i", a, b)
	if i.Len() != 2 {
		t.Errorf("intersect Len = %d, want 2", i.Len())
	}
	sub := Subtract("s", a, b)
	if sub.Len() != 2 {
		t.Errorf("subtract Len = %d, want 2", sub.Len())
	}
	if !sub.Contains(certs[0]) || !sub.Contains(certs[1]) {
		t.Error("subtract kept wrong certs")
	}

	d := Diff(a, b)
	if len(d.OnlyA) != 2 || len(d.OnlyB) != 2 || len(d.Both) != 2 {
		t.Errorf("diff = %d/%d/%d, want 2/2/2", len(d.OnlyA), len(d.OnlyB), len(d.Both))
	}
}

func TestSetOpsProperties(t *testing.T) {
	certs := testCerts(t, 5, 8)
	// Property: for random bipartitions, |A| = |A∩B| + |A\B| and
	// |A∪B| = |A| + |B| - |A∩B|.
	err := quick.Check(func(mask uint8) bool {
		a, b := New("a"), New("b")
		for i, c := range certs {
			if mask&(1<<i) != 0 {
				a.Add(c)
			} else {
				b.Add(c)
			}
			// Overlap: every third cert goes to both.
			if i%3 == 0 {
				a.Add(c)
				b.Add(c)
			}
		}
		inter := Intersect("i", a, b)
		subAB := Subtract("s", a, b)
		union := Union("u", a, b)
		if a.Len() != inter.Len()+subAB.Len() {
			return false
		}
		return union.Len() == a.Len()+b.Len()-inter.Len()
	}, &quick.Config{MaxCount: 64})
	if err != nil {
		t.Error(err)
	}
}

func TestEqualAndClone(t *testing.T) {
	certs := testCerts(t, 6, 4)
	a := New("a")
	a.AddAll(certs)
	c := a.Clone("copy")
	if !Equal(a, c) {
		t.Error("clone should equal original")
	}
	c.Remove(certid.IdentityOf(certs[0]))
	if Equal(a, c) {
		t.Error("mutated clone should differ")
	}
	if a.Len() != 4 {
		t.Error("mutating clone affected original")
	}
	b := New("b")
	b.AddAll(certs[:3])
	b.Add(testCerts(t, 7, 1)[0])
	if Equal(a, b) {
		t.Error("stores with different members should not be Equal")
	}
}

func TestCertificatesCopyIsSafe(t *testing.T) {
	certs := testCerts(t, 8, 2)
	s := New("safe")
	s.AddAll(certs)
	got := s.Certificates()
	got[0] = nil
	if s.Certificates()[0] == nil {
		t.Error("mutating returned slice affected store")
	}
}

func TestCacertsRoundTrip(t *testing.T) {
	certs := testCerts(t, 9, 5)
	s := New("android")
	s.AddAll(certs)
	dir := filepath.Join(t.TempDir(), "cacerts")
	if err := WriteCacertsDir(dir, s); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("wrote %d files, want 5", len(entries))
	}
	for _, e := range entries {
		if !validCacertsName(e.Name()) {
			t.Errorf("file name %q not in <hash>.<n> form", e.Name())
		}
	}
	back, err := ReadCacertsDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(s, back) {
		t.Error("round-trip changed store membership")
	}
}

func TestCacertsHashCollision(t *testing.T) {
	// Two distinct-key certs with the same subject collide on subject hash
	// and must be written as hash.0 and hash.1.
	g := certgen.NewGenerator(10)
	a, _ := g.SelfSignedCA("Collide", certgen.WithKeyName("ka"))
	b, _ := g.SelfSignedCA("Collide", certgen.WithKeyName("kb"))
	s := New("collide")
	if !s.Add(a.Cert) || !s.Add(b.Cert) {
		t.Fatal("both certs should be distinct identities")
	}
	dir := filepath.Join(t.TempDir(), "cacerts")
	if err := WriteCacertsDir(dir, s); err != nil {
		t.Fatal(err)
	}
	hash := certid.SubjectHashString(a.Cert)
	for _, suffix := range []string{".0", ".1"} {
		if _, err := os.Stat(filepath.Join(dir, hash+suffix)); err != nil {
			t.Errorf("missing %s%s: %v", hash, suffix, err)
		}
	}
	back, err := ReadCacertsDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("read back %d certs, want 2", back.Len())
	}
}

func TestReadCacertsRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.0"), []byte("not a cert"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCacertsDir(dir); err == nil {
		t.Error("garbage PEM should be an error")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCacertsDir(dir2); err == nil {
		t.Error("non-cacerts file name should be an error")
	}
}

func TestPEMBundleRoundTrip(t *testing.T) {
	certs := testCerts(t, 11, 3)
	s := New("bundle")
	s.AddAll(certs)
	back, err := LoadPEM("bundle2", s.EncodePEM())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(s, back) {
		t.Error("PEM bundle round-trip changed membership")
	}
}

func TestValidCacertsName(t *testing.T) {
	good := []string{"00000000.0", "deadbeef.12", "979eb027.1"}
	bad := []string{"deadbeef", "DEADBEEF.0", "deadbee.0", "deadbeef.x", "deadbeef0", "xx.0"}
	for _, n := range good {
		if !validCacertsName(n) {
			t.Errorf("%q should be valid", n)
		}
	}
	for _, n := range bad {
		if validCacertsName(n) {
			t.Errorf("%q should be invalid", n)
		}
	}
}

func TestSortedSubjectsAndString(t *testing.T) {
	certs := testCerts(t, 12, 3)
	s := New("pretty")
	s.AddAll(certs)
	subj := s.SortedSubjects()
	if len(subj) != 3 {
		t.Fatalf("got %d subjects", len(subj))
	}
	for i := 1; i < len(subj); i++ {
		if subj[i-1] > subj[i] {
			t.Error("subjects not sorted")
		}
	}
	if s.String() != "pretty (3 roots)" {
		t.Errorf("String = %q", s.String())
	}
}
