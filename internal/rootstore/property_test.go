package rootstore_test

import (
	"crypto/x509"
	"testing"
	"testing/quick"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certid"
	"tangledmass/internal/rootstore"
)

// universeCerts returns a deterministic pool of distinct certificates to
// drive property tests.
func universeCerts(t *testing.T) []*x509.Certificate {
	t.Helper()
	return cauniverse.Default().AOSP("4.4").Certificates()
}

// pick builds a store from a bitmask over the first 16 pool certs.
func pick(pool []*x509.Certificate, mask uint16, name string) *rootstore.Store {
	s := rootstore.New(name)
	for i := 0; i < 16; i++ {
		if mask&(1<<i) != 0 {
			s.Add(pool[i])
		}
	}
	return s
}

func TestPropUnionCommutative(t *testing.T) {
	pool := universeCerts(t)
	err := quick.Check(func(a, b uint16) bool {
		sa, sb := pick(pool, a, "a"), pick(pool, b, "b")
		return rootstore.Equal(rootstore.Union("u1", sa, sb), rootstore.Union("u2", sb, sa))
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestPropUnionIdempotent(t *testing.T) {
	pool := universeCerts(t)
	err := quick.Check(func(a uint16) bool {
		sa := pick(pool, a, "a")
		return rootstore.Equal(rootstore.Union("u", sa, sa), sa)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestPropIntersectSubset(t *testing.T) {
	pool := universeCerts(t)
	err := quick.Check(func(a, b uint16) bool {
		sa, sb := pick(pool, a, "a"), pick(pool, b, "b")
		inter := rootstore.Intersect("i", sa, sb)
		for _, c := range inter.Certificates() {
			if !sa.Contains(c) || !sb.Contains(c) {
				return false
			}
		}
		return inter.Len() == pick(pool, a&b, "ab").Len()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestPropDiffPartition(t *testing.T) {
	pool := universeCerts(t)
	err := quick.Check(func(a, b uint16) bool {
		sa, sb := pick(pool, a, "a"), pick(pool, b, "b")
		d := rootstore.Diff(sa, sb)
		// |OnlyA| + |Both| = |A|; |OnlyB| + |Both| = |B|.
		return len(d.OnlyA)+len(d.Both) == sa.Len() &&
			len(d.OnlyB)+len(d.Both) == sb.Len()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestPropSubtractDisjoint(t *testing.T) {
	pool := universeCerts(t)
	err := quick.Check(func(a, b uint16) bool {
		sa, sb := pick(pool, a, "a"), pick(pool, b, "b")
		sub := rootstore.Subtract("s", sa, sb)
		if rootstore.Intersect("i", sub, sb).Len() != 0 {
			return false
		}
		return rootstore.Equal(rootstore.Union("u", sub, rootstore.Intersect("i2", sa, sb)), sa)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestPropAddRemoveInverse(t *testing.T) {
	pool := universeCerts(t)
	err := quick.Check(func(a uint16, idx uint8) bool {
		sa := pick(pool, a, "a")
		c := pool[int(idx)%16]
		had := sa.Contains(c)
		added := sa.Add(c)
		if had == added {
			return false // Add must report the inverse of prior membership
		}
		if !had {
			// Remove restores the original membership.
			sa.Remove(certid.IdentityOf(c))
			return !sa.Contains(c)
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestPropByteIntersectLEEquivalent(t *testing.T) {
	// Byte-level matching can never find more shared certs than
	// equivalence matching.
	u := cauniverse.Default()
	stores := []*rootstore.Store{u.AOSP("4.1"), u.AOSP("4.4"), u.Mozilla(), u.IOS7(), u.AggregatedAndroid()}
	for _, a := range stores {
		for _, b := range stores {
			if rootstore.ByteIntersectCount(a, b) > rootstore.Intersect("i", a, b).Len() {
				t.Fatalf("byte intersect > equivalence intersect for %s ∩ %s", a.Name(), b.Name())
			}
		}
	}
}
