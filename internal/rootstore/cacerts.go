package rootstore

import (
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
)

// Android keeps its system root store as a directory of PEM files, one per
// root, named <subject-hash>.<n> where <subject-hash> is the 32-bit OpenSSL
// subject hash and <n> disambiguates collisions (footnote 2 of the paper:
// /system/etc/security/cacerts). These functions read and write that layout
// so the device simulator and the CLI interoperate with the real format.

const pemCertType = "CERTIFICATE"

// WriteCacertsDir writes the store to dir in Android cacerts layout,
// creating dir if needed. Existing files in dir are left alone; callers that
// want a clean image should start from an empty directory.
func WriteCacertsDir(dir string, s *Store) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("rootstore: creating cacerts dir: %w", err)
	}
	used := make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("rootstore: listing cacerts dir: %w", err)
	}
	for _, e := range entries {
		used[e.Name()] = true
	}
	for _, cert := range s.Certificates() {
		hash := certid.SubjectHashString(cert)
		name := ""
		for n := 0; ; n++ {
			candidate := hash + "." + strconv.Itoa(n)
			if !used[candidate] {
				name = candidate
				used[candidate] = true
				break
			}
		}
		block := pem.EncodeToMemory(&pem.Block{Type: pemCertType, Bytes: cert.Raw})
		if err := os.WriteFile(filepath.Join(dir, name), block, 0o644); err != nil {
			return fmt.Errorf("rootstore: writing %s: %w", name, err)
		}
	}
	return nil
}

// ReadCacertsDir loads every <hash>.<n> PEM file from dir into a new store
// named after the directory. Files that are not valid hash.N names or do not
// parse as certificates yield an error: a malformed system store is a
// security-relevant condition, not something to skip silently.
func ReadCacertsDir(dir string) (*Store, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("rootstore: reading cacerts dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	s := New(filepath.Base(dir))
	for _, name := range names {
		if !validCacertsName(name) {
			return nil, fmt.Errorf("rootstore: %s: not a <hash>.<n> cacerts file name", name)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("rootstore: reading %s: %w", name, err)
		}
		certs, err := ParsePEMCertificates(data)
		if err != nil {
			return nil, fmt.Errorf("rootstore: %s: %w", name, err)
		}
		if len(certs) == 0 {
			return nil, fmt.Errorf("rootstore: %s: no certificate in file", name)
		}
		for _, c := range certs {
			s.Add(c)
		}
	}
	return s, nil
}

func validCacertsName(name string) bool {
	dot := strings.LastIndexByte(name, '.')
	if dot != 8 {
		return false
	}
	for _, c := range name[:8] {
		if !strings.ContainsRune("0123456789abcdef", c) {
			return false
		}
	}
	if _, err := strconv.Atoi(name[dot+1:]); err != nil {
		return false
	}
	return true
}

// ParsePEMCertificates parses every CERTIFICATE block in data through the
// shared corpus, so a bundle loaded twice costs one parse.
func ParsePEMCertificates(data []byte) ([]*x509.Certificate, error) {
	refs, err := corpus.ParsePEM(data)
	if err != nil {
		return nil, fmt.Errorf("rootstore: parsing PEM bundle: %w", err)
	}
	return corpus.Shared().Certs(refs), nil
}

// EncodePEM renders the store as a concatenated PEM bundle.
func (s *Store) EncodePEM() []byte {
	var out []byte
	for _, cert := range s.Certificates() {
		out = append(out, pem.EncodeToMemory(&pem.Block{Type: pemCertType, Bytes: cert.Raw})...)
	}
	return out
}

// LoadPEM parses a PEM bundle into a new store with the given name.
func LoadPEM(name string, data []byte) (*Store, error) {
	certs, err := ParsePEMCertificates(data)
	if err != nil {
		return nil, err
	}
	s := New(name)
	s.AddAll(certs)
	return s, nil
}
