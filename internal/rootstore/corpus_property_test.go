package rootstore_test

import (
	"crypto/x509"
	"testing"
	"testing/quick"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
	"tangledmass/internal/rootstore"
)

// This file pins the corpus-backed set operations to the pre-refactor
// semantics: Diff and Intersect must agree exactly with an independent
// computation over certid.IdentityOf sets, with no corpus, refs, or
// digests involved on the reference side.

// identitySet computes the reference membership set straight from the
// certificates, bypassing the store's ref-based internals.
func identitySet(certs []*x509.Certificate) map[certid.Identity]bool {
	set := make(map[certid.Identity]bool, len(certs))
	for _, c := range certs {
		set[certid.IdentityOf(c)] = true
	}
	return set
}

// assertDiffMatchesReference checks rootstore.Diff(a, b) against the
// identity-set computation.
func assertDiffMatchesReference(t *testing.T, a, b *rootstore.Store) {
	t.Helper()
	sa, sb := identitySet(a.Certificates()), identitySet(b.Certificates())
	var onlyA, onlyB, both int
	for id := range sa {
		if sb[id] {
			both++
		} else {
			onlyA++
		}
	}
	for id := range sb {
		if !sa[id] {
			onlyB++
		}
	}

	d := rootstore.Diff(a, b)
	if len(d.OnlyA) != onlyA || len(d.OnlyB) != onlyB || len(d.Both) != both {
		t.Fatalf("Diff(%s, %s) = %d/%d/%d (onlyA/onlyB/both), reference says %d/%d/%d",
			a.Name(), b.Name(), len(d.OnlyA), len(d.OnlyB), len(d.Both), onlyA, onlyB, both)
	}
	// Every reported certificate must land in the reference bucket its
	// identity says it belongs to.
	for _, c := range d.OnlyA {
		id := certid.IdentityOf(c)
		if !sa[id] || sb[id] {
			t.Fatalf("Diff(%s, %s): %s misfiled in OnlyA", a.Name(), b.Name(), c.Subject.CommonName)
		}
	}
	for _, c := range d.OnlyB {
		id := certid.IdentityOf(c)
		if sa[id] || !sb[id] {
			t.Fatalf("Diff(%s, %s): %s misfiled in OnlyB", a.Name(), b.Name(), c.Subject.CommonName)
		}
	}
	for _, c := range d.Both {
		id := certid.IdentityOf(c)
		if !sa[id] || !sb[id] {
			t.Fatalf("Diff(%s, %s): %s misfiled in Both", a.Name(), b.Name(), c.Subject.CommonName)
		}
	}
}

// assertIntersectMatchesReference checks rootstore.Intersect(a, b) against
// the identity-set computation.
func assertIntersectMatchesReference(t *testing.T, a, b *rootstore.Store) {
	t.Helper()
	sb := identitySet(b.Certificates())
	want := make(map[certid.Identity]bool)
	for _, c := range a.Certificates() {
		if id := certid.IdentityOf(c); sb[id] {
			want[id] = true
		}
	}

	inter := rootstore.Intersect("i", a, b)
	if inter.Len() != len(want) {
		t.Fatalf("Intersect(%s, %s).Len() = %d, reference says %d", a.Name(), b.Name(), inter.Len(), len(want))
	}
	for _, c := range inter.Certificates() {
		if !want[certid.IdentityOf(c)] {
			t.Fatalf("Intersect(%s, %s): %s not in reference set", a.Name(), b.Name(), c.Subject.CommonName)
		}
	}
}

// TestCorpusDiffIntersectFullUniverse exercises every ordered pair of the
// full CA-universe stores — the same stores the paper's tables are computed
// from — so any drift between the ref-based implementation and plain
// identity-set semantics shows up on real data.
func TestCorpusDiffIntersectFullUniverse(t *testing.T) {
	u := cauniverse.Default()
	stores := []*rootstore.Store{
		u.AOSP("4.1"), u.AOSP("4.2"), u.AOSP("4.4"),
		u.Mozilla(), u.IOS7(), u.AggregatedAndroid(),
	}
	for _, a := range stores {
		for _, b := range stores {
			assertDiffMatchesReference(t, a, b)
			assertIntersectMatchesReference(t, a, b)
		}
	}
}

// TestPropCorpusDiffIntersectRandomSubsets drives the same comparison over
// random bitmask-picked substores, including stores sharing one corpus and
// stores built in separate corpora.
func TestPropCorpusDiffIntersectRandomSubsets(t *testing.T) {
	pool := universeCerts(t)
	err := quick.Check(func(a, b uint16, separate bool) bool {
		sa := pick(pool, a, "a")
		var sb *rootstore.Store
		if separate {
			// A store in its own corpus: Diff/Intersect must still
			// agree with identity semantics across corpus boundaries.
			sb = rootstore.NewIn("b", corpus.New())
			for i := 0; i < 16; i++ {
				if b&(1<<i) != 0 {
					sb.Add(pool[i])
				}
			}
		} else {
			sb = pick(pool, b, "b")
		}
		assertDiffMatchesReference(t, sa, sb)
		assertIntersectMatchesReference(t, sa, sb)
		return !t.Failed()
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

// TestContentKeyTracksByteMembership pins the incremental XOR digest: two
// stores have equal ContentKeys exactly when their DER membership is
// byte-identical, and removing an added certificate restores the key.
func TestContentKeyTracksByteMembership(t *testing.T) {
	pool := universeCerts(t)
	err := quick.Check(func(a, b uint16, idx uint8) bool {
		sa, sb := pick(pool, a, "a"), pick(pool, b, "b")
		if (sa.ContentKey() == sb.ContentKey()) != (a == b) {
			return false
		}
		// Add/Remove round trip restores the key.
		key := sa.ContentKey()
		c := pool[int(idx)%16]
		if sa.Add(c) {
			sa.Remove(certid.IdentityOf(c))
		}
		return sa.ContentKey() == key
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
