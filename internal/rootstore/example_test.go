package rootstore_test

import (
	"fmt"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/rootstore"
)

// Diffing two reference stores under the paper's certificate equivalence.
func ExampleDiff() {
	u := cauniverse.Default()
	d := rootstore.Diff(u.AOSP("4.4"), u.Mozilla())
	fmt.Printf("shared=%d aosp-only=%d mozilla-only=%d\n", len(d.Both), len(d.OnlyA), len(d.OnlyB))
	fmt.Printf("byte-identical=%d\n", rootstore.ByteIntersectCount(u.AOSP("4.4"), u.Mozilla()))
	// Output:
	// shared=130 aosp-only=20 mozilla-only=23
	// byte-identical=117
}

// Store growth across AOSP releases (Table 1).
func ExampleStore_Len() {
	u := cauniverse.Default()
	for _, v := range cauniverse.AOSPVersions() {
		fmt.Printf("AOSP %s: %d\n", v, u.AOSP(v).Len())
	}
	// Output:
	// AOSP 4.1: 139
	// AOSP 4.2: 140
	// AOSP 4.3: 146
	// AOSP 4.4: 150
}

// Set operations are defined over subject+key identity, so a vendor image
// composes as base ∪ additions.
func ExampleUnion() {
	u := cauniverse.Default()
	image := rootstore.New("motorola image")
	image.AddAll(u.AOSP("4.1").Certificates())
	image.Add(u.Root("Motorola FOTA Root CA").Issued.Cert)
	image.Add(u.Root("Motorola SUPL Server Root CA").Issued.Cert)
	extras := rootstore.Subtract("extras", image, u.AOSP("4.1"))
	fmt.Printf("image=%d extras=%d\n", image.Len(), extras.Len())
	// Output:
	// image=141 extras=2
}
