// Package rootstore models X.509 root certificate stores: ordered sets of
// trusted CA certificates with set operations defined over the paper's
// certificate equivalence (same subject + key) rather than byte equality.
//
// A Store corresponds to what the paper calls a "root store population":
// the AOSP store for a given Android version, Mozilla's store, iOS7's store,
// or the store observed on one device in the wild. It also reads and writes
// the on-disk format Android uses (/system/etc/security/cacerts: one PEM file
// per root named <subject-hash>.<n>).
package rootstore

import (
	"crypto/x509"
	"fmt"
	"sort"

	"tangledmass/internal/certid"
)

// Store is a set of root certificates indexed by the paper's certificate
// identity. Insertion order is preserved for deterministic iteration. The
// zero value is not usable; construct with New.
type Store struct {
	name  string
	order []certid.Identity
	byID  map[certid.Identity]*x509.Certificate
}

// New returns an empty store with the given name.
func New(name string) *Store {
	return &Store{name: name, byID: make(map[certid.Identity]*x509.Certificate)}
}

// Name returns the store's name (e.g. "AOSP 4.4").
func (s *Store) Name() string { return s.name }

// Len returns the number of distinct (by identity) certificates.
func (s *Store) Len() int { return len(s.order) }

// Add inserts cert. It returns false if an equivalent certificate (same
// subject and key) is already present, in which case the store is unchanged:
// the first-seen instance wins, mirroring how a device's store keeps one
// file per root.
func (s *Store) Add(cert *x509.Certificate) bool {
	id := certid.IdentityOf(cert)
	if _, ok := s.byID[id]; ok {
		return false
	}
	s.byID[id] = cert
	s.order = append(s.order, id)
	return true
}

// AddAll inserts each certificate, returning how many were new.
func (s *Store) AddAll(certs []*x509.Certificate) int {
	n := 0
	for _, c := range certs {
		if s.Add(c) {
			n++
		}
	}
	return n
}

// Remove deletes the certificate with the given identity, returning whether
// it was present.
func (s *Store) Remove(id certid.Identity) bool {
	if _, ok := s.byID[id]; !ok {
		return false
	}
	delete(s.byID, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return true
}

// Contains reports whether an equivalent certificate is present.
func (s *Store) Contains(cert *x509.Certificate) bool {
	_, ok := s.byID[certid.IdentityOf(cert)]
	return ok
}

// ContainsIdentity reports whether the identity is present.
func (s *Store) ContainsIdentity(id certid.Identity) bool {
	_, ok := s.byID[id]
	return ok
}

// Get returns the stored certificate for id, or nil.
func (s *Store) Get(id certid.Identity) *x509.Certificate {
	return s.byID[id]
}

// Certificates returns the certificates in insertion order. The returned
// slice is freshly allocated; mutating it does not affect the store.
func (s *Store) Certificates() []*x509.Certificate {
	out := make([]*x509.Certificate, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.byID[id])
	}
	return out
}

// Identities returns the identity set in insertion order.
func (s *Store) Identities() []certid.Identity {
	out := make([]certid.Identity, len(s.order))
	copy(out, s.order)
	return out
}

// Clone returns a deep copy of the membership (certificates themselves are
// shared, which is safe: x509.Certificate values are treated as immutable).
func (s *Store) Clone(name string) *Store {
	c := New(name)
	for _, id := range s.order {
		c.byID[id] = s.byID[id]
		c.order = append(c.order, id)
	}
	return c
}

// Union returns a new store containing every certificate present in any of
// the inputs (first instance of each identity wins).
func Union(name string, stores ...*Store) *Store {
	u := New(name)
	for _, st := range stores {
		for _, c := range st.Certificates() {
			u.Add(c)
		}
	}
	return u
}

// Intersect returns a new store with the certificates of a whose identities
// also appear in b.
func Intersect(name string, a, b *Store) *Store {
	out := New(name)
	for _, c := range a.Certificates() {
		if b.Contains(c) {
			out.Add(c)
		}
	}
	return out
}

// Subtract returns a new store with the certificates of a whose identities
// do not appear in b.
func Subtract(name string, a, b *Store) *Store {
	out := New(name)
	for _, c := range a.Certificates() {
		if !b.Contains(c) {
			out.Add(c)
		}
	}
	return out
}

// DiffResult reports a three-way comparison of two stores under equivalence.
type DiffResult struct {
	OnlyA []*x509.Certificate // in a but not b
	OnlyB []*x509.Certificate // in b but not a
	Both  []*x509.Certificate // a's instance of certificates present in both
}

// Diff compares two stores under certificate equivalence.
func Diff(a, b *Store) DiffResult {
	var d DiffResult
	for _, c := range a.Certificates() {
		if b.Contains(c) {
			d.Both = append(d.Both, c)
		} else {
			d.OnlyA = append(d.OnlyA, c)
		}
	}
	for _, c := range b.Certificates() {
		if !a.Contains(c) {
			d.OnlyB = append(d.OnlyB, c)
		}
	}
	return d
}

// ByteIntersectCount counts the certificates of a that appear byte-identical
// (same DER encoding) in b. Contrast with Intersect, which matches under the
// paper's subject+key equivalence: §2 reports 117 byte-shared roots between
// AOSP 4.4 and Mozilla while Table 4 counts 130 equivalence-shared.
func ByteIntersectCount(a, b *Store) int {
	raw := make(map[string]bool, b.Len())
	for _, c := range b.Certificates() {
		raw[string(c.Raw)] = true
	}
	n := 0
	for _, c := range a.Certificates() {
		if raw[string(c.Raw)] {
			n++
		}
	}
	return n
}

// Equal reports whether two stores contain exactly the same identities.
func Equal(a, b *Store) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, id := range a.order {
		if !b.ContainsIdentity(id) {
			return false
		}
	}
	return true
}

// SortedSubjects returns the subject strings of the store sorted
// lexicographically — convenient for deterministic reporting.
func (s *Store) SortedSubjects() []string {
	out := make([]string, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, id.Subject)
	}
	sort.Strings(out)
	return out
}

// String summarizes the store.
func (s *Store) String() string {
	return fmt.Sprintf("%s (%d roots)", s.name, s.Len())
}
