// Package rootstore models X.509 root certificate stores: ordered sets of
// trusted CA certificates with set operations defined over the paper's
// certificate equivalence (same subject + key) rather than byte equality.
//
// A Store corresponds to what the paper calls a "root store population":
// the AOSP store for a given Android version, Mozilla's store, iOS7's store,
// or the store observed on one device in the wild. It also reads and writes
// the on-disk format Android uses (/system/etc/security/cacerts: one PEM file
// per root named <subject-hash>.<n>).
//
// Membership is held as corpus.Ref handles into a content-addressed
// certificate corpus: the store never re-parses or re-fingerprints a
// certificate, and its pool content key is maintained incrementally on
// Add/Remove instead of re-sorting and re-hashing the whole pool.
package rootstore

import (
	"crypto/x509"
	"fmt"
	"maps"
	"slices"
	"sort"
	"strconv"

	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
)

// Store is a set of root certificates indexed by the paper's certificate
// identity. Insertion order is preserved for deterministic iteration. The
// zero value is not usable; construct with New or NewIn.
type Store struct {
	name  string
	c     *corpus.Corpus
	order []certid.Identity
	byID  map[certid.Identity]corpus.Ref
	// digest is the XOR of member content digests — an incremental,
	// order-independent fingerprint of the exact membership bytes,
	// updated on Add and Remove. chain derives its pool keys from it.
	digest corpus.Digest
}

// New returns an empty store with the given name, interning into the
// process-wide shared corpus.
func New(name string) *Store { return NewIn(name, corpus.Shared()) }

// NewIn returns an empty store interning into the given corpus. Stores
// that are compared or pooled together should share one corpus.
func NewIn(name string, c *corpus.Corpus) *Store {
	return &Store{name: name, c: c, byID: make(map[certid.Identity]corpus.Ref)}
}

// NewSized is NewIn with capacity hints: the index map and insertion-order
// slice are pre-sized for n members, so bulk loaders (dataset readers,
// snapshot restores) pay one allocation per structure instead of a growth
// series.
func NewSized(name string, c *corpus.Corpus, n int) *Store {
	return &Store{
		name:  name,
		c:     c,
		byID:  make(map[certid.Identity]corpus.Ref, n),
		order: make([]certid.Identity, 0, n),
	}
}

// Name returns the store's name (e.g. "AOSP 4.4").
func (s *Store) Name() string { return s.name }

// Corpus returns the intern table the store's refs resolve against.
func (s *Store) Corpus() *corpus.Corpus { return s.c }

// Len returns the number of distinct (by identity) certificates.
func (s *Store) Len() int { return len(s.order) }

// Add inserts cert. It returns false if an equivalent certificate (same
// subject and key) is already present, in which case the store is unchanged:
// the first-seen instance wins, mirroring how a device's store keeps one
// file per root.
func (s *Store) Add(cert *x509.Certificate) bool {
	return s.AddRef(s.c.InternCert(cert))
}

// AddRef inserts an already-interned certificate by handle. The ref must
// come from the store's corpus.
func (s *Store) AddRef(ref corpus.Ref) bool {
	e := s.c.Entry(ref)
	if e == nil {
		return false
	}
	if _, ok := s.byID[e.Identity]; ok {
		return false
	}
	s.byID[e.Identity] = ref
	s.order = append(s.order, e.Identity)
	s.digest.XOR(e.Digest)
	return true
}

// AddAll inserts each certificate, returning how many were new.
func (s *Store) AddAll(certs []*x509.Certificate) int {
	n := 0
	for _, c := range certs {
		if s.Add(c) {
			n++
		}
	}
	return n
}

// Remove deletes the certificate with the given identity, returning whether
// it was present.
func (s *Store) Remove(id certid.Identity) bool {
	ref, ok := s.byID[id]
	if !ok {
		return false
	}
	delete(s.byID, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.digest.XOR(s.c.Entry(ref).Digest)
	return true
}

// Contains reports whether an equivalent certificate is present.
func (s *Store) Contains(cert *x509.Certificate) bool {
	_, ok := s.byID[s.c.Identity(s.c.InternCert(cert))]
	return ok
}

// ContainsIdentity reports whether the identity is present.
func (s *Store) ContainsIdentity(id certid.Identity) bool {
	_, ok := s.byID[id]
	return ok
}

// Get returns the stored certificate for id, or nil.
func (s *Store) Get(id certid.Identity) *x509.Certificate {
	if ref, ok := s.byID[id]; ok {
		return s.c.Cert(ref)
	}
	return nil
}

// Ref returns the corpus handle for id (zero when absent).
func (s *Store) Ref(id certid.Identity) corpus.Ref { return s.byID[id] }

// Refs returns the member handles in insertion order.
func (s *Store) Refs() []corpus.Ref {
	out := make([]corpus.Ref, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.byID[id])
	}
	return out
}

// Certificates returns the certificates in insertion order. The returned
// slice is freshly allocated; mutating it does not affect the store.
func (s *Store) Certificates() []*x509.Certificate {
	out := make([]*x509.Certificate, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.c.Cert(s.byID[id]))
	}
	return out
}

// Identities returns the identity set in insertion order.
func (s *Store) Identities() []certid.Identity {
	out := make([]certid.Identity, len(s.order))
	copy(out, s.order)
	return out
}

// ContentKey is an order-independent fingerprint of the exact membership
// bytes, maintained incrementally: adding a member XORs its content digest
// in, removing XORs it back out. Two stores with equal ContentKeys hold
// byte-identical membership (up to ordering). The member count is appended
// so the empty store and degenerate XOR cancellations stay distinct.
func (s *Store) ContentKey() string {
	return s.digest.Hex() + "/" + strconv.Itoa(len(s.order))
}

// ContentDigest returns the raw XOR accumulator behind ContentKey.
func (s *Store) ContentDigest() corpus.Digest { return s.digest }

// Clone returns a deep copy of the membership (certificates themselves are
// shared through the corpus, which treats them as immutable). The index map
// is cloned wholesale — no per-entry rehashing — so cloning is cheap enough
// to stamp out per-device stores from a shared prototype.
func (s *Store) Clone(name string) *Store {
	byID := maps.Clone(s.byID)
	if byID == nil {
		byID = make(map[certid.Identity]corpus.Ref)
	}
	return &Store{
		name:   name,
		c:      s.c,
		order:  slices.Clone(s.order),
		byID:   byID,
		digest: s.digest,
	}
}

// Union returns a new store containing every certificate present in any of
// the inputs (first instance of each identity wins). The union interns into
// the first input's corpus (the shared corpus when there are no inputs).
func Union(name string, stores ...*Store) *Store {
	cp := corpus.Shared()
	if len(stores) > 0 {
		cp = stores[0].c
	}
	u := NewIn(name, cp)
	for _, st := range stores {
		if st.c == cp {
			for _, ref := range st.Refs() {
				u.AddRef(ref)
			}
			continue
		}
		for _, c := range st.Certificates() {
			u.Add(c)
		}
	}
	return u
}

// Intersect returns a new store with the certificates of a whose identities
// also appear in b.
func Intersect(name string, a, b *Store) *Store {
	out := NewIn(name, a.c)
	for _, id := range a.order {
		if b.ContainsIdentity(id) {
			out.AddRef(a.byID[id])
		}
	}
	return out
}

// Subtract returns a new store with the certificates of a whose identities
// do not appear in b.
func Subtract(name string, a, b *Store) *Store {
	out := NewIn(name, a.c)
	for _, id := range a.order {
		if !b.ContainsIdentity(id) {
			out.AddRef(a.byID[id])
		}
	}
	return out
}

// DiffResult reports a three-way comparison of two stores under equivalence.
type DiffResult struct {
	OnlyA []*x509.Certificate // in a but not b
	OnlyB []*x509.Certificate // in b but not a
	Both  []*x509.Certificate // a's instance of certificates present in both
}

// Diff compares two stores under certificate equivalence.
func Diff(a, b *Store) DiffResult {
	var d DiffResult
	for _, id := range a.order {
		c := a.c.Cert(a.byID[id])
		if b.ContainsIdentity(id) {
			d.Both = append(d.Both, c)
		} else {
			d.OnlyA = append(d.OnlyA, c)
		}
	}
	for _, id := range b.order {
		if !a.ContainsIdentity(id) {
			d.OnlyB = append(d.OnlyB, b.c.Cert(b.byID[id]))
		}
	}
	return d
}

// ByteIntersectCount counts the certificates of a that appear byte-identical
// (same DER encoding) in b. Contrast with Intersect, which matches under the
// paper's subject+key equivalence: §2 reports 117 byte-shared roots between
// AOSP 4.4 and Mozilla while Table 4 counts 130 equivalence-shared. Byte
// identity is answered from interned content digests — no DER is touched.
func ByteIntersectCount(a, b *Store) int {
	raw := make(map[corpus.Digest]bool, b.Len())
	for _, ref := range b.Refs() {
		raw[b.c.Entry(ref).Digest] = true
	}
	n := 0
	for _, ref := range a.Refs() {
		if raw[a.c.Entry(ref).Digest] {
			n++
		}
	}
	return n
}

// Equal reports whether two stores contain exactly the same identities.
func Equal(a, b *Store) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, id := range a.order {
		if !b.ContainsIdentity(id) {
			return false
		}
	}
	return true
}

// SortedSubjects returns the subject strings of the store sorted
// lexicographically — convenient for deterministic reporting.
func (s *Store) SortedSubjects() []string {
	out := make([]string, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, id.Subject)
	}
	sort.Strings(out)
	return out
}

// String summarizes the store.
func (s *Store) String() string {
	return fmt.Sprintf("%s (%d roots)", s.name, s.Len())
}
