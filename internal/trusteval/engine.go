package trusteval

import (
	"crypto/x509"
	"errors"
	"strconv"
	"strings"
	"sync"
	"time"

	"tangledmass/internal/certid"
	"tangledmass/internal/chain"
	"tangledmass/internal/corpus"
	"tangledmass/internal/device"
	"tangledmass/internal/obs"
	"tangledmass/internal/rootstore"
)

// Override labels record which policy flag flipped a failing layer. They
// appear in Verdict.Overrides in layer order (chain, hostname, pin).
const (
	OverrideAcceptAll  = "chain:accept-all"
	OverrideNoHostname = "hostname:skip-verify"
	OverridePinBypass  = "pin:bypass"
)

// Verdict is the engine's structured answer for one connection.
type Verdict struct {
	// Chain, Hostname and Pin are the per-layer outcomes.
	Chain    Outcome
	Hostname Outcome
	Pin      Outcome
	// Accepted reports whether the app, under its policy, proceeds with
	// the connection: every layer passed, was overridden, or did not
	// apply.
	Accepted bool
	// Overrides lists the policy overrides that fired, in layer order.
	Overrides []string
	// Cause attributes an accepted connection to the mechanism that
	// explains it; empty for rejected connections.
	Cause Cause
	// RootIDs are the device-store roots anchoring the presented chain,
	// in deterministic discovery order (nil when the chain does not
	// anchor).
	RootIDs []certid.Identity
	// Path is the canonical winning path for the host (leaf..root), set
	// only when both the chain and hostname layers genuinely passed.
	Path []*x509.Certificate
	// AnchoredInReference reports whether the chain also anchors in the
	// engine's reference stores; meaningful only when a reference was
	// configured and the chain layer passed.
	AnchoredInReference bool
	// ChainErr, HostErr and PinErr carry the failing layer's diagnostic
	// (also when the failure was overridden).
	ChainErr error
	HostErr  error
	PinErr   error
}

// Engine evaluates connections. Construct with New; the zero value is not
// usable. An Engine is safe for concurrent use and is meant to be shared:
// its verifier memo and (optional) chain cache amortize pool indexing and
// path building across probes that see the same stores.
type Engine struct {
	at        time.Time
	reference *rootstore.Store
	pins      PinChecker
	cache     *chain.Cache

	evals     *obs.Counter
	accepted  *obs.Counter
	rejected  *obs.Counter
	overrides *obs.Counter
	causes    map[Cause]*obs.Counter

	// verifiers memoizes constructed verifiers by trust configuration
	// (store content + presented intermediates). Campaign sessions probe
	// several targets against one effective store; the memo makes the
	// second probe reuse the first probe's indexed pool.
	mu        sync.Mutex
	verifiers map[string]*chain.Verifier
}

// maxVerifierMemo bounds the verifier memo; reaching it clears the map
// (the memo is a per-session working set, not a long-lived cache — the
// chain.Cache carries cross-session reuse).
const maxVerifierMemo = 256

// Option configures an Engine.
type Option func(*Engine)

// WithReference sets the official-store union used for store-tampering
// attribution: a chain that anchors on the device but not here is explained
// by a post-firmware install.
func WithReference(ref *rootstore.Store) Option {
	return func(e *Engine) { e.reference = ref }
}

// WithPins attaches a pin store (typically *pinning.Store) enabling the pin
// layer. Without one the pin outcome is always OutcomeSkipped.
func WithPins(p PinChecker) Option {
	return func(e *Engine) { e.pins = p }
}

// WithChainCache shares a chain-validation LRU across evaluations. The
// cache key is (pool fingerprint, leaf handle) and the memoized value is
// the set of reachable roots — facts about the store and the bytes on the
// wire only. Policy is applied after the lookup, so one entry safely
// serves apps with different policies: the same miss/hit sequence yields
// distinct verdicts per policy (pinned by the cache-invariance test).
func WithChainCache(c *chain.Cache) Option {
	return func(e *Engine) { e.cache = c }
}

// WithObserver attaches trusteval.* counters to o (nil is a no-op).
func WithObserver(o *obs.Observer) Option {
	return func(e *Engine) {
		e.evals = o.Counter(KeyEvals)
		e.accepted = o.Counter(KeyEvalAccepted)
		e.rejected = o.Counter(KeyEvalRejected)
		e.overrides = o.Counter(KeyOverrides)
		e.causes = map[Cause]*obs.Counter{
			CauseStoreTampering: o.Counter(KeyCauseStoreTampering),
			CauseAppAcceptAll:   o.Counter(KeyCauseAcceptAll),
			CauseAppNoHostname:  o.Counter(KeyCauseNoHostname),
			CausePinBypass:      o.Counter(KeyCausePinBypass),
			CauseClean:          o.Counter(KeyCauseClean),
		}
	}
}

// New returns an Engine evaluating validity at the instant at.
func New(at time.Time, opts ...Option) *Engine {
	e := &Engine{at: at, verifiers: make(map[string]*chain.Verifier)}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// At returns the reference instant used for validity checks.
func (e *Engine) At() time.Time { return e.at }

// verifierFor returns a (possibly memoized) verifier trusting the store's
// membership and able to cross the given intermediate handles.
func (e *Engine) verifierFor(s *rootstore.Store, inters []corpus.Ref) *chain.Verifier {
	var key strings.Builder
	key.WriteString(s.ContentKey())
	key.WriteByte('|')
	key.WriteString(strconv.FormatUint(s.Corpus().ID(), 10))
	for _, r := range inters {
		key.WriteByte(',')
		key.WriteString(strconv.FormatUint(uint64(r), 10))
	}
	k := key.String()
	e.mu.Lock()
	v, ok := e.verifiers[k]
	e.mu.Unlock()
	if ok {
		return v
	}
	v = chain.NewVerifierFromStore(s, inters, e.at)
	e.mu.Lock()
	if len(e.verifiers) >= maxVerifierMemo {
		e.verifiers = make(map[string]*chain.Verifier)
	}
	e.verifiers[k] = v
	e.mu.Unlock()
	return v
}

// internChain interns the presented intermediates into the store's corpus
// and returns (leaf ref, intermediate refs).
func internChain(s *rootstore.Store, presented []*x509.Certificate) (corpus.Ref, []corpus.Ref) {
	c := s.Corpus()
	leaf := c.InternCert(presented[0])
	if len(presented) == 1 {
		return leaf, nil
	}
	inters := make([]corpus.Ref, len(presented)-1)
	for i, ic := range presented[1:] {
		inters[i] = c.InternCert(ic)
	}
	return leaf, inters
}

// Evaluate runs the full trust decision for one connection and returns its
// Verdict. The layers run in client order — chain building against the
// effective store, hostname verification (including path name
// constraints), then pins — with the app policy applied as recorded
// overrides, never by skipping the underlying check: a forged chain that
// an accept-all app "validates" still reports its chain layer as
// overridden, not passed.
func (e *Engine) Evaluate(req Request) Verdict {
	e.evals.Inc()
	var v Verdict
	if len(req.Chain) == 0 {
		// No handshake evidence: nothing to judge, nothing accepted.
		v.ChainErr = ErrNoPresentedChain
		e.rejected.Inc()
		return v
	}
	leaf := req.Chain[0]
	leafRef, inters := internChain(req.Store, req.Chain)
	ver := e.verifierFor(req.Store, inters)
	v.RootIDs = e.cache.ValidatingRootsRef(ver, leafRef)
	chainOK := len(v.RootIDs) > 0

	var sig Signals
	switch {
	case chainOK:
		v.Chain = OutcomePass
		if e.reference != nil {
			refLeaf, refInters := internChain(e.reference, req.Chain)
			refVer := e.verifierFor(e.reference, refInters)
			v.AnchoredInReference = len(e.cache.ValidatingRootsRef(refVer, refLeaf)) > 0
			sig.StoreTampered = !v.AnchoredInReference
		}
	case req.Policy.AcceptAll:
		v.Chain = OutcomeOverridden
		v.ChainErr = chain.ErrNoChain
		v.Overrides = append(v.Overrides, OverrideAcceptAll)
		sig.AcceptAll = true
	default:
		v.Chain = OutcomeFail
		v.ChainErr = chain.ErrNoChain
	}

	v.HostErr = chain.LeafCoversHost(leaf, req.Host)
	hostOK := v.HostErr == nil
	if hostOK && chainOK {
		path, err := ver.VerifyForHost(leaf, req.Host)
		if errors.Is(err, chain.ErrNameConstraint) {
			hostOK = false
			v.HostErr = err
		} else if err == nil {
			v.Path = path
		}
	}
	switch {
	case hostOK:
		v.Hostname = OutcomePass
	case req.Policy.SkipHostname:
		v.Hostname = OutcomeOverridden
		v.Overrides = append(v.Overrides, OverrideNoHostname)
		sig.SkipHostname = true
	default:
		v.Hostname = OutcomeFail
	}

	v.Pin, v.PinErr = EvaluatePin(e.pins, req.Host, req.Chain, req.Policy)
	if v.Pin == OutcomeOverridden {
		v.Overrides = append(v.Overrides, OverridePinBypass)
		sig.BypassedPin = true
	}

	v.Accepted = v.Chain.Accepted() && v.Hostname.Accepted() && v.Pin.Accepted()
	if n := len(v.Overrides); n > 0 {
		e.overrides.Add(int64(n))
	}
	if v.Accepted {
		v.Cause = Attribute(sig)
		e.accepted.Inc()
		e.causes[v.Cause].Inc()
	} else {
		e.rejected.Inc()
	}
	return v
}

// EvaluatePin runs the pin layer in isolation: OutcomeSkipped when pins is
// nil or the host carries no pin set, otherwise pass/fail on the canonical
// host with the policy's BypassPins override applied. The returned error
// is the pin diagnostic, non-nil on mismatch even when overridden.
// Engine.Evaluate uses exactly this function for its pin dimension;
// pinning.EvaluateReport reuses it, so the app-side pin check and the full
// engine cannot diverge.
func EvaluatePin(pins PinChecker, host string, presented []*x509.Certificate, pol device.ValidationPolicy) (Outcome, error) {
	if pins == nil {
		return OutcomeSkipped, nil
	}
	h := chain.CanonicalHost(host)
	if !pins.Pinned(h) {
		return OutcomeSkipped, nil
	}
	err := pins.Check(h, presented)
	switch {
	case err == nil:
		return OutcomePass, nil
	case pol.BypassPins:
		return OutcomeOverridden, err
	}
	return OutcomeFail, err
}

// ErrNoPresentedChain marks an evaluation that received no handshake
// evidence at all.
var ErrNoPresentedChain = errors.New("trusteval: no presented chain")
