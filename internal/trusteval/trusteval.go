// Package trusteval is the single trust-evaluation engine behind every
// validation decision in the pipeline. The paper's core question — "what
// does this device actually trust?" — was previously answered in four
// disconnected places (netalyzr probe validation, the MITM detector, pin
// evaluation, and campaign-side checks), all modelling only store-level
// trust. Okara and "Danger is My Middle Name" show real interception
// outcomes are co-determined by app-level misvalidation: accept-all trust
// managers, disabled hostname verification, pinning bypass.
//
// The engine takes one connection's evidence — presented chain, requested
// host and port, the device's effective store, and the validating app's
// policy — and returns a structured Verdict: the outcome of each layer
// (chain, hostname, pin), which policy overrides fired, and a single
// attribution cause. Causes partition outcomes exactly: each accepted
// connection has one cause, so per-cause counts sum to the total — the
// invariant the analysis attribution aggregate is built on.
package trusteval

import (
	"crypto/x509"

	"tangledmass/internal/device"
	"tangledmass/internal/rootstore"
)

// Outcome is the result of one validation layer.
type Outcome int

const (
	// OutcomeSkipped means the layer did not run: no chain was captured,
	// or the host carries no pin.
	OutcomeSkipped Outcome = iota
	// OutcomePass means the layer's check succeeded on its own.
	OutcomePass
	// OutcomeFail means the check failed and the policy let it stand.
	OutcomeFail
	// OutcomeOverridden means the check failed but the app's validation
	// policy accepted anyway — the misvalidation the attribution causes
	// name.
	OutcomeOverridden
)

func (o Outcome) String() string {
	switch o {
	case OutcomePass:
		return "pass"
	case OutcomeFail:
		return "fail"
	case OutcomeOverridden:
		return "overridden"
	}
	return "skipped"
}

// Accepted reports whether the layer lets the connection proceed: a pass,
// an override, or a skipped (inapplicable) check.
func (o Outcome) Accepted() bool { return o != OutcomeFail }

// Cause attributes one accepted connection to the mechanism that explains
// it. The values are the serialized vocabulary of the attribution analysis.
type Cause string

const (
	// CauseStoreTampering: the chain anchors in the device's effective
	// store but not in the official reference stores — a user- or
	// root-installed CA (§6/§7) made the device trust it.
	CauseStoreTampering Cause = "store-tampering"
	// CauseAppAcceptAll: the chain anchors nowhere on the device; an
	// accept-all trust manager validated it anyway.
	CauseAppAcceptAll Cause = "app-accept-all"
	// CauseAppNoHostname: the leaf does not cover the requested host; a
	// disabled hostname verifier accepted it anyway.
	CauseAppNoHostname Cause = "app-no-hostname"
	// CausePinBypass: the chain violates the host's pin; a pin-bypassed
	// build ignored the mismatch.
	CausePinBypass Cause = "pin-bypass"
	// CauseClean: every applicable check genuinely passed.
	CauseClean Cause = "clean"
)

// Causes returns the attribution vocabulary in its fixed precedence order
// (the order Attribute consults signals in). Deterministic artifacts
// iterate this, never a map.
func Causes() []Cause {
	return []Cause{CauseStoreTampering, CauseAppAcceptAll, CauseAppNoHostname, CausePinBypass, CauseClean}
}

// Signals are the boolean facts about one accepted connection that
// attribution consults: which trust-relaxing mechanism was (or, for
// offline session attribution, would be) exercised.
type Signals struct {
	// StoreTampered: the anchoring root is absent from the reference
	// stores — trust came from a post-firmware install.
	StoreTampered bool
	// AcceptAll: an accept-all trust manager overrode a failed chain.
	AcceptAll bool
	// SkipHostname: a disabled hostname verifier overrode a mismatch.
	SkipHostname bool
	// BypassedPin: a pin mismatch was ignored.
	BypassedPin bool
}

// Attribute reduces a connection's signals to the single cause that
// explains its acceptance. Precedence is fixed — store tampering over
// accept-all over hostname over pin bypass — so that causes partition
// outcomes exactly; summing per-cause counts reproduces the total. The
// live engine and the offline analysis aggregate share this function,
// which is what keeps probe verdicts and session attribution consistent.
func Attribute(s Signals) Cause {
	switch {
	case s.StoreTampered:
		return CauseStoreTampering
	case s.AcceptAll:
		return CauseAppAcceptAll
	case s.SkipHostname:
		return CauseAppNoHostname
	case s.BypassedPin:
		return CausePinBypass
	}
	return CauseClean
}

// PinChecker is the pin-store surface the engine needs. *pinning.Store
// satisfies it; the indirection keeps trusteval import-free of the pinning
// package (which sits above netalyzr, itself a client of this engine).
type PinChecker interface {
	// Pinned reports whether the host carries a pin set.
	Pinned(host string) bool
	// Check returns nil when the presented chain satisfies the host's
	// pins (or the host is unpinned), a descriptive error otherwise.
	Check(host string, presented []*x509.Certificate) error
}

// Request is one connection's evidence, handed to Engine.Evaluate.
type Request struct {
	// Chain is the presented certificate chain, leaf first. Empty means
	// the handshake never produced one (connection error).
	Chain []*x509.Certificate
	// Host and Port identify the requested endpoint; Host drives the
	// hostname and pin layers.
	Host string
	Port int
	// Store is the device's effective trust set (system + user − disabled).
	Store *rootstore.Store
	// Policy is the validating app's behaviour. The zero value is the
	// strict platform default.
	Policy device.ValidationPolicy
}
