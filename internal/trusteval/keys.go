package trusteval

// Observability keys exported by the trust-evaluation engine. Every key is
// a package-prefixed compile-time constant (see the obs-key registry in
// README.md); the obskey lint rule rejects dynamically-built names.
const (
	// KeyEvals counts Evaluate calls.
	KeyEvals = "trusteval.eval.total"
	// KeyEvalAccepted counts evaluations whose verdict accepted the
	// connection.
	KeyEvalAccepted = "trusteval.eval.accepted"
	// KeyEvalRejected counts evaluations whose verdict rejected the
	// connection.
	KeyEvalRejected = "trusteval.eval.rejected"
	// KeyOverrides counts individual policy overrides applied (a single
	// evaluation can contribute several).
	KeyOverrides = "trusteval.override.total"
	// KeyCauseStoreTampering counts accepted evaluations attributed to
	// store tampering.
	KeyCauseStoreTampering = "trusteval.cause.store_tampering"
	// KeyCauseAcceptAll counts accepted evaluations attributed to an
	// accept-all trust manager.
	KeyCauseAcceptAll = "trusteval.cause.app_accept_all"
	// KeyCauseNoHostname counts accepted evaluations attributed to a
	// disabled hostname verifier.
	KeyCauseNoHostname = "trusteval.cause.app_no_hostname"
	// KeyCausePinBypass counts accepted evaluations attributed to a pin
	// bypass.
	KeyCausePinBypass = "trusteval.cause.pin_bypass"
	// KeyCauseClean counts accepted evaluations where every applicable
	// check passed.
	KeyCauseClean = "trusteval.cause.clean"
)
