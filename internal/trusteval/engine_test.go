package trusteval_test

import (
	"errors"
	"net"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/chain"
	"tangledmass/internal/corpus"
	"tangledmass/internal/device"
	"tangledmass/internal/obs"
	"tangledmass/internal/pinning"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/trusteval"

	"crypto/x509"
)

// pki is the little trust world the engine tests run in: an official root
// with a chain for good.example.com, and a rogue root (the §7 interception
// CA archetype) forging the same host.
type pki struct {
	official   *certgen.Issued
	inter      *certgen.Issued
	leaf       *certgen.Issued // good.example.com via inter
	rogue      *certgen.Issued
	forged     *certgen.Issued // good.example.com via rogue
	wildcard   *certgen.Issued // *.w.example.com via inter
	ipLeaf     *certgen.Issued // 192.0.2.10 via inter
	officials  *rootstore.Store
	tampered   *rootstore.Store // officials + rogue
	rogueStore *rootstore.Store
}

func buildPKI(t *testing.T) *pki {
	t.Helper()
	g := certgen.NewGenerator(77)
	must := func(i *certgen.Issued, err error) *certgen.Issued {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return i
	}
	p := &pki{}
	p.official = must(g.SelfSignedCA("Eval Official Root"))
	p.inter = must(g.Intermediate(p.official, "Eval Intermediate"))
	p.leaf = must(g.Leaf(p.inter, "good.example.com"))
	p.rogue = must(g.SelfSignedCA("Eval Rogue Root"))
	p.forged = must(g.Leaf(p.rogue, "good.example.com"))
	p.wildcard = must(g.Leaf(p.inter, "w-wild", certgen.WithDNSNames("*.w.example.com")))
	p.ipLeaf = must(g.Leaf(p.inter, "ip-leaf", certgen.WithIPAddresses(net.ParseIP("192.0.2.10"))))

	p.officials = rootstore.New("officials")
	p.officials.Add(p.official.Cert)
	p.tampered = rootstore.New("tampered")
	p.tampered.Add(p.official.Cert)
	p.tampered.Add(p.rogue.Cert)
	p.rogueStore = rootstore.New("rogue-only")
	p.rogueStore.Add(p.rogue.Cert)
	return p
}

func goodChain(p *pki) []*x509.Certificate {
	return []*x509.Certificate{p.leaf.Cert, p.inter.Cert}
}

func forgedChain(p *pki) []*x509.Certificate {
	return []*x509.Certificate{p.forged.Cert}
}

func TestCleanConnection(t *testing.T) {
	p := buildPKI(t)
	e := trusteval.New(certgen.Epoch, trusteval.WithReference(p.officials))
	v := e.Evaluate(trusteval.Request{
		Chain: goodChain(p), Host: "good.example.com", Port: 443,
		Store: p.officials, Policy: device.ValidationPolicy{},
	})
	if v.Chain != trusteval.OutcomePass || v.Hostname != trusteval.OutcomePass || v.Pin != trusteval.OutcomeSkipped {
		t.Fatalf("layers = %v/%v/%v, want pass/pass/skipped", v.Chain, v.Hostname, v.Pin)
	}
	if !v.Accepted || v.Cause != trusteval.CauseClean {
		t.Fatalf("accepted=%v cause=%q, want accepted clean", v.Accepted, v.Cause)
	}
	if !v.AnchoredInReference {
		t.Error("chain anchored in the reference store but not reported so")
	}
	if len(v.Overrides) != 0 {
		t.Errorf("clean connection recorded overrides %v", v.Overrides)
	}
	if len(v.Path) != 3 || v.Path[0] != p.leaf.Cert {
		t.Errorf("winning path not materialized: %d certs", len(v.Path))
	}
	if len(v.RootIDs) != 1 || v.RootIDs[0] != corpus.IdentityOf(p.official.Cert) {
		t.Errorf("RootIDs = %v, want the official root", v.RootIDs)
	}
}

// TestAcceptAllValidatesForgedChain is the tentpole scenario: the proxy's
// forged chain anchors nowhere on the device, the platform rejects it, and
// an accept-all trust manager "validates" it anyway — recorded as an
// override, never as a pass.
func TestAcceptAllValidatesForgedChain(t *testing.T) {
	p := buildPKI(t)
	e := trusteval.New(certgen.Epoch, trusteval.WithReference(p.officials))
	req := trusteval.Request{
		Chain: forgedChain(p), Host: "good.example.com", Port: 443,
		Store: p.officials,
	}

	strict := e.Evaluate(req)
	if strict.Accepted || strict.Chain != trusteval.OutcomeFail {
		t.Fatalf("strict policy: accepted=%v chain=%v, want rejected fail", strict.Accepted, strict.Chain)
	}
	if strict.Cause != "" {
		t.Errorf("rejected verdict carries cause %q", strict.Cause)
	}
	if !errors.Is(strict.ChainErr, chain.ErrNoChain) {
		t.Errorf("ChainErr = %v, want ErrNoChain", strict.ChainErr)
	}

	req.Policy = device.ValidationPolicy{App: "ad-sdk", AcceptAll: true}
	v := e.Evaluate(req)
	if !v.Accepted || v.Chain != trusteval.OutcomeOverridden {
		t.Fatalf("accept-all: accepted=%v chain=%v, want accepted overridden", v.Accepted, v.Chain)
	}
	if v.Cause != trusteval.CauseAppAcceptAll {
		t.Errorf("cause = %q, want %q", v.Cause, trusteval.CauseAppAcceptAll)
	}
	if len(v.Overrides) != 1 || v.Overrides[0] != trusteval.OverrideAcceptAll {
		t.Errorf("overrides = %v", v.Overrides)
	}
	if !errors.Is(v.ChainErr, chain.ErrNoChain) {
		t.Error("override must preserve the chain diagnostic")
	}
}

func TestStoreTamperingAttribution(t *testing.T) {
	p := buildPKI(t)
	e := trusteval.New(certgen.Epoch, trusteval.WithReference(p.officials))
	v := e.Evaluate(trusteval.Request{
		Chain: forgedChain(p), Host: "good.example.com", Port: 443,
		Store: p.tampered, Policy: device.ValidationPolicy{},
	})
	if !v.Accepted || v.Chain != trusteval.OutcomePass {
		t.Fatalf("tampered store: accepted=%v chain=%v, want the rogue-anchored pass", v.Accepted, v.Chain)
	}
	if v.AnchoredInReference {
		t.Error("forged chain reported as anchored in the official reference")
	}
	if v.Cause != trusteval.CauseStoreTampering {
		t.Errorf("cause = %q, want %q", v.Cause, trusteval.CauseStoreTampering)
	}
}

func TestSkipHostnamePolicy(t *testing.T) {
	p := buildPKI(t)
	e := trusteval.New(certgen.Epoch, trusteval.WithReference(p.officials))
	req := trusteval.Request{
		Chain: goodChain(p), Host: "other.example.com", Port: 443,
		Store: p.officials, Policy: device.ValidationPolicy{},
	}
	strict := e.Evaluate(req)
	if strict.Accepted || strict.Hostname != trusteval.OutcomeFail {
		t.Fatalf("strict: accepted=%v hostname=%v, want rejected fail", strict.Accepted, strict.Hostname)
	}

	req.Policy = device.ValidationPolicy{App: "allow-all", SkipHostname: true}
	v := e.Evaluate(req)
	if !v.Accepted || v.Hostname != trusteval.OutcomeOverridden {
		t.Fatalf("skip-hostname: accepted=%v hostname=%v", v.Accepted, v.Hostname)
	}
	if v.Cause != trusteval.CauseAppNoHostname {
		t.Errorf("cause = %q, want %q", v.Cause, trusteval.CauseAppNoHostname)
	}
	if v.HostErr == nil {
		t.Error("override must preserve the hostname diagnostic")
	}
}

func TestPinLayer(t *testing.T) {
	p := buildPKI(t)
	pins := pinning.NewStore()
	pins.Add("good.example.com", p.inter.Cert) // pin the issuing CA, §2 style

	e := trusteval.New(certgen.Epoch, trusteval.WithPins(pins), trusteval.WithReference(p.officials))
	ok := e.Evaluate(trusteval.Request{
		Chain: goodChain(p), Host: "good.example.com", Port: 443,
		Store: p.officials, Policy: device.ValidationPolicy{},
	})
	if ok.Pin != trusteval.OutcomePass || !ok.Accepted {
		t.Fatalf("pin-satisfying chain: pin=%v accepted=%v", ok.Pin, ok.Accepted)
	}

	// A forged chain on a tampered store clears the chain layer but trips
	// the pin — the pinned app catches the interception.
	req := trusteval.Request{
		Chain: forgedChain(p), Host: "good.example.com", Port: 443,
		Store: p.tampered, Policy: device.ValidationPolicy{},
	}
	caught := e.Evaluate(req)
	if caught.Accepted || caught.Pin != trusteval.OutcomeFail {
		t.Fatalf("pinned app accepted a forged chain: pin=%v", caught.Pin)
	}
	var mismatch *pinning.ErrPinMismatch
	if !errors.As(caught.PinErr, &mismatch) {
		t.Errorf("PinErr = %v, want ErrPinMismatch", caught.PinErr)
	}

	// The pin-bypassed debug build tunnels straight through the proxy.
	req.Policy = device.ValidationPolicy{App: "debug-build", BypassPins: true}
	tunneled := e.Evaluate(req)
	if !tunneled.Accepted || tunneled.Pin != trusteval.OutcomeOverridden {
		t.Fatalf("pin bypass: accepted=%v pin=%v", tunneled.Accepted, tunneled.Pin)
	}
	// Store tampering outranks the pin bypass in attribution.
	if tunneled.Cause != trusteval.CauseStoreTampering {
		t.Errorf("cause = %q, want store-tampering precedence", tunneled.Cause)
	}

	// Unpinned hosts and pin-free engines skip the layer entirely.
	if v := e.Evaluate(trusteval.Request{Chain: goodChain(p), Host: "unpinned.example.com", Store: p.officials, Policy: device.ValidationPolicy{SkipHostname: true}}); v.Pin != trusteval.OutcomeSkipped {
		t.Errorf("unpinned host: pin=%v, want skipped", v.Pin)
	}
}

func TestEmptyChainRejected(t *testing.T) {
	p := buildPKI(t)
	e := trusteval.New(certgen.Epoch)
	v := e.Evaluate(trusteval.Request{Host: "good.example.com", Store: p.officials,
		Policy: device.ValidationPolicy{AcceptAll: true, SkipHostname: true, BypassPins: true}})
	if v.Accepted {
		t.Error("no handshake evidence must never be accepted, whatever the policy")
	}
	if !errors.Is(v.ChainErr, trusteval.ErrNoPresentedChain) {
		t.Errorf("ChainErr = %v", v.ChainErr)
	}
}

// TestEngineHostnameEdgeCases drives the satellite hostname semantics
// through the full engine: leftmost-label-only wildcards, IP SANs, and
// trailing-dot canonicalization.
func TestEngineHostnameEdgeCases(t *testing.T) {
	p := buildPKI(t)
	e := trusteval.New(certgen.Epoch)
	eval := func(leaf *certgen.Issued, host string) trusteval.Verdict {
		return e.Evaluate(trusteval.Request{
			Chain: []*x509.Certificate{leaf.Cert, p.inter.Cert}, Host: host, Port: 443,
			Store: p.officials, Policy: device.ValidationPolicy{},
		})
	}
	cases := []struct {
		name string
		leaf *certgen.Issued
		host string
		ok   bool
	}{
		{"wildcard covers one label", p.wildcard, "api.w.example.com", true},
		{"wildcard rejects two labels", p.wildcard, "a.b.w.example.com", false},
		{"wildcard rejects the bare domain", p.wildcard, "w.example.com", false},
		{"ip SAN matches the literal", p.ipLeaf, "192.0.2.10", true},
		{"ip SAN rejects other address", p.ipLeaf, "192.0.2.11", false},
		{"dns leaf rejects ip literal", p.leaf, "192.0.2.10", false},
		{"trailing dot is canonical", p.leaf, "good.example.com.", true},
		{"case folds", p.leaf, "GOOD.Example.COM", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := eval(tc.leaf, tc.host)
			if got := v.Hostname == trusteval.OutcomePass; got != tc.ok {
				t.Errorf("hostname outcome = %v (err %v), want pass=%v", v.Hostname, v.HostErr, tc.ok)
			}
			if v.Accepted != tc.ok {
				t.Errorf("accepted = %v, want %v", v.Accepted, tc.ok)
			}
		})
	}
}

// TestChainCacheSharedAcrossPolicies pins the cache-soundness property the
// tentpole calls out: the chain cache memoizes (store, leaf) facts only, so
// one shared cache serves apps with different policies — same hit/miss
// stream, distinct verdicts.
func TestChainCacheSharedAcrossPolicies(t *testing.T) {
	p := buildPKI(t)
	cache := chain.NewCache(64)
	e := trusteval.New(certgen.Epoch, trusteval.WithChainCache(cache))
	req := trusteval.Request{Chain: forgedChain(p), Host: "good.example.com", Port: 443, Store: p.officials}

	strict := e.Evaluate(req)
	misses := cache.Stats().Misses
	if misses == 0 {
		t.Fatal("first evaluation never consulted the cache")
	}

	req.Policy = device.ValidationPolicy{App: "ad-sdk", AcceptAll: true}
	relaxed := e.Evaluate(req)
	st := cache.Stats()
	if st.Misses != misses {
		t.Errorf("second policy re-missed the cache (misses %d -> %d): entries must be policy-free", misses, st.Misses)
	}
	if st.Hits == 0 {
		t.Error("second evaluation should hit the shared entry")
	}
	if strict.Accepted || !relaxed.Accepted {
		t.Errorf("verdicts strict=%v relaxed=%v: policy must still differentiate outcomes", strict.Accepted, relaxed.Accepted)
	}
	if strict.Chain != trusteval.OutcomeFail || relaxed.Chain != trusteval.OutcomeOverridden {
		t.Errorf("chain outcomes %v/%v, want fail/overridden", strict.Chain, relaxed.Chain)
	}
}

func TestAttributePrecedenceAndPartition(t *testing.T) {
	// Precedence: the first set signal in Causes() order wins.
	all := trusteval.Signals{StoreTampered: true, AcceptAll: true, SkipHostname: true, BypassedPin: true}
	if c := trusteval.Attribute(all); c != trusteval.CauseStoreTampering {
		t.Errorf("all signals: cause %q", c)
	}
	if c := trusteval.Attribute(trusteval.Signals{AcceptAll: true, SkipHostname: true, BypassedPin: true}); c != trusteval.CauseAppAcceptAll {
		t.Errorf("no tampering: cause %q", c)
	}
	if c := trusteval.Attribute(trusteval.Signals{SkipHostname: true, BypassedPin: true}); c != trusteval.CauseAppNoHostname {
		t.Errorf("hostname+pin: cause %q", c)
	}
	if c := trusteval.Attribute(trusteval.Signals{BypassedPin: true}); c != trusteval.CausePinBypass {
		t.Errorf("pin only: cause %q", c)
	}
	if c := trusteval.Attribute(trusteval.Signals{}); c != trusteval.CauseClean {
		t.Errorf("no signals: cause %q", c)
	}

	// Partition: every signal combination maps to exactly one member of the
	// fixed vocabulary.
	vocab := map[trusteval.Cause]bool{}
	for _, c := range trusteval.Causes() {
		if vocab[c] {
			t.Fatalf("Causes() repeats %q", c)
		}
		vocab[c] = true
	}
	for mask := 0; mask < 16; mask++ {
		s := trusteval.Signals{
			StoreTampered: mask&1 != 0,
			AcceptAll:     mask&2 != 0,
			SkipHostname:  mask&4 != 0,
			BypassedPin:   mask&8 != 0,
		}
		if !vocab[trusteval.Attribute(s)] {
			t.Errorf("signals %+v map outside the Causes() vocabulary", s)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[trusteval.Outcome]string{
		trusteval.OutcomeSkipped:    "skipped",
		trusteval.OutcomePass:       "pass",
		trusteval.OutcomeFail:       "fail",
		trusteval.OutcomeOverridden: "overridden",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	if trusteval.OutcomeFail.Accepted() || !trusteval.OutcomeOverridden.Accepted() || !trusteval.OutcomeSkipped.Accepted() {
		t.Error("Accepted() semantics wrong")
	}
}

func TestObserverCounters(t *testing.T) {
	p := buildPKI(t)
	o := obs.New()
	e := trusteval.New(certgen.Epoch, trusteval.WithObserver(o))
	e.Evaluate(trusteval.Request{Chain: goodChain(p), Host: "good.example.com", Store: p.officials})
	e.Evaluate(trusteval.Request{Chain: forgedChain(p), Host: "good.example.com", Store: p.officials})
	e.Evaluate(trusteval.Request{Chain: forgedChain(p), Host: "good.example.com", Store: p.officials,
		Policy: device.ValidationPolicy{AcceptAll: true}})

	if got := o.Counter(trusteval.KeyEvals).Value(); got != 3 {
		t.Errorf("evals = %d, want 3", got)
	}
	if got := o.Counter(trusteval.KeyEvalAccepted).Value(); got != 2 {
		t.Errorf("accepted = %d, want 2", got)
	}
	if got := o.Counter(trusteval.KeyEvalRejected).Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	if got := o.Counter(trusteval.KeyCauseClean).Value(); got != 1 {
		t.Errorf("clean = %d, want 1", got)
	}
	if got := o.Counter(trusteval.KeyCauseAcceptAll).Value(); got != 1 {
		t.Errorf("accept-all = %d, want 1", got)
	}
	if got := o.Counter(trusteval.KeyOverrides).Value(); got != 1 {
		t.Errorf("overrides = %d, want 1", got)
	}
}
