package pinning

import (
	"context"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
	"tangledmass/internal/mitm"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/tlsnet"
)

// TestPinBypassedAppTunnelsThroughProxy is the debug-build failure mode: a
// pinned host is intercepted, the pin trips, but the session's policy
// bypasses it — the violation is recorded and the connection proceeds.
func TestPinBypassedAppTunnelsThroughProxy(t *testing.T) {
	u := cauniverse.Default()
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 14, NumLeaves: 10, Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := tlsnet.NewSites(world)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := tlsnet.ServeSites(sites)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pins := BuildFromSites(sites)

	// No whitelist: the proxy intercepts the pinned hosts too.
	proxy, err := mitm.NewProxy(u.InterceptionRoot().Issued, u.Generator(),
		tlsnet.DirectDialer{Server: srv})
	if err != nil {
		t.Fatal(err)
	}
	targets := []tlsnet.HostPort{
		{Host: "www.twitter.com", Port: 443},
		{Host: "www.facebook.com", Port: 443},
	}
	run := func(pol device.ValidationPolicy) []AppVerdict {
		t.Helper()
		dev := device.New(device.Profile{Model: "Nexus 7", Manufacturer: "ASUS", Version: "4.4"},
			u.AOSP("4.4"), nil)
		client, err := netalyzr.New(dev, proxy,
			netalyzr.WithValidationTime(certgen.Epoch),
			netalyzr.WithTargets(targets),
			netalyzr.WithPolicy(pol))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := client.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return EvaluateReport(pins, rep)
	}

	// The strict pinned app raises the violation and does not proceed.
	for _, v := range run(device.ValidationPolicy{App: "banking-app"}) {
		if !v.Pinned {
			t.Fatalf("%s: expected a pinned host", v.Host)
		}
		if v.Violation == nil {
			t.Errorf("%s: intercepted pinned host raised no violation", v.Host)
		}
		if v.Bypassed {
			t.Errorf("%s: strict policy must not bypass the pin", v.Host)
		}
	}

	// The pin-bypassed debug build records the same violation but proceeds.
	for _, v := range run(device.ValidationPolicy{App: "pin-bypass-debug-build", BypassPins: true}) {
		if v.Violation == nil {
			t.Errorf("%s: bypass must still record the violation", v.Host)
		}
		if !v.Bypassed {
			t.Errorf("%s: BypassPins policy should mark the verdict bypassed", v.Host)
		}
	}
}
