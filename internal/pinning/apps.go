package pinning

import (
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/tlsnet"
	"tangledmass/internal/trusteval"
)

// BuildFromSites constructs the pin store the paper's pinned apps
// effectively deploy: each pinned host (tlsnet.PinnedHosts — Facebook,
// Twitter, Google services) pins its issuing CA's key, i.e. the certificate
// directly above the leaf, so routine leaf rotation keeps working while any
// re-signing proxy trips the pin.
func BuildFromSites(sites *tlsnet.Sites) *Store {
	s := NewStore()
	for _, site := range sites.All() {
		if !tlsnet.PinnedHosts[site.Host] {
			continue
		}
		if len(site.Chain) >= 2 {
			s.Add(site.Host, site.Chain[1])
		} else {
			s.Add(site.Host, site.Chain[0])
		}
	}
	return s
}

// AppVerdict is a pinned app's view of one probed connection.
type AppVerdict struct {
	Host string
	Port int
	// Pinned reports whether the app pins this host at all.
	Pinned bool
	// Violation is non-nil when the presented chain failed the pin check —
	// the in-app warning of §2 ("certificates which do not chain ... can
	// evoke a visual warning message in apps implementing cert pinning").
	// It is reported even when the session's policy bypassed the pin.
	Violation error
	// Bypassed reports that the pin mismatched but the session app's
	// policy ignored it — the connection proceeded anyway.
	Bypassed bool
}

// EvaluateReport runs the pin check over a Netalyzr session's probes,
// returning one verdict per probe. The check routes through the
// trust-evaluation engine's pin layer (trusteval.EvaluatePin) under the
// report's session policy, so a pin-bypassed app records the violation but
// proceeds. This is the app-side complement to the detector in
// internal/mitm: even without the Notary, a pinned app catches
// interception of its own traffic.
func EvaluateReport(s *Store, rep *netalyzr.Report) []AppVerdict {
	out := make([]AppVerdict, 0, len(rep.Probes))
	for _, p := range rep.Probes {
		v := AppVerdict{Host: p.Target.Host, Port: p.Target.Port, Pinned: s.Pinned(p.Target.Host)}
		if p.Err == nil && v.Pinned {
			outcome, err := trusteval.EvaluatePin(s, p.Target.Host, p.Chain, rep.Policy)
			v.Violation = err
			v.Bypassed = outcome == trusteval.OutcomeOverridden
		}
		out = append(out, v)
	}
	return out
}
