package pinning

import (
	"context"
	"crypto/x509"
	"errors"
	"sync"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
	"tangledmass/internal/mitm"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/tlsnet"
)

func testChain(t *testing.T) (root, inter, leaf *certgen.Issued) {
	t.Helper()
	g := certgen.NewGenerator(80)
	var err error
	root, err = g.SelfSignedCA("Pin Root")
	if err != nil {
		t.Fatal(err)
	}
	inter, err = g.Intermediate(root, "Pin Intermediate")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err = g.Leaf(inter, "pinned.example.com")
	if err != nil {
		t.Fatal(err)
	}
	return root, inter, leaf
}

func TestPinCertificateStableAndKeyed(t *testing.T) {
	root, inter, _ := testChain(t)
	if PinCertificate(root.Cert) != PinCertificate(root.Cert) {
		t.Error("pin must be deterministic")
	}
	if PinCertificate(root.Cert) == PinCertificate(inter.Cert) {
		t.Error("different keys must yield different pins")
	}
	// A re-issued cert (same key) keeps its pin.
	g := certgen.NewGenerator(80)
	orig, _ := g.SelfSignedCA("Pin Reissue")
	re, _ := g.Reissue(orig, certgen.WithValidity(certgen.Epoch, certgen.Epoch.AddDate(5, 0, 0)))
	if PinCertificate(orig.Cert) != PinCertificate(re.Cert) {
		t.Error("pin must survive reissue (it is a key property)")
	}
}

func TestCheckSemantics(t *testing.T) {
	root, inter, leaf := testChain(t)
	chain := []*x509.Certificate{leaf.Cert, inter.Cert, root.Cert}

	s := NewStore()
	// No pins: vacuous pass.
	if err := s.Check("pinned.example.com", chain); err != nil {
		t.Errorf("unpinned host should pass: %v", err)
	}
	if s.Pinned("pinned.example.com") {
		t.Error("host should not report pinned")
	}

	// Pinning the intermediate: pass (chain contains it).
	s.Add("pinned.example.com", inter.Cert)
	if !s.Pinned("pinned.example.com") {
		t.Error("host should report pinned")
	}
	if err := s.Check("pinned.example.com", chain); err != nil {
		t.Errorf("chain containing pinned intermediate should pass: %v", err)
	}

	// A chain missing the pinned key fails with ErrPinMismatch.
	g := certgen.NewGenerator(81)
	otherRoot, _ := g.SelfSignedCA("Other Root")
	otherLeaf, _ := g.Leaf(otherRoot, "pinned.example.com")
	bad := []*x509.Certificate{otherLeaf.Cert, otherRoot.Cert}
	err := s.Check("pinned.example.com", bad)
	var mismatch *ErrPinMismatch
	if !errors.As(err, &mismatch) {
		t.Fatalf("err = %v, want ErrPinMismatch", err)
	}
	if mismatch.Host != "pinned.example.com" || len(mismatch.Presented) != 2 {
		t.Errorf("mismatch detail = %+v", mismatch)
	}
	if mismatch.Error() == "" {
		t.Error("empty error string")
	}
}

func TestLeafRotationSurvivesIntermediatePin(t *testing.T) {
	root, inter, _ := testChain(t)
	s := NewStore()
	s.Add("pinned.example.com", inter.Cert)
	// A brand-new leaf under the same intermediate still passes.
	g := certgen.NewGenerator(80)
	inter2 := &certgen.Issued{Cert: inter.Cert, Key: inter.Key}
	fresh, err := g.Leaf(inter2, "pinned.example.com", certgen.WithKeyName("rotated-leaf"))
	if err != nil {
		t.Fatal(err)
	}
	chain := []*x509.Certificate{fresh.Cert, inter.Cert, root.Cert}
	if err := s.Check("pinned.example.com", chain); err != nil {
		t.Errorf("rotated leaf under pinned intermediate should pass: %v", err)
	}
}

func TestStoreAccessors(t *testing.T) {
	root, inter, _ := testChain(t)
	s := NewStore()
	s.Add("b.example", inter.Cert)
	s.Add("a.example", root.Cert, inter.Cert)
	s.AddPin("a.example", Pin("deadbeef"))
	hosts := s.Hosts()
	if len(hosts) != 2 || hosts[0] != "a.example" || hosts[1] != "b.example" {
		t.Errorf("hosts = %v", hosts)
	}
	if got := len(s.Pins("a.example")); got != 3 {
		t.Errorf("a.example pins = %d, want 3", got)
	}
	// Idempotent add.
	s.Add("a.example", root.Cert)
	if got := len(s.Pins("a.example")); got != 3 {
		t.Errorf("re-add changed pin count to %d", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	root, _, leaf := testChain(t)
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Add("c.example", root.Cert)
				s.Check("c.example", []*x509.Certificate{leaf.Cert, root.Cert})
				s.Pinned("c.example")
			}
		}()
	}
	wg.Wait()
}

// TestPinnedAppCatchesInterception is the §7 end-to-end: a pinned app's
// traffic through the marketing proxy. Whitelisted (tunneled) hosts pass the
// pin check; if the proxy were to intercept a pinned host, the app would
// raise a violation — which is exactly why the proxy whitelists them.
func TestPinnedAppCatchesInterception(t *testing.T) {
	u := cauniverse.Default()
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 13, NumLeaves: 10, Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := tlsnet.NewSites(world)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := tlsnet.ServeSites(sites)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pins := BuildFromSites(sites)
	if len(pins.Hosts()) == 0 {
		t.Fatal("no pinned hosts built")
	}

	run := func(whitelist []tlsnet.HostPort) *netalyzr.Report {
		t.Helper()
		proxy, err := mitm.NewProxy(u.InterceptionRoot().Issued, u.Generator(),
			tlsnet.DirectDialer{Server: srv}, mitm.WithWhitelist(whitelist))
		if err != nil {
			t.Fatal(err)
		}
		dev := device.New(device.Profile{Model: "Nexus 7", Manufacturer: "ASUS", Version: "4.4"},
			u.AOSP("4.4"), nil)
		client, err := netalyzr.New(dev, proxy,
			netalyzr.WithValidationTime(certgen.Epoch),
			netalyzr.WithTargets([]tlsnet.HostPort{
				{Host: "www.twitter.com", Port: 443},
				{Host: "www.facebook.com", Port: 443},
				{Host: "gmail.com", Port: 443},
			}))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := client.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// With the paper's whitelist: pinned hosts tunneled → no violations.
	rep := run(tlsnet.WhitelistedDomains)
	for _, v := range EvaluateReport(pins, rep) {
		if v.Violation != nil {
			t.Errorf("%s: unexpected pin violation through whitelist: %v", v.Host, v.Violation)
		}
	}

	// With an empty whitelist the proxy intercepts the pinned hosts too,
	// and the apps catch it.
	rep = run(nil)
	violations := 0
	for _, v := range EvaluateReport(pins, rep) {
		if v.Pinned && v.Violation != nil {
			violations++
		}
		if v.Host == "gmail.com" && v.Pinned {
			t.Error("gmail.com is not a pinned app host in this scenario")
		}
	}
	if violations != 2 {
		t.Errorf("pin violations = %d, want 2 (twitter + facebook)", violations)
	}
}
