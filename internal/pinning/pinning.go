// Package pinning implements certificate pinning as deployed by the apps
// the paper discusses (§2, §7): Twitter, Facebook and most Google services
// pin their expected keys and reject chains signed by unexpected
// authorities, even ones anchored in the device's root store. Pinning is
// why the marketing proxy of §7 had to whitelist those services — an
// intercepted pinned connection fails loudly inside the app.
//
// Pins follow the HPKP/Chromium convention: a pin is the SHA-256 of the
// certificate's SubjectPublicKeyInfo, and a host's pin set may match any
// certificate in the presented chain (leaf, intermediate, or root), so CA
// rotation below a pinned intermediate does not break the app.
package pinning

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Pin is the hex-encoded SHA-256 of a certificate's SubjectPublicKeyInfo.
type Pin string

// PinCertificate computes the pin of a certificate's public key.
func PinCertificate(cert *x509.Certificate) Pin {
	sum := sha256.Sum256(cert.RawSubjectPublicKeyInfo)
	return Pin(hex.EncodeToString(sum[:]))
}

// Store maps hosts to their pin sets. The zero value is not usable;
// construct with NewStore. Safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	pins map[string]map[Pin]bool
}

// NewStore returns an empty pin store.
func NewStore() *Store {
	return &Store{pins: make(map[string]map[Pin]bool)}
}

// Add pins one or more certificates for host. Re-adding is idempotent.
func (s *Store) Add(host string, certs ...*x509.Certificate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.pins[host]
	if set == nil {
		set = make(map[Pin]bool)
		s.pins[host] = set
	}
	for _, c := range certs {
		set[PinCertificate(c)] = true
	}
}

// AddPin pins a raw pin value for host.
func (s *Store) AddPin(host string, p Pin) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.pins[host]
	if set == nil {
		set = make(map[Pin]bool)
		s.pins[host] = set
	}
	set[p] = true
}

// Pinned reports whether host has any pins configured.
func (s *Store) Pinned(host string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pins[host]) > 0
}

// Pins returns host's pin set, sorted, for reporting.
func (s *Store) Pins(host string) []Pin {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Pin, 0, len(s.pins[host]))
	for p := range s.pins[host] {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Hosts returns the pinned host names, sorted.
func (s *Store) Hosts() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pins))
	for h := range s.pins {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// ErrPinMismatch is returned when a presented chain matches none of a host's
// pins — the signal a pinned app raises under TLS interception.
type ErrPinMismatch struct {
	Host string
	// Presented are the pins of the presented chain, leaf first.
	Presented []Pin
}

// Error implements error.
func (e *ErrPinMismatch) Error() string {
	return fmt.Sprintf("pinning: %s presented %d certificates, none matching its pin set", e.Host, len(e.Presented))
}

// Check validates a presented chain (leaf first) against host's pins. A
// host with no pins passes vacuously — pinning is opt-in per app. A pinned
// host passes if any chain certificate's key matches any pin.
func (s *Store) Check(host string, chain []*x509.Certificate) error {
	s.mu.RLock()
	set := s.pins[host]
	s.mu.RUnlock()
	if len(set) == 0 {
		return nil
	}
	presented := make([]Pin, 0, len(chain))
	for _, c := range chain {
		p := PinCertificate(c)
		if set[p] {
			return nil
		}
		presented = append(presented, p)
	}
	return &ErrPinMismatch{Host: host, Presented: presented}
}
