package pinning_test

import (
	"crypto/x509"
	"fmt"

	"tangledmass/internal/certgen"
	"tangledmass/internal/pinning"
)

// An app pins its service's issuing CA: leaf rotation keeps working, but a
// re-signing proxy trips the pin — the §7 dynamic that forced the marketing
// proxy to whitelist pinned services.
func Example() {
	g := certgen.NewGenerator(7)
	root, _ := g.SelfSignedCA("Service Root")
	inter, _ := g.Intermediate(root, "Service Issuing CA")
	leaf, _ := g.Leaf(inter, "api.service.example")

	pins := pinning.NewStore()
	pins.Add("api.service.example", inter.Cert)

	genuine := []*x509.Certificate{leaf.Cert, inter.Cert, root.Cert}
	fmt.Println("genuine chain:", pins.Check("api.service.example", genuine))

	proxyCA, _ := g.SelfSignedCA("Interception Proxy CA")
	forged, _ := g.Leaf(proxyCA, "api.service.example", certgen.WithKeyName("forged"))
	mitm := []*x509.Certificate{forged.Cert, proxyCA.Cert}
	fmt.Println("forged chain ok:", pins.Check("api.service.example", mitm) == nil)
	// Output:
	// genuine chain: <nil>
	// forged chain ok: false
}
