// Package mitm implements the §7 TLS interception system: an HTTPS proxy in
// the style of the marketing-research provider the paper caught in the wild.
// The proxy terminates TLS for intercepted domains — re-generating an
// intermediate and leaf certificate on the fly under its own root — while
// tunneling whitelisted domains (certificate-pinned apps, Google's SUPL
// port, Facebook chat) untouched. It also provides the detector that
// classifies observed chains, reproducing Table 6.
package mitm

import (
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/resilient"
	"tangledmass/internal/tlsnet"
)

// ProxyConfig configures an interception proxy.
type ProxyConfig struct {
	// CA is the proxy's signing root (the Reality Mine analogue).
	CA *certgen.Issued
	// Generator mints the on-the-fly intermediate and leaf certificates.
	Generator *certgen.Generator
	// Upstream reaches the real origin servers.
	Upstream tlsnet.Dialer
	// Whitelist lists host:port targets to tunnel instead of intercept.
	Whitelist []tlsnet.HostPort
	// DisableLeafCache forces a fresh forged leaf per connection — the
	// baseline arm of the leaf-cache ablation.
	DisableLeafCache bool
	// Retry governs transient upstream dial failures — a proxy on a lossy
	// uplink rides out refused connects and resets instead of dropping the
	// handset's session. Nil means 3 attempts with short backoff.
	Retry *resilient.Retrier
}

// Proxy is a man-in-the-middle HTTPS proxy. It implements tlsnet.Dialer, so
// a measurement client pointed at it transparently probes through it — the
// same topology as the §7 handset whose tun interface routed all traffic to
// the marketing proxy.
type Proxy struct {
	cfg          ProxyConfig
	whitelist    map[string]bool
	intermediate *certgen.Issued
	retry        *resilient.Retrier

	mu        sync.Mutex
	leafCache map[string]*tls.Certificate
	stats     Stats
}

// Stats counts proxy activity.
type Stats struct {
	Intercepted  int64
	Tunneled     int64
	LeavesForged int64
	// UpstreamFailures counts origin dials that failed even after retries.
	UpstreamFailures int64
}

// NewProxy builds the proxy and its on-the-fly intermediate.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	if cfg.CA == nil || cfg.Generator == nil || cfg.Upstream == nil {
		return nil, fmt.Errorf("mitm: config needs CA, Generator and Upstream")
	}
	inter, err := cfg.Generator.Intermediate(cfg.CA,
		cfg.CA.Cert.Subject.CommonName+" Interception Intermediate")
	if err != nil {
		return nil, fmt.Errorf("mitm: issuing intermediate: %w", err)
	}
	retry := cfg.Retry
	if retry == nil {
		retry = resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 3,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
		}, 0)
	}
	p := &Proxy{
		cfg:          cfg,
		whitelist:    make(map[string]bool, len(cfg.Whitelist)),
		intermediate: inter,
		retry:        retry,
		leafCache:    make(map[string]*tls.Certificate),
	}
	for _, hp := range cfg.Whitelist {
		p.whitelist[hp.String()] = true
	}
	return p, nil
}

// Whitelisted reports whether host:port is tunneled rather than intercepted.
func (p *Proxy) Whitelisted(host string, port int) bool {
	return p.whitelist[tlsnet.HostPort{Host: host, Port: port}.String()]
}

// Stats returns a snapshot of proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// DialSite implements tlsnet.Dialer. Whitelisted targets pass straight to
// the upstream; intercepted targets get a pipe whose far end speaks TLS with
// a forged certificate.
func (p *Proxy) DialSite(host string, port int) (net.Conn, error) {
	if p.Whitelisted(host, port) {
		p.mu.Lock()
		p.stats.Tunneled++
		p.mu.Unlock()
		return p.dialUpstream(host, port)
	}
	p.mu.Lock()
	p.stats.Intercepted++
	p.mu.Unlock()
	client, server := net.Pipe()
	go p.serve(server, host, port)
	return client, nil
}

// serve terminates the client's TLS with a forged certificate, then relays
// the origin's application data through a second TLS session upstream.
func (p *Proxy) serve(conn net.Conn, host string, port int) {
	defer conn.Close()
	cert, err := p.forgedLeaf(host)
	if err != nil {
		return
	}
	tconn := tls.Server(conn, &tls.Config{Certificates: []tls.Certificate{*cert}})
	if err := tconn.Handshake(); err != nil {
		return
	}
	defer tconn.Close()

	// Fetch the origin's response over a real upstream TLS session. The
	// proxy does not need the origin to be trustworthy — it is the
	// interception point, exactly as in §7.
	up, err := p.dialUpstream(host, port)
	if err != nil {
		return
	}
	defer up.Close()
	upTLS := tls.Client(up, &tls.Config{ServerName: host, InsecureSkipVerify: true})
	if err := upTLS.Handshake(); err != nil {
		return
	}
	defer upTLS.Close()

	// Bidirectional relay; for the banner protocol one copy each way is
	// plenty, but a general relay keeps the proxy protocol-agnostic.
	// Copy errors just mean one side hung up; the deferred closes tear the
	// other side down.
	done := make(chan struct{}, 2)
	go func() { _, _ = io.Copy(tconn, upTLS); done <- struct{}{} }()
	go func() { _, _ = io.Copy(upTLS, tconn); done <- struct{}{} }()
	<-done
}

// dialUpstream reaches the origin under the proxy's retry policy, counting
// dials that fail even after retries.
func (p *Proxy) dialUpstream(host string, port int) (net.Conn, error) {
	var conn net.Conn
	err := p.retry.Do(func(int) error {
		c, err := p.cfg.Upstream.DialSite(host, port)
		if err != nil {
			return err
		}
		conn = c
		return nil
	})
	if err != nil {
		p.mu.Lock()
		p.stats.UpstreamFailures++
		p.mu.Unlock()
		return nil, err
	}
	return conn, nil
}

// forgedLeaf returns (minting if needed) the forged certificate for host:
// a fresh leaf under the proxy's interception intermediate.
func (p *Proxy) forgedLeaf(host string) (*tls.Certificate, error) {
	if !p.cfg.DisableLeafCache {
		p.mu.Lock()
		if c, ok := p.leafCache[host]; ok {
			p.mu.Unlock()
			return c, nil
		}
		p.mu.Unlock()
	}
	leaf, err := p.cfg.Generator.Leaf(p.intermediate, host,
		certgen.WithKeyName("mitm-forged-leaf-key"),
		certgen.WithValidity(certgen.Epoch.AddDate(0, -1, 0), certgen.Epoch.AddDate(1, 0, 0)))
	if err != nil {
		return nil, fmt.Errorf("mitm: forging leaf for %s: %w", host, err)
	}
	cert := &tls.Certificate{
		Certificate: [][]byte{leaf.Cert.Raw, p.intermediate.Cert.Raw},
		PrivateKey:  leaf.Key,
	}
	p.mu.Lock()
	p.stats.LeavesForged++
	if !p.cfg.DisableLeafCache {
		p.leafCache[host] = cert
	}
	p.mu.Unlock()
	return cert, nil
}

// Intermediate exposes the proxy's on-the-fly intermediate certificate.
func (p *Proxy) Intermediate() *certgen.Issued { return p.intermediate }
