// Package mitm implements the §7 TLS interception system: an HTTPS proxy in
// the style of the marketing-research provider the paper caught in the wild.
// The proxy terminates TLS for intercepted domains — re-generating an
// intermediate and leaf certificate on the fly under its own root — while
// tunneling whitelisted domains (certificate-pinned apps, Google's SUPL
// port, Facebook chat) untouched. It also provides the detector that
// classifies observed chains, reproducing Table 6.
package mitm

import (
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/obs"
	"tangledmass/internal/resilient"
	"tangledmass/internal/tlsnet"
)

// Proxy is a man-in-the-middle HTTPS proxy. It implements tlsnet.Dialer, so
// a measurement client pointed at it transparently probes through it — the
// same topology as the §7 handset whose tun interface routed all traffic to
// the marketing proxy. Construct with NewProxy.
type Proxy struct {
	ca           *certgen.Issued
	generator    *certgen.Generator
	upstream     tlsnet.Dialer
	whitelist    map[string]bool
	intermediate *certgen.Issued
	retry        *resilient.Retrier
	obs          *obs.Observer
	noLeafCache  bool

	mu        sync.Mutex
	leafCache map[string]*tls.Certificate
	stats     Stats
}

// Stats counts proxy activity.
type Stats struct {
	Intercepted  int64
	Tunneled     int64
	LeavesForged int64
	// UpstreamFailures counts origin dials that failed even after retries.
	UpstreamFailures int64
}

// Option configures a Proxy.
type Option func(*Proxy)

// WithWhitelist lists host:port targets to tunnel instead of intercept —
// the pinned apps, SUPL and chat endpoints of §7.
func WithWhitelist(targets []tlsnet.HostPort) Option {
	return func(p *Proxy) {
		for _, hp := range targets {
			p.whitelist[hp.String()] = true
		}
	}
}

// WithoutLeafCache forces a fresh forged leaf per connection — the baseline
// arm of the leaf-cache ablation.
func WithoutLeafCache() Option {
	return func(p *Proxy) { p.noLeafCache = true }
}

// WithRetryPolicy overrides the transient-upstream-dial retry policy — a
// proxy on a lossy uplink rides out refused connects and resets instead of
// dropping the handset's session. The default is 3 attempts with short
// backoff.
func WithRetryPolicy(r *resilient.Retrier) Option {
	return func(p *Proxy) { p.retry = r }
}

// WithObserver attaches the observer the proxy's intercept/tunnel/forge
// counters report through. The default (nil) is silent; Stats always works.
func WithObserver(o *obs.Observer) Option {
	return func(p *Proxy) { p.obs = o }
}

// NewProxy builds the proxy and its on-the-fly intermediate. ca is the
// proxy's signing root (the Reality Mine analogue), gen mints the
// intermediate and leaf certificates, and upstream reaches the real origin
// servers.
func NewProxy(ca *certgen.Issued, gen *certgen.Generator, upstream tlsnet.Dialer, opts ...Option) (*Proxy, error) {
	if ca == nil || gen == nil || upstream == nil {
		return nil, fmt.Errorf("mitm: proxy needs a CA, a generator and an upstream dialer")
	}
	p := &Proxy{
		ca:        ca,
		generator: gen,
		upstream:  upstream,
		whitelist: make(map[string]bool),
		leafCache: make(map[string]*tls.Certificate),
	}
	for _, opt := range opts {
		opt(p)
	}
	inter, err := gen.Intermediate(ca, ca.Cert.Subject.CommonName+" Interception Intermediate")
	if err != nil {
		return nil, fmt.Errorf("mitm: issuing intermediate: %w", err)
	}
	p.intermediate = inter
	if p.retry == nil {
		p.retry = resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 3,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
		}, 0).WithObserver(p.obs)
	}
	return p, nil
}

// Whitelisted reports whether host:port is tunneled rather than intercepted.
func (p *Proxy) Whitelisted(host string, port int) bool {
	return p.whitelist[tlsnet.HostPort{Host: host, Port: port}.String()]
}

// Stats returns a snapshot of proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// DialSite implements tlsnet.Dialer. Whitelisted targets pass straight to
// the upstream; intercepted targets get a pipe whose far end speaks TLS with
// a forged certificate.
func (p *Proxy) DialSite(ctx context.Context, host string, port int) (net.Conn, error) {
	if p.Whitelisted(host, port) {
		p.mu.Lock()
		p.stats.Tunneled++
		p.mu.Unlock()
		p.obs.Counter(KeyTunneled).Inc()
		return p.dialUpstream(ctx, host, port)
	}
	p.mu.Lock()
	p.stats.Intercepted++
	p.mu.Unlock()
	p.obs.Counter(KeyIntercepted).Inc()
	client, server := net.Pipe()
	// The proxied session outlives the dial: the handset's dial ctx bounds
	// connection establishment, not the relay's lifetime, so the serve
	// goroutine detaches from its cancelation (exactly as a real proxy's
	// accepted connection outlives the SYN).
	go p.serve(context.WithoutCancel(ctx), server, host, port)
	return client, nil
}

// serve terminates the client's TLS with a forged certificate, then relays
// the origin's application data through a second TLS session upstream.
func (p *Proxy) serve(ctx context.Context, conn net.Conn, host string, port int) {
	defer conn.Close()
	cert, err := p.forgedLeaf(host)
	if err != nil {
		return
	}
	tconn := tls.Server(conn, &tls.Config{Certificates: []tls.Certificate{*cert}})
	if err := tconn.Handshake(); err != nil {
		return
	}
	defer tconn.Close()

	// Fetch the origin's response over a real upstream TLS session. The
	// proxy does not need the origin to be trustworthy — it is the
	// interception point, exactly as in §7.
	up, err := p.dialUpstream(ctx, host, port)
	if err != nil {
		return
	}
	defer up.Close()
	upTLS := tls.Client(up, &tls.Config{ServerName: host, InsecureSkipVerify: true})
	if err := upTLS.Handshake(); err != nil {
		return
	}
	defer upTLS.Close()

	// Bidirectional relay; for the banner protocol one copy each way is
	// plenty, but a general relay keeps the proxy protocol-agnostic.
	// Copy errors just mean one side hung up; the deferred closes tear the
	// other side down.
	done := make(chan struct{}, 2)
	go func() { _, _ = io.Copy(tconn, upTLS); done <- struct{}{} }()
	go func() { _, _ = io.Copy(upTLS, tconn); done <- struct{}{} }()
	<-done
}

// dialUpstream reaches the origin under the proxy's retry policy, counting
// dials that fail even after retries.
func (p *Proxy) dialUpstream(ctx context.Context, host string, port int) (net.Conn, error) {
	var conn net.Conn
	err := p.retry.Do(ctx, func(int) error {
		c, err := p.upstream.DialSite(ctx, host, port)
		if err != nil {
			return err
		}
		conn = c
		return nil
	})
	if err != nil {
		p.mu.Lock()
		p.stats.UpstreamFailures++
		p.mu.Unlock()
		p.obs.Counter(KeyUpstreamExhausted).Inc()
		return nil, err
	}
	return conn, nil
}

// forgedLeaf returns (minting if needed) the forged certificate for host:
// a fresh leaf under the proxy's interception intermediate.
func (p *Proxy) forgedLeaf(host string) (*tls.Certificate, error) {
	if !p.noLeafCache {
		p.mu.Lock()
		if c, ok := p.leafCache[host]; ok {
			p.mu.Unlock()
			p.obs.Counter(KeyLeafCacheHits).Inc()
			return c, nil
		}
		p.mu.Unlock()
	}
	leaf, err := p.generator.Leaf(p.intermediate, host,
		certgen.WithKeyName("mitm-forged-leaf-key"),
		certgen.WithValidity(certgen.Epoch.AddDate(0, -1, 0), certgen.Epoch.AddDate(1, 0, 0)))
	if err != nil {
		return nil, fmt.Errorf("mitm: forging leaf for %s: %w", host, err)
	}
	cert := &tls.Certificate{
		Certificate: [][]byte{leaf.Cert.Raw, p.intermediate.Cert.Raw},
		PrivateKey:  leaf.Key,
	}
	p.mu.Lock()
	p.stats.LeavesForged++
	if !p.noLeafCache {
		p.leafCache[host] = cert
	}
	p.mu.Unlock()
	p.obs.Counter(KeyLeavesForged).Inc()
	return cert, nil
}

// Intermediate exposes the proxy's on-the-fly intermediate certificate.
func (p *Proxy) Intermediate() *certgen.Issued { return p.intermediate }
