package mitm

// App-policy interception scenarios: what the §7 proxy gets away with when
// the client app's own validation is broken.

import (
	"context"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/tlsnet"
	"tangledmass/internal/trusteval"
)

// TestAcceptAllAppMisvalidatesInterceptedProbes runs the same proxied
// session twice: under the strict platform policy every intercepted probe
// is rejected; under an accept-all trust manager the app proceeds on all of
// them, and the report attributes each one as a misvalidation.
func TestAcceptAllAppMisvalidatesInterceptedProbes(t *testing.T) {
	proxy := newTestProxy(t, false)
	run := func(pol device.ValidationPolicy) *netalyzr.Report {
		t.Helper()
		client, err := netalyzr.New(interceptedDevice(), proxy,
			netalyzr.WithValidationTime(certgen.Epoch),
			netalyzr.WithPolicy(pol))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := client.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	strict := run(device.ValidationPolicy{App: "platform-default"})
	if n := len(strict.MisvalidatedProbes()); n != 0 {
		t.Errorf("strict session misvalidated %d probes, want 0", n)
	}
	for _, p := range strict.UntrustedProbes() {
		if p.AppAccepted {
			t.Errorf("%s: strict app accepted an untrusted chain", p.Target)
		}
	}

	rep := run(device.ValidationPolicy{App: "accept-all-trust-manager", AcceptAll: true})
	wantIntercepted := len(tlsnet.InterceptedDomains)
	if n := len(rep.UntrustedProbes()); n != wantIntercepted {
		t.Fatalf("untrusted probes = %d, want %d: policy must not change device validation", n, wantIntercepted)
	}
	mis := rep.MisvalidatedProbes()
	if len(mis) != wantIntercepted {
		t.Fatalf("misvalidated probes = %d, want every intercepted probe (%d)", len(mis), wantIntercepted)
	}
	for _, p := range mis {
		if p.DeviceValidated || !p.AppAccepted {
			t.Errorf("%s: misvalidated probe flags device=%v app=%v", p.Target, p.DeviceValidated, p.AppAccepted)
		}
		if p.Verdict.Chain != trusteval.OutcomeOverridden {
			t.Errorf("%s: chain outcome = %v, want overridden", p.Target, p.Verdict.Chain)
		}
		if p.Verdict.Cause != trusteval.CauseAppAcceptAll {
			t.Errorf("%s: cause = %q, want %q", p.Target, p.Verdict.Cause, trusteval.CauseAppAcceptAll)
		}
	}
	// The whitelisted (tunneled) probes stay clean under either policy.
	for _, p := range rep.Probes {
		if p.Err == nil && p.DeviceValidated && p.Verdict.Cause != trusteval.CauseClean {
			t.Errorf("%s: tunneled probe attributed %q", p.Target, p.Verdict.Cause)
		}
	}
}
