package mitm

import (
	"context"
	"crypto/x509"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/notary"
	"tangledmass/internal/resilient"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/tlsnet"
)

var (
	envOnce  sync.Once
	envSrv   *tlsnet.Server
	envSites *tlsnet.Sites
	envErr   error
)

func env(t *testing.T) (*tlsnet.Server, *tlsnet.Sites) {
	t.Helper()
	envOnce.Do(func() {
		var w *tlsnet.World
		w, envErr = tlsnet.NewWorld(tlsnet.Config{Seed: 9, NumLeaves: 10})
		if envErr != nil {
			return
		}
		envSites, envErr = tlsnet.NewSites(w)
		if envErr != nil {
			return
		}
		envSrv, envErr = tlsnet.ServeSites(envSites)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envSrv, envSites
}

func newTestProxy(t *testing.T, disableCache bool) *Proxy {
	t.Helper()
	srv, _ := env(t)
	u := cauniverse.Default()
	opts := []Option{WithWhitelist(tlsnet.WhitelistedDomains)}
	if disableCache {
		opts = append(opts, WithoutLeafCache())
	}
	p, err := NewProxy(u.InterceptionRoot().Issued, u.Generator(),
		tlsnet.DirectDialer{Server: srv}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func interceptedDevice() *device.Device {
	u := cauniverse.Default()
	return device.New(device.Profile{
		Model: "Nexus 7", Manufacturer: "ASUS", Operator: "WiFi", Country: "US", Version: "4.4",
	}, u.AOSP("4.4"), nil)
}

func TestProxyConfigValidation(t *testing.T) {
	if _, err := NewProxy(nil, nil, nil); err == nil {
		t.Error("missing CA/generator/upstream should error")
	}
}

func TestTable6InterceptionSplit(t *testing.T) {
	proxy := newTestProxy(t, false)
	u := cauniverse.Default()
	client, err := netalyzr.New(interceptedDevice(), proxy,
		netalyzr.WithValidationTime(certgen.Epoch))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := client.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	reference := rootstore.Union("reference", u.AOSP("4.4"), u.Mozilla(), u.IOS7())
	det := &Detector{Reference: reference, At: certgen.Epoch}
	intercepted, clean := det.InspectReport(rep)

	wantIntercepted := map[string]bool{}
	for _, hp := range tlsnet.InterceptedDomains {
		wantIntercepted[hp.String()] = true
	}
	if len(intercepted) != len(tlsnet.InterceptedDomains) {
		t.Errorf("intercepted = %d, want %d (Table 6)", len(intercepted), len(tlsnet.InterceptedDomains))
	}
	for _, f := range intercepted {
		key := tlsnet.HostPort{Host: f.Host, Port: f.Port}.String()
		if !wantIntercepted[key] {
			t.Errorf("%s classified intercepted but is whitelisted", key)
		}
	}
	if len(clean) != len(tlsnet.WhitelistedDomains) {
		t.Errorf("clean = %d, want %d (Table 6)", len(clean), len(tlsnet.WhitelistedDomains))
	}

	// Device-side view: intercepted domains fail store validation — the
	// proxy's root is in no store.
	if got := len(rep.UntrustedProbes()); got != len(tlsnet.InterceptedDomains) {
		t.Errorf("untrusted probes = %d, want %d", got, len(tlsnet.InterceptedDomains))
	}
}

func TestForgedChainShape(t *testing.T) {
	proxy := newTestProxy(t, false)
	client, err := netalyzr.New(interceptedDevice(), proxy,
		netalyzr.WithValidationTime(certgen.Epoch),
		netalyzr.WithTargets([]tlsnet.HostPort{{Host: "gmail.com", Port: 443}}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := client.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Probes[0]
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	// Forged chain: leaf for the host + interception intermediate,
	// chaining to the proxy CA (§7: root and intermediate regenerated
	// on the fly).
	if len(p.Chain) != 2 {
		t.Fatalf("forged chain has %d certs, want 2", len(p.Chain))
	}
	if p.Chain[0].Subject.CommonName != "gmail.com" {
		t.Errorf("forged leaf CN = %q", p.Chain[0].Subject.CommonName)
	}
	u := cauniverse.Default()
	caCN := u.InterceptionRoot().Issued.Cert.Subject.CommonName
	if p.Chain[1].Issuer.CommonName != caCN {
		t.Errorf("intermediate issuer = %q, want %q", p.Chain[1].Issuer.CommonName, caCN)
	}
	if p.DeviceValidated {
		t.Error("forged chain must not validate against the stock store")
	}
}

func TestWhitelistTunnelsPinnedApps(t *testing.T) {
	proxy := newTestProxy(t, false)
	client, err := netalyzr.New(interceptedDevice(), proxy,
		netalyzr.WithValidationTime(certgen.Epoch),
		netalyzr.WithTargets([]tlsnet.HostPort{{Host: "supl.google.com", Port: 7275}, {Host: "www.facebook.com", Port: 443}}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := client.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Probes {
		if p.Err != nil {
			t.Fatalf("%s: %v", p.Target, p.Err)
		}
		if !p.DeviceValidated {
			t.Errorf("whitelisted %s should present the genuine chain", p.Target)
		}
	}
	st := proxy.Stats()
	if st.Tunneled != 2 || st.Intercepted != 0 {
		t.Errorf("stats = %+v, want 2 tunneled / 0 intercepted", st)
	}
}

func TestSamePortDifferentiation(t *testing.T) {
	// orcart.facebook.com is intercepted on 443 but whitelisted on 8883
	// (Facebook chat) — the proxy distinguishes by port.
	proxy := newTestProxy(t, false)
	if proxy.Whitelisted("orcart.facebook.com", 443) {
		t.Error("orcart.facebook.com:443 should be intercepted")
	}
	if !proxy.Whitelisted("orcart.facebook.com", 8883) {
		t.Error("orcart.facebook.com:8883 should be whitelisted")
	}
}

func TestLeafCache(t *testing.T) {
	cached := newTestProxy(t, false)
	for i := 0; i < 3; i++ {
		c, err := cached.forgedLeaf("repeat.example.com")
		if err != nil || c == nil {
			t.Fatal(err)
		}
	}
	if got := cached.Stats().LeavesForged; got != 1 {
		t.Errorf("cached proxy forged %d leaves, want 1", got)
	}

	uncached := newTestProxy(t, true)
	for i := 0; i < 3; i++ {
		if _, err := uncached.forgedLeaf("repeat.example.com"); err != nil {
			t.Fatal(err)
		}
	}
	if got := uncached.Stats().LeavesForged; got != 3 {
		t.Errorf("uncached proxy forged %d leaves, want 3", got)
	}
}

// flakyUpstream refuses the first failures dials of every target, then
// delegates — the transient-outage shape the proxy's retry must absorb.
type flakyUpstream struct {
	next tlsnet.Dialer

	mu       sync.Mutex
	failures int
	dials    map[string]int
}

func (f *flakyUpstream) DialSite(ctx context.Context, host string, port int) (net.Conn, error) {
	key := tlsnet.HostPort{Host: host, Port: port}.String()
	f.mu.Lock()
	f.dials[key]++
	n := f.dials[key]
	f.mu.Unlock()
	if n <= f.failures {
		return nil, resilient.MarkTransient(&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED})
	}
	return f.next.DialSite(ctx, host, port)
}

func TestProxyRetriesUpstreamDials(t *testing.T) {
	srv, _ := env(t)
	u := cauniverse.Default()
	up := &flakyUpstream{next: tlsnet.DirectDialer{Server: srv}, failures: 2, dials: map[string]int{}}
	proxy, err := NewProxy(u.InterceptionRoot().Issued, u.Generator(), up,
		WithWhitelist(tlsnet.WhitelistedDomains),
		WithRetryPolicy(resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		}, 0)))
	if err != nil {
		t.Fatal(err)
	}
	client, err := netalyzr.New(interceptedDevice(), proxy,
		netalyzr.WithValidationTime(certgen.Epoch),
		netalyzr.WithTargets([]tlsnet.HostPort{
			{Host: "gmail.com", Port: 443},        // intercepted: relay path
			{Host: "supl.google.com", Port: 7275}, // whitelisted: tunnel path
		}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := client.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Probes {
		if p.Err != nil {
			t.Errorf("%s should survive two refused upstream dials: %v", p.Target, p.Err)
		}
	}
	if got := proxy.Stats().UpstreamFailures; got != 0 {
		t.Errorf("upstream failures = %d, want 0 (retries absorbed the refusals)", got)
	}
}

func TestProxyCountsExhaustedUpstream(t *testing.T) {
	srv, _ := env(t)
	u := cauniverse.Default()
	// More refusals than the policy has attempts: the dial exhausts.
	up := &flakyUpstream{next: tlsnet.DirectDialer{Server: srv}, failures: 99, dials: map[string]int{}}
	proxy, err := NewProxy(u.InterceptionRoot().Issued, u.Generator(), up,
		WithWhitelist(tlsnet.WhitelistedDomains),
		WithRetryPolicy(resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 2,
			BaseDelay:   time.Millisecond,
			MaxDelay:    time.Millisecond,
		}, 0)))
	if err != nil {
		t.Fatal(err)
	}
	// A whitelisted target: the tunnel path surfaces the dial failure to the
	// handset (an intercepted one would still complete its forged handshake —
	// the proxy terminates TLS before touching the origin).
	client, err := netalyzr.New(interceptedDevice(), proxy,
		netalyzr.WithValidationTime(certgen.Epoch),
		netalyzr.WithTargets([]tlsnet.HostPort{{Host: "supl.google.com", Port: 7275}}),
		netalyzr.WithRetryPolicy(resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 1,
		}, 0)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := client.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes[0].Err == nil {
		t.Error("probe through a dead upstream should fail")
	}
	if rep.Probes[0].ErrKind != "refused" {
		t.Errorf("probe ErrKind = %q, want %q", rep.Probes[0].ErrKind, "refused")
	}
	if got := proxy.Stats().UpstreamFailures; got == 0 {
		t.Error("exhausted upstream dials should be counted")
	}
}

func TestDetectorVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		Clean: "clean", Intercepted: "intercepted", Suspicious: "suspicious",
		Unreachable: "unreachable", Verdict(99): "unknown",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestDetectorUnreachable(t *testing.T) {
	u := cauniverse.Default()
	det := &Detector{Reference: u.AOSP("4.4"), At: certgen.Epoch}
	f := det.Inspect(netalyzr.ProbeResult{
		Target: tlsnet.HostPort{Host: "down.example", Port: 443},
		Err:    errTest,
	})
	if f.Verdict != Unreachable {
		t.Errorf("verdict = %v, want unreachable", f.Verdict)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestDetectorSuspiciousVerdict(t *testing.T) {
	// A chain that anchors in the reference store but whose top cert the
	// Notary has never seen anywhere → Suspicious.
	u := cauniverse.Default()
	ndb := notary.New(certgen.Epoch)
	// The notary knows nothing (no imports, no traffic).
	root := u.IssuingRoots()[0]
	leaf, err := u.Generator().Leaf(root.Issued, "odd.example.com",
		certgen.WithKeyName("suspicious-leaf"))
	if err != nil {
		t.Fatal(err)
	}
	det := &Detector{Reference: u.AOSP("4.4"), Notary: ndb, At: certgen.Epoch}
	f := det.Inspect(netalyzr.ProbeResult{
		Target: tlsnet.HostPort{Host: "odd.example.com", Port: 443},
		Chain:  []*x509.Certificate{leaf.Cert, root.Issued.Cert},
	})
	if f.Verdict != Suspicious {
		t.Fatalf("verdict = %v, want suspicious", f.Verdict)
	}
	// Once the notary records the signer, the same chain is clean.
	ndb.ObserveCA(root.Issued.Cert, 443)
	f = det.Inspect(netalyzr.ProbeResult{
		Target: tlsnet.HostPort{Host: "odd.example.com", Port: 443},
		Chain:  []*x509.Certificate{leaf.Cert, root.Issued.Cert},
	})
	if f.Verdict != Clean {
		t.Fatalf("verdict = %v, want clean after the signer is on record", f.Verdict)
	}
}
