package mitm

import (
	"crypto/x509"
	"fmt"
	"sync"
	"time"

	"tangledmass/internal/certid"
	"tangledmass/internal/device"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/notary"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/trusteval"
)

// Verdict classifies one probed chain.
type Verdict int

const (
	// Clean chains validate against the reference store and are known to
	// the Notary.
	Clean Verdict = iota
	// Intercepted chains terminate at a root outside every reference store
	// — the §7 signature (the marketing proxy's on-the-fly root).
	Intercepted
	// Suspicious chains validate but present a signer the Notary has never
	// seen for any service.
	Suspicious
	// Unreachable probes failed before a chain was captured.
	Unreachable
)

func (v Verdict) String() string {
	switch v {
	case Clean:
		return "clean"
	case Intercepted:
		return "intercepted"
	case Suspicious:
		return "suspicious"
	case Unreachable:
		return "unreachable"
	}
	return "unknown"
}

// Finding is the detector's output for one probe.
type Finding struct {
	Host    string
	Port    int
	Verdict Verdict
	// Reason is a one-line human-readable explanation.
	Reason string
	// SignerSubject is the subject of the chain's topmost certificate.
	SignerSubject string
	// Eval is the underlying trust-evaluation verdict (layer outcomes,
	// overrides, attribution cause) the classification was derived from.
	Eval trusteval.Verdict
	// AppAccepted reports whether an app running the detector's policy
	// would have proceeded — true for an intercepted chain only when the
	// policy misvalidates (e.g. an accept-all trust manager).
	AppAccepted bool
}

// Detector evaluates probe results the way §7's analysis did: against the
// official stores (is the signing root a real trust anchor?) and the Notary
// (has this signer ever been seen in honest traffic?).
type Detector struct {
	// Reference is the trusted-store union chains are expected to anchor in.
	Reference *rootstore.Store
	// Notary supplies the has-this-ever-been-seen signal. Optional.
	Notary *notary.Notary
	// At pins the validation clock.
	At time.Time
	// Policy optionally evaluates findings under an app validation policy;
	// the zero value is the strict platform default. The classification
	// (Intercepted/Clean) always reflects the analyst's view; the policy
	// only drives Finding.AppAccepted and the Eval overrides.
	Policy device.ValidationPolicy

	once sync.Once
	eng  *trusteval.Engine
}

// engine lazily builds the detector's trust-evaluation engine so the
// existing literal construction (&Detector{Reference: ..., At: ...}) keeps
// working.
func (d *Detector) engine() *trusteval.Engine {
	d.once.Do(func() { d.eng = trusteval.New(d.At) })
	return d.eng
}

// Inspect classifies one probe result. The chain judgment routes through
// the trust-evaluation engine with the reference union as the effective
// store: an anchored chain is one the engine's chain layer passes.
func (d *Detector) Inspect(p netalyzr.ProbeResult) Finding {
	f := Finding{Host: p.Target.Host, Port: p.Target.Port}
	if p.Err != nil || len(p.Chain) == 0 {
		f.Verdict = Unreachable
		f.Reason = "no chain captured"
		return f
	}
	top := p.Chain[len(p.Chain)-1]
	f.SignerSubject = certid.SubjectString(top)

	f.Eval = d.engine().Evaluate(trusteval.Request{
		Chain:  p.Chain,
		Host:   p.Target.Host,
		Port:   p.Target.Port,
		Store:  d.Reference,
		Policy: d.Policy,
	})
	f.AppAccepted = f.Eval.Accepted
	// The presented top may itself be an intermediate whose issuer is a
	// store root; the chain layer covers that. A chain is
	// interception-shaped when no path into the reference store exists.
	if f.Eval.Chain != trusteval.OutcomePass {
		f.Verdict = Intercepted
		f.Reason = fmt.Sprintf("chain terminates at %q, which is not in %s",
			issuerCN(top), d.Reference.Name())
		return f
	}
	if d.Notary != nil && !d.Notary.HasRecord(top) {
		f.Verdict = Suspicious
		f.Reason = "signer anchors in the store but the Notary has never observed it"
		return f
	}
	f.Verdict = Clean
	f.Reason = "chain anchors in " + d.Reference.Name()
	return f
}

func issuerCN(c *x509.Certificate) string {
	if c.Issuer.CommonName != "" {
		return c.Issuer.CommonName
	}
	return c.Issuer.String()
}

// InspectReport classifies every probe of a session report and splits them
// into Table 6's two columns.
func (d *Detector) InspectReport(r *netalyzr.Report) (intercepted, clean []Finding) {
	for _, p := range r.Probes {
		f := d.Inspect(p)
		switch f.Verdict {
		case Intercepted:
			intercepted = append(intercepted, f)
		case Clean:
			clean = append(clean, f)
		}
	}
	return intercepted, clean
}
