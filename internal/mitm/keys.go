package mitm

// Metric keys the interception proxy emits (see the registry in README.md).
// Package-prefixed compile-time constants, per the obskey lint rule.
const (
	// KeyIntercepted counts connections terminated with a forged chain.
	KeyIntercepted = "mitm.intercept.total"
	// KeyTunneled counts whitelisted connections passed through untouched.
	KeyTunneled = "mitm.tunnel.total"
	// KeyLeavesForged counts leaf certificates minted under the
	// interception intermediate.
	KeyLeavesForged = "mitm.leaf.forged.total"
	// KeyLeafCacheHits counts forged-leaf requests served from the cache.
	KeyLeafCacheHits = "mitm.leaf.cache.hit"
	// KeyUpstreamExhausted counts origin dials that failed even after the
	// retry policy was exhausted.
	KeyUpstreamExhausted = "mitm.upstream.exhausted"
)
