// Package certgen is the X.509 generation substrate for the reproduction.
// It issues real, verifiable certificates — self-signed roots, intermediates,
// and leaves — with deterministic keys and serials so the whole CA universe
// is a pure function of a seed.
//
// All validity periods are anchored at a fixed epoch (the paper's measurement
// window, November 2013) rather than the wall clock, so chain validation
// results never depend on when the code runs.
package certgen

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rsa"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"math/big"
	"net"
	"sync"
	"time"
)

// Epoch is the fixed reference instant for all validity decisions: the start
// of the paper's Netalyzr collection window (November 2013). Certificates are
// valid at Epoch unless explicitly issued as expired.
var Epoch = time.Date(2013, time.November, 1, 0, 0, 0, 0, time.UTC)

// Issued bundles a certificate with its private key so it can act as an
// issuer for further certificates or as a TLS credential.
type Issued struct {
	Cert *x509.Certificate
	Key  crypto.Signer
}

// Generator deterministically issues certificates. The zero value is not
// usable; construct with NewGenerator.
type Generator struct {
	mu     sync.Mutex
	seed   int64
	serial int64
	keys   map[string]crypto.Signer
}

// NewGenerator returns a Generator whose entire output is a pure function of
// seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{seed: seed, keys: make(map[string]crypto.Signer)}
}

type options struct {
	org          []string
	orgUnit      []string
	country      []string
	notBefore    time.Time
	notAfter     time.Time
	rsaBits      int
	keyName      string
	dnsNames     []string
	ipAddresses  []net.IP
	isCA         bool
	maxPath      int
	permittedDNS []string
}

// Option customizes a certificate to be issued.
type Option func(*options)

// WithOrganization sets the subject O attribute.
func WithOrganization(org ...string) Option {
	return func(o *options) { o.org = org }
}

// WithOrganizationalUnit sets the subject OU attribute.
func WithOrganizationalUnit(ou ...string) Option {
	return func(o *options) { o.orgUnit = ou }
}

// WithCountry sets the subject C attribute.
func WithCountry(c ...string) Option {
	return func(o *options) { o.country = c }
}

// WithValidity overrides the validity window. The defaults are
// Epoch-5y .. Epoch+10y.
func WithValidity(notBefore, notAfter time.Time) Option {
	return func(o *options) { o.notBefore, o.notAfter = notBefore, notAfter }
}

// Expired issues the certificate already expired at Epoch, like the
// Autoridad de Certificacion Firmaprofesional root that expired in Oct 2013
// yet still ships in AOSP 4.4 (§2).
func Expired() Option {
	return func(o *options) {
		o.notBefore = Epoch.AddDate(-10, 0, 0)
		o.notAfter = Epoch.AddDate(0, 0, -7)
	}
}

// WithRSA uses an RSA key of the given bit size instead of the default
// ECDSA P-256. Paper-identity tests use this to exercise the RSA-modulus
// identity path. Sizes below 2048 bits are acceptable here because the keys
// secure nothing; they exist to make X.509 mechanics real.
func WithRSA(bits int) Option {
	return func(o *options) { o.rsaBits = bits }
}

// WithKeyName overrides the key-cache name. Certificates sharing a key name
// share a key pair; Reissue relies on this to model a CA re-issuing its root
// with the same subject and key but a new validity period.
func WithKeyName(name string) Option {
	return func(o *options) { o.keyName = name }
}

// WithDNSNames sets leaf SAN dNSName entries.
func WithDNSNames(names ...string) Option {
	return func(o *options) { o.dnsNames = names }
}

// WithIPAddresses sets leaf SAN iPAddress entries, for services reached by
// literal address — hostname verification then matches the IP exactly,
// never via wildcards.
func WithIPAddresses(ips ...net.IP) Option {
	return func(o *options) { o.ipAddresses = ips }
}

// WithNameConstraints restricts a CA to issuing for the given DNS domains
// (critical permitted-subtree name constraints). This is the modern
// mitigation for the paper's vendor/operator additions: a carrier CA
// constrained to its own domains cannot mint certificates for gmail.com.
func WithNameConstraints(permittedDNS ...string) Option {
	return func(o *options) { o.permittedDNS = permittedDNS }
}

func (g *Generator) nextSerial() *big.Int {
	g.serial++
	return big.NewInt(g.serial)
}

// keyFor returns (creating if needed) the deterministic key for name.
func (g *Generator) keyFor(name string, rsaBits int) (crypto.Signer, error) {
	kind := "ecdsa"
	if rsaBits > 0 {
		kind = fmt.Sprintf("rsa%d", rsaBits)
	}
	cacheKey := kind + "/" + name
	if k, ok := g.keys[cacheKey]; ok {
		return k, nil
	}
	r := newDRBG(g.seed, cacheKey)
	var (
		key crypto.Signer
		err error
	)
	if rsaBits > 0 {
		key, err = deterministicRSAKey(r, rsaBits)
	} else {
		key, err = deterministicECDSAKey(r)
	}
	if err != nil {
		return nil, fmt.Errorf("certgen: generating %s key for %q: %w", kind, name, err)
	}
	g.keys[cacheKey] = key
	return key, nil
}

// deterministicECDSAKey derives a P-256 key pair whose private scalar comes
// straight from the deterministic stream. Unlike ecdsa.GenerateKey — which
// deliberately mixes nondeterminism even when handed a custom reader — this
// makes the key, and therefore the certificate's identity (subject + key),
// a pure function of the generator seed across runs. Signature bytes may
// still vary run to run; identity is what the analyses depend on.
func deterministicECDSAKey(r io.Reader) (*ecdsa.PrivateKey, error) {
	curve := elliptic.P256()
	n := curve.Params().N
	byteLen := (n.BitLen() + 7) / 8
	buf := make([]byte, byteLen)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		k := new(big.Int).SetBytes(buf)
		if k.Sign() <= 0 || k.Cmp(n) >= 0 {
			continue
		}
		priv := &ecdsa.PrivateKey{
			PublicKey: ecdsa.PublicKey{Curve: curve},
			D:         k,
		}
		priv.X, priv.Y = curve.ScalarBaseMult(k.Bytes())
		return priv, nil
	}
}

// deterministicPrime finds a prime of exactly the given bit length using
// candidates drawn from the deterministic stream. crypto/rand.Prime cannot
// be used here: since Go 1.22 it deliberately consumes its reader
// nondeterministically.
func deterministicPrime(r io.Reader, bits int) (*big.Int, error) {
	if bits < 16 {
		return nil, fmt.Errorf("certgen: prime size %d too small", bits)
	}
	buf := make([]byte, (bits+7)/8)
	mask := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	mask.Sub(mask, big.NewInt(1))
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		p := new(big.Int).SetBytes(buf)
		p.And(p, mask)
		p.SetBit(p, bits-1, 1) // exact bit length
		p.SetBit(p, bits-2, 1) // product of two such primes has 2*bits bits
		p.SetBit(p, 0, 1)      // odd
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// deterministicRSAKey builds an RSA key whose primes come from the
// deterministic stream, for the same reason as deterministicECDSAKey:
// rsa.GenerateKey injects nondeterminism even with a custom reader, which
// would make the universe's RSA root identities differ across processes.
func deterministicRSAKey(r io.Reader, bits int) (*rsa.PrivateKey, error) {
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for {
		p, err := deterministicPrime(r, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := deterministicPrime(r, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		totient := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
		d := new(big.Int).ModInverse(e, totient)
		if d == nil {
			continue
		}
		key := &rsa.PrivateKey{
			PublicKey: rsa.PublicKey{N: n, E: int(e.Int64())},
			D:         d,
			Primes:    []*big.Int{p, q},
		}
		key.Precompute()
		if err := key.Validate(); err != nil {
			continue
		}
		return key, nil
	}
}

func applyOptions(opts []Option) options {
	o := options{
		notBefore: Epoch.AddDate(-5, 0, 0),
		notAfter:  Epoch.AddDate(10, 0, 0),
	}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

func subjectName(cn string, o options) pkix.Name {
	return pkix.Name{
		CommonName:         cn,
		Organization:       o.org,
		OrganizationalUnit: o.orgUnit,
		Country:            o.country,
	}
}

// issue creates and parses one certificate. parent == nil means self-signed.
func (g *Generator) issue(cn string, parent *Issued, o options) (*Issued, error) {
	keyName := o.keyName
	if keyName == "" {
		keyName = cn
	}
	key, err := g.keyFor(keyName, o.rsaBits)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          g.nextSerial(),
		Subject:               subjectName(cn, o),
		NotBefore:             o.notBefore,
		NotAfter:              o.notAfter,
		BasicConstraintsValid: true,
		IsCA:                  o.isCA,
	}
	if o.isCA {
		tmpl.KeyUsage = x509.KeyUsageCertSign | x509.KeyUsageCRLSign
		if o.maxPath > 0 {
			tmpl.MaxPathLen = o.maxPath
		}
		if len(o.permittedDNS) > 0 {
			tmpl.PermittedDNSDomainsCritical = true
			tmpl.PermittedDNSDomains = o.permittedDNS
		}
	} else {
		tmpl.KeyUsage = x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment
		tmpl.ExtKeyUsage = []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth}
		tmpl.DNSNames = o.dnsNames
		tmpl.IPAddresses = o.ipAddresses
	}
	parentCert := tmpl
	signerKey := key
	if parent != nil {
		parentCert = parent.Cert
		signerKey = parent.Key
	}
	der, err := x509.CreateCertificate(newDRBG(g.seed, "sig/"+cn), tmpl, parentCert, key.Public(), signerKey)
	if err != nil {
		return nil, fmt.Errorf("certgen: creating certificate %q: %w", cn, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("certgen: re-parsing certificate %q: %w", cn, err)
	}
	return &Issued{Cert: cert, Key: key}, nil
}

// SelfSignedCA issues a self-signed root CA certificate with the given
// common name.
func (g *Generator) SelfSignedCA(cn string, opts ...Option) (*Issued, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	o := applyOptions(opts)
	o.isCA = true
	return g.issue(cn, nil, o)
}

// Intermediate issues an intermediate CA certificate signed by parent.
func (g *Generator) Intermediate(parent *Issued, cn string, opts ...Option) (*Issued, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	o := applyOptions(opts)
	o.isCA = true
	return g.issue(cn, parent, o)
}

// Leaf issues an end-entity certificate signed by parent. If no DNS names
// are supplied, cn is used as the sole SAN.
func (g *Generator) Leaf(parent *Issued, cn string, opts ...Option) (*Issued, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	o := applyOptions(opts)
	o.isCA = false
	if len(o.dnsNames) == 0 && len(o.ipAddresses) == 0 {
		o.dnsNames = []string{cn}
	}
	return g.issue(cn, parent, o)
}

// Reissue produces a certificate with the same subject and key as orig but a
// fresh serial and, typically, a different validity period (pass
// WithValidity). The result is byte-distinct from orig yet equivalent under
// the paper's identity — exactly the "only the expiration date changed" case
// described in §4.2.
func (g *Generator) Reissue(orig *Issued, opts ...Option) (*Issued, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	o := applyOptions(opts)
	o.isCA = orig.Cert.IsCA
	o.keyName = orig.Cert.Subject.CommonName
	o.org = orig.Cert.Subject.Organization
	o.orgUnit = orig.Cert.Subject.OrganizationalUnit
	o.country = orig.Cert.Subject.Country
	// Force the cached key type to match the original.
	if _, isRSA := orig.Key.Public().(*rsa.PublicKey); isRSA && o.rsaBits == 0 {
		pub := orig.Key.Public().(*rsa.PublicKey)
		o.rsaBits = pub.N.BitLen()
	}
	return g.issue(orig.Cert.Subject.CommonName, nil, o)
}
