package certgen

//lint:file-ignore errwrap hash.Hash.Write is documented to never return an error

import (
	"crypto/sha256"
	"encoding/binary"
)

// drbg is a deterministic byte stream built from SHA-256 in counter mode.
// It exists so the CA universe can be regenerated bit-for-bit from a seed:
// key generation consumes this stream instead of crypto/rand. The stream is
// NOT suitable for production key generation — it is a simulation substrate,
// which DESIGN.md documents as a dataset substitution.
type drbg struct {
	key     [32]byte
	counter uint64
	buf     []byte
}

func newDRBG(seed int64, label string) *drbg {
	h := sha256.New()
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], uint64(seed))
	h.Write(s[:])
	h.Write([]byte(label))
	d := &drbg{}
	copy(d.key[:], h.Sum(nil))
	return d
}

// Read fills p with deterministic pseudo-random bytes. It never fails.
func (d *drbg) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(d.buf) == 0 {
			var ctr [8]byte
			binary.BigEndian.PutUint64(ctr[:], d.counter)
			d.counter++
			h := sha256.New()
			h.Write(d.key[:])
			h.Write(ctr[:])
			d.buf = h.Sum(nil)
		}
		c := copy(p, d.buf)
		p = p[c:]
		d.buf = d.buf[c:]
	}
	return n, nil
}
