package certgen

import (
	"crypto/ecdsa"
	"crypto/rsa"
	"crypto/x509"
	"testing"
	"time"
)

func TestSelfSignedCA(t *testing.T) {
	g := NewGenerator(1)
	ca, err := g.SelfSignedCA("Test Root CA", WithOrganization("Test Org"), WithCountry("US"))
	if err != nil {
		t.Fatal(err)
	}
	if !ca.Cert.IsCA {
		t.Error("root should be a CA")
	}
	if ca.Cert.Subject.CommonName != "Test Root CA" {
		t.Errorf("CN = %q", ca.Cert.Subject.CommonName)
	}
	if err := ca.Cert.CheckSignatureFrom(ca.Cert); err != nil {
		t.Errorf("self-signature invalid: %v", err)
	}
	if _, ok := ca.Key.Public().(*ecdsa.PublicKey); !ok {
		t.Errorf("default key type = %T, want ECDSA", ca.Key.Public())
	}
}

func TestIntermediateAndLeafChain(t *testing.T) {
	g := NewGenerator(1)
	root, err := g.SelfSignedCA("Chain Root")
	if err != nil {
		t.Fatal(err)
	}
	inter, err := g.Intermediate(root, "Chain Intermediate")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := g.Leaf(inter, "www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if err := inter.Cert.CheckSignatureFrom(root.Cert); err != nil {
		t.Errorf("intermediate signature: %v", err)
	}
	if err := leaf.Cert.CheckSignatureFrom(inter.Cert); err != nil {
		t.Errorf("leaf signature: %v", err)
	}
	if leaf.Cert.IsCA {
		t.Error("leaf should not be a CA")
	}
	if len(leaf.Cert.DNSNames) != 1 || leaf.Cert.DNSNames[0] != "www.example.com" {
		t.Errorf("leaf SANs = %v", leaf.Cert.DNSNames)
	}

	// Full stdlib verification closes the loop.
	roots := x509.NewCertPool()
	roots.AddCert(root.Cert)
	inters := x509.NewCertPool()
	inters.AddCert(inter.Cert)
	_, err = leaf.Cert.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: inters,
		CurrentTime:   Epoch,
		DNSName:       "www.example.com",
	})
	if err != nil {
		t.Errorf("stdlib Verify failed: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := NewGenerator(99).SelfSignedCA("Det Root", WithOrganization("O"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(99).SelfSignedCA("Det Root", WithOrganization("O"))
	if err != nil {
		t.Fatal(err)
	}
	// Identity (subject + key) is a pure function of the seed; signature
	// bytes are allowed to vary because stdlib ECDSA signing is hedged.
	if string(a.Cert.RawSubjectPublicKeyInfo) != string(b.Cert.RawSubjectPublicKeyInfo) {
		t.Error("same seed should produce identical public keys")
	}
	if string(a.Cert.RawSubject) != string(b.Cert.RawSubject) {
		t.Error("same seed should produce identical subjects")
	}
	c, err := NewGenerator(100).SelfSignedCA("Det Root", WithOrganization("O"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Cert.RawSubjectPublicKeyInfo) == string(c.Cert.RawSubjectPublicKeyInfo) {
		t.Error("different seeds should produce different keys")
	}
}

func TestRSADeterminism(t *testing.T) {
	a, err := NewGenerator(7).SelfSignedCA("RSA Det", WithRSA(1024))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(7).SelfSignedCA("RSA Det", WithRSA(1024))
	if err != nil {
		t.Fatal(err)
	}
	// RSA keys AND signatures are deterministic, so certificates are
	// byte-identical across generator instances (and processes).
	if string(a.Cert.Raw) != string(b.Cert.Raw) {
		t.Error("RSA certs with the same seed should be byte-identical")
	}
}

func TestDeterministicPrime(t *testing.T) {
	p, err := deterministicPrime(newDRBG(1, "p"), 256)
	if err != nil {
		t.Fatal(err)
	}
	if p.BitLen() != 256 {
		t.Errorf("prime bit length = %d, want 256", p.BitLen())
	}
	if !p.ProbablyPrime(40) {
		t.Error("not prime")
	}
	q, _ := deterministicPrime(newDRBG(1, "p"), 256)
	if p.Cmp(q) != 0 {
		t.Error("same stream should yield the same prime")
	}
	if _, err := deterministicPrime(newDRBG(1, "p"), 8); err == nil {
		t.Error("tiny prime sizes should error")
	}
}

func TestExpiredOption(t *testing.T) {
	g := NewGenerator(1)
	ca, err := g.SelfSignedCA("Firmaprofesional Analogue", Expired())
	if err != nil {
		t.Fatal(err)
	}
	if !ca.Cert.NotAfter.Before(Epoch) {
		t.Errorf("NotAfter %v should precede Epoch %v", ca.Cert.NotAfter, Epoch)
	}
}

func TestWithRSA(t *testing.T) {
	g := NewGenerator(1)
	ca, err := g.SelfSignedCA("RSA Root", WithRSA(1024))
	if err != nil {
		t.Fatal(err)
	}
	pub, ok := ca.Key.Public().(*rsa.PublicKey)
	if !ok {
		t.Fatalf("key type = %T, want RSA", ca.Key.Public())
	}
	if pub.N.BitLen() != 1024 {
		t.Errorf("modulus bits = %d, want 1024", pub.N.BitLen())
	}
	if err := ca.Cert.CheckSignatureFrom(ca.Cert); err != nil {
		t.Errorf("RSA self-signature invalid: %v", err)
	}
}

func TestReissueSameKeyNewValidity(t *testing.T) {
	g := NewGenerator(1)
	orig, err := g.SelfSignedCA("Reissued Root", WithOrganization("O"), WithCountry("DE"))
	if err != nil {
		t.Fatal(err)
	}
	re, err := g.Reissue(orig, WithValidity(Epoch.AddDate(0, 0, 1), Epoch.AddDate(20, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if string(orig.Cert.Raw) == string(re.Cert.Raw) {
		t.Error("reissued cert should be byte-distinct")
	}
	if orig.Cert.Subject.String() != re.Cert.Subject.String() {
		t.Errorf("subjects differ: %q vs %q", orig.Cert.Subject, re.Cert.Subject)
	}
	if string(orig.Cert.RawSubjectPublicKeyInfo) != string(re.Cert.RawSubjectPublicKeyInfo) {
		t.Error("reissued cert should reuse the same key")
	}
	if orig.Cert.NotAfter.Equal(re.Cert.NotAfter) {
		t.Error("reissue should have carried the new validity")
	}
}

func TestReissueRSAKeepsKey(t *testing.T) {
	g := NewGenerator(5)
	orig, err := g.SelfSignedCA("RSA Reissue", WithRSA(1024))
	if err != nil {
		t.Fatal(err)
	}
	re, err := g.Reissue(orig, WithValidity(Epoch, Epoch.AddDate(30, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if string(orig.Cert.RawSubjectPublicKeyInfo) != string(re.Cert.RawSubjectPublicKeyInfo) {
		t.Error("RSA reissue should reuse the same key")
	}
}

func TestSerialsDistinct(t *testing.T) {
	g := NewGenerator(1)
	a, _ := g.SelfSignedCA("A")
	b, _ := g.SelfSignedCA("B")
	if a.Cert.SerialNumber.Cmp(b.Cert.SerialNumber) == 0 {
		t.Error("serials should be distinct")
	}
}

func TestDefaultValidityCoversEpoch(t *testing.T) {
	g := NewGenerator(1)
	ca, err := g.SelfSignedCA("Valid Root")
	if err != nil {
		t.Fatal(err)
	}
	if Epoch.Before(ca.Cert.NotBefore) || Epoch.After(ca.Cert.NotAfter) {
		t.Errorf("Epoch outside default validity [%v, %v]", ca.Cert.NotBefore, ca.Cert.NotAfter)
	}
}

func TestDRBGDeterministicAndDistinct(t *testing.T) {
	read := func(seed int64, label string) []byte {
		b := make([]byte, 64)
		newDRBG(seed, label).Read(b)
		return b
	}
	if string(read(1, "x")) != string(read(1, "x")) {
		t.Error("same seed+label should repeat")
	}
	if string(read(1, "x")) == string(read(1, "y")) {
		t.Error("different labels should differ")
	}
	if string(read(1, "x")) == string(read(2, "x")) {
		t.Error("different seeds should differ")
	}
}

func TestDRBGShortReads(t *testing.T) {
	d := newDRBG(3, "short")
	var got []byte
	for i := 0; i < 10; i++ {
		b := make([]byte, 7)
		if n, err := d.Read(b); n != 7 || err != nil {
			t.Fatalf("Read = %d, %v", n, err)
		}
		got = append(got, b...)
	}
	all := make([]byte, 70)
	newDRBG(3, "short").Read(all)
	if string(got) != string(all) {
		t.Error("chunked reads should equal one large read")
	}
}

func TestLeafValidityOption(t *testing.T) {
	g := NewGenerator(1)
	root, _ := g.SelfSignedCA("VR")
	nb := Epoch.AddDate(0, -1, 0)
	na := Epoch.AddDate(0, 1, 0)
	leaf, err := g.Leaf(root, "v.example.com", WithValidity(nb, na))
	if err != nil {
		t.Fatal(err)
	}
	if !leaf.Cert.NotBefore.Equal(nb) || !leaf.Cert.NotAfter.Equal(na) {
		t.Errorf("validity = [%v, %v], want [%v, %v]", leaf.Cert.NotBefore, leaf.Cert.NotAfter, nb, na)
	}
}

func TestEpochIsFixed(t *testing.T) {
	want := time.Date(2013, time.November, 1, 0, 0, 0, 0, time.UTC)
	if !Epoch.Equal(want) {
		t.Errorf("Epoch = %v, want %v", Epoch, want)
	}
}
