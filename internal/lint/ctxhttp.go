package lint

import (
	"go/ast"
)

// CtxHTTP keeps the long-running network services cancellable. The
// collector, FOTA endpoint, notary service, TLS origin, and interception
// proxy all hold goroutines per connection; a dial or request without a
// timeout or context in those packages is a goroutine leak waiting for one
// unresponsive peer. Use net.DialTimeout, a net.Dialer with Timeout or
// DialContext, or an http.Client with Timeout instead.
var CtxHTTP = &Analyzer{
	Name: "ctxhttp",
	Doc:  "flag http.Get/net.Dial without timeout or context in long-running server packages",
	Run:  runCtxHTTP,
}

// ctxHTTPPackages are the long-running server packages, by base name.
var ctxHTTPPackages = map[string]bool{
	"collect":   true,
	"fota":      true,
	"notarynet": true,
	"tlsnet":    true,
	"mitm":      true,
}

// ctxHTTPCallees block without a deadline: the package-level http helpers
// use the zero-timeout DefaultClient, and net.Dial has no bound at all.
var ctxHTTPCallees = map[string]string{
	"net/http.Get":      "use an http.Client with a Timeout or http.NewRequestWithContext",
	"net/http.Post":     "use an http.Client with a Timeout or http.NewRequestWithContext",
	"net/http.PostForm": "use an http.Client with a Timeout or http.NewRequestWithContext",
	"net/http.Head":     "use an http.Client with a Timeout or http.NewRequestWithContext",
	"net.Dial":          "use net.DialTimeout or a net.Dialer with Timeout/DialContext",
}

func runCtxHTTP(p *Pass) {
	if !ctxHTTPPackages[p.Pkg.Base()] {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := p.CalleeName(call)
			if fix, bad := ctxHTTPCallees[name]; bad {
				p.Reportf(call.Pos(), "%s has no timeout or context in a long-running server package; %s", name, fix)
			}
			return true
		})
	}
}
