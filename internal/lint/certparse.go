package lint

import (
	"go/ast"
)

// CertParse enforces the content-addressed interning architecture: every
// certificate entering the process must come out of internal/corpus, which
// parses each distinct DER encoding exactly once and precomputes its
// identity and fingerprints. A direct x509.ParseCertificate call elsewhere
// creates an un-interned instance that silently re-pays parsing and
// fingerprinting on every touch — the scattered-copy pattern the corpus
// exists to remove. Only internal/corpus itself and internal/certgen (which
// must parse the fresh DER it just signed) may call the parser.
var CertParse = &Analyzer{
	Name: "certparse",
	Doc:  "flag direct x509 certificate parsing outside the corpus intern layer",
	Run:  runCertParse,
}

// certParseAllowed maps package base names that may parse certificates
// directly.
var certParseAllowed = map[string]bool{
	"corpus":  true, // the intern layer itself
	"certgen": true, // parses the DER it just issued
}

func runCertParse(p *Pass) {
	if certParseAllowed[p.Pkg.Base()] {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch p.CalleeName(call) {
			case "crypto/x509.ParseCertificate", "crypto/x509.ParseCertificates":
				p.Reportf(call.Pos(),
					"direct x509 certificate parsing outside internal/corpus; intern through corpus.Intern or corpus.ParsePEM so the certificate is parsed once and carries precomputed identity")
			}
			return true
		})
	}
}
