// Package errs triggers errwrap: dropped error returns and fmt.Errorf
// calls that stringify an error without %w.
package errs

import (
	"fmt"
	"os"
	"strings"
)

func work() error { return nil }

// Drop discards work's error.
func Drop() {
	work()
}

// Blank acknowledges the discard explicitly: allowed.
func Blank() {
	_ = work()
}

// Cleanup defers the close: deferred calls are exempt.
func Cleanup() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// Wrap severs the error chain with %v.
func Wrap(err error) error {
	return fmt.Errorf("doing thing: %v", err)
}

// Good wraps with %w: allowed.
func Good(err error) error {
	return fmt.Errorf("doing thing: %w", err)
}

// Percent does not treat %%w as a wrap verb.
func Percent(err error) error {
	return fmt.Errorf("literal %%w: %v", err)
}

// Diagnostics and in-memory writers are exempt.
func Diagnostics() string {
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "oops\n")
	var b strings.Builder
	b.WriteString("x")
	return b.String()
}
