// Package chainfix triggers certcompare: certificate identity decided by
// pointer or raw DER equality outside the identity package.
package chainfix

import (
	"bytes"
	"crypto/x509"
)

// PointerEqual compares by pointer.
func PointerEqual(a, b *x509.Certificate) bool {
	return a == b
}

// PointerNotEqual compares by pointer, negated.
func PointerNotEqual(a, b *x509.Certificate) bool {
	return a != b
}

// RawEqual compares DER bytes.
func RawEqual(a, b *x509.Certificate) bool {
	return bytes.Equal(a.Raw, b.Raw)
}

// NilCheck is presence, not identity: allowed.
func NilCheck(a *x509.Certificate) bool {
	return a == nil
}

// SubjectBytes compares subject DER, not the certificate: allowed.
func SubjectBytes(a *x509.Certificate, der []byte) bool {
	return bytes.Equal(a.RawSubject, der)
}
