// Package fanout triggers parallelmerge: hand-rolled goroutine pools
// writing shared maps and slices without locks.
package fanout

import "sync"

// CollectSquares is the classic indexed-results pool: every worker writes
// into the shared results slice.
func CollectSquares(n int) []int {
	results := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = i * i
		}(i)
	}
	wg.Wait()
	return results
}

// TallyLengths merges worker results straight into a shared map — a data
// race, not just nondeterminism.
func TallyLengths(words []string) map[int]int {
	counts := map[int]int{}
	var wg sync.WaitGroup
	for _, w := range words {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			counts[len(w)]++
		}(w)
	}
	wg.Wait()
	return counts
}

// GatherEvens appends to a shared slice from every worker.
func GatherEvens(nums []int) []int {
	var evens []int
	var wg sync.WaitGroup
	for _, n := range nums {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			if n%2 == 0 {
				evens = append(evens, n)
			}
		}(n)
	}
	wg.Wait()
	return evens
}

// LockedTally is the mutex-guarded merge: parallelmerge leaves lock
// discipline to locksafe, so this stays clean here.
func LockedTally(words []string) map[int]int {
	counts := map[int]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, w := range words {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			mu.Lock()
			counts[len(w)]++
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return counts
}

// LocalScratch writes only goroutine-local aggregates: clean.
func LocalScratch(n int) {
	var wg sync.WaitGroup
	sink := make(chan []int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scratch := make([]int, 4)
			scratch[0] = i
			sink <- scratch
		}(i)
	}
	wg.Wait()
	close(sink)
}
