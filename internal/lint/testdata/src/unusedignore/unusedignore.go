// Package unusedignore exercises the stale-suppression check: directives
// that suppress nothing are findings, directives that earn their keep are
// not.
package unusedignore

//lint:file-ignore detrand legacy blanket suppression; nothing here draws randomness anymore

import (
	"fmt"
	"os"
)

// Tidy once exited directly; the suppression outlived the fix.
func Tidy() error {
	//lint:ignore noexit stale: the os.Exit below was replaced by an error return
	return fmt.Errorf("tidy: unsupported")
}

// Leave still exits, so its directive suppresses a real finding and stays
// clean.
func Leave() {
	os.Exit(6) //lint:ignore noexit demo of a load-bearing suppression
}
