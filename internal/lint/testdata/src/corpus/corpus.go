// Package corpus is the fixture stand-in for the real interning corpus:
// dense Ref handles issued per corpus. refscope exempts this package — it
// is the issuing table every other package is held against.
package corpus

// Ref is a dense handle into one corpus's entry table. It is only
// meaningful against the corpus that issued it.
type Ref uint32

// Corpus interns DER bytes and hands out Refs.
type Corpus struct {
	ders  [][]byte
	index map[string]Ref
}

// New returns an empty corpus.
func New() *Corpus {
	return &Corpus{index: make(map[string]Ref)}
}

// Intern stores der once and returns its Ref.
func (c *Corpus) Intern(der []byte) Ref {
	if r, ok := c.index[string(der)]; ok {
		return r
	}
	r := Ref(len(c.ders))
	c.ders = append(c.ders, der)
	c.index[string(der)] = r
	return r
}

// InternChain interns every element of a chain.
func (c *Corpus) InternChain(ders [][]byte) []Ref {
	refs := make([]Ref, len(ders))
	for i, der := range ders {
		refs[i] = c.Intern(der)
	}
	return refs
}

// DER returns the interned bytes for r.
func (c *Corpus) DER(r Ref) []byte {
	return c.ders[r]
}

// Identity renders a stable identity string for r.
func (c *Corpus) Identity(r Ref) string {
	return string(c.ders[r])
}
