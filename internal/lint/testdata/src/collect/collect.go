// Package collect triggers ctxhttp: unbounded dials and default-client
// requests in a long-running server package.
package collect

import (
	"net"
	"net/http"
	"time"
)

// Fetch uses the zero-timeout default client.
func Fetch(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Dial has no bound at all.
func Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// DialBounded is allowed.
func DialBounded(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}
