// Package trusteval exercises the verdict emitter's artifact-sink and
// Ref-provenance hazards: attribution counts must not be encoded in
// map-iteration order, and a serialized verdict must not carry
// process-local interning Refs.
package trusteval

import (
	"encoding/json"
	"sort"

	"sandbox/corpus"
)

// SavedVerdict serializes a Ref: the winning root must be persisted as a
// fingerprint, not an interning handle.
type SavedVerdict struct {
	Cause string     `json:"cause"`
	Root  corpus.Ref `json:"root"`
}

// verdictMemo holds a Ref without serializing it: fine.
type verdictMemo struct {
	cause string
	root  corpus.Ref
}

// DumpCauses ranges over the attribution-count map straight into the
// sink — the emitted cause order would change run to run.
func DumpCauses(counts map[string]int) ([]byte, error) {
	var causes []string
	for cause := range counts {
		causes = append(causes, cause)
	}
	return json.Marshal(causes)
}

// DumpCausesSorted is the sanctioned collect-then-sort idiom: a fixed
// cause order keeps the artifact byte-stable.
func DumpCausesSorted(counts map[string]int) ([]byte, error) {
	var causes []string
	for cause := range counts {
		causes = append(causes, cause)
	}
	sort.Strings(causes)
	return json.Marshal(causes)
}
