// Package refhelp holds the cross-package helpers the refscope fixtures
// launder Refs through: the facts engine must see that Pick returns a Ref
// owned by its corpus parameter and that Dump consumes a Ref against its
// corpus parameter, or the violations in package refscope are invisible.
package refhelp

import "sandbox/corpus"

// Pick interns der and returns the Ref — owned by c.
func Pick(c *corpus.Corpus, der []byte) corpus.Ref {
	return c.Intern(der)
}

// Dump resolves r against c.
func Dump(c *corpus.Corpus, r corpus.Ref) []byte {
	return c.DER(r)
}

// Label composes through another helper: still c's Ref.
func Label(c *corpus.Corpus, r corpus.Ref) string {
	return string(Dump(c, r))
}
