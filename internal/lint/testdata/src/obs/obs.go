// Package obs mirrors the real observability registry: the instrument
// constructors whose name arguments obskey polices. The package itself is
// exempt — it is the registry mechanism, so its internals may handle names
// dynamically.
package obs

// Observer is the instrument registry.
type Observer struct{}

// Counter returns the named counter.
func (o *Observer) Counter(name string) *Counter { return &Counter{} }

// Gauge returns the named gauge.
func (o *Observer) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram returns the named histogram.
func (o *Observer) Histogram(name string, bounds []float64) *Histogram { return &Histogram{} }

// StartSpan opens a span keyed by (session, stage).
func (o *Observer) StartSpan(session, stage string) *Span { return &Span{} }

// Prime touches instruments by dynamic name inside the exempt package:
// no obskey finding.
func (o *Observer) Prime(names []string) {
	for _, n := range names {
		o.Counter(n)
	}
}

// Counter is a monotonic count.
type Counter struct{}

// Inc bumps the counter.
func (c *Counter) Inc() {}

// Gauge is a point-in-time level.
type Gauge struct{}

// Set stores the level.
func (g *Gauge) Set(v int64) {}

// Histogram is a bounded-bucket distribution.
type Histogram struct{}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {}

// Span is an open (session, stage) interval.
type Span struct{}

// End closes the span.
func (s *Span) End() {}
