// Package maputil holds the cross-package helpers the detsink and
// mergeorder fixtures route their violations through: the taint (unsorted
// map iteration) and the shared-write (parameter map mutation) live here,
// two packages away from the call sites that get flagged.
package maputil

import "sort"

// Keys collects map keys in iteration order — nondeterministic, and the
// taint fact says so.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the clean twin: collect, then sort.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Bump mutates its map parameter — the shared-write fact mergeorder
// propagates to call sites.
func Bump(m map[string]int, k string) {
	m[k]++
}
