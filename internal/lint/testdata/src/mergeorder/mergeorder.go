// Package mergeorder exercises the interprocedural parallelmerge
// extension: internal/parallel worker callbacks that mutate shared
// aggregates through helper functions — a package-level map, a method on a
// captured struct, and a map parameter fed through a cross-package helper.
package mergeorder

import (
	"context"

	"sandbox/maputil"
	"sandbox/parallel"
)

// totals is the package-level aggregate the helper below mutates.
var totals = map[string]int{}

// bump hides the shared write behind a call — invisible to the literal-only
// goroutine check.
func bump(k string) {
	totals[k]++
}

// TallyGlobal fans out and lets every shard write the package-level map
// through bump: racy, and merged in scheduling order.
func TallyGlobal(ctx context.Context, names []string) error {
	return parallel.ForEach(ctx, len(names), func(ctx context.Context, i int) error {
		bump(names[i])
		return nil
	})
}

// Hist accumulates into its receiver's map.
type Hist struct {
	counts map[int]int
}

// observe writes the receiver's shared map.
func (h *Hist) observe(ctx context.Context, i int) error {
	h.counts[i%8]++
	return nil
}

// TallyMethod passes the method value straight to the engine: every shard
// shares h's map.
func TallyMethod(ctx context.Context, h *Hist, n int) error {
	return parallel.ForEach(ctx, n, h.observe)
}

// TallyShared captures one map and lets every shard bump it through the
// cross-package helper: the write is two calls away from the literal.
func TallyShared(ctx context.Context, names []string) (map[string]int, error) {
	counts := map[string]int{}
	err := parallel.ForEach(ctx, len(names), func(ctx context.Context, i int) error {
		maputil.Bump(counts, names[i])
		return nil
	})
	return counts, err
}

// TallyFolded is the sanctioned shape: shard-private accumulators mutated
// through the same helper, combined in Accumulate's sequential merge.
func TallyFolded(ctx context.Context, names []string) (map[string]int, error) {
	return parallel.Accumulate(ctx, len(names),
		func() map[string]int { return map[string]int{} },
		func(acc map[string]int, start, end int) map[string]int {
			for i := start; i < end; i++ {
				maputil.Bump(acc, names[i])
			}
			return acc
		},
		func(into, from map[string]int) map[string]int {
			for k, v := range from {
				into[k] += v
			}
			return into
		})
}

// TallyLocal mutates a map declared inside the callback: shard-private,
// clean.
func TallyLocal(ctx context.Context, names []string) error {
	return parallel.ForEach(ctx, len(names), func(ctx context.Context, i int) error {
		scratch := map[string]int{}
		maputil.Bump(scratch, names[i])
		return nil
	})
}

// TallySanctioned keeps one deliberately shared write under a reasoned
// suppression: the aggregate is append-only commutative counts.
func TallySanctioned(ctx context.Context, names []string) error {
	return parallel.ForEach(ctx, len(names), func(ctx context.Context, i int) error {
		//lint:ignore mergeorder commutative counter increments; diffed order-insensitively in tests
		bump(names[i])
		return nil
	})
}
