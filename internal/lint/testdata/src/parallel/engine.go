// engine.go mirrors the real internal/parallel fan-out primitives so the
// mergeorder fixtures can call them with realistic signatures. The bodies
// are serial reference implementations — the lint rules care about the
// call shapes, not the scheduling.
package parallel

import "context"

// Option configures one fan-out call; a named func type, so the rules can
// tell configuration arguments from worker callbacks.
type Option func(*config)

type config struct {
	workers int
}

// WithWorkers bounds the pool.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// ForEach runs fn for every index in [0, n).
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error, opts ...Option) error {
	cfg := config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	for i := 0; i < n; i++ {
		if err := fn(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

// Map collects fn's results into a slice indexed by i.
func Map[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error), opts ...Option) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		out[i] = v
		return err
	}, opts...)
	return out, err
}

// Accumulate folds [0, n) shard by shard and merges in shard order.
func Accumulate[A any](ctx context.Context, n int, newA func() A, fold func(acc A, start, end int) A, merge func(into, from A) A, opts ...Option) (A, error) {
	acc := newA()
	if n <= 0 {
		return acc, ctx.Err()
	}
	acc = fold(acc, 0, n)
	return merge(newA(), acc), nil
}
