// Package parallel is the negative fixture for parallelmerge: the real
// internal/parallel package owns exactly these shard-indexed writes, so a
// package with this base name is exempt from the rule.
package parallel

import "sync"

// ShardedRun mirrors the engine's Accumulate shape: each goroutine owns
// one index of the shared accumulator slice. Exempt in this package.
func ShardedRun(shards int) []int {
	accs := make([]int, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			accs[s] = s
		}(s)
	}
	wg.Wait()
	return accs
}
