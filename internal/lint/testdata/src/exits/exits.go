// Package exits triggers noexit: process termination from library code.
package exits

import (
	"log"
	"os"
)

// Die terminates the process from a library.
func Die(code int) {
	if code > 0 {
		os.Exit(code)
	}
	log.Fatal("boom")
}
