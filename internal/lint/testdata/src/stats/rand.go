// rand.go is the sanctioned seeded-source entry point: its math/rand use
// must not be flagged.
package stats

import "math/rand"

// Source wraps the seeded source everything else must draw from.
type Source struct {
	*rand.Rand
}
