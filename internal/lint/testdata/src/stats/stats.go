// stats.go triggers detrand outside the sanctioned file: crypto/rand and
// the wall clock both desynchronize the calibrated datasets.
package stats

import (
	crand "crypto/rand"
	"time"
)

// Entropy reads the system entropy pool.
func Entropy() ([]byte, error) {
	b := make([]byte, 8)
	_, err := crand.Read(b)
	return b, err
}

// Now reads the wall clock.
func Now() time.Time {
	return time.Now()
}
