// Package locks triggers locksafe: lock-copying value receivers and
// unlocked access to mutex-guarded exported fields.
package locks

import "sync"

// Counter guards its exported fields with mu.
type Counter struct {
	mu    sync.Mutex
	Hits  int
	Total int
}

// Incr takes the lock: allowed.
func (c *Counter) Incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Hits++
	c.Total++
}

// Peek reads Hits without the lock.
func (c *Counter) Peek() int {
	return c.Hits
}

// Snapshot copies the lock via its value receiver.
func (c Counter) Snapshot() int {
	return c.Total
}

// resetLocked documents a held-lock precondition: exempt by convention.
func (c *Counter) resetLocked() {
	c.Hits = 0
	c.Total = 0
}

// Meter shows the read path: RLock counts as holding the lock.
type Meter struct {
	mu  sync.RWMutex
	Val int
}

// Get takes the read lock: allowed.
func (m *Meter) Get() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.Val
}

// Gauge has a lock but no exported siblings; copying it is still wrong.
type Gauge struct {
	mu sync.Mutex
	n  int
}

// Read copies the lock via its value receiver.
func (g Gauge) Read() int {
	return g.n
}
