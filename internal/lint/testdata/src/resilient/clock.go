// clock.go is the sanctioned nondeterminism boundary: the one file in the
// package allowed to read the wall clock.
package resilient

import "time"

// Wall reads the real clock for the production Clock value.
func Wall() time.Time {
	return time.Now()
}
