// Package resilient mirrors the real backoff helper package: sleepretry
// exempts it wholesale — its loops ARE the sanctioned implementation —
// but detrand still polices its wall-clock reads outside clock.go.
package resilient

import "time"

// Wait is a backoff loop inside the exempt package: no sleepretry finding.
func Wait(attempts int) {
	for i := 0; i < attempts; i++ {
		time.Sleep(time.Duration(i+1) * time.Millisecond)
	}
}

// Deadline reads the wall clock outside the sanctioned clock.go: flagged
// by detrand.
func Deadline() time.Time {
	return time.Now().Add(time.Second)
}
