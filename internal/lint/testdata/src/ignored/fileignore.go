// fileignore.go demos //lint:file-ignore: every noexit finding in this
// file is suppressed.
package ignored

//lint:file-ignore noexit this file demos file-wide suppression

import "os"

// Leave would be a noexit finding without the file-wide directive.
func Leave() {
	os.Exit(5)
}
