// Package ignored exercises the suppression directives: well-formed ones
// silence findings, malformed ones are findings themselves.
package ignored

import (
	"log"
	"os"
)

// Quit is suppressed by a trailing directive.
func Quit() {
	os.Exit(1) //lint:ignore noexit demo of a trailing suppression
}

// Abort is suppressed by the preceding-line form.
func Abort() {
	//lint:ignore noexit demo of the preceding-line form
	log.Fatal("abort")
}

// MissingReason's directive is malformed (no reason), so the directive is
// reported and the exit stays flagged.
func MissingReason() {
	os.Exit(2) //lint:ignore noexit
}

// UnknownRule's directive names an unregistered rule: same treatment.
func UnknownRule() {
	os.Exit(3) //lint:ignore nosuchrule because reasons
}

// UnknownVerb uses a directive form that does not exist.
func UnknownVerb() {
	os.Exit(4) //lint:disable noexit just no
}
