// Package probe is a tenant of the observability namespace: obskey demands
// every instrument name be a compile-time constant carrying "probe." as its
// prefix.
package probe

import "sandbox/obs"

// The sanctioned shape: package-prefixed named constants.
const (
	// KeyDials counts transport dials.
	KeyDials = "probe.dial.total"
	// KeySessionSpan times one measurement session.
	KeySessionSpan = "probe.session"
)

// Record uses constant, prefixed names throughout: clean.
func Record(o *obs.Observer, session string) {
	o.Counter(KeyDials).Inc()
	o.StartSpan(session, KeySessionSpan).End()
	o.Histogram("probe.latency.ms", nil).Observe(1)
}

// Dynamic builds a counter name at runtime: flagged.
func Dynamic(o *obs.Observer, target string) {
	o.Counter("probe.dial." + target).Inc()
}

// Unprefixed uses constants outside the package namespace: both flagged.
func Unprefixed(o *obs.Observer, session string) {
	o.Gauge("dial.active").Set(1)
	o.StartSpan(session, "session").End()
}
