// Package dataset exercises the artifact-sink and Ref-provenance hazards
// of a columnar dataset writer: the section directory must not be emitted
// in map-iteration order, and process-local interning Refs must not land
// in the on-disk format.
package dataset

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"sort"

	"sandbox/corpus"
)

// Manifest is the serialized shape of a dataset directory listing.
type Manifest struct {
	Sections []string `json:"sections"`
}

// DumpDirectory ranges over the section map straight into the sink — the
// written manifest would change byte order from run to run.
func DumpDirectory(sections map[string]int64) ([]byte, error) {
	var names []string
	for name := range sections {
		names = append(names, name)
	}
	return json.Marshal(Manifest{Sections: names})
}

// DumpDirectorySorted is the sanctioned collect-then-sort idiom: same map
// range, deterministic bytes.
func DumpDirectorySorted(sections map[string]int64) ([]byte, error) {
	var names []string
	for name := range sections {
		names = append(names, name)
	}
	sort.Strings(names)
	return json.Marshal(Manifest{Sections: names})
}

// SavedColumn serializes a Ref: the handle is process-local interning
// state — a loader must resolve a fingerprint or table index instead.
type SavedColumn struct {
	Name string     `json:"name"`
	Root corpus.Ref `json:"root"`
}

// WriteColumn gob-encodes a deterministic payload: the encode itself is
// clean, the Ref field above is the finding.
func WriteColumn(col SavedColumn) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(col)
	return buf.Bytes(), err
}

// derTable keys by Ref next to its single issuing corpus — the sanctioned
// intern-side lookup shape.
type derTable struct {
	c   *corpus.Corpus
	idx map[corpus.Ref]int
}

// Index builds the Ref→table-index mapping a writer uses in memory.
func (t *derTable) Index(ders [][]byte) {
	t.idx = make(map[corpus.Ref]int)
	for i, der := range ders {
		t.idx[t.c.Intern(der)] = i
	}
}
