// Package parsefix triggers certparse: certificates parsed directly with
// crypto/x509 instead of interned through the corpus layer.
package parsefix

import "crypto/x509"

// ParseOne parses a certificate directly.
func ParseOne(der []byte) (*x509.Certificate, error) {
	return x509.ParseCertificate(der)
}

// ParseMany parses a bundle directly.
func ParseMany(der []byte) ([]*x509.Certificate, error) {
	return x509.ParseCertificates(der)
}

// ParseCRL parses a revocation list — not a certificate: allowed.
func ParseCRL(der []byte) (*x509.RevocationList, error) {
	return x509.ParseRevocationList(der)
}
