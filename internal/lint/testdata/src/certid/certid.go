// Package certid mirrors the real identity package: it is the one place
// allowed to look at pointer and raw-DER equality, so certcompare must stay
// quiet here.
package certid

import (
	"bytes"
	"crypto/x509"
)

// SameCert may compare raw bytes: this package defines identity.
func SameCert(a, b *x509.Certificate) bool {
	return a == b || bytes.Equal(a.Raw, b.Raw)
}
