// Package refscope exercises the corpus-Ref provenance rule: Refs crossing
// corpus boundaries directly, through cross-package helpers, serialized Ref
// fields, and Ref-keyed maps in multi-corpus structs.
package refscope

import (
	"sandbox/corpus"
	"sandbox/refhelp"
)

// CrossDirect produces a Ref from one corpus and resolves it against
// another in the same function.
func CrossDirect(a, b *corpus.Corpus, der []byte) []byte {
	r := a.Intern(der)
	return b.DER(r)
}

// CrossViaHelpers launders the Ref through package refhelp in both
// directions — invisible to any single-package check, caught only through
// the producer/consumer facts.
func CrossViaHelpers(a, b *corpus.Corpus, der []byte) []byte {
	r := refhelp.Pick(a, der)
	return refhelp.Dump(b, r)
}

// SameCorpus is the negative: produce and consume against one corpus,
// directly and through the helpers.
func SameCorpus(a *corpus.Corpus, der []byte) string {
	r := a.Intern(der)
	_ = a.DER(r)
	h := refhelp.Pick(a, der)
	return refhelp.Label(a, h)
}

// SavedEntry serializes a Ref: the handle is process-local interning
// state, meaningless to any other process.
type SavedEntry struct {
	Name string     `json:"name"`
	Root corpus.Ref `json:"root"`
}

// memoEntry holds a Ref without serializing it: fine.
type memoEntry struct {
	name string
	root corpus.Ref
}

// TwoStores holds two corpora and a map keyed by bare Ref — the key cannot
// name which corpus issued it.
type TwoStores struct {
	AOSP   *corpus.Corpus
	Vendor *corpus.Corpus
	seen   map[corpus.Ref]bool
}

// OneStore keys by Ref next to a single corpus: unambiguous, clean.
type OneStore struct {
	Store *corpus.Corpus
	seen  map[corpus.Ref]bool
}

// CrossSanctioned shows the documented escape hatch: a reasoned inline
// suppression for a mirror corpus rebuilt with identical interning order.
func CrossSanctioned(a, b *corpus.Corpus, der []byte) []byte {
	r := a.Intern(der)
	//lint:ignore refscope mirror corpus is rebuilt with identical interning order
	return b.DER(r)
}

// use keeps the unexported types referenced.
func use(m memoEntry, s TwoStores, o OneStore) (string, int, int) {
	return m.name, len(s.seen), len(o.seen)
}
