// Command democmd exercises noexit's sanctioned path: exits are allowed in
// func main itself but nowhere else, including goroutines started by main.
package main

import (
	"errors"
	"log"
	"os"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	go func() {
		os.Exit(3)
	}()
}

func run() error {
	if os.Getenv("DEMO_DIE") != "" {
		log.Fatalln("nope")
	}
	return errors.New("always fails")
}
