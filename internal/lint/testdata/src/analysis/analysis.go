// Package analysis exercises detsink: it has the base name of an
// artifact-producing package, so its JSON/gob encodes are sinks, and the
// fixtures route nondeterminism into them directly, via a local helper,
// and via a cross-package helper.
package analysis

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"sort"
	"time"

	"sandbox/maputil"
)

// DumpCounts ranges over the map straight into the encoder's input — the
// direct, single-function violation.
func DumpCounts(counts map[string]int) ([]byte, error) {
	var rows []string
	for k := range counts {
		rows = append(rows, k)
	}
	return json.Marshal(rows)
}

// DumpViaHelper is the violation the syntax-level suite missed: the map
// iteration happens two packages away in maputil.Keys, and only the taint
// fact connects it to the Marshal here.
func DumpViaHelper(counts map[string]int) ([]byte, error) {
	return json.Marshal(maputil.Keys(counts))
}

// stamp hides the wall clock behind a local helper.
func stamp() int64 {
	return time.Now().Unix()
}

// DumpStamped reaches time.Now through stamp and gob-encodes the result.
func DumpStamped(counts int) ([]byte, error) {
	var buf bytes.Buffer
	payload := struct {
		N    int
		When int64
	}{counts, stamp()}
	err := gob.NewEncoder(&buf).Encode(payload)
	return buf.Bytes(), err
}

// DumpSorted is the sanctioned collect-then-sort idiom: same map range,
// but the sort in this function makes the output order a pure function of
// the input.
func DumpSorted(counts map[string]int) ([]byte, error) {
	var rows []string
	for k := range counts {
		rows = append(rows, k)
	}
	sort.Strings(rows)
	return json.Marshal(rows)
}

// DumpViaSortedHelper consumes the clean twin helper: no taint to carry.
func DumpViaSortedHelper(counts map[string]int) ([]byte, error) {
	return json.Marshal(maputil.SortedKeys(counts))
}

// Tally only accumulates commutatively over the map — order-insensitive,
// so encoding the total is clean.
func Tally(counts map[string]int) ([]byte, error) {
	total := 0
	for _, v := range counts {
		total += v
	}
	return json.Marshal(total)
}

// DumpLegacy demonstrates the reasoned suppression path for a sink kept
// bug-compatible with a published artifact.
func DumpLegacy(counts map[string]int) ([]byte, error) {
	var rows []string
	for k := range counts {
		rows = append(rows, k)
	}
	//lint:ignore detsink legacy artifact is diffed order-insensitively downstream
	return json.Marshal(rows)
}
