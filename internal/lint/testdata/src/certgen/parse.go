package certgen

import "crypto/x509"

// Reparse parses freshly-issued DER. certgen is on the certparse allowlist:
// the generator must parse the encoding it just signed, before any corpus
// exists to intern it into.
func Reparse(der []byte) (*x509.Certificate, error) {
	return x509.ParseCertificate(der)
}
