// Package certgen triggers detrand: nondeterminism in a deterministic
// simulation package, outside the sanctioned drbg.go entry point.
package certgen

import (
	"math/rand"
	"time"
)

// Jitter draws from the global unseeded source.
func Jitter() time.Duration {
	return time.Duration(rand.Int63())
}

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now()
}
