// drbg.go is the sanctioned deterministic entry point: its math/rand use
// must not be flagged.
package certgen

import "math/rand"

// Seeded returns a reproducible source.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
