// Package sleeps hand-rolls retry loops with bare time.Sleep; the
// sleepretry rule must flag each sleep that paces a loop and nothing else.
package sleeps

import "time"

// Poll spins on a readiness check with a flat sleep: flagged.
func Poll(ready func() bool) {
	for i := 0; i < 5; i++ {
		if ready() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Drain retries each host until it answers: the sleep paces the inner
// loop and is flagged exactly once.
func Drain(hosts []string, ping func(string) error) {
	for _, h := range hosts {
		for ping(h) != nil {
			time.Sleep(time.Second)
		}
	}
}

// Watch spawns a delayed probe per host: the sleep belongs to the spawned
// goroutine, not the loop, so it is not flagged.
func Watch(hosts []string, ping func(string) error) {
	for _, h := range hosts {
		go func() {
			time.Sleep(time.Second)
			_ = ping(h)
		}()
	}
}

// Settle sleeps once, outside any loop: not flagged.
func Settle() {
	time.Sleep(10 * time.Millisecond)
}
