package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrap flags errors that vanish. A call used as a bare statement whose
// results include an error discards it — deadline failures, short writes,
// and encode errors all disappear this way. It also flags fmt.Errorf calls
// that stringify an error operand without the %w verb, which severs the
// errors.Is/As chain callers rely on.
//
// Sanctioned discards: assigning the error to _ explicitly, deferred and
// go'd calls (no frame left to handle the error), fmt.Print/Printf/Println
// and Fprint* to os.Stdout/os.Stderr (terminal diagnostics), and methods on
// strings.Builder and bytes.Buffer, which are documented never to fail.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "flag dropped error returns and fmt.Errorf calls that lose an error operand without %w",
	Run:  runErrWrap,
}

// errwrapExemptCallees never meaningfully fail or are pure diagnostics.
var errwrapExemptCallees = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

// errwrapExemptReceivers are types whose Write* methods are documented to
// never return a non-nil error.
var errwrapExemptReceivers = [][2]string{
	{"strings", "Builder"},
	{"bytes", "Buffer"},
}

func runErrWrap(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				checkDropped(p, call)
			case *ast.CallExpr:
				if p.CalleeName(n) == "fmt.Errorf" {
					checkErrorf(p, n)
				}
			}
			return true
		})
	}
}

// checkDropped reports a statement-position call that returns an error.
func checkDropped(p *Pass, call *ast.CallExpr) {
	t := p.TypeOf(call)
	if t == nil || !resultHasError(t) {
		return
	}
	name := p.CalleeName(call)
	if errwrapExemptCallees[name] {
		return
	}
	if strings.HasPrefix(name, "fmt.Fprint") && len(call.Args) > 0 && isStdStream(p, call.Args[0]) {
		return
	}
	if recv := calleeReceiver(p, call); recv != nil {
		for _, ex := range errwrapExemptReceivers {
			if namedIn(deref(recv), ex[0], ex[1]) {
				return
			}
		}
	}
	if name == "" {
		name = "call"
	}
	p.Reportf(call.Pos(), "error returned by %s is dropped; handle it or assign it to _ deliberately", name)
}

// checkErrorf reports fmt.Errorf calls with an error operand but no %w.
func checkErrorf(p *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := p.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format string: nothing to inspect
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(strings.ReplaceAll(format, "%%", ""), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(p.TypeOf(arg)) {
			p.Reportf(call.Pos(), "fmt.Errorf has an error operand but no %%w verb; wrap it so errors.Is/As keep working")
			return
		}
	}
}

// resultHasError reports whether a call result type includes an error.
func resultHasError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// calleeReceiver returns the receiver type of a method call, or nil.
func calleeReceiver(p *Pass, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return sig.Recv().Type()
		}
	}
	return nil
}

// isStdStream reports whether e is os.Stdout or os.Stderr.
func isStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}
