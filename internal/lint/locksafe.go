package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockSafe polices the two lock mistakes the race detector only catches
// when a test happens to hit them. First, a method with a value receiver on
// a mutex-holding struct copies the lock, so the method synchronizes on a
// private copy and excludes nobody. Second, an exported field that sits
// next to a sync.Mutex in a struct is, by this repo's convention, guarded
// by that mutex; a method touching the field without taking the lock in the
// same function body is a latent race. Helper methods that document a
// held-lock precondition by the *Locked naming convention are exempt.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flag value receivers on mutex-holding structs and unlocked access to mutex-guarded exported fields",
	Run:  runLockSafe,
}

// lockStruct describes a struct type declared in the package under
// analysis that holds at least one sync.Mutex/sync.RWMutex field.
type lockStruct struct {
	mutexes []string // mutex field names
	guarded []string // exported sibling field names
}

func runLockSafe(p *Pass) {
	structs := collectLockStructs(p)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 {
				continue
			}
			recvField := fn.Recv.List[0]
			recvType := ast.Unparen(recvField.Type)
			ptr := false
			if star, ok := recvType.(*ast.StarExpr); ok {
				ptr = true
				recvType = ast.Unparen(star.X)
			}
			name, ok := recvType.(*ast.Ident)
			if !ok {
				continue
			}
			info := structs[name.Name]
			if info == nil {
				if !ptr && containsLock(p.TypeOf(recvType)) {
					p.Reportf(fn.Pos(),
						"method %s copies the lock of %s; use a pointer receiver", fn.Name.Name, name.Name)
				}
				continue
			}
			if !ptr {
				p.Reportf(fn.Pos(),
					"method %s copies the lock of %s; use a pointer receiver", fn.Name.Name, name.Name)
				continue
			}
			if fn.Body == nil || len(recvField.Names) != 1 || recvField.Names[0].Name == "_" {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // documents a held-lock precondition
			}
			checkGuardedAccess(p, fn, recvField.Names[0], name.Name, info)
		}
	}
}

// collectLockStructs finds package-local struct types with mutex fields and
// exported sibling fields worth guarding.
func collectLockStructs(p *Pass) map[string]*lockStruct {
	structs := make(map[string]*lockStruct)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				info := &lockStruct{}
				for _, field := range st.Fields.List {
					t := p.TypeOf(field.Type)
					isMutex := namedIn(t, "sync", "Mutex") || namedIn(t, "sync", "RWMutex")
					for _, fname := range field.Names {
						switch {
						case isMutex:
							info.mutexes = append(info.mutexes, fname.Name)
						case fname.IsExported():
							info.guarded = append(info.guarded, fname.Name)
						}
					}
				}
				if len(info.mutexes) > 0 && len(info.guarded) > 0 {
					structs[ts.Name.Name] = info
				}
			}
		}
	}
	return structs
}

// checkGuardedAccess reports accesses to guarded fields through recv in a
// method body that never takes any of the struct's mutexes.
func checkGuardedAccess(p *Pass, fn *ast.FuncDecl, recvIdent *ast.Ident, typeName string, info *lockStruct) {
	recvObj := p.Pkg.Info.Defs[recvIdent]
	if recvObj == nil {
		return
	}
	locked := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || !isReceiver(p, inner.X, recvObj) {
			return true
		}
		for _, mu := range info.mutexes {
			if inner.Sel.Name == mu {
				locked = true
			}
		}
		return true
	})
	if locked {
		return
	}
	reported := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !isReceiver(p, sel.X, recvObj) {
			return true
		}
		for _, g := range info.guarded {
			if sel.Sel.Name == g && !reported[g] {
				reported[g] = true
				p.Reportf(sel.Pos(),
					"field %s.%s is guarded by %s.%s but method %s accesses it without locking",
					typeName, g, typeName, strings.Join(info.mutexes, "/"), fn.Name.Name)
			}
		}
		return true
	})
}

// isReceiver reports whether e is an identifier bound to the receiver.
func isReceiver(p *Pass, e ast.Expr, recvObj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && p.Pkg.Info.Uses[id] == recvObj
}

// containsLock reports whether a value of type t embeds synchronization
// state that must not be copied.
func containsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	seen := make(map[types.Type]bool)
	var walk func(t types.Type) bool
	walk = func(t types.Type) bool {
		t = types.Unalias(t)
		if seen[t] {
			return false
		}
		seen[t] = true
		if namedIn(t, "sync", "Mutex") || namedIn(t, "sync", "RWMutex") ||
			namedIn(t, "sync", "WaitGroup") || namedIn(t, "sync", "Once") ||
			namedIn(t, "sync", "Cond") {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}
