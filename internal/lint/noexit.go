package lint

import (
	"go/ast"
	"strings"
)

// NoExit keeps process termination at the top of the call stack. A library
// that calls os.Exit or log.Fatal takes the decision away from its caller,
// skips deferred cleanup (listeners, temp dirs, partially written reports),
// and is untestable. The only sanctioned site is func main of a main
// package, which enforces the repo's single `run() error` shape: parse
// flags, call run, report, exit.
var NoExit = &Analyzer{
	Name: "noexit",
	Doc:  "flag os.Exit/log.Fatal/log.Panic outside func main of a main package",
	Run:  runNoExit,
}

// noExitCallees terminate or unwind the process.
var noExitCallees = map[string]bool{
	"os.Exit":     true,
	"log.Fatal":   true,
	"log.Fatalf":  true,
	"log.Fatalln": true,
	"log.Panic":   true,
	"log.Panicf":  true,
	"log.Panicln": true,
}

func runNoExit(p *Pass) {
	isMainPkg := p.Pkg.Types.Name() == "main"
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isMainPkg && fn.Recv == nil && fn.Name.Name == "main" {
				// The one sanctioned termination site — but literals
				// defined inside main run on arbitrary stacks (goroutines,
				// handlers), so check those.
				for _, lit := range funcLits(fn.Body) {
					checkNoExit(p, lit.Body, isMainPkg)
				}
				continue
			}
			checkNoExit(p, fn.Body, isMainPkg)
		}
	}
}

// checkNoExit reports terminating calls inside body.
func checkNoExit(p *Pass, body *ast.BlockStmt, isMainPkg bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := p.CalleeName(call)
		if !noExitCallees[name] {
			return true
		}
		where := "outside cmd mains"
		if isMainPkg {
			where = "outside func main"
		}
		p.Reportf(call.Pos(),
			"%s called %s; return an error and let main decide the exit code",
			strings.TrimPrefix(name, "log."), where)
		return true
	})
}

// funcLits collects every function literal under body, including nested
// ones.
func funcLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false // checkNoExit walks nested literals itself
		}
		return true
	})
	return lits
}
