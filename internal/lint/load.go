package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Module is a loaded, type-checked Go module.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every parsed file.
	Fset *token.FileSet
	// Packages lists every package in dependency order.
	Packages []*Package
	// Facts is the cross-package fact store of the current Run; it is
	// replaced at the start of every Run.
	Facts *Facts
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule discovers, parses, and type-checks every package under root,
// which must contain a go.mod. Test files (_test.go) are skipped: the suite
// polices production invariants, and tests legitimately use wall clocks and
// unchecked errors. Directories named testdata or vendor, and hidden or
// underscore-prefixed directories, are skipped just as the go tool does.
//
// Stdlib imports are type-checked from GOROOT source by the stdlib source
// importer; module-local imports are served from the packages loaded here,
// so the loader has no dependencies outside the standard library.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving module root: %w", err)
	}
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading module file: %w", err)
	}
	match := moduleLineRE.FindSubmatch(modData)
	if match == nil {
		return nil, fmt.Errorf("lint: no module line in %s", filepath.Join(root, "go.mod"))
	}
	m := &Module{Root: root, Path: string(match[1]), Fset: token.NewFileSet()}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	type parsed struct {
		pkg     *Package
		imports []string // module-local import paths
	}
	byPath := make(map[string]*parsed)
	var order []string
	for _, dir := range dirs {
		pkg, imports, err := m.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable Go files
		}
		byPath[pkg.Path] = &parsed{pkg: pkg, imports: imports}
		order = append(order, pkg.Path)
	}
	sort.Strings(order)

	// Type-check in dependency order so module-local imports resolve from
	// packages already checked.
	checked := make(map[string]*types.Package)
	imp := &moduleImporter{
		local:  checked,
		stdlib: importer.ForCompiler(m.Fset, "source", nil),
	}
	var visit func(path string, stack []string) error
	state := make(map[string]int) // 0 unvisited, 1 in progress, 2 done
	visit = func(path string, stack []string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(stack, path), " -> "))
		case 2:
			return nil
		}
		state[path] = 1
		p := byPath[path]
		for _, dep := range p.imports {
			if _, ok := byPath[dep]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no source under %s", path, dep, root)
			}
			if err := visit(dep, append(stack, path)); err != nil {
				return err
			}
		}
		if err := m.typeCheck(p.pkg, imp); err != nil {
			return err
		}
		checked[path] = p.pkg.Types
		m.Packages = append(m.Packages, p.pkg)
		state[path] = 2
		return nil
	}
	for _, path := range order {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// packageDirs walks root collecting directories that may hold a package.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking %s: %w", root, err)
	}
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory and returns the
// package plus its module-local imports. Returns a nil package when the
// directory holds no Go files.
func (m *Module) parseDir(dir string) (*Package, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: parsing: %w", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
				importSet[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, nil, nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: relativizing %s: %w", dir, err)
	}
	pkgPath := m.Path
	if rel != "." {
		pkgPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	var imports []string
	for p := range importSet {
		if p != pkgPath {
			imports = append(imports, p)
		}
	}
	sort.Strings(imports)
	return &Package{Path: pkgPath, Dir: dir, Files: files}, imports, nil
}

// typeCheck runs go/types over one parsed package.
func (m *Module) typeCheck(pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter serves module-local packages from the already-checked set
// and everything else from the stdlib source importer.
type moduleImporter struct {
	local  map[string]*types.Package
	stdlib types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := mi.local[path]; ok {
		return pkg, nil
	}
	return mi.stdlib.Import(path)
}
