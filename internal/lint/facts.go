package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The facts engine turns the suite from a set of single-package syntax/type
// checks into an interprocedural analysis. Packages are visited bottom-up
// over the module's import DAG (LoadModule already type-checks in dependency
// order, deterministically); in that walk each analyzer with an Export hook
// may attach facts to the objects its package declares — "this function
// ranges over a map without sorting", "this function returns a corpus.Ref
// owned by parameter 0's corpus", "this function writes a package-level
// aggregate". A downstream package's analyzer then consumes the facts of
// everything it imports, so a determinism violation buried two helper
// layers deep in another package still surfaces at the artifact sink that
// reaches it.
//
// Facts are namespaced by rule: a rule reads and writes only its own facts
// (keyed by (rule, types.Object)), which keeps the store free of cross-rule
// coupling. The export phase is strictly sequential — it IS the bottom-up
// walk — while the reporting phase that consumes facts is read-only and
// therefore safe to fan out across packages (see Run).

// Facts is the cross-package fact store of one Run.
type Facts struct {
	facts map[factKey]any
	decls map[*types.Func]*ast.FuncDecl
}

type factKey struct {
	rule string
	obj  types.Object
}

func newFacts() *Facts {
	return &Facts{
		facts: make(map[factKey]any),
		decls: make(map[*types.Func]*ast.FuncDecl),
	}
}

// indexDecls records the package's function declarations so facts rules can
// resolve a callee (possibly from another package of the module) back to
// its body-independent fact, and so the current package's export pass can
// walk its own declarations.
func (f *Facts) indexDecls(pkg *Package) {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				f.decls[fn] = fd
			}
		}
	}
}

// ExportFact attaches this rule's fact to obj. Only legal during the export
// phase; facts are write-once — re-exporting for the same object keeps the
// first fact, so fixpoint loops stay monotone and deterministic.
func (p *Pass) ExportFact(obj types.Object, fact any) {
	key := factKey{rule: p.rule, obj: obj}
	if _, ok := p.Module.Facts.facts[key]; ok {
		return
	}
	p.Module.Facts.facts[key] = fact
}

// Fact returns this rule's fact for obj, or nil.
func (p *Pass) Fact(obj types.Object) any {
	if obj == nil {
		return nil
	}
	return p.Module.Facts.facts[factKey{rule: p.rule, obj: obj}]
}

// Callee resolves a call to the *types.Func it statically invokes, or nil
// for dynamic calls (function values, interface methods), conversions and
// builtins. Interface method calls resolving to nil is what makes injected
// dependencies — the substitutable clock, a corpus handed in by the caller
// — invisible to taint propagation, which is exactly right: the injection
// point is the sanctioned boundary.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// ModuleFunc reports whether fn is declared in this module (facts can exist
// for it) rather than in the standard library.
func (p *Pass) ModuleFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == p.Module.Path || strings.HasPrefix(path, p.Module.Path+"/")
}

// FuncDecl returns the declaration of fn when it was loaded from this
// module, or nil.
func (p *Pass) FuncDecl(fn *types.Func) *ast.FuncDecl {
	return p.Module.Facts.decls[fn]
}

// declFunc pairs a function object with its declaration.
type declFunc struct {
	fn   *types.Func
	decl *ast.FuncDecl
}

// packageFuncs returns the current package's function declarations in a
// deterministic order (position order, which follows the sorted file list),
// the iteration domain for per-package fact fixpoints.
func (p *Pass) packageFuncs() []declFunc {
	var out []declFunc
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil || fd.Body == nil {
				continue
			}
			if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out = append(out, declFunc{fn: fn, decl: fd})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// relPos renders a position module-root-relative, for witness chains in
// finding messages (machine-stable across checkouts).
func (p *Pass) relPos(pos token.Pos) string {
	position := p.Module.Fset.Position(pos)
	return relativePosition(p.Module.Root, position).String()
}

// paramIndex locates obj among fn's parameters: 0-based parameter index,
// recvIndex for the method receiver, or noParam when obj is not a
// parameter of fn.
const (
	recvIndex = -1
	noParam   = -2
)

func paramIndex(fn *types.Func, obj types.Object) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return noParam
	}
	if recv := sig.Recv(); recv != nil && recv == obj {
		return recvIndex
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == obj {
			return i
		}
	}
	return noParam
}

// receiverObj returns the receiver variable object of fn's declaration, or
// nil for plain functions.
func receiverObj(fn *types.Func) types.Object {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv()
}
