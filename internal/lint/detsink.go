package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// DetSink proves the byte-identity guarantee statically: same seed, any
// worker count, identical campaign artifacts. detrand polices randomness
// inside the simulation substrates; DetSink closes the remaining gap — a
// nondeterministic value flowing through any number of helper layers into
// an artifact encoder. Using the facts engine, every function in the module
// exports a determinism-taint fact when it (or anything it statically
// calls) iterates a map in nondeterministic order, reads the wall clock, or
// draws unseeded randomness; the rule then flags artifact sinks — JSON/gob
// encodes in the artifact-producing packages — whose enclosing function
// carries a taint, with the full witness chain in the message.
//
// The map-iteration taint is heuristic in the safe direction: a range over
// a map is exempt when its body is pure commutative accumulation (x++,
// x += v, keyed stores m2[k] = f(v) indexed by the range key), or when the
// enclosing function also calls a recognized sort — the collect-then-sort
// idiom the deterministic layers use. Wall-clock and randomness taints obey
// the detrand sanction table, so the seeded sources and the injected clock
// do not taint their callers; calls through interfaces and function values
// are invisible to propagation, which makes dependency injection the
// sanctioned escape hatch it is meant to be.
var DetSink = &Analyzer{
	Name:   "detsink",
	Doc:    "flag artifact sinks (JSON/gob encodes of campaign output) reachable from unsorted map iteration, time.Now, or unseeded randomness",
	Run:    runDetSink,
	Export: exportDetSink,
}

// detSinkPackages are the artifact-producing packages (by base name) whose
// encoder calls count as sinks: campaign artifacts, analysis aggregates,
// observability snapshots, notary persistence (snapshots and journal
// frames), the fault-injection ledgers that crash tests diff across runs,
// dataset serialization, and the report/stats shaping layers that feed
// paper figures.
var detSinkPackages = map[string]bool{
	"analysis":  true,
	"campaign":  true,
	"dataset":   true,
	"faultfs":   true,
	"notary":    true,
	"obs":       true,
	"report":    true,
	"stats":     true,
	"trusteval": true,
}

// detSinkCalls are the encoder entry points treated as artifact sinks.
var detSinkCalls = map[string]string{
	"encoding/json.Marshal":           "json.Marshal",
	"encoding/json.MarshalIndent":     "json.MarshalIndent",
	"(*encoding/json.Encoder).Encode": "json.Encoder.Encode",
	"(*encoding/gob.Encoder).Encode":  "gob.Encoder.Encode",
}

// detSinkSorts are the sort entry points that sanction map iteration in the
// same function: their presence marks the collect-then-sort idiom.
var detSinkSorts = map[string]bool{
	"sort.Strings":            true,
	"sort.Ints":               true,
	"sort.Float64s":           true,
	"sort.Slice":              true,
	"sort.SliceStable":        true,
	"sort.Sort":               true,
	"sort.Stable":             true,
	"slices.Sort":             true,
	"slices.SortFunc":         true,
	"slices.SortStableFunc":   true,
	"slices.Sorted":           true,
	"slices.SortedFunc":       true,
	"slices.SortedStableFunc": true,
}

// detRandExempt are the math/rand constructors that are deterministic given
// a fixed seed; only the package-level draw functions (implicitly seeded
// from the global source) taint.
var detRandExempt = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// taintFact is the per-function determinism-taint fact: the function, or
// something it statically calls, produces scheduling- or environment-
// dependent values.
type taintFact struct {
	// kind is the root cause category.
	kind string
	// desc is the full witness chain, phrased to complete the sentence
	// "this function ...".
	desc string
}

// exportDetSink computes taint facts for every function of the package:
// direct sources first, then a fixpoint propagating callee facts (facts of
// imported packages are already present — the engine walks bottom-up).
func exportDetSink(p *Pass) {
	funcs := p.packageFuncs()
	for _, df := range funcs {
		if t := directTaint(p, df.decl); t != nil {
			p.ExportFact(df.fn, t)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, df := range funcs {
			if p.Fact(df.fn) != nil {
				continue
			}
			if t := calleeTaint(p, df); t != nil {
				p.ExportFact(df.fn, t)
				changed = true
			}
		}
	}
}

// calleeTaint returns the propagated fact for the first (by position)
// statically-resolved call to a tainted module function, or nil.
func calleeTaint(p *Pass, df declFunc) *taintFact {
	var found *taintFact
	ast.Inspect(df.decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.Callee(call)
		if callee == nil || callee == df.fn || !p.ModuleFunc(callee) {
			return true
		}
		if t, ok := p.Fact(callee).(*taintFact); ok {
			found = &taintFact{kind: t.kind, desc: "calls " + shortFuncName(callee) + ", which " + t.desc}
		}
		return true
	})
	return found
}

// directTaint scans one declaration (nested literals included) for
// first-hand nondeterminism sources and returns the earliest one.
func directTaint(p *Pass, decl *ast.FuncDecl) *taintFact {
	base := p.Pkg.Base()
	filename := filepath.Base(p.Module.Fset.Position(decl.Pos()).Filename)
	if detRandSanctioned[base][filename] {
		return nil // the seeded source / injected clock itself
	}

	type source struct {
		pos   token.Pos
		fact  taintFact
		isMap bool
	}
	var sources []source
	hasSort := false

	ast.Inspect(decl, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			name := p.CalleeName(node)
			switch {
			case detSinkSorts[name]:
				hasSort = true
			case name == "time.Now":
				sources = append(sources, source{pos: node.Pos(), fact: taintFact{
					kind: "wall clock",
					desc: "reads the wall clock (time.Now) at " + p.relPos(node.Pos()),
				}})
			case isUnseededRand(name):
				sources = append(sources, source{pos: node.Pos(), fact: taintFact{
					kind: "unseeded randomness",
					desc: "draws unseeded randomness (" + name + ") at " + p.relPos(node.Pos()),
				}})
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(node.X); t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Map); ok {
					if orderSensitiveRange(p, node, map[types.Object]bool{}) {
						sources = append(sources, source{pos: node.Pos(), isMap: true, fact: taintFact{
							kind: "map iteration",
							desc: "ranges over a map in nondeterministic order at " + p.relPos(node.Pos()),
						}})
					}
				}
			}
		}
		return true
	})

	for _, s := range sources {
		if s.isMap && hasSort {
			continue // collect-then-sort idiom
		}
		return &s.fact
	}
	return nil
}

// isUnseededRand reports whether name is a package-level math/rand or
// crypto/rand draw (implicitly seeded from the process-global source, or
// inherently nondeterministic).
func isUnseededRand(name string) bool {
	for _, prefix := range [...]string{"math/rand.", "math/rand/v2.", "crypto/rand."} {
		if rest, ok := strings.CutPrefix(name, prefix); ok {
			return !detRandExempt[rest]
		}
	}
	return false
}

// orderSensitiveRange reports whether a map range's body depends on
// iteration order. A body is order-insensitive when every statement is
// commutative accumulation (x++, x--, compound assignment), a keyed store
// whose index is one of the enclosing range keys (m2[k] = f(v) touches a
// distinct key per iteration), a local declaration, or control flow
// recursing into such statements. Anything else — appends, plain stores,
// calls for effect, returns, breaks — makes iteration order observable.
func orderSensitiveRange(p *Pass, rng *ast.RangeStmt, keys map[types.Object]bool) bool {
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			keys[obj] = true
		}
	}
	return orderSensitiveStmts(p, rng.Body.List, keys)
}

func orderSensitiveStmts(p *Pass, stmts []ast.Stmt, keys map[types.Object]bool) bool {
	for _, stmt := range stmts {
		if orderSensitiveStmt(p, stmt, keys) {
			return true
		}
	}
	return false
}

func orderSensitiveStmt(p *Pass, stmt ast.Stmt, keys map[types.Object]bool) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.DEFINE:
			return false
		case token.ASSIGN:
			for _, lhs := range s.Lhs {
				if !keyedOrBlank(p, lhs, keys) {
					return true
				}
			}
			return false
		default: // compound assignment: commutative accumulation
			return false
		}
	case *ast.IncDecStmt:
		return false
	case *ast.DeclStmt, *ast.EmptyStmt:
		return false
	case *ast.BranchStmt:
		// continue is order-insensitive (skips one iteration); break/goto
		// make which iterations ran depend on order.
		return s.Tok != token.CONTINUE
	case *ast.BlockStmt:
		return orderSensitiveStmts(p, s.List, keys)
	case *ast.IfStmt:
		if s.Init != nil && orderSensitiveStmt(p, s.Init, keys) {
			return true
		}
		if orderSensitiveStmts(p, s.Body.List, keys) {
			return true
		}
		if s.Else != nil {
			return orderSensitiveStmt(p, s.Else, keys)
		}
		return false
	case *ast.ForStmt:
		return orderSensitiveStmts(p, s.Body.List, keys)
	case *ast.RangeStmt:
		if t := p.TypeOf(s.X); t != nil {
			if _, ok := types.Unalias(t).Underlying().(*types.Map); ok {
				return orderSensitiveRange(p, s, keys)
			}
		}
		return orderSensitiveStmts(p, s.Body.List, keys)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && orderSensitiveStmts(p, cc.Body, keys) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// keyedOrBlank reports whether lhs is the blank identifier or an index
// expression keyed exactly by one of the enclosing range-key variables.
func keyedOrBlank(p *Pass, lhs ast.Expr, keys map[types.Object]bool) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return e.Name == "_"
	case *ast.IndexExpr:
		id, ok := ast.Unparen(e.Index).(*ast.Ident)
		return ok && keys[p.Pkg.Info.Uses[id]]
	}
	return false
}

// shortFuncName renders a function compactly for witness chains:
// "pkg.Func" or "(*pkg.Type).Method".
func shortFuncName(fn *types.Func) string {
	name := fn.FullName()
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = strings.ReplaceAll(name, path, path[i+1:])
		}
	}
	return name
}

func runDetSink(p *Pass) {
	if !detSinkPackages[p.Pkg.Base()] {
		return
	}
	for _, df := range p.packageFuncs() {
		fact, ok := p.Fact(df.fn).(*taintFact)
		if !ok {
			continue
		}
		ast.Inspect(df.decl.Body, func(n ast.Node) bool {
			callExpr, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if sink, isSink := detSinkCalls[p.CalleeName(callExpr)]; isSink {
				p.Reportf(callExpr.Pos(),
					"artifact sink %s is on a nondeterministic path (%s): this function %s; sort before encoding or inject the clock/seed so artifacts stay byte-identical",
					sink, fact.kind, fact.desc)
			}
			return true
		})
	}
}
