package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MergeOrder is the interprocedural extension of parallelmerge. That rule
// sees only writes spelled inside a `go func(){...}` literal; a helper
// function that mutates a shared map, called from an internal/parallel
// callback, slips straight past it — the callback body is just a call. The
// facts engine closes the gap: every function exports a shared-write fact
// describing the unguarded map writes and slice appends it performs against
// package-level variables, its receiver, or its parameters (propagated
// through same-module helpers), and this rule flags calls to such functions
// from ForEach/Map/Accumulate worker callbacks whenever the written
// aggregate lives outside the callback — i.e. is shared across shards.
//
// Accumulate's merge argument is exempt: it runs sequentially after the
// barrier, in ascending shard order — mutating shared state there is the
// engine's whole design. Writes through a helper's own parameters are only
// flagged when the call site passes in something declared outside the
// callback; the engine-supplied arguments (the shard accumulator, the task
// index) are shard-private by construction. Helpers that take a lock are
// left to locksafe, mirroring parallelmerge.
var MergeOrder = &Analyzer{
	Name:   "mergeorder",
	Doc:    "flag internal/parallel callbacks calling helpers that write shared maps/slices; fold per-shard and combine in the merge step",
	Run:    runMergeOrder,
	Export: exportMergeOrder,
}

// globalTarget marks a shared write against a package-level variable (the
// other targets are recvIndex and parameter indices, as in paramIndex).
const globalTarget = -3

// mergeOrderWrite is one unguarded aggregate write a function performs.
type mergeOrderWrite struct {
	// target is globalTarget, recvIndex, or a 0-based parameter index.
	target int
	// name is the aggregate as written at the original site.
	name string
	// desc is the witness chain, phrased to complete "…, which <desc>".
	desc string
}

// mergeOrderFact is the per-function shared-write fact.
type mergeOrderFact struct {
	writes []mergeOrderWrite
}

// addWrite appends w unless an equivalent (target, name) write is present,
// keeping facts small and fixpoints terminating.
func (f *mergeOrderFact) addWrite(w mergeOrderWrite) bool {
	for _, have := range f.writes {
		if have.target == w.target && have.name == w.name {
			return false
		}
	}
	f.writes = append(f.writes, w)
	return true
}

// exportMergeOrder computes shared-write facts for the package: direct
// writes first, then a fixpoint folding in callee facts (cross-package
// facts are already final — the engine walks bottom-up). Facts are
// accumulated locally and exported once complete, because the store is
// write-once.
func exportMergeOrder(p *Pass) {
	if p.Pkg.Base() == "parallel" {
		return // the engine's own writes are the sanctioned primitive
	}
	funcs := p.packageFuncs()
	local := make(map[*types.Func]*mergeOrderFact)
	for _, df := range funcs {
		if takesLock(df.decl.Body) {
			continue // mutex-guarded writes are locksafe's jurisdiction
		}
		fact := &mergeOrderFact{}
		directWrites(p, df, fact)
		local[df.fn] = fact
	}
	for changed := true; changed; {
		changed = false
		for _, df := range funcs {
			fact := local[df.fn]
			if fact == nil {
				continue
			}
			if propagateWrites(p, df, fact, local) {
				changed = true
			}
		}
	}
	for _, df := range funcs {
		if fact := local[df.fn]; fact != nil && len(fact.writes) > 0 {
			p.ExportFact(df.fn, fact)
		}
	}
}

// directWrites collects the function's own unguarded map writes and slice
// appends against globals, the receiver, or parameters. Slice index
// assignment is deliberately not a write: out[i] = v indexed by a private
// task index is the engine's documented deterministic collection pattern.
func directWrites(p *Pass, df declFunc, fact *mergeOrderFact) {
	record := func(e ast.Expr, verb string) {
		_, obj := rootObject(p, ast.Unparen(e))
		if obj == nil {
			return
		}
		name := types.ExprString(ast.Unparen(e))
		target := noParam
		switch {
		case obj.Parent() == p.Pkg.Types.Scope():
			target = globalTarget
		case obj == receiverObj(df.fn):
			target = recvIndex
		default:
			if i := paramIndex(df.fn, obj); i >= 0 {
				target = i
			}
		}
		if target == noParam {
			return // function-local aggregate: private by construction
		}
		fact.addWrite(mergeOrderWrite{
			target: target,
			name:   name,
			desc:   verb + " " + name + " at " + p.relPos(e.Pos()),
		})
	}
	ast.Inspect(df.decl.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range stmt.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := types.Unalias(p.TypeOf(ast.Unparen(idx.X))).Underlying().(*types.Map); isMap {
						record(idx.X, "writes map")
					}
				}
				if i < len(stmt.Rhs) && isAppendOf(p, lhs, stmt.Rhs[i]) {
					record(lhs, "appends to slice")
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(stmt.X).(*ast.IndexExpr); ok {
				if _, isMap := types.Unalias(p.TypeOf(ast.Unparen(idx.X))).Underlying().(*types.Map); isMap {
					record(idx.X, "writes map")
				}
			}
		}
		return true
	})
}

// isAppendOf reports whether rhs is `append(lhs-rooted slice, ...)` — the
// grow-in-place idiom whose result lands back in a shared variable.
func isAppendOf(p *Pass, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	_, isBuiltin := p.Pkg.Info.Uses[fun].(*types.Builtin)
	if !isBuiltin {
		return false
	}
	_, obj := rootObject(p, ast.Unparen(lhs))
	return obj != nil
}

// propagateWrites folds callee facts into fact: a call to a helper that
// writes its receiver/parameter aggregate becomes a write of whatever this
// function passed in those positions, when that is itself a global,
// receiver, or parameter. Reports true when fact grew.
func propagateWrites(p *Pass, df declFunc, fact *mergeOrderFact, local map[*types.Func]*mergeOrderFact) bool {
	grew := false
	ast.Inspect(df.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.Callee(call)
		if callee == nil || callee == df.fn || !p.ModuleFunc(callee) {
			return true
		}
		cf := local[callee]
		if cf == nil {
			cf, _ = p.Fact(callee).(*mergeOrderFact)
		}
		if cf == nil {
			return true
		}
		for _, w := range cf.writes {
			chained := mergeOrderWrite{
				name: w.name,
				desc: "calls " + shortFuncName(callee) + ", which " + w.desc,
			}
			if w.target == globalTarget {
				chained.target = globalTarget
				if fact.addWrite(chained) {
					grew = true
				}
				continue
			}
			arg := callArg(call, w.target)
			if arg == nil {
				continue
			}
			_, obj := rootObject(p, ast.Unparen(arg))
			if obj == nil {
				continue
			}
			name := types.ExprString(ast.Unparen(arg))
			switch {
			case obj.Parent() == p.Pkg.Types.Scope():
				chained.target, chained.name = globalTarget, name
			case obj == receiverObj(df.fn):
				chained.target, chained.name = recvIndex, name
			default:
				i := paramIndex(df.fn, obj)
				if i < 0 {
					continue // callee writes a local of ours: shard-private here
				}
				chained.target, chained.name = i, name
			}
			if fact.addWrite(chained) {
				grew = true
			}
		}
		return true
	})
	return grew
}

// parallelEntry returns the entry-point name ("ForEach", "Map",
// "Accumulate") when call invokes one of internal/parallel's fan-out
// primitives (matched by package base name, so fixture modules qualify).
func parallelEntry(p *Pass, call *ast.CallExpr) string {
	fn := p.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg := fn.Pkg().Path()
	if pkg != "parallel" && !hasSuffixPath(pkg, "parallel") {
		return ""
	}
	switch fn.Name() {
	case "ForEach", "Map", "Accumulate":
		return fn.Name()
	}
	return ""
}

// hasSuffixPath reports whether path ends with "/"+elem.
func hasSuffixPath(path, elem string) bool {
	return len(path) > len(elem)+1 &&
		path[len(path)-len(elem)-1] == '/' && path[len(path)-len(elem):] == elem
}

func runMergeOrder(p *Pass) {
	if p.Pkg.Base() == "parallel" {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			entry := parallelEntry(p, call)
			if entry == "" {
				return true
			}
			for _, arg := range workerCallbacks(p, entry, call) {
				checkCallback(p, entry, arg)
			}
			return true
		})
	}
}

// workerCallbacks selects the call's worker-side function arguments: every
// unnamed func-typed argument, minus Accumulate's trailing merge (it runs
// sequentially after the barrier) and any named Option values.
func workerCallbacks(p *Pass, entry string, call *ast.CallExpr) []ast.Expr {
	var cbs []ast.Expr
	for _, arg := range call.Args {
		t := p.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, isNamed := types.Unalias(t).(*types.Named); isNamed {
			continue // Option and friends: configuration, not work
		}
		if _, isFunc := t.Underlying().(*types.Signature); isFunc {
			cbs = append(cbs, arg)
		}
	}
	if entry == "Accumulate" && len(cbs) > 0 {
		cbs = cbs[:len(cbs)-1] // merge runs post-barrier, in shard order
	}
	return cbs
}

// checkCallback applies the fact check to one worker callback argument:
// a function literal is walked for calls to fact-carrying helpers; a
// direct function or method value is checked against its own fact.
func checkCallback(p *Pass, entry string, arg ast.Expr) {
	switch cb := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		if takesLock(cb.Body) {
			return
		}
		ast.Inspect(cb.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.Callee(call)
			if callee == nil || !p.ModuleFunc(callee) {
				return true
			}
			fact, ok := p.Fact(callee).(*mergeOrderFact)
			if !ok {
				return true
			}
			reportSharedCall(p, entry, cb, call, callee, fact)
			return true
		})
	default:
		callee := calleeOfValue(p, arg)
		if callee == nil || !p.ModuleFunc(callee) {
			return
		}
		fact, ok := p.Fact(callee).(*mergeOrderFact)
		if !ok {
			return
		}
		for _, w := range fact.writes {
			// Parameter writes are fed by the engine (shard index,
			// accumulator) and therefore shard-private; globals and the
			// bound receiver are shared across every shard.
			if w.target == globalTarget || w.target == recvIndex {
				p.Reportf(arg.Pos(),
					"parallel.%s worker callback %s %s; shards race and merge in scheduling order — fold per-shard accumulators and combine in Accumulate's merge instead",
					entry, shortFuncName(callee), w.desc)
				return
			}
		}
	}
}

// reportSharedCall reports a literal-callback call to a helper whose fact
// writes an aggregate shared across shards.
func reportSharedCall(p *Pass, entry string, lit *ast.FuncLit, call *ast.CallExpr, callee *types.Func, fact *mergeOrderFact) {
	for _, w := range fact.writes {
		var shared bool
		var at token.Pos = call.Pos()
		switch {
		case w.target == globalTarget:
			shared = true
		default:
			arg := callArg(call, w.target)
			if arg == nil {
				continue
			}
			_, obj := rootObject(p, ast.Unparen(arg))
			shared = obj != nil && !declaredWithin(obj, lit)
			at = arg.Pos()
		}
		if shared {
			p.Reportf(at,
				"parallel.%s worker callback calls %s, which %s; the aggregate is shared across shards, so contents depend on scheduling — fold per-shard accumulators and combine in Accumulate's merge instead",
				entry, shortFuncName(callee), w.desc)
			return
		}
	}
}

// calleeOfValue resolves a function or method value expression (`helper`,
// `s.addTo`) to its *types.Func, or nil.
func calleeOfValue(p *Pass, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}
