package lint

import (
	"go/ast"
)

// SleepRetry keeps retry logic in one place. A bare time.Sleep inside a
// loop is the shape of hand-rolled retry backoff: unseeded, unbudgeted,
// invisible to the fault-injection harness, and a source of timing
// nondeterminism in tests. The resilient package is the sanctioned home
// for backoff — its Retrier takes a seeded jitter source and a budget, and
// its Clock is the substitutable sleep boundary — so every other package
// must route waiting-in-a-loop through it.
var SleepRetry = &Analyzer{
	Name: "sleepretry",
	Doc:  "flag bare time.Sleep in retry-shaped loops outside internal/resilient; use resilient.Retrier",
	Run:  runSleepRetry,
}

func runSleepRetry(p *Pass) {
	// The resilient package is the implementation being mandated; its own
	// loops may sleep.
	if p.Pkg.Base() == "resilient" {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch s := n.(type) {
			case *ast.ForStmt:
				body = s.Body
			case *ast.RangeStmt:
				body = s.Body
			default:
				return true
			}
			sleepsInLoopBody(p, body)
			return true
		})
	}
}

// sleepsInLoopBody reports time.Sleep calls directly inside one loop body.
// Nested loops are skipped — the enclosing walk visits them separately, so
// each sleep is reported exactly once — and function literals are skipped
// because their sleeps run on another goroutine's schedule, not the loop's.
func sleepsInLoopBody(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.CallExpr:
			if p.CalleeName(n) == "time.Sleep" {
				p.Reportf(n.Pos(),
					"time.Sleep in a retry-shaped loop; hand-rolled backoff is unseeded and unbudgeted — use resilient.Retrier")
			}
		}
		return true
	})
}
