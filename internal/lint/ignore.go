package lint

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces an inline suppression: the directive suppresses
// matching findings on its own line and on the following line, so it works
// both as a trailing comment and as a comment immediately above the code.
const ignorePrefix = "//lint:ignore "

// fileIgnorePrefix suppresses a rule for the whole file.
const fileIgnorePrefix = "//lint:file-ignore "

// directive is one parsed //lint:ignore or //lint:file-ignore comment. The
// used flag records whether the directive suppressed at least one finding
// in the current run; directives that suppress nothing are themselves
// findings (UnusedIgnoreRule) when every rule they name was enabled.
type directive struct {
	pos      token.Position
	rules    []string
	fileWide bool
	used     bool
}

func (d *directive) covers(rule string) bool {
	for _, r := range d.rules {
		if r == rule {
			return true
		}
	}
	return false
}

// ignoreIndex locates the directives that may suppress a finding: by
// (file, line) for inline directives, by file for file-wide ones.
type ignoreIndex struct {
	byLine map[string]map[int][]*directive
	byFile map[string][]*directive
	all    []*directive
}

// suppressed reports whether some directive covers f, marking every
// matching directive used — all of them, not just the first, so a
// redundant duplicate does not masquerade as load-bearing. The pseudo-rules
// (malformed and stale directives) cannot be suppressed.
func (idx *ignoreIndex) suppressed(f Finding) bool {
	if f.Rule == DirectiveRule || f.Rule == UnusedIgnoreRule {
		return false
	}
	matched := false
	for _, d := range idx.byFile[f.Pos.Filename] {
		if d.covers(f.Rule) {
			d.used = true
			matched = true
		}
	}
	lines := idx.byLine[f.Pos.Filename]
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range lines[line] {
			if d.covers(f.Rule) {
				d.used = true
				matched = true
			}
		}
	}
	return matched
}

// unused returns an UnusedIgnoreRule finding for every directive that
// suppressed nothing, restricted to directives whose named rules all ran:
// a partial run (a single analyzer, or none) proves nothing about what a
// directive naming other rules would have suppressed.
func (idx *ignoreIndex) unused(ran map[string]bool) []Finding {
	var out []Finding
	for _, d := range idx.all {
		if d.used {
			continue
		}
		judgeable := true
		for _, r := range d.rules {
			if !ran[r] {
				judgeable = false
				break
			}
		}
		if !judgeable {
			continue
		}
		kind := "//lint:ignore"
		if d.fileWide {
			kind = "//lint:file-ignore"
		}
		out = append(out, Finding{
			Pos:  d.pos,
			Rule: UnusedIgnoreRule,
			Msg:  kind + " " + strings.Join(d.rules, ",") + " suppresses no findings; delete the stale directive",
		})
	}
	return out
}

// buildIgnoreIndex scans every comment of the module for lint directives.
// Malformed directives — a missing reason, or a rule name no analyzer
// registers — come back as findings so a typo cannot silently disable a
// gate.
func buildIgnoreIndex(m *Module) (*ignoreIndex, []Finding) {
	idx := &ignoreIndex{
		byLine: make(map[string]map[int][]*directive),
		byFile: make(map[string][]*directive),
	}
	known := KnownRules()
	var bad []Finding
	report := func(f Finding) { bad = append(bad, f) }

	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := c.Text
					var prefix string
					switch {
					case strings.HasPrefix(text, ignorePrefix):
						prefix = ignorePrefix
					case strings.HasPrefix(text, fileIgnorePrefix):
						prefix = fileIgnorePrefix
					case strings.HasPrefix(text, "//lint:"):
						report(Finding{
							Pos:  m.Fset.Position(c.Pos()),
							Rule: DirectiveRule,
							Msg:  "unknown lint directive; want //lint:ignore or //lint:file-ignore",
						})
						continue
					default:
						continue
					}
					pos := m.Fset.Position(c.Pos())
					rules, ok := parseDirective(strings.TrimPrefix(text, prefix), known)
					if !ok {
						report(Finding{
							Pos:  pos,
							Rule: DirectiveRule,
							Msg:  "malformed directive: want " + strings.TrimSpace(prefix) + " rule[,rule...] reason, with registered rule names",
						})
						continue
					}
					d := &directive{pos: pos, rules: rules, fileWide: prefix == fileIgnorePrefix}
					idx.all = append(idx.all, d)
					if d.fileWide {
						idx.byFile[pos.Filename] = append(idx.byFile[pos.Filename], d)
						continue
					}
					end := m.Fset.Position(c.End())
					if idx.byLine[pos.Filename] == nil {
						idx.byLine[pos.Filename] = make(map[int][]*directive)
					}
					idx.byLine[pos.Filename][end.Line] = append(idx.byLine[pos.Filename][end.Line], d)
				}
			}
		}
	}
	return idx, bad
}

// parseDirective splits "rule1,rule2 reason..." and validates the rule
// names and the presence of a reason.
func parseDirective(rest string, known map[string]bool) ([]string, bool) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, false // no reason given
	}
	var rules []string
	for _, rule := range strings.Split(fields[0], ",") {
		rule = strings.TrimSpace(rule)
		if rule == "" || !known[rule] {
			return nil, false
		}
		rules = append(rules, rule)
	}
	return rules, true
}
