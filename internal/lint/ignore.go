package lint

import (
	"strings"
)

// ignorePrefix introduces an inline suppression: the directive suppresses
// matching findings on its own line and on the following line, so it works
// both as a trailing comment and as a comment immediately above the code.
const ignorePrefix = "//lint:ignore "

// fileIgnorePrefix suppresses a rule for the whole file.
const fileIgnorePrefix = "//lint:file-ignore "

// ignoreIndex records which (file, line, rule) and (file, rule) pairs are
// suppressed.
type ignoreIndex struct {
	byLine map[string]map[int]map[string]bool
	byFile map[string]map[string]bool
}

func (idx *ignoreIndex) suppressed(f Finding) bool {
	if f.Rule == DirectiveRule {
		return false
	}
	if rules := idx.byFile[f.Pos.Filename]; rules[f.Rule] {
		return true
	}
	lines := idx.byLine[f.Pos.Filename]
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if lines[line][f.Rule] {
			return true
		}
	}
	return false
}

// buildIgnoreIndex scans every comment of the module for lint directives.
// Malformed directives — a missing reason, or a rule name no analyzer
// registers — come back as findings so a typo cannot silently disable a
// gate.
func buildIgnoreIndex(m *Module) (*ignoreIndex, []Finding) {
	idx := &ignoreIndex{
		byLine: make(map[string]map[int]map[string]bool),
		byFile: make(map[string]map[string]bool),
	}
	known := KnownRules()
	var bad []Finding
	report := func(f Finding) { bad = append(bad, f) }

	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := c.Text
					var prefix string
					switch {
					case strings.HasPrefix(text, ignorePrefix):
						prefix = ignorePrefix
					case strings.HasPrefix(text, fileIgnorePrefix):
						prefix = fileIgnorePrefix
					case strings.HasPrefix(text, "//lint:"):
						report(Finding{
							Pos:  m.Fset.Position(c.Pos()),
							Rule: DirectiveRule,
							Msg:  "unknown lint directive; want //lint:ignore or //lint:file-ignore",
						})
						continue
					default:
						continue
					}
					pos := m.Fset.Position(c.Pos())
					rules, ok := parseDirective(strings.TrimPrefix(text, prefix), known)
					if !ok {
						report(Finding{
							Pos:  pos,
							Rule: DirectiveRule,
							Msg:  "malformed directive: want " + strings.TrimSpace(prefix) + " rule[,rule...] reason, with registered rule names",
						})
						continue
					}
					end := m.Fset.Position(c.End())
					for _, rule := range rules {
						if prefix == fileIgnorePrefix {
							if idx.byFile[pos.Filename] == nil {
								idx.byFile[pos.Filename] = make(map[string]bool)
							}
							idx.byFile[pos.Filename][rule] = true
							continue
						}
						if idx.byLine[pos.Filename] == nil {
							idx.byLine[pos.Filename] = make(map[int]map[string]bool)
						}
						if idx.byLine[pos.Filename][end.Line] == nil {
							idx.byLine[pos.Filename][end.Line] = make(map[string]bool)
						}
						idx.byLine[pos.Filename][end.Line][rule] = true
					}
				}
			}
		}
	}
	return idx, bad
}

// parseDirective splits "rule1,rule2 reason..." and validates the rule
// names and the presence of a reason.
func parseDirective(rest string, known map[string]bool) ([]string, bool) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, false // no reason given
	}
	var rules []string
	for _, rule := range strings.Split(fields[0], ",") {
		rule = strings.TrimSpace(rule)
		if rule == "" || !known[rule] {
			return nil, false
		}
		rules = append(rules, rule)
	}
	return rules, true
}
