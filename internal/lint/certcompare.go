package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CertCompare enforces the paper's certificate-identity rule (§4): root
// certificates are equivalent when subject and key material match, so
// comparing *x509.Certificate values by pointer, or their DER bytes with
// bytes.Equal on .Raw, silently diverges from the published methodology the
// moment a CA re-issues a root. Only internal/certid — the package that
// defines identity — may look at raw equality.
var CertCompare = &Analyzer{
	Name: "certcompare",
	Doc:  "flag pointer or raw-DER comparison of *x509.Certificate outside internal/certid",
	Run:  runCertCompare,
}

func runCertCompare(p *Pass) {
	if p.Pkg.Base() == "certid" {
		return // the identity package defines byte-level identity itself
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				x, y := p.TypeOf(n.X), p.TypeOf(n.Y)
				// Comparing against nil is presence, not identity.
				if isUntypedNil(p, n.X) || isUntypedNil(p, n.Y) {
					return true
				}
				if isCertPtr(x) || isCertPtr(y) {
					p.Reportf(n.OpPos,
						"*x509.Certificate compared with %s; compare identities with certid.Equivalent or certid.IdentityOf", n.Op)
				}
			case *ast.CallExpr:
				if p.CalleeName(n) != "bytes.Equal" || len(n.Args) != 2 {
					return true
				}
				for _, arg := range n.Args {
					if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok &&
						sel.Sel.Name == "Raw" && isCert(p.TypeOf(sel.X)) {
						p.Reportf(n.Pos(),
							"bytes.Equal on x509.Certificate.Raw; compare identities with certid.Equivalent or fingerprints via certid")
						return true
					}
				}
			}
			return true
		})
	}
}

// isUntypedNil reports whether e is the predeclared nil.
func isUntypedNil(p *Pass, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		if _, isNil := p.ObjectOf(id).(*types.Nil); isNil {
			return true
		}
	}
	return false
}
