package lint

import (
	"go/ast"
	"go/types"
)

// ParallelMerge polices ad-hoc goroutine fan-outs. A `go func(){...}()`
// that writes a map or slice declared outside its own body is either a
// data race (shared map) or, at best, a hand-rolled results-merge whose
// ordering depends on scheduling — exactly the shape internal/parallel
// exists to replace with sharded folds and a deterministic merge. Bodies
// that take a lock are left to the locksafe rule, and internal/parallel
// itself is exempt: its shard-indexed writes are the sanctioned primitive
// every other package is being steered towards.
var ParallelMerge = &Analyzer{
	Name: "parallelmerge",
	Doc:  "flag goroutines writing shared maps/slices; fan out through internal/parallel instead",
	Run:  runParallelMerge,
}

func runParallelMerge(p *Pass) {
	if p.Pkg.Base() == "parallel" {
		return // the engine's own shard-owned writes are the sanctioned exception
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gostmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gostmt.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineBody(p, lit)
			return true
		})
	}
}

// checkGoroutineBody reports shared-aggregate writes in one goroutine's
// function literal.
func checkGoroutineBody(p *Pass, lit *ast.FuncLit) {
	if takesLock(lit.Body) {
		return // mutex-guarded merges are locksafe's jurisdiction
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range stmt.Lhs {
				checkSharedIndexWrite(p, lit, lhs)
				if i < len(stmt.Rhs) {
					checkSharedAppend(p, lit, lhs, stmt.Rhs[i])
				}
			}
		case *ast.IncDecStmt:
			checkSharedIndexWrite(p, lit, stmt.X)
		}
		return true
	})
}

// checkSharedIndexWrite reports `m[k] = v` / `s[i] = v` / `m[k]++` targets
// whose base aggregate is declared outside the goroutine literal.
func checkSharedIndexWrite(p *Pass, lit *ast.FuncLit, lhs ast.Expr) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	base := ast.Unparen(idx.X)
	name, obj := rootObject(p, base)
	if obj == nil || declaredWithin(obj, lit) {
		return
	}
	switch types.Unalias(p.TypeOf(base)).Underlying().(type) {
	case *types.Map:
		p.Reportf(lhs.Pos(),
			"goroutine writes shared map %s; fold per-shard accumulators with parallel.Accumulate instead", name)
	case *types.Slice:
		p.Reportf(lhs.Pos(),
			"goroutine writes shared slice %s; collect indexed results with parallel.Map instead", name)
	}
}

// checkSharedAppend reports `x = append(x, ...)` where x is a slice
// declared outside the goroutine literal.
func checkSharedAppend(p *Pass, lit *ast.FuncLit, lhs, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return
	}
	if _, isBuiltin := p.Pkg.Info.Uses[fun].(*types.Builtin); !isBuiltin {
		return
	}
	name, obj := rootObject(p, ast.Unparen(lhs))
	if obj == nil || declaredWithin(obj, lit) {
		return
	}
	p.Reportf(lhs.Pos(),
		"goroutine appends to shared slice %s; collect indexed results with parallel.Map instead", name)
}

// rootObject resolves the identifier at the root of e ("results" in
// `results[i]`, "s" in `s.counts[k]`) to its declared object.
func rootObject(p *Pass, e ast.Expr) (string, types.Object) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x.Name, p.ObjectOf(x)
		case *ast.SelectorExpr:
			// For field writes like s.counts[k], the aggregate is shared
			// iff the value it hangs off is: resolve the receiver chain's
			// root, so maps inside goroutine-local structs stay unflagged.
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return "", nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the
// goroutine literal (parameters and body-local variables both qualify).
func declaredWithin(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

// takesLock reports whether the body calls .Lock() or .RLock() anywhere —
// the marker of a deliberately mutex-guarded merge.
func takesLock(body *ast.BlockStmt) bool {
	locked := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				locked = true
				return false
			}
		}
		return true
	})
	return locked
}
