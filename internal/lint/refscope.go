package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RefScope enforces the corpus-Ref ownership discipline: a Ref is a dense
// uint32 handle that is only meaningful inside the corpus that issued it
// (see internal/corpus). Three violation shapes are flagged:
//
//   - cross-corpus flow: a Ref produced by one corpus (c1.Intern, or a
//     module function the facts engine proved returns Refs owned by a
//     corpus parameter) consumed through a different corpus value
//     (c2.Cert(r), or a module function proved to consume a Ref against a
//     corpus parameter). Provenance is tracked within each function and
//     carried across package boundaries by exported facts.
//   - serialized Refs: a struct field of type corpus.Ref (or []Ref)
//     carrying a json/gob tag. Refs are process-local, assigned in
//     interning order; persisting one stores a number that means nothing
//     to any other process — persist a fingerprint or a snapshot-local
//     table index instead (as notary snapshot v2 does).
//   - ambiguous containers: a map keyed by Ref inside a struct that holds
//     more than one *corpus.Corpus — the key cannot name which corpus it
//     belongs to, so nothing stops handles from different tables colliding.
//
// Package corpus itself is exempt: it is the issuing table, and its
// internals are the primitive everything else is being held to.
var RefScope = &Analyzer{
	Name:   "refscope",
	Doc:    "flag corpus.Ref values crossing corpus boundaries, serialized Refs, and Ref-keyed maps in multi-corpus structs",
	Run:    runRefScope,
	Export: exportRefScope,
}

// refProducers are the *corpus.Corpus methods whose Ref results are owned
// by the receiver.
var refProducers = map[string]bool{
	"Intern":      true,
	"InternCert":  true,
	"InternChain": true,
	"ParsePEM":    true,
}

// refConsumers are the *corpus.Corpus methods that interpret a Ref
// argument against the receiver.
var refConsumers = map[string]bool{
	"Entry":    true,
	"Cert":     true,
	"Identity": true,
	"SHA1":     true,
	"DER":      true,
	"Certs":    true,
}

// refScopeFact is the per-function provenance fact.
type refScopeFact struct {
	// producer is the corpus parameter index (recvIndex for the receiver)
	// owning every Ref the function returns, or noParam.
	producer int
	// consumes lists (corpus parameter, Ref parameter) pairs the function
	// interprets together.
	consumes [][2]int
}

// corpusBase reports whether the named type pkg has base name "corpus" —
// matching both the real module package and fixture modules, like the
// obskey receiver match.
func corpusBase(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "corpus" || strings.HasSuffix(pkg.Path(), "/corpus")
}

func namedCorpusType(t types.Type, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && corpusBase(obj.Pkg())
}

// isCorpusPtr reports whether t is *corpus.Corpus.
func isCorpusPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	return ok && namedCorpusType(ptr.Elem(), "Corpus")
}

// isRefType reports whether t is corpus.Ref or []corpus.Ref.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	if sl, ok := types.Unalias(t).Underlying().(*types.Slice); ok {
		return namedCorpusType(sl.Elem(), "Ref")
	}
	return namedCorpusType(t, "Ref")
}

// corpusKey names one corpus-valued expression within a function: the root
// object plus the rendered selector path, so n.c and m.c stay distinct
// even when both render as ".c" chains off different roots.
type corpusKey struct {
	obj  types.Object
	path string
}

func (k corpusKey) known() bool { return k.obj != nil }

// corpusKeyOf canonicalizes a corpus-typed expression: an identifier or a
// selector chain of identifiers and fields. Calls, map loads and anything
// else are unknown — unknown keys never report.
func corpusKeyOf(p *Pass, e ast.Expr) corpusKey {
	e = ast.Unparen(e)
	if !isCorpusPtr(p.TypeOf(e)) {
		return corpusKey{}
	}
	root := e
	for {
		if sel, ok := ast.Unparen(root).(*ast.SelectorExpr); ok {
			root = sel.X
			continue
		}
		break
	}
	id, ok := ast.Unparen(root).(*ast.Ident)
	if !ok {
		return corpusKey{}
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		obj = p.Pkg.Info.Defs[id]
	}
	if obj == nil {
		return corpusKey{}
	}
	return corpusKey{obj: obj, path: types.ExprString(e)}
}

// refFlow walks one function, tracking which corpus each local Ref value
// came from, and calls report for every Ref consumed through a different
// corpus than the one that produced it. It returns the facts the function
// exports for its own callers.
func refFlow(p *Pass, df declFunc, report func(pos ast.Expr, prod, cons corpusKey)) refScopeFact {
	fact := refScopeFact{producer: noParam}
	prov := make(map[types.Object]corpusKey)
	consumed := make(map[[2]int]bool)

	// exprProv resolves the provenance of a Ref-valued expression.
	var exprProv func(e ast.Expr) corpusKey
	exprProv = func(e ast.Expr) corpusKey {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := p.Pkg.Info.Uses[x]; obj != nil {
				return prov[obj]
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if refProducers[sel.Sel.Name] && isCorpusPtr(p.TypeOf(sel.X)) {
					return corpusKeyOf(p, sel.X)
				}
			}
			if callee := p.Callee(x); callee != nil && p.ModuleFunc(callee) {
				if f, ok := p.Fact(callee).(*refScopeFact); ok && f.producer != noParam {
					if arg := callArg(x, f.producer); arg != nil {
						return corpusKeyOf(p, arg)
					}
				}
			}
		}
		return corpusKey{}
	}

	// consumption checks one (corpus expression, Ref argument) pairing.
	consume := func(cExpr, rExpr ast.Expr) {
		cKey := corpusKeyOf(p, cExpr)
		rKey := exprProv(rExpr)
		if cKey.known() && rKey.known() && cKey != rKey && report != nil {
			report(rExpr, rKey, cKey)
		}
		// Record the fact shape: both sides are parameters of this function.
		ci := objParam(p, df.fn, cExpr)
		ri := objParam(p, df.fn, rExpr)
		if ci != noParam && ri != noParam {
			pair := [2]int{ci, ri}
			if !consumed[pair] {
				consumed[pair] = true
				fact.consumes = append(fact.consumes, pair)
			}
		}
	}

	ast.Inspect(df.decl, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) > 1 && len(node.Rhs) == 1 {
				// r, err := c.Intern(der): the call's provenance attaches to
				// every Ref-typed name on the left.
				key := exprProv(node.Rhs[0])
				if key.known() {
					for _, lhs := range node.Lhs {
						bindProv(p, prov, lhs, key)
					}
				}
				return true
			}
			for i, lhs := range node.Lhs {
				if i < len(node.Rhs) {
					if key := exprProv(node.Rhs[i]); key.known() {
						bindProv(p, prov, lhs, key)
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok &&
				refConsumers[sel.Sel.Name] && isCorpusPtr(p.TypeOf(sel.X)) {
				for _, arg := range node.Args {
					if isRefType(p.TypeOf(arg)) {
						consume(sel.X, arg)
					}
				}
				return true
			}
			if callee := p.Callee(node); callee != nil && p.ModuleFunc(callee) {
				if f, ok := p.Fact(callee).(*refScopeFact); ok {
					for _, pair := range f.consumes {
						cArg, rArg := callArg(node, pair[0]), callArg(node, pair[1])
						if cArg != nil && rArg != nil {
							consume(cArg, rArg)
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if !isRefType(p.TypeOf(res)) {
					continue
				}
				key := exprProv(res)
				idx := noParam
				if key.known() {
					idx = objParam(p, df.fn, res)
					if idx == noParam && key.obj != nil && key.path == key.obj.Name() {
						idx = paramIndex(df.fn, key.obj)
					}
				}
				switch {
				case idx == noParam:
					fact.producer = noParam
					return false // a non-param-owned return disqualifies the fact
				case fact.producer == noParam || fact.producer == idx:
					fact.producer = idx
				default:
					fact.producer = noParam // two different owners: ambiguous
					return false
				}
			}
		}
		return true
	})
	return fact
}

// bindProv records provenance for a Ref-typed assignment target.
func bindProv(p *Pass, prov map[types.Object]corpusKey, lhs ast.Expr, key corpusKey) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := p.Pkg.Info.Defs[id]
	if obj == nil {
		obj = p.Pkg.Info.Uses[id]
	}
	if obj != nil && isRefType(obj.Type()) {
		prov[obj] = key
	}
}

// objParam resolves e to a parameter index of fn when e is exactly a
// parameter (or receiver) identifier; noParam otherwise.
func objParam(p *Pass, fn *types.Func, e ast.Expr) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return noParam
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		return noParam
	}
	return paramIndex(fn, obj)
}

// callArg returns the expression bound to parameter idx at a call:
// recvIndex maps to the method receiver expression.
func callArg(call *ast.CallExpr, idx int) ast.Expr {
	if idx == recvIndex {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	if idx >= 0 && idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

// exportRefScope computes producer/consumer facts for the package's
// functions, iterating to a fixpoint so provenance composes through
// same-package helpers regardless of declaration order.
func exportRefScope(p *Pass) {
	if p.Pkg.Base() == "corpus" {
		return
	}
	funcs := p.packageFuncs()
	for changed := true; changed; {
		changed = false
		for _, df := range funcs {
			if p.Fact(df.fn) != nil {
				continue
			}
			fact := refFlow(p, df, nil)
			if fact.producer != noParam || len(fact.consumes) > 0 {
				p.ExportFact(df.fn, &fact)
				changed = true
			}
		}
	}
}

func runRefScope(p *Pass) {
	if p.Pkg.Base() == "corpus" {
		return
	}
	for _, df := range p.packageFuncs() {
		refFlow(p, df, func(at ast.Expr, prod, cons corpusKey) {
			p.Reportf(at.Pos(),
				"Ref produced by corpus %s is consumed through corpus %s; Refs are dense handles meaningful only in their owning corpus",
				prod.path, cons.path)
		})
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			checkRefStruct(p, ts.Name.Name, st)
			return true
		})
	}
}

// checkRefStruct applies the two struct-shape checks: serialized Ref
// fields, and Ref-keyed maps in structs holding more than one corpus.
func checkRefStruct(p *Pass, name string, st *ast.StructType) {
	corpora := 0
	type mapField struct {
		pos  ast.Expr
		name string
	}
	var refKeyMaps []mapField
	for _, field := range st.Fields.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isCorpusPtr(t) {
			corpora++
		}
		if m, ok := types.Unalias(t).Underlying().(*types.Map); ok && namedCorpusType(m.Key(), "Ref") {
			refKeyMaps = append(refKeyMaps, mapField{pos: field.Type, name: fieldName(field)})
		}
		if isRefType(t) && field.Tag != nil &&
			(strings.Contains(field.Tag.Value, "json:") || strings.Contains(field.Tag.Value, "gob:")) {
			p.Reportf(field.Pos(),
				"corpus.Ref field %s.%s is serialized; Refs are process-local interning handles — persist a fingerprint or a snapshot-local table index instead",
				name, fieldName(field))
		}
	}
	if corpora > 1 {
		for _, mf := range refKeyMaps {
			p.Reportf(mf.pos.Pos(),
				"map keyed by corpus.Ref in struct %s, which holds %d corpora; a bare Ref cannot name its owning corpus — key by (corpus ID, Ref) or split the struct",
				name, corpora)
		}
	}
}

func fieldName(f *ast.Field) string {
	if len(f.Names) > 0 {
		return f.Names[0].Name
	}
	return types.ExprString(f.Type)
}
