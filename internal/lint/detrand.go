package lint

import (
	"go/ast"
	"path/filepath"
	"strconv"
)

// DetRand keeps the synthetic substrates deterministic. The CA universe,
// device population, certificate generator, and their statistics are
// calibrated to the paper's published aggregates; any wall-clock read or
// unseeded randomness desynchronizes them between runs and invalidates the
// calibration. All randomness must flow through the sanctioned seeded
// entry points: stats/rand.go (the seeded source), certgen/drbg.go (the
// deterministic byte stream key generation consumes), and resilient/clock.go
// (the substitutable wall-clock boundary the fault-injection harness swaps
// out). faultnet, faultfs, and resilient are held to the same rule — their
// fault decisions and backoff jitter must replay byte-identically from a
// seed, and faultfs's torn-write prefixes must be a pure function of the
// seed so the crashpoint sweep reproduces.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "flag math/rand, crypto/rand, and time.Now in deterministic simulation packages outside the seeded entry points",
	Run:  runDetRand,
}

// detRandPackages are the simulation packages that must stay deterministic,
// by package base name.
var detRandPackages = map[string]bool{
	"cauniverse": true,
	"population": true,
	"certgen":    true,
	"stats":      true,
	"faultnet":   true,
	"faultfs":    true,
	"resilient":  true,
}

// detRandSanctioned are the package/file pairs allowed to touch
// nondeterminism primitives: they are the seeded sources everything else is
// forced through.
var detRandSanctioned = map[string]map[string]bool{
	"stats":     {"rand.go": true},
	"certgen":   {"drbg.go": true},
	"resilient": {"clock.go": true},
}

func runDetRand(p *Pass) {
	base := p.Pkg.Base()
	if !detRandPackages[base] {
		return
	}
	sanctioned := detRandSanctioned[base]
	for _, file := range p.Pkg.Files {
		filename := filepath.Base(p.Module.Fset.Position(file.Pos()).Filename)
		if sanctioned[filename] {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "math/rand", "math/rand/v2":
				p.Reportf(imp.Pos(),
					"%s imported in deterministic package %s; draw randomness from the seeded stats.Source", path, base)
			case "crypto/rand":
				p.Reportf(imp.Pos(),
					"crypto/rand imported in deterministic package %s; consume the certgen DRBG stream instead", base)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.CalleeName(call) == "time.Now" {
				p.Reportf(call.Pos(),
					"time.Now in deterministic package %s; thread the simulation epoch through explicitly", base)
			}
			return true
		})
	}
}
