package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture module under testdata/src is type-checked once per test binary:
// resolving stdlib imports through the source importer costs a few seconds,
// and every test reads the same immutable module.
var fixture struct {
	once sync.Once
	mod  *Module
	err  error
}

func loadFixture(t *testing.T) *Module {
	t.Helper()
	fixture.once.Do(func() {
		fixture.mod, fixture.err = LoadModule(filepath.Join("testdata", "src"))
	})
	if fixture.err != nil {
		t.Fatalf("loading fixture module: %v", fixture.err)
	}
	return fixture.mod
}

// normalize renders findings as the driver would. Run already returns
// module-root-relative slash paths, so the goldens are location-independent
// without any trimming here.
func normalize(findings []Finding) []string {
	lines := make([]string, 0, len(findings))
	for _, f := range findings {
		lines = append(lines, f.String())
	}
	return lines
}

func readGolden(t *testing.T) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "expect.txt"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	sort.Strings(lines)
	return lines
}

func diffLines(t *testing.T, got, want []string) {
	t.Helper()
	gotSet := map[string]bool{}
	for _, l := range got {
		gotSet[l] = true
	}
	wantSet := map[string]bool{}
	for _, l := range want {
		wantSet[l] = true
	}
	for _, l := range want {
		if !gotSet[l] {
			t.Errorf("missing finding: %s", l)
		}
	}
	for _, l := range got {
		if !wantSet[l] {
			t.Errorf("unexpected finding: %s", l)
		}
	}
}

// TestEndToEnd runs the full suite over the fixture module and asserts the
// exact finding set against testdata/expect.txt.
func TestEndToEnd(t *testing.T) {
	m := loadFixture(t)
	got := normalize(Run(m, Analyzers()))
	sort.Strings(got)
	diffLines(t, got, readGolden(t))
}

// TestAnalyzerGoldens runs each analyzer in isolation and checks that its
// findings are exactly the golden lines carrying its rule tag. Directive
// findings (always emitted by Run) are checked separately.
func TestAnalyzerGoldens(t *testing.T) {
	m := loadFixture(t)
	golden := readGolden(t)
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			tag := "[" + a.Name + "]"
			var want []string
			for _, l := range golden {
				if strings.Contains(l, tag) {
					want = append(want, l)
				}
			}
			if len(want) == 0 {
				t.Fatalf("golden has no findings for %s; fixture must cover every analyzer", a.Name)
			}
			var got []string
			for _, l := range normalize(Run(m, []*Analyzer{a})) {
				if strings.Contains(l, tag) {
					got = append(got, l)
				}
			}
			sort.Strings(got)
			diffLines(t, got, want)
		})
	}
}

// TestDirectiveFindings asserts the malformed-directive pseudo-rule findings
// appear even when no analyzers run: directive validation is unconditional.
func TestDirectiveFindings(t *testing.T) {
	m := loadFixture(t)
	tag := "[" + DirectiveRule + "]"
	var want []string
	for _, l := range readGolden(t) {
		if strings.Contains(l, tag) {
			want = append(want, l)
		}
	}
	if len(want) == 0 {
		t.Fatal("golden has no lintdirective findings; ignored/ fixtures must cover malformed directives")
	}
	got := normalize(Run(m, nil))
	sort.Strings(got)
	diffLines(t, got, want)
}

// TestSuppression asserts the well-formed directives in the fixtures actually
// silence findings: the suppressed lines must not reappear under any rule.
func TestSuppression(t *testing.T) {
	m := loadFixture(t)
	suppressed := []string{
		"ignored/ignored.go:12:", // trailing //lint:ignore
		"ignored/ignored.go:18:", // preceding-line //lint:ignore
		"ignored/fileignore.go:", // //lint:file-ignore
	}
	for _, l := range normalize(Run(m, Analyzers())) {
		for _, s := range suppressed {
			if strings.HasPrefix(l, s) {
				t.Errorf("finding survived suppression: %s", l)
			}
		}
	}
}

// TestCleanPackagesStayClean asserts the negative fixtures: certid (the
// sanctioned comparison package), the sanctioned DRBG/seeded-source files,
// and the compliant call sites produce no findings.
func TestCleanPackagesStayClean(t *testing.T) {
	m := loadFixture(t)
	cleanFiles := []string{
		"certid/certid.go",
		"certgen/drbg.go",
		"certgen/parse.go",
		"stats/rand.go",
		"resilient/clock.go",
		"parallel/parallel.go",
	}
	for _, l := range normalize(Run(m, Analyzers())) {
		for _, f := range cleanFiles {
			if strings.HasPrefix(l, f+":") {
				t.Errorf("sanctioned file flagged: %s", l)
			}
		}
	}
}

// TestKnownRules asserts every analyzer name and the directive pseudo-rules
// are registered for directive validation.
func TestKnownRules(t *testing.T) {
	rules := KnownRules()
	if !rules[DirectiveRule] {
		t.Errorf("KnownRules missing %s", DirectiveRule)
	}
	if !rules[UnusedIgnoreRule] {
		t.Errorf("KnownRules missing %s", UnusedIgnoreRule)
	}
	for _, a := range Analyzers() {
		if !rules[a.Name] {
			t.Errorf("KnownRules missing analyzer %s", a.Name)
		}
	}
}

// TestWorkerCountInvariance asserts the determinism invariant the tool
// polices for everyone else: the finding list is identical at any worker
// count, including the serial reference execution.
func TestWorkerCountInvariance(t *testing.T) {
	m := loadFixture(t)
	want := normalize(Run(m, Analyzers(), WithWorkers(1)))
	for _, workers := range []int{2, 8} {
		got := normalize(Run(m, Analyzers(), WithWorkers(workers)))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d findings, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: finding %d = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRelativePositions asserts every finding's path is module-root-relative
// and slash-separated, the contract CI annotations and baselines rely on.
func TestRelativePositions(t *testing.T) {
	m := loadFixture(t)
	for _, f := range Run(m, Analyzers()) {
		if filepath.IsAbs(f.Pos.Filename) {
			t.Errorf("absolute path in finding: %s", f)
		}
		if strings.Contains(f.Pos.Filename, "\\") || strings.Contains(f.Pos.Filename, "testdata") {
			t.Errorf("path not module-root-relative slash form: %s", f)
		}
	}
}

// TestUnusedIgnoreNotSuppressible asserts a stale directive cannot be hidden
// by another directive: unusedignore findings survive even file-wide
// suppression attempts, like lintdirective findings do.
func TestUnusedIgnoreNotSuppressible(t *testing.T) {
	m := loadFixture(t)
	idx, _ := buildIgnoreIndex(m)
	f := Finding{Rule: UnusedIgnoreRule}
	f.Pos.Filename = "unusedignore/unusedignore.go"
	f.Pos.Line = 6
	if idx.suppressed(f) {
		t.Error("unusedignore finding was suppressed; pseudo-rules must not be suppressible")
	}
}
