package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// ObsKey keeps the observability namespace flat, collision-free, and
// greppable. Every metric and span name in the aggregated snapshot is a
// map key; two packages reusing "dial.total" would silently merge their
// counters, and a name built at runtime cannot be found by grep, listed in
// the README registry, or asserted in tests. So every name handed to an
// obs instrument must be a compile-time string constant carrying the
// calling package's name as a dotted prefix ("netalyzr.dial.total" inside
// package netalyzr). Package obs itself is exempt: it is the registry
// mechanism, not a tenant of the namespace.
var ObsKey = &Analyzer{
	Name: "obskey",
	Doc:  "flag obs metric/span names that are not package-prefixed compile-time constants",
	Run:  runObsKey,
}

// obsKeyMethods maps each Observer instrument method to the index of its
// name argument. StartSpan's first argument is the dynamic session scope;
// the namespaced key is the stage.
var obsKeyMethods = map[string]int{
	"Counter":   0,
	"Gauge":     0,
	"Histogram": 0,
	"StartSpan": 1,
}

func runObsKey(p *Pass) {
	if p.Pkg.Base() == "obs" {
		return
	}
	prefix := p.Pkg.Base() + "."
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := obsObserverMethod(p, call)
			if !ok {
				return true
			}
			argIdx := obsKeyMethods[method]
			if len(call.Args) <= argIdx {
				return true
			}
			arg := call.Args[argIdx]
			tv, ok := p.Pkg.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				p.Reportf(arg.Pos(),
					"obs %s name is not a compile-time constant; runtime-built names cannot be grepped or registered", method)
				return true
			}
			if name := constant.StringVal(tv.Value); !strings.HasPrefix(name, prefix) {
				p.Reportf(arg.Pos(),
					"obs %s name %q is not namespaced under this package; prefix it %q", method, name, prefix)
			}
			return true
		})
	}
}

// obsObserverMethod reports whether call invokes one of the obs.Observer
// instrument methods, returning the method name. The receiver is matched
// by type identity — a *Observer named in a package whose base name is
// "obs" — so the rule follows the type through locals, struct fields, and
// embedding rather than pattern-matching on selector text.
func obsObserverMethod(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	method := sel.Sel.Name
	if _, ok := obsKeyMethods[method]; !ok {
		return "", false
	}
	name := p.CalleeName(call)
	// FullName renders the receiver as "(*<pkgpath>.Observer).<method>".
	i := strings.LastIndex(name, ").")
	if i < 0 || !strings.HasPrefix(name, "(*") {
		return "", false
	}
	recv := name[2:i]
	if recv != "obs.Observer" && !strings.HasSuffix(recv, "/obs.Observer") {
		return "", false
	}
	return method, true
}
