// Package lint is a repo-aware static-analysis suite for the tangledmass
// module. The paper's results hinge on invariants the type system cannot
// express — root certificates must be compared by identity rather than by
// pointer or raw DER bytes, the synthetic datasets must stay deterministic,
// long-running collectors must not block forever on the network — so this
// package enforces them mechanically over every package in the module.
//
// The suite is zero-dependency: packages are discovered and parsed with
// go/parser, type-checked with go/types, and stdlib imports are resolved by
// the stdlib source importer. cmd/tangledlint is the command-line driver;
// verify.sh runs it as a build gate.
//
// A finding can be suppressed with an inline directive on the same or the
// preceding line:
//
//	//lint:ignore rule[,rule...] reason
//
// or for a whole file (anywhere in the file, conventionally at the top):
//
//	//lint:file-ignore rule[,rule...] reason
//
// The reason is mandatory and the rule names must be registered; malformed
// directives are themselves reported under the "lintdirective" rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer report, rendered as "file:line: [rule] message".
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical driver output format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Package is one type-checked package of the loaded module.
type Package struct {
	// Path is the package import path ("tangledmass/internal/rootstore").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
}

// Base returns the last path element of the package import path, which is
// how the repo-aware analyzers recognize the packages they apply to.
func (p *Package) Base() string {
	if i := strings.LastIndexByte(p.Path, '/'); i >= 0 {
		return p.Path[i+1:]
	}
	return p.Path
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Module *Module
	Pkg    *Package

	rule     string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:  p.Module.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// CalleeName resolves a call expression to the full name of the called
// function or method — "bytes.Equal", "os.Exit",
// "(*strings.Builder).WriteString" — or "" when the callee is not a named
// function (a conversion, a function-typed variable, a builtin).
func (p *Pass) CalleeName(call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := p.Pkg.Info.Uses[id].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// Analyzer is one named rule over a package.
type Analyzer struct {
	// Name is the rule name used in output and in ignore directives.
	Name string
	// Doc is a one-line description of the rule.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// DirectiveRule is the pseudo-rule malformed //lint: directives are reported
// under. It is always checked and cannot be suppressed.
const DirectiveRule = "lintdirective"

// Analyzers returns the full registered suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CertCompare,
		CertParse,
		DetRand,
		LockSafe,
		ErrWrap,
		NoExit,
		CtxHTTP,
		SleepRetry,
		ObsKey,
		ParallelMerge,
	}
}

// KnownRules returns every valid rule name for directive validation,
// independent of which analyzers a particular run enables.
func KnownRules() map[string]bool {
	rules := map[string]bool{DirectiveRule: true}
	for _, a := range Analyzers() {
		rules[a.Name] = true
	}
	return rules
}

// Run applies the analyzers to every package of the module, filters findings
// through //lint:ignore directives, and returns the surviving findings plus
// any malformed-directive findings, sorted by position then rule.
func Run(m *Module, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, pkg := range m.Packages {
		for _, a := range analyzers {
			pass := &Pass{Module: m, Pkg: pkg, rule: a.Name, findings: &raw}
			a.Run(pass)
		}
	}

	idx, bad := buildIgnoreIndex(m)
	findings := bad
	for _, f := range raw {
		if idx.suppressed(f) {
			continue
		}
		findings = append(findings, f)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is or implements error.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, errorType) || types.Implements(t, errorType)
}

// namedIn reports whether t (after unwrapping aliases) is the named type
// pkgPath.name.
func namedIn(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isCertPtr reports whether t is *crypto/x509.Certificate.
func isCertPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	return ok && namedIn(ptr.Elem(), "crypto/x509", "Certificate")
}

// isCert reports whether t is crypto/x509.Certificate or a pointer to it.
func isCert(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return namedIn(t, "crypto/x509", "Certificate")
}
