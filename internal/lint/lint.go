// Package lint is a repo-aware static-analysis suite for the tangledmass
// module. The paper's results hinge on invariants the type system cannot
// express — root certificates must be compared by identity rather than by
// pointer or raw DER bytes, the synthetic datasets must stay deterministic,
// long-running collectors must not block forever on the network — so this
// package enforces them mechanically over every package in the module.
//
// The suite is zero-dependency: packages are discovered and parsed with
// go/parser, type-checked with go/types, and stdlib imports are resolved by
// the stdlib source importer. cmd/tangledlint is the command-line driver;
// verify.sh runs it as a build gate.
//
// A finding can be suppressed with an inline directive on the same or the
// preceding line:
//
//	//lint:ignore rule[,rule...] reason
//
// or for a whole file (anywhere in the file, conventionally at the top):
//
//	//lint:file-ignore rule[,rule...] reason
//
// The reason is mandatory and the rule names must be registered; malformed
// directives are themselves reported under the "lintdirective" rule.
package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"tangledmass/internal/parallel"
)

// Finding is one analyzer report, rendered as "file:line: [rule] message".
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical driver output format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Package is one type-checked package of the loaded module.
type Package struct {
	// Path is the package import path ("tangledmass/internal/rootstore").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
}

// Base returns the last path element of the package import path, which is
// how the repo-aware analyzers recognize the packages they apply to.
func (p *Package) Base() string {
	if i := strings.LastIndexByte(p.Path, '/'); i >= 0 {
		return p.Path[i+1:]
	}
	return p.Path
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Module *Module
	Pkg    *Package

	rule     string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:  p.Module.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// CalleeName resolves a call expression to the full name of the called
// function or method — "bytes.Equal", "os.Exit",
// "(*strings.Builder).WriteString" — or "" when the callee is not a named
// function (a conversion, a function-typed variable, a builtin).
func (p *Pass) CalleeName(call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := p.Pkg.Info.Uses[id].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// Analyzer is one named rule over a package.
type Analyzer struct {
	// Name is the rule name used in output and in ignore directives.
	Name string
	// Doc is a one-line description of the rule.
	Doc string
	// Run inspects one package and reports findings through the pass. Run
	// may read facts but must not export them: it can execute concurrently
	// with other packages' Run passes.
	Run func(*Pass)
	// Export, when non-nil, runs before any Run pass, package by package in
	// dependency order, and attaches this rule's facts to the package's
	// objects (Pass.ExportFact). By the time a package exports, the facts of
	// everything it imports are final.
	Export func(*Pass)
}

// DirectiveRule is the pseudo-rule malformed //lint: directives are reported
// under. It is always checked and cannot be suppressed.
const DirectiveRule = "lintdirective"

// UnusedIgnoreRule is the pseudo-rule stale suppressions are reported
// under: a //lint:ignore or //lint:file-ignore directive that suppressed
// zero findings of the rules it names. Like DirectiveRule it cannot itself
// be suppressed — a stale directive must be deleted, not ignored harder. A
// directive is only judged when every rule it names was enabled in the
// run; partial runs say nothing about what a directive would suppress.
const UnusedIgnoreRule = "unusedignore"

// Analyzers returns the full registered suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CertCompare,
		CertParse,
		DetRand,
		LockSafe,
		ErrWrap,
		NoExit,
		CtxHTTP,
		SleepRetry,
		ObsKey,
		ParallelMerge,
		DetSink,
		RefScope,
		MergeOrder,
	}
}

// KnownRules returns every valid rule name for directive validation,
// independent of which analyzers a particular run enables.
func KnownRules() map[string]bool {
	rules := map[string]bool{DirectiveRule: true, UnusedIgnoreRule: true}
	for _, a := range Analyzers() {
		rules[a.Name] = true
	}
	return rules
}

// RunOption configures one Run.
type RunOption func(*runConfig)

type runConfig struct {
	workers int
}

// WithWorkers bounds the reporting-phase fan-out. Values < 1 (and the
// default) mean GOMAXPROCS. The output is byte-identical at any worker
// count — the tool obeys the determinism invariant it checks.
func WithWorkers(n int) RunOption {
	return func(c *runConfig) { c.workers = n }
}

// Run applies the analyzers to every package of the module, filters findings
// through //lint:ignore directives, and returns the surviving findings plus
// any malformed-directive and stale-directive findings, sorted by position
// then rule. Positions are module-root-relative, so output is stable across
// machines and working directories.
//
// Run has two phases. The export phase walks packages sequentially in
// dependency order, letting each analyzer's Export hook attach facts to the
// package's objects; this IS the bottom-up DAG walk, so it cannot fan out.
// The reporting phase is read-only over the module and the fact store and
// fans out across packages through internal/parallel; per-package findings
// are merged in package order, so the result is a pure function of the
// module.
func Run(m *Module, analyzers []*Analyzer, opts ...RunOption) []Finding {
	cfg := runConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}

	m.Facts = newFacts()
	var discard []Finding
	for _, pkg := range m.Packages {
		m.Facts.indexDecls(pkg)
		for _, a := range analyzers {
			if a.Export == nil {
				continue
			}
			a.Export(&Pass{Module: m, Pkg: pkg, rule: a.Name, findings: &discard})
		}
	}

	perPkg, _ := parallel.Map(context.Background(), len(m.Packages),
		func(_ context.Context, i int) ([]Finding, error) {
			var out []Finding
			for _, a := range analyzers {
				a.Run(&Pass{Module: m, Pkg: m.Packages[i], rule: a.Name, findings: &out})
			}
			return out, nil
		}, parallel.WithWorkers(cfg.workers))

	idx, bad := buildIgnoreIndex(m)
	findings := bad
	for _, pkgFindings := range perPkg {
		for _, f := range pkgFindings {
			if idx.suppressed(f) {
				continue
			}
			findings = append(findings, f)
		}
	}

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	findings = append(findings, idx.unused(ran)...)

	for i := range findings {
		findings[i].Pos = relativePosition(m.Root, findings[i].Pos)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return findings
}

// relativePosition rewrites a position's filename relative to the module
// root (slash-separated), so findings and baselines are stable across
// machines. Positions already relative, or outside the root, are returned
// unchanged.
func relativePosition(root string, pos token.Position) token.Position {
	if pos.Filename == "" || !filepath.IsAbs(pos.Filename) {
		return pos
	}
	rel, err := filepath.Rel(root, pos.Filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return pos
	}
	pos.Filename = filepath.ToSlash(rel)
	return pos
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is or implements error.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, errorType) || types.Implements(t, errorType)
}

// namedIn reports whether t (after unwrapping aliases) is the named type
// pkgPath.name.
func namedIn(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isCertPtr reports whether t is *crypto/x509.Certificate.
func isCertPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	return ok && namedIn(ptr.Elem(), "crypto/x509", "Certificate")
}

// isCert reports whether t is crypto/x509.Certificate or a pointer to it.
func isCert(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return namedIn(t, "crypto/x509", "Certificate")
}
