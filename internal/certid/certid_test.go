package certid

import (
	"strings"
	"testing"

	"tangledmass/internal/certgen"
)

func TestEquivalentAcrossReissue(t *testing.T) {
	g := certgen.NewGenerator(1)
	orig, err := g.SelfSignedCA("Equiv Root", certgen.WithOrganization("O"))
	if err != nil {
		t.Fatal(err)
	}
	re, err := g.Reissue(orig, certgen.WithValidity(certgen.Epoch, certgen.Epoch.AddDate(25, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if string(orig.Cert.Raw) == string(re.Cert.Raw) {
		t.Fatal("test needs byte-distinct certs")
	}
	if !Equivalent(orig.Cert, re.Cert) {
		t.Error("reissued root should be Equivalent (same subject + key)")
	}
	if SHA1Fingerprint(orig.Cert) == SHA1Fingerprint(re.Cert) {
		t.Error("byte-distinct certs must have distinct SHA-1 fingerprints")
	}
}

func TestNotEquivalentDifferentKey(t *testing.T) {
	g := certgen.NewGenerator(1)
	a, _ := g.SelfSignedCA("Same Subject", certgen.WithKeyName("key-a"))
	b, _ := g.SelfSignedCA("Same Subject", certgen.WithKeyName("key-b"))
	if a.Cert.Subject.String() != b.Cert.Subject.String() {
		t.Fatal("subjects should match")
	}
	if Equivalent(a.Cert, b.Cert) {
		t.Error("same subject but different key must not be Equivalent")
	}
}

func TestNotEquivalentDifferentSubject(t *testing.T) {
	g := certgen.NewGenerator(1)
	a, _ := g.SelfSignedCA("Subject A", certgen.WithKeyName("shared"))
	b, _ := g.SelfSignedCA("Subject B", certgen.WithKeyName("shared"))
	if Equivalent(a.Cert, b.Cert) {
		t.Error("same key but different subject must not be Equivalent")
	}
}

func TestKeyIdentityRSAUsesModulus(t *testing.T) {
	g := certgen.NewGenerator(1)
	ca, err := g.SelfSignedCA("RSA Identity", certgen.WithRSA(1024))
	if err != nil {
		t.Fatal(err)
	}
	id := KeyIdentity(ca.Cert)
	if !strings.HasPrefix(string(id), "rsa:") {
		t.Errorf("RSA KeyID = %q, want rsa: prefix", id)
	}
	// 1024-bit modulus → 128 bytes → 256 hex chars.
	if len(id) != len("rsa:")+256 {
		t.Errorf("RSA KeyID length = %d", len(id))
	}
}

func TestKeyIdentityECDSA(t *testing.T) {
	g := certgen.NewGenerator(1)
	ca, _ := g.SelfSignedCA("EC Identity")
	id := KeyIdentity(ca.Cert)
	if !strings.HasPrefix(string(id), "ecdsa:") {
		t.Errorf("ECDSA KeyID = %q, want ecdsa: prefix", id)
	}
}

func TestSubjectHashStable(t *testing.T) {
	g := certgen.NewGenerator(1)
	orig, _ := g.SelfSignedCA("Hash Root", certgen.WithOrganization("HO"))
	re, _ := g.Reissue(orig, certgen.WithValidity(certgen.Epoch, certgen.Epoch.AddDate(20, 0, 0)))
	if SubjectHash32(orig.Cert) != SubjectHash32(re.Cert) {
		t.Error("subject hash must survive reissue (same subject)")
	}
	other, _ := g.SelfSignedCA("Other Root")
	if SubjectHash32(orig.Cert) == SubjectHash32(other.Cert) {
		t.Error("different subjects should (overwhelmingly) hash differently")
	}
}

func TestSubjectHashStringFormat(t *testing.T) {
	g := certgen.NewGenerator(1)
	ca, _ := g.SelfSignedCA("Hash Format Root")
	s := SubjectHashString(ca.Cert)
	if len(s) != 8 {
		t.Errorf("hash string %q length %d, want 8", s, len(s))
	}
	for _, c := range s {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Errorf("hash string %q contains non-hex rune %q", s, c)
		}
	}
}

func TestFingerprints(t *testing.T) {
	g := certgen.NewGenerator(1)
	ca, _ := g.SelfSignedCA("FP Root")
	if len(SHA1Fingerprint(ca.Cert)) != 40 {
		t.Error("SHA-1 fingerprint should be 40 hex chars")
	}
	if len(SHA256Fingerprint(ca.Cert)) != 64 {
		t.Error("SHA-256 fingerprint should be 64 hex chars")
	}
	if SHA1Fingerprint(ca.Cert) != SHA1Fingerprint(ca.Cert) {
		t.Error("fingerprint must be stable")
	}
}

func TestIdentityOfAndString(t *testing.T) {
	g := certgen.NewGenerator(1)
	ca, _ := g.SelfSignedCA("ID Root", certgen.WithOrganization("Org"), certgen.WithCountry("US"))
	id := IdentityOf(ca.Cert)
	if id.Subject == "" || id.Key == "" {
		t.Fatalf("incomplete identity: %+v", id)
	}
	if !strings.Contains(id.Subject, "ID Root") {
		t.Errorf("subject %q missing CN", id.Subject)
	}
	if !strings.Contains(id.String(), "ID Root") {
		t.Errorf("String() = %q missing CN", id.String())
	}
	// Identity is a comparable value usable as a map key.
	m := map[Identity]bool{id: true}
	if !m[IdentityOf(ca.Cert)] {
		t.Error("identical certs should produce identical map keys")
	}
}

func TestSubjectStringCanonical(t *testing.T) {
	g := certgen.NewGenerator(1)
	ca, _ := g.SelfSignedCA("Canon Root", certgen.WithOrganization("Canon Org"), certgen.WithCountry("FR"))
	s := SubjectString(ca.Cert)
	for _, part := range []string{"CN=Canon Root", "O=Canon Org", "C=FR"} {
		if !strings.Contains(s, part) {
			t.Errorf("SubjectString %q missing %q", s, part)
		}
	}
}
