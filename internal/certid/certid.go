// Package certid implements certificate identity and equivalence as used in
// the paper's methodology (§4): two root certificates are "equivalent" when
// their subject and key material match, even when the certificates are not
// byte-identical (e.g. a CA re-issues its root with a new expiration date).
//
// The paper establishes identity from the RSA key modulus plus the subject
// string. Our CA universe generates ECDSA roots for speed, so the key
// identity generalizes: for RSA keys it is the modulus, for any other key it
// is a hash of the SubjectPublicKeyInfo. The predicate is unchanged — same
// subject, same public key.
package certid

import (
	"crypto/ecdsa"
	"crypto/md5"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// KeyID identifies a public key. For RSA keys it is the hex-encoded modulus
// prefixed "rsa:"; for other keys it is the hex SHA-256 of the DER-encoded
// SubjectPublicKeyInfo prefixed with the key algorithm.
type KeyID string

// KeyIdentity computes the KeyID for a certificate's public key.
func KeyIdentity(cert *x509.Certificate) KeyID {
	switch pub := cert.PublicKey.(type) {
	case *rsa.PublicKey:
		return KeyID("rsa:" + hex.EncodeToString(pub.N.Bytes()))
	case *ecdsa.PublicKey:
		sum := sha256.Sum256(cert.RawSubjectPublicKeyInfo)
		return KeyID("ecdsa:" + hex.EncodeToString(sum[:]))
	default:
		sum := sha256.Sum256(cert.RawSubjectPublicKeyInfo)
		return KeyID(fmt.Sprintf("%T:%s", pub, hex.EncodeToString(sum[:])))
	}
}

// Identity is the paper's certificate identity: the subject distinguished
// name plus the public-key identity. Two certificates with equal Identity
// can validate the same child certificates and are treated as the same root.
type Identity struct {
	Subject string
	Key     KeyID
}

// String renders the identity compactly for diagnostics.
func (id Identity) String() string {
	k := string(id.Key)
	if len(k) > 24 {
		k = k[:24] + "…"
	}
	return id.Subject + " [" + k + "]"
}

// IdentityOf computes the Identity of a certificate from scratch. This is
// the pure definition; hot paths go through the content-addressed corpus
// (internal/corpus), which computes each certificate's identity exactly
// once at interning time and answers later lookups from the table.
func IdentityOf(cert *x509.Certificate) Identity {
	return Identity{Subject: SubjectString(cert), Key: KeyIdentity(cert)}
}

// Equivalent reports whether two certificates are equivalent in the paper's
// sense: same subject and same public key, regardless of validity period,
// serial number, or signature bytes.
func Equivalent(a, b *x509.Certificate) bool {
	return IdentityOf(a) == IdentityOf(b)
}

// SubjectString returns the RFC 2253 string form of the certificate subject.
// Android versions format subject information differently (§4.1); using one
// canonical renderer on parsed names sidesteps that problem.
func SubjectString(cert *x509.Certificate) string {
	return cert.Subject.String()
}

// SHA1Fingerprint returns the hex SHA-1 of the certificate's DER encoding.
// This is the "certificate signature" identity Netalyzr uses for uniqueness:
// byte-level identity, stricter than Equivalent.
func SHA1Fingerprint(cert *x509.Certificate) string {
	sum := sha1.Sum(cert.Raw)
	return hex.EncodeToString(sum[:])
}

// SHA256Fingerprint returns the hex SHA-256 of the certificate's DER encoding.
func SHA256Fingerprint(cert *x509.Certificate) string {
	sum := sha256.Sum256(cert.Raw)
	return hex.EncodeToString(sum[:])
}

// MD5Fingerprint returns the hex MD5 of the certificate's DER encoding.
// Legacy tooling (and the Notary's historical database) still keys by MD5;
// the corpus precomputes it alongside the SHA fingerprints.
func MD5Fingerprint(cert *x509.Certificate) string {
	sum := md5.Sum(cert.Raw)
	return hex.EncodeToString(sum[:])
}

// SubjectHash32 returns a 32-bit hash of the certificate subject in the style
// of OpenSSL's X509_NAME_hash_old (MD5 over the DER-encoded subject name,
// first four bytes interpreted little-endian). Android names root-store files
// <hash>.N with this value, and Figure 2 of the paper labels each certificate
// with it.
func SubjectHash32(cert *x509.Certificate) uint32 {
	sum := md5.Sum(cert.RawSubject)
	return binary.LittleEndian.Uint32(sum[:4])
}

// SubjectHashString returns SubjectHash32 as the 8-hex-digit string used in
// Android cacerts file names and in the paper's Figure 2 labels.
func SubjectHashString(cert *x509.Certificate) string {
	return fmt.Sprintf("%08x", SubjectHash32(cert))
}
