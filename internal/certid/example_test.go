package certid_test

import (
	"fmt"

	"tangledmass/internal/certgen"
	"tangledmass/internal/certid"
)

// A CA re-issuing its root with a new validity period produces a
// byte-distinct certificate that is still the same trust anchor — the
// paper's equivalence (§4.2).
func ExampleEquivalent() {
	g := certgen.NewGenerator(1)
	orig, _ := g.SelfSignedCA("Example Root CA")
	reissued, _ := g.Reissue(orig, certgen.WithValidity(certgen.Epoch, certgen.Epoch.AddDate(20, 0, 0)))

	fmt.Println("byte-identical:", string(orig.Cert.Raw) == string(reissued.Cert.Raw))
	fmt.Println("equivalent:", certid.Equivalent(orig.Cert, reissued.Cert))
	fmt.Println("same subject hash:", certid.SubjectHashString(orig.Cert) == certid.SubjectHashString(reissued.Cert))
	// Output:
	// byte-identical: false
	// equivalent: true
	// same subject hash: true
}
