// Package tlsnet simulates the TLS internet the ICSI Certificate Notary
// observes (§4.2): a population of server certificates issued under the CA
// universe plus internet-only private CAs, with a Zipf-skewed popularity law
// over issuing roots. It also runs real TLS servers on loopback so the
// measurement client and the interception proxy exercise genuine handshakes.
//
// Calibration targets:
//
//   - each root store validates ≈74% of the Notary's non-expired
//     certificates (Table 3: 744k of ~1M), with only per-mille differences
//     between stores — so ~26% of leaves chain to roots outside every store;
//   - a few shared AOSP∩Mozilla roots validate most certificates while long
//     tails validate few or none (Figure 3's shape).
package tlsnet

import (
	"crypto/x509"
	"fmt"
	"time"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/stats"
)

// Config parameterizes world generation.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Universe supplies the store-member CAs. Nil means the default.
	Universe *cauniverse.Universe
	// NumLeaves is how many server certificates exist. The paper's Notary
	// holds ~1M non-expired certificates; the default (20,000) reproduces
	// the distributional shape at tractable cost. Values <= 0 mean default.
	NumLeaves int
	// ExpiredFraction of leaves are already expired at the Epoch (the
	// Notary also stores expired certificates). Default 0.08.
	ExpiredFraction float64
	// InternetShare is the fraction of leaves issued by internet-only CAs
	// that are in no studied root store. Zero means the default 0.26
	// (yielding Table 3's ≈74% validation rate); a negative value means
	// every leaf chains to a store-member root.
	InternetShare float64
	// InternetOnlyRoots is how many such CAs exist. Default 40.
	InternetOnlyRoots int
	// ZipfS is the popularity exponent over issuing roots. Default 1.10.
	ZipfS float64
}

func (c Config) withDefaults() Config {
	if c.Universe == nil {
		c.Universe = cauniverse.Default()
	}
	if c.NumLeaves <= 0 {
		c.NumLeaves = 20000
	}
	if c.ExpiredFraction <= 0 {
		c.ExpiredFraction = 0.08
	}
	if c.InternetShare == 0 {
		c.InternetShare = 0.26
	} else if c.InternetShare < 0 {
		c.InternetShare = 0
	}
	if c.InternetOnlyRoots <= 0 {
		c.InternetOnlyRoots = 40
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.10
	}
	return c
}

// Leaf is one server certificate with its chain and observation metadata.
type Leaf struct {
	// Chain is leaf-first: leaf [, intermediate] , root.
	Chain []*x509.Certificate
	// Port is the TCP port the certificate was observed on.
	Port int
	// Expired reports whether the leaf is expired at the Epoch.
	Expired bool
	// SeenAt is the observation instant, spread across the Notary's
	// collection window.
	SeenAt time.Time
	// RootName names the issuing root (universe name or internet-only CA).
	RootName string
}

// World is the generated TLS internet.
type World struct {
	cfg           Config
	universe      *cauniverse.Universe
	internetRoots []*certgen.Issued
	intermediates map[string]*certgen.Issued // per popular root
	leaves        []Leaf
}

// ports is the observation port mix (the Notary records any port, §4.2).
var ports = []struct {
	port   int
	weight float64
}{
	{443, 0.82}, {993, 0.05}, {465, 0.04}, {8443, 0.04}, {8883, 0.03}, {7275, 0.02},
}

// NewWorld generates the world deterministically from cfg.
func NewWorld(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	u := cfg.Universe
	w := &World{cfg: cfg, universe: u, intermediates: make(map[string]*certgen.Issued)}
	src := stats.NewSource(cfg.Seed)
	gen := u.Generator()

	// Internet-only CAs: private/corporate roots in no studied store.
	for i := 0; i < cfg.InternetOnlyRoots; i++ {
		ca, err := gen.SelfSignedCA(fmt.Sprintf("Internet Private CA %03d", i+1),
			certgen.WithOrganization("Private Infrastructure"), certgen.WithCountry("US"))
		if err != nil {
			return nil, fmt.Errorf("tlsnet: issuing internet CA: %w", err)
		}
		w.internetRoots = append(w.internetRoots, ca)
	}

	issuing := u.IssuingRoots()
	zipf, err := stats.NewZipf(len(issuing), cfg.ZipfS, 1.5)
	if err != nil {
		return nil, err
	}

	// The most popular roots issue through an intermediate, as real CAs do.
	const intermediateRanks = 25
	for i := 0; i < intermediateRanks && i < len(issuing); i++ {
		r := issuing[i]
		inter, err := gen.Intermediate(r.Issued, r.Name+" Intermediate G1")
		if err != nil {
			return nil, fmt.Errorf("tlsnet: issuing intermediate: %w", err)
		}
		w.intermediates[r.Name] = inter
	}

	w.leaves = make([]Leaf, 0, cfg.NumLeaves)
	for i := 0; i < cfg.NumLeaves; i++ {
		domain := fmt.Sprintf("host%06d.example.net", i)
		var (
			issuer   *certgen.Issued
			chainCAs []*x509.Certificate
			rootName string
		)
		if src.Float64() < cfg.InternetShare {
			ca := w.internetRoots[src.Intn(len(w.internetRoots))]
			issuer = ca
			chainCAs = []*x509.Certificate{ca.Cert}
			rootName = ca.Cert.Subject.CommonName
		} else {
			r := issuing[zipf.Sample(src)]
			rootName = r.Name
			if inter, ok := w.intermediates[r.Name]; ok {
				issuer = inter
				chainCAs = []*x509.Certificate{inter.Cert, r.Issued.Cert}
			} else {
				issuer = r.Issued
				chainCAs = []*x509.Certificate{r.Issued.Cert}
			}
		}
		opts := []certgen.Option{
			certgen.WithKeyName("tlsnet-shared-leaf-key"),
			certgen.WithOrganization("Server Operator"),
		}
		expired := src.Float64() < cfg.ExpiredFraction
		if expired {
			opts = append(opts, certgen.WithValidity(
				certgen.Epoch.AddDate(-3, 0, 0), certgen.Epoch.AddDate(-1, 0, 0)))
		} else {
			opts = append(opts, certgen.WithValidity(
				certgen.Epoch.AddDate(-1, 0, 0), certgen.Epoch.AddDate(2, 0, 0)))
		}
		leafCert, err := gen.Leaf(issuer, domain, opts...)
		if err != nil {
			return nil, fmt.Errorf("tlsnet: issuing leaf for %s: %w", domain, err)
		}
		chain := append([]*x509.Certificate{leafCert.Cert}, chainCAs...)
		pw := make([]float64, len(ports))
		for j, p := range ports {
			pw[j] = p.weight
		}
		w.leaves = append(w.leaves, Leaf{
			Chain:    chain,
			Port:     ports[src.PickWeighted(pw)].port,
			Expired:  expired,
			SeenAt:   certgen.Epoch.Add(time.Duration(src.Int64n(181*24)) * time.Hour),
			RootName: rootName,
		})
	}
	return w, nil
}

// Leaves returns all generated leaves.
func (w *World) Leaves() []Leaf { return w.leaves }

// Universe returns the CA universe behind the world.
func (w *World) Universe() *cauniverse.Universe { return w.universe }

// InternetOnlyRoots returns the store-less private CAs.
func (w *World) InternetOnlyRoots() []*certgen.Issued {
	out := make([]*certgen.Issued, len(w.internetRoots))
	copy(out, w.internetRoots)
	return out
}

// Intermediate returns the G1 intermediate for a popular root, or nil.
func (w *World) Intermediate(rootName string) *certgen.Issued {
	return w.intermediates[rootName]
}

// Epoch returns the world's observation reference time.
func (w *World) Epoch() time.Time { return certgen.Epoch }
