package tlsnet

import (
	"crypto/x509"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/notary"
	"tangledmass/internal/rootstore"
)

// Sink is a destination for the world's traffic: the bare in-memory
// Notary (via Feed), the durable notary.DB, or a sharded
// notaryshard.Cluster. Write methods return an error because durable and
// sharded sinks can refuse (fenced journal, failed shard); the in-memory
// Notary never does.
type Sink interface {
	ObserveAll(batch []notary.Observation) error
	ObserveCA(cert *x509.Certificate, port int) error
	ImportStore(s *rootstore.Store) error
}

// notarySink adapts the bare Notary's no-error write methods to Sink.
type notarySink struct{ n *notary.Notary }

func (s notarySink) ObserveAll(batch []notary.Observation) error {
	s.n.ObserveAll(batch)
	return nil
}
func (s notarySink) ObserveCA(cert *x509.Certificate, port int) error {
	s.n.ObserveCA(cert, port)
	return nil
}
func (s notarySink) ImportStore(st *rootstore.Store) error {
	s.n.ImportStore(st)
	return nil
}

// Feed streams the world's traffic into a Notary and imports the official
// root stores, reproducing the §4.2 database construction. It is FeedTo
// over the in-memory database, which cannot fail.
func Feed(w *World, n *notary.Notary) { _ = FeedTo(w, notarySink{n}) }

// FeedTo streams the world into any Sink:
//
//   - every leaf chain is observed on its port;
//   - the AOSP 4.4, Mozilla and iOS7 stores are imported (the Notary
//     carries the official store certificates);
//   - "Only Android" extras (Figure 2's recorded-but-store-less class) are
//     observed once in traffic, so the Notary has them on record;
//   - unrecorded extras, rooted-only roots and the interception root never
//     reach the Notary.
func FeedTo(w *World, sink Sink) error {
	leaves := w.Leaves()
	batch := make([]notary.Observation, len(leaves))
	for i, leaf := range leaves {
		batch[i] = notary.Observation{Chain: leaf.Chain, Port: leaf.Port, SeenAt: leaf.SeenAt}
	}
	if err := sink.ObserveAll(batch); err != nil {
		return err
	}
	u := w.Universe()
	for _, s := range []*rootstore.Store{u.AOSP("4.4"), u.Mozilla(), u.IOS7()} {
		if err := sink.ImportStore(s); err != nil {
			return err
		}
	}
	for _, r := range u.Roots() {
		if r.Class == cauniverse.ExtraAndroidRecorded {
			if err := sink.ObserveCA(r.Issued.Cert, 443); err != nil {
				return err
			}
		}
	}
	return nil
}
