package tlsnet

import (
	"tangledmass/internal/cauniverse"
	"tangledmass/internal/notary"
)

// Feed streams the world's traffic into a Notary and imports the official
// root stores, reproducing the §4.2 database construction:
//
//   - every leaf chain is observed on its port;
//   - the AOSP 4.4, Mozilla and iOS7 stores are imported (the Notary
//     carries the official store certificates);
//   - "Only Android" extras (Figure 2's recorded-but-store-less class) are
//     observed once in traffic, so the Notary has them on record;
//   - unrecorded extras, rooted-only roots and the interception root never
//     reach the Notary.
func Feed(w *World, n *notary.Notary) {
	leaves := w.Leaves()
	batch := make([]notary.Observation, len(leaves))
	for i, leaf := range leaves {
		batch[i] = notary.Observation{Chain: leaf.Chain, Port: leaf.Port, SeenAt: leaf.SeenAt}
	}
	n.ObserveAll(batch)
	u := w.Universe()
	n.ImportStore(u.AOSP("4.4"))
	n.ImportStore(u.Mozilla())
	n.ImportStore(u.IOS7())
	for _, r := range u.Roots() {
		if r.Class == cauniverse.ExtraAndroidRecorded {
			n.ObserveCA(r.Issued.Cert, 443)
		}
	}
}
