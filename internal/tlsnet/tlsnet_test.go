package tlsnet

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/chain"
)

var (
	worldOnce sync.Once
	testWorld *World
	worldErr  error
)

// smallWorld caches a 3,000-leaf world across tests.
func smallWorld(t *testing.T) *World {
	t.Helper()
	worldOnce.Do(func() {
		testWorld, worldErr = NewWorld(Config{Seed: 1, NumLeaves: 3000})
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return testWorld
}

func TestWorldShape(t *testing.T) {
	w := smallWorld(t)
	leaves := w.Leaves()
	if len(leaves) != 3000 {
		t.Fatalf("leaves = %d, want 3000", len(leaves))
	}
	internet, expired, withInter := 0, 0, 0
	byRoot := map[string]int{}
	for _, l := range leaves {
		if len(l.Chain) < 2 {
			t.Fatal("chain must include at least leaf and root")
		}
		if strings.HasPrefix(l.RootName, "Internet Private CA") {
			internet++
		}
		if l.Expired {
			expired++
		}
		if len(l.Chain) == 3 {
			withInter++
		}
		byRoot[l.RootName]++
	}
	if f := float64(internet) / 3000; f < 0.22 || f > 0.30 {
		t.Errorf("internet-only share = %.3f, want ≈0.26", f)
	}
	if f := float64(expired) / 3000; f < 0.05 || f > 0.11 {
		t.Errorf("expired share = %.3f, want ≈0.08", f)
	}
	if withInter == 0 {
		t.Error("popular roots should issue through intermediates")
	}
	// Popularity must be skewed: the most popular universe root beats the
	// median by a wide margin.
	u := w.Universe()
	top := byRoot[u.IssuingRoots()[0].Name]
	mid := byRoot[u.IssuingRoots()[90].Name]
	if top <= mid*3 {
		t.Errorf("popularity not skewed: top=%d mid=%d", top, mid)
	}
}

func TestLeafChainsVerify(t *testing.T) {
	w := smallWorld(t)
	for _, l := range w.Leaves()[:50] {
		root := l.Chain[len(l.Chain)-1]
		var inters []*x509.Certificate
		if len(l.Chain) == 3 {
			inters = append(inters, l.Chain[1])
		}
		v := chain.NewVerifier([]*x509.Certificate{root}, inters, certgen.Epoch)
		if got := v.Validates(l.Chain[0]); got != !l.Expired {
			t.Errorf("leaf %s validates=%v, expired=%v", l.Chain[0].Subject.CommonName, got, l.Expired)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Seed: 1}.withDefaults()
	if cfg.NumLeaves != 20000 || cfg.InternetShare != 0.26 || cfg.ZipfS != 1.10 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	neg := Config{Seed: 1, InternetShare: -1}.withDefaults()
	if neg.InternetShare != 0 {
		t.Errorf("negative InternetShare should mean 0, got %v", neg.InternetShare)
	}
}

func TestNoInternetShare(t *testing.T) {
	w, err := NewWorld(Config{Seed: 2, NumLeaves: 200, InternetShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range w.Leaves() {
		if strings.HasPrefix(l.RootName, "Internet Private CA") {
			t.Fatal("InternetShare<0 should issue all leaves under store roots")
		}
	}
}

func TestProbeTargetsUnique(t *testing.T) {
	targets := ProbeTargets()
	if len(targets) != len(InterceptedDomains)+len(WhitelistedDomains) {
		t.Errorf("targets = %d, want %d (orcart.facebook.com appears on two ports)",
			len(targets), len(InterceptedDomains)+len(WhitelistedDomains))
	}
	seen := map[string]bool{}
	for _, hp := range targets {
		if seen[hp.String()] {
			t.Errorf("duplicate target %s", hp)
		}
		seen[hp.String()] = true
	}
}

func TestSitesIssueValidChains(t *testing.T) {
	w := smallWorld(t)
	sites, err := NewSites(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites.All()) != len(ProbeTargets()) {
		t.Fatalf("sites = %d, want %d", len(sites.All()), len(ProbeTargets()))
	}
	for _, site := range sites.All() {
		root := site.Chain[len(site.Chain)-1]
		var inters []*x509.Certificate
		for _, c := range site.Chain[1 : len(site.Chain)-1] {
			inters = append(inters, c)
		}
		v := chain.NewVerifier([]*x509.Certificate{root}, inters, certgen.Epoch)
		if !v.Validates(site.Chain[0]) {
			t.Errorf("site %s chain does not validate", site.Host)
		}
		if site.Chain[0].Subject.CommonName != site.Host {
			t.Errorf("site %s leaf CN = %s", site.Host, site.Chain[0].Subject.CommonName)
		}
	}
	if sites.Lookup("gmail.com", 443) == nil {
		t.Error("Lookup(gmail.com:443) failed")
	}
	if sites.Lookup("gmail.com", 80) != nil {
		t.Error("Lookup on wrong port should be nil")
	}
	if sites.LookupHost("supl.google.com") == nil {
		t.Error("LookupHost(supl.google.com) failed")
	}
}

func TestServerHandshake(t *testing.T) {
	w := smallWorld(t)
	sites, err := NewSites(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeSites(sites)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dialer := DirectDialer{Server: srv}
	for _, host := range []string{"www.google.com", "gmail.com", "www.twitter.com"} {
		site := sites.LookupHost(host)
		if site == nil {
			t.Fatalf("no site for %s", host)
		}
		// Trust set: the site's own root; clock pinned to the Epoch.
		pool := x509.NewCertPool()
		pool.AddCert(site.Chain[len(site.Chain)-1])

		conn, err := dialer.DialSite(context.Background(), site.Host, site.Port)
		if err != nil {
			t.Fatal(err)
		}
		tconn := tls.Client(conn, &tls.Config{
			ServerName: site.Host,
			RootCAs:    pool,
			Time:       func() time.Time { return certgen.Epoch },
		})
		if err := tconn.Handshake(); err != nil {
			t.Fatalf("handshake with %s: %v", host, err)
		}
		peers := tconn.ConnectionState().PeerCertificates
		if len(peers) != len(site.Chain)-1 {
			t.Errorf("%s presented %d certs, want %d (leaf + intermediates)",
				host, len(peers), len(site.Chain)-1)
		}
		if peers[0].Subject.CommonName != host {
			t.Errorf("%s presented leaf CN %s", host, peers[0].Subject.CommonName)
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(tconn, buf); err != nil || string(buf) != "220 " {
			t.Errorf("%s banner read: %q, %v", host, buf, err)
		}
		tconn.Close()
	}
}

func TestServerRejectsUnknownSNI(t *testing.T) {
	w := smallWorld(t)
	sites, err := NewSites(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeSites(sites)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := DirectDialer{Server: srv}.DialSite(context.Background(), "nonexistent.example", 443)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tconn := tls.Client(conn, &tls.Config{
		ServerName:         "nonexistent.example",
		InsecureSkipVerify: true,
	})
	if err := tconn.Handshake(); err == nil {
		t.Error("handshake for unknown site should fail")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	w := smallWorld(t)
	sites, err := NewSites(w)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeSites(sites)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestLeafObservationTimes(t *testing.T) {
	w := smallWorld(t)
	windowEnd := certgen.Epoch.AddDate(0, 6, 0)
	months := map[string]bool{}
	for _, l := range w.Leaves() {
		if l.SeenAt.Before(certgen.Epoch) || l.SeenAt.After(windowEnd) {
			t.Fatalf("observation %v outside the collection window", l.SeenAt)
		}
		months[l.SeenAt.Format("2006-01")] = true
	}
	if len(months) < 6 {
		t.Errorf("observations span %d months, want 6", len(months))
	}
}
