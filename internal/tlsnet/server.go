package tlsnet

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Server is the in-process TLS origin for every named site: one loopback
// listener that selects the serving certificate by SNI, so a client can
// reach any site through a single address. It stands in for "the internet"
// when the measurement client or the interception proxy dials out.
type Server struct {
	ln    net.Listener
	sites *Sites

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ServeSites starts a TLS server on 127.0.0.1 (ephemeral port) serving every
// site in sites, chosen by SNI. Close must be called to release it.
func ServeSites(sites *Sites) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("tlsnet: listening: %w", err)
	}
	s := &Server{ln: ln, sites: sites}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

var errUnknownSite = errors.New("tlsnet: no certificate for requested server name")

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	tconn := tls.Server(conn, &tls.Config{
		GetCertificate: func(hello *tls.ClientHelloInfo) (*tls.Certificate, error) {
			site := s.sites.LookupHost(hello.ServerName)
			if site == nil {
				return nil, fmt.Errorf("%w: %q", errUnknownSite, hello.ServerName)
			}
			return &site.Credential, nil
		},
	})
	if err := tconn.Handshake(); err != nil {
		return
	}
	// A one-line banner; enough for clients that read after handshaking.
	// The handler ends here either way, so a failed write needs no handling.
	_, _ = fmt.Fprintf(tconn, "220 %s tangledmass-tls ready\r\n", tconn.ConnectionState().ServerName)
}

// Dialer connects to a named service. The direct implementation goes
// straight to the origin Server; the interception proxy wraps one.
type Dialer interface {
	// DialSite opens a TCP connection intended for host:port. The context
	// bounds connection establishment — cancel it and the dial unblocks.
	// The caller performs the TLS handshake (with SNI = host) on the
	// returned conn.
	DialSite(ctx context.Context, host string, port int) (net.Conn, error)
}

// DirectDialer routes every site to the origin server.
type DirectDialer struct {
	Server *Server
}

// DialSite implements Dialer.
func (d DirectDialer) DialSite(ctx context.Context, host string, port int) (net.Conn, error) {
	dialer := &net.Dialer{Timeout: 10 * time.Second}
	return dialer.DialContext(ctx, "tcp", d.Server.Addr())
}
