package tlsnet

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"

	"tangledmass/internal/certgen"
)

// HostPort names one probe target.
type HostPort struct {
	Host string
	Port int
}

func (hp HostPort) String() string { return fmt.Sprintf("%s:%d", hp.Host, hp.Port) }

// InterceptedDomains and WhitelistedDomains reproduce Table 6: the domains
// the marketing proxy intercepted versus those it tunneled untouched
// (services with certificate pinning, Google's SUPL port, Facebook chat).
var InterceptedDomains = []HostPort{
	{"gmail.com", 443},
	{"mail.google.com", 443},
	{"mail.yahoo.com", 443},
	{"orcart.facebook.com", 443},
	{"www.bankofamerica.com", 443},
	{"www.chase.com", 443},
	{"www.hsbc.com", 443},
	{"www.icsi.berkeley.edu", 443},
	{"www.outlook.com", 443},
	{"www.skype.com", 443},
	{"www.viber.com", 443},
	{"www.yahoo.com", 443},
}

var WhitelistedDomains = []HostPort{
	{"google-analytics.com", 443},
	{"maps.google.com", 443},
	{"orcart.facebook.com", 8883},
	{"play.google.com", 443},
	{"supl.google.com", 7275},
	{"www.facebook.com", 443},
	{"www.google.com", 443},
	{"www.google.co.uk", 443},
	{"www.twitter.com", 443},
}

// ProbeTargets is the union of Table 6's domains — the domain list Netalyzr
// checks the full trust chain for (§7).
func ProbeTargets() []HostPort {
	seen := map[string]bool{}
	var out []HostPort
	for _, hp := range append(append([]HostPort{}, InterceptedDomains...), WhitelistedDomains...) {
		if !seen[hp.String()] {
			seen[hp.String()] = true
			out = append(out, hp)
		}
	}
	return out
}

// PinnedHosts are the services whose apps implement certificate pinning
// (§2, §7: Facebook, Twitter, most Google services).
var PinnedHosts = map[string]bool{
	"www.facebook.com":    true,
	"orcart.facebook.com": true,
	"www.twitter.com":     true,
	"www.google.com":      true,
	"www.google.co.uk":    true,
	"maps.google.com":     true,
	"play.google.com":     true,
	"supl.google.com":     true,
}

// Site is one named TLS service with its legitimate certificate chain.
type Site struct {
	HostPort
	// Chain is leaf-first: leaf, intermediate, root.
	Chain []*x509.Certificate
	// Credential is the serving certificate (leaf + intermediate) and key.
	Credential tls.Certificate
	// Root is the issuing root's universe name.
	Root string
}

// Sites is the directory of named services.
type Sites struct {
	byKey map[string]*Site
	list  []*Site
}

// NewSites issues a legitimate certificate chain for every probe target,
// rotating across the most popular shared roots (via their intermediates
// when present in w, or directly off the root otherwise).
func NewSites(w *World) (*Sites, error) {
	u := w.Universe()
	gen := u.Generator()
	issuing := u.IssuingRoots()
	s := &Sites{byKey: make(map[string]*Site)}
	for i, hp := range ProbeTargets() {
		root := issuing[i%12] // the dozen most popular roots
		signer := root.Issued
		chainCAs := []*x509.Certificate{root.Issued.Cert}
		if inter := w.Intermediate(root.Name); inter != nil {
			signer = inter
			chainCAs = []*x509.Certificate{inter.Cert, root.Issued.Cert}
		}
		leaf, err := gen.Leaf(signer, hp.Host,
			certgen.WithOrganization("Site Operator"),
			certgen.WithValidity(certgen.Epoch.AddDate(-1, 0, 0), certgen.Epoch.AddDate(2, 0, 0)))
		if err != nil {
			return nil, fmt.Errorf("tlsnet: issuing site cert for %s: %w", hp.Host, err)
		}
		chain := append([]*x509.Certificate{leaf.Cert}, chainCAs...)
		cred := tls.Certificate{PrivateKey: leaf.Key}
		for _, c := range chain[:len(chain)-1] { // serve leaf + intermediates, not the root
			cred.Certificate = append(cred.Certificate, c.Raw)
		}
		site := &Site{HostPort: hp, Chain: chain, Credential: cred, Root: root.Name}
		s.byKey[hp.String()] = site
		s.list = append(s.list, site)
	}
	return s, nil
}

// Lookup returns the site for host:port, or nil.
func (s *Sites) Lookup(host string, port int) *Site {
	return s.byKey[HostPort{host, port}.String()]
}

// LookupHost returns the first site with the given host on any port, or nil.
func (s *Sites) LookupHost(host string) *Site {
	for _, site := range s.list {
		if site.Host == host {
			return site
		}
	}
	return nil
}

// All returns every site.
func (s *Sites) All() []*Site {
	out := make([]*Site, len(s.list))
	copy(out, s.list)
	return out
}
