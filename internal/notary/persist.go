package notary

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"tangledmass/internal/corpus"
)

// Snapshot is the serialized form of a Notary database. The real Notary
// aggregates into a central database that outlives any one process (§4.2,
// "aggregating them into a central database"); Save/Load give the
// reproduction the same property.
//
// Version history:
//
//   - v1 stored each entry's DER inline, so a certificate recorded in many
//     snapshots (or appearing once per entry) was encoded redundantly.
//   - v2 stores one deduplicated DER table for the whole snapshot and has
//     entries reference it by index — the on-disk mirror of the in-memory
//     corpus. Load accepts both.
//
// The struct is the superset of both formats: gob leaves fields absent
// from the stream at their zero values, so one decoder serves every
// version.
type snapshot struct {
	// Version guards the format.
	Version int
	At      time.Time
	// Sessions is the observation count.
	Sessions int64
	// DER is the deduplicated certificate table (v2+): one encoding per
	// distinct certificate, ordered by SHA-1 fingerprint.
	DER     [][]byte
	Entries []snapshotEntry
}

type snapshotEntry struct {
	// DER is the certificate encoding, inline (v1 snapshots only).
	DER []byte
	// Cert indexes the snapshot's DER table (v2+).
	Cert       int
	SeenAsLeaf bool
	FromStore  bool
	Sessions   int64
	FirstSeen  time.Time
	LastSeen   time.Time
	// Ports is sorted by port so identical databases serialize
	// byte-identically (gob map encoding is order-dependent).
	Ports []portCount
}

type portCount struct {
	Port  int
	Count int64
}

const snapshotVersion = 2

// Save writes the database to w in a self-describing binary format.
// Entries are ordered by SHA-1 fingerprint, so identical databases produce
// byte-identical snapshots regardless of observation order.
func (n *Notary) Save(w io.Writer) error {
	n.mu.RLock()
	snap := snapshot{Version: snapshotVersion, At: n.at, Sessions: n.sessions}
	refs := make([]sortRef, 0, len(n.entries))
	for ref := range n.entries {
		refs = append(refs, sortRef{fp: n.c.SHA1(ref), ref: ref})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].fp < refs[j].fp })
	for i, sr := range refs {
		e := n.entries[sr.ref]
		ports := make([]portCount, 0, len(e.Ports))
		for p, c := range e.Ports {
			ports = append(ports, portCount{Port: p, Count: c})
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i].Port < ports[j].Port })
		snap.DER = append(snap.DER, n.c.DER(sr.ref))
		snap.Entries = append(snap.Entries, snapshotEntry{
			Cert:       i,
			SeenAsLeaf: e.SeenAsLeaf,
			FromStore:  e.FromStore,
			Sessions:   e.Sessions,
			FirstSeen:  e.FirstSeen,
			LastSeen:   e.LastSeen,
			Ports:      ports,
		})
	}
	n.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("notary: encoding snapshot: %w", err)
	}
	return nil
}

type sortRef struct {
	fp  string
	ref corpus.Ref
}

// Load reads a database written by Save — the current format or the v1
// inline-DER layout. The snapshot's reference time is restored with it.
// Certificates are interned through the corpus on the way in; opts are
// applied to the restored Notary (e.g. WithCorpus, WithObserver).
func Load(r io.Reader, opts ...Option) (*Notary, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("notary: decoding snapshot: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("notary: unsupported snapshot version %d", snap.Version)
	}
	n := New(snap.At, opts...)
	n.sessions = snap.Sessions
	for _, se := range snap.Entries {
		der := se.DER
		if snap.Version >= 2 {
			if se.Cert < 0 || se.Cert >= len(snap.DER) {
				return nil, fmt.Errorf("notary: snapshot entry references certificate %d of %d", se.Cert, len(snap.DER))
			}
			der = snap.DER[se.Cert]
		}
		ref, err := n.c.Intern(der)
		if err != nil {
			return nil, fmt.Errorf("notary: snapshot certificate: %w", err)
		}
		e := n.entryRef(ref)
		e.SeenAsLeaf = se.SeenAsLeaf
		e.FromStore = se.FromStore
		e.Sessions = se.Sessions
		e.FirstSeen = se.FirstSeen
		e.LastSeen = se.LastSeen
		for _, pc := range se.Ports {
			e.Ports[pc.Port] = pc.Count
		}
	}
	return n, nil
}

// SaveFile writes the database to path atomically (write + rename).
func (n *Notary) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("notary: creating %s: %w", tmp, err)
	}
	if err := n.Save(f); err != nil {
		_ = f.Close() // best-effort cleanup: the Save error wins
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("notary: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("notary: renaming snapshot: %w", err)
	}
	return nil
}

// LoadFile reads a database from path.
func LoadFile(path string, opts ...Option) (*Notary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("notary: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f, opts...)
}
