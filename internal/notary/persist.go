package notary

import (
	"crypto/x509"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Snapshot is the serialized form of a Notary database. The real Notary
// aggregates into a central database that outlives any one process (§4.2,
// "aggregating them into a central database"); Save/Load give the
// reproduction the same property.
type snapshot struct {
	// Version guards the format.
	Version int
	At      time.Time
	// Sessions is the observation count.
	Sessions int64
	Entries  []snapshotEntry
}

type snapshotEntry struct {
	DER        []byte
	SeenAsLeaf bool
	FromStore  bool
	Sessions   int64
	FirstSeen  time.Time
	LastSeen   time.Time
	// Ports is sorted by port so identical databases serialize
	// byte-identically (gob map encoding is order-dependent).
	Ports []portCount
}

type portCount struct {
	Port  int
	Count int64
}

const snapshotVersion = 1

// Save writes the database to w in a self-describing binary format.
func (n *Notary) Save(w io.Writer) error {
	n.mu.RLock()
	snap := snapshot{Version: snapshotVersion, At: n.at, Sessions: n.sessions}
	fps := make([]string, 0, len(n.entries))
	for fp := range n.entries {
		fps = append(fps, fp)
	}
	sort.Strings(fps) // deterministic files for identical databases
	for _, fp := range fps {
		e := n.entries[fp]
		ports := make([]portCount, 0, len(e.Ports))
		for p, c := range e.Ports {
			ports = append(ports, portCount{Port: p, Count: c})
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i].Port < ports[j].Port })
		snap.Entries = append(snap.Entries, snapshotEntry{
			DER:        e.Cert.Raw,
			SeenAsLeaf: e.SeenAsLeaf,
			FromStore:  e.FromStore,
			Sessions:   e.Sessions,
			FirstSeen:  e.FirstSeen,
			LastSeen:   e.LastSeen,
			Ports:      ports,
		})
	}
	n.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("notary: encoding snapshot: %w", err)
	}
	return nil
}

// Load reads a database written by Save. The snapshot's reference time is
// restored with it.
func Load(r io.Reader) (*Notary, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("notary: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("notary: unsupported snapshot version %d", snap.Version)
	}
	n := New(snap.At)
	n.sessions = snap.Sessions
	for _, se := range snap.Entries {
		cert, err := x509.ParseCertificate(se.DER)
		if err != nil {
			return nil, fmt.Errorf("notary: snapshot certificate: %w", err)
		}
		e := n.entry(cert)
		e.SeenAsLeaf = se.SeenAsLeaf
		e.FromStore = se.FromStore
		e.Sessions = se.Sessions
		e.FirstSeen = se.FirstSeen
		e.LastSeen = se.LastSeen
		for _, pc := range se.Ports {
			e.Ports[pc.Port] = pc.Count
		}
	}
	return n, nil
}

// SaveFile writes the database to path atomically (write + rename).
func (n *Notary) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("notary: creating %s: %w", tmp, err)
	}
	if err := n.Save(f); err != nil {
		_ = f.Close()   // best-effort cleanup: the Save error wins
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("notary: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("notary: renaming snapshot: %w", err)
	}
	return nil
}

// LoadFile reads a database from path.
func LoadFile(path string) (*Notary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("notary: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
