package notary

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"time"

	"tangledmass/internal/corpus"
	"tangledmass/internal/faultfs"
)

// Snapshot is the serialized form of a Notary database. The real Notary
// aggregates into a central database that outlives any one process (§4.2,
// "aggregating them into a central database"); Save/Load give the
// reproduction the same property.
//
// Version history:
//
//   - v1 stored each entry's DER inline, so a certificate recorded in many
//     snapshots (or appearing once per entry) was encoded redundantly.
//   - v2 stores one deduplicated DER table for the whole snapshot and has
//     entries reference it by index — the on-disk mirror of the in-memory
//     corpus.
//   - v3 wraps the v2 payload in a crash-evident envelope: a fixed magic
//     prefix and a SHA-256 trailer over everything before it. A torn or
//     bit-flipped snapshot fails the checksum instead of decoding into
//     silently partial state. Load accepts all three.
//
// The struct is the superset of the gob formats: gob leaves fields absent
// from the stream at their zero values, so one decoder serves every
// version.
type snapshot struct {
	// Version guards the format.
	Version int
	At      time.Time
	// Sessions is the observation count.
	Sessions int64
	// DER is the deduplicated certificate table (v2+): one encoding per
	// distinct certificate, ordered by SHA-1 fingerprint.
	DER     [][]byte
	Entries []snapshotEntry
}

type snapshotEntry struct {
	// DER is the certificate encoding, inline (v1 snapshots only).
	DER []byte
	// Cert indexes the snapshot's DER table (v2+).
	Cert       int
	SeenAsLeaf bool
	FromStore  bool
	Sessions   int64
	FirstSeen  time.Time
	LastSeen   time.Time
	// Ports is sorted by port so identical databases serialize
	// byte-identically (gob map encoding is order-dependent).
	Ports []portCount
}

type portCount struct {
	Port  int
	Count int64
}

const snapshotVersion = 3

// snapshotMagic opens every v3 snapshot. Legacy v1/v2 files are bare gob
// streams; gob's own framing can never begin with this byte sequence, so
// the prefix is an unambiguous version switch.
const snapshotMagic = "TANGLED-NOTARY-SNAP3\n"

// Save writes the database to w in the v3 checksummed format: magic
// prefix, gob payload, SHA-256 trailer over both. Entries are ordered by
// SHA-1 fingerprint, so identical databases produce byte-identical
// snapshots regardless of observation order.
func (n *Notary) Save(w io.Writer) error {
	n.mu.RLock()
	snap := snapshot{Version: snapshotVersion, At: n.at, Sessions: n.sessions}
	refs := make([]sortRef, 0, len(n.entries))
	for ref := range n.entries {
		refs = append(refs, sortRef{fp: n.c.SHA1(ref), ref: ref})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].fp < refs[j].fp })
	for i, sr := range refs {
		e := n.entries[sr.ref]
		ports := make([]portCount, 0, len(e.Ports))
		for p, c := range e.Ports {
			ports = append(ports, portCount{Port: p, Count: c})
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i].Port < ports[j].Port })
		snap.DER = append(snap.DER, n.c.DER(sr.ref))
		snap.Entries = append(snap.Entries, snapshotEntry{
			Cert:       i,
			SeenAsLeaf: e.SeenAsLeaf,
			FromStore:  e.FromStore,
			Sessions:   e.Sessions,
			FirstSeen:  e.FirstSeen,
			LastSeen:   e.LastSeen,
			Ports:      ports,
		})
	}
	n.mu.RUnlock()

	var payload bytes.Buffer
	payload.WriteString(snapshotMagic)
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return fmt.Errorf("notary: encoding snapshot: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	payload.Write(sum[:])
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("notary: writing snapshot: %w", err)
	}
	return nil
}

type sortRef struct {
	fp  string
	ref corpus.Ref
}

// Load reads a database written by Save — the checksummed v3 envelope or
// the legacy v1/v2 bare-gob layouts. The snapshot's reference time is
// restored with it. A v3 snapshot that is truncated or corrupted anywhere
// fails the SHA-256 check; legacy snapshots are rejected on any decode,
// version, index, or certificate-parse inconsistency rather than loaded
// partially. Certificates are interned through the corpus on the way in;
// opts are applied to the restored Notary (e.g. WithCorpus, WithObserver).
func Load(r io.Reader, opts ...Option) (*Notary, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("notary: reading snapshot: %w", err)
	}
	var snap snapshot
	if bytes.HasPrefix(data, []byte(snapshotMagic)) {
		if len(data) < len(snapshotMagic)+sha256.Size {
			return nil, fmt.Errorf("notary: snapshot truncated before checksum trailer (%d bytes)", len(data))
		}
		body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
		if sum := sha256.Sum256(body); !bytes.Equal(sum[:], trailer) {
			return nil, fmt.Errorf("notary: snapshot checksum mismatch (torn or corrupted write)")
		}
		if err := gob.NewDecoder(bytes.NewReader(body[len(snapshotMagic):])).Decode(&snap); err != nil {
			return nil, fmt.Errorf("notary: decoding v3 snapshot: %w", err)
		}
		if snap.Version != snapshotVersion {
			return nil, fmt.Errorf("notary: v3 envelope carries version %d", snap.Version)
		}
	} else {
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
			return nil, fmt.Errorf("notary: decoding snapshot: %w", err)
		}
		if snap.Version < 1 || snap.Version > 2 {
			return nil, fmt.Errorf("notary: unsupported snapshot version %d", snap.Version)
		}
	}
	if snap.Sessions < 0 {
		return nil, fmt.Errorf("notary: snapshot carries negative session count %d", snap.Sessions)
	}
	n := New(snap.At, opts...)
	n.sessions = snap.Sessions
	for _, se := range snap.Entries {
		der := se.DER
		if snap.Version >= 2 {
			if se.Cert < 0 || se.Cert >= len(snap.DER) {
				return nil, fmt.Errorf("notary: snapshot entry references certificate %d of %d", se.Cert, len(snap.DER))
			}
			der = snap.DER[se.Cert]
		}
		ref, err := n.c.Intern(der)
		if err != nil {
			return nil, fmt.Errorf("notary: snapshot certificate: %w", err)
		}
		e := n.entryRef(ref)
		e.SeenAsLeaf = se.SeenAsLeaf
		e.FromStore = se.FromStore
		e.Sessions = se.Sessions
		e.FirstSeen = se.FirstSeen
		e.LastSeen = se.LastSeen
		for _, pc := range se.Ports {
			e.Ports[pc.Port] = pc.Count
		}
	}
	return n, nil
}

// SaveFile writes the database to path crash-safely: write to a temporary
// name, fsync the file, rename over the final name, and fsync the
// containing directory. A crash at any point leaves either the old
// snapshot or the new one under the final name — never an empty or torn
// file.
func (n *Notary) SaveFile(path string) error {
	dir := filepath.Dir(path)
	return n.saveFS(faultfs.Disk, dir, filepath.Base(path))
}

// saveFS is SaveFile over an arbitrary filesystem — the durability layer
// routes checkpoints through it so the fault injector and crash harness
// can drive every I/O step.
func (n *Notary) saveFS(fsys faultfs.FS, dir, base string) error {
	final := faultfs.Join(dir, base)
	tmp := final + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("notary: creating %s: %w", tmp, err)
	}
	if err := n.Save(f); err != nil {
		_ = f.Close() // best-effort cleanup: the Save error wins
		_ = fsys.Remove(tmp)
		return err
	}
	// fsync before rename: the rename must never publish a name whose
	// content is still in the page cache only.
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("notary: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("notary: closing %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("notary: renaming snapshot: %w", err)
	}
	// fsync the directory so the rename itself survives a crash.
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("notary: syncing directory %s: %w", dir, err)
	}
	return nil
}

// SaveFileIn is SaveFile over an arbitrary filesystem — the crash harness
// drives the write-fsync-rename-fsync protocol through MemFS with it.
func (n *Notary) SaveFileIn(fsys faultfs.FS, dir, base string) error {
	return n.saveFS(fsys, dir, base)
}

// LoadFile reads a database from path.
func LoadFile(path string, opts ...Option) (*Notary, error) {
	return loadFS(faultfs.Disk, path, opts...)
}

// loadFS is LoadFile over an arbitrary filesystem.
func loadFS(fsys faultfs.FS, path string, opts ...Option) (*Notary, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("notary: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f, opts...)
}
