// Package notary reimplements the ICSI Certificate Notary substrate (§4.2):
// a passive database of certificates observed in live TLS traffic on any
// port, aggregated with first/last-seen times, plus the validation analyses
// the paper runs on it — per-store validation totals (Table 3), per-category
// zero-validation shares (Table 4), and per-root validation counts (the
// ECDF of Figure 3).
package notary

import (
	"context"
	"crypto/x509"
	"fmt"
	"sort"
	"sync"
	"time"

	"tangledmass/internal/certid"
	"tangledmass/internal/chain"
	"tangledmass/internal/obs"
	"tangledmass/internal/parallel"
	"tangledmass/internal/rootstore"
)

// Observation is one certificate chain seen on the wire.
type Observation struct {
	// Chain is leaf-first, as presented by the server.
	Chain []*x509.Certificate
	// Port is the TCP port the session used.
	Port int
	// SeenAt is the observation instant; zero means the Notary's reference
	// time.
	SeenAt time.Time
}

// Entry is the Notary's record for one unique certificate (uniqueness by
// SHA-1 of the DER encoding, the "certificate signature" identity of §4.1).
type Entry struct {
	Cert *x509.Certificate
	// SeenAsLeaf reports whether the certificate ever appeared in leaf
	// position.
	SeenAsLeaf bool
	// FromStore reports whether the certificate was imported from an
	// official root store rather than observed in traffic.
	FromStore bool
	// Sessions counts observations that included this certificate.
	Sessions int64
	// Ports is the set of ports the certificate was seen on.
	Ports map[int]int64
	// FirstSeen and LastSeen bound the observation window for this
	// certificate (zero for store-imported entries never seen in traffic).
	FirstSeen time.Time
	LastSeen  time.Time
}

// Notary is the certificate database. Construct with New; safe for
// concurrent Observe calls.
type Notary struct {
	at       time.Time
	observer *obs.Observer
	cache    *chain.Cache
	cacheSet bool // WithChainCache was applied (possibly with nil)
	workers  int

	mu       sync.RWMutex
	entries  map[string]*Entry // by SHA-1 fingerprint
	byID     map[certid.Identity]bool
	sessions int64
}

// Option configures a Notary at construction.
type Option func(*Notary)

// WithObserver instruments validation passes and batched ingest, and
// attaches the chain cache's hit/miss counters. Nil observers no-op.
func WithObserver(o *obs.Observer) Option {
	return func(n *Notary) { n.observer = o }
}

// WithChainCache replaces the default chain-validation cache. Pass nil to
// disable caching entirely (every lookup rebuilds chains) — the baseline
// the cache invariant tests compare against.
func WithChainCache(c *chain.Cache) Option {
	return func(n *Notary) { n.cache, n.cacheSet = c, true }
}

// WithWorkers bounds the validation and ingest fan-out. Values < 1 (the
// default) mean runtime.GOMAXPROCS.
func WithWorkers(w int) Option {
	return func(n *Notary) { n.workers = w }
}

// New returns an empty Notary that evaluates expiry at the instant at.
// By default validation outcomes are memoized in a chain.Cache sized
// chain.DefaultCacheCapacity; see WithChainCache.
func New(at time.Time, opts ...Option) *Notary {
	n := &Notary{
		at:      at,
		entries: make(map[string]*Entry),
		byID:    make(map[certid.Identity]bool),
	}
	for _, opt := range opts {
		opt(n)
	}
	if !n.cacheSet {
		n.cache = chain.NewCache(0, chain.WithCacheObserver(n.observer))
	}
	return n
}

// CacheStats returns the chain-validation cache's cumulative hit/miss/
// eviction tallies (zeros when caching is disabled).
func (n *Notary) CacheStats() chain.CacheStats { return n.cache.Stats() }

// At returns the Notary's reference time.
func (n *Notary) At() time.Time { return n.at }

// Observe records one live-traffic chain.
func (n *Notary) Observe(o Observation) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observeLocked(o, nil)
}

// ObserveAll records a batch of chains in one pass. Fingerprinting every
// chain member — the CPU-bound part of ingest — runs on the parallel
// engine; the database mutation is applied serially in input order under
// one lock acquisition, so the result is identical to calling Observe in
// a loop over the batch.
func (n *Notary) ObserveAll(batch []Observation) {
	n.observer.Counter(KeyIngestChains).Add(int64(len(batch)))
	// The error is ctx cancellation only; the background context never ends.
	fps, _ := parallel.Map(context.Background(), len(batch),
		func(_ context.Context, i int) ([]string, error) {
			out := make([]string, len(batch[i].Chain))
			for j, c := range batch[i].Chain {
				out[j] = certid.SHA1Fingerprint(c)
			}
			return out, nil
		},
		parallel.WithWorkers(n.workers), parallel.WithObserver(n.observer))
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, o := range batch {
		n.observeLocked(o, fps[i])
	}
}

// observeLocked applies one observation. fps, when non-nil, carries the
// precomputed SHA-1 fingerprint of every chain member. Caller holds mu.
func (n *Notary) observeLocked(o Observation, fps []string) {
	if len(o.Chain) == 0 {
		return
	}
	at := o.SeenAt
	if at.IsZero() {
		at = n.at
	}
	n.sessions++
	for i, cert := range o.Chain {
		var e *Entry
		if fps != nil {
			e = n.entryFP(fps[i], cert)
		} else {
			e = n.entry(cert)
		}
		e.Sessions++
		e.Ports[o.Port]++
		e.touch(at)
		if i == 0 {
			e.SeenAsLeaf = true
		}
	}
}

// touch updates an entry's observation window.
func (e *Entry) touch(at time.Time) {
	if e.FirstSeen.IsZero() || at.Before(e.FirstSeen) {
		e.FirstSeen = at
	}
	if at.After(e.LastSeen) {
		e.LastSeen = at
	}
}

// ObserveCA records a CA certificate seen inside live traffic without leaf
// position — e.g. a root served as part of a chain, or gathered by a scan.
// The certificate becomes "recorded" (HasRecord) but is not a validation
// subject for the Table 3/4 counting, which runs over leaf certificates.
func (n *Notary) ObserveCA(cert *x509.Certificate, port int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sessions++
	e := n.entry(cert)
	e.Sessions++
	e.Ports[port]++
	e.touch(n.at)
}

// ImportStore loads an official root store's certificates into the database
// without marking them as traffic (§4.2: the Notary also contains the
// certificates of the Android, iOS7 and Mozilla root stores).
func (n *Notary) ImportStore(s *rootstore.Store) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, cert := range s.Certificates() {
		e := n.entry(cert)
		e.FromStore = true
	}
}

// entry returns (creating if needed) the record for cert. Caller holds mu.
func (n *Notary) entry(cert *x509.Certificate) *Entry {
	return n.entryFP(certid.SHA1Fingerprint(cert), cert)
}

// entryFP is entry with the fingerprint already computed. Caller holds mu.
func (n *Notary) entryFP(fp string, cert *x509.Certificate) *Entry {
	e, ok := n.entries[fp]
	if !ok {
		e = &Entry{Cert: cert, Ports: make(map[int]int64)}
		n.entries[fp] = e
		n.byID[certid.IdentityOf(cert)] = true
	}
	return e
}

// Lookup returns a copy of the record for cert (matched by exact DER), or
// nil when the Notary has never stored that encoding.
func (n *Notary) Lookup(cert *x509.Certificate) *Entry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e, ok := n.entries[certid.SHA1Fingerprint(cert)]
	if !ok {
		return nil
	}
	cp := *e
	cp.Ports = make(map[int]int64, len(e.Ports))
	for p, c := range e.Ports {
		cp.Ports[p] = c
	}
	return &cp
}

// Sessions returns the number of observed TLS sessions.
func (n *Notary) Sessions() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.sessions
}

// NumUnique returns the number of unique certificates on record.
func (n *Notary) NumUnique() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.entries)
}

// NumUnexpired returns how many recorded certificates are valid at the
// reference time (the paper's "one million have not expired").
func (n *Notary) NumUnexpired() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	c := 0
	for _, e := range n.entries {
		if n.unexpired(e.Cert) {
			c++
		}
	}
	return c
}

func (n *Notary) unexpired(c *x509.Certificate) bool {
	return !n.at.Before(c.NotBefore) && !n.at.After(c.NotAfter)
}

// HasRecord reports whether the Notary knows the certificate — from traffic
// or store import — under the paper's identity (subject + key), so re-issued
// instances match.
func (n *Notary) HasRecord(cert *x509.Certificate) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.byID[certid.IdentityOf(cert)]
}

// unexpiredLeaves returns the non-expired certificates seen in leaf
// position, in deterministic order.
func (n *Notary) unexpiredLeaves() []*x509.Certificate {
	n.mu.RLock()
	defer n.mu.RUnlock()
	fps := make([]string, 0, len(n.entries))
	for fp, e := range n.entries {
		if e.SeenAsLeaf && n.unexpired(e.Cert) {
			fps = append(fps, fp)
		}
	}
	sort.Strings(fps)
	out := make([]*x509.Certificate, len(fps))
	for i, fp := range fps {
		out[i] = n.entries[fp].Cert
	}
	return out
}

// observedCAs returns the CA certificates on record (traffic or import) that
// are not in leaf position — the intermediate pool for path building.
func (n *Notary) observedCAs() []*x509.Certificate {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []*x509.Certificate
	for _, e := range n.entries {
		if e.Cert.IsCA {
			out = append(out, e.Cert)
		}
	}
	return out
}

// PortCount is one row of the port distribution.
type PortCount struct {
	Port     int
	Sessions int64
}

// PortDistribution returns per-port observation counts, busiest first —
// quantifying §4.2's "certificates passively from live upstream traffic to
// any port".
func (n *Notary) PortDistribution() []PortCount {
	n.mu.RLock()
	agg := map[int]int64{}
	for _, e := range n.entries {
		if !e.SeenAsLeaf {
			continue
		}
		for p, c := range e.Ports {
			agg[p] += c
		}
	}
	n.mu.RUnlock()
	out := make([]PortCount, 0, len(agg))
	for p, c := range agg {
		out = append(out, PortCount{Port: p, Sessions: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sessions != out[j].Sessions {
			return out[i].Sessions > out[j].Sessions
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// StoreReport is the validation result for one root store.
type StoreReport struct {
	Store *rootstore.Store
	// Validated is how many non-expired Notary leaf certificates chain to
	// at least one root of the store (Table 3).
	Validated int
	// PerRoot maps every root identity in the store to the number of
	// Notary leaves it validates (zero entries included) — the sample
	// behind Figure 3's ECDFs.
	PerRoot map[certid.Identity]int
}

// ZeroValidationFraction returns the share of the store's roots that
// validate no Notary certificate (the Table 4 percentage and the Figure 3
// y-offset).
func (r *StoreReport) ZeroValidationFraction() float64 {
	if len(r.PerRoot) == 0 {
		return 0
	}
	z := 0
	for _, c := range r.PerRoot {
		if c == 0 {
			z++
		}
	}
	return float64(z) / float64(len(r.PerRoot))
}

// PerRootCounts returns the per-root validation counts as a float64 sample
// in deterministic order, ready for ECDF construction.
func (r *StoreReport) PerRootCounts() []float64 {
	ids := make([]certid.Identity, 0, len(r.PerRoot))
	for id := range r.PerRoot {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Subject != ids[j].Subject {
			return ids[i].Subject < ids[j].Subject
		}
		return ids[i].Key < ids[j].Key
	})
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = float64(r.PerRoot[id])
	}
	return out
}

// Validate runs the paper's validation analysis for every store in one
// crypto pass: it builds each leaf's chains once against the union of all
// stores' roots (plus every observed CA as intermediate), attributes leaves
// to validating roots, then projects the attribution onto each store.
func (n *Notary) Validate(stores ...*rootstore.Store) []*StoreReport {
	union := rootstore.Union("union", stores...)
	verifier := chain.NewVerifier(union.Certificates(), n.observedCAs(), n.at)

	// Path building is the expensive step (one ECDSA verification per new
	// issuer edge); leaves are independent, so fan them across the parallel
	// engine, answering repeated (pool, leaf) lookups from the chain cache.
	// The verifier is safe for concurrent use: its indexes are read-only
	// after construction and the signature cache is lock-protected.
	leaves := n.unexpiredLeaves()
	span := n.observer.StartSpan(union.Name(), KeyValidateSpan)
	n.observer.Counter(KeyValidateLeaves).Add(int64(len(leaves)))
	// The error is ctx cancellation only; the background context never ends.
	leafRoots, _ := parallel.Map(context.Background(), len(leaves),
		func(_ context.Context, i int) ([]certid.Identity, error) {
			return n.cache.ValidatingRoots(verifier, leaves[i]), nil
		},
		parallel.WithWorkers(n.workers), parallel.WithObserver(n.observer))
	span.End()

	perRoot := make(map[certid.Identity]int, union.Len())
	for _, ids := range leafRoots {
		for _, id := range ids {
			perRoot[id]++
		}
	}

	reports := make([]*StoreReport, len(stores))
	for si, s := range stores {
		rep := &StoreReport{Store: s, PerRoot: make(map[certid.Identity]int, s.Len())}
		for _, id := range s.Identities() {
			rep.PerRoot[id] = perRoot[id]
		}
		for _, ids := range leafRoots {
			for _, id := range ids {
				if s.ContainsIdentity(id) {
					rep.Validated++
					break
				}
			}
		}
		reports[si] = rep
	}
	return reports
}

// ValidateOne is Validate for a single store.
func (n *Notary) ValidateOne(s *rootstore.Store) *StoreReport {
	return n.Validate(s)[0]
}

// String summarizes the database.
func (n *Notary) String() string {
	return fmt.Sprintf("notary: %d unique certs (%d unexpired), %d sessions",
		n.NumUnique(), n.NumUnexpired(), n.Sessions())
}
