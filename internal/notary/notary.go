// Package notary reimplements the ICSI Certificate Notary substrate (§4.2):
// a passive database of certificates observed in live TLS traffic on any
// port, aggregated with first/last-seen times, plus the validation analyses
// the paper runs on it — per-store validation totals (Table 3), per-category
// zero-validation shares (Table 4), and per-root validation counts (the
// ECDF of Figure 3).
//
// The database is keyed by corpus.Ref: every observed chain is interned
// into a content-addressed corpus on ingest, so uniqueness-by-DER (§4.1's
// "certificate signature" identity) is a uint32 map key and no fingerprint
// is ever recomputed for a repeat observation.
package notary

import (
	"context"
	"crypto/x509"
	"fmt"
	"sort"
	"sync"
	"time"

	"tangledmass/internal/certid"
	"tangledmass/internal/chain"
	"tangledmass/internal/corpus"
	"tangledmass/internal/obs"
	"tangledmass/internal/parallel"
	"tangledmass/internal/rootstore"
)

// Observation is one certificate chain seen on the wire.
type Observation struct {
	// Chain is leaf-first, as presented by the server.
	Chain []*x509.Certificate
	// Port is the TCP port the session used.
	Port int
	// SeenAt is the observation instant; zero means the Notary's reference
	// time.
	SeenAt time.Time
}

// Entry is the Notary's record for one unique certificate (uniqueness by
// exact DER encoding, the "certificate signature" identity of §4.1).
type Entry struct {
	// Ref is the certificate's handle in the Notary's corpus.
	Ref  corpus.Ref
	Cert *x509.Certificate
	// SeenAsLeaf reports whether the certificate ever appeared in leaf
	// position.
	SeenAsLeaf bool
	// FromStore reports whether the certificate was imported from an
	// official root store rather than observed in traffic.
	FromStore bool
	// Sessions counts observations that included this certificate.
	Sessions int64
	// Ports is the set of ports the certificate was seen on.
	Ports map[int]int64
	// FirstSeen and LastSeen bound the observation window for this
	// certificate (zero for store-imported entries never seen in traffic).
	FirstSeen time.Time
	LastSeen  time.Time
}

// Notary is the certificate database. Construct with New; safe for
// concurrent Observe calls.
type Notary struct {
	at       time.Time
	observer *obs.Observer
	cache    *chain.Cache
	cacheSet bool // WithChainCache was applied (possibly with nil)
	workers  int
	c        *corpus.Corpus

	mu       sync.RWMutex
	entries  map[corpus.Ref]*Entry
	byID     map[certid.Identity]bool
	sessions int64
}

// Option configures a Notary at construction.
type Option func(*Notary)

// WithObserver instruments validation passes and batched ingest, and
// attaches the chain cache's hit/miss counters. Nil observers no-op.
func WithObserver(o *obs.Observer) Option {
	return func(n *Notary) { n.observer = o }
}

// WithChainCache replaces the default chain-validation cache. Pass nil to
// disable caching entirely (every lookup rebuilds chains) — the baseline
// the cache invariant tests compare against.
func WithChainCache(c *chain.Cache) Option {
	return func(n *Notary) { n.cache, n.cacheSet = c, true }
}

// WithWorkers bounds the validation and ingest fan-out. Values < 1 (the
// default) mean runtime.GOMAXPROCS.
func WithWorkers(w int) Option {
	return func(n *Notary) { n.workers = w }
}

// WithCorpus sets the intern table the database keys into (default: the
// process-wide shared corpus). Stores validated against this Notary should
// share the same corpus so handles can be reused without re-interning.
func WithCorpus(c *corpus.Corpus) Option {
	return func(n *Notary) { n.c = c }
}

// New returns an empty Notary that evaluates expiry at the instant at.
// By default validation outcomes are memoized in a chain.Cache sized
// chain.DefaultCacheCapacity; see WithChainCache.
func New(at time.Time, opts ...Option) *Notary {
	n := &Notary{
		at:      at,
		entries: make(map[corpus.Ref]*Entry),
		byID:    make(map[certid.Identity]bool),
	}
	for _, opt := range opts {
		opt(n)
	}
	if !n.cacheSet {
		n.cache = chain.NewCache(0, chain.WithCacheObserver(n.observer))
	}
	if n.c == nil {
		n.c = corpus.Shared()
	}
	return n
}

// CacheStats returns the chain-validation cache's cumulative hit/miss/
// eviction tallies (zeros when caching is disabled).
func (n *Notary) CacheStats() chain.CacheStats { return n.cache.Stats() }

// At returns the Notary's reference time.
func (n *Notary) At() time.Time { return n.at }

// Corpus returns the intern table the database's refs resolve against.
func (n *Notary) Corpus() *corpus.Corpus { return n.c }

// Observe records one live-traffic chain.
func (n *Notary) Observe(o Observation) {
	refs := n.c.InternChain(o.Chain)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observeLocked(o, refs)
}

// ObserveAll records a batch of chains in one pass. Interning every chain
// member — the CPU-bound part of ingest (a repeat observation is a pointer
// or content hit, a new certificate a parse plus fingerprints) — runs on
// the parallel engine; the database mutation is applied serially in input
// order under one lock acquisition, so the result is identical to calling
// Observe in a loop over the batch.
func (n *Notary) ObserveAll(batch []Observation) {
	n.observer.Counter(KeyIngestChains).Add(int64(len(batch)))
	// The error is ctx cancellation only; the background context never ends.
	refs, _ := parallel.Map(context.Background(), len(batch),
		func(_ context.Context, i int) ([]corpus.Ref, error) {
			return n.c.InternChain(batch[i].Chain), nil
		},
		parallel.WithWorkers(n.workers), parallel.WithObserver(n.observer))
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, o := range batch {
		n.observeLocked(o, refs[i])
	}
}

// observeLocked applies one observation; refs carries the interned handle
// of every chain member. Caller holds mu.
func (n *Notary) observeLocked(o Observation, refs []corpus.Ref) {
	if len(o.Chain) == 0 {
		return
	}
	n.applyRefs(o, refs)
}

// applyRefs applies one observation given only interned handles — shared
// by live ingest and WAL replay, where chains arrive as refs without
// re-decoded x509 structs. Caller holds mu.
func (n *Notary) applyRefs(o Observation, refs []corpus.Ref) {
	if len(refs) == 0 {
		return
	}
	at := o.SeenAt
	if at.IsZero() {
		at = n.at
	}
	n.sessions++
	for i, ref := range refs {
		e := n.entryRef(ref)
		e.Sessions++
		e.Ports[o.Port]++
		e.touch(at)
		if i == 0 {
			e.SeenAsLeaf = true
		}
	}
}

// touch updates an entry's observation window.
func (e *Entry) touch(at time.Time) {
	if e.FirstSeen.IsZero() || at.Before(e.FirstSeen) {
		e.FirstSeen = at
	}
	if at.After(e.LastSeen) {
		e.LastSeen = at
	}
}

// ObserveCA records a CA certificate seen inside live traffic without leaf
// position — e.g. a root served as part of a chain, or gathered by a scan.
// The certificate becomes "recorded" (HasRecord) but is not a validation
// subject for the Table 3/4 counting, which runs over leaf certificates.
func (n *Notary) ObserveCA(cert *x509.Certificate, port int) {
	ref := n.c.InternCert(cert)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sessions++
	e := n.entryRef(ref)
	e.Sessions++
	e.Ports[port]++
	e.touch(n.at)
}

// ImportStore loads an official root store's certificates into the database
// without marking them as traffic (§4.2: the Notary also contains the
// certificates of the Android, iOS7 and Mozilla root stores). A store
// sharing the Notary's corpus imports by handle, with no re-interning.
func (n *Notary) ImportStore(s *rootstore.Store) {
	refs := s.Refs()
	if s.Corpus() != n.c {
		refs = n.c.InternChain(s.Certificates())
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ref := range refs {
		n.entryRef(ref).FromStore = true
	}
}

// entryRef returns (creating if needed) the record for an interned
// certificate. Caller holds mu.
func (n *Notary) entryRef(ref corpus.Ref) *Entry {
	e, ok := n.entries[ref]
	if !ok {
		e = &Entry{Ref: ref, Cert: n.c.Cert(ref), Ports: make(map[int]int64)}
		n.entries[ref] = e
		n.byID[n.c.Identity(ref)] = true
	}
	return e
}

// Lookup returns a copy of the record for cert (matched by exact DER), or
// nil when the Notary has never stored that encoding.
func (n *Notary) Lookup(cert *x509.Certificate) *Entry {
	ref := n.c.InternCert(cert)
	n.mu.RLock()
	defer n.mu.RUnlock()
	e, ok := n.entries[ref]
	if !ok {
		return nil
	}
	cp := *e
	cp.Ports = make(map[int]int64, len(e.Ports))
	for p, c := range e.Ports {
		cp.Ports[p] = c
	}
	return &cp
}

// Sessions returns the number of observed TLS sessions.
func (n *Notary) Sessions() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.sessions
}

// NumUnique returns the number of unique certificates on record.
func (n *Notary) NumUnique() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.entries)
}

// NumUnexpired returns how many recorded certificates are valid at the
// reference time (the paper's "one million have not expired").
func (n *Notary) NumUnexpired() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	c := 0
	for _, e := range n.entries {
		if n.unexpired(e.Cert) {
			c++
		}
	}
	return c
}

func (n *Notary) unexpired(c *x509.Certificate) bool {
	return !n.at.Before(c.NotBefore) && !n.at.After(c.NotAfter)
}

// HasRecord reports whether the Notary knows the certificate — from traffic
// or store import — under the paper's identity (subject + key), so re-issued
// instances match.
func (n *Notary) HasRecord(cert *x509.Certificate) bool {
	id := n.c.Identity(n.c.InternCert(cert))
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.byID[id]
}

// UnexpiredLeafRefs returns the handles of non-expired certificates seen in
// leaf position, ordered by SHA-1 fingerprint for determinism (refs are
// interning-order-dependent and must never drive output order). This is the
// leaf universe Validate attributes; incremental consumers slice it into
// batches for AttributeLeaves.
func (n *Notary) UnexpiredLeafRefs() []corpus.Ref {
	n.mu.RLock()
	defer n.mu.RUnlock()
	refs := make([]corpus.Ref, 0, len(n.entries))
	for ref, e := range n.entries {
		if e.SeenAsLeaf && n.unexpired(e.Cert) {
			refs = append(refs, ref)
		}
	}
	sort.Slice(refs, func(i, j int) bool { return n.c.SHA1(refs[i]) < n.c.SHA1(refs[j]) })
	return refs
}

// observedCARefs returns the handles of CA certificates on record (traffic
// or import) — the intermediate pool for path building.
func (n *Notary) observedCARefs() []corpus.Ref {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []corpus.Ref
	for ref, e := range n.entries {
		if e.Cert.IsCA {
			out = append(out, ref)
		}
	}
	return out
}

// PortCount is one row of the port distribution.
type PortCount struct {
	Port     int
	Sessions int64
}

// PortDistribution returns per-port observation counts, busiest first —
// quantifying §4.2's "certificates passively from live upstream traffic to
// any port".
func (n *Notary) PortDistribution() []PortCount {
	n.mu.RLock()
	agg := map[int]int64{}
	for _, e := range n.entries {
		if !e.SeenAsLeaf {
			continue
		}
		for p, c := range e.Ports {
			agg[p] += c
		}
	}
	n.mu.RUnlock()
	out := make([]PortCount, 0, len(agg))
	for p, c := range agg {
		out = append(out, PortCount{Port: p, Sessions: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sessions != out[j].Sessions {
			return out[i].Sessions > out[j].Sessions
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// StoreReport is the validation result for one root store.
type StoreReport struct {
	Store *rootstore.Store
	// Validated is how many non-expired Notary leaf certificates chain to
	// at least one root of the store (Table 3).
	Validated int
	// PerRoot maps every root identity in the store to the number of
	// Notary leaves it validates (zero entries included) — the sample
	// behind Figure 3's ECDFs.
	PerRoot map[certid.Identity]int
}

// ZeroValidationFraction returns the share of the store's roots that
// validate no Notary certificate (the Table 4 percentage and the Figure 3
// y-offset).
func (r *StoreReport) ZeroValidationFraction() float64 {
	if len(r.PerRoot) == 0 {
		return 0
	}
	z := 0
	for _, c := range r.PerRoot {
		if c == 0 {
			z++
		}
	}
	return float64(z) / float64(len(r.PerRoot))
}

// PerRootCounts returns the per-root validation counts as a float64 sample
// in deterministic order, ready for ECDF construction.
func (r *StoreReport) PerRootCounts() []float64 {
	ids := make([]certid.Identity, 0, len(r.PerRoot))
	for id := range r.PerRoot {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Subject != ids[j].Subject {
			return ids[i].Subject < ids[j].Subject
		}
		return ids[i].Key < ids[j].Key
	})
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = float64(r.PerRoot[id])
	}
	return out
}

// LeafAttribution records which root identities validate one Notary leaf —
// the unit Validate projects onto stores, exposed so incremental consumers
// (the analysis package's mergeable aggregates) can attribute leaves batch
// by batch.
type LeafAttribution struct {
	Leaf  corpus.Ref
	Roots []certid.Identity
}

// AttributeLeaves builds each leaf's chains against the union of the given
// stores' roots (plus every observed CA as intermediate) and reports, per
// leaf, the root identities validating it, in the order leaves were given.
//
// Path building is the expensive step (one ECDSA verification per new
// issuer edge); leaves are independent, so they fan across the parallel
// engine, answering repeated (pool, leaf) lookups from the chain cache.
// The verifier is safe for concurrent use: its indexes are read-only
// after construction and the signature cache is lock-protected.
func (n *Notary) AttributeLeaves(stores []*rootstore.Store, leaves []corpus.Ref) []LeafAttribution {
	union := rootstore.Union("union", stores...)
	cas := n.observedCARefs()
	var verifier *chain.Verifier
	if union.Corpus() == n.c {
		// Common case: stores and database share one corpus, so the
		// verifier is assembled from existing handles — no certificate is
		// re-interned or re-fingerprinted.
		verifier = chain.NewVerifierFromStore(union, cas, n.at)
	} else {
		verifier = chain.NewVerifierIn(n.c, union.Certificates(), n.c.Certs(cas), n.at)
	}

	span := n.observer.StartSpan(union.Name(), KeyValidateSpan)
	n.observer.Counter(KeyValidateLeaves).Add(int64(len(leaves)))
	// The error is ctx cancellation only; the background context never ends.
	out, _ := parallel.Map(context.Background(), len(leaves),
		func(_ context.Context, i int) (LeafAttribution, error) {
			return LeafAttribution{Leaf: leaves[i], Roots: n.cache.ValidatingRootsRef(verifier, leaves[i])}, nil
		},
		parallel.WithWorkers(n.workers), parallel.WithObserver(n.observer))
	span.End()
	return out
}

// Validate runs the paper's validation analysis for every store in one
// crypto pass: it builds each leaf's chains once against the union of all
// stores' roots (plus every observed CA as intermediate), attributes leaves
// to validating roots, then projects the attribution onto each store.
func (n *Notary) Validate(stores ...*rootstore.Store) []*StoreReport {
	attrs := n.AttributeLeaves(stores, n.UnexpiredLeafRefs())

	perRoot := map[certid.Identity]int{}
	for _, a := range attrs {
		for _, id := range a.Roots {
			perRoot[id]++
		}
	}

	reports := make([]*StoreReport, len(stores))
	for si, s := range stores {
		rep := &StoreReport{Store: s, PerRoot: make(map[certid.Identity]int, s.Len())}
		for _, id := range s.Identities() {
			rep.PerRoot[id] = perRoot[id]
		}
		for _, a := range attrs {
			for _, id := range a.Roots {
				if s.ContainsIdentity(id) {
					rep.Validated++
					break
				}
			}
		}
		reports[si] = rep
	}
	return reports
}

// ValidateOne is Validate for a single store.
func (n *Notary) ValidateOne(s *rootstore.Store) *StoreReport {
	return n.Validate(s)[0]
}

// String summarizes the database.
func (n *Notary) String() string {
	return fmt.Sprintf("notary: %d unique certs (%d unexpired), %d sessions",
		n.NumUnique(), n.NumUnexpired(), n.Sessions())
}
