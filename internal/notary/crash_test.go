package notary_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/corpus"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/notary"
	"tangledmass/internal/tlsnet"
)

// The crashpoint sweep is the durability layer's central proof. For each
// seed it runs a ≥5,000-observation ingest on the crashable in-memory
// filesystem, counts every boundary operation (write, fsync, dir fsync,
// rename) the workload crosses, and then re-runs the ingest once per
// boundary with a crash injected immediately after it. After every crash
// it reboots the filesystem, recovers, and holds recovery to the
// durability contract:
//
//	no lost acks  — every observation whose Append returned nil is present;
//	no phantoms   — the recovered database is byte-identical (via the
//	                canonical v3 snapshot encoding) to a straight-line
//	                ingest of an exact prefix of the submitted sequence.
//
// The per-crashpoint outcomes form a ledger; running the whole sweep
// twice per seed must reproduce it byte for byte, the same determinism
// contract faultnet's chaos campaign pins for the network.

// sweepObs is the per-seed observation stream: 5,000 observations cycling
// a small world's leaves.
const (
	sweepObs        = 5000
	sweepBatch      = 250
	sweepCheckpoint = 5 // checkpoint every N batches
	sweepLeaves     = 120
)

// sweepStream builds the submitted observation sequence for a seed.
func sweepStream(t *testing.T, seed int64) []notary.Observation {
	t.Helper()
	w, err := tlsnet.NewWorld(tlsnet.Config{Seed: seed, NumLeaves: sweepLeaves})
	if err != nil {
		t.Fatal(err)
	}
	leaves := w.Leaves()
	out := make([]notary.Observation, sweepObs)
	for i := range out {
		l := leaves[i%len(leaves)]
		out[i] = notary.Observation{Chain: l.Chain, Port: l.Port, SeenAt: l.SeenAt}
	}
	return out
}

// sweepIngest drives the full workload against a DB: batched appends with
// periodic checkpoints. It returns the number of acknowledged
// observations and the first error (a crashed run stops at it).
func sweepIngest(db *notary.DB, stream []notary.Observation) (acked int, err error) {
	batchNo := 0
	for i := 0; i < len(stream); i += sweepBatch {
		if err := db.Append(stream[i : i+sweepBatch]); err != nil {
			return acked, err
		}
		acked += sweepBatch
		batchNo++
		if batchNo%sweepCheckpoint == 0 {
			if err := db.Checkpoint(); err != nil {
				return acked, err
			}
		}
	}
	return acked, db.Close()
}

// runCrashSweep executes the whole sweep for one seed and returns its
// ledger: one line per crashpoint recording the acknowledged and
// recovered observation counts.
func runCrashSweep(t *testing.T, seed int64, stream []notary.Observation, c *corpus.Corpus) string {
	t.Helper()

	// Profile run, no crash: count the boundary operations the workload
	// crosses.
	profile := faultfs.NewMem(seed)
	db, err := notary.Open(profile, "data", certgen.Epoch, notary.WithCorpus(c))
	if err != nil {
		t.Fatal(err)
	}
	if acked, err := sweepIngest(db, stream); err != nil || acked != len(stream) {
		t.Fatalf("profile run: acked %d/%d, err %v", acked, len(stream), err)
	}
	total := profile.Boundaries()
	if total < 50 {
		t.Fatalf("workload crossed only %d boundaries; the sweep would prove nothing", total)
	}

	// The no-phantom check compares the recovered database against a
	// straight-line ingest of the recovered prefix. Distinct prefix
	// lengths recur across crashpoints, so the expected bytes are memoized.
	expectCache := map[int][]byte{}
	expectedAt := func(k int) []byte {
		if b, ok := expectCache[k]; ok {
			return b
		}
		n := notary.New(certgen.Epoch, notary.WithCorpus(c))
		n.ObserveAll(stream[:k])
		b := saveBytes(t, n)
		expectCache[k] = b
		return b
	}

	var ledger strings.Builder
	fmt.Fprintf(&ledger, "crash sweep seed=%d boundaries=%d\n", seed, total)
	for cut := 1; cut <= total; cut++ {
		mem := faultfs.NewMem(seed)
		mem.CrashAfter(cut)
		acked := 0
		db, err := notary.Open(mem, "data", certgen.Epoch, notary.WithCorpus(c))
		if err == nil {
			acked, err = sweepIngest(db, stream)
		}
		if err != nil && !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("crash@%d/%d: non-crash failure before the crash point: %v", cut, total, err)
		}
		if !mem.Crashed() {
			t.Fatalf("crash@%d/%d: workload finished without hitting the armed crash", cut, total)
		}

		mem.Reboot()
		rdb, rerr := notary.Open(mem, "data", certgen.Epoch, notary.WithCorpus(c))
		if rerr != nil {
			t.Fatalf("crash@%d/%d: recovery failed: %v", cut, total, rerr)
		}
		recovered := int(rdb.Notary().Sessions())
		if recovered < acked {
			t.Fatalf("crash@%d/%d: lost acks: recovered %d < acknowledged %d", cut, total, recovered, acked)
		}
		if recovered > len(stream) {
			t.Fatalf("crash@%d/%d: recovered %d > submitted %d", cut, total, recovered, len(stream))
		}
		if got := saveBytes(t, rdb.Notary()); !bytes.Equal(got, expectedAt(recovered)) {
			t.Fatalf("crash@%d/%d: recovered database is not the exact %d-observation prefix (phantom or reordered state)", cut, total, recovered)
		}
		if err := rdb.Close(); err != nil {
			t.Fatalf("crash@%d/%d: closing recovered db: %v", cut, total, err)
		}
		fmt.Fprintf(&ledger, "crash@%03d acked=%d recovered=%d\n", cut, acked, recovered)
	}
	return ledger.String()
}

// TestCrashpointSweep: for seeds {1,2,3}, a crash after every filesystem
// boundary during a 5,000-observation ingest always recovers to exactly
// the acknowledged prefix, and the sweep's ledger is deterministic per
// seed.
func TestCrashpointSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crashpoint sweep skipped in -short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := corpus.New()
			stream := sweepStream(t, seed)
			first := runCrashSweep(t, seed, stream, c)
			second := runCrashSweep(t, seed, stream, c)
			if first != second {
				t.Errorf("sweep ledger not deterministic for seed %d:\nfirst:\n%s\nsecond:\n%s", seed, first, second)
			}
			t.Logf("seed %d: %s", seed, strings.SplitN(first, "\n", 2)[0])
		})
	}
}
