package notary

import (
	"fmt"
	"sort"
)

// Absorb folds another Notary's state into n: per-certificate session
// counts and port tallies sum, observation windows widen to the union,
// the leaf/store flags OR, and the session total adds. Every fold is a
// commutative monoid over entries keyed by corpus.Ref, so absorbing a set
// of disjoint observation partitions in any order reconstructs exactly
// the database a single Notary fed the concatenated stream would hold —
// the property the sharded cluster's merge path (internal/notaryshard)
// builds its byte-identical-artifacts guarantee on.
//
// Both databases must share one corpus (so Refs agree) and one reference
// time (so expiry agrees); anything else is a programming error, reported
// rather than silently re-interned.
func (n *Notary) Absorb(from *Notary) error {
	if from == nil || from == n {
		return nil
	}
	if from.c != n.c {
		return fmt.Errorf("notary: absorb across corpora (corpus %d into %d)", from.c.ID(), n.c.ID())
	}
	if !from.at.Equal(n.at) {
		return fmt.Errorf("notary: absorb across reference times (%s into %s)", from.at, n.at)
	}

	// Snapshot the source under its own lock, then release it before
	// taking n's — no lock-order coupling between the two databases. The
	// map range is collected and sorted by Ref: the fold is commutative,
	// but a deterministic application order keeps the code auditable.
	from.mu.RLock()
	entries := make([]Entry, 0, len(from.entries))
	for _, e := range from.entries {
		cp := *e
		cp.Ports = make(map[int]int64, len(e.Ports))
		for p, c := range e.Ports {
			cp.Ports[p] = c
		}
		entries = append(entries, cp)
	}
	sessions := from.sessions
	from.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Ref < entries[j].Ref })

	n.mu.Lock()
	defer n.mu.Unlock()
	n.sessions += sessions
	for i := range entries {
		src := &entries[i]
		e := n.entryRef(src.Ref)
		e.Sessions += src.Sessions
		for p, c := range src.Ports {
			e.Ports[p] += c
		}
		e.SeenAsLeaf = e.SeenAsLeaf || src.SeenAsLeaf
		e.FromStore = e.FromStore || src.FromStore
		if !src.FirstSeen.IsZero() {
			e.touch(src.FirstSeen)
		}
		if !src.LastSeen.IsZero() {
			e.touch(src.LastSeen)
		}
	}
	return nil
}
