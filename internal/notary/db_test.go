package notary_test

import (
	"bytes"
	"crypto/x509"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/corpus"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/notary"
	"tangledmass/internal/obs"
	"tangledmass/internal/rootstore"
)

// dbChains builds a small deterministic pool of observation chains.
func dbChains(t *testing.T, seed int64, n int) [][]*x509.Certificate {
	t.Helper()
	g := certgen.NewGenerator(seed)
	root, err := g.SelfSignedCA(fmt.Sprintf("DB Root %d", seed))
	if err != nil {
		t.Fatal(err)
	}
	chains := make([][]*x509.Certificate, n)
	for i := range chains {
		leaf, err := g.Leaf(root, fmt.Sprintf("db%d-%d.example.com", seed, i))
		if err != nil {
			t.Fatal(err)
		}
		chains[i] = []*x509.Certificate{leaf.Cert, root.Cert}
	}
	return chains
}

// dbObs turns chains into an observation stream of length n, cycling ports.
func dbObs(chains [][]*x509.Certificate, n int) []notary.Observation {
	out := make([]notary.Observation, n)
	ports := []int{443, 993, 8883}
	for i := range out {
		out[i] = notary.Observation{
			Chain:  chains[i%len(chains)],
			Port:   ports[i%len(ports)],
			SeenAt: certgen.Epoch.Add(time.Duration(i) * time.Hour),
		}
	}
	return out
}

func saveBytes(t *testing.T, n *notary.Notary) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// expectedNotary replays a straight-line in-memory ingest of obs.
func expectedNotary(c *corpus.Corpus, obsSeq []notary.Observation) *notary.Notary {
	n := notary.New(certgen.Epoch, notary.WithCorpus(c))
	n.ObserveAll(obsSeq)
	return n
}

func TestDBOpenFreshLayout(t *testing.T) {
	mem := faultfs.NewMem(1)
	db, err := notary.Open(mem, "data", certgen.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if db.Gen() != 1 {
		t.Errorf("fresh gen = %d, want 1", db.Gen())
	}
	if s := db.Notary().Sessions(); s != 0 {
		t.Errorf("fresh sessions = %d, want 0", s)
	}
	names, err := mem.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"snap-1.v3", "wal-1.log"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("layout = %v, want %v", names, want)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(dbObs(dbChains(t, 70, 2), 1)); err == nil {
		t.Error("append on closed DB should fail")
	}
	if err := db.Checkpoint(); err == nil {
		t.Error("checkpoint on closed DB should fail")
	}
}

// TestDBAppendRebootRecover models power loss with no graceful shutdown:
// everything acknowledged must be reconstructed from snapshot + journal
// replay alone, and the recovered database must be byte-identical to a
// straight-line ingest of the same observations.
func TestDBAppendRebootRecover(t *testing.T) {
	c := corpus.New()
	chains := dbChains(t, 71, 8)
	stream := dbObs(chains, 90)

	mem := faultfs.NewMem(1)
	ob := obs.New()
	db, err := notary.Open(mem, "data", certgen.Epoch,
		notary.WithCorpus(c), notary.WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(stream); i += 30 {
		if err := db.Append(stream[i : i+30]); err != nil {
			t.Fatal(err)
		}
	}
	if got := ob.Counter(notary.KeyWALFsyncs).Value(); got != 3 {
		t.Errorf("wal fsyncs = %d, want 3 (one group commit per batch)", got)
	}
	if ob.Counter(notary.KeyWALAppends).Value() == 0 || ob.Counter(notary.KeyWALBytes).Value() == 0 {
		t.Error("journal append counters should be non-zero")
	}
	// Power loss: no Close, no final checkpoint.
	mem.Reboot()

	ob2 := obs.New()
	rdb, err := notary.Open(mem, "data", certgen.Epoch,
		notary.WithCorpus(c), notary.WithObserver(ob2))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rdb.Close()
	if got := rdb.Notary().Sessions(); got != int64(len(stream)) {
		t.Fatalf("recovered sessions = %d, want %d", got, len(stream))
	}
	if got := ob2.Counter(notary.KeyRecoverReplayed).Value(); got != int64(len(stream)) {
		t.Errorf("replayed records = %d, want %d", got, len(stream))
	}
	if got, want := saveBytes(t, rdb.Notary()), saveBytes(t, expectedNotary(c, stream)); !bytes.Equal(got, want) {
		t.Error("recovered database differs from straight-line ingest")
	}
}

// TestDBCloseReopenEquivalence is the graceful path: shutdown checkpoints,
// reopen recovers, and the round trip preserves the database byte for byte.
func TestDBCloseReopenEquivalence(t *testing.T) {
	c := corpus.New()
	stream := dbObs(dbChains(t, 72, 5), 60)
	mem := faultfs.NewMem(2)
	db, err := notary.Open(mem, "data", certgen.Epoch, notary.WithCorpus(c))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(stream); err != nil {
		t.Fatal(err)
	}
	before := saveBytes(t, db.Notary())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rdb, err := notary.Open(mem, "data", certgen.Epoch, notary.WithCorpus(c))
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if !bytes.Equal(before, saveBytes(t, rdb.Notary())) {
		t.Error("restart changed the database bytes")
	}
}

func TestDBCheckpointRotation(t *testing.T) {
	mem := faultfs.NewMem(3)
	db, err := notary.Open(mem, "data", certgen.Epoch, notary.WithCorpus(corpus.New()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Append(dbObs(dbChains(t, 73, 3), 10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.Gen() != 2 {
		t.Errorf("gen after checkpoint = %d, want 2", db.Gen())
	}
	names, err := mem.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"snap-2.v3", "wal-2.log"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("layout after checkpoint = %v, want %v (old generation retired)", names, want)
	}
}

// flakyFS fails file writes on demand — the targeted journal-failure fault
// the fence test needs (the seeded Injector is probabilistic by design).
type flakyFS struct {
	faultfs.FS
	failWrites bool
}

type flakyFile struct {
	faultfs.File
	fs *flakyFS
}

func (f *flakyFS) Create(path string) (faultfs.File, error) {
	file, err := f.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f}, nil
}

func (f *flakyFile) Write(p []byte) (int, error) {
	if f.fs.failWrites {
		return 0, errors.New("flaky: injected write failure")
	}
	return f.File.Write(p)
}

// TestDBJournalFailureFence: after a failed group commit the journal tail
// is unknown, so appends must be fenced with ErrJournalFailed until a
// checkpoint starts a fresh journal. Nothing from the failed batch may
// survive, in memory or on disk.
func TestDBJournalFailureFence(t *testing.T) {
	c := corpus.New()
	stream := dbObs(dbChains(t, 74, 4), 30)
	fsys := &flakyFS{FS: faultfs.NewMem(4)}
	db, err := notary.Open(fsys, "data", certgen.Epoch, notary.WithCorpus(c))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(stream[:10]); err != nil {
		t.Fatal(err)
	}

	fsys.failWrites = true
	if err := db.Append(stream[10:20]); err == nil {
		t.Fatal("append during write failure should error")
	} else if errors.Is(err, notary.ErrJournalFailed) {
		t.Fatal("first failure should surface the I/O error, not the fence")
	}
	fsys.failWrites = false
	if err := db.Append(stream[10:20]); !errors.Is(err, notary.ErrJournalFailed) {
		t.Fatalf("append after failed commit = %v, want ErrJournalFailed", err)
	}
	if got := db.Notary().Sessions(); got != 10 {
		t.Fatalf("sessions after failed batch = %d, want 10 (batch must not apply)", got)
	}

	// A checkpoint captures exactly the acknowledged state and lifts the fence.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(stream[10:20]); err != nil {
		t.Fatalf("append after checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rdb, err := notary.Open(fsys, "data", certgen.Epoch, notary.WithCorpus(c))
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if got, want := saveBytes(t, rdb.Notary()), saveBytes(t, expectedNotary(c, stream[:20])); !bytes.Equal(got, want) {
		t.Error("recovered database should hold exactly the acknowledged batches")
	}
}

// TestDBCARecordsAndImportsRecovered covers the walRecCA and walRecImport
// replay paths: CA sightings and store imports journaled through the DB
// must survive an ungraceful reboot.
func TestDBCARecordsAndImportsRecovered(t *testing.T) {
	c := corpus.New()
	g := certgen.NewGenerator(75)
	ca, err := g.SelfSignedCA("Journal CA")
	if err != nil {
		t.Fatal(err)
	}
	imported, err := g.SelfSignedCA("Imported Root")
	if err != nil {
		t.Fatal(err)
	}
	store := rootstore.NewIn("journal-store", c)
	store.Add(imported.Cert)

	mem := faultfs.NewMem(5)
	db, err := notary.Open(mem, "data", certgen.Epoch, notary.WithCorpus(c))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ObserveCA(ca.Cert, 8883); err != nil {
		t.Fatal(err)
	}
	if err := db.ImportStore(store); err != nil {
		t.Fatal(err)
	}
	mem.Reboot() // no Close: recovery must come from the journal

	rdb, err := notary.Open(mem, "data", certgen.Epoch, notary.WithCorpus(c))
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	n := rdb.Notary()
	e := n.Lookup(ca.Cert)
	if e == nil || e.Sessions != 1 || e.Ports[8883] != 1 || e.SeenAsLeaf {
		t.Errorf("CA entry = %+v", e)
	}
	ie := n.Lookup(imported.Cert)
	if ie == nil || !ie.FromStore || ie.Sessions != 0 {
		t.Errorf("imported entry = %+v", ie)
	}
	if n.Sessions() != 1 {
		t.Errorf("sessions = %d, want 1 (import is not traffic)", n.Sessions())
	}
}

// writeRaw writes bytes to path through fsys with full durability.
func writeRaw(t *testing.T, fsys faultfs.FS, dir, base string, data []byte) {
	t.Helper()
	if err := fsys.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Create(faultfs.Join(dir, base))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
}

// TestDBSnapshotFallback: a checksum-failing newer snapshot (the signature
// of a crash mid-checkpoint) must fall back to the older valid generation,
// not error and not lose data.
func TestDBSnapshotFallback(t *testing.T) {
	c := corpus.New()
	stream := dbObs(dbChains(t, 76, 4), 25)
	src := expectedNotary(c, stream)

	mem := faultfs.NewMem(6)
	writeRaw(t, mem, "data", "snap-3.v3", saveBytes(t, src))
	writeRaw(t, mem, "data", "snap-4.v3", []byte("TANGLED-NOTARY-SNAP3\ngarbage that fails the checksum"))

	db, err := notary.Open(mem, "data", certgen.Epoch, notary.WithCorpus(c))
	if err != nil {
		t.Fatalf("fallback open: %v", err)
	}
	defer db.Close()
	if got := db.Notary().Sessions(); got != int64(len(stream)) {
		t.Errorf("sessions = %d, want %d", got, len(stream))
	}
	if !bytes.Equal(saveBytes(t, db.Notary()), saveBytes(t, src)) {
		t.Error("fallback lost data")
	}
}

// TestDBOpenRejectsUnloadableSnapshots: when snapshots exist but none
// loads, Open must refuse rather than boot an empty database over
// corrupted state.
func TestDBOpenRejectsUnloadableSnapshots(t *testing.T) {
	mem := faultfs.NewMem(7)
	writeRaw(t, mem, "data", "snap-2.v3", []byte("TANGLED-NOTARY-SNAP3\nnot a snapshot"))
	_, err := notary.Open(mem, "data", certgen.Epoch, notary.WithCorpus(corpus.New()))
	if err == nil {
		t.Fatal("open over only-corrupt snapshots should fail")
	}
	if !strings.Contains(err.Error(), "none loadable") {
		t.Errorf("error = %v, want a none-loadable diagnosis", err)
	}
}

func TestDBFsck(t *testing.T) {
	c := corpus.New()
	mem := faultfs.NewMem(8)
	db, err := notary.Open(mem, "data", certgen.Epoch, notary.WithCorpus(c))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(dbObs(dbChains(t, 77, 3), 12)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := notary.Fsck(mem, "data")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Healthy() {
		t.Fatalf("clean directory reported issues: %v", r.Issues)
	}
	if r.Snapshot == "" || r.Journal == "" || r.Sessions != 12 {
		t.Errorf("report = %+v", r)
	}
	if !strings.Contains(r.String(), "clean") {
		t.Errorf("healthy report should say clean:\n%s", r.String())
	}

	// Damage the directory in every way fsck flags: a corrupt extra
	// snapshot, a stray temp file, and a torn journal tail.
	writeRaw(t, mem, "data", "snap-99.v3", []byte("TANGLED-NOTARY-SNAP3\nbad"))
	writeRaw(t, mem, "data", "leftover.tmp", []byte("x"))
	r2, err := notary.Fsck(mem, "data")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Healthy() {
		t.Fatal("damaged directory reported healthy")
	}
	if len(r2.Issues) < 2 {
		t.Errorf("issues = %v, want corrupt snapshot + stray temp", r2.Issues)
	}
	if r2.Sessions != 12 {
		t.Errorf("fsck should still report the valid generation: %+v", r2)
	}
	for _, issue := range r2.Issues {
		if strings.Contains(issue, "snap-99") {
			return
		}
	}
	t.Errorf("no issue names the corrupt snapshot: %v", r2.Issues)
}

// TestDBFaultPlanLedgerDeterministic drives the DB through a seeded
// Injector plan — probabilistic write, fsync and rename faults — twice,
// and requires (a) acknowledged state survives exactly, and (b) the fault
// ledger is byte-identical across runs: the faultnet property, on disk.
func TestDBFaultPlanLedgerDeterministic(t *testing.T) {
	run := func() (string, int) {
		c := corpus.New()
		stream := dbObs(dbChains(t, 78, 6), 80)
		in := faultfs.New(faultfs.Plan{
			Seed:          42,
			TornWriteProb: 0.05,
			NoSpaceProb:   0.05,
			SyncErrProb:   0.05,
			RenameErrProb: 0.05,
		})
		fsys := in.FS(faultfs.NewMem(9), "db-fault-run")

		var db *notary.DB
		var err error
		for try := 0; try < 50; try++ {
			if db, err = notary.Open(fsys, "data", certgen.Epoch, notary.WithCorpus(c)); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("open never succeeded under plan: %v", err)
		}
		acked := 0
		for i := 0; i < len(stream); i += 10 {
			batch := stream[i : i+10]
			err := db.Append(batch)
			if err == nil {
				acked += len(batch)
				continue
			}
			// Fenced: checkpoint (retrying through injected faults) to
			// start a fresh journal, then retry the batch once.
			for try := 0; try < 50; try++ {
				if cerr := db.Checkpoint(); cerr == nil {
					break
				}
			}
			if err := db.Append(batch); err == nil {
				acked += len(batch)
			}
		}
		for try := 0; try < 50; try++ {
			if err := db.Close(); err == nil {
				break
			}
		}

		var rdb *notary.DB
		for try := 0; try < 50; try++ {
			if rdb, err = notary.Open(fsys, "data", certgen.Epoch, notary.WithCorpus(c)); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("reopen after fault run never succeeded: %v", err)
		}
		got := int(rdb.Notary().Sessions())
		if got < acked {
			t.Fatalf("recovered %d sessions < %d acknowledged: lost acks", got, acked)
		}
		for try := 0; try < 50; try++ {
			if err := rdb.Close(); err == nil {
				break
			}
		}
		if in.Total() == 0 {
			t.Fatal("plan injected no faults; probabilities too low to exercise anything")
		}
		return in.String(), got
	}
	l1, s1 := run()
	l2, s2 := run()
	if l1 != l2 || s1 != s2 {
		t.Errorf("fault runs diverged:\nrun1 (%d sessions):\n%s\nrun2 (%d sessions):\n%s", s1, l1, s2, l2)
	}
}
