package notary

// Metric and span keys the Notary emits (see the registry in README.md).
// Package-prefixed compile-time constants, per the obskey lint rule.
const (
	// KeyValidateSpan is the span stage covering one bulk validation pass
	// (Validate over the union of the requested stores).
	KeyValidateSpan = "notary.validate"
	// KeyValidateLeaves counts leaf certificates validated across all
	// Validate calls.
	KeyValidateLeaves = "notary.validate.leaves"
	// KeyIngestChains counts chains recorded through the batched
	// ObserveAll ingest path.
	KeyIngestChains = "notary.ingest.chains"
)
