package notary

// Metric and span keys the Notary emits (see the registry in README.md).
// Package-prefixed compile-time constants, per the obskey lint rule.
const (
	// KeyValidateSpan is the span stage covering one bulk validation pass
	// (Validate over the union of the requested stores).
	KeyValidateSpan = "notary.validate"
	// KeyValidateLeaves counts leaf certificates validated across all
	// Validate calls.
	KeyValidateLeaves = "notary.validate.leaves"
	// KeyIngestChains counts chains recorded through the batched
	// ObserveAll ingest path.
	KeyIngestChains = "notary.ingest.chains"
	// KeyWALAppends counts records group-committed to the write-ahead
	// journal (cert introductions plus state records).
	KeyWALAppends = "notary.wal.appends"
	// KeyWALBytes counts journal bytes made durable.
	KeyWALBytes = "notary.wal.bytes"
	// KeyWALFsyncs counts journal group-commit fsyncs (one per
	// acknowledged batch).
	KeyWALFsyncs = "notary.wal.fsyncs"
	// KeyRecoverReplayed counts journal state records re-applied during
	// recovery.
	KeyRecoverReplayed = "notary.recover.replayed"
	// KeyRecoverTruncated counts recoveries that truncated a torn journal
	// tail at the first bad checksum.
	KeyRecoverTruncated = "notary.recover.truncated"
	// KeyCheckpointCount counts completed checkpoints (snapshot published
	// + journal truncated).
	KeyCheckpointCount = "notary.checkpoint.count"
	// KeyCheckpointFailures counts checkpoints abandoned on an I/O error.
	KeyCheckpointFailures = "notary.checkpoint.failures"
)
