package notary_test

import (
	"reflect"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/tlsnet"
)

// TestObserveAllMatchesObserveLoop pins the batch-ingest contract: feeding a
// world through ObserveAll produces the exact database a serial Observe loop
// builds — same sessions, same entries, same port distribution, same
// validation outcomes.
func TestObserveAllMatchesObserveLoop(t *testing.T) {
	w, err := tlsnet.NewWorld(tlsnet.Config{Seed: 9, NumLeaves: 1000})
	if err != nil {
		t.Fatal(err)
	}
	leaves := w.Leaves()
	batch := make([]notary.Observation, len(leaves))
	for i, leaf := range leaves {
		batch[i] = notary.Observation{Chain: leaf.Chain, Port: leaf.Port, SeenAt: leaf.SeenAt}
	}

	serial := notary.New(certgen.Epoch)
	for _, o := range batch {
		serial.Observe(o)
	}
	batched := notary.New(certgen.Epoch)
	batched.ObserveAll(batch)

	if serial.Sessions() != batched.Sessions() {
		t.Fatalf("sessions: loop %d, batch %d", serial.Sessions(), batched.Sessions())
	}
	if serial.NumUnique() != batched.NumUnique() {
		t.Fatalf("unique: loop %d, batch %d", serial.NumUnique(), batched.NumUnique())
	}
	if serial.NumUnexpired() != batched.NumUnexpired() {
		t.Fatalf("unexpired: loop %d, batch %d", serial.NumUnexpired(), batched.NumUnexpired())
	}
	if !reflect.DeepEqual(serial.PortDistribution(), batched.PortDistribution()) {
		t.Fatal("port distributions differ between loop and batch ingest")
	}
	u := w.Universe()
	want := serial.Validate(u.AOSP("4.4"), u.Mozilla())
	got := batched.Validate(u.AOSP("4.4"), u.Mozilla())
	for i := range want {
		if got[i].Validated != want[i].Validated ||
			!reflect.DeepEqual(got[i].PerRoot, want[i].PerRoot) {
			t.Fatalf("report %d differs between loop and batch ingest", i)
		}
	}
}

// TestValidateCacheWarmsAcrossCalls checks the cache amortization that the
// benchmarks rely on: a second Validate over the same database and stores
// reuses every (pool, leaf) entry, so the second pass is all hits.
func TestValidateCacheWarmsAcrossCalls(t *testing.T) {
	w, err := tlsnet.NewWorld(tlsnet.Config{Seed: 9, NumLeaves: 500})
	if err != nil {
		t.Fatal(err)
	}
	n := notary.New(certgen.Epoch)
	tlsnet.Feed(w, n)
	u := w.Universe()

	first := n.Validate(u.AOSP("4.4"), u.Mozilla(), u.IOS7())
	cold := n.CacheStats()
	if cold.Misses == 0 {
		t.Fatal("cold pass recorded no cache misses; cache is not consulted")
	}
	if cold.Hits != 0 {
		t.Fatalf("cold pass recorded %d hits, want 0", cold.Hits)
	}
	second := n.Validate(u.AOSP("4.4"), u.Mozilla(), u.IOS7())
	warm := n.CacheStats()
	if warm.Misses != cold.Misses {
		t.Fatalf("warm pass missed (%d -> %d): pool key is unstable across Validate calls",
			cold.Misses, warm.Misses)
	}
	if warm.Hits != cold.Misses {
		t.Fatalf("warm pass hits = %d, want %d (one per cold miss)", warm.Hits, cold.Misses)
	}
	if rate := warm.HitRate(); rate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5 after one cold and one warm pass", rate)
	}
	for i := range first {
		if first[i].Validated != second[i].Validated ||
			!reflect.DeepEqual(first[i].PerRoot, second[i].PerRoot) {
			t.Fatalf("report %d differs between cold and warm pass", i)
		}
	}
}
