package notary_test

import (
	"crypto/x509"
	"sync"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/tlsnet"
)

var (
	fedOnce   sync.Once
	fedNotary *notary.Notary
	fedWorld  *tlsnet.World
	fedErr    error
)

// fedDB returns a Notary fed from a 4,000-leaf world, cached across tests.
func fedDB(t *testing.T) (*notary.Notary, *tlsnet.World) {
	t.Helper()
	fedOnce.Do(func() {
		fedWorld, fedErr = tlsnet.NewWorld(tlsnet.Config{Seed: 1, NumLeaves: 4000})
		if fedErr != nil {
			return
		}
		fedNotary = notary.New(certgen.Epoch)
		tlsnet.Feed(fedWorld, fedNotary)
	})
	if fedErr != nil {
		t.Fatal(fedErr)
	}
	return fedNotary, fedWorld
}

func TestObserveBasics(t *testing.T) {
	g := certgen.NewGenerator(50)
	root, _ := g.SelfSignedCA("Obs Root")
	leaf, _ := g.Leaf(root, "obs.example.com")
	n := notary.New(certgen.Epoch)
	obs := notary.Observation{Chain: []*x509.Certificate{leaf.Cert, root.Cert}, Port: 443}
	n.Observe(obs)
	n.Observe(obs)
	if n.Sessions() != 2 {
		t.Errorf("sessions = %d, want 2", n.Sessions())
	}
	if n.NumUnique() != 2 {
		t.Errorf("unique = %d, want 2 (leaf + root)", n.NumUnique())
	}
	if !n.HasRecord(leaf.Cert) || !n.HasRecord(root.Cert) {
		t.Error("observed certs should be on record")
	}
	n.Observe(notary.Observation{}) // empty chains are ignored
	if n.Sessions() != 2 {
		t.Error("empty observation should not count")
	}
}

func TestHasRecordByEquivalence(t *testing.T) {
	g := certgen.NewGenerator(51)
	root, _ := g.SelfSignedCA("Equiv Obs Root")
	re, _ := g.Reissue(root, certgen.WithValidity(certgen.Epoch, certgen.Epoch.AddDate(9, 0, 0)))
	n := notary.New(certgen.Epoch)
	n.Observe(notary.Observation{Chain: []*x509.Certificate{root.Cert}, Port: 443})
	if !n.HasRecord(re.Cert) {
		t.Error("a re-issued instance should match by subject+key identity")
	}
}

func TestImportStoreNotTraffic(t *testing.T) {
	u := cauniverse.Default()
	n := notary.New(certgen.Epoch)
	n.ImportStore(u.Mozilla())
	if n.Sessions() != 0 {
		t.Error("store import must not count as sessions")
	}
	if n.NumUnique() != u.Mozilla().Len() {
		t.Errorf("unique = %d, want %d", n.NumUnique(), u.Mozilla().Len())
	}
	if !n.HasRecord(u.Mozilla().Certificates()[0]) {
		t.Error("imported certs should be on record")
	}
}

func TestExpiredTracking(t *testing.T) {
	g := certgen.NewGenerator(52)
	root, _ := g.SelfSignedCA("Exp Track Root")
	live, _ := g.Leaf(root, "live.example.com")
	dead, _ := g.Leaf(root, "dead.example.com",
		certgen.WithValidity(certgen.Epoch.AddDate(-2, 0, 0), certgen.Epoch.AddDate(-1, 0, 0)))
	n := notary.New(certgen.Epoch)
	n.Observe(notary.Observation{Chain: []*x509.Certificate{live.Cert, root.Cert}, Port: 443})
	n.Observe(notary.Observation{Chain: []*x509.Certificate{dead.Cert, root.Cert}, Port: 443})
	if n.NumUnique() != 3 {
		t.Fatalf("unique = %d, want 3", n.NumUnique())
	}
	if n.NumUnexpired() != 2 {
		t.Errorf("unexpired = %d, want 2 (live leaf + root)", n.NumUnexpired())
	}
}

func TestValidateSingleStore(t *testing.T) {
	g := certgen.NewGenerator(53)
	rootA, _ := g.SelfSignedCA("Val Root A")
	rootB, _ := g.SelfSignedCA("Val Root B")
	n := notary.New(certgen.Epoch)
	for i, r := range []*certgen.Issued{rootA, rootA, rootA, rootB} {
		leaf, _ := g.Leaf(r, "val"+string(rune('0'+i))+".example.com")
		n.Observe(notary.Observation{Chain: []*x509.Certificate{leaf.Cert, r.Cert}, Port: 443})
	}
	storeA := rootstore.New("A-only")
	storeA.Add(rootA.Cert)
	rep := n.ValidateOne(storeA)
	if rep.Validated != 3 {
		t.Errorf("validated = %d, want 3", rep.Validated)
	}
	if len(rep.PerRoot) != 1 {
		t.Fatalf("per-root entries = %d, want 1", len(rep.PerRoot))
	}
	for _, c := range rep.PerRoot {
		if c != 3 {
			t.Errorf("rootA count = %d, want 3", c)
		}
	}
	if rep.ZeroValidationFraction() != 0 {
		t.Error("rootA validates certs; zero fraction should be 0")
	}
}

func TestValidateMultiStoreConsistency(t *testing.T) {
	n, w := fedDB(t)
	u := w.Universe()
	reports := n.Validate(u.AOSP("4.1"), u.AOSP("4.4"), u.Mozilla(), u.IOS7())
	byName := map[string]*notary.StoreReport{}
	for _, r := range reports {
		byName[r.Store.Name()] = r
	}
	// Table 3's qualitative structure: all stores validate nearly the same
	// count; iOS7 ≥ AOSP 4.4 ≥ AOSP 4.1; Mozilla close to AOSP.
	a41, a44 := byName["AOSP 4.1"].Validated, byName["AOSP 4.4"].Validated
	moz, ios := byName["Mozilla"].Validated, byName["iOS7"].Validated
	if a44 < a41 {
		t.Errorf("AOSP 4.4 (%d) should validate at least as many as 4.1 (%d)", a44, a41)
	}
	// iOS7 vs AOSP ordering is Zipf-tail noise at this sample size (the
	// paper's own gap is 0.2%); the near-equality band below is the real
	// Table 3 claim. Subset orderings, by contrast, are structural.
	_ = ios
	for name, rep := range byName {
		ratio := float64(rep.Validated) / float64(a44)
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("%s validated %d, >3%% from AOSP 4.4's %d — Table 3 wants near-equality", name, rep.Validated, a44)
		}
	}
	// ≈74% of non-expired leaves validate (Table 3: 744k of ~1M).
	leaves := 0
	for _, l := range w.Leaves() {
		if !l.Expired {
			leaves++
		}
	}
	share := float64(moz) / float64(leaves)
	if share < 0.68 || share > 0.80 {
		t.Errorf("Mozilla validated share = %.3f, want ≈0.74", share)
	}
}

func TestZeroValidationFractions(t *testing.T) {
	n, w := fedDB(t)
	u := w.Universe()
	cases := []struct {
		store *rootstore.Store
		want  float64
		tol   float64
	}{
		{u.AOSP("4.4"), 0.23, 0.04},
		{u.AOSP("4.1"), 0.22, 0.04},
		{u.Mozilla(), 0.22, 0.04},
		{u.IOS7(), 0.41, 0.04},
		{u.AggregatedAndroid(), 0.40, 0.05},
	}
	stores := make([]*rootstore.Store, len(cases))
	for i, c := range cases {
		stores[i] = c.store
	}
	reports := n.Validate(stores...)
	for i, c := range cases {
		got := reports[i].ZeroValidationFraction()
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s zero-validation = %.3f, want %.2f±%.2f (Table 4)",
				c.store.Name(), got, c.want, c.tol)
		}
	}
}

func TestPerRootCountsShape(t *testing.T) {
	n, w := fedDB(t)
	u := w.Universe()
	rep := n.ValidateOne(u.AOSP("4.4"))
	counts := rep.PerRootCounts()
	if len(counts) != 150 {
		t.Fatalf("per-root sample = %d, want 150", len(counts))
	}
	var max, total float64
	for _, c := range counts {
		if c > max {
			max = c
		}
		total += c
	}
	if max < 50 {
		t.Errorf("most popular root validates only %v leaves; expected heavy skew", max)
	}
	// Deterministic ordering.
	again := rep.PerRootCounts()
	for i := range counts {
		if counts[i] != again[i] {
			t.Fatal("PerRootCounts not deterministic")
		}
	}
}

func TestExpiredRootValidatesNothing(t *testing.T) {
	n, w := fedDB(t)
	u := w.Universe()
	rep := n.ValidateOne(u.AOSP("4.4"))
	exp := u.ExpiredRoot()
	id := exp.Issued.Cert
	for rid, c := range rep.PerRoot {
		if rid.Subject == id.Subject.String() && c != 0 {
			t.Errorf("expired root validates %d certs, want 0", c)
		}
	}
}

func TestUnrecordedExtrasHaveNoRecord(t *testing.T) {
	n, w := fedDB(t)
	u := w.Universe()
	for _, r := range u.Roots() {
		switch r.Class {
		case cauniverse.ExtraUnrecorded, cauniverse.RootedOnly, cauniverse.Interception:
			if n.HasRecord(r.Issued.Cert) {
				t.Errorf("%s (%v) should not be on record", r.Name, r.Class)
			}
		case cauniverse.ExtraAndroidRecorded, cauniverse.SharedByte, cauniverse.ExtraIOSOnly:
			if !n.HasRecord(r.Issued.Cert) {
				t.Errorf("%s (%v) should be on record", r.Name, r.Class)
			}
		}
	}
}

func TestNotaryString(t *testing.T) {
	n := notary.New(certgen.Epoch)
	if n.String() == "" {
		t.Error("String should describe the database")
	}
}

func TestPortDistribution(t *testing.T) {
	n, _ := fedDB(t)
	dist := n.PortDistribution()
	if len(dist) < 4 {
		t.Fatalf("port distribution has %d ports, want several (§4.2: any port)", len(dist))
	}
	if dist[0].Port != 443 {
		t.Errorf("busiest port = %d, want 443", dist[0].Port)
	}
	for i := 1; i < len(dist); i++ {
		if dist[i].Sessions > dist[i-1].Sessions {
			t.Fatal("distribution not sorted by sessions")
		}
	}
	seen := map[int]bool{}
	for _, pc := range dist {
		if seen[pc.Port] {
			t.Fatalf("duplicate port %d", pc.Port)
		}
		seen[pc.Port] = true
	}
	for _, want := range []int{993, 7275, 8883} {
		if !seen[want] {
			t.Errorf("port %d missing from distribution", want)
		}
	}
}

func TestLookupEntry(t *testing.T) {
	n, w := fedDB(t)
	leaf := w.Leaves()[0]
	e := n.Lookup(leaf.Chain[0])
	if e == nil {
		t.Fatal("observed leaf should have an entry")
	}
	if !e.SeenAsLeaf || e.Sessions < 1 {
		t.Errorf("entry = %+v", e)
	}
	if e.FirstSeen.IsZero() || e.LastSeen.Before(e.FirstSeen) {
		t.Errorf("seen window = [%v, %v]", e.FirstSeen, e.LastSeen)
	}
	// The returned entry is a copy.
	e.Ports[99999] = 1
	if n.Lookup(leaf.Chain[0]).Ports[99999] != 0 {
		t.Error("Lookup should return an isolated copy")
	}
	g := certgen.NewGenerator(990)
	stranger, _ := g.SelfSignedCA("Never Observed")
	if n.Lookup(stranger.Cert) != nil {
		t.Error("unknown cert should have no entry")
	}
}
