package notary_test

import (
	"bytes"
	"encoding/gob"
	"io"
	"strings"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/corpus"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/notary"
)

// v3Snapshot builds a valid checksummed snapshot to corrupt.
func v3Snapshot(t *testing.T) []byte {
	t.Helper()
	c := corpus.New()
	stream := dbObs(dbChains(t, 80, 4), 20)
	return saveBytes(t, expectedNotary(c, stream))
}

// TestLoadV3RejectsTruncation: a v3 snapshot cut at any length must fail
// loudly with a notary: error — the torn file a crash mid-write leaves
// behind must never decode into silently partial state.
func TestLoadV3RejectsTruncation(t *testing.T) {
	snap := v3Snapshot(t)
	cuts := []int{0, 1, len("TANGLED-NOTARY-SNAP3\n"), 40, len(snap) / 2, len(snap) - 33, len(snap) - 1}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(snap) {
			continue
		}
		_, err := notary.Load(bytes.NewReader(snap[:cut]))
		if err == nil {
			t.Errorf("snapshot truncated to %d of %d bytes accepted", cut, len(snap))
			continue
		}
		if !strings.HasPrefix(err.Error(), "notary:") {
			t.Errorf("truncation at %d: error %q should carry the notary: prefix", cut, err)
		}
	}
}

// TestLoadV3RejectsBitFlips: the SHA-256 trailer makes every single-bit
// flip detectable, anywhere in the file — magic, payload, or trailer.
func TestLoadV3RejectsBitFlips(t *testing.T) {
	snap := v3Snapshot(t)
	offsets := []int{0, 5, len("TANGLED-NOTARY-SNAP3\n") + 1, len(snap) / 3, len(snap) / 2, len(snap) - 40, len(snap) - 1}
	for _, off := range offsets {
		mut := append([]byte(nil), snap...)
		mut[off] ^= 0x01
		if _, err := notary.Load(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at offset %d of %d accepted", off, len(snap))
		}
	}
}

// TestLoadV2RejectsCorruption: legacy v2 snapshots have no checksum, but
// structural damage — truncation anywhere, or corruption inside a DER
// entry — must still be rejected rather than half-loaded.
func TestLoadV2RejectsCorruption(t *testing.T) {
	g := certgen.NewGenerator(81)
	root, err := g.SelfSignedCA("V2 Corrupt Root")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := g.Leaf(root, "v2corrupt.example.com")
	if err != nil {
		t.Fatal(err)
	}
	legacy := v2Snapshot{
		Version:  2,
		At:       certgen.Epoch,
		Sessions: 3,
		DER:      [][]byte{leaf.Cert.Raw, root.Cert.Raw},
		Entries: []v2Entry{
			{Cert: 0, SeenAsLeaf: true, Sessions: 3},
			{Cert: 1, Sessions: 3},
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	if _, err := notary.Load(bytes.NewReader(snap)); err != nil {
		t.Fatalf("pristine v2 snapshot rejected: %v", err)
	}

	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{1, 10, len(snap) / 2, len(snap) - 1} {
			if _, err := notary.Load(bytes.NewReader(snap[:cut])); err == nil {
				t.Errorf("v2 snapshot truncated to %d of %d bytes accepted", cut, len(snap))
			}
		}
	})
	t.Run("der corruption", func(t *testing.T) {
		// Find the leaf's DER inside the gob stream and break its inner
		// structure; the certificate parse on the way into the corpus must
		// refuse it.
		at := bytes.Index(snap, leaf.Cert.Raw)
		if at < 0 {
			t.Fatal("DER bytes not found in gob stream")
		}
		mut := append([]byte(nil), snap...)
		mut[at+len(leaf.Cert.Raw)/2] ^= 0xFF
		if _, err := notary.Load(bytes.NewReader(mut)); err == nil {
			t.Error("v2 snapshot with corrupted DER accepted")
		}
	})
	t.Run("negative sessions", func(t *testing.T) {
		neg := legacy
		neg.Sessions = -1
		var b bytes.Buffer
		if err := gob.NewEncoder(&b).Encode(neg); err != nil {
			t.Fatal(err)
		}
		if _, err := notary.Load(&b); err == nil {
			t.Error("v2 snapshot with negative session count accepted")
		}
	})
}

// TestSaveFileCrashSafeProtocol pins SaveFile's write-fsync-rename-fsync
// sequence by replaying it on the crashable filesystem: at every boundary
// a crash must leave either the complete old snapshot or the complete new
// one — never a torn or missing file.
func TestSaveFileCrashSafeProtocol(t *testing.T) {
	c := corpus.New()
	old := expectedNotary(c, dbObs(dbChains(t, 82, 3), 10))
	upd := expectedNotary(c, dbObs(dbChains(t, 82, 3), 30))
	oldBytes, updBytes := saveBytes(t, old), saveBytes(t, upd)

	// Profile run: count the boundaries one SaveFile crosses. CrashAfter(0)
	// resets the boundary counter after the setup writes.
	profile := faultfs.NewMem(1)
	writeRaw(t, profile, "data", "db.snap", oldBytes)
	profile.CrashAfter(0)
	if err := upd.SaveFileIn(profile, "data", "db.snap"); err != nil {
		t.Fatal(err)
	}
	total := profile.Boundaries()
	if total < 3 {
		t.Fatalf("SaveFile crossed %d boundaries, want write+fsync+rename+dirsync", total)
	}

	for cut := 1; cut <= total; cut++ {
		mem := faultfs.NewMem(int64(cut))
		writeRaw(t, mem, "data", "db.snap", oldBytes)
		mem.CrashAfter(cut)
		err := upd.SaveFileIn(mem, "data", "db.snap")
		mem.Reboot()
		f, oerr := mem.Open("data/db.snap")
		if oerr != nil {
			t.Fatalf("crash@%d: snapshot name vanished: %v", cut, oerr)
		}
		got, rerr := io.ReadAll(f)
		_ = f.Close()
		if rerr != nil {
			t.Fatalf("crash@%d: %v", cut, rerr)
		}
		switch {
		case bytes.Equal(got, oldBytes): // crash before publication: old survives
		case bytes.Equal(got, updBytes):
			if err == nil && cut < total {
				t.Errorf("crash@%d: SaveFile claimed success before the protocol finished", cut)
			}
		default:
			t.Fatalf("crash@%d: snapshot is neither old nor new (%d bytes)", cut, len(got))
		}
		if _, lerr := notary.Load(bytes.NewReader(got)); lerr != nil {
			t.Fatalf("crash@%d: surviving snapshot does not load: %v", cut, lerr)
		}
	}
}
