package notary_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	n, w := fedDB(t)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := notary.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUnique() != n.NumUnique() {
		t.Errorf("unique = %d, want %d", back.NumUnique(), n.NumUnique())
	}
	if back.NumUnexpired() != n.NumUnexpired() {
		t.Errorf("unexpired = %d, want %d", back.NumUnexpired(), n.NumUnexpired())
	}
	if back.Sessions() != n.Sessions() {
		t.Errorf("sessions = %d, want %d", back.Sessions(), n.Sessions())
	}
	if !back.At().Equal(n.At()) {
		t.Error("reference time not restored")
	}
	// The restored database answers validation identically.
	u := w.Universe()
	a := n.ValidateOne(u.AOSP("4.4"))
	b := back.ValidateOne(u.AOSP("4.4"))
	if a.Validated != b.Validated {
		t.Errorf("restored validate = %d, want %d", b.Validated, a.Validated)
	}
	if a.ZeroValidationFraction() != b.ZeroValidationFraction() {
		t.Error("restored zero-validation fraction differs")
	}
	// Record flags survive.
	for _, r := range u.Roots()[:20] {
		if n.HasRecord(r.Issued.Cert) != back.HasRecord(r.Issued.Cert) {
			t.Fatalf("HasRecord(%s) changed across round-trip", r.Name)
		}
	}
}

func TestSaveDeterministic(t *testing.T) {
	n, _ := fedDB(t)
	var a, b bytes.Buffer
	if err := n.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := n.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical databases should serialize identically")
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	n, _ := fedDB(t)
	path := filepath.Join(t.TempDir(), "notary.db")
	if err := n.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := notary.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUnique() != n.NumUnique() {
		t.Error("file round-trip lost entries")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := notary.Load(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage snapshot should error")
	}
	if _, err := notary.LoadFile(filepath.Join(t.TempDir(), "missing.db")); err == nil {
		t.Error("missing file should error")
	}
}

func TestSaveEmpty(t *testing.T) {
	n := notary.New(certgen.Epoch)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := notary.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUnique() != 0 || back.Sessions() != 0 {
		t.Error("empty database round-trip not empty")
	}
}
