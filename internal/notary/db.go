package notary

import (
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tangledmass/internal/corpus"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/rootstore"
)

// DB is the crash-recoverable persistence layer around a Notary: an
// append-only write-ahead journal of observations plus periodic
// checksummed snapshots, every byte of I/O routed through a faultfs.FS so
// the fault injector and the crashpoint sweep can drive it.
//
// The durability contract: an observation is acknowledged (Append
// returns nil) only after its journal records are fsynced. Recovery loads
// the newest valid snapshot, replays the journal in log order truncating
// an unchecksummable tail, and therefore always reconstructs an exact
// prefix of the submitted observation sequence that includes every
// acknowledged observation — nothing acknowledged is lost, nothing
// phantom appears. The crashpoint sweep in crash_test.go proves this for
// a crash after every write, fsync and rename boundary.
//
// On-disk layout, one generation live at a time:
//
//	snap-<gen>.v3   checksummed snapshot (persist.go's v3 envelope)
//	wal-<gen>.log   journal of everything observed since that snapshot
//
// A checkpoint writes snap-<gen+1> (write temp, fsync, rename, fsync
// dir), creates an empty wal-<gen+1> (header fsynced), and only then
// removes generation <gen>. A crash anywhere in that protocol leaves at
// least one complete generation on disk; recovery prefers the newest
// loadable one and deletes the rest.
type DB struct {
	n    *Notary
	fsys faultfs.FS
	dir  string

	mu     sync.Mutex
	gen    uint64
	w      *walWriter
	failed bool // a group commit failed: journal tail unknown, appends fenced
	closed bool
}

// ErrJournalFailed fences appends after a failed group commit: the
// journal's tail is in an unknown state, so nothing further may be
// acknowledged against it. A successful Checkpoint starts a fresh journal
// generation and lifts the fence.
var ErrJournalFailed = errors.New("notary: journal write failed; checkpoint required before further appends")

// errClosed rejects operations on a closed DB.
var errClosed = errors.New("notary: database is closed")

func snapName(gen uint64) string { return fmt.Sprintf("snap-%d.v3", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%d.log", gen) }

// parseGen extracts the generation from a data-dir file name, reporting
// whether the name is a snapshot, a journal, or neither.
func parseGen(name string) (gen uint64, isSnap, isWAL bool) {
	if s, ok := strings.CutPrefix(name, "snap-"); ok {
		if s, ok := strings.CutSuffix(s, ".v3"); ok {
			if g, err := strconv.ParseUint(s, 10, 64); err == nil {
				return g, true, false
			}
		}
	}
	if s, ok := strings.CutPrefix(name, "wal-"); ok {
		if s, ok := strings.CutSuffix(s, ".log"); ok {
			if g, err := strconv.ParseUint(s, 10, 64); err == nil {
				return g, false, true
			}
		}
	}
	return 0, false, false
}

// Open recovers (or initializes) a durable notary database in dir. When
// no usable snapshot exists the database starts empty with reference time
// at; otherwise the snapshot's reference time wins. Recovery replays the
// journal onto the snapshot, truncates any torn tail at the first bad
// checksum, and immediately checkpoints into a fresh generation, so a
// recovered directory is always exactly one snapshot plus one journal.
// opts configure the underlying Notary (WithCorpus, WithObserver,
// WithWorkers...).
func Open(fsys faultfs.FS, dir string, at time.Time, opts ...Option) (*DB, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("notary: creating data dir %s: %w", dir, err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("notary: reading data dir %s: %w", dir, err)
	}
	var snapGens, walGens []uint64
	for _, name := range names {
		if g, isSnap, isWAL := parseGen(name); isSnap {
			snapGens = append(snapGens, g)
		} else if isWAL {
			walGens = append(walGens, g)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })

	// Load the newest snapshot that passes its checksum; a torn newer one
	// (crash mid-checkpoint) falls back to its predecessor. The checkpoint
	// protocol keeps at least one loadable snapshot on disk whenever any
	// snapshot name is durable, so "snapshots present, none loadable" is
	// media corruption, not a crash — refuse to boot over it rather than
	// silently serving an empty database.
	var n *Notary
	var gen uint64
	var loadErrs []string
	for _, g := range snapGens {
		loaded, lerr := loadFS(fsys, faultfs.Join(dir, snapName(g)), opts...)
		if lerr != nil {
			loadErrs = append(loadErrs, lerr.Error())
			continue
		}
		n, gen = loaded, g
		break
	}
	if n == nil && len(snapGens) > 0 {
		return nil, fmt.Errorf("notary: %d snapshot(s) in %s, none loadable (run `tangled fsck`): %s",
			len(snapGens), dir, strings.Join(loadErrs, "; "))
	}
	if n == nil {
		n = New(at, opts...)
		for _, g := range walGens {
			if g > gen {
				gen = g
			}
		}
	}

	// Replay the journal of the recovered generation. A missing journal
	// means the crash hit between snapshot publication and journal
	// creation — the snapshot alone is complete. A torn tail is the
	// normal signature of a crash mid-group-commit: everything before it
	// replays, nothing after it was ever acknowledged.
	walPath := faultfs.Join(dir, walName(gen))
	hasWAL := false
	for _, g := range walGens {
		if g == gen {
			hasWAL = true
		}
	}
	if hasWAL {
		applied, tornAt, _, rerr := replayWAL(fsys, walPath, n)
		if rerr != nil {
			return nil, rerr
		}
		n.observer.Counter(KeyRecoverReplayed).Add(int64(applied))
		if tornAt >= 0 {
			n.observer.Counter(KeyRecoverTruncated).Inc()
		}
	}

	db := &DB{n: n, fsys: fsys, dir: dir, gen: gen}
	// Boot checkpoint: fold the replayed journal into a fresh generation.
	// This is what "truncates" the torn tail — the old journal is replaced
	// wholesale — and it leaves the directory in the canonical
	// one-snapshot-one-journal state no matter what the crash left behind.
	if err := db.checkpointLocked(); err != nil {
		return nil, err
	}
	return db, nil
}

// Notary returns the in-memory database the DB persists. Callers may read
// and Validate through it; writes must go through the DB so they are
// journaled.
func (db *DB) Notary() *Notary { return db.n }

// Gen returns the live on-disk generation number.
func (db *DB) Gen() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.gen
}

// Append journals a batch of observations with one group-commit fsync,
// then applies them to the in-memory database. It returns only after the
// records are durable: a nil error is the acknowledgment the crashpoint
// sweep holds recovery to.
func (db *DB) Append(batch []Observation) error {
	if len(batch) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	if db.failed {
		return ErrJournalFailed
	}
	for _, o := range batch {
		if len(o.Chain) == 0 {
			continue
		}
		db.w.addObs(db.n.c, o, db.n.c.InternChain(o.Chain))
	}
	if err := db.commitLocked(); err != nil {
		return err
	}
	db.n.ObserveAll(batch)
	return nil
}

// Observe journals and applies a single observation.
func (db *DB) Observe(o Observation) error { return db.Append([]Observation{o}) }

// ObserveAll is Append under the name the in-memory Notary uses, so the
// durable database satisfies the same feed interfaces (tlsnet.Sink).
func (db *DB) ObserveAll(batch []Observation) error { return db.Append(batch) }

// ObserveCA journals and applies one CA sighting (Notary.ObserveCA).
func (db *DB) ObserveCA(cert *x509.Certificate, port int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	if db.failed {
		return ErrJournalFailed
	}
	db.w.addCA(db.n.c, db.n.c.InternCert(cert), port)
	if err := db.commitLocked(); err != nil {
		return err
	}
	db.n.ObserveCA(cert, port)
	return nil
}

// ImportStore journals and applies a root-store import
// (Notary.ImportStore).
func (db *DB) ImportStore(s *rootstore.Store) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	if db.failed {
		return ErrJournalFailed
	}
	refs := s.Refs()
	if s.Corpus() != db.n.c {
		refs = db.n.c.InternChain(s.Certificates())
	}
	for _, ref := range refs {
		db.w.addImport(db.n.c, ref)
	}
	if err := db.commitLocked(); err != nil {
		return err
	}
	db.n.ImportStore(s)
	return nil
}

// commitLocked flushes the journal writer's pending records and accounts
// for them. Caller holds db.mu. On error the journal is fenced until the
// next successful checkpoint.
func (db *DB) commitLocked() error {
	recs, bytes, err := db.w.commit()
	if err != nil {
		db.failed = true
		return err
	}
	db.n.observer.Counter(KeyWALAppends).Add(int64(recs))
	db.n.observer.Counter(KeyWALBytes).Add(int64(bytes))
	db.n.observer.Counter(KeyWALFsyncs).Inc()
	return nil
}

// Checkpoint writes the current state as a fresh snapshot generation and
// truncates the journal (by starting an empty one). It also lifts the
// append fence after a journal failure: the snapshot captures exactly the
// acknowledged state, and the fresh journal has no unknown tail.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	next := db.gen + 1
	if err := db.n.saveFS(db.fsys, db.dir, snapName(next)); err != nil {
		db.n.observer.Counter(KeyCheckpointFailures).Inc()
		return err
	}
	w, err := createWAL(db.fsys, db.dir, walName(next))
	if err != nil {
		// The new snapshot is durable and self-sufficient; recovery from
		// it replays nothing. The old journal (if any) stays live for this
		// process.
		db.n.observer.Counter(KeyCheckpointFailures).Inc()
		return err
	}
	if db.w != nil {
		_ = db.w.close()
	}
	db.w = w
	db.gen = next
	db.failed = false

	// Retire every other generation and stray temp file. Best-effort: a
	// leftover is garbage-collected by the next recovery, never read.
	if names, err := db.fsys.ReadDir(db.dir); err == nil {
		for _, name := range names {
			g, isSnap, isWAL := parseGen(name)
			if (isSnap || isWAL) && g != next {
				_ = db.fsys.Remove(faultfs.Join(db.dir, name))
			}
			if strings.HasSuffix(name, ".tmp") {
				_ = db.fsys.Remove(faultfs.Join(db.dir, name))
			}
		}
		_ = db.fsys.SyncDir(db.dir)
	}
	db.n.observer.Counter(KeyCheckpointCount).Inc()
	return nil
}

// Close checkpoints the final state and releases the journal. The DB is
// unusable afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	err := db.checkpointLocked()
	if db.w != nil {
		if cerr := db.w.close(); err == nil {
			err = cerr
		}
	}
	db.closed = true
	return err
}

// FsckReport is the result of an offline integrity check of a notary data
// directory.
type FsckReport struct {
	// Dir is the checked directory.
	Dir string
	// Snapshot is the newest valid snapshot's file name ("" when none).
	Snapshot string
	// Entries and Sessions summarize the valid snapshot.
	Entries  int
	Sessions int64
	// Journal is the matching journal's file name ("" when missing).
	Journal string
	// Records is the count of valid journal records.
	Records int
	// Issues lists every integrity problem found: checksum-failing
	// snapshots, torn journal tails, orphaned generations, stray temp
	// files. Empty means the directory is exactly one intact generation.
	Issues []string
}

// Healthy reports whether the directory passed every check.
func (r *FsckReport) Healthy() bool { return len(r.Issues) == 0 }

// String renders the report in the fixed form `tangled fsck` prints.
func (r *FsckReport) String() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("fsck %s\n", r.Dir))
	if r.Snapshot == "" {
		b.WriteString("snapshot: none\n")
	} else {
		b.WriteString(fmt.Sprintf("snapshot: %s ok (%d entries, %d sessions)\n", r.Snapshot, r.Entries, r.Sessions))
	}
	if r.Journal == "" {
		b.WriteString("journal:  none\n")
	} else {
		b.WriteString(fmt.Sprintf("journal:  %s ok (%d records)\n", r.Journal, r.Records))
	}
	for _, issue := range r.Issues {
		b.WriteString(fmt.Sprintf("issue:    %s\n", issue))
	}
	if r.Healthy() {
		b.WriteString("clean\n")
	}
	return b.String()
}

// Fsck verifies a notary data directory offline: every snapshot's
// checksum envelope, every journal's header and per-record CRCs, and the
// one-live-generation layout invariant. It never modifies the directory.
func Fsck(fsys faultfs.FS, dir string) (*FsckReport, error) {
	r := &FsckReport{Dir: dir}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("notary: reading data dir %s: %w", dir, err)
	}
	type genFiles struct{ snap, wal bool }
	gens := map[uint64]*genFiles{}
	at := func(g uint64) *genFiles {
		if gens[g] == nil {
			gens[g] = &genFiles{}
		}
		return gens[g]
	}
	for _, name := range names {
		g, isSnap, isWAL := parseGen(name)
		switch {
		case isSnap:
			at(g).snap = true
		case isWAL:
			at(g).wal = true
		case strings.HasSuffix(name, ".tmp"):
			r.Issues = append(r.Issues, fmt.Sprintf("stray temp file %s (interrupted checkpoint)", name))
		default:
			r.Issues = append(r.Issues, fmt.Sprintf("unrecognized file %s", name))
		}
	}
	var ordered []uint64
	for g := range gens {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] > ordered[j] })

	// The corpus used for verification is throwaway: fsck must not pollute
	// the shared process corpus with whatever the directory holds.
	verifyOpts := []Option{WithCorpus(corpusForFsck())}
	best := uint64(0)
	haveBest := false
	for _, g := range ordered {
		f := gens[g]
		if f.snap {
			n, lerr := loadFS(fsys, faultfs.Join(dir, snapName(g)), verifyOpts...)
			if lerr != nil {
				r.Issues = append(r.Issues, fmt.Sprintf("%s: %v", snapName(g), lerr))
			} else if !haveBest {
				best, haveBest = g, true
				r.Snapshot = snapName(g)
				r.Entries = n.NumUnique()
				r.Sessions = n.Sessions()
			} else {
				r.Issues = append(r.Issues, fmt.Sprintf("%s: superseded generation not yet removed", snapName(g)))
			}
		}
	}
	for _, g := range ordered {
		f := gens[g]
		if !f.wal {
			continue
		}
		path := faultfs.Join(dir, walName(g))
		fh, oerr := fsys.Open(path)
		if oerr != nil {
			r.Issues = append(r.Issues, fmt.Sprintf("%s: %v", walName(g), oerr))
			continue
		}
		data, rerr := readAllClose(fh)
		if rerr != nil {
			r.Issues = append(r.Issues, fmt.Sprintf("%s: %v", walName(g), rerr))
			continue
		}
		recs, tornAt, tornWhy := walScan(data)
		current := haveBest && g == best || !haveBest && g == maxGen(ordered)
		if current {
			r.Journal = walName(g)
			r.Records = len(recs)
		} else {
			r.Issues = append(r.Issues, fmt.Sprintf("%s: superseded generation not yet removed", walName(g)))
		}
		if tornAt >= 0 {
			r.Issues = append(r.Issues, fmt.Sprintf("%s: torn tail at byte %d (%s); %d records intact", walName(g), tornAt, tornWhy, len(recs)))
		}
	}
	if haveBest && r.Journal == "" {
		r.Issues = append(r.Issues, fmt.Sprintf("%s has no journal (crash between snapshot and journal creation)", r.Snapshot))
	}
	return r, nil
}

func maxGen(ordered []uint64) uint64 {
	if len(ordered) == 0 {
		return 0
	}
	return ordered[0]
}

func readAllClose(f faultfs.File) ([]byte, error) {
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return nil, err
	}
	return data, cerr
}

// FsckDir is Fsck over the real filesystem — the `tangled fsck` entry
// point.
func FsckDir(dir string) (*FsckReport, error) { return Fsck(faultfs.Disk, dir) }

// corpusForFsck returns an isolated intern table for offline verification.
func corpusForFsck() *corpus.Corpus { return corpus.New() }
