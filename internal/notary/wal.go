package notary

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"tangledmass/internal/corpus"
	"tangledmass/internal/faultfs"
)

// The write-ahead journal is an append-only sequence of length-prefixed,
// per-record-checksummed frames:
//
//	[uint32 LE payload length][uint32 LE CRC32C(payload)][payload]
//
// preceded by a fixed magic header written and fsynced at creation time.
// The payload's first byte is the record type:
//
//   - walRecCert introduces a certificate: the rest is its DER encoding.
//     Certificates are assigned journal-local indexes in introduction
//     order, so a chain observed a thousand times serializes its DER once
//     per journal generation — the journal twin of snapshot v2's dedup
//     table.
//   - walRecObs is one observation: port, observation instant, and the
//     chain as cert indexes.
//   - walRecCA is one CA sighting (ObserveCA): port and one cert index.
//   - walRecImport marks one certificate as store-imported.
//
// A batch of records is written with a single Write call and one fsync —
// group commit. Nothing is acknowledged before that fsync returns, so
// recovery truncating an unchecksummable tail can only ever drop
// unacknowledged records.
const walMagic = "TANGLED-NOTARY-WAL1\n"

const (
	walRecCert   = byte(1)
	walRecObs    = byte(2)
	walRecCA     = byte(3)
	walRecImport = byte(4)
)

// crcTable is the Castagnoli polynomial — hardware-accelerated CRC32C.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walWriter appends framed records to an open journal file.
type walWriter struct {
	f       faultfs.File
	pending bytes.Buffer
	records int // records in pending
	// certIdx maps interned certificates to their journal-local index.
	certIdx map[corpus.Ref]uint32
}

// createWAL creates a journal at path: magic header written, fsynced, and
// the directory entry made durable. Only after it returns may records be
// acknowledged against the file.
func createWAL(fsys faultfs.FS, dir, base string) (*walWriter, error) {
	path := faultfs.Join(dir, base)
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("notary: creating journal %s: %w", path, err)
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("notary: writing journal header %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("notary: syncing journal header %s: %w", path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("notary: syncing directory %s: %w", dir, err)
	}
	return &walWriter{f: f, certIdx: make(map[corpus.Ref]uint32)}, nil
}

// frame appends one framed record to the pending group-commit buffer.
func (w *walWriter) frame(payload []byte) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	w.pending.Write(hdr[:])
	w.pending.Write(payload)
	w.records++
}

// addCerts frames cert-introduction records for any chain member the
// journal has not yet serialized and returns the chain as journal-local
// indexes.
func (w *walWriter) addCerts(c *corpus.Corpus, refs []corpus.Ref) []uint32 {
	idxs := make([]uint32, len(refs))
	for i, ref := range refs {
		idx, ok := w.certIdx[ref]
		if !ok {
			idx = uint32(len(w.certIdx))
			w.certIdx[ref] = idx
			der := c.DER(ref)
			payload := make([]byte, 1+len(der))
			payload[0] = walRecCert
			copy(payload[1:], der)
			w.frame(payload)
		}
		idxs[i] = idx
	}
	return idxs
}

// addObs frames one observation record (plus any new cert records).
func (w *walWriter) addObs(c *corpus.Corpus, o Observation, refs []corpus.Ref) {
	idxs := w.addCerts(c, refs)
	payload := make([]byte, 0, 1+4+8+4+4*len(idxs))
	payload = append(payload, walRecObs)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(o.Port))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(walInstant(o.SeenAt)))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(idxs)))
	for _, idx := range idxs {
		payload = binary.LittleEndian.AppendUint32(payload, idx)
	}
	w.frame(payload)
}

// addCA frames one ObserveCA record.
func (w *walWriter) addCA(c *corpus.Corpus, ref corpus.Ref, port int) {
	idxs := w.addCerts(c, []corpus.Ref{ref})
	payload := make([]byte, 0, 1+4+4)
	payload = append(payload, walRecCA)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(port))
	payload = binary.LittleEndian.AppendUint32(payload, idxs[0])
	w.frame(payload)
}

// addImport frames one store-import record.
func (w *walWriter) addImport(c *corpus.Corpus, ref corpus.Ref) {
	idxs := w.addCerts(c, []corpus.Ref{ref})
	payload := make([]byte, 0, 1+4)
	payload = append(payload, walRecImport)
	payload = binary.LittleEndian.AppendUint32(payload, idxs[0])
	w.frame(payload)
}

// commit group-commits the pending records: one write, one fsync. It
// returns the committed byte count. On error the journal tail is in an
// unknown state and the caller must fence further appends until a
// checkpoint starts a fresh journal.
func (w *walWriter) commit() (int, int, error) {
	n := w.pending.Len()
	recs := w.records
	w.records = 0
	if n == 0 {
		return 0, 0, nil
	}
	data := w.pending.Bytes()
	w.pending.Reset()
	if _, err := w.f.Write(data); err != nil {
		return recs, 0, fmt.Errorf("notary: appending %d journal records: %w", recs, err)
	}
	if err := w.f.Sync(); err != nil {
		return recs, 0, fmt.Errorf("notary: syncing journal: %w", err)
	}
	return recs, n, nil
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// walInstant maps an observation instant to its journal encoding: 0 for
// the zero time (meaning "use the database reference time"), UnixNano
// otherwise.
func walInstant(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// walRecord is one decoded journal record.
type walRecord struct {
	kind   byte
	der    []byte    // walRecCert
	port   int       // walRecObs, walRecCA
	seenAt time.Time // walRecObs
	chain  []uint32  // walRecObs: cert indexes
	cert   uint32    // walRecCA, walRecImport
}

// walScan parses journal bytes. It returns the decoded records, the byte
// offset of the first undecodable frame (-1 when the file is clean), and
// a description of why scanning stopped. A short or checksum-failing tail
// is the expected signature of a crash mid-group-commit; anything before
// a valid frame boundary is never skipped over.
func walScan(data []byte) (recs []walRecord, tornAt int64, tornWhy string) {
	if len(data) < len(walMagic) || !bytes.Equal(data[:len(walMagic)], []byte(walMagic)) {
		return nil, 0, "missing or torn journal header"
	}
	off := int64(len(walMagic))
	rest := data[len(walMagic):]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return recs, off, fmt.Sprintf("torn frame header (%d trailing bytes)", len(rest))
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if uint64(length) > uint64(len(rest)-8) {
			return recs, off, fmt.Sprintf("torn frame payload (%d of %d bytes)", len(rest)-8, length)
		}
		payload := rest[8 : 8+length]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, "frame checksum mismatch"
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return recs, off, err.Error()
		}
		recs = append(recs, rec)
		off += int64(8 + length)
		rest = rest[8+length:]
	}
	return recs, -1, ""
}

func decodeWALRecord(payload []byte) (walRecord, error) {
	if len(payload) == 0 {
		return walRecord{}, fmt.Errorf("empty record payload")
	}
	rec := walRecord{kind: payload[0]}
	body := payload[1:]
	switch rec.kind {
	case walRecCert:
		if len(body) == 0 {
			return walRecord{}, fmt.Errorf("cert record with no DER")
		}
		rec.der = body
	case walRecObs:
		if len(body) < 16 {
			return walRecord{}, fmt.Errorf("observation record too short (%d bytes)", len(body))
		}
		rec.port = int(binary.LittleEndian.Uint32(body[0:4]))
		// UTC, not local: replayed entries must serialize byte-identically
		// to live-applied ones, and gob's time encoding includes the zone.
		if ns := int64(binary.LittleEndian.Uint64(body[4:12])); ns != 0 {
			rec.seenAt = time.Unix(0, ns).UTC()
		}
		count := binary.LittleEndian.Uint32(body[12:16])
		if uint64(len(body)-16) != uint64(count)*4 {
			return walRecord{}, fmt.Errorf("observation record chain length mismatch")
		}
		rec.chain = make([]uint32, count)
		for i := range rec.chain {
			rec.chain[i] = binary.LittleEndian.Uint32(body[16+4*i : 20+4*i])
		}
	case walRecCA:
		if len(body) != 8 {
			return walRecord{}, fmt.Errorf("CA record length %d", len(body))
		}
		rec.port = int(binary.LittleEndian.Uint32(body[0:4]))
		rec.cert = binary.LittleEndian.Uint32(body[4:8])
	case walRecImport:
		if len(body) != 4 {
			return walRecord{}, fmt.Errorf("import record length %d", len(body))
		}
		rec.cert = binary.LittleEndian.Uint32(body[0:4])
	default:
		return walRecord{}, fmt.Errorf("unknown record type %d", rec.kind)
	}
	return rec, nil
}

// replayWAL applies a journal to the database: certificates are interned
// as their introduction records arrive, observations re-applied in log
// order. It returns the number of state records applied (observations,
// CA sightings, imports — cert introductions are bookkeeping) and the
// truncation offset (-1 for a clean tail). Decode errors inside the
// checksummed region reference the journal's own cert table; a record
// indexing past it is corruption and stops replay at that frame.
func replayWAL(fsys faultfs.FS, path string, n *Notary) (applied int, tornAt int64, tornWhy string, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, -1, "", fmt.Errorf("notary: opening journal %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return 0, -1, "", fmt.Errorf("notary: reading journal %s: %w", path, err)
	}
	if cerr != nil {
		return 0, -1, "", fmt.Errorf("notary: closing journal %s: %w", path, cerr)
	}
	recs, tornAt, tornWhy := walScan(data)
	var certs []corpus.Ref
	resolve := func(idx uint32) (corpus.Ref, bool) { // journal-local index -> ref
		if uint64(idx) >= uint64(len(certs)) {
			return 0, false
		}
		return certs[idx], true
	}
	for i, rec := range recs {
		switch rec.kind {
		case walRecCert:
			ref, ierr := n.c.Intern(rec.der)
			if ierr != nil {
				return applied, tornAt, tornWhy, fmt.Errorf("notary: journal record %d: %w", i, ierr)
			}
			certs = append(certs, ref)
		case walRecObs:
			refs := make([]corpus.Ref, len(rec.chain))
			for j, idx := range rec.chain {
				ref, ok := resolve(idx)
				if !ok {
					return applied, tornAt, tornWhy, fmt.Errorf("notary: journal record %d references certificate %d of %d", i, idx, len(certs))
				}
				refs[j] = ref
			}
			o := Observation{Port: rec.port, SeenAt: rec.seenAt}
			n.mu.Lock()
			n.applyRefs(o, refs)
			n.mu.Unlock()
			applied++
		case walRecCA:
			ref, ok := resolve(rec.cert)
			if !ok {
				return applied, tornAt, tornWhy, fmt.Errorf("notary: journal record %d references certificate %d of %d", i, rec.cert, len(certs))
			}
			n.mu.Lock()
			n.sessions++
			e := n.entryRef(ref)
			e.Sessions++
			e.Ports[rec.port]++
			e.touch(n.at)
			n.mu.Unlock()
			applied++
		case walRecImport:
			ref, ok := resolve(rec.cert)
			if !ok {
				return applied, tornAt, tornWhy, fmt.Errorf("notary: journal record %d references certificate %d of %d", i, rec.cert, len(certs))
			}
			n.mu.Lock()
			n.entryRef(ref).FromStore = true
			n.mu.Unlock()
			applied++
		}
	}
	return applied, tornAt, tornWhy, nil
}
