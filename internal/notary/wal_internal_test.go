package notary

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
	"time"
)

// buildFrame frames one payload exactly as walWriter.frame does.
func buildFrame(payload []byte) []byte {
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// obsPayload encodes a walRecObs payload by hand.
func obsPayload(port int, seenAt int64, chain []uint32) []byte {
	p := []byte{walRecObs}
	p = binary.LittleEndian.AppendUint32(p, uint32(port))
	p = binary.LittleEndian.AppendUint64(p, uint64(seenAt))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(chain)))
	for _, idx := range chain {
		p = binary.LittleEndian.AppendUint32(p, idx)
	}
	return p
}

func TestWALScanClean(t *testing.T) {
	data := []byte(walMagic)
	data = append(data, buildFrame(obsPayload(443, 0, []uint32{0, 1}))...)
	data = append(data, buildFrame(obsPayload(993, 12345, []uint32{2}))...)
	recs, tornAt, why := walScan(data)
	if tornAt != -1 || why != "" {
		t.Fatalf("clean journal reported torn at %d (%s)", tornAt, why)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].port != 443 || len(recs[0].chain) != 2 {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if !recs[0].seenAt.IsZero() {
		t.Error("zero instant should decode as the zero time")
	}
	if recs[1].seenAt.IsZero() || recs[1].seenAt.Location() != time.UTC {
		t.Errorf("record 1 instant = %v, want non-zero UTC", recs[1].seenAt)
	}
}

func TestWALScanMissingHeader(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("TANGLED-NOTARY-XXX1\nrest"),
	} {
		if _, tornAt, why := walScan(data); tornAt != 0 || why == "" {
			t.Errorf("header %q: tornAt=%d why=%q, want 0 with reason", data, tornAt, why)
		}
	}
}

// TestWALScanTornTails covers every way a crash mid-group-commit can cut
// the file: inside a frame header, inside a payload, and a bit flip that
// fails the CRC. Scanning must keep everything before the tear and report
// the exact tear offset.
func TestWALScanTornTails(t *testing.T) {
	good := buildFrame(obsPayload(443, 99, []uint32{0}))
	base := append([]byte(walMagic), good...)
	tail := buildFrame(obsPayload(8883, 100, []uint32{1, 2}))

	t.Run("short header", func(t *testing.T) {
		data := append(append([]byte{}, base...), tail[:5]...)
		recs, tornAt, why := walScan(data)
		if len(recs) != 1 || tornAt != int64(len(base)) || why == "" {
			t.Fatalf("recs=%d tornAt=%d why=%q", len(recs), tornAt, why)
		}
	})
	t.Run("short payload", func(t *testing.T) {
		data := append(append([]byte{}, base...), tail[:len(tail)-3]...)
		recs, tornAt, why := walScan(data)
		if len(recs) != 1 || tornAt != int64(len(base)) || why == "" {
			t.Fatalf("recs=%d tornAt=%d why=%q", len(recs), tornAt, why)
		}
	})
	t.Run("crc flip", func(t *testing.T) {
		data := append(append([]byte{}, base...), tail...)
		data[len(base)+10] ^= 0x01 // inside the tail frame's payload
		recs, tornAt, why := walScan(data)
		if len(recs) != 1 || tornAt != int64(len(base)) || why != "frame checksum mismatch" {
			t.Fatalf("recs=%d tornAt=%d why=%q", len(recs), tornAt, why)
		}
	})
	t.Run("flip in first frame keeps nothing", func(t *testing.T) {
		data := append(append([]byte{}, base...), tail...)
		data[len(walMagic)+9] ^= 0x01
		recs, tornAt, why := walScan(data)
		if len(recs) != 0 || tornAt != int64(len(walMagic)) || why == "" {
			t.Fatalf("recs=%d tornAt=%d why=%q", len(recs), tornAt, why)
		}
	})
}

func TestWALScanRejectsMalformedRecords(t *testing.T) {
	cases := map[string][]byte{
		"empty payload":     {},
		"unknown type":      {0xEE, 1, 2, 3},
		"obs too short":     {walRecObs, 1, 2},
		"obs chain len lie": obsPayload(443, 0, []uint32{0})[:17],
		"cert no der":       {walRecCert},
		"ca wrong length":   {walRecCA, 1, 2, 3},
		"import wrong len":  {walRecImport, 1, 2, 3, 4, 5},
	}
	for name, payload := range cases {
		data := append([]byte(walMagic), buildFrame(payload)...)
		recs, tornAt, why := walScan(data)
		if len(recs) != 0 || tornAt != int64(len(walMagic)) || why == "" {
			t.Errorf("%s: recs=%d tornAt=%d why=%q, want stop at frame", name, len(recs), tornAt, why)
		}
	}
}

func TestWALInstant(t *testing.T) {
	if walInstant(time.Time{}) != 0 {
		t.Error("zero time must encode as 0")
	}
	at := time.Date(2013, time.November, 2, 3, 4, 5, 6, time.UTC)
	if got := walInstant(at); got != at.UnixNano() {
		t.Errorf("walInstant = %d, want %d", got, at.UnixNano())
	}
}
