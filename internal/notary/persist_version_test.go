package notary_test

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
)

// The v1 on-disk layout, reconstructed field-for-field: each entry carried
// its DER inline, there was no top-level certificate table. gob matches
// struct fields by name, so encoding these decodes through the current
// superset snapshot struct exactly as a real v1 file would.
type v1Snapshot struct {
	Version  int
	At       time.Time
	Sessions int64
	Entries  []v1Entry
}

type v1Entry struct {
	DER        []byte
	SeenAsLeaf bool
	FromStore  bool
	Sessions   int64
	FirstSeen  time.Time
	LastSeen   time.Time
	Ports      []v1Port
}

type v1Port struct {
	Port  int
	Count int64
}

// The v2 layout, for crafting corrupt snapshots the public API can't
// produce.
type v2Snapshot struct {
	Version  int
	At       time.Time
	Sessions int64
	DER      [][]byte
	Entries  []v2Entry
}

type v2Entry struct {
	Cert       int
	SeenAsLeaf bool
	Sessions   int64
}

// TestLoadV1Snapshot writes a legacy inline-DER snapshot and checks the
// current Load restores it with full fidelity, then upgrades it: re-saving
// the loaded database and loading that must preserve everything again.
func TestLoadV1Snapshot(t *testing.T) {
	g := certgen.NewGenerator(60)
	root, err := g.SelfSignedCA("V1 Root")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := g.Leaf(root, "v1.example.com")
	if err != nil {
		t.Fatal(err)
	}
	seen := certgen.Epoch.Add(24 * time.Hour)
	legacy := v1Snapshot{
		Version:  1,
		At:       certgen.Epoch,
		Sessions: 7,
		Entries: []v1Entry{
			{
				DER:        leaf.Cert.Raw,
				SeenAsLeaf: true,
				Sessions:   7,
				FirstSeen:  certgen.Epoch,
				LastSeen:   seen,
				Ports:      []v1Port{{Port: 443, Count: 5}, {Port: 993, Count: 2}},
			},
			{
				DER:       root.Cert.Raw,
				FromStore: true,
			},
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}

	n, err := notary.Load(&buf)
	if err != nil {
		t.Fatalf("loading v1 snapshot: %v", err)
	}
	checkV1Contents := func(n *notary.Notary, label string) {
		t.Helper()
		if n.NumUnique() != 2 || n.Sessions() != 7 {
			t.Fatalf("%s: unique/sessions = %d/%d, want 2/7", label, n.NumUnique(), n.Sessions())
		}
		if !n.At().Equal(certgen.Epoch) {
			t.Errorf("%s: reference time not restored", label)
		}
		le := n.Lookup(leaf.Cert)
		if le == nil || !le.SeenAsLeaf || le.Sessions != 7 {
			t.Fatalf("%s: leaf entry = %+v", label, le)
		}
		if le.Ports[443] != 5 || le.Ports[993] != 2 {
			t.Errorf("%s: ports = %v", label, le.Ports)
		}
		if !le.FirstSeen.Equal(certgen.Epoch) || !le.LastSeen.Equal(seen) {
			t.Errorf("%s: observation window = %v..%v", label, le.FirstSeen, le.LastSeen)
		}
		re := n.Lookup(root.Cert)
		if re == nil || !re.FromStore || re.SeenAsLeaf {
			t.Fatalf("%s: root entry = %+v", label, re)
		}
	}
	checkV1Contents(n, "v1 load")

	// Upgrade: re-save writes the current format; nothing may be lost.
	var v2 bytes.Buffer
	if err := n.Save(&v2); err != nil {
		t.Fatal(err)
	}
	back, err := notary.Load(&v2)
	if err != nil {
		t.Fatal(err)
	}
	checkV1Contents(back, "v2 reload")
}

// TestSaveLoadSaveIdempotent pins the upgrade path as a fixed point: once a
// database has been through Save, loading and re-saving must reproduce the
// bytes exactly.
func TestSaveLoadSaveIdempotent(t *testing.T) {
	n, _ := fedDB(t)
	var first bytes.Buffer
	if err := n.Save(&first); err != nil {
		t.Fatal(err)
	}
	back, err := notary.Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("Save -> Load -> Save changed the snapshot bytes")
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	for _, v := range []int{0, 3, 99} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v1Snapshot{Version: v}); err != nil {
			t.Fatal(err)
		}
		if _, err := notary.Load(&buf); err == nil {
			t.Errorf("version %d accepted", v)
		}
	}
}

func TestLoadRejectsBadCertIndex(t *testing.T) {
	g := certgen.NewGenerator(61)
	root, err := g.SelfSignedCA("Bad Index Root")
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{-1, 1, 5} {
		bad := v2Snapshot{
			Version: 2,
			At:      certgen.Epoch,
			DER:     [][]byte{root.Cert.Raw},
			Entries: []v2Entry{{Cert: idx, SeenAsLeaf: true, Sessions: 1}},
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(bad); err != nil {
			t.Fatal(err)
		}
		if _, err := notary.Load(&buf); err == nil {
			t.Errorf("certificate index %d accepted", idx)
		}
	}
}
