package notarynet

// Metric keys the notary service and its client emit (see the registry in
// README.md). Package-prefixed compile-time constants, per the obskey lint
// rule.
const (
	// KeyIngestTotal counts accepted (non-duplicate) chain observations,
	// leaf and CA submissions combined.
	KeyIngestTotal = "notarynet.ingest.total"
	// KeyIngestDedupe counts re-sent observations absorbed by the
	// idempotency window.
	KeyIngestDedupe = "notarynet.ingest.dedupe.hit"
	// KeyIngestRejected counts observations refused by the write path —
	// with the durable ingester, journal commits that failed before
	// acknowledgment (the sensor retries them).
	KeyIngestRejected = "notarynet.ingest.rejected"
	// KeyQueryTotal counts read-side requests (has_record, stats,
	// validate).
	KeyQueryTotal = "notarynet.query.total"
	// KeyBadRequest counts undecodable or unknown-op requests.
	KeyBadRequest = "notarynet.request.bad"
	// KeySensorsActive gauges currently connected sensors/clients.
	KeySensorsActive = "notarynet.sensors.active"
	// KeyClientDials counts transport dials the client performed.
	KeyClientDials = "notarynet.client.dial.total"
	// KeyClientDialErrors counts client dials that failed.
	KeyClientDialErrors = "notarynet.client.dial.error"
)
