package notarynet

import (
	"context"
	"crypto/x509"
	"errors"
	"strings"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/notary"
	"tangledmass/internal/notaryshard"
	"tangledmass/internal/tlsnet"
)

// TestObserveBatchOverTheWire drives the batched ingest path end to end
// with a real client: one request, many observations, one acknowledgment.
func TestObserveBatchOverTheWire(t *testing.T) {
	n := notary.New(certgen.Epoch)
	srv, err := NewServer(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	root, leaves := testPKI(t)

	cl, err := NewClient(context.Background(), srv.Addr(), WithoutBreaker())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	batch := make([]ChainObservation, len(leaves))
	for i, leaf := range leaves {
		batch[i] = ChainObservation{Chain: []*x509.Certificate{leaf, root.Cert}, Port: 443}
	}
	if err := cl.ObserveBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if got := n.Sessions(); got != int64(len(batch)) {
		t.Fatalf("sessions = %d, want %d", got, len(batch))
	}
	if got := srv.Snapshot().Counters[KeyIngestTotal]; got != int64(len(batch)) {
		t.Fatalf("ingest counter = %d, want %d (counts observations, not requests)", got, len(batch))
	}
	// Empty batches and empty chains are protocol errors, not panics.
	if resp := srv.dispatch(Request{Op: "observe_batch"}); resp.OK {
		t.Fatal("empty batch accepted")
	}
	if resp := srv.dispatch(Request{Op: "observe_batch", Batch: []BatchItem{{}}}); resp.OK {
		t.Fatal("empty chain accepted")
	}
}

// TestObserveBatchAtomicThroughDB checks the durable delegation: the
// server hands a whole batch to notary.DB.Append, one group commit, so a
// batch is never half-acknowledged.
func TestObserveBatchAtomicThroughDB(t *testing.T) {
	db, err := notary.Open(faultfs.Disk, t.TempDir(), certgen.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := NewServer(db.Notary(), "127.0.0.1:0", WithIngester(db))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	root, leaves := testPKI(t)

	items := make([]BatchItem, len(leaves))
	for i, leaf := range leaves {
		items[i] = BatchItem{Chain: EncodeChain([]*x509.Certificate{leaf, root.Cert}), Port: 8883}
	}
	resp := srv.dispatch(Request{Op: "observe_batch", ID: "db-batch", Batch: items})
	if !resp.OK || resp.Applied != len(items) {
		t.Fatalf("batch through DB = %+v, want OK with %d applied", resp, len(items))
	}
	if got := db.Notary().Sessions(); got != int64(len(items)) {
		t.Fatalf("sessions = %d, want %d", got, len(items))
	}
}

// TestRouterBatchRetryExactlyOncePerShard extends the ingester retry
// contract to the sharded router: when one shard fails mid-batch, the
// server must surface the error AND forget the request's idempotency ID,
// and the sensor's retry under the same ID must land each observation
// exactly once per shard — shards that committed the first attempt skip
// it, the shard that failed applies it.
func TestRouterBatchRetryExactlyOncePerShard(t *testing.T) {
	w, err := tlsnet.NewWorld(tlsnet.Config{Seed: 11, NumLeaves: 300})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := notaryshard.New(certgen.Epoch, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The cluster is both view and (batch) ingester.
	srv, err := NewServer(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// A batch wide enough to span all three shards.
	var items []BatchItem
	var size int
	for _, leaf := range w.Leaves() {
		items = append(items, BatchItem{Chain: EncodeChain(leaf.Chain), Port: leaf.Port})
		size++
		if size >= 60 {
			break
		}
	}

	boom := errors.New("shard 1 lost its disk")
	cluster.FailNext(1, boom)
	req := Request{Op: "observe_batch", ID: "sharded-batch", Batch: items}
	resp := srv.dispatch(req)
	if resp.OK || !strings.Contains(resp.Error, "lost its disk") {
		t.Fatalf("failed sharded batch = %+v, want the shard error surfaced", resp)
	}
	if got := srv.Snapshot().Counters[KeyIngestRejected]; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// Retry with the SAME ID: the server-level window must have forgotten
	// it (otherwise the retry is absorbed and the failed shard's slice is
	// lost), while the per-shard windows inside the router dedupe the
	// shards that already committed.
	resp = srv.dispatch(req)
	if !resp.OK || resp.Applied != len(items) {
		t.Fatalf("retry = %+v, want OK with %d applied", resp, len(items))
	}
	if got, want := cluster.Sessions(), int64(len(items)); got != want {
		t.Fatalf("sessions after retry = %d, want exactly %d — an observation was dropped or double-applied", got, want)
	}

	// A genuine duplicate after full success is absorbed whole.
	resp = srv.dispatch(req)
	if !resp.OK {
		t.Fatalf("duplicate = %+v, want OK", resp)
	}
	if got, want := cluster.Sessions(), int64(len(items)); got != want {
		t.Fatalf("sessions after duplicate = %d, want %d", got, want)
	}
}
