package notarynet

import (
	"context"
	"crypto/x509"
	"errors"
	"strings"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/faultfs"
	"tangledmass/internal/notary"
)

// gateIngester rejects writes while closed — the shape of a durable
// ingester whose journal is fenced after a commit failure.
type gateIngester struct {
	n      *notary.Notary
	reject bool
}

var errGateClosed = errors.New("journal fenced")

func (g *gateIngester) Observe(o notary.Observation) error {
	if g.reject {
		return errGateClosed
	}
	g.n.Observe(o)
	return nil
}

func (g *gateIngester) ObserveCA(cert *x509.Certificate, port int) error {
	if g.reject {
		return errGateClosed
	}
	g.n.ObserveCA(cert, port)
	return nil
}

// TestIngesterErrorSurfacesAndRetrySucceeds: a failing write path must
// turn into a protocol error (not a silent drop), must not poison the
// idempotency window — the retry with the SAME ID has to be processed,
// not absorbed as a duplicate — and must count in the rejected metric.
func TestIngesterErrorSurfacesAndRetrySucceeds(t *testing.T) {
	n := notary.New(certgen.Epoch)
	gate := &gateIngester{n: n}
	srv, err := NewServer(n, "127.0.0.1:0", WithIngester(gate))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	root, leaves := testPKI(t)
	chain := []*x509.Certificate{leaves[0], root.Cert}

	gate.reject = true
	req := Request{Op: "observe", ID: "retry-1", Chain: EncodeChain(chain), Port: 443}
	resp := srv.dispatch(req)
	if resp.OK || !strings.Contains(resp.Error, "journal fenced") {
		t.Fatalf("rejected observe = %+v, want the ingester error", resp)
	}
	if n.Sessions() != 0 {
		t.Fatal("rejected observation must not reach the database")
	}
	if got := srv.Snapshot().Counters[KeyIngestRejected]; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// The fence lifts; the sensor retries with the same idempotency ID.
	gate.reject = false
	resp = srv.dispatch(req)
	if !resp.OK {
		t.Fatalf("retry after fence = %+v, want OK", resp)
	}
	if n.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1 (retry processed, not deduplicated)", n.Sessions())
	}
	// A second, genuine duplicate IS absorbed.
	resp = srv.dispatch(req)
	if !resp.OK {
		t.Fatalf("duplicate = %+v, want OK", resp)
	}
	if n.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1 (duplicate absorbed)", n.Sessions())
	}

	// Same contract for CA sightings.
	gate.reject = true
	caReq := Request{Op: "observe_ca", ID: "retry-ca", Cert: EncodeCert(root.Cert), Port: 8883}
	if resp := srv.dispatch(caReq); resp.OK {
		t.Fatal("rejected observe_ca should error")
	}
	gate.reject = false
	if resp := srv.dispatch(caReq); !resp.OK {
		t.Fatalf("observe_ca retry = %+v, want OK", resp)
	}
	if n.Sessions() != 2 {
		t.Fatalf("sessions = %d, want 2", n.Sessions())
	}
}

// TestDurableIngesterEndToEnd wires a real notary.DB as the server's
// ingester and checks an over-the-wire observation lands in the journal:
// after a reboot with no graceful shutdown, the observation survives.
func TestDurableIngesterEndToEnd(t *testing.T) {
	dir := t.TempDir()
	db, err := notary.Open(faultfs.Disk, dir, certgen.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(db.Notary(), "127.0.0.1:0", WithIngester(db))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	root, leaves := testPKI(t)

	cl, err := NewClient(context.Background(), srv.Addr(), WithoutBreaker())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Observe(context.Background(), []*x509.Certificate{leaves[1], root.Cert}, 993); err != nil {
		t.Fatal(err)
	}
	// No db.Close(): the acknowledgment alone must be durable.
	srv.Close()

	rdb, err := notary.Open(faultfs.Disk, dir, certgen.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if got := rdb.Notary().Sessions(); got != 1 {
		t.Fatalf("recovered sessions = %d, want 1", got)
	}
	if !rdb.Notary().HasRecord(leaves[1]) {
		t.Fatal("acknowledged observation missing after reboot")
	}
}
