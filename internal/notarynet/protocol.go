// Package notarynet puts the Notary on the network, mirroring the real
// deployment the paper draws on ("Extracting Certificates from Live
// Traffic: A Near Real-Time SSL Notary Service"): sensors at participating
// networks stream observed chains to a central service, and analysis
// clients query it.
//
// The wire protocol is newline-delimited JSON over TCP. Every request
// carries an "op"; certificates travel as base64 DER. One response line
// answers each request, so a connection can pipeline.
package notarynet

import (
	"crypto/x509"
	"encoding/base64"
	"fmt"

	"tangledmass/internal/corpus"
)

// Request is one protocol message from client to server.
type Request struct {
	// Op selects the operation: "observe", "observe_batch", "observe_ca",
	// "has_record", "stats", "validate".
	Op string `json:"op"`
	// ID is a client-unique idempotency token. A client that re-sends a
	// mutating request after a lost response keeps the ID, and the server
	// acknowledges the duplicate without applying it twice.
	ID string `json:"id,omitempty"`
	// Chain is the observed chain, leaf first, base64 DER (observe).
	Chain []string `json:"chain,omitempty"`
	// Batch carries many observations in one request (observe_batch) — the
	// sensor-side amortization that lets loadgen sustain millions of
	// sessions without a round trip each.
	Batch []BatchItem `json:"batch,omitempty"`
	// Cert is a single base64 DER certificate (observe_ca, has_record).
	Cert string `json:"cert,omitempty"`
	// Port is the observation port (observe, observe_ca).
	Port int `json:"port,omitempty"`
	// Roots is a base64 DER root set (validate).
	Roots []string `json:"roots,omitempty"`
	// StoreName labels the validate result.
	StoreName string `json:"store_name,omitempty"`
}

// Response is one protocol message from server to client.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// Stats fields.
	Unique    int   `json:"unique,omitempty"`
	Unexpired int   `json:"unexpired,omitempty"`
	Sessions  int64 `json:"sessions,omitempty"`

	// HasRecord field.
	Recorded bool `json:"recorded,omitempty"`

	// Validate fields.
	Validated    int   `json:"validated,omitempty"`
	PerRootCount []int `json:"per_root_count,omitempty"` // aligned with request root order

	// Applied is how many observations an observe_batch recorded.
	Applied int `json:"applied,omitempty"`
}

// BatchItem is one observation inside an observe_batch request.
type BatchItem struct {
	// Chain is the observed chain, leaf first, base64 DER.
	Chain []string `json:"chain"`
	// Port is the observation port.
	Port int `json:"port,omitempty"`
}

// EncodeCert renders a certificate for the wire.
func EncodeCert(c *x509.Certificate) string {
	return base64.StdEncoding.EncodeToString(c.Raw)
}

// DecodeCert parses a wire certificate through the shared corpus: a
// certificate already seen by this process (in a store, a tap, a snapshot)
// decodes to its canonical interned instance without re-parsing.
func DecodeCert(s string) (*x509.Certificate, error) {
	der, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("notarynet: bad base64: %w", err)
	}
	ref, err := corpus.Intern(der)
	if err != nil {
		return nil, fmt.Errorf("notarynet: bad certificate: %w", err)
	}
	return corpus.CertOf(ref), nil
}

// EncodeChain renders a chain for the wire.
func EncodeChain(chain []*x509.Certificate) []string {
	out := make([]string, len(chain))
	for i, c := range chain {
		out[i] = EncodeCert(c)
	}
	return out
}

// DecodeChain parses a wire chain.
func DecodeChain(ss []string) ([]*x509.Certificate, error) {
	out := make([]*x509.Certificate, len(ss))
	for i, s := range ss {
		c, err := DecodeCert(s)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}
