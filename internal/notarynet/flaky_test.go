package notarynet

import (
	"context"
	"crypto/x509"
	"fmt"
	"net"
	"testing"
	"time"

	"tangledmass/internal/faultnet"
	"tangledmass/internal/resilient"
)

// flakyClient dials srv through a faultnet injector under its own scope so
// resets mid-response, truncated lines and slowed writes hit the client's
// transport.
func flakyClient(t *testing.T, addr string, in *faultnet.Injector, scope string) *Client {
	t.Helper()
	dial := in.DialFunc(scope, "notary", func(ctx context.Context, addr string) (net.Conn, error) {
		d := &net.Dialer{Timeout: 5 * time.Second}
		return d.DialContext(ctx, "tcp", addr)
	})
	c, err := NewClient(context.Background(), addr,
		WithDialFunc(dial),
		// Enough attempts that a run of injected faults cannot exhaust the
		// policy; tight delays keep the test fast.
		WithRetryPolicy(resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 8,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		}, 1)),
		// The breaker's cooldown is wall-clock; with injected faults arriving
		// in bursts it would turn transient noise into hard failures here.
		WithoutBreaker())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestClientSurvivesFlakyServer(t *testing.T) {
	srv, n := startServer(t)
	root, leaves := testPKI(t)

	in := faultnet.New(faultnet.Plan{
		Seed:         42,
		ResetProb:    0.20,
		TruncateProb: 0.15,
		LatencyProb:  0.10,
		// Let whole response lines through before the reset so the server
		// has already applied the observe — the lost-response case the
		// idempotency IDs exist for — and a later roundtrip on the same
		// connection is what dies mid-response. The truncate budget cuts a
		// response line in half instead.
		ResetAfterBytes:    32,
		TruncateAfterBytes: 16,
		LatencyAmount:      time.Millisecond,
	})

	// Several sensors, each with its own decision scope — the injector's
	// intended shape. A clean connection lives for the whole sensor; a
	// faulted one dies mid-stream and forces a reconnect under retry.
	const sensors = 8
	const perSensor = 5
	const observations = sensors * perSensor
	for s := 0; s < sensors; s++ {
		c := flakyClient(t, srv.Addr(), in, fmt.Sprintf("sensor-%d", s))
		for i := 0; i < perSensor; i++ {
			if err := c.Observe(context.Background(), []*x509.Certificate{leaves[i%len(leaves)], root.Cert}, 443); err != nil {
				t.Fatalf("sensor %d observe %d through flaky transport: %v", s, i, err)
			}
		}
	}
	c := flakyClient(t, srv.Addr(), in, "analysis")
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if in.Total() == 0 {
		t.Fatal("no faults fired; the plan exercised nothing")
	}
	// Every retried observe re-sent its idempotency ID, so replays after a
	// lost response must not double-count.
	if st.Sessions != observations {
		t.Errorf("sessions = %d, want %d (retries must not duplicate observes)", st.Sessions, observations)
	}
	if n.Sessions() != observations {
		t.Errorf("server notary sessions = %d, want %d", n.Sessions(), observations)
	}
}

func TestClientReconnectsAfterDeadline(t *testing.T) {
	srv, _ := startServer(t)
	root, leaves := testPKI(t)

	// Every dial stalls: the first roundtrip times out, the transport is
	// marked broken, and each retry reconnects — stalling again — until the
	// policy is exhausted.
	in := faultnet.New(faultnet.Plan{Seed: 7, StallProb: 1, StallFor: 5 * time.Millisecond})
	dial := in.DialFunc("sensor", "notary", func(ctx context.Context, addr string) (net.Conn, error) {
		d := &net.Dialer{Timeout: 5 * time.Second}
		return d.DialContext(ctx, "tcp", addr)
	})
	c, err := NewClient(context.Background(), srv.Addr(),
		WithTimeout(50*time.Millisecond),
		WithDialFunc(dial),
		WithRetryPolicy(resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 2,
			BaseDelay:   time.Millisecond,
			MaxDelay:    time.Millisecond,
		}, 0)),
		WithoutBreaker())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Observe(context.Background(), []*x509.Certificate{leaves[0], root.Cert}, 443)
	if err == nil {
		t.Fatal("observe through an always-stalling transport should fail")
	}
	if !c.broken {
		t.Error("transport should be marked broken after a deadline failure")
	}
	// Dials: the eager connect, then one reconnect for the second attempt —
	// the first attempt reuses the eager transport, and the stall poisons
	// each one before a response lands.
	dials := in.Dials()
	if len(dials) != 1 || dials[0].Target != "notary" || dials[0].Count != 2 {
		t.Errorf("dials = %+v, want notary dialed exactly twice", dials)
	}

	// A healthy transport heals the client: swap the dialer is not possible,
	// so route around the injector by observing that a fresh client works.
	c2, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Observe(context.Background(), []*x509.Certificate{leaves[0], root.Cert}, 443); err != nil {
		t.Fatal(err)
	}
}
