package notarynet

import (
	"context"
	"crypto/x509"
	"net"
	"strings"
	"sync"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/notary"
	"tangledmass/internal/resilient"
	"tangledmass/internal/rootstore"
)

// quickRetry keeps failure-path tests fast: one attempt, no backoff.
func quickRetry() *resilient.Retrier {
	return resilient.NewRetrier(resilient.Policy{MaxAttempts: 1}, 0)
}

func startServer(t *testing.T) (*Server, *notary.Notary) {
	t.Helper()
	n := notary.New(certgen.Epoch)
	srv, err := NewServer(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, n
}

func testPKI(t *testing.T) (root *certgen.Issued, leaves []*x509.Certificate) {
	t.Helper()
	g := certgen.NewGenerator(90)
	root, err := g.SelfSignedCA("Net Root")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		leaf, err := g.Leaf(root, string(rune('a'+i))+".example.com")
		if err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, leaf.Cert)
	}
	return root, leaves
}

func TestObserveAndStats(t *testing.T) {
	srv, n := startServer(t)
	root, leaves := testPKI(t)
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, leaf := range leaves {
		if err := c.Observe(context.Background(), []*x509.Certificate{leaf, root.Cert}, 443); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 4 {
		t.Errorf("sessions = %d, want 4", st.Sessions)
	}
	if st.Unique != 5 {
		t.Errorf("unique = %d, want 5 (4 leaves + root)", st.Unique)
	}
	// Server-side notary agrees.
	if n.NumUnique() != 5 {
		t.Errorf("server notary unique = %d", n.NumUnique())
	}
	snap := srv.Snapshot()
	if got := snap.Counters[KeyIngestTotal]; got != 4 {
		t.Errorf("%s = %d, want 4", KeyIngestTotal, got)
	}
	if got := snap.Counters[KeyQueryTotal]; got != 1 {
		t.Errorf("%s = %d, want 1 (the stats call)", KeyQueryTotal, got)
	}
}

func TestHasRecordRoundTrip(t *testing.T) {
	srv, _ := startServer(t)
	root, leaves := testPKI(t)
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got, err := c.HasRecord(context.Background(), leaves[0])
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("unobserved cert should not be on record")
	}
	if err := c.ObserveCA(context.Background(), root.Cert, 443); err != nil {
		t.Fatal(err)
	}
	got, err = c.HasRecord(context.Background(), root.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("observed CA should be on record")
	}
}

func TestRemoteValidate(t *testing.T) {
	srv, _ := startServer(t)
	root, leaves := testPKI(t)
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, leaf := range leaves {
		if err := c.Observe(context.Background(), []*x509.Certificate{leaf, root.Cert}, 443); err != nil {
			t.Fatal(err)
		}
	}
	// A store with the root plus an unrelated root.
	g := certgen.NewGenerator(91)
	other, _ := g.SelfSignedCA("Unrelated Root")
	store := rootstore.New("remote")
	store.Add(root.Cert)
	store.Add(other.Cert)

	res, err := c.Validate(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if res.Validated != 4 {
		t.Errorf("validated = %d, want 4", res.Validated)
	}
	if len(res.PerRoot) != 2 || res.PerRoot[0] != 4 || res.PerRoot[1] != 0 {
		t.Errorf("per-root = %v, want [4 0]", res.PerRoot)
	}
}

func TestPipelinedRequests(t *testing.T) {
	srv, _ := startServer(t)
	root, leaves := testPKI(t)
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if err := c.Observe(context.Background(), []*x509.Certificate{leaves[i%len(leaves)], root.Cert}, 443); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 50 {
		t.Errorf("sessions = %d, want 50", st.Sessions)
	}
}

func TestConcurrentSensors(t *testing.T) {
	srv, n := startServer(t)
	root, leaves := testPKI(t)
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewClient(context.Background(), srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 25; i++ {
				if err := c.Observe(context.Background(), []*x509.Certificate{leaves[i%len(leaves)], root.Cert}, 993); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n.Sessions() != 200 {
		t.Errorf("sessions = %d, want 200", n.Sessions())
	}
}

func TestProtocolErrors(t *testing.T) {
	srv, _ := startServer(t)
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Unknown op.
	if _, err := c.roundTrip(context.Background(), Request{Op: "explode"}); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("unknown op error = %v", err)
	}
	// Bad certificate payload.
	if _, err := c.roundTrip(context.Background(), Request{Op: "has_record", Cert: "!!!"}); err == nil {
		t.Error("bad base64 should error")
	}
	if _, err := c.roundTrip(context.Background(), Request{Op: "observe", Chain: []string{"aGVsbG8="}}); err == nil {
		t.Error("non-certificate DER should error")
	}
	// Empty chain / empty roots.
	if _, err := c.roundTrip(context.Background(), Request{Op: "observe"}); err == nil {
		t.Error("empty chain should error")
	}
	if _, err := c.roundTrip(context.Background(), Request{Op: "validate"}); err == nil {
		t.Error("empty root set should error")
	}
	// The connection survives errors: a valid request still works.
	if _, err := c.Stats(context.Background()); err != nil {
		t.Errorf("connection should survive protocol errors: %v", err)
	}
}

func TestMalformedJSONLine(t *testing.T) {
	srv, _ := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "bad request") {
		t.Errorf("response = %s", buf[:n])
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := NewClient(context.Background(), srv.Addr(), WithRetryPolicy(quickRetry())); err == nil {
		t.Error("dial after close should fail")
	}
}

func TestLargeValidateRequest(t *testing.T) {
	// A full 262-root aggregated store crosses the wire in one line.
	u := cauniverse.Default()
	n := notary.New(certgen.Epoch)
	srv, err := NewServer(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Validate(context.Background(), u.AggregatedAndroid())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRoot) != u.AggregatedAndroid().Len() {
		t.Errorf("per-root entries = %d, want %d", len(res.PerRoot), u.AggregatedAndroid().Len())
	}
	if res.Validated != 0 {
		t.Errorf("empty notary validated %d", res.Validated)
	}
}
