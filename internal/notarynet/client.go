package notarynet

import (
	"bufio"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"tangledmass/internal/rootstore"
)

// Client talks to a notarynet server over one TCP connection. It is safe
// for sequential use only (the protocol is request/response per line);
// use one client per goroutine.
type Client struct {
	conn    net.Conn
	scanner *bufio.Scanner
	enc     *json.Encoder
	timeout time.Duration
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("notarynet: dialing %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	return &Client{conn: conn, scanner: sc, enc: json.NewEncoder(conn), timeout: time.Minute}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return Response{}, fmt.Errorf("notarynet: setting deadline: %w", err)
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("notarynet: sending %s: %w", req.Op, err)
	}
	if !c.scanner.Scan() {
		if err := c.scanner.Err(); err != nil {
			return Response{}, fmt.Errorf("notarynet: reading response: %w", err)
		}
		return Response{}, errors.New("notarynet: connection closed by server")
	}
	var resp Response
	if err := json.Unmarshal(c.scanner.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("notarynet: decoding response: %w", err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("notarynet: server error: %s", resp.Error)
	}
	return resp, nil
}

// Observe submits one observed chain.
func (c *Client) Observe(chain []*x509.Certificate, port int) error {
	_, err := c.roundTrip(Request{Op: "observe", Chain: EncodeChain(chain), Port: port})
	return err
}

// ObserveCA submits one CA certificate seen in traffic (non-leaf).
func (c *Client) ObserveCA(cert *x509.Certificate, port int) error {
	_, err := c.roundTrip(Request{Op: "observe_ca", Cert: EncodeCert(cert), Port: port})
	return err
}

// HasRecord queries whether the server knows the certificate.
func (c *Client) HasRecord(cert *x509.Certificate) (bool, error) {
	resp, err := c.roundTrip(Request{Op: "has_record", Cert: EncodeCert(cert)})
	if err != nil {
		return false, err
	}
	return resp.Recorded, nil
}

// Stats is the server's database summary.
type Stats struct {
	Unique    int
	Unexpired int
	Sessions  int64
}

// Stats fetches the database summary.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return Stats{}, err
	}
	return Stats{Unique: resp.Unique, Unexpired: resp.Unexpired, Sessions: resp.Sessions}, nil
}

// ValidateResult is a remote validation outcome.
type ValidateResult struct {
	// Validated is how many Notary leaves chain to the submitted roots.
	Validated int
	// PerRoot aligns with the submitted root order.
	PerRoot []int
}

// Validate runs the Table 3/4 analysis server-side for the given store.
func (c *Client) Validate(store *rootstore.Store) (ValidateResult, error) {
	resp, err := c.roundTrip(Request{
		Op:        "validate",
		StoreName: store.Name(),
		Roots:     EncodeChain(store.Certificates()),
	})
	if err != nil {
		return ValidateResult{}, err
	}
	return ValidateResult{Validated: resp.Validated, PerRoot: resp.PerRootCount}, nil
}
