package notarynet

import (
	"bufio"
	"context"
	"crypto/rand"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"tangledmass/internal/obs"
	"tangledmass/internal/resilient"
	"tangledmass/internal/rootstore"
)

// Client talks to a notarynet server. It is safe for sequential use only
// (the protocol is request/response per line); use one client per
// goroutine. Transient transport failures — refused connects, resets,
// timeouts, truncated responses — are retried on a fresh connection under
// the client's retry policy: after any mid-exchange failure the scanner
// may hold a half-read response for an earlier request, so the transport
// is marked broken and never reused, which is what keeps a retried
// roundTrip from reading a stale response for the wrong request. Mutating
// requests carry idempotency IDs the server deduplicates, so a retry after
// a lost response does not double-observe.
type Client struct {
	addr    string
	timeout time.Duration
	dial    func(ctx context.Context, addr string) (net.Conn, error)
	retry   *resilient.Retrier
	breaker *resilient.Breaker
	obs     *obs.Observer

	nonce string
	seq   uint64

	conn    net.Conn
	scanner *bufio.Scanner
	enc     *json.Encoder
	broken  bool
}

// NewClient connects to a server. The initial connect already runs under
// the retry policy, bounded by ctx. Options: WithTimeout, WithRetryPolicy,
// WithBreaker/WithoutBreaker, WithDialFunc, WithObserver.
func NewClient(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	op := buildOptions(opts)
	c := &Client{
		addr:    addr,
		timeout: op.timeout,
		dial:    op.dial,
		retry:   op.retry,
		breaker: op.breaker,
		obs:     op.observer,
		nonce:   newNonce(),
	}
	if c.timeout <= 0 {
		c.timeout = time.Minute
	}
	if c.dial == nil {
		c.dial = func(ctx context.Context, addr string) (net.Conn, error) {
			d := &net.Dialer{Timeout: 10 * time.Second}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if c.retry == nil {
		c.retry = resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 4,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}, 0).WithObserver(op.observer)
	}
	if c.breaker == nil && !op.disableBreaker {
		c.breaker = resilient.NewBreaker(5, time.Second).WithObserver(op.observer)
	}
	if err := c.retry.Do(ctx, func(int) error { return c.connect(ctx) }); err != nil {
		return nil, err
	}
	return c, nil
}

// newNonce labels this client's idempotency IDs. Uniqueness, not
// unpredictability, is what matters; an entropy-pool failure is not
// recoverable.
func newNonce() string {
	b := make([]byte, 6)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("notarynet: reading nonce entropy: %v", err))
	}
	return hex.EncodeToString(b)
}

// connect establishes a fresh transport, replacing any broken one.
func (c *Client) connect(ctx context.Context) error {
	c.obs.Counter(KeyClientDials).Inc()
	conn, err := c.dial(ctx, c.addr)
	if err != nil {
		c.obs.Counter(KeyClientDialErrors).Inc()
		return fmt.Errorf("notarynet: dialing %s: %w", c.addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	c.conn, c.scanner, c.enc, c.broken = conn, sc, json.NewEncoder(conn), false
	return nil
}

// markBroken poisons the transport after a mid-exchange failure so the
// next attempt starts on a fresh connection.
func (c *Client) markBroken() {
	c.broken = true
	if c.conn != nil {
		_ = c.conn.Close()
	}
}

// Close releases the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// roundTrip sends one request and reads one response, reconnecting and
// retrying transient failures within ctx. Every request carries a unique
// ID so the server can deduplicate re-sent mutations.
func (c *Client) roundTrip(ctx context.Context, req Request) (Response, error) {
	req.ID = fmt.Sprintf("%s-%d", c.nonce, c.seq)
	c.seq++
	var resp Response
	err := c.retry.Do(ctx, func(int) error {
		if err := c.breaker.Allow(); err != nil {
			return err
		}
		r, err := c.attempt(ctx, req)
		// The breaker tracks transport health: transient failures trip it,
		// while protocol rejections over a healthy connection do not.
		if resilient.Classify(err) == resilient.Transient {
			c.breaker.Record(err)
		} else {
			c.breaker.Record(nil)
		}
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}

// attempt runs one exchange on the current transport.
func (c *Client) attempt(ctx context.Context, req Request) (Response, error) {
	if c.broken || c.conn == nil {
		if err := c.connect(ctx); err != nil {
			return Response{}, err
		}
	}
	deadline := time.Now().Add(c.timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.markBroken()
		return Response{}, fmt.Errorf("notarynet: setting deadline: %w", err)
	}
	if err := c.enc.Encode(req); err != nil {
		c.markBroken()
		return Response{}, fmt.Errorf("notarynet: sending %s: %w", req.Op, err)
	}
	if !c.scanner.Scan() {
		err := c.scanner.Err()
		c.markBroken()
		if err != nil {
			return Response{}, fmt.Errorf("notarynet: reading response: %w", err)
		}
		return Response{}, resilient.MarkTransient(errors.New("notarynet: connection closed by server"))
	}
	var resp Response
	if err := json.Unmarshal(c.scanner.Bytes(), &resp); err != nil {
		// Corrupted or truncated line: the framing is no longer trustworthy.
		c.markBroken()
		return Response{}, resilient.MarkTransient(fmt.Errorf("notarynet: decoding response: %w", err))
	}
	if !resp.OK {
		// Protocol-level rejection over a healthy transport: not retryable,
		// and the connection stays usable.
		return resp, resilient.MarkPermanent(fmt.Errorf("notarynet: server error: %s", resp.Error))
	}
	return resp, nil
}

// Observe submits one observed chain.
func (c *Client) Observe(ctx context.Context, chain []*x509.Certificate, port int) error {
	_, err := c.roundTrip(ctx, Request{Op: "observe", Chain: EncodeChain(chain), Port: port})
	return err
}

// ChainObservation is one chain for ObserveBatch.
type ChainObservation struct {
	Chain []*x509.Certificate
	Port  int
}

// ObserveBatch submits many observed chains in one request, amortizing the
// round trip. The whole batch shares one idempotency ID: a retry after a
// lost response is applied exactly once end to end (and, against the
// sharded router, exactly once per shard).
func (c *Client) ObserveBatch(ctx context.Context, batch []ChainObservation) error {
	if len(batch) == 0 {
		return nil
	}
	items := make([]BatchItem, len(batch))
	for i, o := range batch {
		items[i] = BatchItem{Chain: EncodeChain(o.Chain), Port: o.Port}
	}
	_, err := c.roundTrip(ctx, Request{Op: "observe_batch", Batch: items})
	return err
}

// ObserveCA submits one CA certificate seen in traffic (non-leaf).
func (c *Client) ObserveCA(ctx context.Context, cert *x509.Certificate, port int) error {
	_, err := c.roundTrip(ctx, Request{Op: "observe_ca", Cert: EncodeCert(cert), Port: port})
	return err
}

// HasRecord queries whether the server knows the certificate.
func (c *Client) HasRecord(ctx context.Context, cert *x509.Certificate) (bool, error) {
	resp, err := c.roundTrip(ctx, Request{Op: "has_record", Cert: EncodeCert(cert)})
	if err != nil {
		return false, err
	}
	return resp.Recorded, nil
}

// Stats is the server's database summary.
type Stats struct {
	Unique    int
	Unexpired int
	Sessions  int64
}

// Stats fetches the database summary.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	resp, err := c.roundTrip(ctx, Request{Op: "stats"})
	if err != nil {
		return Stats{}, err
	}
	return Stats{Unique: resp.Unique, Unexpired: resp.Unexpired, Sessions: resp.Sessions}, nil
}

// ValidateResult is a remote validation outcome.
type ValidateResult struct {
	// Validated is how many Notary leaves chain to the submitted roots.
	Validated int
	// PerRoot aligns with the submitted root order.
	PerRoot []int
}

// Validate runs the Table 3/4 analysis server-side for the given store.
func (c *Client) Validate(ctx context.Context, store *rootstore.Store) (ValidateResult, error) {
	resp, err := c.roundTrip(ctx, Request{
		Op:        "validate",
		StoreName: store.Name(),
		Roots:     EncodeChain(store.Certificates()),
	})
	if err != nil {
		return ValidateResult{}, err
	}
	return ValidateResult{Validated: resp.Validated, PerRoot: resp.PerRootCount}, nil
}
