package notarynet

import (
	"context"
	"net"
	"time"

	"tangledmass/internal/obs"
	"tangledmass/internal/resilient"
)

// options collects the knobs shared by NewServer and NewClient: one Option
// vocabulary for both constructors, so the package exposes a single
// uniform New(addr, ...Option) shape.
type options struct {
	observer       *obs.Observer
	ingester       Ingester
	timeout        time.Duration
	retry          *resilient.Retrier
	breaker        *resilient.Breaker
	disableBreaker bool
	dial           func(ctx context.Context, addr string) (net.Conn, error)
}

// Option configures a notarynet server or client.
type Option func(*options)

// WithObserver attaches the observer counters and gauges report through.
// Without it the server creates a private observer (so Snapshot and the
// debug handler always work) and the client stays silent.
func WithObserver(o *obs.Observer) Option {
	return func(op *options) { op.observer = o }
}

// WithIngester routes the server's write operations (observe, observe_ca)
// through ing instead of straight into the in-memory Notary. notaryd
// passes the durable notary.DB here, making the network acknowledgment
// and the fsync acknowledgment one and the same. Client-side it is
// ignored.
func WithIngester(ing Ingester) Option {
	return func(op *options) { op.ingester = ing }
}

// WithTimeout bounds one client round trip. Zero (the default) means one
// minute. Server-side it is ignored.
func WithTimeout(d time.Duration) Option {
	return func(op *options) { op.timeout = d }
}

// WithRetryPolicy overrides the client's retry policy. Nil (the default)
// means 4 attempts with short jittered backoff.
func WithRetryPolicy(r *resilient.Retrier) Option {
	return func(op *options) { op.retry = r }
}

// WithBreaker overrides the client's circuit breaker. The default is 5
// consecutive round-trip failures opening the circuit for a second.
func WithBreaker(b *resilient.Breaker) Option {
	return func(op *options) { op.breaker = b }
}

// WithoutBreaker runs the client with no circuit breaker — deterministic
// harnesses use this because the breaker's cooldown is wall-clock.
func WithoutBreaker() Option {
	return func(op *options) { op.disableBreaker = true }
}

// WithDialFunc overrides the client's transport dialer — the
// fault-injection harness hooks in here. Nil (the default) means TCP with
// a 10s connect timeout.
func WithDialFunc(dial func(ctx context.Context, addr string) (net.Conn, error)) Option {
	return func(op *options) { op.dial = dial }
}

func buildOptions(opts []Option) options {
	var op options
	for _, o := range opts {
		o(&op)
	}
	return op
}
