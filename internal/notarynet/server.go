package notarynet

import (
	"bufio"
	"crypto/x509"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"tangledmass/internal/corpus"
	"tangledmass/internal/notary"
	"tangledmass/internal/obs"
	"tangledmass/internal/rootstore"
)

// maxLineBytes bounds one protocol line. Chains of a few certificates fit
// in well under 64 KiB; a validate request carrying a 262-root store needs
// more.
const maxLineBytes = 8 << 20

// seenCap bounds the idempotency-ID window. Retries follow failures within
// seconds, so a few thousand recent IDs is plenty; older ones age out.
const seenCap = 4096

// Ingester is the server's write path. The default wraps the Notary
// directly (in-memory only); daemons running the durable layer pass the
// notary.DB via WithIngester so every accepted observation is journaled
// and fsynced before the sensor sees its acknowledgment. A non-nil error
// turns into a protocol-level error response — the sensor retries, and
// nothing unacknowledged is double-counted thanks to the idempotency IDs.
type Ingester interface {
	Observe(o notary.Observation) error
	ObserveCA(cert *x509.Certificate, port int) error
}

// BatchIngester is the write path for observe_batch when the ingester
// needs the request's idempotency ID — the sharded router applies a batch
// shard by shard and must remember, per shard, which IDs that shard has
// already committed, so a retry after a mid-batch failure is applied
// exactly once per shard. The server's own whole-batch dedupe still
// absorbs retries whose first attempt fully succeeded.
type BatchIngester interface {
	Ingester
	ObserveBatch(id string, batch []notary.Observation) error
}

// batchAppender is the atomic batch shape notary.DB already has: one
// Append is one group commit, applied in memory only after it is durable,
// so a failed Append never leaves a partially acknowledged batch behind.
type batchAppender interface {
	Append(batch []notary.Observation) error
}

// View is the server's read path: the queries has_record, stats and
// validate are answered from it. The bare *notary.Notary satisfies it; a
// sharded notaryshard.Cluster answers from its shard-ordered merged view,
// which is what keeps remote validation byte-identical at any shard
// count.
type View interface {
	HasRecord(cert *x509.Certificate) bool
	NumUnique() int
	NumUnexpired() int
	Sessions() int64
	ValidateOne(s *rootstore.Store) *notary.StoreReport
}

// notaryIngester adapts the bare in-memory Notary to the Ingester shape.
type notaryIngester struct{ n *notary.Notary }

func (ni notaryIngester) Observe(o notary.Observation) error { ni.n.Observe(o); return nil }
func (ni notaryIngester) ObserveCA(cert *x509.Certificate, port int) error {
	ni.n.ObserveCA(cert, port)
	return nil
}

// Server exposes a Notary over TCP. Construct with NewServer; Close stops
// it.
type Server struct {
	view View
	ing  Ingester
	ln   net.Listener
	obs  *obs.Observer

	mu        sync.Mutex
	closed    bool
	wg        sync.WaitGroup
	seen      map[string]bool
	seenOrder []string
}

// NewServer starts a server answering reads from v on addr ("127.0.0.1:0"
// for an ephemeral port). Writes go through the WithIngester option when
// given; otherwise v itself must be writable — a bare *notary.Notary or
// anything implementing Ingester (the sharded cluster). Options:
// WithObserver shares an observer (the default is a private one, so
// Snapshot and the debug handler always have something to serve).
func NewServer(v View, addr string, opts ...Option) (*Server, error) {
	op := buildOptions(opts)
	ing := op.ingester
	if ing == nil {
		switch w := v.(type) {
		case *notary.Notary:
			ing = notaryIngester{n: w}
		case Ingester:
			ing = w
		default:
			return nil, fmt.Errorf("notarynet: view %T is not writable; pass WithIngester", v)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("notarynet: listening on %s: %w", addr, err)
	}
	observer := op.observer
	if observer == nil {
		observer = obs.New()
	}
	s := &Server{view: v, ing: ing, ln: ln, obs: observer, seen: make(map[string]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Observer returns the server's observer — the daemons mount obs.Handler
// on it.
func (s *Server) Observer() *obs.Observer { return s.obs }

// Snapshot captures the server's current metrics: ingest/dedupe/query
// counters and the sensor-connection gauge. Tests assert against this
// instead of reaching into server internals.
func (s *Server) Snapshot() obs.Snapshot { return s.obs.Snapshot() }

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.obs.Gauge(KeySensorsActive).Inc()
	defer s.obs.Gauge(KeySensorsActive).Dec()
	// Sensors stream for long periods; analysis clients are short-lived.
	// An idle deadline reaps abandoned connections either way.
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64<<10), maxLineBytes)
	enc := json.NewEncoder(conn)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Minute)); err != nil {
			return
		}
		if !scanner.Scan() {
			return
		}
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		resp := Response{OK: true}
		if err := json.Unmarshal(line, &req); err != nil {
			s.obs.Counter(KeyBadRequest).Inc()
			resp = Response{Error: "bad request: " + err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		if err := conn.SetWriteDeadline(time.Now().Add(time.Minute)); err != nil {
			return
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// duplicate records id and reports whether it was already seen. Requests
// without an ID are never deduplicated.
func (s *Server) duplicate(id string) bool {
	if id == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[id] {
		return true
	}
	s.seen[id] = true
	s.seenOrder = append(s.seenOrder, id)
	if len(s.seenOrder) > seenCap {
		delete(s.seen, s.seenOrder[0])
		s.seenOrder = s.seenOrder[1:]
	}
	return false
}

// forget drops an idempotency ID recorded by duplicate — used when the
// ingest behind it failed, so the eventual retry is processed rather than
// deduplicated. The ID stays in seenOrder; the aging loop tolerates
// already-deleted entries.
func (s *Server) forget(id string) {
	if id == "" {
		return
	}
	s.mu.Lock()
	delete(s.seen, id)
	s.mu.Unlock()
}

func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case "observe":
		chain, err := DecodeChain(req.Chain)
		if err != nil {
			return Response{Error: err.Error()}
		}
		if len(chain) == 0 {
			return Response{Error: "observe: empty chain"}
		}
		// Acknowledge a re-sent observation whose response was lost without
		// double-counting it; dedupe runs after validation so malformed
		// retries still error.
		if s.duplicate(req.ID) {
			s.obs.Counter(KeyIngestDedupe).Inc()
			return Response{OK: true}
		}
		if err := s.ing.Observe(notary.Observation{Chain: chain, Port: req.Port}); err != nil {
			// The observation was NOT durably recorded: forget the ID so the
			// sensor's retry is not absorbed as a duplicate and lost.
			s.forget(req.ID)
			s.obs.Counter(KeyIngestRejected).Inc()
			return Response{Error: "observe: " + err.Error()}
		}
		s.obs.Counter(KeyIngestTotal).Inc()
		return Response{OK: true}

	case "observe_ca":
		cert, err := DecodeCert(req.Cert)
		if err != nil {
			return Response{Error: err.Error()}
		}
		if s.duplicate(req.ID) {
			s.obs.Counter(KeyIngestDedupe).Inc()
			return Response{OK: true}
		}
		if err := s.ing.ObserveCA(cert, req.Port); err != nil {
			s.forget(req.ID)
			s.obs.Counter(KeyIngestRejected).Inc()
			return Response{Error: "observe_ca: " + err.Error()}
		}
		s.obs.Counter(KeyIngestTotal).Inc()
		return Response{OK: true}

	case "observe_batch":
		if len(req.Batch) == 0 {
			return Response{Error: "observe_batch: empty batch"}
		}
		batch := make([]notary.Observation, len(req.Batch))
		for i, item := range req.Batch {
			chain, err := DecodeChain(item.Chain)
			if err != nil {
				return Response{Error: err.Error()}
			}
			if len(chain) == 0 {
				return Response{Error: fmt.Sprintf("observe_batch: empty chain at index %d", i)}
			}
			batch[i] = notary.Observation{Chain: chain, Port: item.Port}
		}
		if s.duplicate(req.ID) {
			s.obs.Counter(KeyIngestDedupe).Inc()
			return Response{OK: true, Applied: len(batch)}
		}
		// Delegation order matters for retry safety: a BatchIngester (the
		// sharded router) tracks the ID per shard, an atomic appender (the
		// durable DB) commits all-or-nothing, and only the plain in-memory
		// Notary takes the item loop, where partial application is harmless
		// because Observe never fails.
		var err error
		switch ing := s.ing.(type) {
		case BatchIngester:
			err = ing.ObserveBatch(req.ID, batch)
		case batchAppender:
			err = ing.Append(batch)
		default:
			for _, o := range batch {
				if err = s.ing.Observe(o); err != nil {
					break
				}
			}
		}
		if err != nil {
			s.forget(req.ID)
			s.obs.Counter(KeyIngestRejected).Inc()
			return Response{Error: "observe_batch: " + err.Error()}
		}
		s.obs.Counter(KeyIngestTotal).Add(int64(len(batch)))
		return Response{OK: true, Applied: len(batch)}

	case "has_record":
		cert, err := DecodeCert(req.Cert)
		if err != nil {
			return Response{Error: err.Error()}
		}
		s.obs.Counter(KeyQueryTotal).Inc()
		return Response{OK: true, Recorded: s.view.HasRecord(cert)}

	case "stats":
		s.obs.Counter(KeyQueryTotal).Inc()
		return Response{
			OK:        true,
			Unique:    s.view.NumUnique(),
			Unexpired: s.view.NumUnexpired(),
			Sessions:  s.view.Sessions(),
		}

	case "validate":
		roots, err := DecodeChain(req.Roots)
		if err != nil {
			return Response{Error: err.Error()}
		}
		if len(roots) == 0 {
			return Response{Error: "validate: empty root set"}
		}
		name := req.StoreName
		if name == "" {
			name = "client store"
		}
		store := rootstore.New(name)
		store.AddAll(roots)
		rep := s.view.ValidateOne(store)
		counts := make([]int, len(roots))
		for i, r := range roots {
			counts[i] = rep.PerRoot[corpus.IdentityOf(r)]
		}
		s.obs.Counter(KeyQueryTotal).Inc()
		return Response{OK: true, Validated: rep.Validated, PerRootCount: counts}

	default:
		s.obs.Counter(KeyBadRequest).Inc()
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
