package parallel

// Metric and span keys the parallel engine emits (see the registry in
// README.md). Package-prefixed compile-time constants, per the obskey lint
// rule.
const (
	// KeyShardSpan is the span stage covering one shard's (or one worker
	// slot's) share of a fan-out; the session label carries the shard index.
	KeyShardSpan = "parallel.shard"
	// KeyTasksTotal counts individual tasks executed across all fan-outs.
	KeyTasksTotal = "parallel.tasks.total"
	// KeyShardsTotal counts shards (worker slots) launched.
	KeyShardsTotal = "parallel.shards.total"
	// KeyRunsTotal counts fan-out invocations (one per ForEach/Map/
	// Accumulate call that actually launched workers).
	KeyRunsTotal = "parallel.runs.total"
)
