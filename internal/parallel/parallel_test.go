package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"tangledmass/internal/obs"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 17} {
		var hits [100]atomic.Int64
		err := ForEach(context.Background(), len(hits), func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		}, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	for _, n := range []int{0, -3} {
		if err := ForEach(context.Background(), n, func(context.Context, int) error {
			t.Fatal("fn must not run")
			return nil
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	failAt := map[int]bool{3: true, 40: true, 90: true}
	for _, workers := range []int{1, 4, 17} {
		err := ForEach(context.Background(), 100, func(_ context.Context, i int) error {
			if failAt[i] {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		}, WithWorkers(workers))
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: want deterministic lowest-index error, got %v", workers, err)
		}
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 1000, func(_ context.Context, i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	}, WithWorkers(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the pool: %d tasks ran", n)
	}
}

func TestMapPreservesInputOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 17} {
		out, err := Map(context.Background(), 50, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		}, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapDiscardsPartialResultsOnError(t *testing.T) {
	out, err := Map(context.Background(), 10, func(_ context.Context, i int) (int, error) {
		if i == 7 {
			return 0, errors.New("boom")
		}
		return i, nil
	}, WithWorkers(4))
	if err == nil || out != nil {
		t.Fatalf("want nil results and an error, got %v, %v", out, err)
	}
}

func TestShardsContiguousAndBalanced(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {7, 7}, {100, 17}, {5, 1}} {
		rs := shards(tc.n, tc.k)
		if len(rs) != tc.k {
			t.Fatalf("shards(%d,%d): got %d shards", tc.n, tc.k, len(rs))
		}
		next := 0
		for _, r := range rs {
			if r.start != next {
				t.Fatalf("shards(%d,%d): gap at %d", tc.n, tc.k, r.start)
			}
			if size := r.end - r.start; size < tc.n/tc.k || size > tc.n/tc.k+1 {
				t.Fatalf("shards(%d,%d): unbalanced shard size %d", tc.n, tc.k, size)
			}
			next = r.end
		}
		if next != tc.n {
			t.Fatalf("shards(%d,%d): covers [0,%d), want [0,%d)", tc.n, tc.k, next, tc.n)
		}
	}
}

// TestAccumulateMatchesSerialFold pins the determinism contract: an
// order-sensitive first-writer-wins merge produces the identical result at
// every worker count, because shards fold in index order and merge in
// shard order.
func TestAccumulateMatchesSerialFold(t *testing.T) {
	n := 1000
	firstSeen := func() map[int]int { return map[int]int{} }
	fold := func(acc map[int]int, start, end int) map[int]int {
		for i := start; i < end; i++ {
			k := i % 37 // many indices collide per key; the first must win
			if _, ok := acc[k]; !ok {
				acc[k] = i
			}
		}
		return acc
	}
	merge := func(into, from map[int]int) map[int]int {
		for k, v := range from {
			if _, ok := into[k]; !ok {
				into[k] = v
			}
		}
		return into
	}
	serial, err := Accumulate(context.Background(), n, firstSeen, fold, merge, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 17, 100} {
		got, err := Accumulate(context.Background(), n, firstSeen, fold, merge, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: parallel result differs from serial fold", workers)
		}
	}
}

func TestAccumulateEmpty(t *testing.T) {
	acc, err := Accumulate(context.Background(), 0,
		func() int { return 42 },
		func(acc, start, end int) int { return acc + end - start },
		func(into, from int) int { return into + from })
	if err != nil || acc != 42 {
		t.Fatalf("want fresh accumulator 42, got %d, %v", acc, err)
	}
}

func TestObserverInstrumentation(t *testing.T) {
	o := obs.New()
	if err := ForEach(context.Background(), 10, func(context.Context, int) error { return nil },
		WithWorkers(2), WithObserver(o)); err != nil {
		t.Fatal(err)
	}
	snap := o.Snapshot()
	if got := snap.Counters[KeyTasksTotal]; got != 10 {
		t.Fatalf("%s = %d, want 10", KeyTasksTotal, got)
	}
	if got := snap.Counters[KeyShardsTotal]; got != 2 {
		t.Fatalf("%s = %d, want 2", KeyShardsTotal, got)
	}
	if got := snap.Counters[KeyRunsTotal]; got != 1 {
		t.Fatalf("%s = %d, want 1", KeyRunsTotal, got)
	}
}

func TestWorkerClamping(t *testing.T) {
	cfg := resolve(3, []Option{WithWorkers(100)})
	if cfg.workers != 3 {
		t.Fatalf("workers clamped to %d, want 3 (task count)", cfg.workers)
	}
	cfg = resolve(10, []Option{WithWorkers(-1)})
	if cfg.workers < 1 {
		t.Fatalf("workers = %d, want >= 1", cfg.workers)
	}
}
