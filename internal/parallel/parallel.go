// Package parallel is the fan-out engine behind the fleet-scale analyses:
// bounded worker pools sized by GOMAXPROCS, context cancellation, and —
// the part the paper's determinism guarantee hangs on — order-independent
// merging of per-shard accumulators.
//
// The repo's aggregations (per-root validation counts, Figure 1–3
// aggregations, rooted-exclusive detection) fold thousands of independent
// items into maps and counters. Folding from many goroutines into one
// shared map is a race; folding into per-goroutine maps and merging "as
// workers finish" makes the result depend on scheduling whenever the merge
// is order-sensitive (first-wins fields, slice ordering). This package
// fixes the shape once: every worker owns a contiguous shard, accumulators
// are merged in ascending shard order after all workers finish, so the
// result is a pure function of the input — same seed, same bytes, any
// worker count. The parallelmerge lint rule steers ad-hoc goroutine
// fan-outs in other packages here.
//
// Three primitives:
//
//   - ForEach: run fn(i) for i in [0,n) on a bounded pool with dynamic
//     load balancing — for side-effecting work of uneven cost (network
//     sessions, probes).
//   - Map: ForEach that collects fn's results into a slice indexed by i,
//     so output order is input order regardless of scheduling.
//   - Accumulate: shard [0,n) into contiguous ranges, fold each shard
//     into its own accumulator, merge accumulators in shard order — for
//     map/counter aggregation with deterministic merge semantics.
//
// All primitives run inline (no goroutines) when one worker suffices,
// so WithWorkers(1) is an exact serial reference execution.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tangledmass/internal/obs"
)

// config carries the resolved options of one fan-out call.
type config struct {
	workers  int
	observer *obs.Observer
}

// Option configures one fan-out call.
type Option func(*config)

// WithWorkers bounds the pool. Values < 1 (and the default) mean
// runtime.GOMAXPROCS(0). Worker counts above the task count are clamped to
// the task count, so requesting many workers for little work costs nothing.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithObserver instruments the fan-out: per-shard spans under
// KeyShardSpan, task/shard/run counters. A nil observer (and the default)
// records nothing.
func WithObserver(o *obs.Observer) Option {
	return func(c *config) { c.observer = o }
}

// resolve applies opts and clamps the worker count to [1, n].
func resolve(n int, opts []Option) config {
	cfg := config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if cfg.workers > n {
		cfg.workers = n
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	return cfg
}

// instrument counts one fan-out launch of `shards` shards over n tasks.
func (c *config) instrument(n, shards int) {
	c.observer.Counter(KeyRunsTotal).Inc()
	c.observer.Counter(KeyShardsTotal).Add(int64(shards))
	c.observer.Counter(KeyTasksTotal).Add(int64(n))
}

// firstError tracks the failure with the lowest task index, so the
// returned error is deterministic regardless of which worker hit its
// failure first.
type firstError struct {
	mu  sync.Mutex
	idx int
	err error
}

func (f *firstError) set(idx int, err error) {
	f.mu.Lock()
	if f.err == nil || idx < f.idx {
		f.idx, f.err = idx, err
	}
	f.mu.Unlock()
}

func (f *firstError) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// ForEach runs fn for every index in [0, n) on a bounded worker pool with
// dynamic load balancing: workers pull the next index from a shared atomic
// cursor, so uneven task costs spread evenly. The first task error (by
// lowest index, for determinism) or a context cancellation stops new tasks
// from being issued and is returned; tasks already running complete.
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error, opts ...Option) error {
	if n <= 0 {
		return ctx.Err()
	}
	cfg := resolve(n, opts)
	cfg.instrument(n, cfg.workers)

	if cfg.workers == 1 {
		span := cfg.observer.StartSpan("shard-0", KeyShardSpan)
		defer span.End()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		cursor atomic.Int64
		fail   firstError
		wg     sync.WaitGroup
	)
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			span := cfg.observer.StartSpan(fmt.Sprintf("shard-%d", slot), KeyShardSpan)
			defer span.End()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					fail.set(i, err)
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := fail.get(); err != nil {
		return err
	}
	// No task failed, so the internal cancel has not fired yet: a non-nil
	// ctx.Err() here means the parent context ended the run.
	return ctx.Err()
}

// Map runs fn for every index in [0, n) on a bounded pool and returns the
// results in input order: out[i] is fn's value for i, whatever the
// scheduling. On error or cancellation the partial results are discarded
// and only the (lowest-index) error returns.
func Map[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error), opts ...Option) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		// Distinct indices: each task owns out[i] exclusively, so the
		// writes race with nothing.
		out[i] = v
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// shardRange is one worker's contiguous slice of the index space.
type shardRange struct{ start, end int }

// shards splits [0, n) into k contiguous ranges differing in length by at
// most one, in ascending order.
func shards(n, k int) []shardRange {
	out := make([]shardRange, 0, k)
	base, rem := n/k, n%k
	start := 0
	for s := 0; s < k; s++ {
		size := base
		if s < rem {
			size++
		}
		out = append(out, shardRange{start, start + size})
		start += size
	}
	return out
}

// Accumulate folds [0, n) into an accumulator of type A on a bounded pool:
// the index space is split into contiguous shards, each worker folds its
// shard — fold(acc, start, end) iterates indices in ascending order — into
// a private accumulator from newA, and the per-shard accumulators are
// merged in ascending shard order once all workers finish.
//
// This is the deterministic-merge primitive: because both the fold order
// within a shard and the merge order across shards follow the index order,
// the result is identical to a serial fold for any merge that is
// associative over adjacent ranges — including order-sensitive merges
// like "first writer wins" — at any worker count. The fold receives a
// contiguous [start, end) range rather than one index, so tight
// aggregation loops pay no per-item call overhead and the single-worker
// execution is literally the serial loop. The returned error is non-nil
// only when ctx is cancelled; the fold itself cannot fail.
func Accumulate[A any](ctx context.Context, n int, newA func() A, fold func(acc A, start, end int) A, merge func(into, from A) A, opts ...Option) (A, error) {
	cfg := resolve(n, opts)
	if n <= 0 {
		return newA(), ctx.Err()
	}
	cfg.instrument(n, cfg.workers)

	if cfg.workers == 1 {
		span := cfg.observer.StartSpan("shard-0", KeyShardSpan)
		defer span.End()
		return fold(newA(), 0, n), ctx.Err()
	}

	ranges := shards(n, cfg.workers)
	accs := make([]A, len(ranges))
	var wg sync.WaitGroup
	for s, r := range ranges {
		wg.Add(1)
		go func(s int, r shardRange) {
			defer wg.Done()
			span := cfg.observer.StartSpan(fmt.Sprintf("shard-%d", s), KeyShardSpan)
			defer span.End()
			// Distinct indices: each shard owns accs[s] exclusively.
			accs[s] = fold(newA(), r.start, r.end)
		}(s, r)
	}
	wg.Wait()
	acc := accs[0]
	for _, a := range accs[1:] {
		acc = merge(acc, a)
	}
	return acc, ctx.Err()
}
