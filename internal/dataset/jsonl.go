package dataset

import (
	"bufio"
	"context"
	"encoding/json"
	"encoding/pem"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"tangledmass/internal/corpus"
	"tangledmass/internal/device"
	"tangledmass/internal/population"
	"tangledmass/internal/rootstore"
)

// HandsetRecord is the JSONL schema for one handset.
type HandsetRecord struct {
	ID           int    `json:"id"`
	Model        string `json:"model"`
	Manufacturer string `json:"manufacturer"`
	Operator     string `json:"operator"`
	Country      string `json:"country"`
	Version      string `json:"version"`
	Rooted       bool   `json:"rooted"`
	// RootedExclusive marks handsets carrying Table 5 rooted-only roots.
	RootedExclusive bool `json:"rooted_exclusive,omitempty"`
	Intercepted     bool `json:"intercepted"`
	Sessions        int  `json:"sessions"`
	// System and User reference certificates in certs.pem by SHA-256.
	System []string `json:"system"`
	User   []string `json:"user,omitempty"`
	// Profiles carries the handset's app validation profiles in draw order.
	// Absent in datasets written before the app-profile column; loaders then
	// leave the device policy-free and sessions fall back to the strict
	// platform default.
	Profiles []PolicyRecord `json:"app_profiles,omitempty"`
}

// PolicyRecord is the serialized form of one app validation profile
// (device.ValidationPolicy). Flags are omitted when false, so the strict
// profiles serialize as just their name.
type PolicyRecord struct {
	App          string `json:"app"`
	AcceptAll    bool   `json:"accept_all,omitempty"`
	SkipHostname bool   `json:"skip_hostname,omitempty"`
	BypassPins   bool   `json:"bypass_pins,omitempty"`
}

// policyRecords converts a device's policy set to its serialized form.
func policyRecords(d *device.Device) []PolicyRecord {
	pols := d.Policies()
	if len(pols) == 0 {
		return nil
	}
	out := make([]PolicyRecord, len(pols))
	for i, p := range pols {
		out[i] = PolicyRecord{App: p.App, AcceptAll: p.AcceptAll, SkipHostname: p.SkipHostname, BypassPins: p.BypassPins}
	}
	return out
}

// restorePolicies replays serialized app profiles onto a restored device in
// recorded order, so Generate and a load round-trip rotate sessions over
// identical policy sequences.
func restorePolicies(d *device.Device, recs []PolicyRecord) {
	for _, r := range recs {
		d.AddPolicy(device.ValidationPolicy{App: r.App, AcceptAll: r.AcceptAll, SkipHostname: r.SkipHostname, BypassPins: r.BypassPins})
	}
}

// countingWriter counts bytes on their way to the underlying writer so the
// dataset.write.bytes counter reflects actual on-disk volume.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// writeJSONL serializes p into dir as certs.pem + handsets.jsonl — the v1
// interchange format, byte-identical to what the original Write produced.
func writeJSONL(ctx context.Context, dir string, p *population.Population, cfg config) error {
	// Collect distinct certificates across all stores as corpus handles.
	seen := map[string]corpus.Ref{}
	collect := func(s *rootstore.Store) []string {
		fps := make([]string, 0, s.Len())
		if s.Corpus() == cfg.corpus {
			for _, ref := range s.Refs() {
				e := cfg.corpus.Entry(ref)
				seen[e.SHA256] = ref
				fps = append(fps, e.SHA256)
			}
			return fps
		}
		for _, c := range s.Certificates() {
			ref := cfg.corpus.InternCert(c)
			e := cfg.corpus.Entry(ref)
			seen[e.SHA256] = ref
			fps = append(fps, e.SHA256)
		}
		return fps
	}

	hf, err := os.Create(filepath.Join(dir, handsetsFile))
	if err != nil {
		return fmt.Errorf("dataset: creating handsets file: %w", err)
	}
	defer hf.Close()
	hcw := &countingWriter{w: hf}
	hw := bufio.NewWriter(hcw)
	enc := json.NewEncoder(hw)
	for _, h := range p.Handsets {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dataset: write cancelled: %w", err)
		}
		rec := HandsetRecord{
			ID:              h.ID,
			Model:           h.Model,
			Manufacturer:    h.Manufacturer,
			Operator:        h.Operator,
			Country:         h.Country,
			Version:         h.Version,
			Rooted:          h.Rooted,
			RootedExclusive: h.RootedExclusive,
			Intercepted:     h.Intercepted,
			Sessions:        h.SessionCount,
			System:          collect(h.Device.SystemStore()),
			User:            collect(h.Device.UserStore()),
			Profiles:        policyRecords(h.Device),
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("dataset: writing handset %d: %w", h.ID, err)
		}
	}
	if err := hw.Flush(); err != nil {
		return fmt.Errorf("dataset: flushing handsets: %w", err)
	}

	cf, err := os.Create(filepath.Join(dir, certsFile))
	if err != nil {
		return fmt.Errorf("dataset: creating certs file: %w", err)
	}
	defer cf.Close()
	ccw := &countingWriter{w: cf}
	cw := bufio.NewWriter(ccw)
	fps := make([]string, 0, len(seen))
	for fp := range seen {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		if err := pem.Encode(cw, &pem.Block{Type: "CERTIFICATE", Bytes: cfg.corpus.DER(seen[fp])}); err != nil {
			return fmt.Errorf("dataset: writing certificate: %w", err)
		}
	}
	if err := cw.Flush(); err != nil {
		return fmt.Errorf("dataset: flushing certs: %w", err)
	}
	cfg.observer.Counter(KeyWriteBytes).Add(hcw.n + ccw.n)
	return nil
}

// readJSONL loads the v1 format. Certificates are interned into the
// configured corpus once, at PEM-parse time; every fingerprint then resolves
// to a corpus.Ref handle and stores are reconstructed by handle — nothing is
// parsed or fingerprinted a second time.
func readJSONL(ctx context.Context, dir string, cfg config) (*population.Population, error) {
	certData, err := os.ReadFile(filepath.Join(dir, certsFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: reading certs: %w", err)
	}
	refs, err := cfg.corpus.ParsePEM(certData)
	if err != nil {
		return nil, fmt.Errorf("dataset: parsing certs: %w", err)
	}
	cfg.observer.Counter(KeyReadBytes).Add(int64(len(certData)))
	cfg.observer.Counter(KeyCertsInterned).Add(int64(len(refs)))
	byFP := make(map[string]corpus.Ref, len(refs))
	for _, ref := range refs {
		byFP[cfg.corpus.Entry(ref).SHA256] = ref
	}
	resolveFPs := func(fps []string, what string, id int) ([]corpus.Ref, error) {
		out := make([]corpus.Ref, 0, len(fps))
		for _, fp := range fps {
			ref, ok := byFP[fp]
			if !ok {
				return nil, fmt.Errorf("dataset: handset %d references unknown %s certificate %s", id, what, fp)
			}
			out = append(out, ref)
		}
		return out, nil
	}

	hf, err := os.Open(filepath.Join(dir, handsetsFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: opening handsets: %w", err)
	}
	defer hf.Close()
	var read int64
	scanner := bufio.NewScanner(hf)
	scanner.Buffer(make([]byte, 64<<10), 8<<20)
	var handsets []*population.Handset
	for scanner.Scan() {
		line := scanner.Bytes()
		read += int64(len(line)) + 1
		if len(line) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dataset: read cancelled: %w", err)
		}
		var rec HandsetRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("dataset: handset record: %w", err)
		}
		sysRefs, err := resolveFPs(rec.System, "system", rec.ID)
		if err != nil {
			return nil, err
		}
		usrRefs, err := resolveFPs(rec.User, "user", rec.ID)
		if err != nil {
			return nil, err
		}
		prof := device.Profile{
			Model:        rec.Model,
			Manufacturer: rec.Manufacturer,
			Operator:     rec.Operator,
			Country:      rec.Country,
			Version:      rec.Version,
		}
		// Reconstruct the device by handle: the serialized system store is
		// an exact snapshot of the device's system image; user certificates
		// arrive in their own store; rooting is restored directly.
		system := rootstore.NewSized(prof.Manufacturer+" "+prof.Model+" system", cfg.corpus, len(sysRefs))
		for _, ref := range sysRefs {
			system.AddRef(ref)
		}
		var user *rootstore.Store
		if len(usrRefs) > 0 {
			user = rootstore.NewSized(prof.Manufacturer+" "+prof.Model+" user", cfg.corpus, len(usrRefs))
			for _, ref := range usrRefs {
				user.AddRef(ref)
			}
		}
		dev := device.Restore(prof, system, user, rec.Rooted)
		restorePolicies(dev, rec.Profiles)
		handsets = append(handsets, &population.Handset{
			ID:              rec.ID,
			Profile:         prof,
			Rooted:          rec.Rooted,
			RootedExclusive: rec.RootedExclusive,
			Device:          dev,
			SessionCount:    rec.Sessions,
			Intercepted:     rec.Intercepted,
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scanning handsets: %w", err)
	}
	cfg.observer.Counter(KeyReadBytes).Add(read)
	// A JSONL load reconstructs the population as one sequential batch.
	cfg.observer.Counter(KeyBatchesMerged).Inc()
	return population.Assemble(cfg.universe, handsets), nil
}

// inspectJSONL summarizes (and with full set, integrity-checks) a v1
// dataset: full resolves every fingerprint reference and interns every
// certificate; the cheap path only counts blocks and records.
func inspectJSONL(dir string, cfg config, full bool) (*Info, error) {
	certData, err := os.ReadFile(filepath.Join(dir, certsFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: reading certs: %w", err)
	}
	info := &Info{Format: JSONL, Bytes: int64(len(certData))}
	byFP := map[string]bool{}
	if full {
		refs, err := cfg.corpus.ParsePEM(certData)
		if err != nil {
			return nil, fmt.Errorf("dataset: parsing certs: %w", err)
		}
		cfg.observer.Counter(KeyCertsInterned).Add(int64(len(refs)))
		for _, ref := range refs {
			byFP[cfg.corpus.Entry(ref).SHA256] = true
		}
		info.Certs = len(byFP)
	} else {
		rest := certData
		for {
			var block *pem.Block
			block, rest = pem.Decode(rest)
			if block == nil {
				break
			}
			info.Certs++
		}
	}

	hf, err := os.Open(filepath.Join(dir, handsetsFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: opening handsets: %w", err)
	}
	defer hf.Close()
	if st, err := hf.Stat(); err == nil {
		info.Bytes += st.Size()
	}
	scanner := bufio.NewScanner(hf)
	scanner.Buffer(make([]byte, 64<<10), 8<<20)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec HandsetRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("dataset: handset record: %w", err)
		}
		if full {
			for _, fp := range append(append([]string{}, rec.System...), rec.User...) {
				if !byFP[fp] {
					return nil, fmt.Errorf("dataset: handset %d references unknown certificate %s", rec.ID, fp)
				}
			}
		}
		info.Handsets++
		info.Sessions += rec.Sessions
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scanning handsets: %w", err)
	}
	cfg.observer.Counter(KeyReadBytes).Add(info.Bytes)
	return info, nil
}
