package dataset

// Metric keys the interchange layer emits (see the registry in README.md).
// Package-prefixed compile-time constants, per the obskey lint rule.
const (
	// KeyReadBytes accumulates dataset file bytes read by loads, inspects
	// and verifies.
	KeyReadBytes = "dataset.read.bytes"
	// KeyWriteBytes accumulates dataset file bytes written.
	KeyWriteBytes = "dataset.write.bytes"
	// KeyCertsInterned counts certificates interned through the corpus
	// while loading (DER-table entries plus PEM blocks).
	KeyCertsInterned = "dataset.certs.interned"
	// KeyBatchesMerged counts handset-reconstruction batches merged into a
	// loaded population (the columnar reader fans handset assembly out in
	// contiguous shards; each shard merged in order counts once).
	KeyBatchesMerged = "dataset.batches.merged"
)
