package dataset

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tangledmass/internal/analysis"
	"tangledmass/internal/obs"
	"tangledmass/internal/population"
	"tangledmass/internal/rootstore"
)

func writeColumnarDir(t *testing.T, p *population.Population) string {
	t.Helper()
	dir := t.TempDir()
	if err := NewWriter(dir, WithFormat(Columnar)).Write(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestColumnarRoundTrip(t *testing.T) {
	orig := genPop(t)
	dir := writeColumnarDir(t, orig)
	if _, err := os.Stat(filepath.Join(dir, columnarFile)); err != nil {
		t.Fatalf("missing %s: %v", columnarFile, err)
	}
	back, err := NewReader(dir).Read(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Handsets) != len(orig.Handsets) {
		t.Fatalf("handsets = %d, want %d", len(back.Handsets), len(orig.Handsets))
	}
	if back.TotalSessions() != orig.TotalSessions() {
		t.Errorf("sessions = %d, want %d", back.TotalSessions(), orig.TotalSessions())
	}
	for i := range orig.Handsets {
		a, b := orig.Handsets[i], back.Handsets[i]
		if a.ID != b.ID || a.Profile != b.Profile {
			t.Fatalf("handset %d identity differs after round-trip", a.ID)
		}
		if a.Rooted != b.Rooted || a.RootedExclusive != b.RootedExclusive || a.Intercepted != b.Intercepted {
			t.Fatalf("handset %d flags differ", a.ID)
		}
		if a.SessionCount != b.SessionCount {
			t.Fatalf("handset %d sessions = %d, want %d", a.ID, b.SessionCount, a.SessionCount)
		}
		if !rootstore.Equal(a.Store, b.Store) {
			t.Fatalf("handset %d store differs after round-trip", a.ID)
		}
		if a.AOSPCount != b.AOSPCount || a.ExtraCount != b.ExtraCount || a.MissingCount != b.MissingCount {
			t.Fatalf("handset %d counts differ", a.ID)
		}
	}
}

// artifacts marshals every population-only analysis artifact; byte equality
// of the JSON is the cross-format golden check.
func artifacts(t *testing.T, p *population.Population) []byte {
	t.Helper()
	devices, manufacturers := analysis.Table2(p, 10)
	doc := map[string]any{
		"headlines":     analysis.ComputeHeadlines(p),
		"devices":       devices,
		"manufacturers": manufacturers,
		"figure1":       analysis.Figure1(p),
		"figure2":       analysis.Figure2(p, nil, 10),
		"months":        analysis.SessionsPerMonth(p),
		"table5":        analysis.Table5(p),
		// Depends on the serialized app profiles: byte equality here proves
		// the policy column round-trips in both formats.
		"trust_attribution": analysis.ComputeTrustAttribution(p),
	}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCrossFormatGoldenArtifacts(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p, err := population.Generate(population.Config{Seed: seed, SessionScale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		want := artifacts(t, p)
		jsonlDir, colDir := t.TempDir(), t.TempDir()
		ctx := context.Background()
		if err := NewWriter(jsonlDir, WithFormat(JSONL)).Write(ctx, p); err != nil {
			t.Fatal(err)
		}
		if err := NewWriter(colDir, WithFormat(Columnar)).Write(ctx, p); err != nil {
			t.Fatal(err)
		}
		for name, dir := range map[string]string{"jsonl": jsonlDir, "columnar": colDir} {
			back, err := NewReader(dir).Read(ctx)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if got := artifacts(t, back); string(got) != string(want) {
				t.Errorf("seed %d: %s round-trip changed analysis artifacts", seed, name)
			}
		}
	}
}

// TestPolicyRoundTripBothFormats checks the app-profile column directly:
// every handset's policy set — names, flags and draw order — survives a
// write/read cycle in both formats, and the emitted sessions rotate over
// the same policies as the generated fleet.
func TestPolicyRoundTripBothFormats(t *testing.T) {
	orig := genPop(t)
	ctx := context.Background()
	for _, format := range []Format{JSONL, Columnar} {
		dir := t.TempDir()
		if err := NewWriter(dir, WithFormat(format)).Write(ctx, orig); err != nil {
			t.Fatal(err)
		}
		back, err := NewReader(dir).Read(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range orig.Handsets {
			a, b := orig.Handsets[i], back.Handsets[i]
			pa, pb := a.Device.Policies(), b.Device.Policies()
			if len(pa) == 0 {
				t.Fatalf("%s: handset %d generated with no app profiles", format, a.ID)
			}
			if !reflect.DeepEqual(pa, pb) {
				t.Fatalf("%s: handset %d policies differ after round-trip:\n%+v\n%+v", format, a.ID, pa, pb)
			}
		}
		for i := range orig.Sessions {
			if orig.Sessions[i].Policy != back.Sessions[i].Policy {
				t.Fatalf("%s: session %d policy differs after round-trip", format, orig.Sessions[i].ID)
			}
		}
	}
}

func TestColumnarDeterministicBytes(t *testing.T) {
	p := genPop(t)
	a, err := os.ReadFile(filepath.Join(writeColumnarDir(t, p), columnarFile))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(writeColumnarDir(t, p), columnarFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("handsets.col should be byte-identical across writes of the same population")
	}
}

func TestColumnarCorruption(t *testing.T) {
	p := genPop(t)
	pristineDir := writeColumnarDir(t, p)
	pristine, err := os.ReadFile(filepath.Join(pristineDir, columnarFile))
	if err != nil {
		t.Fatal(err)
	}
	info, err := NewReader(pristineDir).Inspect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sectionMid := func(name string) int64 {
		for _, s := range info.Sections {
			if s.Name == name {
				return s.Offset + s.Length/2
			}
		}
		t.Fatalf("no %q section", name)
		return 0
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"flipped header byte", func(b []byte) []byte { b[len(columnarMagic)+6] ^= 0x01; return b }},
		{"flipped bit in der table", func(b []byte) []byte { b[sectionMid("der")] ^= 0x40; return b }},
		{"flipped bit in membership column", func(b []byte) []byte { b[sectionMid("system")] ^= 0x40; return b }},
		{"flipped bit in profile column", func(b []byte) []byte { b[sectionMid("profiles")] ^= 0x40; return b }},
		{"truncated mid-section", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated header", func(b []byte) []byte { return b[:len(columnarMagic)+2] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			corrupt := tc.mutate(append([]byte(nil), pristine...))
			if err := os.WriteFile(filepath.Join(dir, columnarFile), corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := NewReader(dir).Read(context.Background()); err == nil {
				t.Error("Read accepted a corrupt file")
			}
			if _, err := NewReader(dir).Verify(context.Background()); err == nil {
				t.Error("Verify accepted a corrupt file")
			}
		})
	}

	// The pristine file still verifies after all that mutation-of-copies.
	if _, err := NewReader(pristineDir).Verify(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestColumnarInspectAndVerifyInfo(t *testing.T) {
	p := genPop(t)
	dir := writeColumnarDir(t, p)
	for name, f := range map[string]func(context.Context) (*Info, error){
		"inspect": NewReader(dir).Inspect,
		"verify":  NewReader(dir).Verify,
	} {
		info, err := f(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Format != Columnar {
			t.Errorf("%s: format = %s, want columnar", name, info.Format)
		}
		if info.Handsets != len(p.Handsets) {
			t.Errorf("%s: handsets = %d, want %d", name, info.Handsets, len(p.Handsets))
		}
		if info.Sessions != p.TotalSessions() {
			t.Errorf("%s: sessions = %d, want %d", name, info.Sessions, p.TotalSessions())
		}
		if info.Certs == 0 {
			t.Errorf("%s: certs = 0", name)
		}
		if len(info.Sections) != 9 {
			t.Errorf("%s: %d sections, want 9", name, len(info.Sections))
		}
	}
}

func TestJSONLVerify(t *testing.T) {
	p := genPop(t)
	dir := t.TempDir()
	ctx := context.Background()
	if err := NewWriter(dir, WithFormat(JSONL)).Write(ctx, p); err != nil {
		t.Fatal(err)
	}
	info, err := NewReader(dir).Verify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != JSONL || info.Handsets != len(p.Handsets) || info.Sessions != p.TotalSessions() {
		t.Errorf("jsonl verify info = %+v", info)
	}

	// A dangling fingerprint passes the cheap Inspect but fails Verify.
	if err := os.WriteFile(filepath.Join(dir, certsFile), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(dir).Verify(ctx); err == nil {
		t.Error("Verify accepted a JSONL dataset with dangling certificate references")
	}
}

func TestObserverCounters(t *testing.T) {
	p := genPop(t)
	ctx := context.Background()
	for _, format := range []Format{JSONL, Columnar} {
		o := obs.New()
		dir := t.TempDir()
		if err := NewWriter(dir, WithFormat(format), WithObserver(o)).Write(ctx, p); err != nil {
			t.Fatal(err)
		}
		if v := o.Counter(KeyWriteBytes).Value(); v == 0 {
			t.Errorf("%s: %s = 0 after write", format, KeyWriteBytes)
		}
		if _, err := NewReader(dir, WithObserver(o)).Read(ctx); err != nil {
			t.Fatal(err)
		}
		if v := o.Counter(KeyReadBytes).Value(); v == 0 {
			t.Errorf("%s: %s = 0 after read", format, KeyReadBytes)
		}
		if v := o.Counter(KeyCertsInterned).Value(); v == 0 {
			t.Errorf("%s: %s = 0 after read", format, KeyCertsInterned)
		}
		if v := o.Counter(KeyBatchesMerged).Value(); v == 0 {
			t.Errorf("%s: %s = 0 after read", format, KeyBatchesMerged)
		}
	}
}
