// Package dataset serializes a device population to disk and back — the
// interchange layer a real measurement pipeline needs between collection
// and analysis. A dataset directory holds:
//
//	certs.pem       every distinct certificate appearing in any store,
//	                one PEM block each
//	handsets.jsonl  one JSON object per handset, referencing certificates
//	                by SHA-256 fingerprint
//
// Sessions are derived from the per-handset session counts on load, exactly
// as the generator derives them, so a written-and-reloaded dataset yields
// identical analysis results.
package dataset

import (
	"bufio"
	"crypto/x509"
	"encoding/json"
	"encoding/pem"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/corpus"
	"tangledmass/internal/device"
	"tangledmass/internal/population"
	"tangledmass/internal/rootstore"
)

const (
	certsFile    = "certs.pem"
	handsetsFile = "handsets.jsonl"
)

// HandsetRecord is the JSONL schema for one handset.
type HandsetRecord struct {
	ID           int    `json:"id"`
	Model        string `json:"model"`
	Manufacturer string `json:"manufacturer"`
	Operator     string `json:"operator"`
	Country      string `json:"country"`
	Version      string `json:"version"`
	Rooted       bool   `json:"rooted"`
	// RootedExclusive marks handsets carrying Table 5 rooted-only roots.
	RootedExclusive bool `json:"rooted_exclusive,omitempty"`
	Intercepted     bool `json:"intercepted"`
	Sessions        int  `json:"sessions"`
	// System and User reference certificates in certs.pem by SHA-256.
	System []string `json:"system"`
	User   []string `json:"user,omitempty"`
}

// Write serializes p into dir, creating it if needed.
func Write(dir string, p *population.Population) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: creating %s: %w", dir, err)
	}

	// Collect distinct certificates across all stores.
	seen := map[string]*x509.Certificate{}
	collect := func(s *rootstore.Store) []string {
		fps := make([]string, 0, s.Len())
		for _, c := range s.Certificates() {
			fp := corpus.SHA256Of(c)
			seen[fp] = c
			fps = append(fps, fp)
		}
		return fps
	}

	hf, err := os.Create(filepath.Join(dir, handsetsFile))
	if err != nil {
		return fmt.Errorf("dataset: creating handsets file: %w", err)
	}
	defer hf.Close()
	hw := bufio.NewWriter(hf)
	enc := json.NewEncoder(hw)
	for _, h := range p.Handsets {
		rec := HandsetRecord{
			ID:              h.ID,
			Model:           h.Model,
			Manufacturer:    h.Manufacturer,
			Operator:        h.Operator,
			Country:         h.Country,
			Version:         h.Version,
			Rooted:          h.Rooted,
			RootedExclusive: h.RootedExclusive,
			Intercepted:     h.Intercepted,
			Sessions:        h.SessionCount,
			System:          collect(h.Device.SystemStore()),
			User:            collect(h.Device.UserStore()),
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("dataset: writing handset %d: %w", h.ID, err)
		}
	}
	if err := hw.Flush(); err != nil {
		return fmt.Errorf("dataset: flushing handsets: %w", err)
	}

	cf, err := os.Create(filepath.Join(dir, certsFile))
	if err != nil {
		return fmt.Errorf("dataset: creating certs file: %w", err)
	}
	defer cf.Close()
	cw := bufio.NewWriter(cf)
	fps := make([]string, 0, len(seen))
	for fp := range seen {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		if err := pem.Encode(cw, &pem.Block{Type: "CERTIFICATE", Bytes: seen[fp].Raw}); err != nil {
			return fmt.Errorf("dataset: writing certificate: %w", err)
		}
	}
	if err := cw.Flush(); err != nil {
		return fmt.Errorf("dataset: flushing certs: %w", err)
	}
	return nil
}

// Read loads a dataset written by Write, reconstructing live devices and
// assembling a Population against u (nil means the default universe).
func Read(dir string, u *cauniverse.Universe) (*population.Population, error) {
	if u == nil {
		u = cauniverse.Default()
	}
	certData, err := os.ReadFile(filepath.Join(dir, certsFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: reading certs: %w", err)
	}
	certs, err := rootstore.ParsePEMCertificates(certData)
	if err != nil {
		return nil, fmt.Errorf("dataset: parsing certs: %w", err)
	}
	byFP := make(map[string]*x509.Certificate, len(certs))
	for _, c := range certs {
		byFP[corpus.SHA256Of(c)] = c
	}
	resolve := func(fps []string, what string, id int) ([]*x509.Certificate, error) {
		out := make([]*x509.Certificate, 0, len(fps))
		for _, fp := range fps {
			c, ok := byFP[fp]
			if !ok {
				return nil, fmt.Errorf("dataset: handset %d references unknown %s certificate %s", id, what, fp)
			}
			out = append(out, c)
		}
		return out, nil
	}

	hf, err := os.Open(filepath.Join(dir, handsetsFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: opening handsets: %w", err)
	}
	defer hf.Close()
	scanner := bufio.NewScanner(hf)
	scanner.Buffer(make([]byte, 64<<10), 8<<20)
	var handsets []*population.Handset
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec HandsetRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("dataset: handset record: %w", err)
		}
		system, err := resolve(rec.System, "system", rec.ID)
		if err != nil {
			return nil, err
		}
		user, err := resolve(rec.User, "user", rec.ID)
		if err != nil {
			return nil, err
		}
		prof := device.Profile{
			Model:        rec.Model,
			Manufacturer: rec.Manufacturer,
			Operator:     rec.Operator,
			Country:      rec.Country,
			Version:      rec.Version,
		}
		// Reconstruct the device: the serialized system store becomes the
		// base image (an exact snapshot, so no separate additions), user
		// certificates are re-installed, and rooting is restored.
		base := rootstore.New(prof.Manufacturer + " " + prof.Model + " system")
		base.AddAll(system)
		d := device.New(prof, base, nil)
		if rec.Rooted {
			d.Root()
		}
		for _, c := range user {
			d.AddUserCert(c)
		}
		handsets = append(handsets, &population.Handset{
			ID:              rec.ID,
			Profile:         prof,
			Rooted:          rec.Rooted,
			RootedExclusive: rec.RootedExclusive,
			Device:          d,
			SessionCount:    rec.Sessions,
			Intercepted:     rec.Intercepted,
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scanning handsets: %w", err)
	}
	return population.Assemble(u, handsets), nil
}
