// Package dataset serializes a device population to disk and back — the
// interchange layer a real measurement pipeline needs between collection
// and analysis. Two on-disk formats are supported:
//
//   - JSONL (the v1 interchange format): certs.pem holds every distinct
//     certificate as a PEM block; handsets.jsonl holds one JSON object per
//     handset referencing certificates by SHA-256 fingerprint. Text-diffable
//     and toolable, but every load re-decodes hex fingerprints per handset.
//   - Columnar (v2): a single sectioned, seekable binary file
//     (handsets.col) with a magic header, a deduplicated DER table exactly
//     like the notary's snapshot v3, and per-column sections (IDs,
//     profiles, flags, session counts, store membership as sorted DER-table
//     indices), each CRC32C-checksummed so readers can seek straight to a
//     column and loaders reject truncation and bit-flips.
//
// Construct a Writer or Reader with functional options:
//
//	w := dataset.NewWriter(dir, dataset.WithFormat(dataset.Columnar))
//	err := w.Write(ctx, pop)
//	p, err := dataset.NewReader(dir).Read(ctx)   // format auto-detected
//
// Certificates resolve through a content-addressed corpus (the process
// shared corpus by default): a load interns the deduplicated certificate
// table once and reconstructs every store by Ref handle, so nothing is
// parsed or fingerprinted twice. Sessions are derived from the per-handset
// session counts on load, exactly as the generator derives them, so a
// written-and-reloaded dataset yields identical analysis results.
package dataset

import (
	"context"
	"fmt"
	"os"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/corpus"
	"tangledmass/internal/obs"
	"tangledmass/internal/population"
)

const (
	certsFile    = "certs.pem"
	handsetsFile = "handsets.jsonl"
	columnarFile = "handsets.col"
)

// Format selects a dataset's on-disk layout.
type Format int

const (
	// Auto means: detect on read (a directory holding handsets.col is
	// columnar, else JSONL); write the JSONL interchange format.
	Auto Format = iota
	// JSONL is the v1 text format (certs.pem + handsets.jsonl).
	JSONL
	// Columnar is the v2 sectioned binary format (handsets.col).
	Columnar
)

// String names the format for reports and CLI output.
func (f Format) String() string {
	switch f {
	case JSONL:
		return "jsonl"
	case Columnar:
		return "columnar"
	default:
		return "auto"
	}
}

// config carries the resolved options of a Writer or Reader.
type config struct {
	format   Format
	corpus   *corpus.Corpus
	universe *cauniverse.Universe
	observer *obs.Observer
}

// Option configures a Writer or Reader.
type Option func(*config)

// WithFormat pins the on-disk format. The default (Auto) detects the
// format on read and writes JSONL.
func WithFormat(f Format) Option {
	return func(c *config) { c.format = f }
}

// WithCorpus sets the intern table certificates resolve through (default:
// the process-wide shared corpus). Populations loaded for analysis should
// share one corpus with the stores and Notary they are compared against.
func WithCorpus(cp *corpus.Corpus) Option {
	return func(c *config) { c.corpus = cp }
}

// WithUniverse sets the CA universe loaded populations are assembled
// against (default: the shared default universe).
func WithUniverse(u *cauniverse.Universe) Option {
	return func(c *config) { c.universe = u }
}

// WithObserver attaches the dataset.* counters (bytes read and written,
// certificates interned on load, handset batches merged). Nil observers
// no-op.
func WithObserver(o *obs.Observer) Option {
	return func(c *config) { c.observer = o }
}

func resolve(opts []Option) config {
	cfg := config{corpus: corpus.Shared()}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.corpus == nil {
		cfg.corpus = corpus.Shared()
	}
	if cfg.universe == nil {
		cfg.universe = cauniverse.Default()
	}
	return cfg
}

// Writer serializes populations into one dataset directory. Construct with
// NewWriter; safe for sequential reuse, one Write per call.
type Writer struct {
	dir string
	cfg config
}

// NewWriter returns a writer for the dataset directory dir (created on the
// first Write if needed).
func NewWriter(dir string, opts ...Option) *Writer {
	return &Writer{dir: dir, cfg: resolve(opts)}
}

// Write serializes p into the writer's directory in the configured format
// (Auto writes JSONL).
func (w *Writer) Write(ctx context.Context, p *population.Population) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("dataset: write cancelled: %w", err)
	}
	if err := os.MkdirAll(w.dir, 0o755); err != nil {
		return fmt.Errorf("dataset: creating %s: %w", w.dir, err)
	}
	switch w.cfg.format {
	case Columnar:
		return writeColumnar(ctx, w.dir, p, w.cfg)
	default:
		return writeJSONL(ctx, w.dir, p, w.cfg)
	}
}

// Reader loads populations from one dataset directory. Construct with
// NewReader.
type Reader struct {
	dir string
	cfg config
}

// NewReader returns a reader for the dataset directory dir.
func NewReader(dir string, opts ...Option) *Reader {
	return &Reader{dir: dir, cfg: resolve(opts)}
}

// format resolves Auto to the directory's actual layout.
func (r *Reader) format() Format {
	if r.cfg.format != Auto {
		return r.cfg.format
	}
	if _, err := os.Stat(columnarPath(r.dir)); err == nil {
		return Columnar
	}
	return JSONL
}

// Read loads the dataset, reconstructing live devices and assembling a
// Population against the configured universe.
func (r *Reader) Read(ctx context.Context) (*population.Population, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read cancelled: %w", err)
	}
	switch r.format() {
	case Columnar:
		return readColumnar(ctx, r.dir, r.cfg)
	default:
		return readJSONL(ctx, r.dir, r.cfg)
	}
}

// Info summarizes a dataset directory.
type Info struct {
	// Format is the resolved on-disk layout.
	Format Format
	// Handsets, Certs and Sessions are the record counts; Bytes is the
	// total on-disk size of the dataset files.
	Handsets int
	Certs    int
	Sessions int
	Bytes    int64
	// Sections lists the columnar file's sections (nil for JSONL).
	Sections []SectionInfo
}

// SectionInfo describes one section of a columnar dataset file.
type SectionInfo struct {
	Name   string
	Offset int64
	Length int64
	CRC32C uint32
}

// Inspect summarizes the dataset without materializing the population: a
// columnar file answers from its header and meta section; a JSONL dataset
// is scanned without device reconstruction.
func (r *Reader) Inspect(ctx context.Context) (*Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dataset: inspect cancelled: %w", err)
	}
	switch r.format() {
	case Columnar:
		return inspectColumnar(r.dir, r.cfg, false)
	default:
		return inspectJSONL(r.dir, r.cfg, false)
	}
}

// Verify checks the dataset's integrity without assembling a population:
// every columnar section is read and CRC-checked (truncation and bit-flips
// fail loudly); a JSONL dataset is fully parsed and every certificate
// reference resolved. The summary of the verified dataset is returned.
func (r *Reader) Verify(ctx context.Context) (*Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dataset: verify cancelled: %w", err)
	}
	switch r.format() {
	case Columnar:
		return inspectColumnar(r.dir, r.cfg, true)
	default:
		return inspectJSONL(r.dir, r.cfg, true)
	}
}
