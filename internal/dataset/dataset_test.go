package dataset

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tangledmass/internal/analysis"
	"tangledmass/internal/population"
	"tangledmass/internal/rootstore"
)

func genPop(t *testing.T) *population.Population {
	t.Helper()
	p, err := population.Generate(population.Config{Seed: 3, SessionScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig := genPop(t)
	dir := t.TempDir()
	if err := NewWriter(dir).Write(context.Background(), orig); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{certsFile, handsetsFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	back, err := NewReader(dir, WithUniverse(orig.Universe)).Read(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Handsets) != len(orig.Handsets) {
		t.Fatalf("handsets = %d, want %d", len(back.Handsets), len(orig.Handsets))
	}
	if back.TotalSessions() != orig.TotalSessions() {
		t.Errorf("sessions = %d, want %d", back.TotalSessions(), orig.TotalSessions())
	}
	for i := range orig.Handsets {
		a, b := orig.Handsets[i], back.Handsets[i]
		if a.Profile != b.Profile || a.Rooted != b.Rooted || a.Intercepted != b.Intercepted {
			t.Fatalf("handset %d metadata differs", a.ID)
		}
		if !rootstore.Equal(a.Store, b.Store) {
			t.Fatalf("handset %d store differs after round-trip", a.ID)
		}
		if a.AOSPCount != b.AOSPCount || a.ExtraCount != b.ExtraCount || a.MissingCount != b.MissingCount {
			t.Fatalf("handset %d counts differ: %d/%d/%d vs %d/%d/%d", a.ID,
				a.AOSPCount, a.ExtraCount, a.MissingCount, b.AOSPCount, b.ExtraCount, b.MissingCount)
		}
	}
}

func TestAnalysesSurviveRoundTrip(t *testing.T) {
	orig := genPop(t)
	dir := t.TempDir()
	if err := NewWriter(dir).Write(context.Background(), orig); err != nil {
		t.Fatal(err)
	}
	back, err := NewReader(dir, WithUniverse(orig.Universe)).Read(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ha := analysis.ComputeHeadlines(orig)
	hb := analysis.ComputeHeadlines(back)
	if !reflect.DeepEqual(ha, hb) {
		t.Errorf("headlines differ:\n%+v\n%+v", ha, hb)
	}
	ta := analysis.Table5(orig)
	tb := analysis.Table5(back)
	if !reflect.DeepEqual(ta, tb) {
		t.Errorf("Table 5 differs across round-trip")
	}
	fa := analysis.Figure1(orig)
	fb := analysis.Figure1(back)
	if !reflect.DeepEqual(fa, fb) {
		t.Errorf("Figure 1 differs across round-trip")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := NewReader(t.TempDir()).Read(context.Background()); err == nil {
		t.Error("empty dir should error")
	}

	// Dangling certificate reference.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, certsFile), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rec := `{"id":1,"model":"X","manufacturer":"Y","version":"4.4","sessions":1,"system":["deadbeef"]}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, handsetsFile), []byte(rec), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(dir).Read(context.Background()); err == nil {
		t.Error("dangling fingerprint should error")
	}

	// Corrupt JSON.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, certsFile), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, handsetsFile), []byte("{broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(dir2).Read(context.Background()); err == nil {
		t.Error("corrupt JSONL should error")
	}
}

func TestWriteDeterministicCerts(t *testing.T) {
	p := genPop(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := NewWriter(dirA).Write(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if err := NewWriter(dirB).Write(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dirA, certsFile))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, certsFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("certs.pem should be deterministic for the same population")
	}
}
