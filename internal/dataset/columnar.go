package dataset

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"tangledmass/internal/corpus"
	"tangledmass/internal/device"
	"tangledmass/internal/parallel"
	"tangledmass/internal/population"
	"tangledmass/internal/rootstore"
)

// The columnar file is one sectioned, seekable binary file:
//
//	magic                       "TANGLED-DATASET-COL1\n"
//	section count               uint32 LE
//	directory, one entry per
//	section                     nameLen uint8, name, offset uint64 LE,
//	                            length uint64 LE, CRC32C uint32 LE
//	header checksum             CRC32C (Castagnoli) of every byte above,
//	                            uint32 LE
//	section payloads            at their directory offsets
//
// Sections, in file order:
//
//	meta      handset count, certificate count, total sessions (uvarints)
//	der       deduplicated certificate table sorted by content digest —
//	          the same shape as the notary's snapshot v3 DER table: count,
//	          then per certificate a length-prefixed DER blob
//	ids       per-handset ID (varint)
//	profiles  string pool (count, then length-prefixed strings in first-
//	          encounter order) followed by five pool indices per handset:
//	          model, manufacturer, operator, country, version
//	flags     one byte per handset: bit0 rooted, bit1 rooted-exclusive,
//	          bit2 intercepted
//	sessions  per-handset session count (uvarint)
//	system    per-handset store membership: member count, then strictly
//	user      increasing DER-table indices, delta-encoded (uvarints)
//	apps      app validation profiles: a string pool of app names (count,
//	          then length-prefixed names in first-encounter order),
//	          followed by per-handset profile lists — profile count, then
//	          per profile a pool index (uvarint) and one flags byte:
//	          bit0 accept-all, bit1 skip-hostname, bit2 bypass-pins
//
// The apps section is optional on read: files written before it decode with
// policy-free devices, and session emission falls back to the strict
// platform default. Writers always emit it.
//
// Every section is independently CRC32C-checksummed, so a reader can seek
// straight to one column, and truncation or a flipped bit anywhere fails
// loudly — the same loud-rejection contract as notary.Load.

const columnarMagic = "TANGLED-DATASET-COL1\n"

// maxColumnarSections bounds the directory a reader will accept; the format
// defines nine.
const maxColumnarSections = 64

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func columnarPath(dir string) string { return filepath.Join(dir, columnarFile) }

// section is one named, checksummed payload being assembled by the writer.
type section struct {
	name string
	data []byte
}

// writeColumnar serializes p into dir/handsets.col. The encoding is fully
// deterministic: two writes of the same population produce identical bytes.
func writeColumnar(ctx context.Context, dir string, p *population.Population, cfg config) error {
	n := len(p.Handsets)

	// Gather store memberships as handles in the target corpus, and the
	// distinct certificate set in first-encounter order.
	seen := map[corpus.Ref]bool{}
	var distinct []corpus.Ref
	gather := func(s *rootstore.Store) []corpus.Ref {
		var refs []corpus.Ref
		if s.Corpus() == cfg.corpus {
			refs = s.Refs()
		} else {
			certs := s.Certificates()
			refs = make([]corpus.Ref, len(certs))
			for i, c := range certs {
				refs[i] = cfg.corpus.InternCert(c)
			}
		}
		for _, ref := range refs {
			if !seen[ref] {
				seen[ref] = true
				distinct = append(distinct, ref)
			}
		}
		return refs
	}
	sysRefs := make([][]corpus.Ref, n)
	usrRefs := make([][]corpus.Ref, n)
	for i, h := range p.Handsets {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dataset: write cancelled: %w", err)
		}
		sysRefs[i] = gather(h.Device.SystemStore())
		usrRefs[i] = gather(h.Device.UserStore())
	}

	// The DER table is sorted by content digest — deterministic regardless
	// of handset order or corpus state, exactly like the notary snapshot.
	sort.Slice(distinct, func(i, j int) bool {
		di, dj := cfg.corpus.Entry(distinct[i]).Digest, cfg.corpus.Entry(distinct[j]).Digest
		return bytes.Compare(di[:], dj[:]) < 0
	})
	tableIdx := make(map[corpus.Ref]int, len(distinct))
	for i, ref := range distinct {
		tableIdx[ref] = i
	}

	// meta
	totalSessions := 0
	for _, h := range p.Handsets {
		totalSessions += h.SessionCount
	}
	meta := binary.AppendUvarint(nil, uint64(n))
	meta = binary.AppendUvarint(meta, uint64(len(distinct)))
	meta = binary.AppendUvarint(meta, uint64(totalSessions))

	// der
	der := binary.AppendUvarint(nil, uint64(len(distinct)))
	for _, ref := range distinct {
		raw := cfg.corpus.Entry(ref).DER
		der = binary.AppendUvarint(der, uint64(len(raw)))
		der = append(der, raw...)
	}

	// ids, profiles, flags, sessions
	ids := binary.AppendUvarint(nil, uint64(n))
	var pool []string
	poolIdx := map[string]int{}
	internStr := func(s string) uint64 {
		if i, ok := poolIdx[s]; ok {
			return uint64(i)
		}
		poolIdx[s] = len(pool)
		pool = append(pool, s)
		return uint64(len(pool) - 1)
	}
	profCols := binary.AppendUvarint(nil, uint64(n))
	flags := binary.AppendUvarint(nil, uint64(n))
	sessions := binary.AppendUvarint(nil, uint64(n))
	for _, h := range p.Handsets {
		ids = binary.AppendVarint(ids, int64(h.ID))
		for _, s := range []string{h.Model, h.Manufacturer, h.Operator, h.Country, h.Version} {
			profCols = binary.AppendUvarint(profCols, internStr(s))
		}
		var b byte
		if h.Rooted {
			b |= 1
		}
		if h.RootedExclusive {
			b |= 2
		}
		if h.Intercepted {
			b |= 4
		}
		flags = append(flags, b)
		sessions = binary.AppendUvarint(sessions, uint64(h.SessionCount))
	}
	profiles := binary.AppendUvarint(nil, uint64(len(pool)))
	for _, s := range pool {
		profiles = binary.AppendUvarint(profiles, uint64(len(s)))
		profiles = append(profiles, s...)
	}
	profiles = append(profiles, profCols...)

	// system / user membership columns: per handset the sorted DER-table
	// indices, delta-encoded (strictly increasing, so every delta >= 1).
	encodeMembership := func(memberRefs [][]corpus.Ref) []byte {
		out := binary.AppendUvarint(nil, uint64(n))
		for _, refs := range memberRefs {
			idxs := make([]int, len(refs))
			for i, ref := range refs {
				idxs[i] = tableIdx[ref]
			}
			sort.Ints(idxs)
			out = binary.AppendUvarint(out, uint64(len(idxs)))
			prev := -1
			for _, v := range idxs {
				out = binary.AppendUvarint(out, uint64(v-prev))
				prev = v
			}
		}
		return out
	}
	// apps: self-contained app-name pool plus per-handset (index, flags)
	// profile lists in draw order, so a round-trip rotates sessions over the
	// same policy sequence the generator produced.
	var appPool []string
	appPoolIdx := map[string]int{}
	appBody := []byte(nil)
	for _, h := range p.Handsets {
		pols := h.Device.Policies()
		appBody = binary.AppendUvarint(appBody, uint64(len(pols)))
		for _, pol := range pols {
			idx, ok := appPoolIdx[pol.App]
			if !ok {
				idx = len(appPool)
				appPoolIdx[pol.App] = idx
				appPool = append(appPool, pol.App)
			}
			appBody = binary.AppendUvarint(appBody, uint64(idx))
			var fb byte
			if pol.AcceptAll {
				fb |= 1
			}
			if pol.SkipHostname {
				fb |= 2
			}
			if pol.BypassPins {
				fb |= 4
			}
			appBody = append(appBody, fb)
		}
	}
	apps := binary.AppendUvarint(nil, uint64(len(appPool)))
	for _, s := range appPool {
		apps = binary.AppendUvarint(apps, uint64(len(s)))
		apps = append(apps, s...)
	}
	apps = binary.AppendUvarint(apps, uint64(n))
	apps = append(apps, appBody...)

	sections := []section{
		{"meta", meta},
		{"der", der},
		{"ids", ids},
		{"profiles", profiles},
		{"flags", flags},
		{"sessions", sessions},
		{"system", encodeMembership(sysRefs)},
		{"user", encodeMembership(usrRefs)},
		{"apps", apps},
	}

	// Assemble the header + directory, then stream the payloads.
	dirSize := 0
	for _, s := range sections {
		dirSize += 1 + len(s.name) + 8 + 8 + 4
	}
	headerLen := len(columnarMagic) + 4 + dirSize + 4
	header := make([]byte, 0, headerLen)
	header = append(header, columnarMagic...)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(sections)))
	offset := uint64(headerLen)
	for _, s := range sections {
		header = append(header, byte(len(s.name)))
		header = append(header, s.name...)
		header = binary.LittleEndian.AppendUint64(header, offset)
		header = binary.LittleEndian.AppendUint64(header, uint64(len(s.data)))
		header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(s.data, castagnoli))
		offset += uint64(len(s.data))
	}
	header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(header, castagnoli))

	f, err := os.Create(columnarPath(dir))
	if err != nil {
		return fmt.Errorf("dataset: creating columnar file: %w", err)
	}
	defer f.Close()
	cw := &countingWriter{w: f}
	bw := bufio.NewWriterSize(cw, 1<<20)
	if _, err := bw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing columnar header: %w", err)
	}
	for _, s := range sections {
		if _, err := bw.Write(s.data); err != nil {
			return fmt.Errorf("dataset: writing %q section: %w", s.name, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: flushing columnar file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataset: closing columnar file: %w", err)
	}
	cfg.observer.Counter(KeyWriteBytes).Add(cw.n)
	return nil
}

// columnarDir is an open columnar file with its parsed, checksum-verified
// directory. Section payloads are read (and CRC-checked) on demand.
type columnarDir struct {
	path      string
	f         *os.File
	size      int64
	headerLen int64
	sections  []SectionInfo
	bytesRead int64
}

func openColumnar(dir string) (*columnarDir, error) {
	path := columnarPath(dir)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: opening columnar file: %w", err)
	}
	cd := &columnarDir{path: path, f: f}
	// fail closes the file on any parse error; the open error wins, so the
	// close error is deliberately dropped.
	fail := func(err error) (*columnarDir, error) {
		_ = f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("dataset: statting %s: %w", path, err))
	}
	cd.size = st.Size()

	br := bufio.NewReader(f)
	var hdr bytes.Buffer
	tee := io.TeeReader(br, &hdr)
	readFull := func(n int) ([]byte, error) {
		buf := make([]byte, n)
		if _, err := io.ReadFull(tee, buf); err != nil {
			return nil, fmt.Errorf("dataset: %s: reading header (truncated?): %w", path, err)
		}
		return buf, nil
	}
	magic, err := readFull(len(columnarMagic))
	if err != nil {
		return fail(err)
	}
	if string(magic) != columnarMagic {
		return fail(fmt.Errorf("dataset: %s: not a columnar dataset (bad magic)", path))
	}
	cntBuf, err := readFull(4)
	if err != nil {
		return fail(err)
	}
	count := binary.LittleEndian.Uint32(cntBuf)
	if count == 0 || count > maxColumnarSections {
		return fail(fmt.Errorf("dataset: %s: implausible section count %d", path, count))
	}
	for i := 0; i < int(count); i++ {
		nl, err := readFull(1)
		if err != nil {
			return fail(err)
		}
		name, err := readFull(int(nl[0]))
		if err != nil {
			return fail(err)
		}
		rest, err := readFull(8 + 8 + 4)
		if err != nil {
			return fail(err)
		}
		cd.sections = append(cd.sections, SectionInfo{
			Name:   string(name),
			Offset: int64(binary.LittleEndian.Uint64(rest[0:8])),
			Length: int64(binary.LittleEndian.Uint64(rest[8:16])),
			CRC32C: binary.LittleEndian.Uint32(rest[16:20]),
		})
	}
	computed := crc32.Checksum(hdr.Bytes(), castagnoli)
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return fail(fmt.Errorf("dataset: %s: reading header checksum (truncated?): %w", path, err))
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != computed {
		return fail(fmt.Errorf("dataset: %s: header checksum mismatch (corrupt file)", path))
	}
	cd.headerLen = int64(hdr.Len()) + 4
	cd.bytesRead = cd.headerLen
	for _, si := range cd.sections {
		if si.Offset < cd.headerLen || si.Length < 0 || si.Offset+si.Length > cd.size {
			return fail(fmt.Errorf("dataset: %s: section %q out of bounds (truncated?)", path, si.Name))
		}
	}
	return cd, nil
}

func (cd *columnarDir) Close() error { return cd.f.Close() }

// has reports whether the directory lists a section — the optional-section
// probe (apps) that keeps old files loadable.
func (cd *columnarDir) has(name string) bool {
	for _, si := range cd.sections {
		if si.Name == name {
			return true
		}
	}
	return false
}

// read fetches a section payload by name, verifying its checksum.
func (cd *columnarDir) read(name string) ([]byte, error) {
	for _, si := range cd.sections {
		if si.Name != name {
			continue
		}
		buf := make([]byte, si.Length)
		if _, err := cd.f.ReadAt(buf, si.Offset); err != nil {
			return nil, fmt.Errorf("dataset: %s: reading %q section: %w", cd.path, name, err)
		}
		cd.bytesRead += si.Length
		if crc32.Checksum(buf, castagnoli) != si.CRC32C {
			return nil, fmt.Errorf("dataset: %s: section %q checksum mismatch (corrupt file)", cd.path, name)
		}
		return buf, nil
	}
	return nil, fmt.Errorf("dataset: %s: missing %q section", cd.path, name)
}

// colBuf decodes one section payload with bounds checking.
type colBuf struct {
	name string
	b    []byte
	off  int
}

func (cb *colBuf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(cb.b[cb.off:])
	if n <= 0 {
		return 0, fmt.Errorf("dataset: section %q: truncated varint at offset %d", cb.name, cb.off)
	}
	cb.off += n
	return v, nil
}

func (cb *colBuf) varint() (int64, error) {
	v, n := binary.Varint(cb.b[cb.off:])
	if n <= 0 {
		return 0, fmt.Errorf("dataset: section %q: truncated varint at offset %d", cb.name, cb.off)
	}
	cb.off += n
	return v, nil
}

func (cb *colBuf) take(n int) ([]byte, error) {
	if n < 0 || n > len(cb.b)-cb.off {
		return nil, fmt.Errorf("dataset: section %q: truncated payload at offset %d", cb.name, cb.off)
	}
	out := cb.b[cb.off : cb.off+n]
	cb.off += n
	return out, nil
}

// count reads the leading element count and checks it against the meta
// section's handset count.
func (cb *colBuf) count(want int) error {
	got, err := cb.uvarint()
	if err != nil {
		return err
	}
	if got != uint64(want) {
		return fmt.Errorf("dataset: section %q: %d entries, want %d", cb.name, got, want)
	}
	return nil
}

// membership holds a decoded store-membership column: per-handset slices of
// DER-table indices flattened into one backing array.
type membership struct {
	flat  []uint32
	start []int // len n+1; handset i owns flat[start[i]:start[i+1]]
}

func (m *membership) row(i int) []uint32 { return m.flat[m.start[i]:m.start[i+1]] }

// columns is a fully decoded and validated columnar file, ready for handset
// assembly (or discarded after a verify pass).
type columns struct {
	handsets, certs, sessions int

	ders     [][]byte
	ids      []int
	pool     []string
	profIdx  []uint32 // 5 pool indices per handset
	flags    []byte
	sessionN []int
	system   membership
	user     membership
	// policies holds each handset's app validation profiles in draw order;
	// nil when the file predates the apps section.
	policies [][]device.ValidationPolicy
}

// decodeColumns reads every section, verifies checksums and decodes the
// columns with full bounds validation.
func decodeColumns(cd *columnarDir) (*columns, error) {
	var c columns
	metaBuf, err := cd.read("meta")
	if err != nil {
		return nil, err
	}
	meta := &colBuf{name: "meta", b: metaBuf}
	for _, dst := range []*int{&c.handsets, &c.certs, &c.sessions} {
		v, err := meta.uvarint()
		if err != nil {
			return nil, err
		}
		*dst = int(v)
	}
	n := c.handsets

	derBuf, err := cd.read("der")
	if err != nil {
		return nil, err
	}
	der := &colBuf{name: "der", b: derBuf}
	if err := der.count(c.certs); err != nil {
		return nil, err
	}
	c.ders = make([][]byte, c.certs)
	for i := range c.ders {
		ln, err := der.uvarint()
		if err != nil {
			return nil, err
		}
		if c.ders[i], err = der.take(int(ln)); err != nil {
			return nil, err
		}
	}

	idsBuf, err := cd.read("ids")
	if err != nil {
		return nil, err
	}
	ids := &colBuf{name: "ids", b: idsBuf}
	if err := ids.count(n); err != nil {
		return nil, err
	}
	c.ids = make([]int, n)
	for i := range c.ids {
		v, err := ids.varint()
		if err != nil {
			return nil, err
		}
		c.ids[i] = int(v)
	}

	profBuf, err := cd.read("profiles")
	if err != nil {
		return nil, err
	}
	prof := &colBuf{name: "profiles", b: profBuf}
	poolLen, err := prof.uvarint()
	if err != nil {
		return nil, err
	}
	if poolLen > uint64(len(profBuf)) {
		return nil, fmt.Errorf("dataset: section \"profiles\": implausible pool size %d", poolLen)
	}
	c.pool = make([]string, poolLen)
	for i := range c.pool {
		ln, err := prof.uvarint()
		if err != nil {
			return nil, err
		}
		s, err := prof.take(int(ln))
		if err != nil {
			return nil, err
		}
		c.pool[i] = string(s)
	}
	if err := prof.count(n); err != nil {
		return nil, err
	}
	c.profIdx = make([]uint32, 5*n)
	for i := range c.profIdx {
		v, err := prof.uvarint()
		if err != nil {
			return nil, err
		}
		if v >= poolLen {
			return nil, fmt.Errorf("dataset: section \"profiles\": pool index %d out of range", v)
		}
		c.profIdx[i] = uint32(v)
	}

	flagsBuf, err := cd.read("flags")
	if err != nil {
		return nil, err
	}
	fl := &colBuf{name: "flags", b: flagsBuf}
	if err := fl.count(n); err != nil {
		return nil, err
	}
	if c.flags, err = fl.take(n); err != nil {
		return nil, err
	}

	sessBuf, err := cd.read("sessions")
	if err != nil {
		return nil, err
	}
	sess := &colBuf{name: "sessions", b: sessBuf}
	if err := sess.count(n); err != nil {
		return nil, err
	}
	c.sessionN = make([]int, n)
	total := 0
	for i := range c.sessionN {
		v, err := sess.uvarint()
		if err != nil {
			return nil, err
		}
		c.sessionN[i] = int(v)
		total += int(v)
	}
	if total != c.sessions {
		return nil, fmt.Errorf("dataset: session counts sum to %d, meta says %d", total, c.sessions)
	}

	decodeMembership := func(name string, dst *membership) error {
		buf, err := cd.read(name)
		if err != nil {
			return err
		}
		cb := &colBuf{name: name, b: buf}
		if err := cb.count(n); err != nil {
			return err
		}
		dst.start = make([]int, n+1)
		for i := 0; i < n; i++ {
			k, err := cb.uvarint()
			if err != nil {
				return err
			}
			if k > uint64(c.certs) {
				return fmt.Errorf("dataset: section %q: handset %d claims %d members of a %d-certificate table", name, i, k, c.certs)
			}
			prev := -1
			for j := uint64(0); j < k; j++ {
				d, err := cb.uvarint()
				if err != nil {
					return err
				}
				if d == 0 {
					return fmt.Errorf("dataset: section %q: zero delta (indices must be strictly increasing)", name)
				}
				v := prev + int(d)
				if v >= c.certs {
					return fmt.Errorf("dataset: section %q: certificate index %d out of range", name, v)
				}
				dst.flat = append(dst.flat, uint32(v))
				prev = v
			}
			dst.start[i+1] = len(dst.flat)
		}
		return nil
	}
	if err := decodeMembership("system", &c.system); err != nil {
		return nil, err
	}
	if err := decodeMembership("user", &c.user); err != nil {
		return nil, err
	}

	// apps is optional: files written before the app-profile column load
	// with policy-free devices.
	if cd.has("apps") {
		appsBuf, err := cd.read("apps")
		if err != nil {
			return nil, err
		}
		ab := &colBuf{name: "apps", b: appsBuf}
		appPoolLen, err := ab.uvarint()
		if err != nil {
			return nil, err
		}
		if appPoolLen > uint64(len(appsBuf)) {
			return nil, fmt.Errorf("dataset: section \"apps\": implausible pool size %d", appPoolLen)
		}
		appPool := make([]string, appPoolLen)
		for i := range appPool {
			ln, err := ab.uvarint()
			if err != nil {
				return nil, err
			}
			s, err := ab.take(int(ln))
			if err != nil {
				return nil, err
			}
			appPool[i] = string(s)
		}
		if err := ab.count(n); err != nil {
			return nil, err
		}
		c.policies = make([][]device.ValidationPolicy, n)
		for i := 0; i < n; i++ {
			k, err := ab.uvarint()
			if err != nil {
				return nil, err
			}
			if k > appPoolLen {
				return nil, fmt.Errorf("dataset: section \"apps\": handset %d claims %d profiles from a %d-name pool", i, k, appPoolLen)
			}
			pols := make([]device.ValidationPolicy, 0, k)
			for j := uint64(0); j < k; j++ {
				idx, err := ab.uvarint()
				if err != nil {
					return nil, err
				}
				if idx >= appPoolLen {
					return nil, fmt.Errorf("dataset: section \"apps\": pool index %d out of range", idx)
				}
				fb, err := ab.take(1)
				if err != nil {
					return nil, err
				}
				pols = append(pols, device.ValidationPolicy{
					App:          appPool[idx],
					AcceptAll:    fb[0]&1 != 0,
					SkipHostname: fb[0]&2 != 0,
					BypassPins:   fb[0]&4 != 0,
				})
			}
			c.policies[i] = pols
		}
	}
	return &c, nil
}

// readColumnar loads dir/handsets.col: the DER table is interned into the
// configured corpus in one bulk call, then handset reconstruction fans out
// through parallel.Accumulate in contiguous shards whose merge order is
// fixed — the assembled population is identical at any worker count.
func readColumnar(ctx context.Context, dir string, cfg config) (*population.Population, error) {
	cd, err := openColumnar(dir)
	if err != nil {
		return nil, err
	}
	defer cd.Close()
	cols, err := decodeColumns(cd)
	if err != nil {
		return nil, err
	}
	refs, err := cfg.corpus.InternAll(cols.ders)
	if err != nil {
		return nil, fmt.Errorf("dataset: interning certificate table: %w", err)
	}
	cfg.observer.Counter(KeyCertsInterned).Add(int64(len(refs)))

	// Firmware memberships repeat heavily across handsets, so each worker
	// shard assembles one prototype store per distinct membership row and
	// stamps per-handset copies off it with the wholesale Clone — the map is
	// built once per distinct row instead of once per handset. The scratch
	// key buffer makes the cache lookup allocation-free; a key is only
	// retained when a new prototype is inserted.
	type shardState struct {
		protos map[string]*rootstore.Store
		key    []byte
	}
	storeFromRow := func(st *shardState, name string, row []uint32) *rootstore.Store {
		st.key = st.key[:0]
		for _, v := range row {
			st.key = binary.LittleEndian.AppendUint32(st.key, v)
		}
		proto := st.protos[string(st.key)]
		if proto == nil {
			proto = rootstore.NewSized(name, cfg.corpus, len(row))
			for _, ti := range row {
				proto.AddRef(refs[ti])
			}
			st.protos[string(st.key)] = proto
		}
		return proto.Clone(name)
	}
	build := func(i int, st *shardState) *population.Handset {
		prof := device.Profile{
			Model:        cols.pool[cols.profIdx[5*i]],
			Manufacturer: cols.pool[cols.profIdx[5*i+1]],
			Operator:     cols.pool[cols.profIdx[5*i+2]],
			Country:      cols.pool[cols.profIdx[5*i+3]],
			Version:      cols.pool[cols.profIdx[5*i+4]],
		}
		name := prof.Manufacturer + " " + prof.Model
		system := storeFromRow(st, name+" system", cols.system.row(i))
		// The loaded file IS the captured effective membership, so the
		// handset's Store snapshot is materialized here (finalizeHandsets
		// keeps it): with no user certificates it shares the system copy,
		// which nothing mutates after load.
		captured := system
		var user *rootstore.Store
		if usrRow := cols.user.row(i); len(usrRow) > 0 {
			user = storeFromRow(st, name+" user", usrRow)
			captured = system.Clone(name + " effective")
			for _, ti := range usrRow {
				captured.AddRef(refs[ti])
			}
		}
		rooted := cols.flags[i]&1 != 0
		dev := device.Restore(prof, system, user, rooted)
		if cols.policies != nil {
			for _, pol := range cols.policies[i] {
				dev.AddPolicy(pol)
			}
		}
		return &population.Handset{
			ID:              cols.ids[i],
			Profile:         prof,
			Rooted:          rooted,
			RootedExclusive: cols.flags[i]&2 != 0,
			Device:          dev,
			Store:           captured,
			SessionCount:    cols.sessionN[i],
			Intercepted:     cols.flags[i]&4 != 0,
		}
	}
	handsets, err := parallel.Accumulate(ctx, cols.handsets,
		func() []*population.Handset { return nil },
		func(acc []*population.Handset, start, end int) []*population.Handset {
			st := &shardState{protos: map[string]*rootstore.Store{}}
			for i := start; i < end; i++ {
				acc = append(acc, build(i, st))
			}
			cfg.observer.Counter(KeyBatchesMerged).Inc()
			return acc
		},
		func(into, from []*population.Handset) []*population.Handset {
			return append(into, from...)
		},
		parallel.WithObserver(cfg.observer),
	)
	if err != nil {
		return nil, fmt.Errorf("dataset: assembling handsets: %w", err)
	}
	cfg.observer.Counter(KeyReadBytes).Add(cd.bytesRead)
	return population.Assemble(cfg.universe, handsets), nil
}

// inspectColumnar summarizes dir/handsets.col from its header and meta
// section; with full set it reads and CRC-checks every section and decodes
// every column, so truncation and bit-flips anywhere in the file surface.
func inspectColumnar(dir string, cfg config, full bool) (*Info, error) {
	cd, err := openColumnar(dir)
	if err != nil {
		return nil, err
	}
	defer cd.Close()
	info := &Info{Format: Columnar, Bytes: cd.size, Sections: cd.sections}
	if full {
		cols, err := decodeColumns(cd)
		if err != nil {
			return nil, err
		}
		info.Handsets, info.Certs, info.Sessions = cols.handsets, cols.certs, cols.sessions
	} else {
		metaBuf, err := cd.read("meta")
		if err != nil {
			return nil, err
		}
		meta := &colBuf{name: "meta", b: metaBuf}
		for _, dst := range []*int{&info.Handsets, &info.Certs, &info.Sessions} {
			v, err := meta.uvarint()
			if err != nil {
				return nil, err
			}
			*dst = int(v)
		}
	}
	cfg.observer.Counter(KeyReadBytes).Add(cd.bytesRead)
	return info, nil
}
