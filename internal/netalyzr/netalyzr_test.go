package netalyzr

import (
	"context"
	"net"
	"sync"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
	"tangledmass/internal/obs"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/tlsnet"
)

var (
	envOnce sync.Once
	envSrv  *tlsnet.Server
	envSite *tlsnet.Sites
	envErr  error
)

// env starts a shared origin server for the test binary.
func env(t *testing.T) (*tlsnet.Server, *tlsnet.Sites) {
	t.Helper()
	envOnce.Do(func() {
		var w *tlsnet.World
		w, envErr = tlsnet.NewWorld(tlsnet.Config{Seed: 5, NumLeaves: 10})
		if envErr != nil {
			return
		}
		envSite, envErr = tlsnet.NewSites(w)
		if envErr != nil {
			return
		}
		envSrv, envErr = tlsnet.ServeSites(envSite)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envSrv, envSite
}

func stockDevice() *device.Device {
	u := cauniverse.Default()
	return device.New(device.Profile{
		Model: "Nexus 5", Manufacturer: "LG", Operator: "T-MOBILE", Country: "US", Version: "4.4",
	}, u.AOSP("4.4"), nil)
}

func TestRunDirectSession(t *testing.T) {
	srv, _ := env(t)
	o := obs.New()
	c, err := New(stockDevice(), tlsnet.DirectDialer{Server: srv},
		WithValidationTime(certgen.Epoch), WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Store.Len() != 150 {
		t.Errorf("collected store = %d certs, want 150", rep.Store.Len())
	}
	if len(rep.Probes) != len(tlsnet.ProbeTargets()) {
		t.Fatalf("probes = %d, want %d", len(rep.Probes), len(tlsnet.ProbeTargets()))
	}
	for _, p := range rep.Probes {
		if p.Err != nil {
			t.Fatalf("probe %s failed: %v", p.Target, p.Err)
		}
		if len(p.Chain) < 2 {
			t.Errorf("probe %s captured %d certs", p.Target, len(p.Chain))
		}
		if !p.DeviceValidated {
			t.Errorf("probe %s should validate on a stock 4.4 device", p.Target)
		}
	}
	if n := len(rep.UntrustedProbes()); n != 0 {
		t.Errorf("untrusted probes = %d, want 0 on a clean network", n)
	}
	if len(rep.ChainRootSubjects()) == 0 {
		t.Error("no root subjects summarized")
	}
	snap := o.Snapshot()
	want := int64(len(tlsnet.ProbeTargets()))
	if got := snap.Counters[KeyProbesTotal]; got != want {
		t.Errorf("%s = %d, want %d", KeyProbesTotal, got, want)
	}
	if got := snap.Counters[KeyDialsTotal]; got != want {
		t.Errorf("%s = %d, want %d (one dial per clean probe)", KeyDialsTotal, got, want)
	}
	if got := snap.Counters[KeyStoreReads]; got != 1 {
		t.Errorf("%s = %d, want 1", KeyStoreReads, got)
	}
	if got := snap.Spans[KeyProbeSpan].Count; got != want {
		t.Errorf("span %s count = %d, want %d", KeyProbeSpan, got, want)
	}
}

func TestRunWithPrunedStore(t *testing.T) {
	srv, sites := env(t)
	u := cauniverse.Default()
	// A device trusting a single irrelevant root validates nothing.
	lonely := rootstore.New("lonely")
	lonely.Add(u.Root("CRAZY HOUSE").Issued.Cert)
	lone := device.New(device.Profile{Model: "X", Manufacturer: "Y", Version: "4.4"}, lonely, nil)
	c, err := New(lone, tlsnet.DirectDialer{Server: srv},
		WithTargets([]tlsnet.HostPort{sites.All()[0].HostPort}),
		WithValidationTime(certgen.Epoch))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes[0].DeviceValidated {
		t.Error("probe should not validate without the issuing root")
	}
	if len(rep.UntrustedProbes()) != 1 {
		t.Error("untrusted probe should be reported")
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("New without device/dialer should error")
	}
}

func TestProbeDialFailure(t *testing.T) {
	o := obs.New()
	c, err := New(stockDevice(), failingDialer{},
		WithValidationTime(certgen.Epoch),
		WithTargets([]tlsnet.HostPort{{Host: "unreachable.example", Port: 443}}),
		WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes[0].Err == nil {
		t.Error("dial failure should surface in the probe result")
	}
	if len(rep.UntrustedProbes()) != 0 {
		t.Error("failed probes are unreachable, not untrusted")
	}
	snap := o.Snapshot()
	if got := snap.Counters[KeyProbesFailed]; got != 1 {
		t.Errorf("%s = %d, want 1", KeyProbesFailed, got)
	}
	if snap.Counters[KeyDialErrors] != snap.Counters[KeyDialsTotal] {
		t.Errorf("every dial should have failed: %d errors of %d dials",
			snap.Counters[KeyDialErrors], snap.Counters[KeyDialsTotal])
	}
}

func TestRunCanceled(t *testing.T) {
	srv, _ := env(t)
	c, err := New(stockDevice(), tlsnet.DirectDialer{Server: srv},
		WithValidationTime(certgen.Epoch))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx); err == nil {
		t.Error("Run with a canceled context should error")
	}
}

type failingDialer struct{}

func (failingDialer) DialSite(ctx context.Context, host string, port int) (net.Conn, error) {
	return nil, net.ErrClosed
}
