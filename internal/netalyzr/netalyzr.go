// Package netalyzr reimplements the measurement client of §4.1: it reads a
// device's root certificate store, probes a list of popular domains over
// real TLS recording the full presented trust chain, and emits a session
// report. The paper's dataset is 15,970 such executions; here the client
// runs against the in-process TLS internet (or through an interception
// proxy, which is how §7's finding was made).
package netalyzr

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"time"

	"tangledmass/internal/device"
	"tangledmass/internal/obs"
	"tangledmass/internal/resilient"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/tlsnet"
	"tangledmass/internal/trusteval"
)

// ProbeResult is one domain's TLS trust-chain check.
type ProbeResult struct {
	Target tlsnet.HostPort
	// Chain is the chain the server presented, leaf first. Netalyzr records
	// it regardless of whether it validates.
	Chain []*x509.Certificate
	// DeviceValidated reports whether the presented chain verifies against
	// the device's effective root store (the Verdict's chain layer, before
	// any app policy override).
	DeviceValidated bool
	// Verdict is the full trust-evaluation outcome for this probe under
	// the session's app policy.
	Verdict trusteval.Verdict
	// AppAccepted reports whether the session's app, under its validation
	// policy, would proceed with this connection. An accept-all app
	// "accepts" a chain the device store rejects.
	AppAccepted bool
	// Err records a connection or handshake failure that survived the
	// retry policy. The probe fails; the session degrades gracefully and
	// carries on with the remaining targets.
	Err error
	// ErrKind is Err's stable resilient.Kind label ("refused", "reset",
	// "timeout", "eof", …) — the typed form the per-session fault ledger
	// and the collector aggregate count by.
	ErrKind string
}

// Report is one Netalyzr session.
type Report struct {
	Profile device.Profile
	Rooted  bool
	// Store is the device's effective trust store at probe time.
	Store *rootstore.Store
	// Policy is the validation policy the session's app profile ran
	// under (zero value: strict platform default).
	Policy device.ValidationPolicy
	// Probes holds one result per target, in target order.
	Probes []ProbeResult
}

// Client runs measurement sessions. Construct with New.
type Client struct {
	device  *device.Device
	dialer  tlsnet.Dialer
	targets []tlsnet.HostPort
	at      time.Time
	timeout time.Duration
	retry   *resilient.Retrier
	obs     *obs.Observer
	session string
	policy  device.ValidationPolicy
	pins    trusteval.PinChecker
	engine  *trusteval.Engine
}

// Option configures a Client.
type Option func(*Client)

// WithTargets sets the domains to probe. The default is the full
// tlsnet.ProbeTargets() list.
func WithTargets(targets []tlsnet.HostPort) Option {
	return func(c *Client) { c.targets = targets }
}

// WithValidationTime pins the chain-validation clock — callers should pass
// certgen.Epoch. Zero means the Unix epoch of the handshake.
func WithValidationTime(at time.Time) Option {
	return func(c *Client) { c.at = at }
}

// WithProbeTimeout bounds one connection attempt end to end — dial,
// handshake, chain capture — so a stalled server costs one deadline, never
// the whole session. Zero (the default) means 15s.
func WithProbeTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithRetryPolicy overrides the transient-probe-failure retry policy
// (refused connects, resets, timeouts). The default is 3 attempts with
// short backoff.
func WithRetryPolicy(r *resilient.Retrier) Option {
	return func(c *Client) { c.retry = r }
}

// WithObserver attaches the observer probe counters, store-read counters
// and probe spans report through. The default (nil) is silent.
func WithObserver(o *obs.Observer) Option {
	return func(c *Client) { c.obs = o }
}

// WithSession labels this client's spans with a session identifier
// ("session-17"); the campaign sets it per fleet session. The default is
// "session".
func WithSession(id string) Option {
	return func(c *Client) { c.session = id }
}

// WithPolicy sets the validation policy of the app profile this session
// runs as. The default is the strict platform behaviour.
func WithPolicy(p device.ValidationPolicy) Option {
	return func(c *Client) { c.policy = p }
}

// WithPins enables the engine's pin layer (typically a *pinning.Store).
func WithPins(p trusteval.PinChecker) Option {
	return func(c *Client) { c.pins = p }
}

// WithEngine shares an externally-built trust-evaluation engine (and its
// verifier memo / chain cache) across sessions. The default builds a
// per-client engine from the client's validation time, pins and observer.
func WithEngine(e *trusteval.Engine) Option {
	return func(c *Client) { c.engine = e }
}

// New builds a measurement client for the handset and its network path —
// direct to the origin, or through an interception proxy when the device's
// traffic is tunneled (§7).
func New(dev *device.Device, dialer tlsnet.Dialer, opts ...Option) (*Client, error) {
	if dev == nil || dialer == nil {
		return nil, fmt.Errorf("netalyzr: client needs a device and a dialer")
	}
	c := &Client{device: dev, dialer: dialer, session: "session"}
	for _, opt := range opts {
		opt(c)
	}
	if c.timeout <= 0 {
		c.timeout = 15 * time.Second
	}
	if c.retry == nil {
		c.retry = resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 3,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
		}, 0).WithObserver(c.obs)
	}
	if c.engine == nil {
		c.engine = trusteval.New(c.at,
			trusteval.WithPins(c.pins),
			trusteval.WithObserver(c.obs))
	}
	return c, nil
}

// Run executes one session: store collection plus one probe per target,
// all within ctx.
func (c *Client) Run(ctx context.Context) (*Report, error) {
	targets := c.targets
	if targets == nil {
		targets = tlsnet.ProbeTargets()
	}
	span := c.obs.StartSpan(c.session, KeySessionSpan)
	defer span.End()
	c.obs.Counter(KeyStoreReads).Inc()
	rep := &Report{
		Profile: c.device.Profile,
		Rooted:  c.device.Rooted(),
		Store:   c.device.EffectiveStore(),
		Policy:  c.policy,
	}
	c.obs.Counter(KeyStoreCerts).Add(int64(rep.Store.Len()))
	for _, hp := range targets {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("netalyzr: session canceled: %w", err)
		}
		rep.Probes = append(rep.Probes, c.probe(ctx, rep.Store, hp))
	}
	return rep, nil
}

// probe fetches and evaluates one target's chain, retrying transient
// transport failures under the client's policy.
func (c *Client) probe(ctx context.Context, store *rootstore.Store, hp tlsnet.HostPort) ProbeResult {
	res := ProbeResult{Target: hp}
	c.obs.Counter(KeyProbesTotal).Inc()
	span := c.obs.StartSpan(c.session, KeyProbeSpan)
	err := c.retry.Do(ctx, func(int) error {
		presented, err := c.fetchChain(ctx, hp)
		if err != nil {
			return err
		}
		res.Chain = presented
		return nil
	})
	span.End()
	if err != nil {
		c.obs.Counter(KeyProbesFailed).Inc()
		res.Err = err
		res.ErrKind = resilient.Kind(err)
		return res
	}
	res.Verdict = c.engine.Evaluate(trusteval.Request{
		Chain:  res.Chain,
		Host:   hp.Host,
		Port:   hp.Port,
		Store:  store,
		Policy: c.policy,
	})
	res.DeviceValidated = res.Verdict.Chain == trusteval.OutcomePass
	res.AppAccepted = res.Verdict.Accepted
	if !res.DeviceValidated {
		c.obs.Counter(KeyProbesUntrusted).Inc()
		if res.AppAccepted {
			// The device store rejected the chain but the app proceeded —
			// the app-misvalidation signal the attribution analysis counts.
			c.obs.Counter(KeyProbesMisvalidated).Inc()
		}
	}
	return res
}

// fetchChain runs one dial-and-handshake attempt under the probe deadline
// and returns the presented chain.
func (c *Client) fetchChain(ctx context.Context, hp tlsnet.HostPort) ([]*x509.Certificate, error) {
	// The per-attempt context bounds dial, handshake and chain capture
	// together; its deadline also arms the conn deadline below.
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	c.obs.Counter(KeyDialsTotal).Inc()
	conn, err := c.dialer.DialSite(ctx, hp.Host, hp.Port)
	if err != nil {
		c.obs.Counter(KeyDialErrors).Inc()
		return nil, fmt.Errorf("netalyzr: dialing %s: %w", hp, err)
	}
	// The deadline covers the whole attempt: without it a server that
	// accepts and then stalls mid-handshake would hang the session forever.
	deadline, _ := ctx.Deadline()
	if err := conn.SetDeadline(deadline); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("netalyzr: arming deadline for %s: %w", hp, err)
	}
	// InsecureSkipVerify: the client records whatever the server presents;
	// trust evaluation happens separately against the device store.
	tconn := tls.Client(conn, &tls.Config{
		ServerName:         hp.Host,
		InsecureSkipVerify: true,
	})
	// tconn owns conn from here: closing tconn closes the underlying conn,
	// so exactly one Close runs on every path.
	if err := tconn.HandshakeContext(ctx); err != nil {
		_ = tconn.Close()
		return nil, fmt.Errorf("netalyzr: handshake with %s: %w", hp, err)
	}
	presented := tconn.ConnectionState().PeerCertificates
	_ = tconn.Close()
	return presented, nil
}

// FaultTally is the session's fault ledger: failed probes counted by their
// typed ErrKind. A handset on a lossy mobile network reports a partial
// session rather than none, and the tally says exactly what was lost.
func (r *Report) FaultTally() map[string]int {
	out := map[string]int{}
	for _, p := range r.Probes {
		if p.Err != nil {
			kind := p.ErrKind
			if kind == "" {
				kind = "error"
			}
			out[kind]++
		}
	}
	return out
}

// UntrustedProbes returns the probes whose chains failed device validation —
// the signal that surfaced the §7 interception.
func (r *Report) UntrustedProbes() []ProbeResult {
	var out []ProbeResult
	for _, p := range r.Probes {
		if p.Err == nil && !p.DeviceValidated {
			out = append(out, p)
		}
	}
	return out
}

// MisvalidatedProbes returns the probes the app accepted despite the
// device store rejecting the chain — interception the app's own validation
// policy made possible.
func (r *Report) MisvalidatedProbes() []ProbeResult {
	var out []ProbeResult
	for _, p := range r.Probes {
		if p.Err == nil && !p.DeviceValidated && p.AppAccepted {
			out = append(out, p)
		}
	}
	return out
}

// ChainRootSubjects summarizes the distinct root subjects presented across
// all probes — a quick fingerprint of who is signing this session's TLS.
func (r *Report) ChainRootSubjects() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.Probes {
		if len(p.Chain) == 0 {
			continue
		}
		top := p.Chain[len(p.Chain)-1]
		s := top.Issuer.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
