// Package netalyzr reimplements the measurement client of §4.1: it reads a
// device's root certificate store, probes a list of popular domains over
// real TLS recording the full presented trust chain, and emits a session
// report. The paper's dataset is 15,970 such executions; here the client
// runs against the in-process TLS internet (or through an interception
// proxy, which is how §7's finding was made).
package netalyzr

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"sync"
	"time"

	"tangledmass/internal/chain"
	"tangledmass/internal/device"
	"tangledmass/internal/resilient"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/tlsnet"
)

// ProbeResult is one domain's TLS trust-chain check.
type ProbeResult struct {
	Target tlsnet.HostPort
	// Chain is the chain the server presented, leaf first. Netalyzr records
	// it regardless of whether it validates.
	Chain []*x509.Certificate
	// DeviceValidated reports whether the presented chain verifies against
	// the device's effective root store.
	DeviceValidated bool
	// Err records a connection or handshake failure that survived the
	// retry policy. The probe fails; the session degrades gracefully and
	// carries on with the remaining targets.
	Err error
	// ErrKind is Err's stable resilient.Kind label ("refused", "reset",
	// "timeout", "eof", …) — the typed form the per-session fault ledger
	// and the collector aggregate count by.
	ErrKind string
}

// Report is one Netalyzr session.
type Report struct {
	Profile device.Profile
	Rooted  bool
	// Store is the device's effective trust store at probe time.
	Store *rootstore.Store
	// Probes holds one result per target, in target order.
	Probes []ProbeResult
}

// Client runs measurement sessions. The zero value is not usable; fill all
// fields.
type Client struct {
	// Device is the handset under measurement.
	Device *device.Device
	// Dialer provides connectivity — direct to the origin, or through an
	// interception proxy when the device's traffic is tunneled (§7).
	Dialer tlsnet.Dialer
	// Targets are the domains to probe. Nil means tlsnet.ProbeTargets().
	Targets []tlsnet.HostPort
	// At pins the validation clock (defaults to the Unix epoch of the
	// handshake if zero — callers should pass certgen.Epoch).
	At time.Time
	// ProbeTimeout bounds one connection attempt end to end — dial,
	// handshake, chain capture — so a stalled server costs one deadline,
	// never the whole session. Zero means 15s.
	ProbeTimeout time.Duration
	// Retry governs transient probe failures (refused connects, resets,
	// timeouts). Nil means a default of 3 attempts with short backoff.
	Retry *resilient.Retrier

	retryOnce sync.Once
	retry     *resilient.Retrier
}

// retrier resolves the effective retry policy once per client.
func (c *Client) retrier() *resilient.Retrier {
	c.retryOnce.Do(func() {
		c.retry = c.Retry
		if c.retry == nil {
			c.retry = resilient.NewRetrier(resilient.Policy{
				MaxAttempts: 3,
				BaseDelay:   10 * time.Millisecond,
				MaxDelay:    200 * time.Millisecond,
			}, 0)
		}
	})
	return c.retry
}

// Run executes one session: store collection plus one probe per target.
func (c *Client) Run() (*Report, error) {
	if c.Device == nil || c.Dialer == nil {
		return nil, fmt.Errorf("netalyzr: client needs a device and a dialer")
	}
	targets := c.Targets
	if targets == nil {
		targets = tlsnet.ProbeTargets()
	}
	rep := &Report{
		Profile: c.Device.Profile,
		Rooted:  c.Device.Rooted(),
		Store:   c.Device.EffectiveStore(),
	}
	for _, hp := range targets {
		rep.Probes = append(rep.Probes, c.probe(rep.Store, hp))
	}
	return rep, nil
}

// probe fetches and evaluates one target's chain, retrying transient
// transport failures under the client's policy.
func (c *Client) probe(store *rootstore.Store, hp tlsnet.HostPort) ProbeResult {
	res := ProbeResult{Target: hp}
	err := c.retrier().Do(func(int) error {
		presented, err := c.fetchChain(hp)
		if err != nil {
			return err
		}
		res.Chain = presented
		return nil
	})
	if err != nil {
		res.Err = err
		res.ErrKind = resilient.Kind(err)
		return res
	}
	res.DeviceValidated = c.validates(store, res.Chain)
	return res
}

// fetchChain runs one dial-and-handshake attempt under the probe deadline
// and returns the presented chain.
func (c *Client) fetchChain(hp tlsnet.HostPort) ([]*x509.Certificate, error) {
	conn, err := c.Dialer.DialSite(hp.Host, hp.Port)
	if err != nil {
		return nil, fmt.Errorf("netalyzr: dialing %s: %w", hp, err)
	}
	timeout := c.ProbeTimeout
	if timeout <= 0 {
		timeout = 15 * time.Second
	}
	// The deadline covers the whole attempt: without it a server that
	// accepts and then stalls mid-handshake would hang the session forever.
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("netalyzr: arming deadline for %s: %w", hp, err)
	}
	// InsecureSkipVerify: the client records whatever the server presents;
	// trust evaluation happens separately against the device store.
	tconn := tls.Client(conn, &tls.Config{
		ServerName:         hp.Host,
		InsecureSkipVerify: true,
	})
	// tconn owns conn from here: closing tconn closes the underlying conn,
	// so exactly one Close runs on every path.
	if err := tconn.Handshake(); err != nil {
		_ = tconn.Close()
		return nil, fmt.Errorf("netalyzr: handshake with %s: %w", hp, err)
	}
	presented := tconn.ConnectionState().PeerCertificates
	_ = tconn.Close()
	return presented, nil
}

// validates checks the presented chain against the device store, using the
// presented intermediates for path building.
func (c *Client) validates(store *rootstore.Store, presented []*x509.Certificate) bool {
	if len(presented) == 0 {
		return false
	}
	v := chain.NewVerifier(store.Certificates(), presented[1:], c.At)
	return v.Validates(presented[0])
}

// FaultTally is the session's fault ledger: failed probes counted by their
// typed ErrKind. A handset on a lossy mobile network reports a partial
// session rather than none, and the tally says exactly what was lost.
func (r *Report) FaultTally() map[string]int {
	out := map[string]int{}
	for _, p := range r.Probes {
		if p.Err != nil {
			kind := p.ErrKind
			if kind == "" {
				kind = "error"
			}
			out[kind]++
		}
	}
	return out
}

// UntrustedProbes returns the probes whose chains failed device validation —
// the signal that surfaced the §7 interception.
func (r *Report) UntrustedProbes() []ProbeResult {
	var out []ProbeResult
	for _, p := range r.Probes {
		if p.Err == nil && !p.DeviceValidated {
			out = append(out, p)
		}
	}
	return out
}

// ChainRootSubjects summarizes the distinct root subjects presented across
// all probes — a quick fingerprint of who is signing this session's TLS.
func (r *Report) ChainRootSubjects() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.Probes {
		if len(p.Chain) == 0 {
			continue
		}
		top := p.Chain[len(p.Chain)-1]
		s := top.Issuer.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
