// Package netalyzr reimplements the measurement client of §4.1: it reads a
// device's root certificate store, probes a list of popular domains over
// real TLS recording the full presented trust chain, and emits a session
// report. The paper's dataset is 15,970 such executions; here the client
// runs against the in-process TLS internet (or through an interception
// proxy, which is how §7's finding was made).
package netalyzr

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"time"

	"tangledmass/internal/chain"
	"tangledmass/internal/device"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/tlsnet"
)

// ProbeResult is one domain's TLS trust-chain check.
type ProbeResult struct {
	Target tlsnet.HostPort
	// Chain is the chain the server presented, leaf first. Netalyzr records
	// it regardless of whether it validates.
	Chain []*x509.Certificate
	// DeviceValidated reports whether the presented chain verifies against
	// the device's effective root store.
	DeviceValidated bool
	// Err records a connection or handshake failure.
	Err error
}

// Report is one Netalyzr session.
type Report struct {
	Profile device.Profile
	Rooted  bool
	// Store is the device's effective trust store at probe time.
	Store *rootstore.Store
	// Probes holds one result per target, in target order.
	Probes []ProbeResult
}

// Client runs measurement sessions. The zero value is not usable; fill all
// fields.
type Client struct {
	// Device is the handset under measurement.
	Device *device.Device
	// Dialer provides connectivity — direct to the origin, or through an
	// interception proxy when the device's traffic is tunneled (§7).
	Dialer tlsnet.Dialer
	// Targets are the domains to probe. Nil means tlsnet.ProbeTargets().
	Targets []tlsnet.HostPort
	// At pins the validation clock (defaults to the Unix epoch of the
	// handshake if zero — callers should pass certgen.Epoch).
	At time.Time
}

// Run executes one session: store collection plus one probe per target.
func (c *Client) Run() (*Report, error) {
	if c.Device == nil || c.Dialer == nil {
		return nil, fmt.Errorf("netalyzr: client needs a device and a dialer")
	}
	targets := c.Targets
	if targets == nil {
		targets = tlsnet.ProbeTargets()
	}
	rep := &Report{
		Profile: c.Device.Profile,
		Rooted:  c.Device.Rooted(),
		Store:   c.Device.EffectiveStore(),
	}
	for _, hp := range targets {
		rep.Probes = append(rep.Probes, c.probe(rep.Store, hp))
	}
	return rep, nil
}

// probe fetches and evaluates one target's chain.
func (c *Client) probe(store *rootstore.Store, hp tlsnet.HostPort) ProbeResult {
	res := ProbeResult{Target: hp}
	conn, err := c.Dialer.DialSite(hp.Host, hp.Port)
	if err != nil {
		res.Err = fmt.Errorf("netalyzr: dialing %s: %w", hp, err)
		return res
	}
	defer conn.Close()
	// InsecureSkipVerify: the client records whatever the server presents;
	// trust evaluation happens separately against the device store.
	tconn := tls.Client(conn, &tls.Config{
		ServerName:         hp.Host,
		InsecureSkipVerify: true,
	})
	if err := tconn.Handshake(); err != nil {
		res.Err = fmt.Errorf("netalyzr: handshake with %s: %w", hp, err)
		return res
	}
	defer tconn.Close()
	res.Chain = tconn.ConnectionState().PeerCertificates
	res.DeviceValidated = c.validates(store, res.Chain)
	return res
}

// validates checks the presented chain against the device store, using the
// presented intermediates for path building.
func (c *Client) validates(store *rootstore.Store, presented []*x509.Certificate) bool {
	if len(presented) == 0 {
		return false
	}
	v := chain.NewVerifier(store.Certificates(), presented[1:], c.At)
	return v.Validates(presented[0])
}

// UntrustedProbes returns the probes whose chains failed device validation —
// the signal that surfaced the §7 interception.
func (r *Report) UntrustedProbes() []ProbeResult {
	var out []ProbeResult
	for _, p := range r.Probes {
		if p.Err == nil && !p.DeviceValidated {
			out = append(out, p)
		}
	}
	return out
}

// ChainRootSubjects summarizes the distinct root subjects presented across
// all probes — a quick fingerprint of who is signing this session's TLS.
func (r *Report) ChainRootSubjects() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.Probes {
		if len(p.Chain) == 0 {
			continue
		}
		top := p.Chain[len(p.Chain)-1]
		s := top.Issuer.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
