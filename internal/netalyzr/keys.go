package netalyzr

// Metric and span keys the measurement client emits (see the registry in
// README.md). Package-prefixed compile-time constants, per the obskey lint
// rule.
const (
	// KeySessionSpan is the span stage covering one full Run.
	KeySessionSpan = "netalyzr.session"
	// KeyProbeSpan is the span stage covering one target probe, retries
	// included.
	KeyProbeSpan = "netalyzr.probe"
	// KeyProbesTotal counts probes started.
	KeyProbesTotal = "netalyzr.probe.total"
	// KeyProbesFailed counts probes that failed after exhausting retries.
	KeyProbesFailed = "netalyzr.probe.failed"
	// KeyProbesUntrusted counts successful probes whose chain did not
	// validate against the device store — the §7 interception signal.
	KeyProbesUntrusted = "netalyzr.probe.untrusted"
	// KeyProbesMisvalidated counts untrusted probes the session's app
	// policy accepted anyway (accept-all trust manager, disabled hostname
	// verifier) — interception explained by the app, not the store.
	KeyProbesMisvalidated = "netalyzr.probe.misvalidated"
	// KeyDialsTotal counts individual dial attempts (one per retry).
	KeyDialsTotal = "netalyzr.dial.total"
	// KeyDialErrors counts dial attempts that failed.
	KeyDialErrors = "netalyzr.dial.error"
	// KeyStoreReads counts effective-store reads (one per session).
	KeyStoreReads = "netalyzr.store.read.total"
	// KeyStoreCerts accumulates the number of roots seen across store
	// reads.
	KeyStoreCerts = "netalyzr.store.certs.total"
)
