package campaign

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/collect"
	"tangledmass/internal/faultnet"
	"tangledmass/internal/mitm"
	"tangledmass/internal/notary"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/population"
	"tangledmass/internal/resilient"
	"tangledmass/internal/tlsnet"
)

// chaosPlan is the fault schedule the chaos run executes: roughly a quarter
// of all dials are disturbed, covering every fault kind.
func chaosPlan(seed int64) *faultnet.Plan {
	return &faultnet.Plan{
		Seed:               seed,
		RefuseProb:         0.08,
		ResetProb:          0.06,
		TruncateProb:       0.04,
		CorruptProb:        0.03,
		StallProb:          0.04,
		LatencyProb:        0.05,
		LatencyAmount:      time.Millisecond,
		StallFor:           2 * time.Millisecond,
		ResetAfterBytes:    24,
		TruncateAfterBytes: 12,
	}
}

// chaosOutcome captures everything two identical chaos runs must agree on.
type chaosOutcome struct {
	stats      Stats
	summary    collect.Summary
	ledger     string
	faultTotal int
	dialTotal  int
	validated  notarynet.ValidateResult
	successful int
	validCount int
}

// deviceValidationRate is the fraction of successful probes that validated
// against the device store — the aggregate faults must not skew.
func (o chaosOutcome) deviceValidationRate() float64 {
	if o.successful == 0 {
		return 0
	}
	return float64(o.validCount) / float64(o.successful)
}

// runChaosCampaign executes the full pipeline — tlsnet world → netalyzr
// sessions (the §7 handset through the proxy) → collect → notary validation
// — under the given fault plan (nil means fault-free baseline).
func runChaosCampaign(t *testing.T, plan *faultnet.Plan) chaosOutcome {
	t.Helper()
	u := cauniverse.Default()
	pop, err := population.Generate(population.Config{Seed: 2, Universe: u, SessionScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 2, Universe: u, NumLeaves: 10})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := tlsnet.NewSites(world)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := tlsnet.ServeSites(sites)
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := mitm.NewProxy(mitm.ProxyConfig{
		CA:        u.InterceptionRoot().Issued,
		Generator: u.Generator(),
		Upstream:  tlsnet.DirectDialer{Server: origin},
		Whitelist: tlsnet.WhitelistedDomains,
	})
	if err != nil {
		t.Fatal(err)
	}
	collector, err := collect.Serve("127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()
	nsrv, err := notarynet.Serve(notary.New(certgen.Epoch), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nsrv.Close()

	var inj *faultnet.Injector
	if plan != nil {
		inj = faultnet.New(*plan)
	}
	seed := int64(0)
	if plan != nil {
		seed = plan.Seed
	}
	stats, err := Run(Config{
		Population:    pop,
		Origin:        origin,
		CollectorAddr: collector.Addr(),
		NotaryAddr:    nsrv.Addr(),
		Proxy:         proxy,
		Targets: []tlsnet.HostPort{
			{Host: "gmail.com", Port: 443},
			{Host: "www.google.com", Port: 443},
			{Host: "www.twitter.com", Port: 443},
		},
		Concurrency:  8,
		At:           certgen.Epoch,
		Faults:       inj,
		ProbeTimeout: 2 * time.Second,
		ProbeRetry: resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		}, seed),
		SubmitRetry: resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		}, seed),
	})
	if err != nil {
		t.Fatal(err)
	}

	out := chaosOutcome{stats: stats, summary: collector.Summary()}
	out.stats.Elapsed = 0 // wall-clock, excluded from determinism checks
	for _, rep := range collector.Reports() {
		for _, p := range rep.Probes {
			if p.Err != "" {
				continue
			}
			out.successful++
			if p.DeviceValidated {
				out.validCount++
			}
		}
	}
	if inj != nil {
		out.ledger = inj.String()
		out.faultTotal = inj.Total()
		for _, e := range inj.Dials() {
			out.dialTotal += e.Count
		}
	}
	// Server-side notary validation (Table 3/4 path) over what the chaos
	// run managed to observe.
	nc, err := notarynet.Dial(nsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	out.validated, err = nc.Validate(u.AggregatedAndroid())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// waitGoroutines polls until the goroutine count drops back to at most
// baseline plus slack, failing the test if it never does — a leaked relay
// or handler goroutine would show up here.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+4 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d at baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosCampaignDeterministic is the capstone: the full pipeline under a
// faultnet plan, run twice with the same seed, must produce identical fault
// ledgers and identical aggregates — and the faults must not skew what the
// measurement concludes, only how much of it survives.
func TestChaosCampaignDeterministic(t *testing.T) {
	baseline := runtime.NumGoroutine()

	clean := runChaosCampaign(t, nil)
	a := runChaosCampaign(t, chaosPlan(1729))
	b := runChaosCampaign(t, chaosPlan(1729))
	waitGoroutines(t, baseline)

	// Same seed → byte-identical fault ledger.
	if a.ledger != b.ledger {
		t.Errorf("fault ledgers diverged across identical runs:\n%s\nvs\n%s", a.ledger, b.ledger)
	}
	// …and identical aggregates, wall-clock aside.
	if !reflect.DeepEqual(a.stats, b.stats) {
		t.Errorf("stats diverged:\n%+v\nvs\n%+v", a.stats, b.stats)
	}
	if !reflect.DeepEqual(a.summary, b.summary) {
		t.Errorf("collector summaries diverged:\n%+v\nvs\n%+v", a.summary, b.summary)
	}
	if !reflect.DeepEqual(a.validated, b.validated) {
		t.Errorf("notary validation diverged: %+v vs %+v", a.validated, b.validated)
	}

	// The plan actually disturbed the run: at least 10% of dials faulted.
	if a.dialTotal == 0 || a.faultTotal == 0 {
		t.Fatalf("no fault activity recorded (dials=%d faults=%d)", a.dialTotal, a.faultTotal)
	}
	if rate := float64(a.faultTotal) / float64(a.dialTotal); rate < 0.10 {
		t.Errorf("fault rate = %.3f, want >= 0.10\n%s", rate, a.ledger)
	}

	// Graceful degradation: every session ran, and the collector heard from
	// almost all of them despite the faults.
	if a.stats.Sessions != clean.stats.Sessions || a.stats.Failed != 0 {
		t.Errorf("chaos stats = %+v, want all %d sessions to run", a.stats, clean.stats.Sessions)
	}
	if a.summary.Sessions == 0 {
		t.Fatal("collector heard nothing under faults")
	}
	lost := float64(a.stats.SubmitFailed) / float64(a.stats.Sessions)
	if lost > 0.05 {
		t.Errorf("%.1f%% of submissions lost — retries are not absorbing the plan", 100*lost)
	}

	// The faults cost coverage, not correctness: the device-validation rate
	// over surviving probes stays within 2 points of the fault-free run.
	cleanRate := clean.deviceValidationRate()
	chaosRate := a.deviceValidationRate()
	if math.Abs(cleanRate-chaosRate) > 0.02 {
		t.Errorf("validation rate skewed: %.4f fault-free vs %.4f under faults", cleanRate, chaosRate)
	}
	if clean.successful == a.successful && a.faultTotal > 0 {
		t.Logf("note: all probes survived despite %d faults (retries absorbed everything)", a.faultTotal)
	}

	// Fault tallies reached the collector as typed kinds, never free text
	// only (the summary's map keys are resilient.Kind labels).
	for kind := range a.summary.ProbeFaults {
		switch kind {
		case "refused", "reset", "timeout", "eof", "transient", "breaker", "error":
		default:
			t.Errorf("collector saw unexpected fault kind %q", kind)
		}
	}
	t.Logf("chaos ledger:\n%s", a.ledger)
}
