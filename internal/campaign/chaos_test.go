package campaign

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/collect"
	"tangledmass/internal/faultnet"
	"tangledmass/internal/mitm"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/notary"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/population"
	"tangledmass/internal/resilient"
	"tangledmass/internal/tlsnet"
)

// chaosPlan is the fault schedule the chaos run executes: roughly a quarter
// of all dials are disturbed, covering every fault kind.
func chaosPlan(seed int64) *faultnet.Plan {
	return &faultnet.Plan{
		Seed:               seed,
		RefuseProb:         0.08,
		ResetProb:          0.06,
		TruncateProb:       0.04,
		CorruptProb:        0.03,
		StallProb:          0.04,
		LatencyProb:        0.05,
		LatencyAmount:      time.Millisecond,
		StallFor:           2 * time.Millisecond,
		ResetAfterBytes:    24,
		TruncateAfterBytes: 12,
	}
}

// chaosOutcome captures everything two identical chaos runs must agree on.
type chaosOutcome struct {
	stats      Stats
	summary    collect.Summary
	ledger     string
	faultTotal int
	dialTotal  int
	validated  notarynet.ValidateResult
	successful int
	validCount int
	// obsJSON is the run's serialized observability snapshot — the
	// byte-identity acceptance artifact.
	obsJSON []byte
}

// deviceValidationRate is the fraction of successful probes that validated
// against the device store — the aggregate faults must not skew.
func (o chaosOutcome) deviceValidationRate() float64 {
	if o.successful == 0 {
		return 0
	}
	return float64(o.validCount) / float64(o.successful)
}

// runChaosCampaign executes the full pipeline — tlsnet world → netalyzr
// sessions (the §7 handset through the proxy) → collect → notary validation
// — under the given fault plan (nil means fault-free baseline). The
// observer clock is frozen so the snapshot JSON is byte-identical across
// runs with the same seed.
func runChaosCampaign(t *testing.T, plan *faultnet.Plan) chaosOutcome {
	t.Helper()
	u := cauniverse.Default()
	pop, err := population.Generate(population.Config{Seed: 2, Universe: u, SessionScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 2, Universe: u, NumLeaves: 10})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := tlsnet.NewSites(world)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := tlsnet.ServeSites(sites)
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := mitm.NewProxy(u.InterceptionRoot().Issued, u.Generator(),
		tlsnet.DirectDialer{Server: origin}, mitm.WithWhitelist(tlsnet.WhitelistedDomains))
	if err != nil {
		t.Fatal(err)
	}
	collector, err := collect.NewServer("127.0.0.1:0", collect.WithKeepReports())
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()
	nsrv, err := notarynet.NewServer(notary.New(certgen.Epoch), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nsrv.Close()

	var inj *faultnet.Injector
	if plan != nil {
		inj = faultnet.New(*plan)
	}
	seed := int64(0)
	if plan != nil {
		seed = plan.Seed
	}
	opts := []Option{
		WithNotary(nsrv.Addr()),
		WithProxy(proxy),
		WithTargets([]tlsnet.HostPort{
			{Host: "gmail.com", Port: 443},
			{Host: "www.google.com", Port: 443},
			{Host: "www.twitter.com", Port: 443},
		}),
		WithConcurrency(8),
		WithValidationTime(certgen.Epoch),
		WithProbeTimeout(2 * time.Second),
		WithProbeRetry(resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		}, seed)),
		WithSubmitRetry(resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		}, seed)),
		// Frozen clock: span durations are all zero, so the snapshot JSON
		// carries no wall-clock and must reproduce byte for byte.
		WithClock(func() time.Time { return certgen.Epoch }),
	}
	if inj != nil {
		opts = append(opts, WithFaults(inj))
	}
	stats, err := Run(context.Background(), pop, origin, collector.Addr(), opts...)
	if err != nil {
		t.Fatal(err)
	}

	out := chaosOutcome{stats: stats, summary: collector.Summary()}
	out.stats.Elapsed = 0 // wall-clock, excluded from determinism checks
	out.obsJSON, err = stats.Obs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range collector.Reports() {
		for _, p := range rep.Probes {
			if p.Err != "" {
				continue
			}
			out.successful++
			if p.DeviceValidated {
				out.validCount++
			}
		}
	}
	if inj != nil {
		out.ledger = inj.String()
		out.faultTotal = inj.Total()
		for _, e := range inj.Dials() {
			out.dialTotal += e.Count
		}
	}
	// Server-side notary validation (Table 3/4 path) over what the chaos
	// run managed to observe.
	nc, err := notarynet.NewClient(context.Background(), nsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	out.validated, err = nc.Validate(context.Background(), u.AggregatedAndroid())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// waitGoroutines polls until the goroutine count drops back to at most
// baseline plus slack, failing the test if it never does — a leaked relay
// or handler goroutine would show up here.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+4 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d at baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// obsClientDials sums the per-package client/probe dial counters — every
// dial the campaign's network paths attempted.
func obsClientDials(s Stats) int64 {
	return s.Obs.Counters[netalyzr.KeyDialsTotal] +
		s.Obs.Counters[collect.KeyClientDials] +
		s.Obs.Counters[notarynet.KeyClientDials]
}

// TestChaosCampaignDeterministic is the capstone: the full pipeline under a
// faultnet plan, run twice with the same seed, must produce identical fault
// ledgers, identical aggregates and a byte-identical observability snapshot
// — and the faults must not skew what the measurement concludes, only how
// much of it survives.
func TestChaosCampaignDeterministic(t *testing.T) {
	baseline := runtime.NumGoroutine()

	clean := runChaosCampaign(t, nil)
	a := runChaosCampaign(t, chaosPlan(1729))
	b := runChaosCampaign(t, chaosPlan(1729))
	waitGoroutines(t, baseline)

	// Same seed → byte-identical fault ledger.
	if a.ledger != b.ledger {
		t.Errorf("fault ledgers diverged across identical runs:\n%s\nvs\n%s", a.ledger, b.ledger)
	}
	// …and identical aggregates, wall-clock aside.
	if !reflect.DeepEqual(a.stats, b.stats) {
		t.Errorf("stats diverged:\n%+v\nvs\n%+v", a.stats, b.stats)
	}
	// The serialized snapshot reproduces byte for byte — the debug-endpoint
	// artifact two identical runs must agree on exactly.
	if !bytes.Equal(a.obsJSON, b.obsJSON) {
		t.Errorf("obs snapshots diverged:\n%s\nvs\n%s", a.obsJSON, b.obsJSON)
	}
	if !reflect.DeepEqual(a.summary, b.summary) {
		t.Errorf("collector summaries diverged:\n%+v\nvs\n%+v", a.summary, b.summary)
	}
	if !reflect.DeepEqual(a.validated, b.validated) {
		t.Errorf("notary validation diverged: %+v vs %+v", a.validated, b.validated)
	}

	// The plan actually disturbed the run: at least 10% of dials faulted.
	if a.dialTotal == 0 || a.faultTotal == 0 {
		t.Fatalf("no fault activity recorded (dials=%d faults=%d)", a.dialTotal, a.faultTotal)
	}
	if rate := float64(a.faultTotal) / float64(a.dialTotal); rate < 0.10 {
		t.Errorf("fault rate = %.3f, want >= 0.10\n%s", rate, a.ledger)
	}

	// Reconciliation: the observability layer and the fault ledger counted
	// the same world. Every dial any client attempted passed through the
	// injector exactly once, so the obs dial counters must equal the
	// ledger's dial total exactly — for the clean run too (ledger absent,
	// but the counters still cover every dial).
	if got := obsClientDials(a.stats); got != int64(a.dialTotal) {
		t.Errorf("obs dial counters = %d, ledger dial total = %d — they must reconcile exactly",
			got, a.dialTotal)
	}

	// Graceful degradation: every session ran, and the collector heard from
	// almost all of them despite the faults.
	if a.stats.Sessions != clean.stats.Sessions || a.stats.Failed != 0 {
		t.Errorf("chaos stats = %+v, want all %d sessions to run", a.stats, clean.stats.Sessions)
	}
	if a.summary.Sessions == 0 {
		t.Fatal("collector heard nothing under faults")
	}
	lost := float64(a.stats.SubmitFailed) / float64(a.stats.Sessions)
	if lost > 0.05 {
		t.Errorf("%.1f%% of submissions lost — retries are not absorbing the plan", 100*lost)
	}

	// The faults cost coverage, not correctness: the device-validation rate
	// over surviving probes stays within 2 points of the fault-free run.
	cleanRate := clean.deviceValidationRate()
	chaosRate := a.deviceValidationRate()
	if math.Abs(cleanRate-chaosRate) > 0.02 {
		t.Errorf("validation rate skewed: %.4f fault-free vs %.4f under faults", cleanRate, chaosRate)
	}
	if clean.successful == a.successful && a.faultTotal > 0 {
		t.Logf("note: all probes survived despite %d faults (retries absorbed everything)", a.faultTotal)
	}

	// Fault tallies reached the collector as typed kinds, never free text
	// only (the summary's map keys are resilient.Kind labels).
	for kind := range a.summary.ProbeFaults {
		switch kind {
		case "refused", "reset", "timeout", "eof", "transient", "breaker", "error":
		default:
			t.Errorf("collector saw unexpected fault kind %q", kind)
		}
	}
	t.Logf("chaos ledger:\n%s", a.ledger)
}

// TestObsRetryCountersMatchLedger pins the reconciliation invariant in its
// sharpest form: under a refuse-only plan every injected fault is a refused
// dial, every refused dial fails exactly one operation attempt as
// transient, and nothing else on loopback fails — so the observer's
// transient-failure counter must equal the fault ledger's total exactly,
// and the dial-error counters must equal the refusal count.
func TestObsRetryCountersMatchLedger(t *testing.T) {
	inj := faultnet.New(faultnet.Plan{Seed: 99, RefuseProb: 0.25})
	out := runRefuseOnlyCampaign(t, inj)

	if inj.Total() == 0 {
		t.Fatal("no refusals fired; the plan exercised nothing")
	}
	if got := out.Obs.Counters[resilient.KeyFailureTransient]; got != int64(inj.Total()) {
		t.Errorf("%s = %d, ledger total = %d — every injected refusal is exactly one transient failure",
			resilient.KeyFailureTransient, got, inj.Total())
	}
	dialErrors := out.Obs.Counters[netalyzr.KeyDialErrors] +
		out.Obs.Counters[collect.KeyClientDialErrors] +
		out.Obs.Counters[notarynet.KeyClientDialErrors]
	if dialErrors != int64(inj.Total()) {
		t.Errorf("dial-error counters = %d, ledger refusals = %d — loopback only fails when injected",
			dialErrors, inj.Total())
	}
	var ledgerDials int
	for _, e := range inj.Dials() {
		ledgerDials += e.Count
	}
	if got := obsClientDials(out); got != int64(ledgerDials) {
		t.Errorf("obs dial counters = %d, ledger dial total = %d", got, ledgerDials)
	}
	// Retries follow from failures: with retry budget left, every transient
	// failure triggers exactly one retry less the attempts that exhausted.
	if out.Obs.Counters[resilient.KeyRetries] == 0 {
		t.Error("refusals fired but nothing retried")
	}
}

// runRefuseOnlyCampaign is a smaller single-purpose pipeline run for the
// reconciliation test: no proxy, generous retry budgets so refusals are
// absorbed rather than exhausted.
func runRefuseOnlyCampaign(t *testing.T, inj *faultnet.Injector) Stats {
	t.Helper()
	u := cauniverse.Default()
	pop, err := population.Generate(population.Config{Seed: 3, Universe: u, SessionScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 3, Universe: u, NumLeaves: 10})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := tlsnet.NewSites(world)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := tlsnet.ServeSites(sites)
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	collector, err := collect.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()
	nsrv, err := notarynet.NewServer(notary.New(certgen.Epoch), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nsrv.Close()

	stats, err := Run(context.Background(), pop, origin, collector.Addr(),
		WithNotary(nsrv.Addr()),
		WithTargets([]tlsnet.HostPort{
			{Host: "gmail.com", Port: 443},
			{Host: "www.google.com", Port: 443},
		}),
		WithConcurrency(4),
		WithValidationTime(certgen.Epoch),
		WithProbeTimeout(2*time.Second),
		WithFaults(inj),
		WithProbeRetry(resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		}, 99)),
		WithSubmitRetry(resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		}, 99)),
		WithClock(func() time.Time { return certgen.Epoch }),
	)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}
