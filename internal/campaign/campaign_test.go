package campaign

import (
	"context"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/collect"
	"tangledmass/internal/mitm"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/population"
	"tangledmass/internal/tlsnet"
)

// TestFullPipeline is the repository's end-to-end integration test: a
// generated fleet runs real Netalyzr sessions against real loopback TLS
// origins (the §7 handset through the interception proxy) and the collector
// aggregate must agree with the population's ground truth.
func TestFullPipeline(t *testing.T) {
	u := cauniverse.Default()
	pop, err := population.Generate(population.Config{Seed: 2, Universe: u, SessionScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}

	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 2, Universe: u, NumLeaves: 10})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := tlsnet.NewSites(world)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := tlsnet.ServeSites(sites)
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()

	proxy, err := mitm.NewProxy(u.InterceptionRoot().Issued, u.Generator(),
		tlsnet.DirectDialer{Server: origin}, mitm.WithWhitelist(tlsnet.WhitelistedDomains))
	if err != nil {
		t.Fatal(err)
	}

	collector, err := collect.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()

	targets := []tlsnet.HostPort{
		{Host: "gmail.com", Port: 443},       // intercepted for the §7 handset
		{Host: "www.google.com", Port: 443},  // whitelisted
		{Host: "www.twitter.com", Port: 443}, // whitelisted (pinned app)
	}
	stats, err := Run(context.Background(), pop, origin, collector.Addr(),
		WithProxy(proxy),
		WithTargets(targets),
		WithConcurrency(8),
		WithValidationTime(certgen.Epoch),
	)
	if err != nil {
		t.Fatal(err)
	}

	if stats.Sessions != pop.TotalSessions() {
		t.Errorf("campaign ran %d sessions, want %d", stats.Sessions, pop.TotalSessions())
	}
	if stats.Failed != 0 {
		t.Errorf("%d sessions failed", stats.Failed)
	}
	// Exactly one session probed gmail.com through the proxy: exactly one
	// untrusted probe fleet-wide.
	if stats.UntrustedProbes != 1 {
		t.Errorf("untrusted probes = %d, want 1 (the §7 session's gmail.com)", stats.UntrustedProbes)
	}

	sum := collector.Summary()
	if sum.Sessions != int64(pop.TotalSessions()) {
		t.Errorf("collector sessions = %d, want %d", sum.Sessions, pop.TotalSessions())
	}
	if sum.UntrustedProbes != 1 {
		t.Errorf("collector untrusted probes = %d, want 1", sum.UntrustedProbes)
	}
	// Collector's per-manufacturer tallies match ground truth.
	truth := map[string]int64{}
	var rootedTruth int64
	for _, s := range pop.Sessions {
		truth[s.Handset.Manufacturer]++
		if s.Handset.Rooted {
			rootedTruth++
		}
	}
	for man, want := range truth {
		if sum.ByManufacturer[man] != want {
			t.Errorf("collector %s sessions = %d, want %d", man, sum.ByManufacturer[man], want)
		}
	}
	if sum.RootedSessions != rootedTruth {
		t.Errorf("collector rooted = %d, want %d", sum.RootedSessions, rootedTruth)
	}
	// Store sizes: Netalyzr collected what the fleet actually carries.
	if sum.StoreSizeMin < 130 || sum.StoreSizeMax < 150 {
		t.Errorf("store-size envelope [%d,%d] implausible", sum.StoreSizeMin, sum.StoreSizeMax)
	}
	if proxy.Stats().Intercepted == 0 {
		t.Error("the §7 session never hit the proxy")
	}

	// The run's aggregated observability snapshot tells the same story as
	// the collector: one probe per session per target, one session span per
	// session, untrusted probes matching the §7 signal.
	wantProbes := int64(pop.TotalSessions() * len(targets))
	if got := stats.Obs.Counters[netalyzr.KeyProbesTotal]; got != wantProbes {
		t.Errorf("obs %s = %d, want %d", netalyzr.KeyProbesTotal, got, wantProbes)
	}
	if got := stats.Obs.Counters[netalyzr.KeyProbesUntrusted]; got != 1 {
		t.Errorf("obs %s = %d, want 1", netalyzr.KeyProbesUntrusted, got)
	}
	if got := stats.Obs.Counters[KeySessionsTotal]; got != int64(stats.Sessions) {
		t.Errorf("obs %s = %d, want %d", KeySessionsTotal, got, stats.Sessions)
	}
	if got := stats.Obs.Spans[KeySessionSpan].Count; got != int64(stats.Sessions) {
		t.Errorf("obs span %s count = %d, want %d", KeySessionSpan, got, stats.Sessions)
	}
	if got := stats.Obs.Counters[collect.KeyClientDials]; got < int64(stats.Sessions) {
		t.Errorf("obs %s = %d, want >= %d (one collector dial per session)",
			collect.KeyClientDials, got, stats.Sessions)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, nil, ""); err == nil {
		t.Error("Run without population/origin/collector should error")
	}
}
