package campaign

// Metric and span keys the campaign harness emits (see the registry in
// README.md). Package-prefixed compile-time constants, per the obskey lint
// rule.
const (
	// KeySessionSpan is the span stage covering one full session — probe,
	// submit and observe.
	KeySessionSpan = "campaign.session"
	// KeySessionsTotal counts sessions executed.
	KeySessionsTotal = "campaign.session.total"
	// KeySessionsFailed counts sessions that could not execute at all.
	KeySessionsFailed = "campaign.session.failed"
	// KeySubmitFailed counts session reports lost even after retries.
	KeySubmitFailed = "campaign.submit.failed"
	// KeyObserveFailed counts notary observations lost even after retries.
	KeyObserveFailed = "campaign.observe.failed"
	// KeyUntrustedProbes counts probes whose chain failed device validation.
	KeyUntrustedProbes = "campaign.probe.untrusted"
	// KeyMisvalidatedProbes counts untrusted probes the session's app
	// policy accepted anyway — interception the app made possible.
	KeyMisvalidatedProbes = "campaign.probe.misvalidated"
)
