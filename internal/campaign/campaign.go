// Package campaign drives the complete measurement pipeline end-to-end: for
// every session of a device population it runs a real Netalyzr execution —
// store collection plus TLS probes over loopback — routes the §7 handset's
// traffic through the interception proxy, and submits every report to the
// collection back end. It is the integration harness proving that the
// substrates compose: population → device → netalyzr → (mitm) → collect.
package campaign

import (
	"fmt"
	"sync"
	"time"

	"tangledmass/internal/collect"
	"tangledmass/internal/mitm"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/population"
	"tangledmass/internal/tlsnet"
)

// Config parameterizes a campaign run.
type Config struct {
	// Population is the fleet to measure.
	Population *population.Population
	// Origin is the TLS internet the probes hit.
	Origin *tlsnet.Server
	// CollectorAddr is the collection back end to submit to.
	CollectorAddr string
	// Proxy, when non-nil, carries the traffic of intercepted handsets.
	Proxy *mitm.Proxy
	// Targets are the domains each session probes. Nil means the full
	// Table 6 list; campaigns at fleet scale usually probe a subset.
	Targets []tlsnet.HostPort
	// Concurrency bounds parallel sessions. Values < 1 mean 8.
	Concurrency int
	// At pins the validation clock.
	At time.Time
}

// Stats summarizes a campaign.
type Stats struct {
	Sessions        int
	Failed          int
	UntrustedProbes int
	Elapsed         time.Duration
}

// Run executes the campaign. Sessions are independent, so they run on a
// worker pool; each worker holds its own collector connection.
func Run(cfg Config) (Stats, error) {
	if cfg.Population == nil || cfg.Origin == nil || cfg.CollectorAddr == "" {
		return Stats{}, fmt.Errorf("campaign: config needs Population, Origin and CollectorAddr")
	}
	conc := cfg.Concurrency
	if conc < 1 {
		conc = 8
	}
	start := time.Now()

	sessions := cfg.Population.Sessions
	jobs := make(chan *population.Session)
	var (
		mu    sync.Mutex
		stats Stats
		wg    sync.WaitGroup
	)
	errs := make(chan error, conc)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := collect.Dial(cfg.CollectorAddr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for s := range jobs {
				rep, err := cfg.runSession(s)
				mu.Lock()
				stats.Sessions++
				if err != nil {
					stats.Failed++
					mu.Unlock()
					continue
				}
				stats.UntrustedProbes += len(rep.UntrustedProbes())
				mu.Unlock()
				if err := cl.Submit(rep); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for _, s := range sessions {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return stats, err
		}
	}
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// runSession executes one Netalyzr session for one fleet session record.
func (cfg Config) runSession(s *population.Session) (*netalyzr.Report, error) {
	var dialer tlsnet.Dialer = tlsnet.DirectDialer{Server: cfg.Origin}
	if s.Intercepted && cfg.Proxy != nil {
		dialer = cfg.Proxy
	}
	client := &netalyzr.Client{
		Device:  s.Handset.Device,
		Dialer:  dialer,
		Targets: cfg.Targets,
		At:      cfg.At,
	}
	return client.Run()
}
