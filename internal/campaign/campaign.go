// Package campaign drives the complete measurement pipeline end-to-end: for
// every session of a device population it runs a real Netalyzr execution —
// store collection plus TLS probes over loopback — routes the §7 handset's
// traffic through the interception proxy, submits every report to the
// collection back end and streams observed chains to the notary. It is the
// integration harness proving that the substrates compose: population →
// device → netalyzr → (mitm) → collect/notarynet — including under injected
// network faults.
package campaign

import (
	"fmt"
	"net"
	"sync"
	"time"

	"tangledmass/internal/collect"
	"tangledmass/internal/faultnet"
	"tangledmass/internal/mitm"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/population"
	"tangledmass/internal/resilient"
	"tangledmass/internal/tlsnet"
)

// Config parameterizes a campaign run.
type Config struct {
	// Population is the fleet to measure.
	Population *population.Population
	// Origin is the TLS internet the probes hit.
	Origin *tlsnet.Server
	// CollectorAddr is the collection back end to submit to.
	CollectorAddr string
	// NotaryAddr, when non-empty, streams every successful probe's chain to
	// a notarynet server — one sensor connection per session, as deployed.
	NotaryAddr string
	// Proxy, when non-nil, carries the traffic of intercepted handsets.
	Proxy *mitm.Proxy
	// Targets are the domains each session probes. Nil means the full
	// Table 6 list; campaigns at fleet scale usually probe a subset.
	Targets []tlsnet.HostPort
	// Concurrency bounds parallel sessions. Values < 1 mean 8.
	Concurrency int
	// At pins the validation clock.
	At time.Time

	// Faults, when non-nil, injects its plan into every session's network
	// path — probes, collector submissions, notary observations. Each
	// session gets its own decision scope keyed by session ID, so the fault
	// ledger and the aggregates are identical across runs with the same
	// plan seed regardless of worker interleaving.
	Faults *faultnet.Injector
	// ProbeTimeout bounds one probe attempt (see netalyzr.Client).
	ProbeTimeout time.Duration
	// ProbeRetry overrides the per-probe retry policy.
	ProbeRetry *resilient.Retrier
	// SubmitRetry overrides the collector/notary retry policy.
	SubmitRetry *resilient.Retrier
}

// Stats summarizes a campaign.
type Stats struct {
	Sessions int
	// Failed counts sessions that could not execute at all.
	Failed int
	// SubmitFailed counts session reports lost even after retries — the
	// campaign degrades and carries on rather than aborting.
	SubmitFailed int
	// ObserveFailed counts notary observations lost even after retries.
	ObserveFailed   int
	UntrustedProbes int
	// ProbeFaults tallies failed probes across all sessions by their typed
	// kind ("refused", "reset", "timeout", …).
	ProbeFaults map[string]int
	Elapsed     time.Duration
}

// Run executes the campaign. Sessions are independent, so they run on a
// worker pool; each session submits over its own collector and notary
// connections — the deployment shape, where every handset execution is an
// independent network client.
func Run(cfg Config) (Stats, error) {
	if cfg.Population == nil || cfg.Origin == nil || cfg.CollectorAddr == "" {
		return Stats{}, fmt.Errorf("campaign: config needs Population, Origin and CollectorAddr")
	}
	conc := cfg.Concurrency
	if conc < 1 {
		conc = 8
	}
	start := time.Now()

	jobs := make(chan *population.Session)
	var (
		mu    sync.Mutex
		stats Stats
		wg    sync.WaitGroup
	)
	stats.ProbeFaults = make(map[string]int)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				res := cfg.session(s)
				mu.Lock()
				stats.Sessions++
				if res.failed {
					stats.Failed++
				}
				if res.submitFailed {
					stats.SubmitFailed++
				}
				stats.ObserveFailed += res.observeFailed
				stats.UntrustedProbes += res.untrusted
				for kind, n := range res.faults {
					stats.ProbeFaults[kind] += n
				}
				mu.Unlock()
			}
		}()
	}
	for _, s := range cfg.Population.Sessions {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// sessionResult is one session's contribution to the campaign stats.
type sessionResult struct {
	failed        bool
	submitFailed  bool
	observeFailed int
	untrusted     int
	faults        map[string]int
}

// netDial is the plain TCP transport for collector and notary connections.
func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 10*time.Second)
}

// session executes one Netalyzr session end to end: probe, submit, observe.
func (cfg Config) session(s *population.Session) sessionResult {
	scope := fmt.Sprintf("session-%d", s.ID)
	rep, err := cfg.runSession(s, scope)
	if err != nil {
		return sessionResult{failed: true}
	}
	res := sessionResult{
		untrusted: len(rep.UntrustedProbes()),
		faults:    rep.FaultTally(),
	}
	if err := cfg.submit(rep, scope); err != nil {
		res.submitFailed = true
	}
	res.observeFailed = cfg.observe(rep, scope)
	return res
}

// runSession executes one Netalyzr session for one fleet session record.
func (cfg Config) runSession(s *population.Session, scope string) (*netalyzr.Report, error) {
	var dialer tlsnet.Dialer = tlsnet.DirectDialer{Server: cfg.Origin}
	if s.Intercepted && cfg.Proxy != nil {
		dialer = cfg.Proxy
	}
	if cfg.Faults != nil {
		dialer = cfg.Faults.SiteDialer(dialer, scope)
	}
	client := &netalyzr.Client{
		Device:       s.Handset.Device,
		Dialer:       dialer,
		Targets:      cfg.Targets,
		At:           cfg.At,
		ProbeTimeout: cfg.ProbeTimeout,
		Retry:        cfg.ProbeRetry,
	}
	return client.Run()
}

// clientDial wraps the plain transport in the fault plan under this
// session's scope and the given logical key.
func (cfg Config) clientDial(scope, key string) func(addr string) (net.Conn, error) {
	if cfg.Faults == nil {
		return netDial
	}
	return cfg.Faults.DialFunc(scope, key, netDial)
}

// submit delivers one report over a fresh collector connection.
func (cfg Config) submit(rep *netalyzr.Report, scope string) error {
	cl, err := collect.DialOptions(cfg.CollectorAddr, collect.Options{
		Retry: cfg.SubmitRetry,
		Dial:  cfg.clientDial(scope, "collector"),
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	return cl.Submit(rep)
}

// observe streams the session's successfully captured chains to the notary,
// returning how many observations were lost after retries. The breaker is
// disabled: its cooldown is wall-clock, which would make outcomes depend on
// scheduling rather than the fault plan.
func (cfg Config) observe(rep *netalyzr.Report, scope string) (lost int) {
	if cfg.NotaryAddr == "" {
		return 0
	}
	var captured []netalyzr.ProbeResult
	for _, p := range rep.Probes {
		if p.Err == nil && len(p.Chain) > 0 {
			captured = append(captured, p)
		}
	}
	if len(captured) == 0 {
		return 0
	}
	nc, err := notarynet.DialOptions(cfg.NotaryAddr, notarynet.Options{
		Retry:          cfg.SubmitRetry,
		DisableBreaker: true,
		Dial:           cfg.clientDial(scope, "notary"),
	})
	if err != nil {
		return len(captured)
	}
	defer nc.Close()
	for _, p := range captured {
		if err := nc.Observe(p.Chain, p.Target.Port); err != nil {
			lost++
		}
	}
	return lost
}
