// Package campaign drives the complete measurement pipeline end-to-end: for
// every session of a device population it runs a real Netalyzr execution —
// store collection plus TLS probes over loopback — routes the §7 handset's
// traffic through the interception proxy, submits every report to the
// collection back end and streams observed chains to the notary. It is the
// integration harness proving that the substrates compose: population →
// device → netalyzr → (mitm) → collect/notarynet — including under injected
// network faults.
package campaign

import (
	"context"
	"fmt"
	"net"
	"time"

	"tangledmass/internal/collect"
	"tangledmass/internal/faultnet"
	"tangledmass/internal/mitm"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/obs"
	"tangledmass/internal/parallel"
	"tangledmass/internal/population"
	"tangledmass/internal/resilient"
	"tangledmass/internal/tlsnet"
	"tangledmass/internal/trusteval"
)

// config collects the campaign knobs behind Run's functional options.
type config struct {
	pop           *population.Population
	origin        *tlsnet.Server
	collectorAddr string
	notaryAddr    string
	proxy         *mitm.Proxy
	targets       []tlsnet.HostPort
	concurrency   int
	at            time.Time
	faults        *faultnet.Injector
	probeTimeout  time.Duration
	probeRetry    *resilient.Retrier
	submitRetry   *resilient.Retrier
	observer      *obs.Observer
	now           func() time.Time
	pins          trusteval.PinChecker
}

// Option configures a campaign run.
type Option func(*config)

// WithNotary streams every successful probe's chain to a notarynet server —
// one sensor connection per session, as deployed.
func WithNotary(addr string) Option {
	return func(c *config) { c.notaryAddr = addr }
}

// WithProxy carries the traffic of intercepted handsets through the §7
// interception proxy.
func WithProxy(p *mitm.Proxy) Option {
	return func(c *config) { c.proxy = p }
}

// WithPins enables the trust-evaluation engine's pin layer in every
// session's client (typically a *pinning.Store built from the origin's
// sites).
func WithPins(p trusteval.PinChecker) Option {
	return func(c *config) { c.pins = p }
}

// WithTargets sets the domains each session probes. The default is the full
// Table 6 list; campaigns at fleet scale usually probe a subset.
func WithTargets(targets []tlsnet.HostPort) Option {
	return func(c *config) { c.targets = targets }
}

// WithConcurrency bounds parallel sessions. Values < 1 (and the default)
// mean 8.
func WithConcurrency(n int) Option {
	return func(c *config) { c.concurrency = n }
}

// WithValidationTime pins the chain-validation clock for every session.
func WithValidationTime(at time.Time) Option {
	return func(c *config) { c.at = at }
}

// WithFaults injects the given plan into every session's network path —
// probes, collector submissions, notary observations. Each session gets its
// own decision scope keyed by session ID, so the fault ledger and the
// aggregates are identical across runs with the same plan seed regardless
// of worker interleaving.
func WithFaults(in *faultnet.Injector) Option {
	return func(c *config) { c.faults = in }
}

// WithFaultPlan is WithFaults for a bare plan: the campaign builds the
// injector (and its ledger, reachable via the injector the caller keeps —
// so prefer WithFaults when the ledger matters).
func WithFaultPlan(plan faultnet.Plan) Option {
	return func(c *config) { c.faults = faultnet.New(plan) }
}

// WithProbeTimeout bounds one probe attempt (see netalyzr.WithProbeTimeout).
func WithProbeTimeout(d time.Duration) Option {
	return func(c *config) { c.probeTimeout = d }
}

// WithProbeRetry overrides the per-probe retry policy. The campaign
// attaches its observer to the retrier, so retry counters still reconcile
// with the fault ledger.
func WithProbeRetry(r *resilient.Retrier) Option {
	return func(c *config) { c.probeRetry = r }
}

// WithSubmitRetry overrides the collector/notary retry policy. The campaign
// attaches its observer to the retrier.
func WithSubmitRetry(r *resilient.Retrier) Option {
	return func(c *config) { c.submitRetry = r }
}

// WithObserver aggregates the whole run — netalyzr probes, client dials,
// retries, session spans — into the given observer, whose Snapshot lands in
// Stats.Obs. The default is a fresh private observer, so Stats.Obs is
// always populated.
func WithObserver(o *obs.Observer) Option {
	return func(c *config) { c.observer = o }
}

// WithClock injects the observer's clock (deterministic harnesses freeze
// it, making span durations — and therefore the whole Stats.Obs JSON —
// byte-identical across runs). Ignored when WithObserver supplies an
// observer, which already owns its clock.
func WithClock(now func() time.Time) Option {
	return func(c *config) { c.now = now }
}

// Stats summarizes a campaign.
type Stats struct {
	Sessions int
	// Failed counts sessions that could not execute at all.
	Failed int
	// SubmitFailed counts session reports lost even after retries — the
	// campaign degrades and carries on rather than aborting.
	SubmitFailed int
	// ObserveFailed counts notary observations lost even after retries.
	ObserveFailed   int
	UntrustedProbes int
	// MisvalidatedProbes counts untrusted probes that the session's app
	// policy accepted anyway (the trust-evaluation engine's override
	// path) — the campaign-side app-misvalidation signal.
	MisvalidatedProbes int
	// ProbeFaults tallies failed probes across all sessions by their typed
	// kind ("refused", "reset", "timeout", …).
	ProbeFaults map[string]int
	Elapsed     time.Duration
	// Obs is the run's aggregated observability snapshot: every counter,
	// gauge, histogram and span the pipeline emitted under this campaign's
	// observer.
	Obs obs.Snapshot
}

// Run executes the campaign against the fleet. Sessions are independent, so
// they run on a worker pool; each session submits over its own collector
// and notary connections — the deployment shape, where every handset
// execution is an independent network client. ctx bounds the whole run:
// cancelation fails the remaining sessions.
func Run(ctx context.Context, pop *population.Population, origin *tlsnet.Server, collectorAddr string, opts ...Option) (Stats, error) {
	if pop == nil || origin == nil || collectorAddr == "" {
		return Stats{}, fmt.Errorf("campaign: run needs a population, an origin and a collector address")
	}
	cfg := &config{pop: pop, origin: origin, collectorAddr: collectorAddr}
	for _, opt := range opts {
		opt(cfg)
	}
	if cfg.concurrency < 1 {
		cfg.concurrency = 8
	}
	if cfg.observer == nil {
		var obsOpts []obs.Option
		if cfg.now != nil {
			obsOpts = append(obsOpts, obs.WithClock(cfg.now))
		}
		cfg.observer = obs.New(obsOpts...)
	}
	// Caller-supplied retriers report through the campaign's observer too;
	// without this the ledger-reconciliation invariant (obs retry counters
	// == faultnet ledger) would silently exclude custom policies.
	if cfg.probeRetry != nil {
		cfg.probeRetry = cfg.probeRetry.WithObserver(cfg.observer)
	}
	if cfg.submitRetry != nil {
		cfg.submitRetry = cfg.submitRetry.WithObserver(cfg.observer)
	}
	start := time.Now()

	// Sessions fan out on the parallel engine with dynamic load balancing
	// (sessions have uneven network cost) and their results come back in
	// session order; the stats fold below is then a serial loop, so the
	// aggregate is independent of worker interleaving. The pool itself runs
	// under a background context so every session is attempted even after
	// the run context is cancelled — cancellation fails the remaining
	// sessions individually (the degradation Run promises) instead of
	// discarding the finished ones, and the fan-out error is always nil.
	results, _ := parallel.Map(context.Background(), len(cfg.pop.Sessions),
		func(_ context.Context, i int) (sessionResult, error) {
			return cfg.session(ctx, cfg.pop.Sessions[i]), nil
		},
		parallel.WithWorkers(cfg.concurrency))
	var stats Stats
	stats.ProbeFaults = make(map[string]int)
	for _, res := range results {
		stats.Sessions++
		if res.failed {
			stats.Failed++
		}
		if res.submitFailed {
			stats.SubmitFailed++
		}
		stats.ObserveFailed += res.observeFailed
		stats.UntrustedProbes += res.untrusted
		stats.MisvalidatedProbes += res.misvalidated
		for kind, n := range res.faults {
			stats.ProbeFaults[kind] += n
		}
	}
	stats.Elapsed = time.Since(start)
	cfg.observer.Counter(KeySessionsTotal).Add(int64(stats.Sessions))
	cfg.observer.Counter(KeySessionsFailed).Add(int64(stats.Failed))
	cfg.observer.Counter(KeySubmitFailed).Add(int64(stats.SubmitFailed))
	cfg.observer.Counter(KeyObserveFailed).Add(int64(stats.ObserveFailed))
	cfg.observer.Counter(KeyUntrustedProbes).Add(int64(stats.UntrustedProbes))
	cfg.observer.Counter(KeyMisvalidatedProbes).Add(int64(stats.MisvalidatedProbes))
	stats.Obs = cfg.observer.Snapshot()
	return stats, nil
}

// sessionResult is one session's contribution to the campaign stats.
type sessionResult struct {
	failed        bool
	submitFailed  bool
	observeFailed int
	untrusted     int
	misvalidated  int
	faults        map[string]int
}

// netDial is the plain TCP transport for collector and notary connections.
func netDial(ctx context.Context, addr string) (net.Conn, error) {
	d := &net.Dialer{Timeout: 10 * time.Second}
	return d.DialContext(ctx, "tcp", addr)
}

// session executes one Netalyzr session end to end: probe, submit, observe.
func (cfg *config) session(ctx context.Context, s *population.Session) sessionResult {
	scope := fmt.Sprintf("session-%d", s.ID)
	span := cfg.observer.StartSpan(scope, KeySessionSpan)
	defer span.End()
	rep, err := cfg.runSession(ctx, s, scope)
	if err != nil {
		return sessionResult{failed: true}
	}
	res := sessionResult{
		untrusted:    len(rep.UntrustedProbes()),
		misvalidated: len(rep.MisvalidatedProbes()),
		faults:       rep.FaultTally(),
	}
	if err := cfg.submit(ctx, rep, scope); err != nil {
		res.submitFailed = true
	}
	res.observeFailed = cfg.observe(ctx, rep, scope)
	return res
}

// runSession executes one Netalyzr session for one fleet session record.
func (cfg *config) runSession(ctx context.Context, s *population.Session, scope string) (*netalyzr.Report, error) {
	var dialer tlsnet.Dialer = tlsnet.DirectDialer{Server: cfg.origin}
	if s.Intercepted && cfg.proxy != nil {
		dialer = cfg.proxy
	}
	if cfg.faults != nil {
		dialer = cfg.faults.SiteDialer(dialer, scope)
	}
	opts := []netalyzr.Option{
		netalyzr.WithValidationTime(cfg.at),
		netalyzr.WithProbeTimeout(cfg.probeTimeout),
		netalyzr.WithObserver(cfg.observer),
		netalyzr.WithSession(scope),
		// Each session runs as its handset's drawn app profile, so the
		// trust-evaluation engine inside the client applies the same
		// policy the attribution analysis assumes for this session.
		netalyzr.WithPolicy(s.Policy),
	}
	if cfg.pins != nil {
		opts = append(opts, netalyzr.WithPins(cfg.pins))
	}
	if cfg.targets != nil {
		opts = append(opts, netalyzr.WithTargets(cfg.targets))
	}
	if cfg.probeRetry != nil {
		opts = append(opts, netalyzr.WithRetryPolicy(cfg.probeRetry))
	}
	client, err := netalyzr.New(s.Handset.Device, dialer, opts...)
	if err != nil {
		return nil, err
	}
	return client.Run(ctx)
}

// clientDial wraps the plain transport in the fault plan under this
// session's scope and the given logical key.
func (cfg *config) clientDial(scope, key string) func(ctx context.Context, addr string) (net.Conn, error) {
	if cfg.faults == nil {
		return netDial
	}
	return cfg.faults.DialFunc(scope, key, netDial)
}

// submit delivers one report over a fresh collector connection.
func (cfg *config) submit(ctx context.Context, rep *netalyzr.Report, scope string) error {
	opts := []collect.Option{
		collect.WithDialFunc(cfg.clientDial(scope, "collector")),
		collect.WithObserver(cfg.observer),
	}
	if cfg.submitRetry != nil {
		opts = append(opts, collect.WithRetryPolicy(cfg.submitRetry))
	}
	cl, err := collect.NewClient(ctx, cfg.collectorAddr, opts...)
	if err != nil {
		return err
	}
	defer cl.Close()
	return cl.Submit(ctx, rep)
}

// observe streams the session's successfully captured chains to the notary,
// returning how many observations were lost after retries. The breaker is
// disabled: its cooldown is wall-clock, which would make outcomes depend on
// scheduling rather than the fault plan.
func (cfg *config) observe(ctx context.Context, rep *netalyzr.Report, scope string) (lost int) {
	if cfg.notaryAddr == "" {
		return 0
	}
	var captured []netalyzr.ProbeResult
	for _, p := range rep.Probes {
		if p.Err == nil && len(p.Chain) > 0 {
			captured = append(captured, p)
		}
	}
	if len(captured) == 0 {
		return 0
	}
	opts := []notarynet.Option{
		notarynet.WithoutBreaker(),
		notarynet.WithDialFunc(cfg.clientDial(scope, "notary")),
		notarynet.WithObserver(cfg.observer),
	}
	if cfg.submitRetry != nil {
		opts = append(opts, notarynet.WithRetryPolicy(cfg.submitRetry))
	}
	nc, err := notarynet.NewClient(ctx, cfg.notaryAddr, opts...)
	if err != nil {
		return len(captured)
	}
	defer nc.Close()
	for _, p := range captured {
		if err := nc.Observe(ctx, p.Chain, p.Target.Port); err != nil {
			lost++
		}
	}
	return lost
}
