package campaign

import (
	"context"
	"testing"
	"time"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/collect"
	"tangledmass/internal/mitm"
	"tangledmass/internal/notaryshard"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/population"
	"tangledmass/internal/resilient"
	"tangledmass/internal/tlsnet"
)

// TestCampaignAgainstShardedNotary runs the full pipeline — world →
// sessions through the proxy → collector → notary submission — once per
// shard count, with the campaign's notary living behind a sharded
// notaryshard cluster. The cluster must be transparent: every shard count
// ends with the same session total and the same unique-certificate count
// as the unsharded baseline.
func TestCampaignAgainstShardedNotary(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	run := func(t *testing.T, shards int) (int64, int) {
		u := cauniverse.Default()
		pop, err := population.Generate(population.Config{Seed: 3, Universe: u, SessionScale: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		world, err := tlsnet.NewWorld(tlsnet.Config{Seed: 3, Universe: u, NumLeaves: 10})
		if err != nil {
			t.Fatal(err)
		}
		sites, err := tlsnet.NewSites(world)
		if err != nil {
			t.Fatal(err)
		}
		origin, err := tlsnet.ServeSites(sites)
		if err != nil {
			t.Fatal(err)
		}
		defer origin.Close()
		proxy, err := mitm.NewProxy(u.InterceptionRoot().Issued, u.Generator(),
			tlsnet.DirectDialer{Server: origin}, mitm.WithWhitelist(tlsnet.WhitelistedDomains))
		if err != nil {
			t.Fatal(err)
		}
		collector, err := collect.NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer collector.Close()

		cluster, err := notaryshard.New(certgen.Epoch, shards)
		if err != nil {
			t.Fatal(err)
		}
		nsrv, err := notarynet.NewServer(cluster, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer nsrv.Close()

		_, err = Run(context.Background(), pop, origin, collector.Addr(),
			WithNotary(nsrv.Addr()),
			WithProxy(proxy),
			WithTargets([]tlsnet.HostPort{
				{Host: "gmail.com", Port: 443},
				{Host: "www.google.com", Port: 443},
			}),
			WithConcurrency(8),
			WithValidationTime(certgen.Epoch),
			WithProbeTimeout(2*time.Second),
			WithSubmitRetry(resilient.NewRetrier(resilient.Policy{
				MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
			}, 0)),
		)
		if err != nil {
			t.Fatal(err)
		}
		return cluster.Sessions(), cluster.NumUnique()
	}

	baseSessions, baseUnique := run(t, 1)
	if baseSessions == 0 {
		t.Fatal("baseline campaign submitted no observations to the notary")
	}
	for _, shards := range []int{3, 5} {
		sessions, unique := run(t, shards)
		if sessions != baseSessions || unique != baseUnique {
			t.Fatalf("shards=%d: notary holds %d sessions/%d unique, unsharded baseline %d/%d",
				shards, sessions, unique, baseSessions, baseUnique)
		}
	}
}
