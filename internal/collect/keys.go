package collect

// Metric keys the collector and its client emit (see the registry in
// README.md). Package-prefixed compile-time constants, per the obskey lint
// rule.
const (
	// KeySubmitTotal counts accepted (non-duplicate) report submissions.
	KeySubmitTotal = "collect.submit.total"
	// KeySubmitDedupe counts re-sent submissions absorbed by the
	// idempotency window without double-counting.
	KeySubmitDedupe = "collect.submit.dedupe.hit"
	// KeySubmitRejected counts submissions refused after Close froze the
	// aggregate.
	KeySubmitRejected = "collect.submit.rejected.closed"
	// KeySummaryTotal counts summary fetches served.
	KeySummaryTotal = "collect.summary.total"
	// KeyBadRequest counts undecodable or unknown-op requests.
	KeyBadRequest = "collect.request.bad"
	// KeyConnsActive gauges currently connected clients.
	KeyConnsActive = "collect.conns.active"
	// KeyClientDials counts transport dials the client performed.
	KeyClientDials = "collect.client.dial.total"
	// KeyClientDialErrors counts client dials that failed.
	KeyClientDialErrors = "collect.client.dial.error"
)
