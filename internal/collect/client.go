package collect

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"tangledmass/internal/netalyzr"
	"tangledmass/internal/obs"
	"tangledmass/internal/resilient"
)

// Client submits session reports. Sequential use only. Transient transport
// failures retry on a fresh connection: after any mid-exchange failure the
// transport is marked broken and never reused (a half-read response would
// desync the framing), and submits carry idempotency IDs the server
// deduplicates, so a retry after a lost response does not double-count.
type Client struct {
	addr    string
	timeout time.Duration
	dial    func(ctx context.Context, addr string) (net.Conn, error)
	retry   *resilient.Retrier
	obs     *obs.Observer

	nonce string
	seq   uint64

	conn    net.Conn
	scanner *bufio.Scanner
	enc     *json.Encoder
	broken  bool
}

// NewClient connects to a collector. The initial connect already runs
// under the retry policy, bounded by ctx. Options: WithTimeout,
// WithRetryPolicy, WithDialFunc, WithObserver.
func NewClient(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	op := buildOptions(opts)
	c := &Client{
		addr:    addr,
		timeout: op.timeout,
		dial:    op.dial,
		retry:   op.retry,
		obs:     op.observer,
		nonce:   newNonce(),
	}
	if c.timeout <= 0 {
		c.timeout = time.Minute
	}
	if c.dial == nil {
		c.dial = func(ctx context.Context, addr string) (net.Conn, error) {
			d := &net.Dialer{Timeout: 10 * time.Second}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if c.retry == nil {
		c.retry = resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 4,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}, 0).WithObserver(op.observer)
	}
	if err := c.retry.Do(ctx, func(int) error { return c.connect(ctx) }); err != nil {
		return nil, err
	}
	return c, nil
}

// newNonce labels this client's idempotency IDs. Uniqueness, not
// unpredictability, is what matters; an entropy-pool failure is not
// recoverable.
func newNonce() string {
	b := make([]byte, 6)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("collect: reading nonce entropy: %v", err))
	}
	return hex.EncodeToString(b)
}

// connect establishes a fresh transport, replacing any broken one.
func (c *Client) connect(ctx context.Context) error {
	c.obs.Counter(KeyClientDials).Inc()
	conn, err := c.dial(ctx, c.addr)
	if err != nil {
		c.obs.Counter(KeyClientDialErrors).Inc()
		return fmt.Errorf("collect: dialing %s: %w", c.addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	c.conn, c.scanner, c.enc, c.broken = conn, sc, json.NewEncoder(conn), false
	return nil
}

// markBroken poisons the transport after a mid-exchange failure so the
// next attempt starts on a fresh connection.
func (c *Client) markBroken() {
	c.broken = true
	if c.conn != nil {
		_ = c.conn.Close()
	}
}

// Close releases the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// roundTrip sends one request and reads one response, reconnecting and
// retrying transient failures within ctx.
func (c *Client) roundTrip(ctx context.Context, req request) (response, error) {
	req.ID = fmt.Sprintf("%s-%d", c.nonce, c.seq)
	c.seq++
	var resp response
	err := c.retry.Do(ctx, func(int) error {
		r, err := c.attempt(ctx, req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}

// attempt runs one exchange on the current transport.
func (c *Client) attempt(ctx context.Context, req request) (response, error) {
	if c.broken || c.conn == nil {
		if err := c.connect(ctx); err != nil {
			return response{}, err
		}
	}
	deadline := time.Now().Add(c.timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.markBroken()
		return response{}, fmt.Errorf("collect: setting deadline: %w", err)
	}
	if err := c.enc.Encode(req); err != nil {
		c.markBroken()
		return response{}, fmt.Errorf("collect: sending %s: %w", req.Op, err)
	}
	if !c.scanner.Scan() {
		err := c.scanner.Err()
		c.markBroken()
		if err != nil {
			return response{}, fmt.Errorf("collect: reading response: %w", err)
		}
		return response{}, resilient.MarkTransient(errors.New("collect: connection closed"))
	}
	var resp response
	if err := json.Unmarshal(c.scanner.Bytes(), &resp); err != nil {
		// Corrupted or truncated line: the framing is no longer trustworthy.
		c.markBroken()
		return response{}, resilient.MarkTransient(fmt.Errorf("collect: decoding response: %w", err))
	}
	if !resp.OK {
		// Protocol-level rejection over a healthy transport: not retryable.
		return resp, resilient.MarkPermanent(fmt.Errorf("collect: server error: %s", resp.Error))
	}
	return resp, nil
}

// Submit sends one session report.
func (c *Client) Submit(ctx context.Context, r *netalyzr.Report) error {
	w := FromReport(r)
	_, err := c.roundTrip(ctx, request{Op: "submit", Report: &w})
	return err
}

// SubmitWire sends a pre-converted report.
func (c *Client) SubmitWire(ctx context.Context, w WireReport) error {
	_, err := c.roundTrip(ctx, request{Op: "submit", Report: &w})
	return err
}

// Summary fetches the collector's aggregate.
func (c *Client) Summary(ctx context.Context) (Summary, error) {
	resp, err := c.roundTrip(ctx, request{Op: "summary"})
	if err != nil {
		return Summary{}, err
	}
	if resp.Summary == nil {
		return Summary{}, fmt.Errorf("collect: summary missing from response")
	}
	return *resp.Summary, nil
}
