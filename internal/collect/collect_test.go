package collect

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/device"
	"tangledmass/internal/netalyzr"
	"tangledmass/internal/tlsnet"
)

var (
	envOnce sync.Once
	envRep  *netalyzr.Report
	envErr  error
)

// sessionReport runs one real Netalyzr session against a loopback origin
// and caches the report.
func sessionReport(t *testing.T) *netalyzr.Report {
	t.Helper()
	envOnce.Do(func() {
		var w *tlsnet.World
		w, envErr = tlsnet.NewWorld(tlsnet.Config{Seed: 23, NumLeaves: 10})
		if envErr != nil {
			return
		}
		sites, err := tlsnet.NewSites(w)
		if err != nil {
			envErr = err
			return
		}
		srv, err := tlsnet.ServeSites(sites)
		if err != nil {
			envErr = err
			return
		}
		defer srv.Close()
		u := cauniverse.Default()
		dev := device.New(device.Profile{
			Model: "Galaxy SIV", Manufacturer: "SAMSUNG", Operator: "SPRINT", Country: "US", Version: "4.3",
		}, u.AOSP("4.3"), nil)
		client, err := netalyzr.New(dev, tlsnet.DirectDialer{Server: srv},
			netalyzr.WithValidationTime(certgen.Epoch))
		if err != nil {
			envErr = err
			return
		}
		envRep, envErr = client.Run(context.Background())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envRep
}

func TestFromReport(t *testing.T) {
	rep := sessionReport(t)
	w := FromReport(rep)
	if w.Manufacturer != "SAMSUNG" || w.Version != "4.3" || w.Model != "Galaxy SIV" {
		t.Errorf("profile = %+v", w)
	}
	if w.StoreSize != 146 || len(w.StoreHashes) != 146 {
		t.Errorf("store size = %d / %d hashes, want 146", w.StoreSize, len(w.StoreHashes))
	}
	if len(w.Probes) != len(rep.Probes) {
		t.Fatalf("probes = %d, want %d", len(w.Probes), len(rep.Probes))
	}
	for _, p := range w.Probes {
		if p.Err == "" && (len(p.ChainSubjects) == 0 || len(p.TopHash) != 8) {
			t.Errorf("probe %s:%d poorly serialized: %+v", p.Host, p.Port, p)
		}
	}
}

func TestSubmitAndSummary(t *testing.T) {
	rep := sessionReport(t)
	srv, err := NewServer("127.0.0.1:0", WithKeepReports())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3; i++ {
		if err := c.Submit(context.Background(), rep); err != nil {
			t.Fatal(err)
		}
	}
	rooted := FromReport(rep)
	rooted.Rooted = true
	rooted.Manufacturer = "HTC"
	if err := c.SubmitWire(context.Background(), rooted); err != nil {
		t.Fatal(err)
	}

	sum, err := c.Summary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sessions != 4 || sum.RootedSessions != 1 {
		t.Errorf("sessions = %d rooted = %d", sum.Sessions, sum.RootedSessions)
	}
	if sum.ByManufacturer["SAMSUNG"] != 3 || sum.ByManufacturer["HTC"] != 1 {
		t.Errorf("by manufacturer = %v", sum.ByManufacturer)
	}
	if sum.ByVersion["4.3"] != 4 {
		t.Errorf("by version = %v", sum.ByVersion)
	}
	if sum.StoreSizeMin != 146 || sum.StoreSizeMax != 146 || sum.MeanStoreSize() != 146 {
		t.Errorf("store sizes = %d/%d mean %.1f", sum.StoreSizeMin, sum.StoreSizeMax, sum.MeanStoreSize())
	}
	if sum.UntrustedProbes != 0 {
		t.Errorf("untrusted probes = %d on a clean network", sum.UntrustedProbes)
	}
	if got := len(srv.Reports()); got != 4 {
		t.Errorf("retained reports = %d", got)
	}
}

func TestUntrustedProbeCounting(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := WireReport{
		Manufacturer: "ASUS", Version: "4.4", StoreSize: 150,
		Probes: []WireProbe{
			{Host: "gmail.com", Port: 443, DeviceValidated: false},
			{Host: "www.google.com", Port: 443, DeviceValidated: true},
			{Host: "down.example", Port: 443, DeviceValidated: false, Err: "dial failed"},
		},
	}
	if err := c.SubmitWire(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Summary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.UntrustedProbes != 1 {
		t.Errorf("untrusted probes = %d, want 1 (errors are not untrusted)", sum.UntrustedProbes)
	}
	if len(srv.Reports()) != 0 {
		t.Error("keepReports=false should retain nothing")
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	rep := sessionReport(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewClient(context.Background(), srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				if err := c.Submit(context.Background(), rep); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if sum := srv.Summary(); sum.Sessions != 60 {
		t.Errorf("sessions = %d, want 60", sum.Sessions)
	}
}

func TestCollectErrors(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.roundTrip(context.Background(), request{Op: "nope"}); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("unknown op err = %v", err)
	}
	if _, err := c.roundTrip(context.Background(), request{Op: "submit"}); err == nil {
		t.Error("submit without report should error")
	}
	// Raw garbage line.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("garbage\n"))
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	if !strings.Contains(string(buf[:n]), "bad request") {
		t.Errorf("garbage response = %q", buf[:n])
	}
}

func TestSubmitAfterCloseCleanError(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := WireReport{Manufacturer: "HTC", Version: "4.0", StoreSize: 140}
	if err := c.SubmitWire(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	// Close returns even though c's connection is still open: the server
	// expires its pending read instead of waiting out the idle deadline.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// A submission racing the shutdown gets a clean protocol error and is
	// not absorbed into the frozen aggregate.
	resp := srv.dispatch(request{Op: "submit", Report: &w})
	if resp.OK || !strings.Contains(resp.Error, "collector closed") {
		t.Errorf("post-close dispatch = %+v, want collector closed error", resp)
	}
	if err := c.SubmitWire(context.Background(), w); err == nil {
		t.Error("submit to a closed collector should fail")
	}
	if sum := srv.Summary(); sum.Sessions != 1 {
		t.Errorf("sessions = %d, want aggregate frozen at 1", sum.Sessions)
	}
	snap := srv.Snapshot()
	if snap.Counters[KeySubmitRejected] == 0 {
		t.Error("post-close submits should be counted as rejected")
	}
}

func TestDuplicateSubmitsNotDoubleCounted(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", WithKeepReports())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	w := WireReport{Manufacturer: "HTC", Version: "4.0", StoreSize: 140}
	// The same idempotency ID re-sent — the retry-after-lost-response shape —
	// must be acknowledged without counting twice.
	for i := 0; i < 2; i++ {
		resp := srv.dispatch(request{Op: "submit", ID: "retry-0", Report: &w})
		if !resp.OK {
			t.Fatalf("send %d: %+v", i, resp)
		}
	}
	if sum := srv.Summary(); sum.Sessions != 1 {
		t.Errorf("sessions = %d, want 1 (duplicate ID deduplicated)", sum.Sessions)
	}
	if got := len(srv.Reports()); got != 1 {
		t.Errorf("retained reports = %d, want 1", got)
	}
	snap := srv.Snapshot()
	if got := snap.Counters[KeySubmitTotal]; got != 1 {
		t.Errorf("%s = %d, want 1", KeySubmitTotal, got)
	}
	if got := snap.Counters[KeySubmitDedupe]; got != 1 {
		t.Errorf("%s = %d, want 1", KeySubmitDedupe, got)
	}
}

func TestProbeFaultAggregation(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := NewClient(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := WireReport{
		Manufacturer: "ASUS", Version: "4.4", StoreSize: 150,
		Probes: []WireProbe{
			{Host: "a.example", Port: 443, DeviceValidated: true},
			{Host: "b.example", Port: 443, Err: "dial refused", ErrKind: "refused"},
			{Host: "c.example", Port: 443, Err: "read reset", ErrKind: "reset"},
			{Host: "d.example", Port: 443, Err: "reset again", ErrKind: "reset"},
			{Host: "e.example", Port: 443, Err: "mystery"},
		},
	}
	if err := c.SubmitWire(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Summary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"refused": 1, "reset": 2, "error": 1}
	for kind, n := range want {
		if sum.ProbeFaults[kind] != n {
			t.Errorf("ProbeFaults[%q] = %d, want %d", kind, sum.ProbeFaults[kind], n)
		}
	}
	if len(sum.ProbeFaults) != len(want) {
		t.Errorf("ProbeFaults = %v, want %v", sum.ProbeFaults, want)
	}
}

func TestSummaryCloneIsolated(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sum := srv.Summary()
	sum.ByManufacturer["EVIL"] = 99
	if srv.Summary().ByManufacturer["EVIL"] != 0 {
		t.Error("mutating a returned summary affected the server")
	}
}
