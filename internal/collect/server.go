package collect

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tangledmass/internal/netalyzr"
	"tangledmass/internal/resilient"
)

// wire messages: {"op":"submit","report":{...}} and {"op":"summary"};
// responses: {"ok":true,...} with the summary inlined for "summary".
type request struct {
	Op string `json:"op"`
	// ID is a client-unique idempotency token: a submit re-sent after a
	// lost response keeps its ID and is acknowledged without counting twice.
	ID     string      `json:"id,omitempty"`
	Report *WireReport `json:"report,omitempty"`
}

type response struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
}

// seenCap bounds the idempotency-ID window; retries follow failures within
// seconds, so a few thousand recent IDs is plenty.
const seenCap = 4096

// Server is the collection endpoint. Construct with Serve.
type Server struct {
	ln net.Listener

	mu        sync.Mutex
	sum       Summary
	closed    bool
	reports   []WireReport
	wg        sync.WaitGroup
	keepAll   bool
	conns     map[net.Conn]bool
	seen      map[string]bool
	seenOrder []string
}

// Serve starts a collector on addr. If keepReports is true the server
// retains every submission (for test assertions and offline re-analysis);
// otherwise it keeps only the aggregate.
func Serve(addr string, keepReports bool) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listening on %s: %w", addr, err)
	}
	s := &Server{
		ln:      ln,
		sum:     newSummary(),
		keepAll: keepReports,
		conns:   make(map[net.Conn]bool),
		seen:    make(map[string]bool),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the collector and freezes the aggregate. Requests already in
// flight get a clean "collector closed" protocol error instead of racing
// the shutdown; idle connections are unblocked so Close does not wait out
// their read deadlines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		// Expire pending reads now; handlers drain and exit.
		_ = conn.SetReadDeadline(time.Unix(1, 0))
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Summary returns a copy of the live aggregate.
func (s *Server) Summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum.clone()
}

// Reports returns retained submissions (empty unless keepReports).
func (s *Server) Reports() []WireReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WireReport, len(s.reports))
	copy(out, s.reports)
	return out
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// armRead sets the idle deadline for the next request, or reports false if
// the server has closed — the deadline and the closed flag share the mutex
// so Close cannot re-arm a connection it just expired.
func (s *Server) armRead(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	return conn.SetReadDeadline(time.Now().Add(2*time.Minute)) == nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64<<10), 8<<20)
	enc := json.NewEncoder(conn)
	for {
		if !s.armRead(conn) {
			return
		}
		if !scanner.Scan() {
			return
		}
		var req request
		var resp response
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			resp = response{Error: "bad request: " + err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		if err := conn.SetWriteDeadline(time.Now().Add(time.Minute)); err != nil {
			return
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// duplicateLocked records id and reports whether it was already seen.
// Requests without an ID are never deduplicated. Callers hold s.mu.
func (s *Server) duplicateLocked(id string) bool {
	if id == "" {
		return false
	}
	if s.seen[id] {
		return true
	}
	s.seen[id] = true
	s.seenOrder = append(s.seenOrder, id)
	if len(s.seenOrder) > seenCap {
		delete(s.seen, s.seenOrder[0])
		s.seenOrder = s.seenOrder[1:]
	}
	return false
}

func (s *Server) dispatch(req request) response {
	switch req.Op {
	case "submit":
		if req.Report == nil {
			return response{Error: "submit: missing report"}
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			// The aggregate froze at Close; refuse cleanly rather than
			// absorbing a submission the summary reader will never see.
			return response{Error: "collector closed"}
		}
		// Acknowledge a re-sent submission whose response was lost without
		// double-counting it.
		if s.duplicateLocked(req.ID) {
			return response{OK: true}
		}
		s.sum.absorb(*req.Report)
		if s.keepAll {
			s.reports = append(s.reports, *req.Report)
		}
		return response{OK: true}
	case "summary":
		sum := s.Summary()
		return response{OK: true, Summary: &sum}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client submits session reports. Sequential use only. Transient transport
// failures retry on a fresh connection: after any mid-exchange failure the
// transport is marked broken and never reused (a half-read response would
// desync the framing), and submits carry idempotency IDs the server
// deduplicates, so a retry after a lost response does not double-count.
type Client struct {
	addr    string
	timeout time.Duration
	dial    func(addr string) (net.Conn, error)
	retry   *resilient.Retrier

	nonce string
	seq   uint64

	conn    net.Conn
	scanner *bufio.Scanner
	enc     *json.Encoder
	broken  bool
}

// Options tunes client resilience. The zero value gives the defaults noted
// per field.
type Options struct {
	// Timeout bounds one round trip. Zero means one minute.
	Timeout time.Duration
	// Retry overrides the retry policy. Nil means 4 attempts with short
	// jittered backoff.
	Retry *resilient.Retrier
	// Dial overrides the transport dialer — the fault-injection harness
	// hooks in here. Nil means TCP with a 10s connect timeout.
	Dial func(addr string) (net.Conn, error)
}

// Dial connects to a collector with default resilience.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to a collector under explicit resilience options.
// The initial connect already runs under the retry policy.
func DialOptions(addr string, opts Options) (*Client, error) {
	c := &Client{
		addr:    addr,
		timeout: opts.Timeout,
		dial:    opts.Dial,
		retry:   opts.Retry,
		nonce:   newNonce(),
	}
	if c.timeout <= 0 {
		c.timeout = time.Minute
	}
	if c.dial == nil {
		c.dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		}
	}
	if c.retry == nil {
		c.retry = resilient.NewRetrier(resilient.Policy{
			MaxAttempts: 4,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}, 0)
	}
	if err := c.retry.Do(func(int) error { return c.connect() }); err != nil {
		return nil, err
	}
	return c, nil
}

// newNonce labels this client's idempotency IDs. Uniqueness, not
// unpredictability, is what matters; an entropy-pool failure is not
// recoverable.
func newNonce() string {
	b := make([]byte, 6)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("collect: reading nonce entropy: %v", err))
	}
	return hex.EncodeToString(b)
}

// connect establishes a fresh transport, replacing any broken one.
func (c *Client) connect() error {
	conn, err := c.dial(c.addr)
	if err != nil {
		return fmt.Errorf("collect: dialing %s: %w", c.addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	c.conn, c.scanner, c.enc, c.broken = conn, sc, json.NewEncoder(conn), false
	return nil
}

// markBroken poisons the transport after a mid-exchange failure so the
// next attempt starts on a fresh connection.
func (c *Client) markBroken() {
	c.broken = true
	if c.conn != nil {
		_ = c.conn.Close()
	}
}

// Close releases the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// roundTrip sends one request and reads one response, reconnecting and
// retrying transient failures.
func (c *Client) roundTrip(req request) (response, error) {
	req.ID = fmt.Sprintf("%s-%d", c.nonce, c.seq)
	c.seq++
	var resp response
	err := c.retry.Do(func(int) error {
		r, err := c.attempt(req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}

// attempt runs one exchange on the current transport.
func (c *Client) attempt(req request) (response, error) {
	if c.broken || c.conn == nil {
		if err := c.connect(); err != nil {
			return response{}, err
		}
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		c.markBroken()
		return response{}, fmt.Errorf("collect: setting deadline: %w", err)
	}
	if err := c.enc.Encode(req); err != nil {
		c.markBroken()
		return response{}, fmt.Errorf("collect: sending %s: %w", req.Op, err)
	}
	if !c.scanner.Scan() {
		err := c.scanner.Err()
		c.markBroken()
		if err != nil {
			return response{}, fmt.Errorf("collect: reading response: %w", err)
		}
		return response{}, resilient.MarkTransient(errors.New("collect: connection closed"))
	}
	var resp response
	if err := json.Unmarshal(c.scanner.Bytes(), &resp); err != nil {
		// Corrupted or truncated line: the framing is no longer trustworthy.
		c.markBroken()
		return response{}, resilient.MarkTransient(fmt.Errorf("collect: decoding response: %w", err))
	}
	if !resp.OK {
		// Protocol-level rejection over a healthy transport: not retryable.
		return resp, resilient.MarkPermanent(fmt.Errorf("collect: server error: %s", resp.Error))
	}
	return resp, nil
}

// Submit sends one session report.
func (c *Client) Submit(r *netalyzr.Report) error {
	w := FromReport(r)
	_, err := c.roundTrip(request{Op: "submit", Report: &w})
	return err
}

// SubmitWire sends a pre-converted report.
func (c *Client) SubmitWire(w WireReport) error {
	_, err := c.roundTrip(request{Op: "submit", Report: &w})
	return err
}

// Summary fetches the collector's aggregate.
func (c *Client) Summary() (Summary, error) {
	resp, err := c.roundTrip(request{Op: "summary"})
	if err != nil {
		return Summary{}, err
	}
	if resp.Summary == nil {
		return Summary{}, fmt.Errorf("collect: summary missing from response")
	}
	return *resp.Summary, nil
}
