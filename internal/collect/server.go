package collect

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"tangledmass/internal/obs"
)

// wire messages: {"op":"submit","report":{...}} and {"op":"summary"};
// responses: {"ok":true,...} with the summary inlined for "summary".
type request struct {
	Op string `json:"op"`
	// ID is a client-unique idempotency token: a submit re-sent after a
	// lost response keeps its ID and is acknowledged without counting twice.
	ID     string      `json:"id,omitempty"`
	Report *WireReport `json:"report,omitempty"`
}

type response struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
}

// seenCap bounds the idempotency-ID window; retries follow failures within
// seconds, so a few thousand recent IDs is plenty.
const seenCap = 4096

// Server is the collection endpoint. Construct with NewServer.
type Server struct {
	ln  net.Listener
	obs *obs.Observer

	mu        sync.Mutex
	sum       Summary
	closed    bool
	reports   []WireReport
	wg        sync.WaitGroup
	keepAll   bool
	conns     map[net.Conn]bool
	seen      map[string]bool
	seenOrder []string
}

// NewServer starts a collector on addr ("127.0.0.1:0" for an ephemeral
// port). Options: WithKeepReports retains every submission; WithObserver
// shares an observer (the default is a private one, so Snapshot and the
// debug handler always have something to serve).
func NewServer(addr string, opts ...Option) (*Server, error) {
	op := buildOptions(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listening on %s: %w", addr, err)
	}
	observer := op.observer
	if observer == nil {
		observer = obs.New()
	}
	s := &Server{
		ln:      ln,
		obs:     observer,
		sum:     newSummary(),
		keepAll: op.keepReports,
		conns:   make(map[net.Conn]bool),
		seen:    make(map[string]bool),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Observer returns the server's observer — the daemons mount obs.Handler
// on it.
func (s *Server) Observer() *obs.Observer { return s.obs }

// Snapshot captures the server's current metrics: submit/dedupe/rejection
// counters and the active-connection gauge. Tests assert against this
// instead of reaching into server internals.
func (s *Server) Snapshot() obs.Snapshot { return s.obs.Snapshot() }

// Close stops the collector and freezes the aggregate. Requests already in
// flight get a clean "collector closed" protocol error instead of racing
// the shutdown; idle connections are unblocked so Close does not wait out
// their read deadlines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		// Expire pending reads now; handlers drain and exit.
		_ = conn.SetReadDeadline(time.Unix(1, 0))
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Summary returns a copy of the live aggregate.
func (s *Server) Summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum.clone()
}

// Reports returns retained submissions (empty unless WithKeepReports).
func (s *Server) Reports() []WireReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WireReport, len(s.reports))
	copy(out, s.reports)
	return out
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// armRead sets the idle deadline for the next request, or reports false if
// the server has closed — the deadline and the closed flag share the mutex
// so Close cannot re-arm a connection it just expired.
func (s *Server) armRead(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	return conn.SetReadDeadline(time.Now().Add(2*time.Minute)) == nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = true
	s.mu.Unlock()
	s.obs.Gauge(KeyConnsActive).Inc()
	defer func() {
		s.obs.Gauge(KeyConnsActive).Dec()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64<<10), 8<<20)
	enc := json.NewEncoder(conn)
	for {
		if !s.armRead(conn) {
			return
		}
		if !scanner.Scan() {
			return
		}
		var req request
		var resp response
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			s.obs.Counter(KeyBadRequest).Inc()
			resp = response{Error: "bad request: " + err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		if err := conn.SetWriteDeadline(time.Now().Add(time.Minute)); err != nil {
			return
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// duplicateLocked records id and reports whether it was already seen.
// Requests without an ID are never deduplicated. Callers hold s.mu.
func (s *Server) duplicateLocked(id string) bool {
	if id == "" {
		return false
	}
	if s.seen[id] {
		return true
	}
	s.seen[id] = true
	s.seenOrder = append(s.seenOrder, id)
	if len(s.seenOrder) > seenCap {
		delete(s.seen, s.seenOrder[0])
		s.seenOrder = s.seenOrder[1:]
	}
	return false
}

func (s *Server) dispatch(req request) response {
	switch req.Op {
	case "submit":
		if req.Report == nil {
			s.obs.Counter(KeyBadRequest).Inc()
			return response{Error: "submit: missing report"}
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			// The aggregate froze at Close; refuse cleanly rather than
			// absorbing a submission the summary reader will never see.
			s.obs.Counter(KeySubmitRejected).Inc()
			return response{Error: "collector closed"}
		}
		// Acknowledge a re-sent submission whose response was lost without
		// double-counting it.
		if s.duplicateLocked(req.ID) {
			s.obs.Counter(KeySubmitDedupe).Inc()
			return response{OK: true}
		}
		s.obs.Counter(KeySubmitTotal).Inc()
		s.sum.absorb(*req.Report)
		if s.keepAll {
			s.reports = append(s.reports, *req.Report)
		}
		return response{OK: true}
	case "summary":
		s.obs.Counter(KeySummaryTotal).Inc()
		sum := s.Summary()
		return response{OK: true, Summary: &sum}
	default:
		s.obs.Counter(KeyBadRequest).Inc()
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
