package collect

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"tangledmass/internal/netalyzr"
)

// wire messages: {"op":"submit","report":{...}} and {"op":"summary"};
// responses: {"ok":true,...} with the summary inlined for "summary".
type request struct {
	Op     string      `json:"op"`
	Report *WireReport `json:"report,omitempty"`
}

type response struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
}

// Server is the collection endpoint. Construct with Serve.
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	sum     Summary
	closed  bool
	reports []WireReport
	wg      sync.WaitGroup
	keepAll bool
}

// Serve starts a collector on addr. If keepReports is true the server
// retains every submission (for test assertions and offline re-analysis);
// otherwise it keeps only the aggregate.
func Serve(addr string, keepReports bool) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listening on %s: %w", addr, err)
	}
	s := &Server{ln: ln, sum: newSummary(), keepAll: keepReports}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the collector.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Summary returns a copy of the live aggregate.
func (s *Server) Summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum.clone()
}

// Reports returns retained submissions (empty unless keepReports).
func (s *Server) Reports() []WireReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WireReport, len(s.reports))
	copy(out, s.reports)
	return out
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64<<10), 8<<20)
	enc := json.NewEncoder(conn)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Minute)); err != nil {
			return
		}
		if !scanner.Scan() {
			return
		}
		var req request
		var resp response
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			resp = response{Error: "bad request: " + err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		if err := conn.SetWriteDeadline(time.Now().Add(time.Minute)); err != nil {
			return
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req request) response {
	switch req.Op {
	case "submit":
		if req.Report == nil {
			return response{Error: "submit: missing report"}
		}
		s.mu.Lock()
		s.sum.absorb(*req.Report)
		if s.keepAll {
			s.reports = append(s.reports, *req.Report)
		}
		s.mu.Unlock()
		return response{OK: true}
	case "summary":
		sum := s.Summary()
		return response{OK: true, Summary: &sum}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client submits session reports. Sequential use only.
type Client struct {
	conn    net.Conn
	scanner *bufio.Scanner
	enc     *json.Encoder
}

// Dial connects to a collector.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("collect: dialing %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	return &Client{conn: conn, scanner: sc, enc: json.NewEncoder(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req request) (response, error) {
	if err := c.conn.SetDeadline(time.Now().Add(time.Minute)); err != nil {
		return response{}, fmt.Errorf("collect: setting deadline: %w", err)
	}
	if err := c.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("collect: sending: %w", err)
	}
	if !c.scanner.Scan() {
		return response{}, fmt.Errorf("collect: connection closed")
	}
	var resp response
	if err := json.Unmarshal(c.scanner.Bytes(), &resp); err != nil {
		return response{}, fmt.Errorf("collect: decoding: %w", err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("collect: server error: %s", resp.Error)
	}
	return resp, nil
}

// Submit sends one session report.
func (c *Client) Submit(r *netalyzr.Report) error {
	w := FromReport(r)
	_, err := c.roundTrip(request{Op: "submit", Report: &w})
	return err
}

// SubmitWire sends a pre-converted report.
func (c *Client) SubmitWire(w WireReport) error {
	_, err := c.roundTrip(request{Op: "submit", Report: &w})
	return err
}

// Summary fetches the collector's aggregate.
func (c *Client) Summary() (Summary, error) {
	resp, err := c.roundTrip(request{Op: "summary"})
	if err != nil {
		return Summary{}, err
	}
	if resp.Summary == nil {
		return Summary{}, fmt.Errorf("collect: summary missing from response")
	}
	return *resp.Summary, nil
}
