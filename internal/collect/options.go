package collect

import (
	"context"
	"net"
	"time"

	"tangledmass/internal/obs"
	"tangledmass/internal/resilient"
)

// options collects the knobs shared by NewServer and NewClient. One Option
// vocabulary serves both constructors — server-only options are no-ops on
// the client and vice versa — which keeps the package's API surface to a
// single uniform New(addr, ...Option) shape.
type options struct {
	observer    *obs.Observer
	timeout     time.Duration
	retry       *resilient.Retrier
	dial        func(ctx context.Context, addr string) (net.Conn, error)
	keepReports bool
}

// Option configures a collector server or client.
type Option func(*options)

// WithObserver attaches the observer counters and gauges report through.
// Without it the server creates a private observer (so Snapshot and the
// debug handler always work) and the client stays silent.
func WithObserver(o *obs.Observer) Option {
	return func(op *options) { op.observer = o }
}

// WithTimeout bounds one client round trip. Zero (the default) means one
// minute. Server-side it is ignored.
func WithTimeout(d time.Duration) Option {
	return func(op *options) { op.timeout = d }
}

// WithRetryPolicy overrides the client's retry policy. Nil (the default)
// means 4 attempts with short jittered backoff.
func WithRetryPolicy(r *resilient.Retrier) Option {
	return func(op *options) { op.retry = r }
}

// WithDialFunc overrides the client's transport dialer — the
// fault-injection harness hooks in here. Nil (the default) means TCP with
// a 10s connect timeout.
func WithDialFunc(dial func(ctx context.Context, addr string) (net.Conn, error)) Option {
	return func(op *options) { op.dial = dial }
}

// WithKeepReports makes the server retain every submission (for test
// assertions and offline re-analysis) instead of only the aggregate.
func WithKeepReports() Option {
	return func(op *options) { op.keepReports = true }
}

func buildOptions(opts []Option) options {
	var op options
	for _, o := range opts {
		o(&op)
	}
	return op
}
