// Package collect is the measurement back end: the service Netalyzr
// sessions report to (§4.1 describes 15,970 such submissions). Clients
// serialize a session report to a compact wire form and submit it over TCP
// (newline-delimited JSON); the collector aggregates live tallies — session
// counts per manufacturer and version, extended-store and untrusted-probe
// counters, store-size distribution — and answers summary queries.
package collect

import (
	"tangledmass/internal/certid"
	"tangledmass/internal/netalyzr"
)

// WireProbe is one probe result in wire form.
type WireProbe struct {
	Host string `json:"host"`
	Port int    `json:"port"`
	// ChainSubjects are the presented chain's subjects, leaf first.
	ChainSubjects []string `json:"chain_subjects,omitempty"`
	// TopHash is the Android subject hash of the topmost presented cert.
	TopHash         string `json:"top_hash,omitempty"`
	DeviceValidated bool   `json:"device_validated"`
	Err             string `json:"err,omitempty"`
	// ErrKind is the stable resilient.Kind label for Err ("refused",
	// "reset", "timeout", …) — what the collector's fault aggregate counts
	// by, since Err itself carries unstable detail like addresses.
	ErrKind string `json:"err_kind,omitempty"`
}

// WireReport is one session in wire form. Store contents travel as subject
// hashes — enough for the §5 analyses while keeping submissions small, and
// matching the paper's privacy posture of not collecting device identifiers.
type WireReport struct {
	Model        string `json:"model"`
	Manufacturer string `json:"manufacturer"`
	Operator     string `json:"operator"`
	Country      string `json:"country"`
	Version      string `json:"version"`
	Rooted       bool   `json:"rooted"`
	// StoreSize is the effective store's certificate count; StoreHashes its
	// members' subject hashes.
	StoreSize   int         `json:"store_size"`
	StoreHashes []string    `json:"store_hashes"`
	Probes      []WireProbe `json:"probes"`
}

// FromReport converts a client-side session report to wire form.
func FromReport(r *netalyzr.Report) WireReport {
	w := WireReport{
		Model:        r.Profile.Model,
		Manufacturer: r.Profile.Manufacturer,
		Operator:     r.Profile.Operator,
		Country:      r.Profile.Country,
		Version:      r.Profile.Version,
		Rooted:       r.Rooted,
		StoreSize:    r.Store.Len(),
	}
	for _, c := range r.Store.Certificates() {
		w.StoreHashes = append(w.StoreHashes, certid.SubjectHashString(c))
	}
	for _, p := range r.Probes {
		wp := WireProbe{
			Host:            p.Target.Host,
			Port:            p.Target.Port,
			DeviceValidated: p.DeviceValidated,
		}
		if p.Err != nil {
			wp.Err = p.Err.Error()
			wp.ErrKind = p.ErrKind
		}
		for _, c := range p.Chain {
			wp.ChainSubjects = append(wp.ChainSubjects, certid.SubjectString(c))
		}
		if len(p.Chain) > 0 {
			wp.TopHash = certid.SubjectHashString(p.Chain[len(p.Chain)-1])
		}
		w.Probes = append(w.Probes, wp)
	}
	return w
}

// Summary is the collector's live aggregate.
type Summary struct {
	Sessions        int64            `json:"sessions"`
	RootedSessions  int64            `json:"rooted_sessions"`
	UntrustedProbes int64            `json:"untrusted_probes"`
	ByManufacturer  map[string]int64 `json:"by_manufacturer"`
	ByVersion       map[string]int64 `json:"by_version"`
	// ProbeFaults counts failed probes across all sessions by their typed
	// ErrKind — the collector-side view of how lossy the measured networks
	// were. Probes with an error but no kind count under "error".
	ProbeFaults map[string]int64 `json:"probe_faults,omitempty"`
	// StoreSizeMin/Max/Sum summarize the store-size distribution.
	StoreSizeMin int   `json:"store_size_min"`
	StoreSizeMax int   `json:"store_size_max"`
	StoreSizeSum int64 `json:"store_size_sum"`
}

// MeanStoreSize is the average effective-store size across sessions.
func (s Summary) MeanStoreSize() float64 {
	if s.Sessions == 0 {
		return 0
	}
	return float64(s.StoreSizeSum) / float64(s.Sessions)
}

// newSummary returns a zeroed aggregate with allocated maps.
func newSummary() Summary {
	return Summary{
		ByManufacturer: make(map[string]int64),
		ByVersion:      make(map[string]int64),
		ProbeFaults:    make(map[string]int64),
		StoreSizeMin:   -1,
	}
}

// absorb folds one report into the aggregate.
func (s *Summary) absorb(w WireReport) {
	s.Sessions++
	if w.Rooted {
		s.RootedSessions++
	}
	s.ByManufacturer[w.Manufacturer]++
	s.ByVersion[w.Version]++
	for _, p := range w.Probes {
		if p.Err == "" && !p.DeviceValidated {
			s.UntrustedProbes++
		}
		if p.Err != "" {
			kind := p.ErrKind
			if kind == "" {
				kind = "error"
			}
			s.ProbeFaults[kind]++
		}
	}
	if s.StoreSizeMin < 0 || w.StoreSize < s.StoreSizeMin {
		s.StoreSizeMin = w.StoreSize
	}
	if w.StoreSize > s.StoreSizeMax {
		s.StoreSizeMax = w.StoreSize
	}
	s.StoreSizeSum += int64(w.StoreSize)
}

// clone deep-copies the aggregate for safe hand-out.
func (s Summary) clone() Summary {
	out := s
	out.ByManufacturer = make(map[string]int64, len(s.ByManufacturer))
	for k, v := range s.ByManufacturer {
		out.ByManufacturer[k] = v
	}
	out.ByVersion = make(map[string]int64, len(s.ByVersion))
	for k, v := range s.ByVersion {
		out.ByVersion[k] = v
	}
	out.ProbeFaults = make(map[string]int64, len(s.ProbeFaults))
	for k, v := range s.ProbeFaults {
		out.ProbeFaults[k] = v
	}
	return out
}
