// Package resilient is the retry/backoff/circuit-breaker layer every
// network path of the reproduction threads through. The paper's 15,970
// Netalyzr sessions came from handsets on lossy mobile networks, where
// refused connects, mid-stream resets and stalled handshakes are the normal
// case; this package gives the clients one shared vocabulary for surviving
// them: error classification (transient vs permanent), capped exponential
// backoff with seeded jitter, per-retry time budgets, and a small
// consecutive-failure circuit breaker.
//
// Determinism: jitter randomness comes from a seeded stats.Source and all
// clock access flows through the injected Clock (see clock.go), so a retry
// schedule is a pure function of (seed, failure sequence). Jitter affects
// timing only, never outcomes, which is what lets the chaos harness assert
// bit-identical aggregates across runs.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"tangledmass/internal/obs"
	"tangledmass/internal/stats"
)

// Class partitions errors by retryability.
type Class int

const (
	// Permanent errors will not heal with time: protocol violations, server
	// rejections, bad input. Retrying them wastes the budget.
	Permanent Class = iota
	// Transient errors are expected under degraded networks and safe to
	// retry: timeouts, resets, refused connects, truncated streams.
	Transient
)

// classified forces a class onto a wrapped error.
type classified struct {
	err   error
	class Class
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// MarkTransient wraps err so Classify reports it transient regardless of
// its underlying type — for conditions like a cleanly closed connection,
// where the error value alone cannot carry the retryability.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Transient}
}

// MarkPermanent wraps err so Classify reports it permanent — for protocol
// rejections that arrive over a perfectly healthy transport.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Permanent}
}

// Classify reports whether err is worth retrying. Explicit marks win; then
// timeouts, deadline expiries, connection resets/refusals/aborts, broken
// pipes and truncated streams are transient; everything else — including an
// open circuit breaker — is permanent.
func Classify(err error) Class {
	if err == nil {
		return Permanent
	}
	var cl *classified
	if errors.As(err, &cl) {
		return cl.class
	}
	if errors.Is(err, ErrOpen) {
		return Permanent
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return Transient
	}
	switch {
	case errors.Is(err, os.ErrDeadlineExceeded),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE):
		return Transient
	}
	return Permanent
}

// Kind returns a short stable label for err — the typed vocabulary the
// per-session fault ledgers and collector aggregates count by. The labels
// deliberately avoid raw error text, which can embed ephemeral addresses.
func Kind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrOpen):
		return "breaker"
	case errors.Is(err, syscall.ECONNREFUSED):
		return "refused"
	case errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE):
		return "reset"
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return "eof"
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return "timeout"
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "timeout"
	}
	if Classify(err) == Transient {
		return "transient"
	}
	return "error"
}

// Policy bounds a retry loop. The zero value means the defaults noted on
// each field.
type Policy struct {
	// MaxAttempts caps the number of tries, first attempt included.
	// Values < 1 mean 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt. Zero means 20ms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep. Zero means 2s.
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt. Values <= 1 mean 2.
	Multiplier float64
	// Jitter adds a uniformly drawn fraction of each delay, in [0,1].
	// Zero means 0.2; negative means no jitter.
	Jitter float64
	// Budget caps total elapsed time across attempts and sleeps. Zero
	// means no total budget.
	Budget time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 20 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Retrier executes operations under a Policy. It is safe for concurrent
// use; jitter draws are serialized on an internal mutex.
type Retrier struct {
	policy Policy
	clock  Clock
	obs    *obs.Observer

	mu  sync.Mutex
	src *stats.Source
}

// NewRetrier builds a retrier on the system clock. The seed drives jitter
// only — it shapes timing, never outcomes.
func NewRetrier(p Policy, seed int64) *Retrier {
	return &Retrier{policy: p.withDefaults(), clock: SystemClock(), src: stats.NewSource(seed)}
}

// WithClock substitutes the clock (tests, chaos harnesses) and returns the
// retrier for chaining.
func (r *Retrier) WithClock(c Clock) *Retrier {
	r.clock = c
	return r
}

// WithObserver attaches an observer the retrier reports attempt, retry and
// failure counters through (see keys.go), returning the retrier for
// chaining. Attach before the retrier is shared across goroutines. A nil
// observer leaves the retrier silent.
func (r *Retrier) WithObserver(o *obs.Observer) *Retrier {
	r.obs = o
	return r
}

// Do runs op until it succeeds, returns a permanent error, the policy is
// exhausted, or ctx is done. op receives the 1-based attempt number. The
// retry time budget derives from the tighter of the policy's Budget and
// ctx's deadline, so a caller-scoped context bounds the whole loop — this
// is the one place deadlines and retries meet. The returned error is the
// last attempt's, wrapped with the attempt count when retries ran out.
func (r *Retrier) Do(ctx context.Context, op func(attempt int) error) error {
	start := r.clock.Now()
	budget := r.policy.Budget
	if dl, ok := ctx.Deadline(); ok {
		// The deadline is wall-clock by construction; measuring the
		// remainder against the injected clock keeps fake-clock tests
		// coherent as long as they also own the context's lifetime.
		if rem := dl.Sub(start); budget <= 0 || rem < budget {
			budget = rem
		}
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("resilient: canceled before attempt %d: %w", attempt, err)
		}
		r.obs.Counter(KeyAttempts).Inc()
		err := op(attempt)
		if err == nil {
			return nil
		}
		if Classify(err) == Permanent {
			r.obs.Counter(KeyFailurePermanent).Inc()
			return err
		}
		r.obs.Counter(KeyFailureTransient).Inc()
		if attempt >= r.policy.MaxAttempts {
			r.obs.Counter(KeyExhausted).Inc()
			return fmt.Errorf("resilient: %d attempts exhausted: %w", attempt, err)
		}
		d := r.delay(attempt)
		if budget > 0 && r.clock.Now().Sub(start)+d > budget {
			r.obs.Counter(KeyBudgetExhausted).Inc()
			return fmt.Errorf("resilient: retry budget %s exhausted after %d attempts: %w", budget, attempt, err)
		}
		r.obs.Counter(KeyRetries).Inc()
		r.clock.Sleep(d)
	}
}

// delay computes the backoff before attempt+1: capped exponential growth
// plus a seeded jitter fraction.
func (r *Retrier) delay(attempt int) time.Duration {
	d := float64(r.policy.BaseDelay) * math.Pow(r.policy.Multiplier, float64(attempt-1))
	if ceil := float64(r.policy.MaxDelay); d > ceil {
		d = ceil
	}
	if j := r.policy.Jitter; j > 0 {
		r.mu.Lock()
		f := r.src.Float64()
		r.mu.Unlock()
		d += d * j * f
	}
	return time.Duration(d)
}
