package resilient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"tangledmass/internal/obs"
)

// fakeClock is a manually advanced clock: Sleep moves time forward
// instantly, so retry schedules run in microseconds and deterministically.
type fakeClock struct {
	now    time.Time
	slept  []time.Duration
	asleep time.Duration
}

func (f *fakeClock) clock() Clock {
	return Clock{
		Now: func() time.Time { return f.now },
		Sleep: func(d time.Duration) {
			f.slept = append(f.slept, d)
			f.asleep += d
			f.now = f.now.Add(d)
		},
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{os.ErrDeadlineExceeded, Transient},
		{&net.OpError{Op: "read", Err: os.ErrDeadlineExceeded}, Transient},
		{io.EOF, Transient},
		{io.ErrUnexpectedEOF, Transient},
		{syscall.ECONNRESET, Transient},
		{&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, Transient},
		{syscall.EPIPE, Transient},
		{fmt.Errorf("wrapping: %w", syscall.ECONNABORTED), Transient},
		{errors.New("protocol violation"), Permanent},
		{ErrOpen, Permanent},
		{MarkTransient(errors.New("closed by server")), Transient},
		{MarkPermanent(io.EOF), Permanent},
		{fmt.Errorf("outer: %w", MarkTransient(errors.New("inner"))), Transient},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestKindLabels(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, "refused"},
		{&net.OpError{Op: "read", Err: syscall.ECONNRESET}, "reset"},
		{syscall.EPIPE, "reset"},
		{&net.OpError{Op: "read", Err: os.ErrDeadlineExceeded}, "timeout"},
		{io.EOF, "eof"},
		{io.ErrUnexpectedEOF, "eof"},
		{ErrOpen, "breaker"},
		{MarkTransient(errors.New("closed by server")), "transient"},
		{errors.New("tls: handshake failure"), "error"},
	}
	for _, c := range cases {
		if got := Kind(c.err); got != c.want {
			t.Errorf("Kind(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestRetrierSucceedsAfterTransients(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	r := NewRetrier(Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond}, 1).WithClock(fc.clock())
	calls := 0
	err := r.Do(context.Background(), func(attempt int) error {
		calls++
		if attempt != calls {
			t.Errorf("attempt = %d on call %d", attempt, calls)
		}
		if calls < 3 {
			return syscall.ECONNRESET
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if len(fc.slept) != 2 {
		t.Errorf("sleeps = %d, want 2", len(fc.slept))
	}
}

func TestRetrierStopsOnPermanent(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	r := NewRetrier(Policy{}, 1).WithClock(fc.clock())
	calls := 0
	boom := errors.New("server rejected the request")
	err := r.Do(context.Background(), func(int) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (permanent errors must not retry)", calls)
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	r := NewRetrier(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}, 1).WithClock(fc.clock())
	calls := 0
	err := r.Do(context.Background(), func(int) error { calls++; return io.EOF })
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, io.EOF) {
		t.Errorf("exhaustion error should wrap the last attempt's: %v", err)
	}
}

func TestRetrierBackoffGrowsAndCaps(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	r := NewRetrier(Policy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1, // exact schedule
	}, 1).WithClock(fc.clock())
	_ = r.Do(context.Background(), func(int) error { return io.EOF })
	want := []time.Duration{10, 20, 40, 40, 40}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(fc.slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", fc.slept, want)
	}
	for i, d := range fc.slept {
		if d != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, d, want[i])
		}
	}
}

func TestRetrierJitterIsSeededAndBounded(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		fc := &fakeClock{now: time.Unix(0, 0)}
		r := NewRetrier(Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Jitter: 0.5}, seed).WithClock(fc.clock())
		_ = r.Do(context.Background(), func(int) error { return io.EOF })
		return fc.slept
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("same seed, different jitter at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i, d := range a {
		base := 10 * time.Millisecond << uint(i)
		if d < base || d > base+base/2 {
			t.Errorf("jittered delay %v outside [%v, %v]", d, base, base+base/2)
		}
	}
	if c := schedule(8); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced an identical jitter schedule")
		}
	}
}

func TestRetrierBudget(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	r := NewRetrier(Policy{
		MaxAttempts: 100,
		BaseDelay:   30 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1,
		Budget:      100 * time.Millisecond,
	}, 1).WithClock(fc.clock())
	calls := 0
	err := r.Do(context.Background(), func(int) error { calls++; return io.EOF })
	if err == nil {
		t.Fatal("budget exhaustion should surface an error")
	}
	// 30ms + 60ms sleeps fit in 100ms; the 120ms third sleep would not.
	if calls != 3 {
		t.Errorf("calls = %d, want 3 before the budget ran out", calls)
	}
	if fc.asleep > 100*time.Millisecond {
		t.Errorf("slept %v, more than the budget", fc.asleep)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(3, time.Second).WithClock(fc.clock())
	fail := errors.New("down")

	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused attempt %d: %v", i, err)
		}
		b.Record(fail)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("after threshold failures Allow = %v, want ErrOpen", err)
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	fc.now = fc.now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second half-open attempt = %v, want ErrOpen", err)
	}

	// Probe fails: circuit re-opens for a full cooldown.
	b.Record(fail)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("failed probe should re-open the circuit")
	}

	// Next probe succeeds: circuit closes and failures reset.
	fc.now = fc.now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after second cooldown refused: %v", err)
	}
	b.Record(nil)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused: %v", err)
		}
		b.Record(fail)
	}
	if err := b.Allow(); err != nil {
		t.Error("two failures after reset should not re-open a threshold-3 breaker")
	}
}

func TestBreakerNilIsDisabled(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Errorf("nil breaker Allow = %v", err)
	}
	b.Record(errors.New("ignored")) // must not panic
	if got := NewBreaker(0, time.Second); got != nil {
		t.Errorf("NewBreaker(0, _) = %v, want nil", got)
	}
}

// TestRetrierContextCancel: a canceled context stops the loop before the
// next attempt runs.
func TestRetrierContextCancel(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	r := NewRetrier(Policy{MaxAttempts: 10, BaseDelay: time.Millisecond}, 1).WithClock(fc.clock())
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := r.Do(ctx, func(int) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return io.EOF
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (cancel must stop the loop)", calls)
	}
}

// TestRetrierContextDeadlineBudget: the retry budget derives from the
// context deadline when it is tighter than the policy's.
func TestRetrierContextDeadlineBudget(t *testing.T) {
	fc := &fakeClock{now: time.Now()}
	r := NewRetrier(Policy{
		MaxAttempts: 100,
		BaseDelay:   30 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1,
	}, 1).WithClock(fc.clock())
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	calls := 0
	err := r.Do(ctx, func(int) error { calls++; return io.EOF })
	if err == nil {
		t.Fatal("deadline-derived budget exhaustion should surface an error")
	}
	// 30ms + 60ms sleeps fit in ~100ms; the 120ms third sleep would not.
	if calls != 3 {
		t.Errorf("calls = %d, want 3 before the deadline budget ran out", calls)
	}
}

// TestRetrierObserverCounters pins the metric semantics: one attempt
// counter tick per op call, one transient-failure tick per retryable
// error, one retry tick per backoff sleep taken.
func TestRetrierObserverCounters(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	o := obs.New()
	r := NewRetrier(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}, 1).
		WithClock(fc.clock()).WithObserver(o)
	err := r.Do(context.Background(), func(attempt int) error {
		if attempt < 3 {
			return syscall.ECONNRESET
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Counter(KeyAttempts).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", KeyAttempts, got)
	}
	if got := o.Counter(KeyFailureTransient).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", KeyFailureTransient, got)
	}
	if got := o.Counter(KeyRetries).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", KeyRetries, got)
	}

	boom := errors.New("rejected")
	_ = r.Do(context.Background(), func(int) error { return boom })
	if got := o.Counter(KeyFailurePermanent).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", KeyFailurePermanent, got)
	}

	_ = r.Do(context.Background(), func(int) error { return io.EOF })
	if got := o.Counter(KeyExhausted).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", KeyExhausted, got)
	}
}

// TestBreakerObserver: trips count open transitions and the state gauge
// tracks the lifecycle.
func TestBreakerObserver(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	o := obs.New()
	b := NewBreaker(2, time.Second).WithClock(fc.clock()).WithObserver(o)
	fail := errors.New("down")
	if got := o.Gauge(KeyBreakerState).Value(); got != 0 {
		t.Errorf("initial state gauge = %d, want 0", got)
	}
	b.Record(fail)
	b.Record(fail)
	if got := o.Counter(KeyBreakerTrips).Value(); got != 1 {
		t.Errorf("trips = %d, want 1", got)
	}
	if got := o.Gauge(KeyBreakerState).Value(); got != 1 {
		t.Errorf("state gauge = %d, want 1 (open)", got)
	}
	fc.now = fc.now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if got := o.Gauge(KeyBreakerState).Value(); got != 2 {
		t.Errorf("state gauge = %d, want 2 (half-open)", got)
	}
	b.Record(nil)
	if got := o.Gauge(KeyBreakerState).Value(); got != 0 {
		t.Errorf("state gauge = %d, want 0 (closed)", got)
	}
	if got := o.Counter(KeyBreakerTrips).Value(); got != 1 {
		t.Errorf("trips after recovery = %d, want 1", got)
	}
}
