// clock.go is the package's sanctioned nondeterminism boundary, in the same
// spirit as stats/rand.go and certgen/drbg.go: every wall-clock read and
// real sleep the retry and breaker machinery performs flows through a Clock
// constructed here, so tests (and the deterministic chaos harness) can
// substitute a fake and the detrand lint rule can hold the rest of the
// package to zero direct clock access.
package resilient

import "time"

// Clock supplies the two time primitives the retry and breaker machinery
// needs. Production code uses SystemClock; tests inject a fake to make
// backoff and cooldown schedules instantaneous and fully deterministic.
type Clock struct {
	// Now reads the current instant.
	Now func() time.Time
	// Sleep blocks for the given duration.
	Sleep func(time.Duration)
}

// SystemClock returns the wall-clock implementation.
func SystemClock() Clock {
	return Clock{Now: time.Now, Sleep: time.Sleep}
}
