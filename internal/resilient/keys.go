package resilient

// Metric keys the retry and breaker machinery emits through an attached
// obs.Observer. Names are package-prefixed compile-time constants — the
// obskey lint rule enforces this across the module — so the registry in
// README.md stays greppable and stable.
const (
	// KeyAttempts counts every operation attempt a Retrier runs, first
	// tries included.
	KeyAttempts = "resilient.attempt.total"
	// KeyRetries counts attempts that were re-run after a transient
	// failure (i.e. backoff sleeps taken).
	KeyRetries = "resilient.retry.total"
	// KeyFailureTransient counts attempts that failed with a transient
	// (retryable) error. Under a refuse-only fault plan this reconciles
	// exactly with the faultnet ledger's fault total — the chaos gate
	// asserts it.
	KeyFailureTransient = "resilient.failure.transient"
	// KeyFailurePermanent counts attempts that failed permanently.
	KeyFailurePermanent = "resilient.failure.permanent"
	// KeyExhausted counts retry loops that ran out of attempts.
	KeyExhausted = "resilient.attempts.exhausted"
	// KeyBudgetExhausted counts retry loops that ran out of time budget
	// (explicit policy budget or context deadline).
	KeyBudgetExhausted = "resilient.budget.exhausted"
	// KeyBreakerTrips counts closed/half-open → open transitions.
	KeyBreakerTrips = "resilient.breaker.trip.total"
	// KeyBreakerState is a gauge of the breaker's current state: 0 closed,
	// 1 open, 2 half-open. With several breakers sharing one observer the
	// gauge reflects the most recent transition.
	KeyBreakerState = "resilient.breaker.state"
)
