package resilient

import (
	"errors"
	"sync"
	"time"

	"tangledmass/internal/obs"
)

// ErrOpen is returned by Breaker.Allow while the circuit is open. Classify
// treats it as permanent: retrying into an open breaker within one retry
// loop cannot succeed, so callers should fail fast and let the cooldown
// elapse between higher-level operations.
var ErrOpen = errors.New("resilient: circuit breaker open")

// breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// Breaker is a consecutive-failure circuit breaker: after threshold
// failures in a row it opens and fails fast for cooldown, then lets a
// single half-open probe through; the probe's outcome closes or re-opens
// the circuit. A nil *Breaker is valid and permanently disabled — Allow
// always admits and Record is a no-op.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clock     Clock
	obs       *obs.Observer

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
}

// NewBreaker builds a breaker on the system clock. threshold < 1 returns
// nil (disabled).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		return nil
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, clock: SystemClock()}
}

// WithClock substitutes the clock (tests) and returns the breaker for
// chaining.
func (b *Breaker) WithClock(c Clock) *Breaker {
	if b != nil {
		b.clock = c
	}
	return b
}

// WithObserver attaches an observer the breaker reports its state gauge
// and trip counter through (see keys.go), returning the breaker for
// chaining. Attach before the breaker is shared across goroutines.
func (b *Breaker) WithObserver(o *obs.Observer) *Breaker {
	if b != nil {
		b.obs = o
		o.Gauge(KeyBreakerState).Set(int64(b.state))
	}
	return b
}

// setState transitions the breaker and mirrors the new state to the
// observer. Callers hold b.mu.
func (b *Breaker) setState(state int) {
	if state == stateOpen && b.state != stateOpen {
		b.obs.Counter(KeyBreakerTrips).Inc()
	}
	b.state = state
	b.obs.Gauge(KeyBreakerState).Set(int64(state))
}

// Allow reports whether an attempt may proceed, returning ErrOpen when the
// circuit is open. While half-open, exactly one probe is admitted; further
// attempts fail fast until Record settles the probe.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.clock.Now().Sub(b.openedAt) >= b.cooldown {
			b.setState(stateHalfOpen)
			return nil
		}
		return ErrOpen
	default: // half-open: a probe is already in flight
		return ErrOpen
	}
}

// Record feeds one attempt outcome into the breaker. A success closes the
// circuit; a failure while half-open, or the threshold-th consecutive
// failure, opens it.
func (b *Breaker) Record(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.setState(stateClosed)
		b.failures = 0
		return
	}
	b.failures++
	if b.state == stateHalfOpen || b.failures >= b.threshold {
		b.setState(stateOpen)
		b.openedAt = b.clock.Now()
	}
}
