package resilient

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the circuit is open. Classify
// treats it as permanent: retrying into an open breaker within one retry
// loop cannot succeed, so callers should fail fast and let the cooldown
// elapse between higher-level operations.
var ErrOpen = errors.New("resilient: circuit breaker open")

// breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// Breaker is a consecutive-failure circuit breaker: after threshold
// failures in a row it opens and fails fast for cooldown, then lets a
// single half-open probe through; the probe's outcome closes or re-opens
// the circuit. A nil *Breaker is valid and permanently disabled — Allow
// always admits and Record is a no-op.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clock     Clock

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
}

// NewBreaker builds a breaker on the system clock. threshold < 1 returns
// nil (disabled).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		return nil
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, clock: SystemClock()}
}

// WithClock substitutes the clock (tests) and returns the breaker for
// chaining.
func (b *Breaker) WithClock(c Clock) *Breaker {
	if b != nil {
		b.clock = c
	}
	return b
}

// Allow reports whether an attempt may proceed, returning ErrOpen when the
// circuit is open. While half-open, exactly one probe is admitted; further
// attempts fail fast until Record settles the probe.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.clock.Now().Sub(b.openedAt) >= b.cooldown {
			b.state = stateHalfOpen
			return nil
		}
		return ErrOpen
	default: // half-open: a probe is already in flight
		return ErrOpen
	}
}

// Record feeds one attempt outcome into the breaker. A success closes the
// circuit; a failure while half-open, or the threshold-th consecutive
// failure, opens it.
func (b *Breaker) Record(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = stateClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == stateHalfOpen || b.failures >= b.threshold {
		b.state = stateOpen
		b.openedAt = b.clock.Now()
	}
}
