package resilient

import (
	"context"
	"sync"
	"time"
)

// Pacer spaces requests to a sustained rate — the load generator's
// throttle. It is an interval pacer, not a token bucket: each Wait
// reserves the next slot at exactly 1/rate after the previous one (or now,
// if the caller fell behind), so a loadgen client emits steady traffic
// instead of bursts that would make p99 measurements meaningless. Safe
// for concurrent use; a zero or negative rate never waits.
type Pacer struct {
	interval time.Duration
	clock    Clock

	mu   sync.Mutex
	next time.Time
}

// NewPacer builds a pacer for perSecond requests per second. perSecond ≤ 0
// means unlimited: Wait returns immediately.
func NewPacer(perSecond float64) *Pacer {
	p := &Pacer{clock: SystemClock()}
	if perSecond > 0 {
		p.interval = time.Duration(float64(time.Second) / perSecond)
	}
	return p
}

// WithClock substitutes the time source, for deterministic tests. Returns
// p for chaining.
func (p *Pacer) WithClock(c Clock) *Pacer {
	if c.Now != nil && c.Sleep != nil {
		p.clock = c
	}
	return p
}

// Wait blocks until the caller's reserved slot arrives, or ctx is done —
// the only error it returns is ctx.Err(). Slots are handed out under the
// lock but slept outside it, so concurrent callers queue up distinct
// future slots instead of serializing their sleeps.
func (p *Pacer) Wait(ctx context.Context) error {
	if p == nil || p.interval <= 0 {
		return ctx.Err()
	}
	now := p.clock.Now()
	p.mu.Lock()
	slot := p.next
	if slot.Before(now) {
		slot = now
	}
	p.next = slot.Add(p.interval)
	p.mu.Unlock()
	if d := slot.Sub(now); d > 0 {
		if dl, ok := ctx.Deadline(); ok && now.Add(d).After(dl) {
			// The slot is past the deadline; sleeping the full interval would
			// just delay the inevitable.
			if rem := dl.Sub(now); rem > 0 {
				p.clock.Sleep(rem)
			}
			return context.DeadlineExceeded
		}
		p.clock.Sleep(d)
	}
	return ctx.Err()
}
