package population

import (
	"testing"

	"tangledmass/internal/device"
)

func TestEveryHandsetDrawsOneToThreeDistinctProfiles(t *testing.T) {
	p := smallPopulation(t, 5)
	for _, h := range p.Handsets {
		pols := h.Device.Policies()
		if len(pols) < 1 || len(pols) > 3 {
			t.Fatalf("handset %d carries %d profiles, want 1..3", h.ID, len(pols))
		}
		seen := map[string]bool{}
		for _, pol := range pols {
			if pol.App == "" {
				t.Fatalf("handset %d has an unnamed profile", h.ID)
			}
			if seen[pol.App] {
				t.Fatalf("handset %d drew %q twice", h.ID, pol.App)
			}
			seen[pol.App] = true
		}
	}
}

func TestProfileAssignmentDeterministicPerHandset(t *testing.T) {
	// The profile stream is a pure function of (seed, handset ID): two
	// generations of the same seed agree handset by handset, and the
	// independent stream means session-scale changes cannot perturb it.
	a := smallPopulation(t, 5)
	b, err := Generate(Config{Seed: 5, SessionScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Generate(Config{Seed: 5, SessionScale: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range a.Handsets {
		pa, pb, pc := h.Device.Policies(), b.Handsets[i].Device.Policies(), c.Handsets[i].Device.Policies()
		if len(pa) != len(pb) || len(pa) != len(pc) {
			t.Fatalf("handset %d: profile counts differ across generations", h.ID)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("handset %d profile %d differs across same-config generations", h.ID, j)
			}
			if pa[j] != pc[j] {
				t.Fatalf("handset %d profile %d depends on session scale", h.ID, j)
			}
		}
	}

	// A different seed reassigns profiles somewhere.
	other := smallPopulation(t, 6)
	differs := false
	for i := range a.Handsets {
		pa, po := a.Handsets[i].Device.Policies(), other.Handsets[i].Device.Policies()
		if len(pa) != len(po) {
			differs = true
			break
		}
		for j := range pa {
			if pa[j] != po[j] {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Error("seed change left every profile assignment untouched")
	}
}

func TestSessionPoliciesRotateOverHandsetProfiles(t *testing.T) {
	p := smallPopulation(t, 5)
	perHandset := map[int][]*Session{}
	for _, s := range p.Sessions {
		perHandset[s.Handset.ID] = append(perHandset[s.Handset.ID], s)
	}
	for _, h := range p.Handsets {
		pols := sessionPolicies(h)
		for i, s := range perHandset[h.ID] {
			if want := pols[i%len(pols)]; s.Policy != want {
				t.Fatalf("handset %d session %d policy = %+v, want rotation slot %+v",
					h.ID, i, s.Policy, want)
			}
		}
	}
}

func TestSessionPoliciesFallBackToPlatformDefault(t *testing.T) {
	h := &Handset{Device: device.New(device.Profile{Model: "Bare", Version: "4.4"},
		paperPopulation(t).Universe.AOSP("4.4"), nil)}
	pols := sessionPolicies(h)
	if len(pols) != 1 || pols[0].App != "platform-default" || !pols[0].Strict() {
		t.Errorf("policy-free fallback = %+v, want one strict platform-default", pols)
	}
}

func TestTamperChannelClassification(t *testing.T) {
	p := smallPopulation(t, 5)
	counts := map[device.Channel]int{}
	for _, h := range p.Handsets {
		ch := h.TamperChannel()
		counts[ch]++
		switch ch {
		case device.ChannelRootInstall:
			if !h.RootedExclusive {
				t.Fatalf("handset %d classified system without rooted-exclusive state", h.ID)
			}
		case device.ChannelUser:
			if h.Device.UserStore().Len() == 0 {
				t.Fatalf("handset %d classified user with an empty user store", h.ID)
			}
		case device.ChannelFirmware:
			if h.RootedExclusive || h.Device.UserStore().Len() > 0 {
				t.Fatalf("handset %d classified firmware despite post-build additions", h.ID)
			}
		}
	}
	if counts[device.ChannelFirmware] == 0 {
		t.Error("no stock handsets in the fleet")
	}
	if counts[device.ChannelUser]+counts[device.ChannelRootInstall] == 0 {
		t.Error("no tampered handsets in the fleet")
	}
}

func TestProfileCatalogWeightsAreProbabilities(t *testing.T) {
	var sum float64
	names := map[string]bool{}
	for _, e := range appProfileCatalog {
		if e.weight <= 0 {
			t.Errorf("profile %q has non-positive weight", e.profile.App)
		}
		if names[e.profile.App] {
			t.Errorf("catalog repeats %q", e.profile.App)
		}
		names[e.profile.App] = true
		sum += e.weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("catalog weights sum to %v, want 1", sum)
	}
}
