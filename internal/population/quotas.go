package population

// Session quotas per (manufacturer, model), calibrated to Table 2 of the
// paper: Samsung 7,709 sessions (Galaxy SIV 2,762; Galaxy SIII 2,108);
// LG 2,908 (Nexus 4 1,331; Nexus 5 1,010); ASUS 1,876 (Nexus 7 832);
// HTC 963; Motorola 837; total 15,970 sessions across 435 device models.
// Named models carry their exact paper session counts; the remainder of each
// manufacturer's quota spreads over synthetic models.

type modelQuota struct {
	manufacturer string
	model        string // empty: synthetic models fill the quota
	sessions     int
	synthModels  int // number of synthetic models when model == ""
}

var quotas = []modelQuota{
	{"SAMSUNG", "Galaxy SIV", 2762, 0},
	{"SAMSUNG", "Galaxy SIII", 2108, 0},
	{"SAMSUNG", "", 2839, 118},
	{"LG", "Nexus 4", 1331, 0},
	{"LG", "Nexus 5", 1010, 0},
	{"LG", "", 567, 38},
	{"ASUS", "Nexus 7", 832, 0},
	{"ASUS", "", 1044, 14},
	{"HTC", "", 963, 45},
	{"MOTOROLA", "", 837, 35},
	{"SONY", "", 500, 40},
	{"HUAWEI", "", 300, 35},
	{"LENOVO", "", 200, 25},
	{"PANTECH", "", 100, 10},
	{"COMPAL", "", 77, 5},
	{"ZTE", "", 150, 25},
	{"ALCATEL", "", 120, 15},
	{"ACER", "", 80, 10},
	{"XIAOMI", "", 150, 10},
}

// TotalPaperSessions is the Netalyzr session count of §4.1.
const TotalPaperSessions = 15970

// versionWeights gives the Android version mix per manufacturer. Nexus
// models override this (they track recent releases).
var versionWeights = map[string][]float64{
	// order: 4.1, 4.2, 4.3, 4.4
	"SAMSUNG":  {0.34, 0.25, 0.17, 0.24},
	"LG":       {0.35, 0.30, 0.15, 0.20},
	"ASUS":     {0.20, 0.25, 0.25, 0.30},
	"HTC":      {0.40, 0.28, 0.16, 0.16},
	"MOTOROLA": {0.45, 0.20, 0.18, 0.17},
	"SONY":     {0.35, 0.20, 0.30, 0.15},
	"default":  {0.35, 0.25, 0.15, 0.25},
}

var versions = []string{"4.1", "4.2", "4.3", "4.4"}

// operatorDef is one mobile network operator with its share of handsets.
// The operator list mirrors Figure 2's y-axis plus the §5.2 oddball
// networks.
type operatorDef struct {
	name    string
	country string
	weight  float64
}

var operators = []operatorDef{
	{"AT&T", "US", 0.14},
	{"VERIZON", "US", 0.15},
	{"T-MOBILE", "US", 0.10},
	{"SPRINT", "US", 0.08},
	{"3", "UK", 0.05},
	{"EE", "UK", 0.06},
	{"ORANGE", "FR", 0.07},
	{"SFR", "FR", 0.05},
	{"BOUYGUES", "FR", 0.04},
	{"FREE", "FR", 0.04},
	{"VODAFONE", "DE", 0.09},
	{"TELSTRA", "AU", 0.06},
	{"MEDITEL", "BM", 0.01},
	{"TELEFONICA", "AR", 0.02},
	{"CLARO", "CO", 0.02},
	{"MOVISTAR", "MX", 0.02},
}
