package population

import (
	"crypto/x509"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/device"
	"tangledmass/internal/stats"
)

// containsName reports whether certs include the named universe root.
func containsName(u *cauniverse.Universe, certs []*x509.Certificate, name string) bool {
	want := u.Root(name)
	if want == nil {
		return false
	}
	for _, c := range certs {
		if string(c.Raw) == string(want.Issued.Cert.Raw) {
			return true
		}
	}
	return false
}

// sampleBundles draws n firmware bundles for a profile.
func sampleBundles(u *cauniverse.Universe, p device.Profile, n int, seed int64) [][]*x509.Certificate {
	src := stats.NewSource(seed)
	out := make([][]*x509.Certificate, n)
	for i := range out {
		out[i] = bundleFor(u, p, src)
	}
	return out
}

func TestNexusAlwaysStock(t *testing.T) {
	u := cauniverse.Default()
	for _, model := range []string{"Nexus 4", "Nexus 5", "Nexus 7", "Galaxy Nexus"} {
		p := device.Profile{Model: model, Manufacturer: "LG", Operator: "SPRINT", Version: "4.1"}
		for _, b := range sampleBundles(u, p, 50, 1) {
			if len(b) != 0 {
				t.Fatalf("%s got %d firmware additions, want 0", model, len(b))
			}
		}
	}
}

func TestMotorolaAlwaysFOTASUPL(t *testing.T) {
	u := cauniverse.Default()
	p := device.Profile{Model: "MOTOROLA-M001", Manufacturer: "MOTOROLA", Operator: "T-MOBILE", Version: "4.4"}
	for _, b := range sampleBundles(u, p, 50, 2) {
		if !containsName(u, b, "Motorola FOTA Root CA") || !containsName(u, b, "Motorola SUPL Server Root CA") {
			t.Fatal("Motorola bundle missing FOTA/SUPL roots")
		}
	}
}

func TestVerizonMotorola41GetsCertiSign(t *testing.T) {
	u := cauniverse.Default()
	p := device.Profile{Model: "MOTOROLA-M001", Manufacturer: "MOTOROLA", Operator: "VERIZON", Version: "4.1"}
	hits := 0
	const n = 200
	for _, b := range sampleBundles(u, p, n, 3) {
		if containsName(u, b, "Certisign AC1S") {
			if !containsName(u, b, "PTT Post Root CA KeyMail") {
				t.Fatal("CertiSign set should include the Dutch postal root")
			}
			hits++
		}
	}
	// §5.1: CertiSign on "60 to 70%" of Verizon Motorola 4.1 devices.
	frac := float64(hits) / n
	if frac < 0.55 || frac > 0.75 {
		t.Errorf("CertiSign frequency = %.2f, want ≈0.65", frac)
	}
	// Never on non-Verizon Motorola.
	p.Operator = "T-MOBILE"
	for _, b := range sampleBundles(u, p, 100, 4) {
		if containsName(u, b, "Certisign AC1S") {
			t.Fatal("CertiSign should be Verizon-specific")
		}
	}
}

func TestSamsungVersionsDiffer(t *testing.T) {
	u := cauniverse.Default()
	// Samsung 4.2/4.3 carry the GeoTrust UTI root when extended; 4.1 never
	// does (footnote 3: 4.1 and 4.2 similar, 4.3/4.4 different/extended).
	seen := func(version string, name string) bool {
		p := device.Profile{Model: "SAMSUNG-M001", Manufacturer: "SAMSUNG", Operator: "EE", Version: version}
		for _, b := range sampleBundles(u, p, 200, 5) {
			if containsName(u, b, name) {
				return true
			}
		}
		return false
	}
	if seen("4.1", "GeoTrust CA for UTI") {
		t.Error("Samsung 4.1 should not carry GeoTrust UTI")
	}
	if !seen("4.2", "GeoTrust CA for UTI") {
		t.Error("Samsung 4.2 should sometimes carry GeoTrust UTI")
	}
	if !seen("4.3", "GeoTrust Mobile Device Root") {
		t.Error("Samsung 4.3 should sometimes carry the GeoTrust mobile set")
	}
	if !seen("4.4", "Thawte Server CA") {
		t.Error("Samsung 4.4 should sometimes carry the legacy bundle")
	}
}

func TestOperatorOverlays(t *testing.T) {
	u := cauniverse.Default()
	p := device.Profile{Model: "HTC-M001", Manufacturer: "HTC", Operator: "SPRINT", Version: "4.3"}
	hits := 0
	const n = 200
	for _, b := range sampleBundles(u, p, n, 6) {
		if containsName(u, b, "Sprint Nextel Root Authority") {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.5 || frac > 0.8 {
		t.Errorf("Sprint overlay frequency = %.2f, want ≈0.65", frac)
	}

	p.Operator = "VODAFONE"
	found := false
	for _, b := range sampleBundles(u, p, 100, 7) {
		if containsName(u, b, "Vodafone (Operator Domain)") {
			found = true
			break
		}
	}
	if !found {
		t.Error("Vodafone overlay never applied")
	}
}

func TestSony41FutureAOSPRoot(t *testing.T) {
	u := cauniverse.Default()
	growth := futureAOSPRoot(u)
	if u.AOSP("4.3").Contains(growth) {
		t.Fatal("future root should not be in AOSP 4.3")
	}
	if !u.AOSP("4.4").Contains(growth) {
		t.Fatal("future root should be in AOSP 4.4")
	}
	p := device.Profile{Model: "SONY-M001", Manufacturer: "SONY", Operator: "TELSTRA", Version: "4.1"}
	found := false
	for _, b := range sampleBundles(u, p, 300, 8) {
		for _, c := range b {
			if string(c.Raw) == string(growth.Raw) {
				found = true
			}
		}
	}
	if !found {
		t.Error("Sony 4.1 should sometimes ship a newer-AOSP root (§5)")
	}
}

func TestResolveSkipsUnknownNames(t *testing.T) {
	u := cauniverse.Default()
	certs := resolve(u, []string{"Motorola FOTA Root CA", "No Such Root", "CFCA Root CA"})
	if len(certs) != 2 {
		t.Errorf("resolve returned %d certs, want 2 (unknown skipped)", len(certs))
	}
}
