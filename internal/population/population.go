// Package population synthesizes the Netalyzr-for-Android dataset the paper
// analyzes: a fleet of handsets with composed firmware root stores and the
// measurement sessions observed from them (§4.1: 15,970 sessions, ≥3,835
// handsets, 435 models between November 2013 and April 2014).
//
// The generator is deterministic given a seed and is calibrated to the
// paper's published aggregates: Table 2 manufacturer/model session counts
// (exact), ≈39% of sessions with extended stores, 24% of sessions on rooted
// handsets, ≈6% of rooted sessions carrying rooted-only roots, exactly five
// handsets missing AOSP roots, and exactly one TLS-intercepted session (§7).
package population

import (
	"context"
	"crypto/x509"
	"fmt"
	"math"
	"time"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/certid"
	"tangledmass/internal/device"
	"tangledmass/internal/parallel"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/stats"
)

// Config parameterizes generation.
type Config struct {
	// Seed drives all randomness. The paper's tables use seed 1.
	Seed int64
	// Universe is the CA universe to draw roots from. Nil means the shared
	// default universe.
	Universe *cauniverse.Universe
	// SessionScale scales every model quota: 1.0 reproduces the paper's
	// 15,970 sessions; smaller values give proportionally smaller fleets
	// for fast tests. Values <= 0 mean 1.0.
	SessionScale float64
}

// Handset is one physical device plus its observed session count.
type Handset struct {
	ID int
	device.Profile
	Rooted bool
	// Device holds the live simulated device (system/user stores, apps).
	Device *device.Device
	// Store is the effective trust store captured for this handset's
	// sessions (system ∪ user, minus disabled).
	Store *rootstore.Store
	// SessionCount is how many Netalyzr sessions ran on this handset.
	SessionCount int
	// AOSPCount / ExtraCount / MissingCount compare Store against the
	// official AOSP store for the handset's Android version (Figure 1 axes).
	AOSPCount    int
	ExtraCount   int
	MissingCount int
	// RootedExclusive reports whether the handset carries a Table 5
	// rooted-only root.
	RootedExclusive bool
	// Intercepted marks the single §7 handset behind the marketing proxy.
	Intercepted bool

	quotaIdx int // index into the quota table, for session rebalancing
}

// Session is one Netalyzr execution.
type Session struct {
	ID      int
	Handset *Handset
	// At is the execution instant, spread deterministically across the
	// paper's collection window (November 2013 – April 2014, §4.1).
	At          time.Time
	Intercepted bool
	// Policy is the app validation profile this execution ran as — a
	// seed-free rotation through the handset's policy set, so the
	// generator and the dataset loader derive identical session policies.
	Policy device.ValidationPolicy
}

// collectionWindow is the measurement period of §4.1.
var (
	collectionStart = certgen.Epoch
	collectionDays  = 181 // Nov 2013 through Apr 2014
)

// sessionTime spreads session instants over the collection window as a
// deterministic function of the session ID.
func sessionTime(id int) time.Time {
	minutes := (int64(id) * 104729) % (int64(collectionDays) * 24 * 60)
	return collectionStart.Add(time.Duration(minutes) * time.Minute)
}

// Population is the generated fleet.
type Population struct {
	Config   Config
	Universe *cauniverse.Universe
	Handsets []*Handset
	Sessions []*Session
}

// Generate builds the fleet deterministically from cfg.
func Generate(cfg Config) (*Population, error) {
	u := cfg.Universe
	if u == nil {
		u = cauniverse.Default()
	}
	scale := cfg.SessionScale
	if scale <= 0 {
		scale = 1.0
	}
	src := stats.NewSource(cfg.Seed)
	p := &Population{Config: cfg, Universe: u}

	missingBudget := 5
	if scale < 1 {
		missingBudget = 1
	}
	userCertSeq := 0

	quotaTargets := make([]int, len(quotas))
	for qi, q := range quotas {
		remaining := int(float64(q.sessions)*scale + 0.5)
		quotaTargets[qi] = remaining
		if remaining <= 0 {
			continue
		}
		models := []string{q.model}
		if q.model == "" {
			models = syntheticModels(q.manufacturer, q.synthModels)
		}
		// Spread the quota over models with a skewed weight profile so a
		// few models dominate, as in real fleets.
		weights := make([]float64, len(models))
		for i := range weights {
			weights[i] = math.Pow(float64(i+1), -0.3)
		}
		for remaining > 0 {
			n := 1 + src.Intn(7) // sessions on this handset, mean 4
			if n > remaining {
				n = remaining
			}
			remaining -= n
			model := models[src.PickWeighted(weights)]
			h, err := p.newHandset(u, src, q.manufacturer, model, n, &missingBudget, &userCertSeq)
			if err != nil {
				return nil, err
			}
			h.quotaIdx = qi
			p.Handsets = append(p.Handsets, h)
		}
	}

	p.placeRootedExclusives(u, src)
	if err := p.placeInterception(src); err != nil {
		return nil, err
	}
	p.rebalanceSessions(quotaTargets)
	p.assignAppProfiles(cfg.Seed)
	p.finalizeHandsets(u)
	p.emitSessions()
	return p, nil
}

// rebalanceSessions restores each quota group's exact session total after
// the special-case placements trimmed some handsets' counts, so Table 2's
// per-model and per-manufacturer session numbers hold exactly.
func (p *Population) rebalanceSessions(targets []int) {
	current := make([]int, len(targets))
	groups := make([][]*Handset, len(targets))
	for _, h := range p.Handsets {
		current[h.quotaIdx] += h.SessionCount
		groups[h.quotaIdx] = append(groups[h.quotaIdx], h)
	}
	ordinary := func(h *Handset) bool { return !h.RootedExclusive && !h.Intercepted }
	for qi := range targets {
		hs := groups[qi]
		if len(hs) == 0 {
			continue
		}
		for i, guard := 0, 0; current[qi] != targets[qi] && guard < 100*len(hs); i, guard = i+1, guard+1 {
			h := hs[i%len(hs)]
			if !ordinary(h) {
				continue
			}
			if current[qi] < targets[qi] {
				h.SessionCount++
				current[qi]++
			} else if h.SessionCount > 1 {
				h.SessionCount--
				current[qi]--
			}
		}
	}
}

// syntheticModels names a manufacturer's long tail of device models.
func syntheticModels(manufacturer string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-M%03d", manufacturer, i+1)
	}
	return out
}

func pickVersion(src *stats.Source, manufacturer, model string) string {
	switch model {
	case "Nexus 5":
		return "4.4"
	case "Nexus 4":
		return versions[1+src.PickWeighted([]float64{0.4, 0.3, 0.3})]
	case "Nexus 7":
		return versions[1+src.PickWeighted([]float64{0.2, 0.4, 0.4})]
	}
	w, ok := versionWeights[manufacturer]
	if !ok {
		w = versionWeights["default"]
	}
	return versions[src.PickWeighted(w)]
}

func pickOperator(src *stats.Source) operatorDef {
	weights := make([]float64, len(operators))
	for i, o := range operators {
		weights[i] = o.weight
	}
	return operators[src.PickWeighted(weights)]
}

func (p *Population) newHandset(u *cauniverse.Universe, src *stats.Source,
	manufacturer, model string, sessions int,
	missingBudget, userCertSeq *int) (*Handset, error) {

	op := pickOperator(src)
	prof := device.Profile{
		Model:        model,
		Manufacturer: manufacturer,
		Operator:     op.name,
		Country:      op.country,
		Version:      pickVersion(src, manufacturer, model),
	}
	base := u.AOSP(prof.Version)

	// A handful of handsets are missing AOSP roots (§5: "Only 5 handsets
	// were missing some certificates").
	if *missingBudget > 0 && src.Bool(0.002) {
		*missingBudget--
		pruned := base.Clone(base.Name() + " pruned")
		ids := pruned.Identities()
		for i := 0; i < 1+src.Intn(3); i++ {
			pruned.Remove(ids[src.Intn(len(ids))])
		}
		base = pruned
	}

	d := device.New(prof, base, bundleFor(u, prof, src))
	h := &Handset{
		ID:           len(p.Handsets) + 1,
		Profile:      prof,
		Device:       d,
		SessionCount: sessions,
	}

	// 24% of sessions run on rooted handsets (§6). Rooting is a handset
	// property; session counts are independent of it, so the handset
	// probability equals the session share.
	if src.Bool(0.24) {
		h.Rooted = true
		d.Root()
	}

	// Rare user-installed VPN roots (§5.2): unique self-signed certs seen
	// on exactly one device each. The install routes through the
	// API-level-gated channel logic: on a rooted handset at API ≥ 19 the
	// installer takes the silent system-store path, leaving a root only
	// rooted devices could carry — a Table 5-shaped install — while
	// everything else lands in the user store as the paper observed.
	if src.Bool(0.015) {
		*userCertSeq++
		vpn, err := u.Generator().SelfSignedCA(fmt.Sprintf("User VPN CA %04d", *userCertSeq),
			certgen.WithOrganization("Personal"), certgen.WithCountry("ZZ"))
		if err != nil {
			return nil, fmt.Errorf("population: issuing user VPN root: %w", err)
		}
		if d.InstallCA(vpn.Cert) == device.ChannelRootInstall {
			h.RootedExclusive = true
		}
	}
	return h, nil
}

// placeRootedExclusives installs the Table 5 roots: the Freedom app's
// "CRAZY HOUSE" root on exactly 70 rooted handsets, and the four one-device
// roots (§6).
func (p *Population) placeRootedExclusives(u *cauniverse.Universe, src *stats.Source) {
	var rooted []*Handset
	for _, h := range p.Handsets {
		if h.Rooted {
			rooted = append(rooted, h)
		}
	}
	if len(rooted) == 0 {
		return
	}
	freedomTarget := 70
	if len(p.Handsets) < 1000 {
		// Scaled-down fleets get a proportional count, at least one.
		freedomTarget = 1 + len(rooted)*70/960
	}
	freedom := device.App{
		Name:         "Freedom",
		RequiresRoot: true,
		Permissions:  []string{"ACCESS_GOOGLE_ACCOUNTS", "READ_PHONE_STATE", "WRITE_SETTINGS"},
		InstallRoots: []*x509.Certificate{u.Root("CRAZY HOUSE").Issued.Cert},
	}
	// Deterministic selection: walk the rooted list with a stride so the
	// choices spread across manufacturers.
	stride := len(rooted)/freedomTarget + 1
	installed := 0
	for i := 0; i < len(rooted) && installed < freedomTarget; i += stride {
		h := rooted[i]
		if err := h.Device.Install(freedom); err == nil {
			h.RootedExclusive = true
			// The Freedom fleet's session counts keep rooted-exclusive
			// sessions near 6% of rooted sessions (§6).
			h.SessionCount = 2 + src.Intn(3)
			installed++
		}
	}
	// Single-device roots: MIND OVERFLOW and USER_X on the same device,
	// CDA on a rooted Nexus 7, CIRRUS on one more device.
	singles := [][]string{
		{"MIND OVERFLOW", "USER_X"},
		{"CDA/EMAILADDRESS"},
		{"CIRRUS, PRIVATE"},
	}
	idx := 1
	for _, names := range singles {
		for ; idx < len(rooted); idx++ {
			h := rooted[idx]
			if h.RootedExclusive {
				continue
			}
			ok := true
			for _, n := range names {
				if err := h.Device.AddSystemCert(u.Root(n).Issued.Cert); err != nil {
					ok = false
					break
				}
			}
			if ok {
				h.RootedExclusive = true
				h.SessionCount = 1
				idx++
				break
			}
		}
	}
}

// placeInterception marks one 4.4 Nexus 7 handset as sitting behind the
// marketing-research HTTPS proxy (§7). The proxy needs no root-store change.
func (p *Population) placeInterception(src *stats.Source) error {
	for _, h := range p.Handsets {
		if h.Model == "Nexus 7" && h.Version == "4.4" && !h.Rooted {
			h.Intercepted = true
			h.SessionCount = 1
			if err := h.Device.Install(device.App{
				Name:            "ConsumerInput Mobile",
				Permissions:     []string{"CHANGE_NETWORK_STATE", "BIND_VPN_SERVICE", "READ_CONTACTS", "READ_CALENDAR", "ACCESS_FINE_LOCATION", "READ_SMS", "READ_LOGS"},
				VPNInterception: true,
			}); err != nil {
				return fmt.Errorf("population: placing interception app: %w", err)
			}
			return nil
		}
	}
	return nil
}

// finalizeHandsets captures each handset's effective store and the Figure 1
// comparison counts. Handsets are independent (each task writes only its
// own *Handset), so the capture fans out on the parallel engine; the error
// is ctx cancellation only, which the background context never produces.
func (p *Population) finalizeHandsets(u *cauniverse.Universe) {
	_ = parallel.ForEach(context.Background(), len(p.Handsets), func(_ context.Context, i int) error {
		h := p.Handsets[i]
		// Loaders that already materialized the effective membership (the
		// columnar reader) pre-set Store; everything else captures it here.
		if h.Store == nil {
			h.Store = h.Device.EffectiveStore()
		}
		return nil
	})
	// A fleet holds far fewer distinct store memberships than handsets
	// (firmware variants repeat across devices), so the AOSP comparison runs
	// once per distinct (version, membership) pair and fans the counts out.
	// Compare by precomputed identity: no certificate is re-interned or
	// re-fingerprinted here.
	type storeCounts struct{ aosp, extra, missing int }
	cache := map[string]storeCounts{}
	for _, h := range p.Handsets {
		key := h.Version + "\x00" + h.Store.ContentKey()
		c, ok := cache[key]
		if !ok {
			aosp := u.AOSP(h.Version)
			for _, id := range h.Store.Identities() {
				if aosp.ContainsIdentity(id) {
					c.aosp++
				} else {
					c.extra++
				}
			}
			c.missing = aosp.Len() - c.aosp
			cache[key] = c
		}
		h.AOSPCount, h.ExtraCount, h.MissingCount = c.aosp, c.extra, c.missing
	}
}

func (p *Population) emitSessions() {
	total := 0
	for _, h := range p.Handsets {
		total += h.SessionCount
	}
	// One backing array for the whole fleet's sessions: the capacity is
	// exact, so the pointers handed out below stay valid.
	backing := make([]Session, 0, total)
	p.Sessions = make([]*Session, 0, total)
	id := 0
	for _, h := range p.Handsets {
		pols := sessionPolicies(h)
		for i := 0; i < h.SessionCount; i++ {
			id++
			backing = append(backing, Session{
				ID:          id,
				Handset:     h,
				At:          sessionTime(id),
				Intercepted: h.Intercepted && i == 0,
				Policy:      pols[i%len(pols)],
			})
			p.Sessions = append(p.Sessions, &backing[len(backing)-1])
		}
	}
}

// TotalSessions returns the number of sessions generated.
func (p *Population) TotalSessions() int { return len(p.Sessions) }

// ExtendedSessionFraction returns the share of sessions whose store carries
// certificates beyond its AOSP base (§5's 39%).
func (p *Population) ExtendedSessionFraction() float64 {
	if len(p.Sessions) == 0 {
		return 0
	}
	n := 0
	for _, s := range p.Sessions {
		if s.Handset.ExtraCount > 0 {
			n++
		}
	}
	return float64(n) / float64(len(p.Sessions))
}

// RootedSessionFraction returns the share of sessions on rooted handsets
// (§6's 24%).
func (p *Population) RootedSessionFraction() float64 {
	if len(p.Sessions) == 0 {
		return 0
	}
	n := 0
	for _, s := range p.Sessions {
		if s.Handset.Rooted {
			n++
		}
	}
	return float64(n) / float64(len(p.Sessions))
}

// UniqueRootIdentities counts distinct root identities across all handset
// stores (§4.1 reports 314 unique root certificates). The set union is a
// sharded fold on the parallel engine; set union is order-insensitive, and
// the error is ctx cancellation only, which the background context never
// produces.
func (p *Population) UniqueRootIdentities() int {
	seen, _ := parallel.Accumulate(context.Background(), len(p.Handsets),
		func() map[certid.Identity]bool { return map[certid.Identity]bool{} },
		func(seen map[certid.Identity]bool, start, end int) map[certid.Identity]bool {
			for i := start; i < end; i++ {
				for _, id := range p.Handsets[i].Store.Identities() {
					seen[id] = true
				}
			}
			return seen
		},
		func(into, from map[certid.Identity]bool) map[certid.Identity]bool {
			for id := range from {
				into[id] = true
			}
			return into
		})
	return len(seen)
}

// Default generates the paper-scale population with seed 1 — the
// configuration every table and figure is produced from.
func Default() (*Population, error) {
	return Generate(Config{Seed: 1})
}

// Assemble builds a Population from pre-constructed handsets — the loader
// path for datasets read back from disk (internal/dataset). Handsets must
// carry zeroed comparison counts; Assemble finalizes them against u's AOSP
// stores and emits the session stream exactly as Generate does.
func Assemble(u *cauniverse.Universe, handsets []*Handset) *Population {
	if u == nil {
		u = cauniverse.Default()
	}
	p := &Population{Universe: u, Handsets: handsets}
	p.finalizeHandsets(u)
	p.emitSessions()
	return p
}
