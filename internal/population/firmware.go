package population

import (
	"crypto/x509"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/device"
	"tangledmass/internal/rootstore"
	"tangledmass/internal/stats"
)

// Firmware composition rules, calibrated to §5 and Figures 1–2:
//
//   - Nexus models ship the stock AOSP store (they cluster on the dashed
//     vertical lines of Figure 1);
//   - HTC, LG and Motorola 4.1/4.2 and Samsung 4.4 images frequently carry
//     a "legacy bundle" of >40 extra roots;
//   - Samsung and HTC share a common small base (AddTrust, Deutsche
//     Telekom, Sonera, DoD) independent of operator;
//   - Motorola always ships its FOTA and SUPL roots; Verizon Motorola 4.1
//     images add the CertiSign set and the Dutch postal root; AT&T images a
//     Microsoft Secure Server root and Cingular legacy roots;
//   - operators overlay their own service roots (Sprint, Vodafone, Meditel,
//     Telefonica/Claro, Verizon's Pantech network-API root);
//   - Sony 4.1 images include one root that later appears in newer AOSP
//     releases.
//
// Bundle probabilities are tuned so ≈39% of sessions carry additional
// certificates (§5) — asserted by the calibration tests.

var legacyBundle = []string{
	"Thawte Server CA", "Thawte Premium Server CA", "Thawte Personal Basic CA",
	"Thawte Personal Freemail CA", "Thawte Personal Premium CA", "Thawte Timestamping CA",
	"VeriSign (d32e20f0)", "VeriSign Class 1 Public Primary CA (dd84d4b9)",
	"VeriSign Class 1 Public Primary CA (e519bf6d)", "VeriSign Class 2 Public Primary CA (af0a0dc2)",
	"VeriSign Class 2 Public Primary CA (b65a8ba3)", "VeriSign Class 3 Public Primary CA",
	"VeriSign Class 3 Extended Validation SSL SGC CA", "VeriSign Class 3 International Server CA - G3",
	"VeriSign Class 3 Secure Server CA - G3", "VeriSign Class 3 Secure Server CA",
	"VeriSign Commercial Software Publishers CA", "VeriSign Individual Software Publishers CA",
	"VeriSign Trust Network (a7880121)", "VeriSign Trust Network (aad0babe)",
	"VeriSign Trust Network (cc5ed111)", "VeriSign CPS",
	"Entrust.net CA", "Entrust.net Client CA (9374b4b6)", "Entrust.net Client CA (c83a995e)",
	"Entrust.net Secure Server CA", "Entrust CA - L1B", "DST-Entrust GTI CA",
	"Certplus Class 1 Primary CA", "Certplus Class 3 Primary CA",
	"Certplus Class 3P Primary CA", "Certplus Class 3TS Primary CA",
	"IPS CA CLASE1", "IPS CA CLASE3 CA", "IPS CA CLASEA1 CA", "IPS CA CLASEA3",
	"IPS CA Timestamping CA", "IPS Chained CAs",
	"FESTE Public Notary Certs", "FESTE Verified Certs",
	"eSign Imperito Primary Root CA", "eSign Gatekeeper Root CA", "eSign Primary Utility Root CA",
	"EUnet International Root CA", "RSA Data Security CA",
	"DST (ANX Network) CA", "DST (NRF) RootCA", "DST (UPS) RootCA",
	"ABA.ECOM Root CA", "First Data Digital CA", "Free SSL CA",
	"TrustCenter Class 2 CA", "TrustCenter Class 3 CA", "TC TrustCenter Class 1 CA",
	"AOL Time Warner Root CA 1", "AOL Time Warner Root CA 2",
	"Baltimore EZ by DST", "Xcert EZ by DST",
	"UserTrust Client Auth. and Email", "UserTrust RSA Extended Val. Sec. Server CA",
	"UserTrust UTN-USERFirst", "Wells Fargo CA 01", "Visa Information Delivery Root CA",
	"SIA Secure Client CA", "SIA Secure Server CA",
	"SEVEN Open Channel Primary CA", "GoDaddy Inc", "Starfield Services Root CA",
	"GlobalSign Root CA", "COMODO RSA CA", "COMODO Secure Certificate Services",
	"COMODO Trusted Certificate Services",
}

var (
	vendorBase = []string{
		"AddTrust Class 1 CA Root", "AddTrust Public CA Root", "AddTrust Qualified CA Root",
		"Deutsche Telekom Root CA 1", "Sonera Class1 CA", "DoD CLASS 3 Root CA",
	}
	samsungGeoTrust = []string{"GeoTrust CA for UTI"}
	geoTrustMobile  = []string{
		"GeoTrust Mobile Device Root", "GeoTrust Mobile Device Root - Privileged",
		"GeoTrust True Credentials CA 2", "GeoTrust CA for Adobe",
	}
	motorolaAlways  = []string{"Motorola FOTA Root CA", "Motorola SUPL Server Root CA"}
	certiSignSet    = []string{"Certisign AC1S", "Certisign AC2", "Certisign AC3S", "Certisign AC4", "PTT Post Root CA KeyMail"}
	attSet          = []string{"Microsoft Secure Server Authority", "Cingular Preferred Root CA", "Cingular Trusted Root CA"}
	sonySet         = []string{"Sony Computer DNAS Root 05", "Sony Ericsson Secure E2E"}
	sprintSet       = []string{"Sprint Nextel Root Authority", "Sprint XCA01"}
	vodafoneSet     = []string{"Vodafone (Operator Domain)", "Vodafone (Widget Operator Domain)"}
	cfcaSet         = []string{"CFCA Root CA", "CFCA Root CA 2", "CFCA Root CA 3", "CFCA Root CA 4"}
	telefonicaSet   = []string{"Telefonica Root CA 1", "Telefonica Root CA 2"}
	meditelSet      = []string{"Meditel Root CA"}
	verizonAPISet   = []string{"Verizon Wireless Network API CA"}
	venezuelaSet    = []string{"Venezuelan National CA"}
	huaweiSmall     = []string{"CFCA Root CA"}
	asusSmall       = []string{"AddTrust Class 1 CA Root", "GlobalSign Root CA"}
	secureSignSmall = []string{"SecureSign Root CA2 Japan", "SecureSign Root CA3 Japan"}
)

// isNexus reports whether the model ships a stock Google image.
func isNexus(model string) bool {
	switch model {
	case "Nexus 4", "Nexus 5", "Nexus 7", "Galaxy Nexus":
		return true
	}
	return false
}

// resolve maps catalog names to certificates, skipping names the universe
// does not carry (such as the future-AOSP marker, resolved separately).
func resolve(u *cauniverse.Universe, names []string) []*x509.Certificate {
	out := make([]*x509.Certificate, 0, len(names))
	for _, n := range names {
		if r := u.Root(n); r != nil {
			out = append(out, r.Issued.Cert)
		}
	}
	return out
}

// bundleFor decides the firmware additions for a handset. It returns the
// certificates pre-installed beyond the AOSP base.
func bundleFor(u *cauniverse.Universe, p device.Profile, src *stats.Source) []*x509.Certificate {
	if isNexus(p.Model) {
		return nil
	}
	var names []string
	old := p.Version == "4.1" || p.Version == "4.2"

	switch p.Manufacturer {
	case "HTC":
		switch {
		case old && src.Bool(0.42):
			names = append(names, vendorBase...)
			names = append(names, legacyBundle...)
			names = append(names, geoTrustMobile...)
		case src.Bool(0.38):
			names = append(names, vendorBase...)
		}
		if src.Bool(0.05) {
			names = append(names, cfcaSet...)
		}
	case "SAMSUNG":
		switch p.Version {
		case "4.1":
			if src.Bool(0.34) {
				names = append(names, vendorBase...)
			}
		case "4.2":
			if src.Bool(0.34) {
				names = append(names, vendorBase...)
				names = append(names, samsungGeoTrust...)
			}
		case "4.3":
			if src.Bool(0.34) {
				names = append(names, vendorBase...)
				names = append(names, samsungGeoTrust...)
				names = append(names, geoTrustMobile...)
			}
		case "4.4":
			if src.Bool(0.38) {
				names = append(names, vendorBase...)
				names = append(names, legacyBundle...)
			}
		}
	case "MOTOROLA":
		names = append(names, motorolaAlways...)
		if old && src.Bool(0.52) {
			names = append(names, legacyBundle...)
		}
		if p.Version == "4.1" && p.Operator == "VERIZON" && src.Bool(0.65) {
			names = append(names, certiSignSet...)
		}
		if p.Operator == "AT&T" && src.Bool(0.50) {
			names = append(names, attSet...)
		}
		if src.Bool(0.05) {
			names = append(names, cfcaSet...)
		}
	case "LG":
		switch {
		case old && src.Bool(0.55):
			names = append(names, vendorBase...)
			names = append(names, legacyBundle...)
		case src.Bool(0.25):
			names = append(names, vendorBase...)
		}
	case "SONY":
		if src.Bool(0.70) {
			names = append(names, sonySet...)
			if p.Version == "4.1" && src.Bool(0.50) {
				// One root that newer AOSP releases later adopted (§5):
				// resolved below against the 4.4-only growth set.
				names = append(names, futureAOSPRootMarker)
			}
		}
	case "ASUS":
		if src.Bool(0.22) {
			names = append(names, asusSmall...)
		}
	case "HUAWEI":
		if src.Bool(0.20) {
			names = append(names, huaweiSmall...)
		}
	case "LENOVO":
		if src.Bool(0.25) {
			names = append(names, cfcaSet...)
		}
	case "COMPAL":
		if src.Bool(0.40) {
			names = append(names, venezuelaSet...)
		}
	case "PANTECH":
		if p.Operator == "VERIZON" && p.Version == "4.1" && src.Bool(0.80) {
			names = append(names, verizonAPISet...)
		}
	default:
		if src.Bool(0.12) {
			names = append(names, secureSignSmall...)
		}
	}

	// Operator overlays apply on top of any manufacturer image.
	switch p.Operator {
	case "SPRINT":
		if src.Bool(0.65) {
			names = append(names, sprintSet...)
		}
	case "VODAFONE":
		if src.Bool(0.65) {
			names = append(names, vodafoneSet...)
		}
	case "MEDITEL":
		if p.Manufacturer == "SAMSUNG" && p.Version == "4.1" && src.Bool(0.90) {
			names = append(names, meditelSet...)
		}
	case "TELEFONICA", "CLARO", "MOVISTAR":
		if p.Manufacturer == "MOTOROLA" && p.Version == "4.1" && src.Bool(0.70) {
			names = append(names, telefonicaSet...)
		}
	}

	certs := resolve(u, names)
	for _, n := range names {
		if n == futureAOSPRootMarker {
			certs = append(certs, futureAOSPRoot(u))
		}
	}
	return certs
}

// futureAOSPRootMarker stands in for "a root this AOSP version does not yet
// ship but a newer one does".
const futureAOSPRootMarker = "\x00future-aosp-root"

// futureAOSPRoot returns one root present in AOSP 4.4 but absent from 4.3.
func futureAOSPRoot(u *cauniverse.Universe) *x509.Certificate {
	growth := rootstore.Subtract("growth", u.AOSP("4.4"), u.AOSP("4.3"))
	return growth.Certificates()[0]
}
