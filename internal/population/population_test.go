package population

import (
	"sync"
	"testing"

	"tangledmass/internal/cauniverse"
)

// fullPop caches the paper-scale population across tests.
var (
	fullOnce sync.Once
	fullPop  *Population
	fullErr  error
)

func paperPopulation(t *testing.T) *Population {
	t.Helper()
	fullOnce.Do(func() {
		fullPop, fullErr = Default()
	})
	if fullErr != nil {
		t.Fatal(fullErr)
	}
	return fullPop
}

func smallPopulation(t *testing.T, seed int64) *Population {
	t.Helper()
	p, err := Generate(Config{Seed: seed, SessionScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExactSessionTotal(t *testing.T) {
	p := paperPopulation(t)
	if p.TotalSessions() != TotalPaperSessions {
		t.Errorf("sessions = %d, want %d", p.TotalSessions(), TotalPaperSessions)
	}
}

func TestTable2ManufacturerSessions(t *testing.T) {
	p := paperPopulation(t)
	byMan := map[string]int{}
	byModel := map[string]int{}
	for _, s := range p.Sessions {
		byMan[s.Handset.Manufacturer]++
		byModel[s.Handset.Model]++
	}
	wantMan := map[string]int{
		"SAMSUNG": 7709, "LG": 2908, "ASUS": 1876, "HTC": 963, "MOTOROLA": 837,
	}
	for man, want := range wantMan {
		if byMan[man] != want {
			t.Errorf("%s sessions = %d, want %d (Table 2)", man, byMan[man], want)
		}
	}
	wantModel := map[string]int{
		"Galaxy SIV": 2762, "Galaxy SIII": 2108, "Nexus 4": 1331, "Nexus 5": 1010, "Nexus 7": 832,
	}
	for model, want := range wantModel {
		if byModel[model] != want {
			t.Errorf("%s sessions = %d, want %d (Table 2)", model, byModel[model], want)
		}
	}
}

func TestHandsetAndModelCounts(t *testing.T) {
	p := paperPopulation(t)
	if n := len(p.Handsets); n < 3500 || n > 4600 {
		t.Errorf("handsets = %d, want ≈3,835 (§4.1)", n)
	}
	models := map[string]bool{}
	for _, h := range p.Handsets {
		models[h.Manufacturer+"/"+h.Model] = true
	}
	if n := len(models); n < 350 || n > 440 {
		t.Errorf("observed models = %d, want ≈435 (§4.1)", n)
	}
}

func TestExtendedFraction(t *testing.T) {
	p := paperPopulation(t)
	if f := p.ExtendedSessionFraction(); f < 0.36 || f > 0.43 {
		t.Errorf("extended-store session fraction = %.3f, want ≈0.39 (§5)", f)
	}
}

func TestRootedFraction(t *testing.T) {
	p := paperPopulation(t)
	if f := p.RootedSessionFraction(); f < 0.21 || f > 0.27 {
		t.Errorf("rooted session fraction = %.3f, want ≈0.24 (§6)", f)
	}
}

func TestRootedExclusiveShare(t *testing.T) {
	p := paperPopulation(t)
	rooted, excl := 0, 0
	for _, s := range p.Sessions {
		if s.Handset.Rooted {
			rooted++
			if s.Handset.RootedExclusive {
				excl++
			}
		}
	}
	share := float64(excl) / float64(rooted)
	if share < 0.04 || share > 0.08 {
		t.Errorf("rooted-exclusive share of rooted sessions = %.3f, want ≈0.06 (§6)", share)
	}
	// And roughly 1.5% of all sessions.
	all := float64(excl) / float64(p.TotalSessions())
	if all < 0.008 || all > 0.022 {
		t.Errorf("rooted-exclusive share of all sessions = %.3f, want ≈0.015", all)
	}
}

func TestFreedomDeviceCount(t *testing.T) {
	p := paperPopulation(t)
	u := p.Universe
	crazy := u.Root("CRAZY HOUSE").Issued.Cert
	n := 0
	for _, h := range p.Handsets {
		if h.Store.Contains(crazy) {
			n++
			if !h.Rooted {
				t.Error("CRAZY HOUSE found on a non-rooted handset")
			}
		}
	}
	if n != 70 {
		t.Errorf("CRAZY HOUSE on %d devices, want 70 (Table 5)", n)
	}
}

func TestSingleDeviceRootedRoots(t *testing.T) {
	p := paperPopulation(t)
	u := p.Universe
	for _, name := range []string{"MIND OVERFLOW", "USER_X", "CDA/EMAILADDRESS", "CIRRUS, PRIVATE"} {
		cert := u.Root(name).Issued.Cert
		n := 0
		for _, h := range p.Handsets {
			if h.Store.Contains(cert) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%s on %d devices, want 1 (Table 5)", name, n)
		}
	}
	// MIND OVERFLOW and USER_X share a device (§6).
	var mo, ux *Handset
	for _, h := range p.Handsets {
		if h.Store.Contains(u.Root("MIND OVERFLOW").Issued.Cert) {
			mo = h
		}
		if h.Store.Contains(u.Root("USER_X").Issued.Cert) {
			ux = h
		}
	}
	if mo == nil || mo != ux {
		t.Error("MIND OVERFLOW and USER_X should be on the same device")
	}
}

func TestMissingCertHandsets(t *testing.T) {
	p := paperPopulation(t)
	n := 0
	for _, h := range p.Handsets {
		if h.MissingCount > 0 {
			n++
		}
	}
	if n != 5 {
		t.Errorf("handsets missing AOSP roots = %d, want 5 (§5)", n)
	}
}

func TestSingleInterceptedSession(t *testing.T) {
	p := paperPopulation(t)
	var intercepted []*Session
	for _, s := range p.Sessions {
		if s.Intercepted {
			intercepted = append(intercepted, s)
		}
	}
	if len(intercepted) != 1 {
		t.Fatalf("intercepted sessions = %d, want 1 (§7)", len(intercepted))
	}
	h := intercepted[0].Handset
	if h.Model != "Nexus 7" || h.Version != "4.4" {
		t.Errorf("intercepted handset = %s %s, want Nexus 7 on 4.4", h.Model, h.Version)
	}
	if h.ExtraCount != 0 {
		t.Error("the §7 proxy needs no root-store modification")
	}
	apps := h.Device.Apps()
	if len(apps) == 0 || !apps[0].VPNInterception {
		t.Error("intercepted handset should carry the VPN interception app")
	}
}

func TestNexusDevicesAreStock(t *testing.T) {
	p := paperPopulation(t)
	for _, h := range p.Handsets {
		if isNexus(h.Model) && h.ExtraCount > 0 && h.Device.UserStore().Len() == 0 && !h.Rooted {
			t.Errorf("non-rooted Nexus %s has %d firmware extras", h.Model, h.ExtraCount)
		}
	}
}

func TestMotorolaAlwaysHasFOTAAndSUPL(t *testing.T) {
	p := paperPopulation(t)
	u := p.Universe
	fota := u.Root("Motorola FOTA Root CA").Issued.Cert
	supl := u.Root("Motorola SUPL Server Root CA").Issued.Cert
	for _, h := range p.Handsets {
		if h.Manufacturer != "MOTOROLA" {
			continue
		}
		if !h.Store.Contains(fota) || !h.Store.Contains(supl) {
			t.Fatalf("Motorola %s missing FOTA/SUPL roots", h.Model)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := smallPopulation(t, 42)
	b := smallPopulation(t, 42)
	if len(a.Handsets) != len(b.Handsets) || a.TotalSessions() != b.TotalSessions() {
		t.Fatal("same seed should reproduce the same fleet shape")
	}
	for i := range a.Handsets {
		ha, hb := a.Handsets[i], b.Handsets[i]
		if ha.Profile != hb.Profile || ha.Rooted != hb.Rooted || ha.Store.Len() != hb.Store.Len() {
			t.Fatalf("handset %d differs between runs", i)
		}
	}
	c := smallPopulation(t, 43)
	same := len(a.Handsets) == len(c.Handsets)
	if same {
		diff := false
		for i := range a.Handsets {
			if a.Handsets[i].Profile != c.Handsets[i].Profile {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds should produce different fleets")
	}
}

func TestScaledPopulation(t *testing.T) {
	p := smallPopulation(t, 1)
	want := 0
	for _, q := range quotas {
		want += int(float64(q.sessions)*0.05 + 0.5)
	}
	if p.TotalSessions() != want {
		t.Errorf("scaled sessions = %d, want %d", p.TotalSessions(), want)
	}
	if f := p.RootedSessionFraction(); f < 0.12 || f > 0.36 {
		t.Errorf("scaled rooted fraction = %.3f, want near 0.24", f)
	}
}

func TestSessionsReferenceHandsets(t *testing.T) {
	p := smallPopulation(t, 1)
	counts := map[*Handset]int{}
	for _, s := range p.Sessions {
		if s.Handset == nil {
			t.Fatal("session without handset")
		}
		counts[s.Handset]++
	}
	for _, h := range p.Handsets {
		if counts[h] != h.SessionCount {
			t.Fatalf("handset %d: %d sessions emitted, SessionCount=%d", h.ID, counts[h], h.SessionCount)
		}
	}
}

func TestHandsetCountsConsistent(t *testing.T) {
	p := smallPopulation(t, 1)
	for _, h := range p.Handsets {
		aosp := p.Universe.AOSP(h.Version)
		if h.AOSPCount+h.ExtraCount != h.Store.Len() {
			t.Fatalf("handset %d: AOSP(%d)+Extra(%d) != store(%d)", h.ID, h.AOSPCount, h.ExtraCount, h.Store.Len())
		}
		if h.AOSPCount+h.MissingCount != aosp.Len() {
			t.Fatalf("handset %d: AOSP(%d)+Missing(%d) != base(%d)", h.ID, h.AOSPCount, h.MissingCount, aosp.Len())
		}
	}
}

func TestUniqueRootsNearPaper(t *testing.T) {
	p := paperPopulation(t)
	if n := p.UniqueRootIdentities(); n < 260 || n > 380 {
		t.Errorf("unique root identities = %d, want ≈314 (§4.1)", n)
	}
}

func TestCustomUniverse(t *testing.T) {
	u, err := cauniverse.New(99)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Generate(Config{Seed: 1, Universe: u, SessionScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if p.Universe != u {
		t.Error("population should use the supplied universe")
	}
}
