package population

import (
	"tangledmass/internal/device"
	"tangledmass/internal/stats"
)

// appProfileCatalog is the stats-weighted pool of app validation profiles a
// handset's sessions run as. The broken-validation shares follow the
// app-study literature the ROADMAP cites (Okara; "Danger is My Middle
// Name"): a substantial minority of apps ship accept-all trust managers or
// allow-all hostname verifiers, and a smaller tail disables pinning in
// debug builds. Names are profile archetypes, not real packages.
var appProfileCatalog = []struct {
	profile device.ValidationPolicy
	weight  float64
}{
	{device.ValidationPolicy{App: "stock-browser"}, 0.40},
	{device.ValidationPolicy{App: "platform-webview"}, 0.18},
	{device.ValidationPolicy{App: "banking-app"}, 0.08},
	{device.ValidationPolicy{App: "ad-sdk-httpclient", AcceptAll: true}, 0.09},
	{device.ValidationPolicy{App: "allow-all-hostname-client", SkipHostname: true}, 0.11},
	{device.ValidationPolicy{App: "accept-all-trust-manager", AcceptAll: true, SkipHostname: true}, 0.06},
	{device.ValidationPolicy{App: "pin-bypass-debug-build", BypassPins: true}, 0.08},
}

// profileSource derives the per-handset RNG for app-profile assignment as a
// pure function of (seed, handset ID). It is deliberately independent of
// the main sequential generation stream: profile draws must not perturb the
// calibrated quota/version/rooting draws, and a handset's profiles must be
// reproducible without replaying the fleet.
func profileSource(seed int64, handsetID int) *stats.Source {
	return stats.NewSource(seed*1_000_003 + int64(handsetID)*7919 + 17)
}

// assignAppProfiles gives every handset one to three app profiles drawn
// (without duplicates) from the weighted catalog and records them on the
// device, which carries the policy set from here on — through
// serialization (the dataset app-profiles column) and back.
func (p *Population) assignAppProfiles(seed int64) {
	weights := make([]float64, len(appProfileCatalog))
	for i, e := range appProfileCatalog {
		weights[i] = e.weight
	}
	for _, h := range p.Handsets {
		src := profileSource(seed, h.ID)
		n := 1 + src.Intn(3)
		seen := make(map[string]bool, n)
		for len(seen) < n {
			e := appProfileCatalog[src.PickWeighted(weights)]
			if seen[e.profile.App] {
				continue
			}
			seen[e.profile.App] = true
			h.Device.AddPolicy(e.profile)
		}
	}
}

// sessionPolicies returns the handset's policy set for session emission,
// falling back to the strict platform default when the handset carries
// none (datasets written before the app-profiles column).
func sessionPolicies(h *Handset) []device.ValidationPolicy {
	if pols := h.Device.Policies(); len(pols) > 0 {
		return pols
	}
	return []device.ValidationPolicy{{App: "platform-default"}}
}

// TamperChannel classifies how the handset's trust set departed from its
// firmware composition: the system channel (a rooted-only install — the
// Freedom app and its Table 5 kin), the user channel (user-store CAs), or
// firmware when nothing was added post-build. It is derived from
// serialized state only (the rooted-exclusive flag and user-store
// membership), so generated and loaded fleets classify identically.
func (h *Handset) TamperChannel() device.Channel {
	if h.RootedExclusive {
		return device.ChannelRootInstall
	}
	if h.Device != nil && h.Device.UserStore().Len() > 0 {
		return device.ChannelUser
	}
	return device.ChannelFirmware
}
