package certview

import (
	"crypto/x509"
	"strings"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/rootstore"
)

func testChain(t *testing.T) []*x509.Certificate {
	t.Helper()
	g := certgen.NewGenerator(120)
	root, err := g.SelfSignedCA("View Root", certgen.WithOrganization("View Org"), certgen.WithCountry("US"))
	if err != nil {
		t.Fatal(err)
	}
	inter, err := g.Intermediate(root, "View Intermediate")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := g.Leaf(inter, "view.example.com")
	if err != nil {
		t.Fatal(err)
	}
	return []*x509.Certificate{leaf.Cert, inter.Cert, root.Cert}
}

func TestRenderFields(t *testing.T) {
	chain := testChain(t)
	out := Render(chain[2], Options{Now: certgen.Epoch})
	for _, want := range []string{
		"CN=View Root", "O=View Org", "C=US",
		"ECDSA P-256", "CA=true", "cert-sign", "crl-sign",
		"SHA-1:", "SHA-256:", "Android subject hash:",
		"Self-issued: true", "[valid]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("root rendering missing %q:\n%s", want, out)
		}
	}

	leafOut := Render(chain[0], Options{})
	for _, want := range []string{
		"view.example.com", "CA=false", "server-auth", "client-auth",
		"Subject Alternative Names: view.example.com",
	} {
		if !strings.Contains(leafOut, want) {
			t.Errorf("leaf rendering missing %q", want)
		}
	}
	if strings.Contains(leafOut, "[valid]") {
		t.Error("no validity annotation expected without Now")
	}
	if strings.Contains(leafOut, "Self-issued") {
		t.Error("leaf is not self-issued")
	}
}

func TestRenderExpiredAnnotation(t *testing.T) {
	g := certgen.NewGenerator(121)
	old, err := g.SelfSignedCA("Old Root", certgen.Expired())
	if err != nil {
		t.Fatal(err)
	}
	out := Render(old.Cert, Options{Now: certgen.Epoch})
	if !strings.Contains(out, "[EXPIRED]") {
		t.Errorf("expired annotation missing:\n%s", out)
	}
	future := Render(old.Cert, Options{Now: old.Cert.NotBefore.AddDate(-1, 0, 0)})
	if !strings.Contains(future, "[not yet valid]") {
		t.Error("not-yet-valid annotation missing")
	}
}

func TestRenderRSAKey(t *testing.T) {
	g := certgen.NewGenerator(122)
	rsaRoot, err := g.SelfSignedCA("RSA View Root", certgen.WithRSA(1024))
	if err != nil {
		t.Fatal(err)
	}
	out := Render(rsaRoot.Cert, Options{})
	if !strings.Contains(out, "RSA 1024 bits (e=65537)") {
		t.Errorf("RSA key description missing:\n%s", out)
	}
}

func TestRenderPEMRoundTrips(t *testing.T) {
	chain := testChain(t)
	out := Render(chain[0], Options{ShowPEM: true})
	idx := strings.Index(out, "-----BEGIN CERTIFICATE-----")
	if idx < 0 {
		t.Fatal("PEM block missing")
	}
	parsed, err := rootstore.ParsePEMCertificates([]byte(out[idx:]))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || string(parsed[0].Raw) != string(chain[0].Raw) {
		t.Error("rendered PEM does not round-trip to the same certificate")
	}
}

func TestRenderChainRoles(t *testing.T) {
	chain := testChain(t)
	out := RenderChain(chain, Options{})
	for _, want := range []string{"chain[0] (leaf)", "chain[1] (intermediate)", "chain[2] (root)"} {
		if !strings.Contains(out, want) {
			t.Errorf("chain rendering missing %q", want)
		}
	}
	single := RenderChain(chain[:1], Options{})
	if !strings.Contains(single, "chain[0] (certificate)") {
		t.Error("single-cert chain should be labeled 'certificate'")
	}
}
