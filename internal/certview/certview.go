// Package certview renders X.509 certificates as human-readable text, in
// the spirit of `openssl x509 -text`: subject, issuer, validity, key
// information, constraints and the fingerprints/hashes the rest of the
// system keys on (SHA-1, SHA-256, and the Android subject hash used in
// cacerts file names and the paper's Figure 2 labels).
package certview

import (
	"crypto/ecdsa"
	"crypto/rsa"
	"crypto/x509"
	"encoding/base64"
	"fmt"
	"strings"
	"time"

	"tangledmass/internal/certid"
)

// base64Std avoids re-importing encoding/pem for a single encode.
func base64Std(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

// Options controls rendering.
type Options struct {
	// Now is the instant used to annotate validity ("expired", "not yet
	// valid"). Zero means no annotation.
	Now time.Time
	// ShowPEM appends the PEM encoding.
	ShowPEM bool
}

// Render produces the text form of one certificate.
func Render(cert *x509.Certificate, opts Options) string {
	var b strings.Builder
	w := func(format string, args ...any) { b.WriteString(fmt.Sprintf(format+"\n", args...)) }

	w("Certificate:")
	w("    Serial Number: %s", cert.SerialNumber)
	w("    Subject: %s", certid.SubjectString(cert))
	w("    Issuer:  %s", cert.Issuer)
	validity := ""
	if !opts.Now.IsZero() {
		switch {
		case opts.Now.Before(cert.NotBefore):
			validity = "  [not yet valid]"
		case opts.Now.After(cert.NotAfter):
			validity = "  [EXPIRED]"
		default:
			validity = "  [valid]"
		}
	}
	w("    Validity:")
	w("        Not Before: %s", cert.NotBefore.Format(time.RFC3339))
	w("        Not After:  %s%s", cert.NotAfter.Format(time.RFC3339), validity)
	w("    Public Key: %s", describeKey(cert))
	w("    Basic Constraints: CA=%v%s", cert.IsCA, pathLen(cert))
	if ku := keyUsage(cert.KeyUsage); ku != "" {
		w("    Key Usage: %s", ku)
	}
	if len(cert.ExtKeyUsage) > 0 {
		w("    Extended Key Usage: %s", extKeyUsage(cert.ExtKeyUsage))
	}
	if len(cert.DNSNames) > 0 {
		w("    Subject Alternative Names: %s", strings.Join(cert.DNSNames, ", "))
	}
	if selfIssued := string(cert.RawSubject) == string(cert.RawIssuer); selfIssued {
		w("    Self-issued: true")
	}
	w("    Fingerprints:")
	w("        SHA-1:   %s", certid.SHA1Fingerprint(cert))
	w("        SHA-256: %s", certid.SHA256Fingerprint(cert))
	w("        Android subject hash: %s", certid.SubjectHashString(cert))
	if opts.ShowPEM {
		b.WriteString(pemEncode(cert))
	}
	return b.String()
}

// RenderChain renders a chain leaf-first, with position labels.
func RenderChain(chain []*x509.Certificate, opts Options) string {
	var b strings.Builder
	for i, c := range chain {
		role := "intermediate"
		switch {
		case i == 0 && len(chain) == 1:
			role = "certificate"
		case i == 0:
			role = "leaf"
		case i == len(chain)-1:
			role = "root"
		}
		b.WriteString(fmt.Sprintf("--- chain[%d] (%s) ---\n", i, role))
		b.WriteString(Render(c, opts))
	}
	return b.String()
}

func describeKey(cert *x509.Certificate) string {
	switch pub := cert.PublicKey.(type) {
	case *rsa.PublicKey:
		return fmt.Sprintf("RSA %d bits (e=%d)", pub.N.BitLen(), pub.E)
	case *ecdsa.PublicKey:
		return fmt.Sprintf("ECDSA %s", pub.Curve.Params().Name)
	default:
		return fmt.Sprintf("%T", pub)
	}
}

func pathLen(cert *x509.Certificate) string {
	if !cert.IsCA {
		return ""
	}
	if cert.MaxPathLen > 0 || (cert.MaxPathLen == 0 && cert.MaxPathLenZero) {
		return fmt.Sprintf(", pathlen=%d", cert.MaxPathLen)
	}
	return ""
}

var keyUsageNames = []struct {
	bit  x509.KeyUsage
	name string
}{
	{x509.KeyUsageDigitalSignature, "digital-signature"},
	{x509.KeyUsageContentCommitment, "content-commitment"},
	{x509.KeyUsageKeyEncipherment, "key-encipherment"},
	{x509.KeyUsageDataEncipherment, "data-encipherment"},
	{x509.KeyUsageKeyAgreement, "key-agreement"},
	{x509.KeyUsageCertSign, "cert-sign"},
	{x509.KeyUsageCRLSign, "crl-sign"},
	{x509.KeyUsageEncipherOnly, "encipher-only"},
	{x509.KeyUsageDecipherOnly, "decipher-only"},
}

func keyUsage(ku x509.KeyUsage) string {
	var parts []string
	for _, n := range keyUsageNames {
		if ku&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, ", ")
}

var extKeyUsageNames = map[x509.ExtKeyUsage]string{
	x509.ExtKeyUsageServerAuth:      "server-auth",
	x509.ExtKeyUsageClientAuth:      "client-auth",
	x509.ExtKeyUsageCodeSigning:     "code-signing",
	x509.ExtKeyUsageEmailProtection: "email-protection",
	x509.ExtKeyUsageTimeStamping:    "time-stamping",
	x509.ExtKeyUsageOCSPSigning:     "ocsp-signing",
}

func extKeyUsage(ekus []x509.ExtKeyUsage) string {
	parts := make([]string, 0, len(ekus))
	for _, e := range ekus {
		if n, ok := extKeyUsageNames[e]; ok {
			parts = append(parts, n)
		} else {
			parts = append(parts, fmt.Sprintf("eku(%d)", e))
		}
	}
	return strings.Join(parts, ", ")
}

func pemEncode(cert *x509.Certificate) string {
	const line = 64
	var b strings.Builder
	b.WriteString("-----BEGIN CERTIFICATE-----\n")
	enc := base64Std(cert.Raw)
	for i := 0; i < len(enc); i += line {
		end := i + line
		if end > len(enc) {
			end = len(enc)
		}
		b.WriteString(enc[i:end])
		b.WriteByte('\n')
	}
	b.WriteString("-----END CERTIFICATE-----\n")
	return b.String()
}
