package obs

import (
	"sort"
	"sync"
)

// DefaultBuckets are the default histogram bucket upper bounds, in
// milliseconds: a latency-shaped geometric ladder from sub-millisecond to
// ten seconds. Values above the last bound land in the overflow bucket.
var DefaultBuckets = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a bounded-bucket histogram: a fixed, sorted set of upper
// bounds plus an overflow bucket. A value v lands in the first bucket with
// v <= bound (bounds are inclusive upper edges), or in overflow when it
// exceeds every bound. A nil Histogram no-ops.
type Histogram struct {
	bounds []float64

	mu       sync.Mutex
	counts   []uint64
	overflow uint64
	count    uint64
	sum      float64
}

// newHistogram builds a histogram over sorted, deduplicated bounds.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	dedup := sorted[:0]
	for i, b := range sorted {
		if i == 0 || b != sorted[i-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{bounds: dedup, counts: make([]uint64, len(dedup))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// sort.SearchFloat64s finds the first bound >= v, which is exactly the
	// inclusive-upper-edge bucket; equal-to-bound values stay below.
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if i < len(h.bounds) {
		h.counts[i]++
	} else {
		h.overflow++
	}
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:    h.count,
		Sum:      h.sum,
		Overflow: h.overflow,
		Buckets:  make([]Bucket, len(h.bounds)),
	}
	for i, b := range h.bounds {
		s.Buckets[i] = Bucket{UpperBound: b, Count: h.counts[i]}
	}
	return s
}

// Bucket is one histogram bucket: the count of observations at or below
// UpperBound and above the previous bound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is an immutable capture of a Histogram, mergeable with
// snapshots taken from histograms with any bucket layout.
type HistogramSnapshot struct {
	Count    uint64   `json:"count"`
	Sum      float64  `json:"sum"`
	Overflow uint64   `json:"overflow"`
	Buckets  []Bucket `json:"buckets"`
}

// Merge combines two snapshots. Buckets are merged by upper bound — the
// union of both bound sets, with counts at equal bounds summed — which
// makes Merge associative and commutative: merging per-worker snapshots in
// any grouping yields the same result, the property the campaign
// aggregation relies on.
func (s HistogramSnapshot) Merge(other HistogramSnapshot) HistogramSnapshot {
	byBound := make(map[float64]uint64, len(s.Buckets)+len(other.Buckets))
	for _, b := range s.Buckets {
		byBound[b.UpperBound] += b.Count
	}
	for _, b := range other.Buckets {
		byBound[b.UpperBound] += b.Count
	}
	bounds := make([]float64, 0, len(byBound))
	for b := range byBound {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	out := HistogramSnapshot{
		Count:    s.Count + other.Count,
		Sum:      s.Sum + other.Sum,
		Overflow: s.Overflow + other.Overflow,
		Buckets:  make([]Bucket, len(bounds)),
	}
	for i, b := range bounds {
		out.Buckets[i] = Bucket{UpperBound: b, Count: byBound[b]}
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucketed counts
// by linear interpolation within the containing bucket, the standard
// Prometheus histogram_quantile estimator. The first bucket interpolates
// from zero; observations in the overflow region clamp to the largest
// bound — the estimate is then a lower bound, which is the conservative
// direction for an SLO gate (overflow means the gate fails anyway). An
// empty snapshot reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, b := range s.Buckets {
		prevCum := cum
		cum += b.Count
		if float64(cum) < rank {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = s.Buckets[i-1].UpperBound
		}
		if b.Count == 0 {
			return b.UpperBound
		}
		frac := (rank - float64(prevCum)) / float64(b.Count)
		return lower + (b.UpperBound-lower)*frac
	}
	// The rank falls in the overflow region.
	return s.Buckets[len(s.Buckets)-1].UpperBound
}
