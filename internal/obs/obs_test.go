package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	o := New()
	c := o.Counter("test.ops.total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if o.Counter("test.ops.total") != c {
		t.Error("same name should return the same counter")
	}
	g := o.Gauge("test.conns.active")
	g.Set(7)
	g.Dec()
	g.Add(2)
	if got := g.Value(); got != 8 {
		t.Errorf("gauge = %d, want 8", got)
	}
}

// TestNilSafety: every instrument handed out by a nil Observer must no-op,
// so instrumented code paths never branch on observability being wired.
func TestNilSafety(t *testing.T) {
	var o *Observer
	o.Counter("test.x").Inc()
	o.Gauge("test.x").Set(3)
	o.Histogram("test.x", nil).Observe(1)
	sp := o.StartSpan("s", "test.stage")
	sp.End()
	if got := o.Counter("test.x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if n := len(o.RecentSpans()); n != 0 {
		t.Errorf("nil observer has %d recent spans", n)
	}
	s := o.Snapshot()
	if len(s.Counters) != 0 || len(s.Spans) != 0 {
		t.Errorf("nil observer snapshot not empty: %+v", s)
	}
}

// TestHistogramBucketEdges pins the inclusive-upper-edge semantics: a value
// equal to a bound lands in that bound's bucket, just above it lands in the
// next, and values beyond the last bound land in overflow.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0, 1, 1.0001, 10, 10.5, 100, 100.0001, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	// Inclusive upper edges: le=1 gets {0, 1}; le=10 gets {1.0001, 10};
	// le=100 gets {10.5, 100}; overflow gets {100.0001, 5000}.
	want := []uint64{2, 2, 2}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket le=%v count = %d, want %d", b.UpperBound, b.Count, want[i])
		}
	}
	if s.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", s.Overflow)
	}
	if s.Sum != 0+1+1.0001+10+10.5+100+100.0001+5000 {
		t.Errorf("sum = %v", s.Sum)
	}
}

// TestHistogramBoundsNormalized: construction sorts and deduplicates the
// bounds, so callers cannot produce ambiguous bucket layouts.
func TestHistogramBoundsNormalized(t *testing.T) {
	h := newHistogram([]float64{100, 1, 10, 1})
	s := h.Snapshot()
	if len(s.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3 after dedup", len(s.Buckets))
	}
	for i, want := range []float64{1, 10, 100} {
		if s.Buckets[i].UpperBound != want {
			t.Errorf("bound[%d] = %v, want %v", i, s.Buckets[i].UpperBound, want)
		}
	}
}

// TestHistogramMergeAssociative: merging snapshots with different bucket
// layouts must be associative — (a+b)+c == a+(b+c) — because the campaign
// merges per-worker and per-service snapshots in nondeterministic
// groupings and still must produce identical aggregates.
func TestHistogramMergeAssociative(t *testing.T) {
	mk := func(bounds []float64, values ...float64) HistogramSnapshot {
		h := newHistogram(bounds)
		for _, v := range values {
			h.Observe(v)
		}
		return h.Snapshot()
	}
	a := mk([]float64{1, 10}, 0.5, 5, 500)
	b := mk([]float64{2, 10, 50}, 1.5, 20, 9)
	c := mk([]float64{10}, 3, 1000, 7)

	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if !reflect.DeepEqual(left, right) {
		t.Errorf("merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", left, right)
	}
	if !reflect.DeepEqual(a.Merge(b), b.Merge(a)) {
		t.Error("merge not commutative")
	}
	if left.Count != 9 {
		t.Errorf("merged count = %d, want 9", left.Count)
	}
	// Equal bounds across inputs must sum at the shared bound.
	total := uint64(0)
	for _, bk := range left.Buckets {
		total += bk.Count
	}
	if total+left.Overflow != left.Count {
		t.Errorf("bucket counts %d + overflow %d != count %d", total, left.Overflow, left.Count)
	}
}

// TestSnapshotMergeAssociative covers the whole-observer merge the campaign
// aggregation uses.
func TestSnapshotMergeAssociative(t *testing.T) {
	mk := func(n int64) Snapshot {
		o := New(WithClock(func() time.Time { return time.Unix(0, 0) }))
		o.Counter("test.ops.total").Add(n)
		o.Gauge("test.level").Add(n)
		o.Histogram("test.size", []float64{1, 10}).Observe(float64(n))
		o.StartSpan("s", "test.stage").End()
		return o.Snapshot()
	}
	a, b, c := mk(1), mk(2), mk(3)
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if !reflect.DeepEqual(left, right) {
		t.Errorf("snapshot merge not associative:\n%+v\n%+v", left, right)
	}
	if left.Counters["test.ops.total"] != 6 {
		t.Errorf("merged counter = %d, want 6", left.Counters["test.ops.total"])
	}
	if left.Spans["test.stage"].Count != 3 {
		t.Errorf("merged span count = %d, want 3", left.Spans["test.stage"].Count)
	}
}

// TestSpans: spans aggregate per stage; the frozen clock pins durations.
func TestSpans(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	o := New(WithClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(2 * time.Millisecond)
		return now
	}))
	for i := 0; i < 3; i++ {
		sp := o.StartSpan("session-1", "test.stage")
		sp.End()
	}
	s := o.Snapshot()
	agg := s.Spans["test.stage"]
	if agg.Count != 3 {
		t.Fatalf("span count = %d, want 3", agg.Count)
	}
	if agg.Durations.Count != 3 {
		t.Errorf("duration observations = %d, want 3", agg.Durations.Count)
	}
	if agg.Durations.Sum != 6 { // 3 spans x 2ms
		t.Errorf("duration sum = %vms, want 6", agg.Durations.Sum)
	}
	rec := o.RecentSpans()
	if len(rec) != 3 || rec[0].Session != "session-1" || rec[0].Duration != 2*time.Millisecond {
		t.Errorf("recent spans = %+v", rec)
	}
}

// TestSnapshotJSONDeterministic: two observers fed identical values render
// byte-identical JSON — the property the fixed-seed campaign gate asserts.
func TestSnapshotJSONDeterministic(t *testing.T) {
	frozen := func() time.Time { return time.Unix(42, 0) }
	mk := func() []byte {
		o := New(WithClock(frozen))
		// Register in different orders; maps must still render sorted.
		keys := []string{"test.b", "test.a", "test.c"}
		for _, k := range keys {
			o.Counter(k).Add(3)
		}
		o.StartSpan("s1", "test.stage").End()
		o.Histogram("test.h", []float64{1, 5}).Observe(2)
		b, err := o.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	if string(a) != string(b) {
		t.Errorf("snapshot JSON differs across identical runs:\n%s\n%s", a, b)
	}
}

func TestHandler(t *testing.T) {
	o := New()
	o.Counter("test.requests.total").Add(9)
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding handler body: %v", err)
	}
	if snap.Counters["test.requests.total"] != 9 {
		t.Errorf("handler counter = %d, want 9", snap.Counters["test.requests.total"])
	}
	post, err := cl.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

// TestConcurrentUse exercises the registry and instruments under the race
// detector.
func TestConcurrentUse(t *testing.T) {
	o := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.Counter("test.n").Inc()
				o.Gauge("test.g").Add(1)
				o.Histogram("test.h", nil).Observe(float64(i))
				o.StartSpan("w", "test.stage").End()
				_ = o.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := o.Counter("test.n").Value(); got != 1600 {
		t.Errorf("counter = %d, want 1600", got)
	}
}
