package obs

import (
	"sync/atomic"
	"time"
)

// recentCap bounds the ring of recently completed spans kept for the debug
// endpoint's "what just happened" view.
const recentCap = 128

// spanAgg accumulates one stage's completed spans. The count is atomic so
// Snapshot can read it outside the observer's registry lock, symmetric with
// the internally locked histogram.
type spanAgg struct {
	count     atomic.Int64
	durations *Histogram
}

// Span is one in-flight timed operation, keyed by (session, stage): the
// session identifies the logical flow ("session-17", a device model, a
// connection id), the stage the pipeline step ("netalyzr.probe",
// "campaign.session"). End records the duration into the stage's
// aggregate. A nil Span no-ops, so spans thread through uninstrumented
// code paths for free.
type Span struct {
	o       *Observer
	session string
	stage   string
	start   time.Time
}

// SpanRecord is one completed span, as retained in the recent-spans ring.
type SpanRecord struct {
	Session  string        `json:"session"`
	Stage    string        `json:"stage"`
	Duration time.Duration `json:"duration"`
}

// StartSpan opens a span for (session, stage). The stage names the
// aggregate the duration lands in; the session labels the flow in the
// recent-spans ring. A nil Observer returns a nil (no-op) Span.
func (o *Observer) StartSpan(session, stage string) *Span {
	if o == nil {
		return nil
	}
	return &Span{o: o, session: session, stage: stage, start: o.now()}
}

// End closes the span, recording its duration (in milliseconds) into the
// stage's aggregate and the recent-spans ring. End is idempotent in effect
// only if called once; call it exactly once, conveniently via defer.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := s.o.now().Sub(s.start)
	ms := float64(d) / float64(time.Millisecond)
	s.o.mu.Lock()
	agg := s.o.spans[s.stage]
	if agg == nil {
		agg = &spanAgg{durations: newHistogram(nil)}
		s.o.spans[s.stage] = agg
	}
	s.o.recent = append(s.o.recent, SpanRecord{Session: s.session, Stage: s.stage, Duration: d})
	if len(s.o.recent) > recentCap {
		s.o.recent = s.o.recent[len(s.o.recent)-recentCap:]
	}
	s.o.mu.Unlock()
	// The count and histogram are safe outside the observer lock.
	agg.count.Add(1)
	agg.durations.Observe(ms)
}

// RecentSpans returns the most recently completed spans, oldest first.
// The ring is a debugging aid: its order depends on goroutine
// interleaving, which is why it is excluded from Snapshot — Snapshot stays
// byte-identical across same-seed runs.
func (o *Observer) RecentSpans() []SpanRecord {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]SpanRecord, len(o.recent))
	copy(out, o.recent)
	return out
}
