// Package obs is the pipeline's zero-dependency observability layer:
// atomic counters and gauges, bounded-bucket histograms with mergeable
// snapshots, and lightweight span tracing keyed by (session, stage). The
// paper's results are aggregate counts over a measurement pipeline; this
// package makes the pipeline's runtime behaviour — retry storms, breaker
// trips, probe latencies, ingest rates — visible at the same granularity,
// both live (the JSON debug handler mounted on the daemons) and per run
// (campaign aggregates a Snapshot).
//
// Determinism is a design constraint, not an afterthought: all clock access
// flows through an injectable clock, counter values are pure functions of
// pipeline outcomes, and Snapshot marshals through sorted map keys, so a
// fixed-seed campaign run produces byte-identical Snapshot JSON across
// runs. That is what lets the chaos harness reconcile obs counters exactly
// against the faultnet ledger.
//
// Every accessor is nil-safe: a nil *Observer hands out nil instruments
// whose methods no-op, so instrumented code never branches on "is
// observability wired up".
//
// Metric and span-stage names are package-prefixed compile-time constants
// ("collect.submit.total", "netalyzr.probe") — the obskey lint rule
// enforces this, which keeps the metric registry greppable and the
// debug-endpoint key space stable.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Observer owns a namespace of instruments. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Observer struct {
	now func() time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanAgg
	recent   []SpanRecord
}

// Option configures an Observer.
type Option func(*Observer)

// WithClock substitutes the time source spans measure with. Chaos and
// campaign tests freeze it so span durations — and therefore Snapshot
// bytes — are identical across runs.
func WithClock(now func() time.Time) Option {
	return func(o *Observer) { o.now = now }
}

// New builds an empty Observer on the system clock.
func New(opts ...Option) *Observer {
	o := &Observer{
		now:      time.Now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*spanAgg),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Counter returns the named monotonic counter, creating it on first use.
// A nil Observer returns a nil (no-op) Counter.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.counters[name]
	if c == nil {
		c = &Counter{}
		o.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil Observer
// returns a nil (no-op) Gauge.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	g := o.gauges[name]
	if g == nil {
		g = &Gauge{}
		o.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the existing instrument and
// ignore the bounds). Nil or empty bounds mean DefaultBuckets. A nil
// Observer returns a nil (no-op) Histogram.
func (o *Observer) Histogram(name string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	h := o.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		o.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter. A nil Counter
// no-ops, so instrumented code needs no nil checks.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored so the
// counter stays monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count. A nil Counter reads zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value — connection counts, breaker
// states. A nil Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add applies a signed delta.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value. A nil Gauge reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
