package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// SpanSnapshot is one stage's completed-span aggregate.
type SpanSnapshot struct {
	Count     int64             `json:"count"`
	Durations HistogramSnapshot `json:"durations_ms"`
}

// Snapshot is an immutable capture of an Observer. All fields are maps, so
// encoding/json renders keys in sorted order — a fixed-seed run produces
// byte-identical JSON across runs, which the chaos gate asserts. The
// recent-spans ring is deliberately absent: its order is scheduling-
// dependent.
type Snapshot struct {
	Counters map[string]int64             `json:"counters"`
	Gauges   map[string]int64             `json:"gauges"`
	Hists    map[string]HistogramSnapshot `json:"histograms"`
	Spans    map[string]SpanSnapshot      `json:"spans"`
}

// Snapshot captures every instrument's current value. A nil Observer
// yields an empty (but non-nil-mapped) Snapshot.
func (o *Observer) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistogramSnapshot{},
		Spans:    map[string]SpanSnapshot{},
	}
	if o == nil {
		return s
	}
	o.mu.Lock()
	counters := make(map[string]*Counter, len(o.counters))
	for k, v := range o.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(o.gauges))
	for k, v := range o.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(o.hists))
	for k, v := range o.hists {
		hists[k] = v
	}
	spans := make(map[string]*spanAgg, len(o.spans))
	for k, v := range o.spans {
		spans[k] = v
	}
	o.mu.Unlock()

	// Instrument reads take their own locks; do them outside the registry
	// lock so a slow snapshot never stalls the hot path.
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Hists[k] = h.Snapshot()
	}
	for k, a := range spans {
		s.Spans[k] = SpanSnapshot{Count: a.count.Load(), Durations: a.durations.Snapshot()}
	}
	return s
}

// Merge combines two snapshots: counters, gauges and span counts sum,
// histograms merge bucket-wise. Merge is associative and commutative, so
// per-worker or per-service snapshots can be combined in any grouping.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistogramSnapshot{},
		Spans:    map[string]SpanSnapshot{},
	}
	for k, v := range s.Counters {
		out.Counters[k] += v
	}
	for k, v := range other.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range other.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range s.Hists {
		out.Hists[k] = out.Hists[k].Merge(v)
	}
	for k, v := range other.Hists {
		out.Hists[k] = out.Hists[k].Merge(v)
	}
	merge := func(k string, v SpanSnapshot) {
		cur := out.Spans[k]
		out.Spans[k] = SpanSnapshot{
			Count:     cur.Count + v.Count,
			Durations: cur.Durations.Merge(v.Durations),
		}
	}
	for k, v := range s.Spans {
		merge(k, v)
	}
	for k, v := range other.Spans {
		merge(k, v)
	}
	return out
}

// JSON renders the snapshot as stable, indented JSON. Map keys marshal in
// sorted order, so equal snapshots render to equal bytes.
func (s Snapshot) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}
