package obs

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns an expvar-style debug handler that serves the observer's
// current Snapshot as indented JSON. The daemons mount it on their -debug
// listener; `make metrics-smoke` scrapes it as a liveness gate. A nil
// Observer serves the empty snapshot.
func Handler(o *Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := o.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// The client is a scraper; a failed write is its problem to retry.
		_, _ = w.Write(body)
	})
}

// HandlerFunc is Handler for composite snapshot sources — anything that
// assembles its snapshot from several observers, like the sharded notary
// cluster merging router and per-shard metrics. fn is called per request.
func HandlerFunc(fn func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := fn().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(body)
	})
}

// ServeDebug starts the debug endpoint on addr in a background goroutine,
// mounting Handler at /debug/vars (and at / for curl convenience). It
// returns the bound listener — callers print its address and close it on
// shutdown. The server dies with the listener; scrape errors are the
// scraper's problem.
func ServeDebug(addr string, o *Observer) (net.Listener, error) {
	return ServeDebugFunc(addr, o.Snapshot)
}

// ServeDebugFunc is ServeDebug over a snapshot function instead of a
// single Observer.
func ServeDebugFunc(addr string, fn func() Snapshot) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on debug addr %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", HandlerFunc(fn))
	mux.Handle("/debug/vars", HandlerFunc(fn))
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
