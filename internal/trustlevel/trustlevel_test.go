package trustlevel

import (
	"crypto/x509"
	"testing"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certgen"
	"tangledmass/internal/certid"
	"tangledmass/internal/rootstore"
)

func TestUsageMask(t *testing.T) {
	u := ServerAuth | CodeSigning
	if !u.Has(ServerAuth) || !u.Has(CodeSigning) || u.Has(EmailProtection) {
		t.Error("mask semantics wrong")
	}
	if !AllUsages.Has(ServerAuth | EmailProtection | CodeSigning) {
		t.Error("AllUsages incomplete")
	}
	if got := u.String(); got != "server-auth+code-signing" {
		t.Errorf("String = %q", got)
	}
	if Usage(0).String() != "none" {
		t.Error("zero mask should render as none")
	}
}

func TestPolicyDefaultsAndOverrides(t *testing.T) {
	uni := cauniverse.Default()
	store := uni.AOSP("4.4")
	p := NewPolicy(store, AllUsages)
	someID := certid.IdentityOf(store.Certificates()[0])
	if p.UsageOf(someID) != AllUsages {
		t.Error("default usage not applied")
	}
	p.SetUsage(someID, CodeSigning)
	if p.UsageOf(someID) != CodeSigning {
		t.Error("override not applied")
	}
	// A root outside the store has no usage at all.
	outside := certid.IdentityOf(uni.Root("CRAZY HOUSE").Issued.Cert)
	if p.UsageOf(outside) != 0 {
		t.Error("non-member should have zero usage")
	}
}

func TestAndroidPolicyGrantsEverything(t *testing.T) {
	uni := cauniverse.Default()
	// A device store with a firmware FOTA root, as Motorola ships.
	store := uni.AOSP("4.4").Clone("moto")
	fota := uni.Root("Motorola FOTA Root CA").Issued.Cert
	store.Add(fota)
	p := AndroidPolicy(store)
	if !p.UsageOf(certid.IdentityOf(fota)).Has(ServerAuth) {
		t.Error("Android policy should (problematically) grant FOTA root server-auth")
	}
	if got := len(p.RootsFor(ServerAuth)); got != store.Len() {
		t.Errorf("server-auth roots = %d, want all %d", got, store.Len())
	}
}

func TestMozillaStylePolicyRestricts(t *testing.T) {
	uni := cauniverse.Default()
	store := uni.AggregatedAndroid()
	p := MozillaStylePolicy(uni, store)

	fota := certid.IdentityOf(uni.Root("Motorola FOTA Root CA").Issued.Cert)
	if got := p.UsageOf(fota); got != CodeSigning {
		t.Errorf("FOTA usage = %v, want code-signing only", got)
	}
	cfca := certid.IdentityOf(uni.Root("CFCA Root CA").Issued.Cert)
	if got := p.UsageOf(cfca); got.Has(CodeSigning) || !got.Has(ServerAuth) {
		t.Errorf("recorded extra usage = %v", got)
	}
	shared := certid.IdentityOf(uni.AOSP("4.4").Certificates()[0])
	if p.UsageOf(shared) != AllUsages {
		t.Error("program roots keep full usage")
	}
}

// TestFOTASignedTLSLeaf is the §8 attack-surface demonstration: a leaf for
// gmail.com minted under the firmware-update root validates under Android's
// all-usage policy but not under the Mozilla-style one.
func TestFOTASignedTLSLeaf(t *testing.T) {
	uni := cauniverse.Default()
	fotaRoot := uni.Root("Motorola FOTA Root CA")
	leaf, err := uni.Generator().Leaf(fotaRoot.Issued, "gmail.com",
		certgen.WithKeyName("fota-abuse-leaf"))
	if err != nil {
		t.Fatal(err)
	}
	// Device store: AOSP 4.4 + the FOTA root (a Motorola firmware image).
	store := uni.AOSP("4.4").Clone("moto 4.4")
	store.Add(fotaRoot.Issued.Cert)

	android := AndroidPolicy(store)
	vAndroid := android.VerifierFor(ServerAuth, nil, certgen.Epoch)
	if !vAndroid.Validates(leaf.Cert) {
		t.Error("Android policy should accept the FOTA-signed TLS leaf — that is the §8 problem")
	}

	mozilla := MozillaStylePolicy(uni, store)
	vMozilla := mozilla.VerifierFor(ServerAuth, nil, certgen.Epoch)
	if vMozilla.Validates(leaf.Cert) {
		t.Error("Mozilla-style policy must reject the FOTA-signed TLS leaf")
	}
	// But the same root still signs firmware under code-signing usage.
	vCode := mozilla.VerifierFor(CodeSigning, nil, certgen.Epoch)
	if !vCode.Validates(leaf.Cert) {
		t.Error("FOTA root should remain valid for code-signing")
	}
}

func TestSurfaceReport(t *testing.T) {
	uni := cauniverse.Default()
	store := uni.AggregatedAndroid()
	android := Surface("android", AndroidPolicy(store))
	mozilla := Surface("mozilla-style", MozillaStylePolicy(uni, store))
	if android.ServerAuthRoots != store.Len() {
		t.Errorf("android surface = %d, want %d", android.ServerAuthRoots, store.Len())
	}
	if android.RemovedFraction() != 0 {
		t.Error("android removes nothing")
	}
	// The unrecorded extras (50) plus nothing else lose server-auth.
	want := store.Len() - 50
	if mozilla.ServerAuthRoots != want {
		t.Errorf("mozilla-style surface = %d, want %d", mozilla.ServerAuthRoots, want)
	}
	if f := mozilla.RemovedFraction(); f < 0.15 || f > 0.25 {
		t.Errorf("removed fraction = %.3f, want ≈0.19", f)
	}
}

func TestRootsForReturnsCertificates(t *testing.T) {
	uni := cauniverse.Default()
	p := MozillaStylePolicy(uni, uni.AggregatedAndroid())
	var seen []*x509.Certificate
	seen = p.RootsFor(CodeSigning)
	// Code-signing keeps everything except the zero-usage classes (none of
	// which are in the aggregated store) minus recorded extras (restricted
	// to server-auth+email).
	want := uni.AggregatedAndroid().Len() - 30
	if len(seen) != want {
		t.Errorf("code-signing roots = %d, want %d", len(seen), want)
	}
	s := rootstore.New("check")
	s.AddAll(seen)
	if s.Len() != len(seen) {
		t.Error("duplicate roots returned")
	}
}
