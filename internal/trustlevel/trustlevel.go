// Package trustlevel models per-usage trust restrictions — the mechanism
// the paper points out Android lacks (§2: "Android does not support
// specifying trust levels for different CA certificates: they can be used
// for any operation from TLS server verification to code signing"; §8
// recommends adopting Mozilla's approach).
//
// A Policy wraps a root store with a usage mask per root. The Android
// policy grants every root every usage; a Mozilla-style policy restricts
// special-purpose roots (firmware update, code signing, payment) away from
// TLS server authentication. The package quantifies the §8 counterfactual:
// how much TLS attack surface per-usage trust would remove.
package trustlevel

import (
	"crypto/x509"
	"time"

	"tangledmass/internal/cauniverse"
	"tangledmass/internal/certid"
	"tangledmass/internal/chain"
	"tangledmass/internal/corpus"
	"tangledmass/internal/rootstore"
)

// Usage is a bit mask of operations a root is trusted for.
type Usage uint8

const (
	// ServerAuth is TLS server authentication (the Web PKI usage).
	ServerAuth Usage = 1 << iota
	// EmailProtection is S/MIME.
	EmailProtection
	// CodeSigning covers code, firmware (FOTA), and app signing.
	CodeSigning
)

// AllUsages is Android's effective grant for every root-store member.
const AllUsages = ServerAuth | EmailProtection | CodeSigning

// Has reports whether u includes all bits of q.
func (u Usage) Has(q Usage) bool { return u&q == q }

// String renders the mask.
func (u Usage) String() string {
	if u == 0 {
		return "none"
	}
	s := ""
	add := func(bit Usage, name string) {
		if u.Has(bit) {
			if s != "" {
				s += "+"
			}
			s += name
		}
	}
	add(ServerAuth, "server-auth")
	add(EmailProtection, "email")
	add(CodeSigning, "code-signing")
	return s
}

// Policy is a root store with per-root usage masks. Construct with
// NewPolicy; roots without an explicit mask get the default.
type Policy struct {
	store        *rootstore.Store
	defaultUsage Usage
	usage        map[certid.Identity]Usage
}

// NewPolicy wraps store with the given default usage for unlisted roots.
func NewPolicy(store *rootstore.Store, defaultUsage Usage) *Policy {
	return &Policy{
		store:        store,
		defaultUsage: defaultUsage,
		usage:        make(map[certid.Identity]Usage),
	}
}

// Store returns the underlying store.
func (p *Policy) Store() *rootstore.Store { return p.store }

// SetUsage overrides one root's mask.
func (p *Policy) SetUsage(id certid.Identity, u Usage) {
	p.usage[id] = u
}

// UsageOf returns a root's effective mask (the default if unset, zero if
// the root is not in the store).
func (p *Policy) UsageOf(id certid.Identity) Usage {
	if !p.store.ContainsIdentity(id) {
		return 0
	}
	if u, ok := p.usage[id]; ok {
		return u
	}
	return p.defaultUsage
}

// RootsFor returns the store's roots trusted for usage u.
func (p *Policy) RootsFor(u Usage) []*x509.Certificate {
	var out []*x509.Certificate
	for _, c := range p.store.Certificates() {
		if p.UsageOf(corpus.IdentityOf(c)).Has(u) {
			out = append(out, c)
		}
	}
	return out
}

// VerifierFor builds a chain verifier restricted to the roots trusted for
// usage u.
func (p *Policy) VerifierFor(u Usage, intermediates []*x509.Certificate, at time.Time) *chain.Verifier {
	return chain.NewVerifier(p.RootsFor(u), intermediates, at)
}

// AndroidPolicy models the platform as shipped: every root in the store is
// trusted for everything (§2).
func AndroidPolicy(store *rootstore.Store) *Policy {
	return NewPolicy(store, AllUsages)
}

// MozillaStylePolicy models the §8 recommendation applied to a device
// store: web-PKI roots keep server-auth, while special-purpose roots —
// firmware/code-signing and operator-service roots that never appear in TLS
// traffic — lose it. The assignment is derived from the universe's catalog
// classes:
//
//   - unrecorded extras (FOTA, SUPL, UTI, code-signing, operator APIs):
//     code-signing only;
//   - recorded Android-only extras: server-auth + email (observed in
//     traffic, but would require an audit to keep more);
//   - everything shipped by the AOSP/Mozilla/iOS programs: full usage.
func MozillaStylePolicy(u *cauniverse.Universe, store *rootstore.Store) *Policy {
	p := NewPolicy(store, AllUsages)
	for _, r := range u.Roots() {
		id := corpus.IdentityOf(r.Issued.Cert)
		if !store.ContainsIdentity(id) {
			continue
		}
		switch r.Class {
		case cauniverse.ExtraUnrecorded:
			p.SetUsage(id, CodeSigning)
		case cauniverse.ExtraAndroidRecorded:
			p.SetUsage(id, ServerAuth|EmailProtection)
		case cauniverse.RootedOnly, cauniverse.Interception:
			p.SetUsage(id, 0)
		}
	}
	return p
}

// SurfaceReport quantifies the TLS attack surface of a policy: how many
// roots can mint acceptable TLS server certificates.
type SurfaceReport struct {
	PolicyName      string
	TotalRoots      int
	ServerAuthRoots int
}

// RemovedFraction is the share of roots excluded from TLS.
func (r SurfaceReport) RemovedFraction() float64 {
	if r.TotalRoots == 0 {
		return 0
	}
	return 1 - float64(r.ServerAuthRoots)/float64(r.TotalRoots)
}

// Surface computes the report for a policy.
func Surface(name string, p *Policy) SurfaceReport {
	return SurfaceReport{
		PolicyName:      name,
		TotalRoots:      p.Store().Len(),
		ServerAuthRoots: len(p.RootsFor(ServerAuth)),
	}
}
