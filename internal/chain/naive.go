package chain

import (
	"crypto/x509"
	"time"

	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
)

// NaiveVerifier is the baseline path builder for the chain-index ablation:
// it scans every pool certificate linearly when looking for an issuer
// instead of indexing candidates by subject. Results are identical to
// Verifier; only the lookup strategy differs.
type NaiveVerifier struct {
	at       time.Time
	maxDepth int
	roots    map[certid.Identity]*x509.Certificate
	pool     []*x509.Certificate
}

// NewNaiveVerifier mirrors NewVerifier without building the subject index.
func NewNaiveVerifier(roots, intermediates []*x509.Certificate, at time.Time) *NaiveVerifier {
	n := &NaiveVerifier{
		at:       at,
		maxDepth: DefaultMaxDepth,
		roots:    make(map[certid.Identity]*x509.Certificate, len(roots)),
	}
	for _, r := range roots {
		id := corpus.IdentityOf(r)
		if _, dup := n.roots[id]; dup {
			continue
		}
		n.roots[id] = r
		n.pool = append(n.pool, r)
	}
	n.pool = append(n.pool, intermediates...)
	return n
}

func (n *NaiveVerifier) timeValid(c *x509.Certificate) bool {
	return !n.at.Before(c.NotBefore) && !n.at.After(c.NotAfter)
}

// Validates reports whether cert chains to any trusted root.
func (n *NaiveVerifier) Validates(cert *x509.Certificate) bool {
	if !n.timeValid(cert) {
		return false
	}
	visited := map[certid.Identity]bool{corpus.IdentityOf(cert): true}
	return n.search(cert, visited, 1)
}

func (n *NaiveVerifier) search(tip *x509.Certificate, visited map[certid.Identity]bool, depth int) bool {
	if _, ok := n.roots[corpus.IdentityOf(tip)]; ok {
		return true
	}
	if depth >= n.maxDepth {
		return false
	}
	for _, cand := range n.pool {
		if !cand.IsCA || !n.timeValid(cand) {
			continue
		}
		if string(cand.RawSubject) != string(tip.RawIssuer) {
			continue
		}
		id := corpus.IdentityOf(cand)
		if visited[id] {
			continue
		}
		if err := tip.CheckSignatureFrom(cand); err != nil {
			continue
		}
		visited[id] = true
		if n.search(cand, visited, depth+1) {
			return true
		}
		delete(visited, id)
	}
	return false
}
