package chain

// Metric keys the chain-validation cache emits (see the registry in
// README.md). Package-prefixed compile-time constants, per the obskey lint
// rule.
const (
	// KeyCacheHits counts validation-outcome lookups answered from cache.
	KeyCacheHits = "chain.cache.hit"
	// KeyCacheMisses counts lookups that had to build chains.
	KeyCacheMisses = "chain.cache.miss"
	// KeyCacheEvictions counts entries displaced by the LRU bound.
	KeyCacheEvictions = "chain.cache.evict"
)
