package chain

import (
	"crypto/x509"
	"fmt"
	"reflect"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
	"tangledmass/internal/obs"
)

func TestCacheLookupStoreRoundTrip(t *testing.T) {
	c := NewCache(8)
	ids := []certid.Identity{{Subject: "CN=A", Key: "k1"}}
	if _, ok := c.Lookup("pool", 7); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Store("pool", 7, ids)
	got, ok := c.Lookup("pool", 7)
	if !ok || !reflect.DeepEqual(got, ids) {
		t.Fatalf("got %v, %v", got, ok)
	}
	// A different pool with the same leaf is a distinct entry.
	if _, ok := c.Lookup("otherpool", 7); ok {
		t.Fatal("pool key did not partition the cache")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if rate := st.HitRate(); rate <= 0.33 || rate >= 0.34 {
		t.Fatalf("hit rate = %v, want 1/3", rate)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	o := obs.New()
	c := NewCache(3, WithCacheObserver(o))
	for i := 0; i < 3; i++ {
		c.Store("p", corpus.Ref(i+1), nil)
	}
	// Touch leaf-0 so leaf-1 becomes the least recently used.
	if _, ok := c.Lookup("p", 1); !ok {
		t.Fatal("leaf-0 missing before eviction")
	}
	c.Store("p", 4, nil)
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if _, ok := c.Lookup("p", 2); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	for _, keep := range []corpus.Ref{1, 3, 4} {
		if _, ok := c.Lookup("p", keep); !ok {
			t.Fatalf("leaf %d evicted, want leaf 2 evicted", keep)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if got := o.Snapshot().Counters[KeyCacheEvictions]; got != 1 {
		t.Fatalf("%s = %d, want 1", KeyCacheEvictions, got)
	}
}

func TestNilCacheIsNoOp(t *testing.T) {
	var c *Cache
	c.Store("p", 1, nil)
	if _, ok := c.Lookup("p", 1); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 || c.Cap() != 0 {
		t.Fatal("nil cache has size")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestDefaultCapacity(t *testing.T) {
	if got := NewCache(0).Cap(); got != DefaultCacheCapacity {
		t.Fatalf("cap = %d, want %d", got, DefaultCacheCapacity)
	}
}

// TestCachedMatchesUncached pins the cache invariant across seeds: for
// every leaf, the root identities answered through the cache — cold, then
// warm — are identical to the direct computation.
func TestCachedMatchesUncached(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := certgen.NewGenerator(seed)
		issue := func(i *certgen.Issued, err error) *certgen.Issued {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
			return i
		}
		rootA := issue(g.SelfSignedCA("Root A"))
		rootB := issue(g.SelfSignedCA("Root B"))
		inter := issue(g.Intermediate(rootA, "Intermediate"))
		cross := issue(g.Intermediate(rootB, "Intermediate")) // same subject, second path
		var leaves []*x509.Certificate
		for i := 0; i < 20; i++ {
			leaves = append(leaves, issue(g.Leaf(inter, fmt.Sprintf("host-%d.example.com", i))).Cert)
		}
		v := NewVerifier(certs(rootA, rootB), certs(inter, cross), certgen.Epoch)
		cache := NewCache(0)
		for pass := 0; pass < 2; pass++ { // pass 0 fills, pass 1 hits
			for i, leaf := range leaves {
				direct := v.ValidatingRootIdentities(leaf)
				cached := cache.ValidatingRoots(v, leaf)
				if !reflect.DeepEqual(direct, cached) {
					t.Fatalf("seed %d pass %d leaf %d: cached %v != direct %v",
						seed, pass, i, cached, direct)
				}
			}
		}
		st := cache.Stats()
		if st.Misses != int64(len(leaves)) || st.Hits != int64(len(leaves)) {
			t.Fatalf("seed %d: stats %+v, want %d misses then %d hits", seed, st, len(leaves), len(leaves))
		}
	}
}

func TestPoolKeyIgnoresConstructionOrder(t *testing.T) {
	p := buildPKI(t)
	v1 := NewVerifier(certs(p.rootA, p.rootB), certs(p.interA), certgen.Epoch)
	v2 := NewVerifier(certs(p.rootB, p.rootA), certs(p.interA), certgen.Epoch)
	if v1.PoolKey() != v2.PoolKey() {
		t.Fatal("pool key depends on root construction order")
	}
	v3 := NewVerifier(certs(p.rootA), certs(p.interA), certgen.Epoch)
	if v1.PoolKey() == v3.PoolKey() {
		t.Fatal("pool key ignores trusted-root membership")
	}
	v4 := NewVerifier(certs(p.rootA, p.rootB), certs(p.interA), certgen.Epoch)
	v4.SetMaxDepth(2)
	if v1.PoolKey() == v4.PoolKey() {
		t.Fatal("pool key ignores the path-length bound")
	}
}
