// Package chain implements X.509 certification path building and validation
// over an explicit certificate pool, with per-root attribution.
//
// The standard library's x509.Verify answers "is there a chain"; the paper's
// analyses also need "which roots can this certificate chain to" — the
// per-root validation counts behind Table 3/4 and the ECDF of Figure 3. The
// Verifier here builds every path from a candidate certificate up to any
// trusted root, crossing intermediates, checking signatures, CA basic
// constraints, and validity at a fixed reference time.
package chain

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tangledmass/internal/certid"
)

// DefaultMaxDepth bounds path length (leaf..root inclusive). Real-world web
// PKI chains are ≤ 5; the bound exists to terminate on pathological pools.
const DefaultMaxDepth = 8

// ErrNoChain is returned when no path to a trusted root exists.
var ErrNoChain = errors.New("chain: certificate does not chain to a trusted root")

// Verifier builds and validates certification paths against a set of trusted
// roots and optional intermediates. Construct with NewVerifier; the zero
// value is not usable.
type Verifier struct {
	at        time.Time
	maxDepth  int
	roots     map[certid.Identity]*x509.Certificate
	bySubject map[string][]*x509.Certificate // issuer candidates: roots + intermediates

	// sigCache memoizes signature checks keyed by (child, parent) raw DER.
	// Bulk validation passes (the Notary validates tens of thousands of
	// leaves against the same pool) re-check the same intermediate→root
	// edges constantly; caching turns those into map hits.
	mu       sync.Mutex
	sigCache map[sigKey]bool

	// poolHash is the content hash behind PoolKey, computed once: the pool
	// is immutable after NewVerifier, only maxDepth can change later.
	poolOnce sync.Once
	poolHash string
}

type sigKey struct{ child, parent *x509.Certificate }

// checkSignature is CheckSignatureFrom with memoization.
func (v *Verifier) checkSignature(child, parent *x509.Certificate) bool {
	k := sigKey{child, parent}
	v.mu.Lock()
	ok, hit := v.sigCache[k]
	v.mu.Unlock()
	if hit {
		return ok
	}
	ok = child.CheckSignatureFrom(parent) == nil
	v.mu.Lock()
	v.sigCache[k] = ok
	v.mu.Unlock()
	return ok
}

// NewVerifier returns a Verifier trusting roots, able to cross the given
// intermediates, evaluating validity at the instant at.
func NewVerifier(roots, intermediates []*x509.Certificate, at time.Time) *Verifier {
	v := &Verifier{
		at:        at,
		maxDepth:  DefaultMaxDepth,
		roots:     make(map[certid.Identity]*x509.Certificate, len(roots)),
		bySubject: make(map[string][]*x509.Certificate, len(roots)+len(intermediates)),
		sigCache:  make(map[sigKey]bool),
	}
	for _, r := range roots {
		id := certid.IdentityOf(r)
		if _, dup := v.roots[id]; dup {
			continue
		}
		v.roots[id] = r
		v.index(r)
	}
	for _, c := range intermediates {
		v.index(c)
	}
	return v
}

func (v *Verifier) index(c *x509.Certificate) {
	k := string(c.RawSubject)
	v.bySubject[k] = append(v.bySubject[k], c)
}

// SetMaxDepth overrides the path-length bound. Values < 2 are ignored.
func (v *Verifier) SetMaxDepth(d int) {
	if d >= 2 {
		v.maxDepth = d
	}
}

// At returns the reference instant used for validity checks.
func (v *Verifier) At() time.Time { return v.at }

// timeValid reports whether c's validity window covers the reference time.
func (v *Verifier) timeValid(c *x509.Certificate) bool {
	return !v.at.Before(c.NotBefore) && !v.at.After(c.NotAfter)
}

// isRoot reports whether c is one of the trusted roots.
func (v *Verifier) isRoot(c *x509.Certificate) bool {
	_, ok := v.roots[certid.IdentityOf(c)]
	return ok
}

// candidateIssuers returns pool certificates whose subject matches c's
// issuer, that are marked CA, and that verify c's signature.
func (v *Verifier) candidateIssuers(c *x509.Certificate) []*x509.Certificate {
	var out []*x509.Certificate
	for _, cand := range v.bySubject[string(c.RawIssuer)] {
		if !cand.IsCA {
			continue
		}
		if !v.checkSignature(c, cand) {
			continue
		}
		out = append(out, cand)
	}
	return out
}

// Chains returns every distinct valid path from cert to a trusted root, each
// ordered leaf-first. A certificate that is itself a trusted root yields the
// single-element chain. The result is nil when no path exists.
func (v *Verifier) Chains(cert *x509.Certificate) [][]*x509.Certificate {
	if !v.timeValid(cert) {
		return nil
	}
	var chains [][]*x509.Certificate
	visited := map[certid.Identity]bool{certid.IdentityOf(cert): true}
	v.extend([]*x509.Certificate{cert}, visited, &chains)
	return chains
}

func (v *Verifier) extend(path []*x509.Certificate, visited map[certid.Identity]bool, out *[][]*x509.Certificate) {
	tip := path[len(path)-1]
	if v.isRoot(tip) {
		chain := make([]*x509.Certificate, len(path))
		copy(chain, path)
		*out = append(*out, chain)
		// A root may itself be cross-signed by another root; we stop here —
		// a trusted anchor terminates the path, matching browser behaviour.
		return
	}
	if len(path) >= v.maxDepth {
		return
	}
	for _, issuer := range v.candidateIssuers(tip) {
		id := certid.IdentityOf(issuer)
		if visited[id] {
			continue
		}
		if !v.timeValid(issuer) {
			continue
		}
		visited[id] = true
		v.extend(append(path, issuer), visited, out)
		delete(visited, id)
	}
}

// Verify returns the first valid chain for cert, or ErrNoChain.
func (v *Verifier) Verify(cert *x509.Certificate) ([]*x509.Certificate, error) {
	chains := v.Chains(cert)
	if len(chains) == 0 {
		return nil, ErrNoChain
	}
	return chains[0], nil
}

// Validates reports whether cert chains to any trusted root.
func (v *Verifier) Validates(cert *x509.Certificate) bool {
	return len(v.Chains(cert)) > 0
}

// ValidatingRoots returns the distinct trusted roots reachable from cert,
// in discovery order. This is the primitive behind the paper's per-root
// validation counting: a leaf contributes one count to each root that can
// validate it.
func (v *Verifier) ValidatingRoots(cert *x509.Certificate) []*x509.Certificate {
	seen := make(map[certid.Identity]bool)
	var out []*x509.Certificate
	for _, chain := range v.Chains(cert) {
		root := chain[len(chain)-1]
		id := certid.IdentityOf(root)
		if !seen[id] {
			seen[id] = true
			out = append(out, root)
		}
	}
	return out
}

// ValidatingRootIdentities returns the identities of the distinct trusted
// roots reachable from cert, in discovery order. This is the value the
// chain-validation Cache memoizes: identities (not certificate pointers)
// so entries stay meaningful across Verifier instances with equal pools.
func (v *Verifier) ValidatingRootIdentities(cert *x509.Certificate) []certid.Identity {
	roots := v.ValidatingRoots(cert)
	if len(roots) == 0 {
		return nil
	}
	out := make([]certid.Identity, len(roots))
	for i, r := range roots {
		out[i] = certid.IdentityOf(r)
	}
	return out
}

// PoolKey returns a compact fingerprint of the verifier's complete trust
// configuration: every pool certificate's DER fingerprint (sorted, so
// construction order is irrelevant), which of them are trusted roots, the
// reference instant, and the path-length bound. Two verifiers with equal
// PoolKeys return identical validation outcomes for every certificate,
// which is what makes the key safe to share cache entries under.
func (v *Verifier) PoolKey() string {
	v.poolOnce.Do(func() {
		rootFPs := make([]string, 0, len(v.roots))
		for _, r := range v.roots {
			rootFPs = append(rootFPs, certid.SHA1Fingerprint(r))
		}
		sort.Strings(rootFPs)
		var poolFPs []string
		for _, certs := range v.bySubject {
			for _, c := range certs {
				poolFPs = append(poolFPs, certid.SHA1Fingerprint(c))
			}
		}
		sort.Strings(poolFPs)
		parts := make([]string, 0, len(rootFPs)+len(poolFPs)+1)
		for _, fp := range rootFPs {
			parts = append(parts, "root:"+fp)
		}
		for _, fp := range poolFPs {
			parts = append(parts, "pool:"+fp)
		}
		parts = append(parts, "at:"+strconv.FormatInt(v.at.UnixNano(), 10))
		sum := sha256.Sum256([]byte(strings.Join(parts, "\n")))
		v.poolHash = hex.EncodeToString(sum[:])
	})
	// maxDepth is appended at call time because SetMaxDepth may change it
	// after construction; depth changes the reachable-root set.
	return v.poolHash + "/d" + strconv.Itoa(v.maxDepth)
}

// ErrHostMismatch is returned by VerifyForHost when the leaf does not cover
// the requested host.
var ErrHostMismatch = errors.New("chain: certificate does not cover the requested host")

// ErrNameConstraint is returned by VerifyForHost when every path crosses a
// CA whose name constraints exclude the host.
var ErrNameConstraint = errors.New("chain: host excluded by a CA name constraint")

// VerifyForHost verifies cert for use as a TLS server certificate for host:
// the leaf must cover host, and at least one path to a trusted root must
// cross only CAs whose (permitted-subtree) name constraints allow it. This
// is the check that makes a name-constrained operator CA safe to ship in
// firmware: it can anchor its own services but not gmail.com.
func (v *Verifier) VerifyForHost(cert *x509.Certificate, host string) ([]*x509.Certificate, error) {
	if err := cert.VerifyHostname(host); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHostMismatch, err)
	}
	chains := v.Chains(cert)
	if len(chains) == 0 {
		return nil, ErrNoChain
	}
	for _, path := range chains {
		if pathPermitsHost(path, host) {
			return path, nil
		}
	}
	return nil, ErrNameConstraint
}

// pathPermitsHost checks every CA's permitted DNS subtrees against host.
func pathPermitsHost(path []*x509.Certificate, host string) bool {
	for _, ca := range path[1:] {
		if len(ca.PermittedDNSDomains) == 0 {
			continue
		}
		ok := false
		for _, domain := range ca.PermittedDNSDomains {
			if hostInDomain(host, domain) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// hostInDomain implements RFC 5280 DNS subtree matching: the host equals
// the domain or ends with "."+domain (a leading dot on the constraint
// anchors subdomains only).
func hostInDomain(host, domain string) bool {
	if domain == "" {
		return true
	}
	if domain[0] == '.' {
		return len(host) > len(domain) && host[len(host)-len(domain):] == domain
	}
	if host == domain {
		return true
	}
	suffix := "." + domain
	return len(host) > len(suffix) && host[len(host)-len(suffix):] == suffix
}

// IsSelfSigned reports whether c is self-issued and self-signature-valid.
func IsSelfSigned(c *x509.Certificate) bool {
	if string(c.RawSubject) != string(c.RawIssuer) {
		return false
	}
	return c.CheckSignatureFrom(c) == nil
}
