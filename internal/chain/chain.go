// Package chain implements X.509 certification path building and validation
// over an explicit certificate pool, with per-root attribution.
//
// The standard library's x509.Verify answers "is there a chain"; the paper's
// analyses also need "which roots can this certificate chain to" — the
// per-root validation counts behind Table 3/4 and the ECDF of Figure 3. The
// Verifier here builds every path from a candidate certificate up to any
// trusted root, crossing intermediates, checking signatures, CA basic
// constraints, and validity at a fixed reference time.
//
// The verifier speaks corpus.Ref internally: every pool member is interned
// once in a content-addressed corpus, so identities and fingerprints are
// table lookups, the signature cache is keyed by a pair of uint32 handles,
// and the pool key is derived from precomputed content digests instead of
// re-fingerprinting the pool.
package chain

import (
	"bytes"
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
	"tangledmass/internal/rootstore"
)

// DefaultMaxDepth bounds path length (leaf..root inclusive). Real-world web
// PKI chains are ≤ 5; the bound exists to terminate on pathological pools.
const DefaultMaxDepth = 8

// ErrNoChain is returned when no path to a trusted root exists.
var ErrNoChain = errors.New("chain: certificate does not chain to a trusted root")

// Verifier builds and validates certification paths against a set of trusted
// roots and optional intermediates. Construct with NewVerifier,
// NewVerifierIn or NewVerifierFromStore; the zero value is not usable.
type Verifier struct {
	at       time.Time
	maxDepth int
	c        *corpus.Corpus

	roots     map[certid.Identity]corpus.Ref
	bySubject map[string][]corpus.Ref // issuer candidates: roots + intermediates

	// rootSum and poolSum are XOR accumulators over member content
	// digests, maintained as the pool is indexed — the order-independent
	// inputs to PoolKey, replacing the sort+hash over per-cert
	// fingerprints.
	rootSum corpus.Digest
	poolSum corpus.Digest

	// sigCache memoizes signature checks keyed by (child, parent) refs.
	// Bulk validation passes (the Notary validates tens of thousands of
	// leaves against the same pool) re-check the same intermediate→root
	// edges constantly; caching turns those into map hits.
	mu       sync.Mutex
	sigCache map[sigKey]bool

	// poolHash is the content hash behind PoolKey, computed once: the pool
	// is immutable after construction, only maxDepth can change later.
	poolOnce sync.Once
	poolHash string
}

type sigKey struct{ child, parent corpus.Ref }

// checkSignature is CheckSignatureFrom with memoization.
func (v *Verifier) checkSignature(child, parent corpus.Ref) bool {
	k := sigKey{child, parent}
	v.mu.Lock()
	ok, hit := v.sigCache[k]
	v.mu.Unlock()
	if hit {
		return ok
	}
	ok = v.c.Cert(child).CheckSignatureFrom(v.c.Cert(parent)) == nil
	v.mu.Lock()
	v.sigCache[k] = ok
	v.mu.Unlock()
	return ok
}

// NewVerifier returns a Verifier trusting roots, able to cross the given
// intermediates, evaluating validity at the instant at. Certificates are
// interned in the process-wide shared corpus.
func NewVerifier(roots, intermediates []*x509.Certificate, at time.Time) *Verifier {
	return NewVerifierIn(corpus.Shared(), roots, intermediates, at)
}

// NewVerifierIn is NewVerifier interning into an explicit corpus.
func NewVerifierIn(c *corpus.Corpus, roots, intermediates []*x509.Certificate, at time.Time) *Verifier {
	v := newVerifier(c, len(roots), len(roots)+len(intermediates), at)
	for _, r := range roots {
		v.addRoot(c.InternCert(r))
	}
	for _, ic := range intermediates {
		v.index(c.InternCert(ic))
	}
	return v
}

// NewVerifierFromStore builds a Verifier whose trusted roots are exactly the
// store's membership, reusing the store's interned handles and its
// incrementally-maintained content digest — no certificate is re-interned
// or re-fingerprinted. The intermediates must be handles in the store's
// corpus.
func NewVerifierFromStore(s *rootstore.Store, intermediates []corpus.Ref, at time.Time) *Verifier {
	v := newVerifier(s.Corpus(), s.Len(), s.Len()+len(intermediates), at)
	for _, ref := range s.Refs() {
		v.addRoot(ref)
	}
	for _, ref := range intermediates {
		v.index(ref)
	}
	return v
}

func newVerifier(c *corpus.Corpus, nroots, npool int, at time.Time) *Verifier {
	return &Verifier{
		at:        at,
		maxDepth:  DefaultMaxDepth,
		c:         c,
		roots:     make(map[certid.Identity]corpus.Ref, nroots),
		bySubject: make(map[string][]corpus.Ref, npool),
		sigCache:  make(map[sigKey]bool),
	}
}

// addRoot trusts ref, deduplicating by identity (first instance wins, as in
// a store).
func (v *Verifier) addRoot(ref corpus.Ref) {
	e := v.c.Entry(ref)
	if _, dup := v.roots[e.Identity]; dup {
		return
	}
	v.roots[e.Identity] = ref
	v.rootSum.XOR(e.Digest)
	v.index(ref)
}

// index adds ref to the issuer-candidate pool, skipping exact duplicates.
func (v *Verifier) index(ref corpus.Ref) {
	e := v.c.Entry(ref)
	k := string(e.Cert.RawSubject)
	for _, have := range v.bySubject[k] {
		if have == ref {
			return
		}
	}
	v.bySubject[k] = append(v.bySubject[k], ref)
	v.poolSum.XOR(e.Digest)
}

// SetMaxDepth overrides the path-length bound. Values < 2 are ignored.
func (v *Verifier) SetMaxDepth(d int) {
	if d >= 2 {
		v.maxDepth = d
	}
}

// At returns the reference instant used for validity checks.
func (v *Verifier) At() time.Time { return v.at }

// Corpus returns the intern table the verifier's refs resolve against.
func (v *Verifier) Corpus() *corpus.Corpus { return v.c }

// timeValid reports whether c's validity window covers the reference time.
func (v *Verifier) timeValid(c *x509.Certificate) bool {
	return !v.at.Before(c.NotBefore) && !v.at.After(c.NotAfter)
}

// isRoot reports whether ref is one of the trusted roots.
func (v *Verifier) isRoot(ref corpus.Ref) bool {
	_, ok := v.roots[v.c.Entry(ref).Identity]
	return ok
}

// candidateIssuers returns pool refs whose subject matches c's issuer, that
// are marked CA, and that verify c's signature.
func (v *Verifier) candidateIssuers(ref corpus.Ref) []corpus.Ref {
	var out []corpus.Ref
	for _, cand := range v.bySubject[string(v.c.Cert(ref).RawIssuer)] {
		if !v.c.Cert(cand).IsCA {
			continue
		}
		if !v.checkSignature(ref, cand) {
			continue
		}
		out = append(out, cand)
	}
	return out
}

// Chains returns every distinct valid path from cert to a trusted root, each
// ordered leaf-first. A certificate that is itself a trusted root yields the
// single-element chain. The result is nil when no path exists.
func (v *Verifier) Chains(cert *x509.Certificate) [][]*x509.Certificate {
	refChains := v.chainRefs(v.c.InternCert(cert))
	if refChains == nil {
		return nil
	}
	chains := make([][]*x509.Certificate, len(refChains))
	for i, refs := range refChains {
		chains[i] = v.c.Certs(refs)
	}
	return chains
}

// chainRefs is Chains over handles.
func (v *Verifier) chainRefs(ref corpus.Ref) [][]corpus.Ref {
	e := v.c.Entry(ref)
	if e == nil || !v.timeValid(e.Cert) {
		return nil
	}
	var chains [][]corpus.Ref
	visited := map[certid.Identity]bool{e.Identity: true}
	v.extend([]corpus.Ref{ref}, visited, &chains)
	return chains
}

func (v *Verifier) extend(path []corpus.Ref, visited map[certid.Identity]bool, out *[][]corpus.Ref) {
	tip := path[len(path)-1]
	if v.isRoot(tip) {
		chain := make([]corpus.Ref, len(path))
		copy(chain, path)
		*out = append(*out, chain)
		// A root may itself be cross-signed by another root; we stop here —
		// a trusted anchor terminates the path, matching browser behaviour.
		return
	}
	if len(path) >= v.maxDepth {
		return
	}
	for _, issuer := range v.candidateIssuers(tip) {
		e := v.c.Entry(issuer)
		if visited[e.Identity] {
			continue
		}
		if !v.timeValid(e.Cert) {
			continue
		}
		visited[e.Identity] = true
		v.extend(append(path, issuer), visited, out)
		delete(visited, e.Identity)
	}
}

// Verify returns the first valid chain for cert, or ErrNoChain.
func (v *Verifier) Verify(cert *x509.Certificate) ([]*x509.Certificate, error) {
	chains := v.Chains(cert)
	if len(chains) == 0 {
		return nil, ErrNoChain
	}
	return chains[0], nil
}

// Validates reports whether cert chains to any trusted root.
func (v *Verifier) Validates(cert *x509.Certificate) bool {
	return len(v.chainRefs(v.c.InternCert(cert))) > 0
}

// ValidatingRoots returns the distinct trusted roots reachable from cert,
// in discovery order. This is the primitive behind the paper's per-root
// validation counting: a leaf contributes one count to each root that can
// validate it.
func (v *Verifier) ValidatingRoots(cert *x509.Certificate) []*x509.Certificate {
	return v.c.Certs(v.validatingRootRefs(v.c.InternCert(cert)))
}

// validatingRootRefs returns the refs of the distinct trusted roots
// reachable from ref, in discovery order.
func (v *Verifier) validatingRootRefs(ref corpus.Ref) []corpus.Ref {
	seen := make(map[certid.Identity]bool)
	var out []corpus.Ref
	for _, chain := range v.chainRefs(ref) {
		root := chain[len(chain)-1]
		id := v.c.Entry(root).Identity
		if !seen[id] {
			seen[id] = true
			out = append(out, root)
		}
	}
	return out
}

// ValidatingRootIdentities returns the identities of the distinct trusted
// roots reachable from cert, in discovery order. This is the value the
// chain-validation Cache memoizes: identities (not handles) so entries stay
// meaningful to callers that compare against store identities.
func (v *Verifier) ValidatingRootIdentities(cert *x509.Certificate) []certid.Identity {
	return v.identitiesOf(v.validatingRootRefs(v.c.InternCert(cert)))
}

// ValidatingRootIdentitiesRef is ValidatingRootIdentities for an
// already-interned leaf.
func (v *Verifier) ValidatingRootIdentitiesRef(ref corpus.Ref) []certid.Identity {
	return v.identitiesOf(v.validatingRootRefs(ref))
}

func (v *Verifier) identitiesOf(refs []corpus.Ref) []certid.Identity {
	if len(refs) == 0 {
		return nil
	}
	out := make([]certid.Identity, len(refs))
	for i, r := range refs {
		out[i] = v.c.Entry(r).Identity
	}
	return out
}

// PoolKey returns a compact fingerprint of the verifier's complete trust
// configuration: the XOR of every pool member's content digest (inherently
// order-independent), which of them are trusted roots, the corpus the
// handles resolve against, the reference instant, and the path-length
// bound. Two verifiers with equal PoolKeys return identical validation
// outcomes for every certificate, which is what makes the key safe to
// share cache entries under.
func (v *Verifier) PoolKey() string {
	v.poolOnce.Do(func() {
		material := "corpus:" + strconv.FormatUint(v.c.ID(), 10) +
			"\nroot:" + v.rootSum.Hex() + "/" + strconv.Itoa(len(v.roots)) +
			"\npool:" + v.poolSum.Hex() +
			"\nat:" + strconv.FormatInt(v.at.UnixNano(), 10)
		sum := sha256.Sum256([]byte(material))
		v.poolHash = hex.EncodeToString(sum[:])
	})
	// maxDepth is appended at call time because SetMaxDepth may change it
	// after construction; depth changes the reachable-root set.
	return v.poolHash + "/d" + strconv.Itoa(v.maxDepth)
}

// ErrHostMismatch is returned by VerifyForHost when the leaf does not cover
// the requested host.
var ErrHostMismatch = errors.New("chain: certificate does not cover the requested host")

// ErrNameConstraint is returned by VerifyForHost when every path crosses a
// CA whose name constraints exclude the host.
var ErrNameConstraint = errors.New("chain: host excluded by a CA name constraint")

// CanonicalHost returns host in the form the hostname checks compare on:
// lowercased, with a single trailing dot (the DNS root label) trimmed.
// x509.Certificate.VerifyHostname applies this normalization internally;
// applying it here too keeps the name-constraint check judging the same
// spelling, so the two layers can never disagree about which host they saw.
func CanonicalHost(host string) string {
	host = strings.ToLower(host)
	if n := len(host); n > 0 && host[n-1] == '.' {
		host = host[:n-1]
	}
	return host
}

// LeafCoversHost reports whether the leaf certificate covers host (judging
// the canonical form). It is the hostname layer of VerifyForHost on its
// own, exposed so the trust-evaluation engine can score the hostname
// dimension independently of chain building.
func LeafCoversHost(cert *x509.Certificate, host string) error {
	return cert.VerifyHostname(CanonicalHost(host))
}

// VerifyForHost verifies cert for use as a TLS server certificate for host:
// the leaf must cover host, and at least one path to a trusted root must
// cross only CAs whose (permitted-subtree) name constraints allow it. This
// is the check that makes a name-constrained operator CA safe to ship in
// firmware: it can anchor its own services but not gmail.com.
//
// Error precedence is fixed: a leaf that does not cover the host reports
// ErrHostMismatch even when name constraints would also exclude it — the
// leaf check is the first a client performs, and both checks judge the
// canonical host so neither can pass a spelling the other rejects. When
// several valid paths permit the host, the winner is canonical — shortest
// path first, ties broken by comparing member content digests — and does
// not depend on pool construction order.
func (v *Verifier) VerifyForHost(cert *x509.Certificate, host string) ([]*x509.Certificate, error) {
	h := CanonicalHost(host)
	if err := cert.VerifyHostname(h); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHostMismatch, err)
	}
	refChains := v.chainRefs(v.c.InternCert(cert))
	if len(refChains) == 0 {
		return nil, ErrNoChain
	}
	var best []corpus.Ref
	for _, refs := range refChains {
		if !v.pathPermitsHost(refs, h) {
			continue
		}
		if best == nil || v.pathLess(refs, best) {
			best = refs
		}
	}
	if best == nil {
		return nil, ErrNameConstraint
	}
	return v.c.Certs(best), nil
}

// pathLess orders candidate paths canonically: shorter first, then by
// lexicographic comparison of member content digests. Content digests are
// stable across processes and pool insertion orders, unlike the DFS
// discovery order chainRefs yields.
func (v *Verifier) pathLess(a, b []corpus.Ref) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		da, db := v.c.Entry(a[i]).Digest, v.c.Entry(b[i]).Digest
		if c := bytes.Compare(da[:], db[:]); c != 0 {
			return c < 0
		}
	}
	return false
}

// pathPermitsHost checks every CA's permitted DNS subtrees against the
// canonical host.
func (v *Verifier) pathPermitsHost(path []corpus.Ref, host string) bool {
	for _, ref := range path[1:] {
		ca := v.c.Cert(ref)
		if len(ca.PermittedDNSDomains) == 0 {
			continue
		}
		ok := false
		for _, domain := range ca.PermittedDNSDomains {
			if hostInDomain(host, domain) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// hostInDomain implements RFC 5280 DNS subtree matching: the host equals
// the domain or ends with "."+domain (a leading dot on the constraint
// anchors subdomains only). The host must already be canonical; the
// constraint is lowercased here since certificates may carry any casing.
func hostInDomain(host, domain string) bool {
	domain = strings.ToLower(domain)
	if domain == "" {
		return true
	}
	if domain[0] == '.' {
		return len(host) > len(domain) && host[len(host)-len(domain):] == domain
	}
	if host == domain {
		return true
	}
	suffix := "." + domain
	return len(host) > len(suffix) && host[len(host)-len(suffix):] == suffix
}

// IsSelfSigned reports whether c is self-issued and self-signature-valid.
func IsSelfSigned(c *x509.Certificate) bool {
	if string(c.RawSubject) != string(c.RawIssuer) {
		return false
	}
	return c.CheckSignatureFrom(c) == nil
}
