package chain

import (
	"crypto/x509"
	"errors"
	"testing"

	"tangledmass/internal/certgen"
)

// operatorPKI builds the §8 mitigation scenario: a device store containing
// a web root plus an operator CA name-constrained to operator.example.
func operatorPKI(t *testing.T) (v *Verifier, webLeaf, opLeaf, abuseLeaf *x509.Certificate) {
	t.Helper()
	g := certgen.NewGenerator(140)
	webRoot, err := g.SelfSignedCA("NC Web Root")
	if err != nil {
		t.Fatal(err)
	}
	opRoot, err := g.SelfSignedCA("NC Operator CA",
		certgen.WithNameConstraints("operator.example"))
	if err != nil {
		t.Fatal(err)
	}
	web, err := g.Leaf(webRoot, "gmail.com")
	if err != nil {
		t.Fatal(err)
	}
	op, err := g.Leaf(opRoot, "portal.operator.example")
	if err != nil {
		t.Fatal(err)
	}
	// The abuse case: the operator CA mints gmail.com.
	abuse, err := g.Leaf(opRoot, "gmail.com", certgen.WithKeyName("nc-abuse"))
	if err != nil {
		t.Fatal(err)
	}
	v = NewVerifier([]*x509.Certificate{webRoot.Cert, opRoot.Cert}, nil, certgen.Epoch)
	return v, web.Cert, op.Cert, abuse.Cert
}

func TestNameConstrainedOperatorCA(t *testing.T) {
	v, webLeaf, opLeaf, abuseLeaf := operatorPKI(t)

	// The web root still serves gmail.com.
	if _, err := v.VerifyForHost(webLeaf, "gmail.com"); err != nil {
		t.Errorf("web-root gmail chain rejected: %v", err)
	}
	// The operator CA serves its own domain.
	if _, err := v.VerifyForHost(opLeaf, "portal.operator.example"); err != nil {
		t.Errorf("operator-domain chain rejected: %v", err)
	}
	// But the operator CA cannot mint gmail.com: plain Validates accepts it
	// (Android's behaviour), VerifyForHost rejects it (the mitigation).
	if !v.Validates(abuseLeaf) {
		t.Fatal("unconstrained validation should accept — that is the problem")
	}
	if _, err := v.VerifyForHost(abuseLeaf, "gmail.com"); !errors.Is(err, ErrNameConstraint) {
		t.Errorf("constrained verification err = %v, want ErrNameConstraint", err)
	}
}

func TestVerifyForHostMismatch(t *testing.T) {
	v, webLeaf, _, _ := operatorPKI(t)
	if _, err := v.VerifyForHost(webLeaf, "wrong.example"); !errors.Is(err, ErrHostMismatch) {
		t.Errorf("err = %v, want ErrHostMismatch", err)
	}
}

func TestVerifyForHostNoChain(t *testing.T) {
	g := certgen.NewGenerator(141)
	rogue, _ := g.SelfSignedCA("NC Rogue")
	leaf, _ := g.Leaf(rogue, "orphan.example")
	v := NewVerifier(nil, nil, certgen.Epoch)
	if _, err := v.VerifyForHost(leaf.Cert, "orphan.example"); !errors.Is(err, ErrNoChain) {
		t.Errorf("err = %v, want ErrNoChain", err)
	}
}

func TestHostInDomain(t *testing.T) {
	cases := []struct {
		host, domain string
		want         bool
	}{
		{"operator.example", "operator.example", true},
		{"portal.operator.example", "operator.example", true},
		{"deep.portal.operator.example", "operator.example", true},
		{"operator.example", ".operator.example", false}, // leading dot: subdomains only
		{"portal.operator.example", ".operator.example", true},
		{"evil-operator.example", "operator.example", false},
		{"operator.example.evil", "operator.example", false},
		{"gmail.com", "operator.example", false},
		{"anything.example", "", true},
	}
	for _, c := range cases {
		if got := hostInDomain(c.host, c.domain); got != c.want {
			t.Errorf("hostInDomain(%q, %q) = %v, want %v", c.host, c.domain, got, c.want)
		}
	}
}

func TestConstraintOnIntermediate(t *testing.T) {
	g := certgen.NewGenerator(142)
	root, _ := g.SelfSignedCA("NC Chain Root")
	inter, err := g.Intermediate(root, "NC Constrained Intermediate",
		certgen.WithNameConstraints("svc.example"))
	if err != nil {
		t.Fatal(err)
	}
	good, _ := g.Leaf(inter, "api.svc.example")
	bad, _ := g.Leaf(inter, "www.bank.example", certgen.WithKeyName("nc-bad"))
	v := NewVerifier([]*x509.Certificate{root.Cert}, []*x509.Certificate{inter.Cert}, certgen.Epoch)
	if _, err := v.VerifyForHost(good.Cert, "api.svc.example"); err != nil {
		t.Errorf("in-constraint chain rejected: %v", err)
	}
	if _, err := v.VerifyForHost(bad.Cert, "www.bank.example"); !errors.Is(err, ErrNameConstraint) {
		t.Errorf("out-of-constraint err = %v, want ErrNameConstraint", err)
	}
}
