package chain

// Hostname-verification edge cases for VerifyForHost: wildcard scope, IP
// SANs, trailing-dot canonicalization, the ErrHostMismatch-over-
// ErrNameConstraint precedence, and the determinism of the winning path.

import (
	"crypto/x509"
	"errors"
	"net"
	"testing"

	"tangledmass/internal/certgen"
)

func hostPKI(t *testing.T) (v *Verifier, wild, ip, plain *x509.Certificate) {
	t.Helper()
	g := certgen.NewGenerator(150)
	root, err := g.SelfSignedCA("Host Edge Root")
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Leaf(root, "wild", certgen.WithDNSNames("*.api.example.com"))
	if err != nil {
		t.Fatal(err)
	}
	i, err := g.Leaf(root, "ip-endpoint", certgen.WithIPAddresses(net.ParseIP("192.0.2.7")))
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Leaf(root, "plain.example.com")
	if err != nil {
		t.Fatal(err)
	}
	return NewVerifier([]*x509.Certificate{root.Cert}, nil, certgen.Epoch), w.Cert, i.Cert, p.Cert
}

func TestWildcardCoversOneLabelOnly(t *testing.T) {
	v, wild, _, _ := hostPKI(t)
	if _, err := v.VerifyForHost(wild, "v1.api.example.com"); err != nil {
		t.Errorf("one-label wildcard match rejected: %v", err)
	}
	// RFC 6125 §6.4.3: the wildcard stands in for exactly one leftmost
	// label — it never spans label boundaries, and never matches the parent.
	for _, host := range []string{"a.b.api.example.com", "api.example.com", "example.com"} {
		if _, err := v.VerifyForHost(wild, host); !errors.Is(err, ErrHostMismatch) {
			t.Errorf("VerifyForHost(wild, %q) = %v, want ErrHostMismatch", host, err)
		}
	}
}

func TestIPSANMatching(t *testing.T) {
	v, _, ip, plain := hostPKI(t)
	if _, err := v.VerifyForHost(ip, "192.0.2.7"); err != nil {
		t.Errorf("IP SAN rejected its own literal: %v", err)
	}
	if _, err := v.VerifyForHost(ip, "192.0.2.8"); !errors.Is(err, ErrHostMismatch) {
		t.Errorf("other address = %v, want ErrHostMismatch", err)
	}
	// A DNS-only certificate never covers an IP literal, and the IP
	// certificate's CN does not double as a DNS SAN.
	if _, err := v.VerifyForHost(plain, "192.0.2.7"); !errors.Is(err, ErrHostMismatch) {
		t.Errorf("DNS leaf vs IP literal = %v, want ErrHostMismatch", err)
	}
	if _, err := v.VerifyForHost(ip, "ip-endpoint"); !errors.Is(err, ErrHostMismatch) {
		t.Errorf("CN fallback = %v, want ErrHostMismatch", err)
	}
}

func TestTrailingDotAndCaseCanonicalized(t *testing.T) {
	v, wild, _, plain := hostPKI(t)
	for _, host := range []string{"plain.example.com.", "PLAIN.example.COM", "Plain.Example.Com."} {
		if _, err := v.VerifyForHost(plain, host); err != nil {
			t.Errorf("VerifyForHost(plain, %q) = %v, want success", host, err)
		}
	}
	if _, err := v.VerifyForHost(wild, "V1.API.example.com."); err != nil {
		t.Errorf("canonicalized wildcard match rejected: %v", err)
	}
	if got := CanonicalHost("Plain.Example.COM."); got != "plain.example.com" {
		t.Errorf("CanonicalHost = %q", got)
	}
}

// TestHostMismatchBeatsNameConstraint pins the documented precedence: when
// the leaf fails to cover the host AND every path crosses an excluding
// constraint, the verdict is ErrHostMismatch — the leaf check comes first.
func TestHostMismatchBeatsNameConstraint(t *testing.T) {
	g := certgen.NewGenerator(151)
	opRoot, err := g.SelfSignedCA("Precedence Operator CA",
		certgen.WithNameConstraints("operator.example"))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := g.Leaf(opRoot, "portal.operator.example")
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier([]*x509.Certificate{opRoot.Cert}, nil, certgen.Epoch)

	// Sanity: each failure mode alone reports its own error.
	abuse, err := g.Leaf(opRoot, "gmail.com", certgen.WithKeyName("prec-abuse"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyForHost(abuse.Cert, "gmail.com"); !errors.Is(err, ErrNameConstraint) {
		t.Fatalf("constraint-only case = %v, want ErrNameConstraint", err)
	}
	// Both apply: leaf covers portal.operator.example only, gmail.com is
	// also outside the CA's permitted subtree. Host mismatch must win, and
	// spelling variants of the host must not flip the verdict.
	for _, host := range []string{"gmail.com", "GMAIL.com.", "gmail.COM"} {
		if _, err := v.VerifyForHost(leaf.Cert, host); !errors.Is(err, ErrHostMismatch) {
			t.Errorf("VerifyForHost(leaf, %q) = %v, want ErrHostMismatch", host, err)
		}
	}
}

// TestWinningPathDeterministic checks that when two same-length paths
// permit the host, VerifyForHost returns the digest-canonical one no matter
// the order roots and intermediates entered the pool.
func TestWinningPathDeterministic(t *testing.T) {
	g := certgen.NewGenerator(152)
	rootX, _ := g.SelfSignedCA("Path Root X")
	rootY, _ := g.SelfSignedCA("Path Root Y")
	// One intermediate key certified by both roots: two 3-cert paths.
	i1, err := g.Intermediate(rootX, "Path Inter", certgen.WithKeyName("pathkey"))
	if err != nil {
		t.Fatal(err)
	}
	i2, err := g.Intermediate(rootY, "Path Inter", certgen.WithKeyName("pathkey"))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := g.Leaf(i1, "path.example.com")
	if err != nil {
		t.Fatal(err)
	}

	orders := [][2][]*x509.Certificate{
		{{rootX.Cert, rootY.Cert}, {i1.Cert, i2.Cert}},
		{{rootY.Cert, rootX.Cert}, {i2.Cert, i1.Cert}},
		{{rootX.Cert, rootY.Cert}, {i2.Cert, i1.Cert}},
		{{rootY.Cert, rootX.Cert}, {i1.Cert, i2.Cert}},
	}
	var want []*x509.Certificate
	for n, o := range orders {
		v := NewVerifier(o[0], o[1], certgen.Epoch)
		if got := len(v.Chains(leaf.Cert)); got != 2 {
			t.Fatalf("order %d: %d candidate paths, want 2", n, got)
		}
		path, err := v.VerifyForHost(leaf.Cert, "path.example.com")
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != 3 || path[0].Subject.CommonName != "path.example.com" {
			t.Fatalf("order %d: path %d certs", n, len(path))
		}
		if want == nil {
			want = path
			continue
		}
		for i := range path {
			if path[i] != want[i] {
				t.Fatalf("order %d: winning path differs from order 0 at position %d", n, i)
			}
		}
	}

	// The shorter path always beats the longer one: trust i1's subject+key
	// directly as a root and the 2-cert path wins over the 3-cert one.
	v := NewVerifier([]*x509.Certificate{rootX.Cert, i2.Cert}, []*x509.Certificate{i1.Cert}, certgen.Epoch)
	path, err := v.VerifyForHost(leaf.Cert, "path.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("shortest-path rule: got %d certs, want 2", len(path))
	}
}
