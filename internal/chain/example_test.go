package chain_test

import (
	"crypto/x509"
	"fmt"

	"tangledmass/internal/certgen"
	"tangledmass/internal/chain"
)

// Building a path through an intermediate and attributing it to its root.
func ExampleVerifier_ValidatingRoots() {
	g := certgen.NewGenerator(11)
	root, _ := g.SelfSignedCA("Example Anchor")
	inter, _ := g.Intermediate(root, "Example Issuing CA")
	leaf, _ := g.Leaf(inter, "www.example.org")

	v := chain.NewVerifier(
		[]*x509.Certificate{root.Cert},
		[]*x509.Certificate{inter.Cert},
		certgen.Epoch,
	)
	path, _ := v.Verify(leaf.Cert)
	fmt.Println("path length:", len(path))
	for _, r := range v.ValidatingRoots(leaf.Cert) {
		fmt.Println("anchored at:", r.Subject.CommonName)
	}
	// Output:
	// path length: 3
	// anchored at: Example Anchor
}
