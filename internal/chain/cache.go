package chain

import (
	"container/list"
	"crypto/x509"
	"sync"

	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
	"tangledmass/internal/obs"
)

// DefaultCacheCapacity bounds a Cache constructed with a non-positive
// capacity. The Notary's bulk validation touches one entry per unexpired
// leaf; 16k entries cover a paper-scale Notary pass with room to spare.
const DefaultCacheCapacity = 1 << 14

// cacheKey identifies one validation outcome: the verifier's pool
// fingerprint plus the leaf's corpus handle. A Ref is content-addressed —
// the paper's §4.1 "certificate signature" identity — because the set of
// reachable roots depends on the leaf's bytes (its signature), not merely
// on its subject and key. Keying by handle instead of a hex fingerprint
// makes a lookup hash a string plus a uint32 with no per-lookup hashing of
// the certificate itself; the pool key embeds the corpus ID, so refs from
// different corpora cannot collide under one pool.
type cacheKey struct {
	pool string
	leaf corpus.Ref
}

// cacheEntry is one memoized outcome in the LRU list.
type cacheEntry struct {
	key   cacheKey
	roots []certid.Identity
}

// Cache memoizes chain-validation outcomes across Verifier instances: the
// distinct trusted roots a leaf can reach within a given pool. Thousands
// of handsets share identical stores and the Notary revalidates the same
// leaves against the same pool union on every analysis pass, so the
// expensive path building (one signature verification per issuer edge)
// collapses into map hits.
//
// The cache is LRU-bounded and safe for concurrent use. Hit/miss/eviction
// counts are exposed via Stats and, when an observer is attached, the
// chain.cache.* counters. A nil *Cache is a valid no-op: Lookup always
// misses and Store discards, so callers thread an optional cache without
// branching.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[cacheKey]*list.Element
	hits    *obs.Counter
	misses  *obs.Counter
	evicts  *obs.Counter
	nHits   int64
	nMisses int64
	nEvicts int64
}

// CacheOption configures a Cache.
type CacheOption func(*Cache)

// WithCacheObserver attaches hit/miss/eviction counters to the given
// observer (nil observers no-op).
func WithCacheObserver(o *obs.Observer) CacheOption {
	return func(c *Cache) {
		c.hits = o.Counter(KeyCacheHits)
		c.misses = o.Counter(KeyCacheMisses)
		c.evicts = o.Counter(KeyCacheEvictions)
	}
}

// NewCache returns an empty LRU cache bounded to capacity entries.
// Capacities < 1 mean DefaultCacheCapacity.
func NewCache(capacity int, opts ...CacheOption) *Cache {
	if capacity < 1 {
		capacity = DefaultCacheCapacity
	}
	c := &Cache{cap: capacity, ll: list.New(), items: make(map[cacheKey]*list.Element)}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Lookup returns the memoized validating-root identities for (poolKey,
// leaf) and whether the entry was present. The returned slice is shared:
// callers must not mutate it.
func (c *Cache) Lookup(poolKey string, leaf corpus.Ref) ([]certid.Identity, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[cacheKey{poolKey, leaf}]
	if !ok {
		c.nMisses++
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.nHits++
	c.hits.Inc()
	return el.Value.(*cacheEntry).roots, true
}

// Store memoizes the validating-root identities for (poolKey, leaf),
// evicting the least recently used entry when the bound is hit. The slice
// is retained as-is: callers must not mutate it afterwards.
func (c *Cache) Store(poolKey string, leaf corpus.Ref, roots []certid.Identity) {
	if c == nil {
		return
	}
	k := cacheKey{poolKey, leaf}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).roots = roots
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, roots: roots})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.nEvicts++
		c.evicts.Inc()
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the LRU bound.
func (c *Cache) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// CacheStats is a point-in-time hit/miss/eviction tally.
type CacheStats struct {
	Hits, Misses, Evictions int64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cumulative lookup tallies.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.nHits, Misses: c.nMisses, Evictions: c.nEvicts}
}

// ValidatingRoots answers v.ValidatingRootIdentities(cert) through the
// cache: a hit skips path building entirely, a miss computes and
// memoizes under (v.PoolKey(), leaf handle). A nil Cache computes
// directly. Cached and uncached answers are identical — the invariant the
// cache tests pin across seeds.
func (c *Cache) ValidatingRoots(v *Verifier, cert *x509.Certificate) []certid.Identity {
	return c.ValidatingRootsRef(v, v.Corpus().InternCert(cert))
}

// ValidatingRootsRef is ValidatingRoots for an already-interned leaf. The
// ref must be a handle in v's corpus.
func (c *Cache) ValidatingRootsRef(v *Verifier, leaf corpus.Ref) []certid.Identity {
	if c == nil {
		return v.ValidatingRootIdentitiesRef(leaf)
	}
	pool := v.PoolKey()
	if ids, ok := c.Lookup(pool, leaf); ok {
		return ids
	}
	ids := v.ValidatingRootIdentitiesRef(leaf)
	c.Store(pool, leaf, ids)
	return ids
}
