package chain

import (
	"crypto/x509"
	"testing"
	"testing/quick"

	"tangledmass/internal/certgen"
)

// buildLadder issues a root and a ladder of n intermediates, returning all
// CA certs (root first) and a leaf under the last rung.
func buildLadder(t *testing.T, seed int64, n int) (cas []*x509.Certificate, leaf *x509.Certificate) {
	t.Helper()
	g := certgen.NewGenerator(seed)
	root, err := g.SelfSignedCA("Ladder Root")
	if err != nil {
		t.Fatal(err)
	}
	cas = append(cas, root.Cert)
	parent := root
	for i := 0; i < n; i++ {
		inter, err := g.Intermediate(parent, "Ladder Rung "+string(rune('A'+i)))
		if err != nil {
			t.Fatal(err)
		}
		cas = append(cas, inter.Cert)
		parent = inter
	}
	l, err := g.Leaf(parent, "ladder.example.com")
	if err != nil {
		t.Fatal(err)
	}
	return cas, l.Cert
}

// TestPropChainRequiresEveryRung: removing any single intermediate from the
// pool breaks the (only) path; the full pool always validates.
func TestPropChainRequiresEveryRung(t *testing.T) {
	const rungs = 4
	cas, leaf := buildLadder(t, 31, rungs)
	root, inters := cas[0], cas[1:]

	full := NewVerifier([]*x509.Certificate{root}, inters, certgen.Epoch)
	if !full.Validates(leaf) {
		t.Fatal("full pool should validate")
	}
	for skip := range inters {
		var pool []*x509.Certificate
		for i, c := range inters {
			if i != skip {
				pool = append(pool, c)
			}
		}
		v := NewVerifier([]*x509.Certificate{root}, pool, certgen.Epoch)
		if v.Validates(leaf) {
			t.Errorf("pool missing rung %d should not validate", skip)
		}
	}
}

// TestPropVerifiersAgree: the indexed and naive verifiers agree on random
// pool subsets.
func TestPropVerifiersAgree(t *testing.T) {
	cas, leaf := buildLadder(t, 32, 4)
	root, inters := cas[0], cas[1:]
	err := quick.Check(func(mask uint8) bool {
		var pool []*x509.Certificate
		for i, c := range inters {
			if mask&(1<<i) != 0 {
				pool = append(pool, c)
			}
		}
		a := NewVerifier([]*x509.Certificate{root}, pool, certgen.Epoch)
		b := NewNaiveVerifier([]*x509.Certificate{root}, pool, certgen.Epoch)
		return a.Validates(leaf) == b.Validates(leaf)
	}, &quick.Config{MaxCount: 64})
	if err != nil {
		t.Error(err)
	}
}

// TestPropChainsAreValidPaths: every returned chain is structurally sound —
// starts at the query, ends at a root, and each link is issuer-signed.
func TestPropChainsAreValidPaths(t *testing.T) {
	cas, leaf := buildLadder(t, 33, 3)
	root, inters := cas[0], cas[1:]
	v := NewVerifier([]*x509.Certificate{root}, inters, certgen.Epoch)
	for _, c := range append([]*x509.Certificate{leaf}, cas...) {
		for _, path := range v.Chains(c) {
			if !path[0].Equal(c) {
				t.Fatal("chain must start at the query certificate")
			}
			if !v.isRoot(v.c.InternCert(path[len(path)-1])) {
				t.Fatal("chain must end at a trusted root")
			}
			for i := 0; i+1 < len(path); i++ {
				if err := path[i].CheckSignatureFrom(path[i+1]); err != nil {
					t.Fatalf("link %d not signed by its successor: %v", i, err)
				}
			}
		}
	}
}

// TestPropValidityWindowMonotone: a verifier at a time outside any cert's
// window never validates more than one inside all windows.
func TestPropValidityWindowMonotone(t *testing.T) {
	cas, leaf := buildLadder(t, 34, 2)
	root, inters := cas[0], cas[1:]
	inside := NewVerifier([]*x509.Certificate{root}, inters, certgen.Epoch)
	before := NewVerifier([]*x509.Certificate{root}, inters, certgen.Epoch.AddDate(-20, 0, 0))
	after := NewVerifier([]*x509.Certificate{root}, inters, certgen.Epoch.AddDate(20, 0, 0))
	if !inside.Validates(leaf) {
		t.Fatal("in-window verification should pass")
	}
	if before.Validates(leaf) || after.Validates(leaf) {
		t.Error("out-of-window verification should fail")
	}
}
