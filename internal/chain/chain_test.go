package chain

import (
	"crypto/x509"
	"testing"

	"tangledmass/internal/certgen"
	"tangledmass/internal/certid"
	"tangledmass/internal/corpus"
)

type pki struct {
	g      *certgen.Generator
	rootA  *certgen.Issued
	rootB  *certgen.Issued
	interA *certgen.Issued
	leafA  *certgen.Issued // chains via interA to rootA
	leafB  *certgen.Issued // chains directly to rootB
	orphan *certgen.Issued // chains to an untrusted root
}

func buildPKI(t *testing.T) *pki {
	t.Helper()
	g := certgen.NewGenerator(21)
	must := func(i *certgen.Issued, err error) *certgen.Issued {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return i
	}
	p := &pki{g: g}
	p.rootA = must(g.SelfSignedCA("Root A"))
	p.rootB = must(g.SelfSignedCA("Root B"))
	p.interA = must(g.Intermediate(p.rootA, "Intermediate A"))
	p.leafA = must(g.Leaf(p.interA, "a.example.com"))
	p.leafB = must(g.Leaf(p.rootB, "b.example.com"))
	rogue := must(g.SelfSignedCA("Rogue Root"))
	p.orphan = must(g.Leaf(rogue, "evil.example.com"))
	// Canonicalize through the shared corpus: buildPKI regenerates identical
	// DER in every test, and the corpus hands back the first-interned
	// instance, so pointer comparisons against verifier output stay valid.
	for _, i := range []*certgen.Issued{p.rootA, p.rootB, p.interA, p.leafA, p.leafB, p.orphan} {
		i.Cert = corpus.CertOf(corpus.InternCert(i.Cert))
	}
	return p
}

func certs(is ...*certgen.Issued) []*x509.Certificate {
	out := make([]*x509.Certificate, len(is))
	for i, c := range is {
		out[i] = c.Cert
	}
	return out
}

func TestVerifyThroughIntermediate(t *testing.T) {
	p := buildPKI(t)
	v := NewVerifier(certs(p.rootA, p.rootB), certs(p.interA), certgen.Epoch)

	chain, err := v.Verify(p.leafA.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain length %d, want 3", len(chain))
	}
	if chain[0] != p.leafA.Cert || chain[1] != p.interA.Cert || chain[2] != p.rootA.Cert {
		t.Error("chain order wrong, want leaf, intermediate, root")
	}
}

func TestVerifyDirect(t *testing.T) {
	p := buildPKI(t)
	v := NewVerifier(certs(p.rootA, p.rootB), certs(p.interA), certgen.Epoch)
	chain, err := v.Verify(p.leafB.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[1] != p.rootB.Cert {
		t.Errorf("direct chain wrong: %d certs", len(chain))
	}
}

func TestVerifyOrphanFails(t *testing.T) {
	p := buildPKI(t)
	v := NewVerifier(certs(p.rootA, p.rootB), certs(p.interA), certgen.Epoch)
	if _, err := v.Verify(p.orphan.Cert); err != ErrNoChain {
		t.Errorf("orphan err = %v, want ErrNoChain", err)
	}
	if v.Validates(p.orphan.Cert) {
		t.Error("orphan should not validate")
	}
}

func TestRootItselfValidates(t *testing.T) {
	p := buildPKI(t)
	v := NewVerifier(certs(p.rootA), nil, certgen.Epoch)
	chain, err := v.Verify(p.rootA.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 {
		t.Errorf("root chain length %d, want 1", len(chain))
	}
}

func TestExpiredLeafRejected(t *testing.T) {
	p := buildPKI(t)
	expired, err := p.g.Leaf(p.rootA, "old.example.com",
		certgen.WithValidity(certgen.Epoch.AddDate(-2, 0, 0), certgen.Epoch.AddDate(-1, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(certs(p.rootA), nil, certgen.Epoch)
	if v.Validates(expired.Cert) {
		t.Error("expired leaf should not validate at Epoch")
	}
	// But it does validate when the reference time is inside its window.
	v2 := NewVerifier(certs(p.rootA), nil, certgen.Epoch.AddDate(-1, -6, 0))
	if !v2.Validates(expired.Cert) {
		t.Error("leaf should validate inside its validity window")
	}
}

func TestExpiredIntermediateBreaksChain(t *testing.T) {
	g := certgen.NewGenerator(22)
	root, _ := g.SelfSignedCA("Exp Root")
	oldInter, err := g.Intermediate(root, "Expired Intermediate",
		certgen.WithValidity(certgen.Epoch.AddDate(-3, 0, 0), certgen.Epoch.AddDate(0, -1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := g.Leaf(oldInter, "x.example.com")
	v := NewVerifier([]*x509.Certificate{root.Cert}, []*x509.Certificate{oldInter.Cert}, certgen.Epoch)
	if v.Validates(leaf.Cert) {
		t.Error("chain through expired intermediate should not validate")
	}
}

func TestNonCAIssuerRejected(t *testing.T) {
	g := certgen.NewGenerator(23)
	root, _ := g.SelfSignedCA("CA Flag Root")
	// A leaf is not a CA; nothing it "signs" may validate. We simulate a
	// pool that (wrongly) contains a non-CA cert whose subject matches an
	// issuer name.
	leaf, _ := g.Leaf(root, "notaca.example.com")
	v := NewVerifier([]*x509.Certificate{root.Cert}, []*x509.Certificate{leaf.Cert}, certgen.Epoch)
	if len(v.candidateIssuers(v.c.InternCert(leaf.Cert))) != 1 {
		// leaf's issuer is root: exactly one candidate.
		t.Error("expected root as sole candidate issuer")
	}
}

func TestValidatingRootsCrossSigned(t *testing.T) {
	// A leaf whose issuer key is trusted under two distinct root identities
	// (the cross-signing situation behind "equivalent" roots in §4.2) must
	// attribute to both roots.
	g := certgen.NewGenerator(24)
	rootX, _ := g.SelfSignedCA("Cross Root X")
	rootY, _ := g.SelfSignedCA("Cross Root Y")
	// interZ is certified by both roots under the same subject+key.
	interZ1, _ := g.Intermediate(rootX, "Cross Inter Z", certgen.WithKeyName("zkey"))
	interZ2, _ := g.Intermediate(rootY, "Cross Inter Z", certgen.WithKeyName("zkey"))
	// A leaf signed by Z's key chains through either certificate of Z.
	leaf, _ := g.Leaf(&certgen.Issued{Cert: interZ1.Cert, Key: interZ1.Key}, "cross.example.com")

	v := NewVerifier(certs(rootX, rootY), []*x509.Certificate{interZ1.Cert, interZ2.Cert}, certgen.Epoch)
	roots := v.ValidatingRoots(leaf.Cert)
	if len(roots) != 2 {
		t.Fatalf("validating roots = %d, want 2 (cross-signed)", len(roots))
	}
	ids := map[string]bool{}
	for _, r := range roots {
		ids[r.Subject.CommonName] = true
	}
	if !ids["Cross Root X"] || !ids["Cross Root Y"] {
		t.Errorf("wrong roots attributed: %v", ids)
	}
}

func TestChainsReturnsAllPaths(t *testing.T) {
	g := certgen.NewGenerator(25)
	rootX, _ := g.SelfSignedCA("Multi Root X")
	rootY, _ := g.SelfSignedCA("Multi Root Y")
	i1, _ := g.Intermediate(rootX, "Multi Inter", certgen.WithKeyName("mk"))
	i2, _ := g.Intermediate(rootY, "Multi Inter", certgen.WithKeyName("mk"))
	leaf, _ := g.Leaf(i1, "multi.example.com")
	v := NewVerifier(certs(rootX, rootY), []*x509.Certificate{i1.Cert, i2.Cert}, certgen.Epoch)
	chains := v.Chains(leaf.Cert)
	if len(chains) != 2 {
		t.Fatalf("got %d chains, want 2", len(chains))
	}
	for _, c := range chains {
		if len(c) != 3 {
			t.Errorf("chain length %d, want 3", len(c))
		}
		if c[0] != leaf.Cert {
			t.Error("chains must start at the leaf")
		}
	}
}

func TestMaxDepthBounds(t *testing.T) {
	g := certgen.NewGenerator(26)
	root, _ := g.SelfSignedCA("Deep Root")
	parent := root
	var inters []*x509.Certificate
	for i := 0; i < 6; i++ {
		inter, err := g.Intermediate(parent, "Deep Inter "+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		inters = append(inters, inter.Cert)
		parent = inter
	}
	leaf, _ := g.Leaf(parent, "deep.example.com")
	v := NewVerifier([]*x509.Certificate{root.Cert}, inters, certgen.Epoch)
	if !v.Validates(leaf.Cert) {
		t.Error("depth-8 chain should validate at DefaultMaxDepth")
	}
	v.SetMaxDepth(4)
	if v.Validates(leaf.Cert) {
		t.Error("chain longer than max depth should not validate")
	}
	v.SetMaxDepth(1) // ignored: < 2
	if v.maxDepth != 4 {
		t.Error("SetMaxDepth(<2) should be ignored")
	}
}

func TestDuplicateRootsDeduplicated(t *testing.T) {
	g := certgen.NewGenerator(27)
	root, _ := g.SelfSignedCA("Dup Root")
	re, _ := g.Reissue(root, certgen.WithValidity(certgen.Epoch, certgen.Epoch.AddDate(20, 0, 0)))
	leaf, _ := g.Leaf(root, "dup.example.com")
	v := NewVerifier([]*x509.Certificate{root.Cert, re.Cert}, nil, certgen.Epoch)
	roots := v.ValidatingRoots(leaf.Cert)
	if len(roots) != 1 {
		t.Errorf("equivalent roots should count once, got %d", len(roots))
	}
}

func TestNaiveMatchesIndexed(t *testing.T) {
	p := buildPKI(t)
	roots := certs(p.rootA, p.rootB)
	inters := certs(p.interA)
	v := NewVerifier(roots, inters, certgen.Epoch)
	n := NewNaiveVerifier(roots, inters, certgen.Epoch)
	for _, c := range []*x509.Certificate{p.leafA.Cert, p.leafB.Cert, p.orphan.Cert, p.rootA.Cert} {
		if v.Validates(c) != n.Validates(c) {
			t.Errorf("naive and indexed verifiers disagree on %s", certid.SubjectString(c))
		}
	}
}

func TestIsSelfSigned(t *testing.T) {
	p := buildPKI(t)
	if !IsSelfSigned(p.rootA.Cert) {
		t.Error("root should be self-signed")
	}
	if IsSelfSigned(p.leafA.Cert) {
		t.Error("leaf should not be self-signed")
	}
	if IsSelfSigned(p.interA.Cert) {
		t.Error("intermediate should not be self-signed")
	}
}

func TestVerifierAt(t *testing.T) {
	v := NewVerifier(nil, nil, certgen.Epoch)
	if !v.At().Equal(certgen.Epoch) {
		t.Error("At() should echo construction time")
	}
}
