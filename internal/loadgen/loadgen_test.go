package loadgen

import (
	"context"
	"testing"
	"time"

	"tangledmass/internal/certgen"
	"tangledmass/internal/faultnet"
	"tangledmass/internal/notaryshard"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/obs"
	"tangledmass/internal/resilient"
)

func bootTopology(t *testing.T, shards int) (*notaryshard.Cluster, string) {
	t.Helper()
	cluster, err := notaryshard.New(certgen.Epoch, shards)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := notarynet.NewServer(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return cluster, srv.Addr()
}

// TestRunAgainstShardedTopology drives a clean (fault-free) run and pins
// the accounting: everything sent is acked, the service holds exactly the
// acked observations (no double-count through batching), and the latency
// histogram saw every request.
func TestRunAgainstShardedTopology(t *testing.T) {
	cluster, addr := bootTopology(t, 4)
	ob := obs.New()
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Sessions: 500,
		Clients:  3,
		Batch:    32,
		Observer: ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 500 || rep.Acked != 500 || rep.FailedRequests != 0 {
		t.Fatalf("clean run: sent %d acked %d failed %d, want 500/500/0",
			rep.Sent, rep.Acked, rep.FailedRequests)
	}
	if got := cluster.Sessions(); got != 500 {
		t.Fatalf("service sessions = %d, want exactly 500", got)
	}
	if rep.Latency.Count != uint64(rep.Requests) {
		t.Fatalf("latency histogram saw %d samples, want %d requests", rep.Latency.Count, rep.Requests)
	}
	if rep.P99() <= 0 {
		t.Fatal("p99 = 0 on a run with real round trips")
	}
	if v := rep.Check(SLO{MaxP99Ms: 60_000, MaxErrorRate: 0}); len(v) != 0 {
		t.Fatalf("clean run violated a generous SLO: %v", v)
	}
	if v := rep.Check(SLO{MaxP99Ms: 0.000001, MaxErrorRate: 0}); len(v) == 0 {
		t.Fatal("impossible p99 SLO not violated")
	}
}

// TestRunUnderFaultsNeverDoubleCounts injects dial-path faults and checks
// the exactly-once pipeline end to end: retried batches (same idempotency
// ID) must not double-apply, so the service total is bounded by what was
// sent and covers at least what was acknowledged.
func TestRunUnderFaultsNeverDoubleCounts(t *testing.T) {
	cluster, addr := bootTopology(t, 3)
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Sessions: 400,
		Clients:  4,
		Batch:    16,
		Faults: faultnet.New(faultnet.Plan{
			Seed:       9,
			RefuseProb: 0.15,
			ResetProb:  0.10,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := cluster.Sessions()
	if got < int64(rep.Acked) {
		t.Fatalf("service holds %d sessions but %d were acknowledged — acked work lost", got, rep.Acked)
	}
	if got > int64(rep.Sent) {
		t.Fatalf("service holds %d sessions but only %d were sent — a retry double-applied", got, rep.Sent)
	}
}

// TestPacerSpacesRequests checks the throttle math on a fake clock: N
// waits at rate R advance exactly N-1 intervals, with zero real sleeping.
func TestPacerSpacesRequests(t *testing.T) {
	now := time.Unix(0, 0)
	var slept time.Duration
	clock := resilient.Clock{
		Now:   func() time.Time { return now },
		Sleep: func(d time.Duration) { slept += d; now = now.Add(d) },
	}
	p := resilient.NewPacer(10).WithClock(clock) // 100ms interval
	for i := 0; i < 5; i++ {
		if err := p.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if want := 400 * time.Millisecond; slept != want {
		t.Fatalf("5 waits at 10/s slept %v, want %v", slept, want)
	}
	// Unlimited pacer never sleeps.
	slept = 0
	u := resilient.NewPacer(0).WithClock(clock)
	for i := 0; i < 3; i++ {
		if err := u.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if slept != 0 {
		t.Fatalf("unlimited pacer slept %v", slept)
	}
}

// TestQuantileEstimator pins the p99 math the SLO gate rides on.
func TestQuantileEstimator(t *testing.T) {
	h := obs.New().Histogram(KeyObserveLatency, []float64{1, 2, 4, 8})
	for i := 0; i < 99; i++ {
		h.Observe(0.5) // first bucket
	}
	h.Observe(7) // (4,8] bucket
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 <= 0 || p50 > 1 {
		t.Fatalf("p50 = %v, want within the first bucket", p50)
	}
	if p99 := s.Quantile(0.99); p99 > 1 {
		t.Fatalf("p99 = %v, want within the first bucket (99 of 100 samples there)", p99)
	}
	if p100 := s.Quantile(1); p100 <= 4 || p100 > 8 {
		t.Fatalf("p100 = %v, want in (4,8]", p100)
	}
	var empty obs.HistogramSnapshot
	if q := empty.Quantile(0.99); q != 0 {
		t.Fatalf("empty snapshot quantile = %v, want 0", q)
	}
}
