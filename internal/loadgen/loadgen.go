// Package loadgen drives sustained synthetic ingest traffic at a notary
// service — the measurement half of the SLO gate. It generates a
// deterministic leaf population (the same tlsnet world the analyses use),
// partitions a session budget across concurrent clients, and streams
// observe_batch requests through the resilient notarynet client, so every
// retry, breaker and fault-injection behavior the production sensors have
// is exercised under load. Per-request latency lands in a histogram the
// gate reads p99 from.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"tangledmass/internal/faultnet"
	"tangledmass/internal/notarynet"
	"tangledmass/internal/obs"
	"tangledmass/internal/parallel"
	"tangledmass/internal/resilient"
	"tangledmass/internal/tlsnet"
)

// Observability keys.
const (
	// KeyObserveLatency is the per-request observe_batch round-trip
	// latency histogram, in milliseconds, measured at the client — it
	// includes retries, so a flaky service shows up as tail latency.
	KeyObserveLatency = "loadgen.observe.latency_ms"
	// KeyRequests counts observe_batch requests issued.
	KeyRequests = "loadgen.requests.total"
	// KeyRequestErrors counts requests that failed after all retries.
	KeyRequestErrors = "loadgen.requests.failed"
	// KeySessionsSent counts observations handed to the wire.
	KeySessionsSent = "loadgen.sessions.sent"
	// KeySessionsAcked counts observations the service acknowledged.
	KeySessionsAcked = "loadgen.sessions.acked"
)

// LatencyBuckets bound the client-side latency histogram: loopback
// round-trips sit well under a millisecond, real deployments in the tens.
var LatencyBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// Config parameterizes one load run.
type Config struct {
	// Addr is the notarynet service address.
	Addr string
	// Sessions is the total observation budget. Default 1000.
	Sessions int
	// Clients is the number of concurrent clients. Default 4.
	Clients int
	// Batch is observations per observe_batch request. Default 64.
	Batch int
	// Rate throttles to this many observations/second across all clients.
	// Zero or negative means unthrottled.
	Rate float64
	// Seed drives the synthetic leaf population. Default 1.
	Seed int64
	// NumLeaves is the synthetic leaf population size. Default 300.
	NumLeaves int
	// Faults, when non-nil, injects faults on every client dial path —
	// refused connects, resets, stalls — so the gate measures the
	// resilient path, not the happy path.
	Faults *faultnet.Injector
	// Observer receives the latency histogram and counters. Nil means a
	// private one; either way the Report carries the latency snapshot.
	Observer *obs.Observer
	// Timeout bounds each request round trip. Default 10s.
	Timeout time.Duration
}

func (cfg *Config) withDefaults() Config {
	c := *cfg
	if c.Sessions <= 0 {
		c.Sessions = 1000
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumLeaves <= 0 {
		c.NumLeaves = 300
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Observer == nil {
		c.Observer = obs.New()
	}
	return c
}

// Report is the outcome of one load run.
type Report struct {
	// Sessions is the configured observation budget.
	Sessions int `json:"sessions"`
	// Sent is how many observations were handed to the wire.
	Sent int `json:"sent"`
	// Acked is how many observations the service acknowledged.
	Acked int `json:"acked"`
	// FailedRequests is how many requests failed after all retries.
	FailedRequests int `json:"failed_requests"`
	// Requests is how many observe_batch requests were issued.
	Requests int `json:"requests"`
	// ElapsedMs is the wall-clock duration of the run.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Latency is the client-side per-request latency distribution.
	Latency obs.HistogramSnapshot `json:"latency"`
}

// P99 is the 99th-percentile request latency in milliseconds.
func (r *Report) P99() float64 { return r.Latency.Quantile(0.99) }

// ErrorRate is the fraction of requests that failed after retries.
func (r *Report) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.FailedRequests) / float64(r.Requests)
}

// Throughput is acknowledged observations per second.
func (r *Report) Throughput() float64 {
	if r.ElapsedMs <= 0 {
		return 0
	}
	return float64(r.Acked) / (r.ElapsedMs / 1000)
}

// SLO is the gate: zero values mean "not gated".
type SLO struct {
	// MaxP99Ms fails the gate when client-side p99 exceeds it.
	MaxP99Ms float64 `json:"max_p99_ms,omitempty"`
	// MaxErrorRate fails the gate when the request error rate exceeds it.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
}

// Check returns the SLO violations, empty when the report passes.
func (r *Report) Check(slo SLO) []string {
	var v []string
	if slo.MaxP99Ms > 0 {
		if p99 := r.P99(); p99 > slo.MaxP99Ms {
			v = append(v, fmt.Sprintf("p99 latency %.3fms exceeds SLO %.3fms", p99, slo.MaxP99Ms))
		}
	}
	if rate := r.ErrorRate(); rate > slo.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.4f exceeds budget %.4f (%d/%d requests failed)",
			rate, slo.MaxErrorRate, r.FailedRequests, r.Requests))
	}
	return v
}

// Run executes one load run against cfg.Addr and reports what happened.
// The run itself succeeding is separate from the service meeting its SLO:
// request failures are counted, not fatal, so the gate can judge the
// error budget. Run errors mean the harness could not do its job at all
// (no world, no first connection).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	c := cfg.withDefaults()
	if c.Addr == "" {
		return nil, errors.New("loadgen: no service address")
	}
	world, err := tlsnet.NewWorld(tlsnet.Config{Seed: c.Seed, NumLeaves: c.NumLeaves})
	if err != nil {
		return nil, fmt.Errorf("loadgen: building world: %w", err)
	}
	leaves := world.Leaves()
	if len(leaves) == 0 {
		return nil, errors.New("loadgen: world has no leaves")
	}

	// One shared pacer spaces requests across all clients so Rate is a
	// cluster-wide observations/sec budget, converted to request slots.
	pacer := resilient.NewPacer(c.Rate / float64(c.Batch))

	var sent, acked, failed, requests atomic.Int64
	start := time.Now()
	err = parallel.ForEach(ctx, c.Clients, func(ctx context.Context, ci int) error {
		// Contiguous partition: client ci owns sessions [lo, hi).
		lo := ci * c.Sessions / c.Clients
		hi := (ci + 1) * c.Sessions / c.Clients
		if lo >= hi {
			return nil
		}
		opts := []notarynet.Option{
			notarynet.WithTimeout(c.Timeout),
			notarynet.WithObserver(c.Observer),
			// The breaker would turn injected fault bursts into cascades of
			// instant rejections; the gate wants every request measured.
			notarynet.WithoutBreaker(),
		}
		if c.Faults != nil {
			key := fmt.Sprintf("client-%d", ci)
			opts = append(opts, notarynet.WithDialFunc(c.Faults.DialFunc("loadgen", key, plainDial)))
		}
		client, err := notarynet.NewClient(ctx, c.Addr, opts...)
		if err != nil {
			return fmt.Errorf("loadgen: client %d connecting: %w", ci, err)
		}
		defer client.Close()
		for at := lo; at < hi; at += c.Batch {
			end := at + c.Batch
			if end > hi {
				end = hi
			}
			batch := make([]notarynet.ChainObservation, 0, end-at)
			for k := at; k < end; k++ {
				leaf := leaves[k%len(leaves)]
				batch = append(batch, notarynet.ChainObservation{Chain: leaf.Chain, Port: leaf.Port})
			}
			if err := pacer.Wait(ctx); err != nil {
				return err
			}
			reqStart := time.Now()
			rerr := client.ObserveBatch(ctx, batch)
			ms := float64(time.Since(reqStart)) / float64(time.Millisecond)
			c.Observer.Histogram(KeyObserveLatency, LatencyBuckets).Observe(ms)
			requests.Add(1)
			sent.Add(int64(len(batch)))
			c.Observer.Counter(KeyRequests).Inc()
			c.Observer.Counter(KeySessionsSent).Add(int64(len(batch)))
			if rerr != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				failed.Add(1)
				c.Observer.Counter(KeyRequestErrors).Inc()
				continue
			}
			acked.Add(int64(len(batch)))
			c.Observer.Counter(KeySessionsAcked).Add(int64(len(batch)))
		}
		return nil
	}, parallel.WithWorkers(c.Clients))
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return nil, err
	}
	return &Report{
		Sessions:       c.Sessions,
		Sent:           int(sent.Load()),
		Acked:          int(acked.Load()),
		FailedRequests: int(failed.Load()),
		Requests:       int(requests.Load()),
		ElapsedMs:      elapsed,
		Latency:        c.Observer.Snapshot().Hists[KeyObserveLatency],
	}, nil
}

// plainDial is the un-faulted TCP transport the injector wraps.
func plainDial(ctx context.Context, addr string) (net.Conn, error) {
	d := &net.Dialer{Timeout: 10 * time.Second}
	return d.DialContext(ctx, "tcp", addr)
}
